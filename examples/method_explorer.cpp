/**
 * @file
 * Method explorer: an interactive tuning tool over the library's
 * (function x method x configuration) space.
 *
 * Given a function and a method on the command line, sweeps the
 * method's accuracy knob and prints the full tradeoff row the paper's
 * Figures 5-7 plot: RMSE, PIM cycles per element, host setup time and
 * PIM memory. Useful for picking a configuration before deploying a
 * kernel.
 *
 * Usage:
 *   method_explorer [function] [method]
 *   method_explorer sin llut
 *   method_explorer tanh dlut
 *   method_explorer exp cordic
 * With no arguments, explores sin with every method.
 */

#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "transpim/transpimlib.h"

namespace {

using namespace tpl::transpim;

std::optional<Function>
parseFunction(const std::string& s)
{
    const std::pair<const char*, Function> table[] = {
        {"sin", Function::Sin},       {"cos", Function::Cos},
        {"tan", Function::Tan},       {"sinh", Function::Sinh},
        {"cosh", Function::Cosh},     {"tanh", Function::Tanh},
        {"exp", Function::Exp},       {"log", Function::Log},
        {"sqrt", Function::Sqrt},     {"gelu", Function::Gelu},
        {"sigmoid", Function::Sigmoid}, {"cndf", Function::Cndf},
    };
    for (auto& [name, f] : table) {
        if (s == name)
            return f;
    }
    return std::nullopt;
}

std::optional<Method>
parseMethod(const std::string& s)
{
    const std::pair<const char*, Method> table[] = {
        {"cordic", Method::Cordic},
        {"cordicfixed", Method::CordicFixed},
        {"cordiclut", Method::CordicLut},
        {"mlut", Method::MLut},
        {"llut", Method::LLut},
        {"llutfixed", Method::LLutFixed},
        {"dlut", Method::DLut},
        {"dllut", Method::DlLut},
        {"poly", Method::Poly},
    };
    for (auto& [name, m] : table) {
        if (s == name)
            return m;
    }
    return std::nullopt;
}

void
explore(Function f, Method m)
{
    std::printf("\n=== %s via %s ===\n",
                std::string(functionName(f)).c_str(),
                std::string(methodName(m)).c_str());
    MethodSpec probe;
    probe.method = m;
    if (!FunctionEvaluator::supports(f, probe)) {
        std::printf("(not in the support matrix)\n");
        return;
    }
    std::printf("%-16s %12s %14s %12s %10s\n", "config", "rmse",
                "cycles/elem", "setup_s", "bytes");

    bool cordicLike = m == Method::Cordic || m == Method::CordicFixed ||
                      m == Method::CordicLut;
    bool polyLike = m == Method::Poly;
    std::vector<uint32_t> knobs;
    if (cordicLike)
        knobs = {8, 12, 16, 20, 24, 28};
    else if (polyLike)
        knobs = {3, 5, 7, 9, 11, 13};
    else
        knobs = {6, 8, 10, 12, 14, 16};

    for (uint32_t knob : knobs) {
        MethodSpec spec;
        spec.method = m;
        spec.interpolated = true;
        spec.placement = Placement::Wram;
        if (cordicLike)
            spec.iterations = knob;
        else if (polyLike)
            spec.polyDegree = knob;
        else
            spec.log2Entries = knob;

        MicrobenchOptions opts;
        opts.elements = 2048;
        MicrobenchResult r = runMicrobench(f, spec, opts);
        std::string label =
            cordicLike ? std::to_string(knob) + " iters"
            : polyLike ? "degree " + std::to_string(knob)
                       : "2^" + std::to_string(knob);
        if (!r.feasible) {
            std::printf("%-16s (does not fit WRAM)\n", label.c_str());
            continue;
        }
        std::printf("%-16s %12.3e %14.1f %12.3e %10u\n", label.c_str(),
                    r.error.rmse, r.cyclesPerElement, r.setupSeconds,
                    r.memoryBytes);
    }
}

} // namespace

int
main(int argc, char** argv)
{
    std::optional<Function> f;
    std::optional<Method> m;
    if (argc > 1)
        f = parseFunction(argv[1]);
    if (argc > 2)
        m = parseMethod(argv[2]);
    if (argc > 1 && !f) {
        std::fprintf(stderr,
                     "unknown function '%s'\nfunctions: sin cos tan "
                     "sinh cosh tanh exp log sqrt gelu sigmoid cndf\n",
                     argv[1]);
        return 1;
    }
    if (argc > 2 && !m) {
        std::fprintf(stderr,
                     "unknown method '%s'\nmethods: cordic cordicfixed "
                     "cordiclut mlut llut llutfixed dlut dllut poly\n",
                     argv[2]);
        return 1;
    }

    Function fn = f.value_or(Function::Sin);
    if (m) {
        explore(fn, *m);
    } else {
        for (Method mm : {Method::Cordic, Method::CordicLut,
                          Method::MLut, Method::LLut,
                          Method::LLutFixed, Method::DLut,
                          Method::DlLut, Method::Poly}) {
            explore(fn, mm);
        }
    }
    return 0;
}
