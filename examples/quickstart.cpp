/**
 * @file
 * Quickstart: evaluate a transcendental function on a simulated PIM
 * core with TransPimLib.
 *
 * Demonstrates the library's three-step usage model:
 *   1. create()  - host-side setup (table generation, timed),
 *   2. attach()  - transfer tables to the PIM core's memory,
 *   3. eval()    - kernel-side evaluation, charging PIM instructions.
 *
 * Build & run:
 *   cmake --build build && ./build/examples/quickstart
 */

#include <cmath>
#include <cstdio>

#include "transpim/transpimlib.h"

int
main()
{
    using namespace tpl;
    using namespace tpl::transpim;

    // --- 1. Host-side setup: an interpolated L-LUT for sine. --------
    MethodSpec spec;
    spec.method = Method::LLut;      // ldexp-based fuzzy lookup table
    spec.interpolated = true;        // blend adjacent entries
    spec.placement = Placement::Wram; // table lives in the scratchpad
    spec.log2Entries = 12;           // 4096-entry budget

    FunctionEvaluator sine = FunctionEvaluator::create(Function::Sin,
                                                       spec);
    std::printf("setup: %u table bytes generated in %.3f ms\n",
                sine.memoryBytes(), sine.setupSeconds() * 1e3);

    // --- 2. Transfer the tables to a PIM core. -----------------------
    sim::DpuCore dpu;
    sine.attach(dpu);

    // --- 3. Run a kernel: 16 tasklets evaluate a few angles. ---------
    const float angles[] = {0.1f, 0.5f, 1.0f, 2.0f, 3.14159f, 5.5f};
    sim::LaunchStats stats = dpu.launch(16, [&](sim::TaskletContext& t) {
        for (size_t i = t.taskletId(); i < std::size(angles);
             i += t.numTasklets()) {
            float y = sine.eval(angles[i], &t);
            std::printf("  tasklet %2u: sin(%.5f) = %+.6f  "
                        "(libm %+.6f)\n",
                        t.taskletId(), angles[i], y,
                        std::sin(angles[i]));
        }
    });

    std::printf("kernel: %llu modeled DPU cycles, %llu instructions\n",
                (unsigned long long)stats.cycles,
                (unsigned long long)stats.totalInstructions);

    // --- Bonus: compare methods at a glance. --------------------------
    std::printf("\nmethod comparison for sin(2.0):\n");
    for (Method m : {Method::Cordic, Method::CordicLut, Method::MLut,
                     Method::LLut, Method::LLutFixed, Method::Poly}) {
        MethodSpec s;
        s.method = m;
        s.placement = Placement::Host;
        FunctionEvaluator e = FunctionEvaluator::create(Function::Sin, s);
        CountingSink cost;
        float y = e.eval(2.0f, &cost);
        std::printf("  %-14s -> %+.7f   (%4llu PIM instructions, "
                    "%6u table bytes)\n",
                    std::string(methodName(m)).c_str(), y,
                    (unsigned long long)cost.total(), e.memoryBytes());
    }
    return 0;
}
