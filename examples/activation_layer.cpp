/**
 * @file
 * Neural-network activation functions on PIM: the machine-learning
 * scenario from the paper's introduction (activation functions are the
 * headline use case for transcendental support in PIM).
 *
 * Runs a batch of pre-activations through tanh, GELU and sigmoid
 * entirely on a simulated PIM core, comparing the method families the
 * paper recommends for activations (D-LUT / DL-LUT, Key Takeaway 4)
 * against interpolated L-LUT and the polynomial baseline. Keeping the
 * activation on the PIM core avoids the PIM->CPU->PIM round trip of
 * Figure 1(b).
 *
 * Build & run:
 *   cmake --build build && ./build/examples/activation_layer
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "transpim/transpimlib.h"

namespace {

using namespace tpl;
using namespace tpl::transpim;

/** Apply one activation over the batch on a PIM core; report stats. */
void
runActivation(Function f, Method m, const std::vector<float>& batch)
{
    MethodSpec spec;
    spec.method = m;
    spec.interpolated = true;
    spec.placement = Placement::Wram;
    spec.log2Entries = 12;
    spec.dlutMantBits = 7;
    spec.polyDegree = 11;
    if (!FunctionEvaluator::supports(f, spec)) {
        std::printf("  %-18s (unsupported)\n",
                    std::string(methodName(m)).c_str());
        return;
    }

    FunctionEvaluator eval = FunctionEvaluator::create(f, spec);
    sim::DpuCore dpu;
    eval.attach(dpu);

    uint32_t n = static_cast<uint32_t>(batch.size());
    uint32_t inAddr = dpu.mramAlloc(n * sizeof(float));
    uint32_t outAddr = dpu.mramAlloc(n * sizeof(float));
    dpu.hostWriteMram(inAddr, batch.data(), n * sizeof(float));

    sim::LaunchStats stats = dpu.launch(16, [&](sim::TaskletContext& t) {
        float buf[256];
        uint32_t chunks = (n + 255) / 256;
        for (uint32_t c = t.taskletId(); c < chunks;
             c += t.numTasklets()) {
            uint32_t beg = c * 256;
            uint32_t cnt = std::min(256u, n - beg);
            t.mramRead(inAddr + beg * 4, buf, cnt * 4);
            for (uint32_t i = 0; i < cnt; ++i) {
                t.charge(4);
                buf[i] = eval.eval(buf[i], &t);
            }
            t.mramWrite(outAddr + beg * 4, buf, cnt * 4);
        }
    });

    std::vector<float> out(n);
    dpu.hostReadMram(outAddr, out.data(), n * sizeof(float));
    double maxErr = 0.0;
    for (uint32_t i = 0; i < n; ++i) {
        double ref = referenceValue(f, (double)batch[i]);
        maxErr = std::max(maxErr, std::abs((double)out[i] - ref));
    }
    std::printf("  %-18s %10.1f cycles/elem   max err %.2e   "
                "%6u table bytes\n",
                std::string(methodName(m)).c_str(),
                (double)stats.cycles / n, maxErr, eval.memoryBytes());
}

} // namespace

int
main()
{
    auto batch = tpl::uniformFloats(8192, -6.0f, 6.0f, 2024);
    std::printf("activation layer over %zu pre-activations on one "
                "PIM core (16 tasklets)\n",
                batch.size());

    for (Function f : {Function::Tanh, Function::Gelu,
                       Function::Sigmoid}) {
        std::printf("\n%s:\n",
                    std::string(functionName(f)).c_str());
        for (Method m : {Method::DLut, Method::DlLut, Method::LLut,
                         Method::Poly}) {
            runActivation(f, m, batch);
        }
    }

    std::printf("\nTakeaway (paper Key Takeaway 4): the direct-"
                "conversion tables (D-LUT / DL-LUT)\nare the best fit "
                "for activation functions - no range extension, "
                "near-free addressing.\n");
    return 0;
}
