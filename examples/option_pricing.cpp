/**
 * @file
 * Option pricing on PIM: the Blackscholes scenario from the paper's
 * introduction (option pricing in the stock market is one of the
 * motivating applications for transcendental functions in PIM).
 *
 * Prices a small option portfolio on the simulated PIM system with
 * every variant - the polynomial PIM baseline and the TransPimLib LUT
 * versions - and reports prices, accuracy against the double-precision
 * oracle, and the modeled full-system execution time.
 *
 * Build & run:
 *   cmake --build build && ./build/examples/option_pricing
 */

#include <cstdio>

#include "workloads/blackscholes.h"

int
main()
{
    using namespace tpl::work;

    WorkloadConfig cfg;
    cfg.totalElements = 1'000'000; // portfolio size of the modeled run
    cfg.elementsPerSimDpu = 1024;  // options actually simulated per DPU
    cfg.simulatedDpus = 2;
    cfg.cpuSampleElements = 200'000;

    // Show a few concrete prices first.
    OptionBatch sample = generateOptions(5, cfg.seed);
    OptionPrices ref = priceReference(sample);
    std::printf("sample portfolio (double-precision reference):\n");
    std::printf("%8s %8s %6s %6s %6s %10s %10s\n", "S", "K", "r", "v",
                "T", "call", "put");
    for (size_t i = 0; i < sample.size(); ++i) {
        std::printf("%8.2f %8.2f %6.3f %6.3f %6.3f %10.4f %10.4f\n",
                    sample.spot[i], sample.strike[i], sample.rate[i],
                    sample.vol[i], sample.expiry[i], ref.call[i],
                    ref.put[i]);
    }

    std::printf("\npricing %llu options on the modeled %u-DPU "
                "system:\n",
                (unsigned long long)cfg.totalElements, cfg.systemDpus);
    std::printf("%-26s %12s %12s %12s\n", "variant", "total_s",
                "kernel_s", "max_err_$");
    for (BsVariant v :
         {BsVariant::CpuSingle, BsVariant::PimPoly, BsVariant::PimMLut,
          BsVariant::PimLLut, BsVariant::PimFixedLLut}) {
        WorkloadResult r = runBlackscholes(v, cfg);
        std::printf("%-26s %12.4f %12.4f %12.2e\n", r.variant.c_str(),
                    r.seconds, r.pimKernelSeconds, r.maxAbsError);
    }

    std::printf("\nTakeaway: the LUT-based TransPimLib versions cut "
                "the PIM kernel time several-fold\nversus the "
                "polynomial baseline; the fixed-point L-LUT variant "
                "is the fastest.\n");
    return 0;
}
