/**
 * @file
 * End-to-end tuning workflow: from accuracy requirement to a deployed
 * multi-function PIM kernel.
 *
 * A realistic deployment has several constraints at once: a target
 * accuracy, a WRAM budget shared between tables and operand buffers,
 * and an expected evaluation count that decides whether table setup
 * amortizes. This example walks the full path:
 *
 *   1. ask the auto-tuner for the cheapest method per function,
 *   2. bundle the winners into a PimProgram (budget-checked),
 *   3. deploy to a simulated PIM system and run a mixed kernel.
 *
 * Build & run:
 *   cmake --build build && ./build/examples/tuning_workflow
 */

#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "softfloat/softfloat.h"
#include "transpim/transpimlib.h"

int
main()
{
    using namespace tpl;
    using namespace tpl::transpim;

    // --- 1. Tune each function the kernel needs. ----------------------
    const double targetRmse = 1e-5;
    TunerConstraints constraints;
    constraints.maxTableBytes = 16 * 1024; // per function
    constraints.expectedEvaluations = 10'000'000;

    std::printf("tuning for RMSE <= %.0e, <=16 KB tables/function, "
                "10M evaluations:\n\n",
                targetRmse);
    std::printf("%-10s %-26s %12s %12s %10s\n", "function", "choice",
                "rmse", "instr/eval", "bytes");

    PimProgram program(48 * 1024);
    for (Function f : {Function::Exp, Function::Tanh, Function::Sqrt}) {
        auto rec = recommendSpec(f, targetRmse, constraints);
        if (!rec) {
            std::printf("%-10s (no feasible method)\n",
                        std::string(functionName(f)).c_str());
            return 1;
        }
        std::printf("%-10s %-26s %12.2e %12.1f %10u\n",
                    std::string(functionName(f)).c_str(),
                    methodLabel(rec->best.spec).c_str(), rec->best.rmse,
                    rec->best.instructionsPerEval,
                    rec->best.tableBytes);
        MethodSpec spec = rec->best.spec;
        spec.placement = Placement::Wram;
        program.add(std::string(functionName(f)), f, spec);
    }

    std::printf("\nprogram: %u table bytes in WRAM, %.3f ms host "
                "setup\n",
                program.wramTableBytes(),
                program.totalSetupSeconds() * 1e3);

    // --- 2. Deploy to a 4-core PIM system. ----------------------------
    sim::PimSystem sys(4);
    double transfer = program.attachAll(sys);
    std::printf("table broadcast: %.3e s (modeled)\n\n", transfer);

    // --- 3. A mixed kernel: y = tanh(sqrt(x)) * exp(-x). ---------------
    constexpr uint32_t elems = 2048;
    auto inputs = uniformFloats(elems, 0.1f, 9.0f, 31);
    std::vector<uint32_t> inAddr(sys.numDpus());
    for (uint32_t d = 0; d < sys.numDpus(); ++d) {
        inAddr[d] = sys.dpu(d).mramAlloc(elems * 4);
        sys.dpu(d).hostWriteMram(inAddr[d], inputs.data(), elems * 4);
    }

    double secs = sys.launchAll(16, [&](sim::TaskletContext& ctx) {
        float buf[256];
        for (uint32_t c = ctx.taskletId(); c < elems / 256;
             c += ctx.numTasklets()) {
            ctx.mramRead(inAddr[0] + c * 1024, buf, 1024);
            for (uint32_t i = 0; i < 256; ++i) {
                float s = program["sqrt"].eval(buf[i], &ctx);
                float t = program["tanh"].eval(s, &ctx);
                float e = program["exp"].eval(
                    sf::neg(buf[i], &ctx), &ctx);
                buf[i] = sf::mul(t, e, &ctx);
            }
        }
    });

    double ref = std::tanh(std::sqrt((double)inputs[0])) *
                 std::exp(-(double)inputs[0]);
    sim::DpuCore probe;
    program.attach(probe);
    float got = 0.0f;
    probe.launch(1, [&](sim::TaskletContext& ctx) {
        float s = program["sqrt"].eval(inputs[0], &ctx);
        float t = program["tanh"].eval(s, &ctx);
        float e = program["exp"].eval(sf::neg(inputs[0], &ctx), &ctx);
        got = sf::mul(t, e, &ctx);
    });
    std::printf("kernel: %.3e s for %u elements/DPU; spot check "
                "f(%.3f) = %.6f (ref %.6f)\n",
                secs, elems, inputs[0], got, ref);
    return 0;
}
