#!/usr/bin/env bash
# Static lint: run clang-tidy with the repo's .clang-tidy profile over
# the library, tool, and test sources. Requires a configured build tree
# for the compilation database (created if missing).
#
# Usage: scripts/lint.sh [BUILD_DIR] [extra clang-tidy args...]
#
# Exits 0 (with a notice) when clang-tidy is not installed, so CI legs
# without the tool don't fail spuriously.
set -eu

BUILD_DIR="${1:-build}"
shift || true
SRC_DIR="$(cd "$(dirname "$0")/.." && pwd)"

TIDY="$(command -v clang-tidy || true)"
if [ -z "$TIDY" ]; then
    echo "lint.sh: clang-tidy not found on PATH; skipping (install" \
         "clang-tidy to enable static lint)." >&2
    exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    cmake -B "$BUILD_DIR" -S "$SRC_DIR" \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
fi

# Library + tool sources; tests are covered by HeaderFilterRegex when
# they include library headers.
FILES=$(find "$SRC_DIR/src" "$SRC_DIR/tools" -name '*.cc' | sort)

STATUS=0
for f in $FILES; do
    "$TIDY" -p "$BUILD_DIR" --quiet "$@" "$f" || STATUS=1
done
exit $STATUS
