#!/usr/bin/env bash
# Documentation checks, wired into scripts/tier1.sh as the
# TPL_TIER1_DOCS leg:
#
#   1. Every intra-repo markdown link ([text](relative/path)) in a
#      tracked .md file must point at an existing file, and every
#      anchored link (path#heading or #heading) must point at a
#      heading that actually exists in the target file (GitHub
#      slugs: lowercased, punctuation stripped, spaces to hyphens).
#   2. Every public symbol (class / struct / enum class / using alias /
#      free function at namespace scope) declared in a header under
#      src/pimsim/serve/ or src/transpim/ must be mentioned in
#      docs/API.md — new API surface ships documented or not at all.
#   3. Every tool binary (tools/*.cc) must be named in README.md —
#      the tools table keeps pace with the tools directory.
#
# Usage: scripts/check_docs.sh
# Exit: 0 clean, 1 on any broken link, dead anchor, undocumented
# symbol, or unlisted tool.
set -u

SRC_DIR="$(cd "$(dirname "$0")/.." && pwd)"
cd "$SRC_DIR"

failures=0

# --- 1. intra-repo markdown links ------------------------------------

# -c -o: tracked AND untracked (a doc must not dodge the check by
# being new); --exclude-standard honors .gitignore (skips build/).
md_files=$(git ls-files -c -o --exclude-standard '*.md' 2>/dev/null)
[ -n "$md_files" ] || md_files=$(find . -name '*.md' -not -path './build*' -not -path './.git/*')

# GitHub-style anchor slugs of a markdown file's headings, one per
# line: lowercase, punctuation stripped (keep alnum/space/hyphen/
# underscore), spaces to hyphens. Fenced blocks are skipped so
# '# comment' lines inside shell snippets are not headings.
anchors_of() {
    awk '/^[[:space:]]*```/ { fence = !fence; next }
         !fence && /^#{1,6} /' "$1" |
        sed -E 's/^#{1,6} +//' |
        tr 'A-Z' 'a-z' |
        sed -E 's/[^a-z0-9 _-]//g; s/ /-/g'
}

for md in $md_files; do
    # Pull out link targets: [text](target). One per line; markdown
    # in this repo never nests parentheses inside link targets.
    # Fenced code blocks are stripped first — C++ lambdas ([&](...))
    # parse as links otherwise.
    targets=$(awk '/^[[:space:]]*```/ { fence = !fence; next }
                   !fence' "$md" |
        grep -oE '\[[^]]*\]\([^)]+\)' |
        sed -E 's/^\[[^]]*\]\(([^)]+)\)$/\1/')
    [ -n "$targets" ] || continue
    dir=$(dirname "$md")
    while IFS= read -r target; do
        case "$target" in
            http://* | https://* | mailto:*) continue ;;
        esac
        path="${target%%#*}" # the anchor comes after the path
        anchor=""
        case "$target" in
            *'#'*) anchor="${target#*#}" ;;
        esac
        # Resolve the anchor's target file: same file for '#...'
        # links, the linked file otherwise.
        anchor_file="$md"
        if [ -n "$path" ]; then
            if [ ! -e "$dir/$path" ]; then
                echo "check_docs: $md: broken link '$target'" >&2
                failures=$((failures + 1))
                continue
            fi
            anchor_file="$dir/$path"
        fi
        if [ -n "$anchor" ] && [ -f "$anchor_file" ]; then
            case "$anchor_file" in
                *.md) ;;
                *) continue ;; # anchors into non-markdown: skip
            esac
            if ! anchors_of "$anchor_file" |
                grep -qxF "$anchor"; then
                echo "check_docs: $md: dead anchor '$target'" \
                    "(no such heading in $anchor_file)" >&2
                failures=$((failures + 1))
            fi
        fi
    done <<EOF
$targets
EOF
done

# --- 2. public API surface vs docs/API.md ----------------------------

API_MD="docs/API.md"
if [ ! -f "$API_MD" ]; then
    echo "check_docs: $API_MD missing" >&2
    exit 1
fi

# Extract namespace-scope names from a header. The repo style keeps
# public declarations at column 0 (members are indented), so:
#   - 'class X' / 'struct X' / 'enum class X' at column 0
#   - 'using X = ...' at column 0
#   - free-function declarations 'ReturnType name(...' at column 0
public_symbols() {
    local header="$1"
    grep -hoE '^(class|struct) [A-Za-z_][A-Za-z0-9_]*' "$header" |
        awk '{ print $2 }'
    grep -hoE '^enum class [A-Za-z_][A-Za-z0-9_]*' "$header" |
        awk '{ print $3 }'
    grep -hoE '^using [A-Za-z_][A-Za-z0-9_]*' "$header" |
        awk '{ print $2 }'
    grep -hoE '^[A-Za-z_][A-Za-z0-9_:<>,&* ]*[ *&][A-Za-z_][A-Za-z0-9_]*\(' \
        "$header" |
        sed -E 's/.*[ *&]([A-Za-z_][A-Za-z0-9_]*)\($/\1/'
}

for header in src/pimsim/serve/*.h src/transpim/*.h; do
    [ -f "$header" ] || continue
    for sym in $(public_symbols "$header" | sort -u); do
        # 'operator' tails and reserved words are artifacts of the
        # line-based extraction, not API names.
        case "$sym" in
            operator* | if | for | while | return | sizeof) continue ;;
        esac
        if ! grep -qE "\\b$sym\\b" "$API_MD"; then
            echo "check_docs: $header: public symbol '$sym'" \
                "not documented in $API_MD" >&2
            failures=$((failures + 1))
        fi
    done
done

# --- 3. tools directory vs README.md ---------------------------------

for tool_src in tools/*.cc; do
    [ -f "$tool_src" ] || continue
    tool=$(basename "$tool_src" .cc)
    if ! grep -qE "\\b$tool\\b" README.md; then
        echo "check_docs: tool '$tool' ($tool_src) not mentioned" \
            "in README.md" >&2
        failures=$((failures + 1))
    fi
done

if [ "$failures" -ne 0 ]; then
    echo "check_docs: $failures problem(s)" >&2
    exit 1
fi
echo "check_docs: links and anchors valid, API surface and tools documented"
exit 0
