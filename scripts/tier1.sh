#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full test suite.
# With TPL_TIER1_TSAN=1, additionally build a ThreadSanitizer tree and
# run the parallel-engine tests (thread pool + launchAll determinism)
# under TSan — the cheap way to catch data races the determinism test
# alone cannot see.
#
# Usage: scripts/tier1.sh [BUILD_DIR]
set -eu

BUILD_DIR="${1:-build}"
SRC_DIR="$(cd "$(dirname "$0")/.." && pwd)"

# Shared cleanup for every leg's temp dir: legs must NOT install their
# own `trap ... EXIT` (a second trap would silently replace the first).
TRACE_TMP=""
FAULT_TMP=""
DOCS_TMP=""
CHECK_TMP=""
OBS_TMP=""
FLEET_TMP=""
cleanup() {
    [ -n "$TRACE_TMP" ] && rm -rf "$TRACE_TMP"
    [ -n "$FAULT_TMP" ] && rm -rf "$FAULT_TMP"
    [ -n "$DOCS_TMP" ] && rm -rf "$DOCS_TMP"
    [ -n "$CHECK_TMP" ] && rm -rf "$CHECK_TMP"
    [ -n "$OBS_TMP" ] && rm -rf "$OBS_TMP"
    [ -n "$FLEET_TMP" ] && rm -rf "$FLEET_TMP"
    return 0
}
trap cleanup EXIT

cmake -B "$BUILD_DIR" -S "$SRC_DIR"
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure -j

if [ "${TPL_TIER1_TSAN:-0}" = "1" ]; then
    TSAN_DIR="${BUILD_DIR}-tsan"
    cmake -B "$TSAN_DIR" -S "$SRC_DIR" -DTPL_SANITIZE=thread
    cmake --build "$TSAN_DIR" -j --target concurrency_test
    ctest --test-dir "$TSAN_DIR" --output-on-failure \
        -R 'ThreadPool|Determinism|Concurrency'
fi

# With TPL_TIER1_SIMD=1, build the softfloat tier with the SIMD lane
# path disabled (TPL_SOFTFLOAT_SIMD=0, the scalar fallback) and enabled
# (=1, the vectorized hot paths) and run the softfloat, batch-identity
# and determinism suites under both trees: locks the two lane
# implementations to the same bits and the same charges.
if [ "${TPL_TIER1_SIMD:-0}" = "1" ]; then
    for simd in 0 1; do
        SIMD_DIR="${BUILD_DIR}-simd$simd"
        cmake -B "$SIMD_DIR" -S "$SRC_DIR" -DTPL_SOFTFLOAT_SIMD=$simd
        cmake --build "$SIMD_DIR" -j --target \
            softfloat_test softfloat16_test softfloat64_test \
            softfloat_hardening_test batch_test concurrency_test
        # NB: -R must not follow a bare -j (ctest would parse -R as
        # the optional job-count argument and run the whole suite).
        ctest --test-dir "$SIMD_DIR" --output-on-failure \
            -R 'Softfloat|Batch|Determinism' -j
    done
fi

# With TPL_TIER1_ASAN=1, build the whole tree under AddressSanitizer +
# UndefinedBehaviorSanitizer and run the complete suite. Catches heap
# misuse and UB (shifts, overflow, misaligned access) that the plain
# build silently tolerates.
if [ "${TPL_TIER1_ASAN:-0}" = "1" ]; then
    ASAN_DIR="${BUILD_DIR}-asan"
    cmake -B "$ASAN_DIR" -S "$SRC_DIR" \
        -DTPL_SANITIZE=address,undefined
    cmake --build "$ASAN_DIR" -j
    ctest --test-dir "$ASAN_DIR" --output-on-failure -j
fi

# With TPL_TIER1_TRACE=1, exercise the observability layer end to end:
# pimtrace on one LUT-based and one CORDIC-based kernel, JSON round-
# trip validation of the exported trace + metrics, and the determinism
# test re-run with the obs layer armed process-wide (TPL_OBS_METRICS /
# TPL_OBS_TRACE) to prove instrumentation never perturbs modeled stats.
if [ "${TPL_TIER1_TRACE:-0}" = "1" ]; then
    TRACE_TMP=$(mktemp -d)
    for method in llut cordic; do
        "$BUILD_DIR/tools/pimtrace" --function sin --method "$method" \
            --elements 8192 \
            --trace "$TRACE_TMP/$method.trace.json" \
            --metrics "$TRACE_TMP/$method.metrics.json" > /dev/null
        python3 -m json.tool "$TRACE_TMP/$method.trace.json" > /dev/null
        python3 -m json.tool "$TRACE_TMP/$method.metrics.json" > /dev/null
        echo "pimtrace sin/$method: trace + metrics JSON round-trip OK"
    done
    ctest --test-dir "$BUILD_DIR" --output-on-failure -R 'Determinism'
    TPL_OBS_METRICS="$TRACE_TMP/determinism.metrics.json" \
    TPL_OBS_TRACE="$TRACE_TMP/determinism.trace.json" \
        ctest --test-dir "$BUILD_DIR" --output-on-failure \
        -R 'Determinism'
    python3 -m json.tool "$TRACE_TMP/determinism.metrics.json" > /dev/null
    python3 -m json.tool "$TRACE_TMP/determinism.trace.json" > /dev/null
    echo "obs-enabled determinism re-run + env-bootstrap dumps OK"
fi

# With TPL_TIER1_FAULT=1, exercise the fault-injection tier end to
# end: the fault + conformance ctest slices, a pimfault --demo plan
# replayed through parse → canonical echo → degraded sharded run, a
# JSON round-trip of its metrics dump, and a degraded-launch trace
# captured via the TPL_OBS_TRACE env bootstrap.
if [ "${TPL_TIER1_FAULT:-0}" = "1" ]; then
    FAULT_TMP=$(mktemp -d)
    ctest --test-dir "$BUILD_DIR" --output-on-failure \
        -R 'Fault|Fig5Conformance|SoftfloatDifferential'
    "$BUILD_DIR/tools/pimfault" --help > /dev/null
    "$BUILD_DIR/tools/pimfault" --demo > "$FAULT_TMP/demo.plan"
    "$BUILD_DIR/tools/pimfault" --plan "$FAULT_TMP/demo.plan" \
        --print > "$FAULT_TMP/demo.canonical"
    grep -q '^seed 7$' "$FAULT_TMP/demo.canonical"
    TPL_OBS_TRACE="$FAULT_TMP/fault.trace.json" \
        "$BUILD_DIR/tools/pimfault" --plan "$FAULT_TMP/demo.plan" \
        --dpus 16 --metrics "$FAULT_TMP/fault.metrics.json"
    python3 -m json.tool "$FAULT_TMP/fault.metrics.json" > /dev/null
    python3 -m json.tool "$FAULT_TMP/fault.trace.json" > /dev/null
    grep -q 'fault/' "$FAULT_TMP/fault.metrics.json"
    echo "pimfault demo replay + degraded-launch trace round-trip OK"
fi

# With TPL_TIER1_DOCS=1, run the documentation checks: every
# intra-repo markdown link (and anchor) resolves, every public symbol
# in src/pimsim/serve/ and src/transpim/ headers is covered by
# docs/API.md, and every tool is listed in README.md. Additionally
# smoke the pimserve CLI (demo trace → replay → JSON round-trip) and
# the tuner CLIs (pimtune's three-way replay must show the online
# tuner beating the best static configuration with every SLA met;
# pimserve --auto-tune must emit its tuner section) so the documented
# examples keep working.
if [ "${TPL_TIER1_DOCS:-0}" = "1" ]; then
    bash "$SRC_DIR/scripts/check_docs.sh"
    DOCS_TMP=$(mktemp -d)
    "$BUILD_DIR/tools/pimserve" --demo-trace > "$DOCS_TMP/demo.trace"
    "$BUILD_DIR/tools/pimserve" --trace "$DOCS_TMP/demo.trace" \
        --dpus 16 --json "$DOCS_TMP/serve.json" \
        --metrics "$DOCS_TMP/serve.metrics.json" > /dev/null
    python3 -m json.tool "$DOCS_TMP/serve.json" > /dev/null
    python3 -m json.tool "$DOCS_TMP/serve.metrics.json" > /dev/null
    grep -q 'serve/' "$DOCS_TMP/serve.metrics.json"
    "$BUILD_DIR/tools/pimtune" --demo 2000 --per-dpu-elements 8 \
        --explore 512 --json "$DOCS_TMP/tune.json" > /dev/null
    python3 - "$DOCS_TMP/tune.json" <<'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["sla_met"] is True, doc
assert 0 < doc["cycles_ratio_vs_static"] < 1, \
    doc["cycles_ratio_vs_static"]
for replay in ("as_requested", "static_best", "online"):
    assert doc[replay]["complete"], (replay, doc[replay])
print("pimtune: online beats static-best with SLAs met OK")
PYEOF
    "$BUILD_DIR/tools/pimserve" --demo-trace --demo-requests 2000 \
        --per-dpu-elements 8 --explore 512 --no-sync-replay \
        --tenant-sla '*:rmse<1e-3' \
        --json "$DOCS_TMP/serve.tune.json" > /dev/null
    python3 -m json.tool "$DOCS_TMP/serve.tune.json" > /dev/null
    grep -q '"tuner"' "$DOCS_TMP/serve.tune.json"
    echo "check_docs + pimserve/pimtune demo replay JSON round-trip OK"
fi

# With TPL_TIER1_OBS=1, exercise the serve observability tier end to
# end: the demo trace replayed with a journal + SLO + metrics + trace
# attached, Python validation of all three artifacts (journal JSONL
# line-by-line, latency percentiles + requests/s in the JSON summary,
# metrics/trace well-formed), and journal byte-identity across
# TPL_SIM_THREADS=1/4/16 — the bit-replayability contract of
# docs/observability.md checked on the real CLI, not just in-process.
if [ "${TPL_TIER1_OBS:-0}" = "1" ]; then
    OBS_TMP=$(mktemp -d)
    "$BUILD_DIR/tools/pimserve" --demo-trace > "$OBS_TMP/demo.trace"
    TPL_OBS_TRACE="$OBS_TMP/serve.trace.json" \
        "$BUILD_DIR/tools/pimserve" --trace "$OBS_TMP/demo.trace" \
        --dpus 16 --slo p99:50ms \
        --journal "$OBS_TMP/serve.journal.jsonl" \
        --json "$OBS_TMP/serve.json" \
        --metrics "$OBS_TMP/serve.metrics.json" > /dev/null
    python3 - "$OBS_TMP" <<'PYEOF'
import json, sys
tmp = sys.argv[1]
# Journal: every line is one JSON object with the documented keys.
kinds = set()
with open(tmp + "/serve.journal.jsonl") as f:
    for line in f:
        ev = json.loads(line)
        kinds.add(ev["kind"])
        if ev["kind"] == "latency":
            assert ev["complete"], ev
            parts = (ev["queue_wait_s"] + ev["transfer_s"] +
                     ev["compute_s"] + ev["stall_s"])
            assert abs(parts - ev["latency_s"]) <= 1e-9, ev
for k in ("enqueue", "coalesce", "scatter", "compute", "gather",
          "done", "latency"):
    assert k in kinds, (k, kinds)
# Summary JSON: percentiles + sustained request rate + SLO verdict.
doc = json.load(open(tmp + "/serve.json"))
lat = doc["latency"]
assert lat["requests"] > 0 and lat["incomplete"] == 0, lat
assert 0 < lat["p50"] <= lat["p99"] <= lat["max"], lat
assert doc["requests_per_second"] > 0, doc
assert doc["slo"]["met"] is True, doc["slo"]
# Metrics + trace artifacts parse and carry serve content.
metrics = json.load(open(tmp + "/serve.metrics.json"))
assert any(n.startswith("serve/") for n in metrics["counters"]), \
    sorted(metrics["counters"])
json.load(open(tmp + "/serve.trace.json"))
print("journal + summary + metrics + trace artifacts OK")
PYEOF
    for threads in 1 4 16; do
        TPL_SIM_THREADS=$threads \
            "$BUILD_DIR/tools/pimserve" \
            --trace "$OBS_TMP/demo.trace" --dpus 16 \
            --journal "$OBS_TMP/journal.t$threads.jsonl" > /dev/null
    done
    cmp "$OBS_TMP/journal.t1.jsonl" "$OBS_TMP/journal.t4.jsonl"
    cmp "$OBS_TMP/journal.t1.jsonl" "$OBS_TMP/journal.t16.jsonl"
    echo "pimserve journal byte-identical at 1/4/16 sim threads"
fi

# With TPL_TIER1_CHECK=1, gate the shipped mini-ISA kernels on the
# static analyses: pimkernels instantiates them, every kernel must
# lint clean with a finite cycle bound (--werror --cost), the
# multi-tasklet kernels must come back race-free from the exhaustive
# interleaving explorer, and the emitted certificate JSON must
# round-trip through a JSON parser. The plain llut kernel is
# single-owner by design — it is cost-checked but NOT in the
# multi-tasklet set (the explorer would rightly flag it).
if [ "${TPL_TIER1_CHECK:-0}" = "1" ]; then
    CHECK_TMP=$(mktemp -d)
    "$BUILD_DIR/tools/pimkernels" --dir "$CHECK_TMP"
    for kernel in $("$BUILD_DIR/tools/pimkernels" --list); do
        "$BUILD_DIR/tools/pimlint" --werror --cost --tasklets 4 \
            "$CHECK_TMP/$kernel.s"
    done
    for kernel in llut_par cordic; do
        "$BUILD_DIR/tools/pimlint" --werror --cost --tasklets 4 \
            --interleave 3 --json "$CHECK_TMP/$kernel.s" \
            > "$CHECK_TMP/$kernel.cert.json"
        python3 - "$CHECK_TMP/$kernel.cert.json" <<'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["errors"] == 0, doc
cert = doc["files"][0]["certificate"]
assert cert["bound"]["bounded"], cert
assert cert["interleave"]["verdict"] == "race-free", cert
PYEOF
    done
    echo "pimkernels + pimlint cost/interleave certificates OK"
fi

# With TPL_TIER1_FLEET=1, exercise the fleet topology tier on the real
# CLI: the synthetic demo trace replayed over a 20x2x64 fleet (40
# ranks, 2560 DPUs), journal byte-identity across TPL_SIM_THREADS=
# 1/4/16, and a Python check that the per-rank journal spans and
# rank_stats rows partition the fleet totals (makespan = max over
# ranks, waves/elements sum exactly).
if [ "${TPL_TIER1_FLEET:-0}" = "1" ]; then
    FLEET_TMP=$(mktemp -d)
    for threads in 1 4 16; do
        TPL_SIM_THREADS=$threads \
            "$BUILD_DIR/tools/pimserve" --demo-trace \
            --topology 20x2x64 --demo-requests 20000 \
            --no-sync-replay \
            --journal "$FLEET_TMP/fleet.t$threads.jsonl" \
            --json "$FLEET_TMP/fleet.t$threads.json" > /dev/null
    done
    cmp "$FLEET_TMP/fleet.t1.jsonl" "$FLEET_TMP/fleet.t4.jsonl"
    cmp "$FLEET_TMP/fleet.t1.jsonl" "$FLEET_TMP/fleet.t16.jsonl"
    python3 - "$FLEET_TMP" <<'PYEOF'
import json, sys
tmp = sys.argv[1]
doc = json.load(open(tmp + "/fleet.t1.json"))
assert doc["topology"] == "20x2x64", doc.get("topology")
ranks = doc["rank_stats"]
assert len(ranks) == 40, len(ranks)
# The fleet clock is the slowest rank's clock; waves and elements
# partition exactly across the rank rows.
spans = [r["makespan_seconds"] for r in ranks]
assert abs(max(spans) - doc["modeled_seconds"]) <= \
    1e-12 * doc["modeled_seconds"], (max(spans), doc["modeled_seconds"])
assert sum(r["waves"] for r in ranks) == doc["waves"]
assert sum(r["elements"] for r in ranks) == doc["elements"]
assert doc["latency"]["p50"] > 0 and doc["requests_per_second"] > 0
# Journal: every transfer/compute event carries its executing rank,
# and no rank's events outrun that rank's reported span.
span_by_rank = {}
with open(tmp + "/fleet.t1.jsonl") as f:
    for line in f:
        ev = json.loads(line)
        if ev["kind"] in ("scatter", "compute", "gather",
                          "broadcast"):
            assert 0 <= ev["rank"] < 40, ev
            end = ev["t"] + ev["dur"]
            r = ev["rank"]
            span_by_rank[r] = max(span_by_rank.get(r, 0.0), end)
for r, end in span_by_rank.items():
    assert end <= ranks[r]["makespan_seconds"] + 1e-12, (r, end)
assert abs(max(span_by_rank.values()) - doc["modeled_seconds"]) <= \
    1e-9 * doc["modeled_seconds"]
print("fleet journal spans partition the fleet total OK")
PYEOF
    echo "pimserve fleet replay byte-identical at 1/4/16 sim threads"
fi
