# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/softfloat_test[1]_include.cmake")
include("/root/repo/build/tests/pimsim_test[1]_include.cmake")
include("/root/repo/build/tests/ldexp_test[1]_include.cmake")
include("/root/repo/build/tests/cordic_test[1]_include.cmake")
include("/root/repo/build/tests/lut_test[1]_include.cmake")
include("/root/repo/build/tests/range_test[1]_include.cmake")
include("/root/repo/build/tests/evaluator_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/tuner_test[1]_include.cmake")
include("/root/repo/build/tests/extended_functions_test[1]_include.cmake")
include("/root/repo/build/tests/arch_model_test[1]_include.cmake")
include("/root/repo/build/tests/softfloat_hardening_test[1]_include.cmake")
include("/root/repo/build/tests/program_test[1]_include.cmake")
include("/root/repo/build/tests/lut_properties_test[1]_include.cmake")
include("/root/repo/build/tests/softfloat64_test[1]_include.cmake")
include("/root/repo/build/tests/llut64_test[1]_include.cmake")
include("/root/repo/build/tests/isa_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
include("/root/repo/build/tests/error_model_test[1]_include.cmake")
include("/root/repo/build/tests/softfloat16_test[1]_include.cmake")
include("/root/repo/build/tests/concurrency_test[1]_include.cmake")
include("/root/repo/build/tests/cost_model_test[1]_include.cmake")
