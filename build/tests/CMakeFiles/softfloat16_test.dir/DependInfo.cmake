
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/softfloat16_test.cc" "tests/CMakeFiles/softfloat16_test.dir/softfloat16_test.cc.o" "gcc" "tests/CMakeFiles/softfloat16_test.dir/softfloat16_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/transpim/CMakeFiles/tpl_transpim.dir/DependInfo.cmake"
  "/root/repo/build/src/softfloat/CMakeFiles/tpl_softfloat.dir/DependInfo.cmake"
  "/root/repo/build/src/pimsim/CMakeFiles/tpl_pimsim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tpl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
