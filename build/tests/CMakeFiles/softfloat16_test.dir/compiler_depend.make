# Empty compiler generated dependencies file for softfloat16_test.
# This may be replaced when dependencies are built.
