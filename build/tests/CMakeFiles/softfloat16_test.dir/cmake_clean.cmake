file(REMOVE_RECURSE
  "CMakeFiles/softfloat16_test.dir/softfloat16_test.cc.o"
  "CMakeFiles/softfloat16_test.dir/softfloat16_test.cc.o.d"
  "softfloat16_test"
  "softfloat16_test.pdb"
  "softfloat16_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softfloat16_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
