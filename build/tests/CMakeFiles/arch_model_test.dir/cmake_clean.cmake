file(REMOVE_RECURSE
  "CMakeFiles/arch_model_test.dir/arch_model_test.cc.o"
  "CMakeFiles/arch_model_test.dir/arch_model_test.cc.o.d"
  "arch_model_test"
  "arch_model_test.pdb"
  "arch_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arch_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
