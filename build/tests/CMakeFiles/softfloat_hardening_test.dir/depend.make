# Empty dependencies file for softfloat_hardening_test.
# This may be replaced when dependencies are built.
