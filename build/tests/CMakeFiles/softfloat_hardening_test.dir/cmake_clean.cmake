file(REMOVE_RECURSE
  "CMakeFiles/softfloat_hardening_test.dir/softfloat_hardening_test.cc.o"
  "CMakeFiles/softfloat_hardening_test.dir/softfloat_hardening_test.cc.o.d"
  "softfloat_hardening_test"
  "softfloat_hardening_test.pdb"
  "softfloat_hardening_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softfloat_hardening_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
