# Empty dependencies file for pimsim_test.
# This may be replaced when dependencies are built.
