file(REMOVE_RECURSE
  "CMakeFiles/pimsim_test.dir/pimsim_test.cc.o"
  "CMakeFiles/pimsim_test.dir/pimsim_test.cc.o.d"
  "pimsim_test"
  "pimsim_test.pdb"
  "pimsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pimsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
