file(REMOVE_RECURSE
  "CMakeFiles/lut_test.dir/lut_test.cc.o"
  "CMakeFiles/lut_test.dir/lut_test.cc.o.d"
  "lut_test"
  "lut_test.pdb"
  "lut_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lut_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
