file(REMOVE_RECURSE
  "CMakeFiles/llut64_test.dir/llut64_test.cc.o"
  "CMakeFiles/llut64_test.dir/llut64_test.cc.o.d"
  "llut64_test"
  "llut64_test.pdb"
  "llut64_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llut64_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
