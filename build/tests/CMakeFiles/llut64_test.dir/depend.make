# Empty dependencies file for llut64_test.
# This may be replaced when dependencies are built.
