# Empty dependencies file for softfloat64_test.
# This may be replaced when dependencies are built.
