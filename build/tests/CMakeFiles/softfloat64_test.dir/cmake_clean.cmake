file(REMOVE_RECURSE
  "CMakeFiles/softfloat64_test.dir/softfloat64_test.cc.o"
  "CMakeFiles/softfloat64_test.dir/softfloat64_test.cc.o.d"
  "softfloat64_test"
  "softfloat64_test.pdb"
  "softfloat64_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softfloat64_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
