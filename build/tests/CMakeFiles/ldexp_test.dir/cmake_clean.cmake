file(REMOVE_RECURSE
  "CMakeFiles/ldexp_test.dir/ldexp_test.cc.o"
  "CMakeFiles/ldexp_test.dir/ldexp_test.cc.o.d"
  "ldexp_test"
  "ldexp_test.pdb"
  "ldexp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldexp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
