# Empty dependencies file for ldexp_test.
# This may be replaced when dependencies are built.
