file(REMOVE_RECURSE
  "CMakeFiles/lut_properties_test.dir/lut_properties_test.cc.o"
  "CMakeFiles/lut_properties_test.dir/lut_properties_test.cc.o.d"
  "lut_properties_test"
  "lut_properties_test.pdb"
  "lut_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lut_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
