file(REMOVE_RECURSE
  "CMakeFiles/extended_functions_test.dir/extended_functions_test.cc.o"
  "CMakeFiles/extended_functions_test.dir/extended_functions_test.cc.o.d"
  "extended_functions_test"
  "extended_functions_test.pdb"
  "extended_functions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extended_functions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
