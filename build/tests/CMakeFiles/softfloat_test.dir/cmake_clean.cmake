file(REMOVE_RECURSE
  "CMakeFiles/softfloat_test.dir/softfloat_test.cc.o"
  "CMakeFiles/softfloat_test.dir/softfloat_test.cc.o.d"
  "softfloat_test"
  "softfloat_test.pdb"
  "softfloat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softfloat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
