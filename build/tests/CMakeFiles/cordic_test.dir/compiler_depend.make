# Empty compiler generated dependencies file for cordic_test.
# This may be replaced when dependencies are built.
