file(REMOVE_RECURSE
  "CMakeFiles/cordic_test.dir/cordic_test.cc.o"
  "CMakeFiles/cordic_test.dir/cordic_test.cc.o.d"
  "cordic_test"
  "cordic_test.pdb"
  "cordic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cordic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
