file(REMOVE_RECURSE
  "../bench/ablation_tasklets"
  "../bench/ablation_tasklets.pdb"
  "CMakeFiles/ablation_tasklets.dir/ablation_tasklets.cc.o"
  "CMakeFiles/ablation_tasklets.dir/ablation_tasklets.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tasklets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
