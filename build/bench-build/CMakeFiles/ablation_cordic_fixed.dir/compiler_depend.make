# Empty compiler generated dependencies file for ablation_cordic_fixed.
# This may be replaced when dependencies are built.
