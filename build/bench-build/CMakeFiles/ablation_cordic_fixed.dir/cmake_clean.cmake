file(REMOVE_RECURSE
  "../bench/ablation_cordic_fixed"
  "../bench/ablation_cordic_fixed.pdb"
  "CMakeFiles/ablation_cordic_fixed.dir/ablation_cordic_fixed.cc.o"
  "CMakeFiles/ablation_cordic_fixed.dir/ablation_cordic_fixed.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cordic_fixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
