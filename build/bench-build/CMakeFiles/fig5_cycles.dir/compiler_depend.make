# Empty compiler generated dependencies file for fig5_cycles.
# This may be replaced when dependencies are built.
