file(REMOVE_RECURSE
  "../bench/fig5_cycles"
  "../bench/fig5_cycles.pdb"
  "CMakeFiles/fig5_cycles.dir/fig5_cycles.cc.o"
  "CMakeFiles/fig5_cycles.dir/fig5_cycles.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
