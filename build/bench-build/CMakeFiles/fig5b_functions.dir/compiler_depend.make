# Empty compiler generated dependencies file for fig5b_functions.
# This may be replaced when dependencies are built.
