file(REMOVE_RECURSE
  "../bench/fig5b_functions"
  "../bench/fig5b_functions.pdb"
  "CMakeFiles/fig5b_functions.dir/fig5b_functions.cc.o"
  "CMakeFiles/fig5b_functions.dir/fig5b_functions.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
