file(REMOVE_RECURSE
  "../bench/ablation_tuner"
  "../bench/ablation_tuner.pdb"
  "CMakeFiles/ablation_tuner.dir/ablation_tuner.cc.o"
  "CMakeFiles/ablation_tuner.dir/ablation_tuner.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
