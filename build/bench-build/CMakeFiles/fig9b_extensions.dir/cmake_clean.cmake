file(REMOVE_RECURSE
  "../bench/fig9b_extensions"
  "../bench/fig9b_extensions.pdb"
  "CMakeFiles/fig9b_extensions.dir/fig9b_extensions.cc.o"
  "CMakeFiles/fig9b_extensions.dir/fig9b_extensions.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9b_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
