# Empty dependencies file for fig9b_extensions.
# This may be replaced when dependencies are built.
