file(REMOVE_RECURSE
  "../bench/ablation_precision"
  "../bench/ablation_precision.pdb"
  "CMakeFiles/ablation_precision.dir/ablation_precision.cc.o"
  "CMakeFiles/ablation_precision.dir/ablation_precision.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
