file(REMOVE_RECURSE
  "../bench/fig9_workloads"
  "../bench/fig9_workloads.pdb"
  "CMakeFiles/fig9_workloads.dir/fig9_workloads.cc.o"
  "CMakeFiles/fig9_workloads.dir/fig9_workloads.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
