# Empty dependencies file for ablation_architectures.
# This may be replaced when dependencies are built.
