file(REMOVE_RECURSE
  "../bench/ablation_architectures"
  "../bench/ablation_architectures.pdb"
  "CMakeFiles/ablation_architectures.dir/ablation_architectures.cc.o"
  "CMakeFiles/ablation_architectures.dir/ablation_architectures.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_architectures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
