file(REMOVE_RECURSE
  "../bench/table2_matrix"
  "../bench/table2_matrix.pdb"
  "CMakeFiles/table2_matrix.dir/table2_matrix.cc.o"
  "CMakeFiles/table2_matrix.dir/table2_matrix.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
