file(REMOVE_RECURSE
  "../bench/gbench_methods"
  "../bench/gbench_methods.pdb"
  "CMakeFiles/gbench_methods.dir/gbench_methods.cc.o"
  "CMakeFiles/gbench_methods.dir/gbench_methods.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbench_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
