# Empty compiler generated dependencies file for gbench_methods.
# This may be replaced when dependencies are built.
