file(REMOVE_RECURSE
  "../bench/ablation_amortization"
  "../bench/ablation_amortization.pdb"
  "CMakeFiles/ablation_amortization.dir/ablation_amortization.cc.o"
  "CMakeFiles/ablation_amortization.dir/ablation_amortization.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_amortization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
