# Empty compiler generated dependencies file for ablation_amortization.
# This may be replaced when dependencies are built.
