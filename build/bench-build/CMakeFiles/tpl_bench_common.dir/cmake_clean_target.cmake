file(REMOVE_RECURSE
  "libtpl_bench_common.a"
)
