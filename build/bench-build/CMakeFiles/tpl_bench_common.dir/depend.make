# Empty dependencies file for tpl_bench_common.
# This may be replaced when dependencies are built.
