file(REMOVE_RECURSE
  "CMakeFiles/tpl_bench_common.dir/sweep_common.cc.o"
  "CMakeFiles/tpl_bench_common.dir/sweep_common.cc.o.d"
  "libtpl_bench_common.a"
  "libtpl_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpl_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
