file(REMOVE_RECURSE
  "../bench/fig8_range"
  "../bench/fig8_range.pdb"
  "CMakeFiles/fig8_range.dir/fig8_range.cc.o"
  "CMakeFiles/fig8_range.dir/fig8_range.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
