# Empty compiler generated dependencies file for fig8_range.
# This may be replaced when dependencies are built.
