file(REMOVE_RECURSE
  "../bench/fig6_setup"
  "../bench/fig6_setup.pdb"
  "CMakeFiles/fig6_setup.dir/fig6_setup.cc.o"
  "CMakeFiles/fig6_setup.dir/fig6_setup.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_setup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
