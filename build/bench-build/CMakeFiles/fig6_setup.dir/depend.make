# Empty dependencies file for fig6_setup.
# This may be replaced when dependencies are built.
