# Empty dependencies file for fig7_memory.
# This may be replaced when dependencies are built.
