file(REMOVE_RECURSE
  "../bench/fig7_memory"
  "../bench/fig7_memory.pdb"
  "CMakeFiles/fig7_memory.dir/fig7_memory.cc.o"
  "CMakeFiles/fig7_memory.dir/fig7_memory.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
