file(REMOVE_RECURSE
  "../bench/ablation_activation"
  "../bench/ablation_activation.pdb"
  "CMakeFiles/ablation_activation.dir/ablation_activation.cc.o"
  "CMakeFiles/ablation_activation.dir/ablation_activation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_activation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
