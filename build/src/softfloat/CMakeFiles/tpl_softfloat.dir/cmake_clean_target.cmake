file(REMOVE_RECURSE
  "libtpl_softfloat.a"
)
