file(REMOVE_RECURSE
  "CMakeFiles/tpl_softfloat.dir/softfloat.cc.o"
  "CMakeFiles/tpl_softfloat.dir/softfloat.cc.o.d"
  "CMakeFiles/tpl_softfloat.dir/softfloat16.cc.o"
  "CMakeFiles/tpl_softfloat.dir/softfloat16.cc.o.d"
  "CMakeFiles/tpl_softfloat.dir/softfloat64.cc.o"
  "CMakeFiles/tpl_softfloat.dir/softfloat64.cc.o.d"
  "libtpl_softfloat.a"
  "libtpl_softfloat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpl_softfloat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
