# Empty compiler generated dependencies file for tpl_softfloat.
# This may be replaced when dependencies are built.
