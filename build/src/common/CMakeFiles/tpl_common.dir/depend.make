# Empty dependencies file for tpl_common.
# This may be replaced when dependencies are built.
