file(REMOVE_RECURSE
  "libtpl_common.a"
)
