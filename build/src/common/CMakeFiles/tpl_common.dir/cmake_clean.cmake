file(REMOVE_RECURSE
  "CMakeFiles/tpl_common.dir/emu_int.cc.o"
  "CMakeFiles/tpl_common.dir/emu_int.cc.o.d"
  "CMakeFiles/tpl_common.dir/error_metrics.cc.o"
  "CMakeFiles/tpl_common.dir/error_metrics.cc.o.d"
  "CMakeFiles/tpl_common.dir/fixed_point.cc.o"
  "CMakeFiles/tpl_common.dir/fixed_point.cc.o.d"
  "CMakeFiles/tpl_common.dir/rng.cc.o"
  "CMakeFiles/tpl_common.dir/rng.cc.o.d"
  "libtpl_common.a"
  "libtpl_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpl_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
