file(REMOVE_RECURSE
  "CMakeFiles/tpl_workloads.dir/activations.cc.o"
  "CMakeFiles/tpl_workloads.dir/activations.cc.o.d"
  "CMakeFiles/tpl_workloads.dir/blackscholes.cc.o"
  "CMakeFiles/tpl_workloads.dir/blackscholes.cc.o.d"
  "CMakeFiles/tpl_workloads.dir/common.cc.o"
  "CMakeFiles/tpl_workloads.dir/common.cc.o.d"
  "CMakeFiles/tpl_workloads.dir/logistic.cc.o"
  "CMakeFiles/tpl_workloads.dir/logistic.cc.o.d"
  "CMakeFiles/tpl_workloads.dir/raytrace.cc.o"
  "CMakeFiles/tpl_workloads.dir/raytrace.cc.o.d"
  "libtpl_workloads.a"
  "libtpl_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpl_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
