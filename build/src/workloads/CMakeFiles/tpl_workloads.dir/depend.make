# Empty dependencies file for tpl_workloads.
# This may be replaced when dependencies are built.
