file(REMOVE_RECURSE
  "libtpl_workloads.a"
)
