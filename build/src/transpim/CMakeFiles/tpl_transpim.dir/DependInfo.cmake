
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transpim/arch_model.cc" "src/transpim/CMakeFiles/tpl_transpim.dir/arch_model.cc.o" "gcc" "src/transpim/CMakeFiles/tpl_transpim.dir/arch_model.cc.o.d"
  "/root/repo/src/transpim/cordic.cc" "src/transpim/CMakeFiles/tpl_transpim.dir/cordic.cc.o" "gcc" "src/transpim/CMakeFiles/tpl_transpim.dir/cordic.cc.o.d"
  "/root/repo/src/transpim/cordic_lut.cc" "src/transpim/CMakeFiles/tpl_transpim.dir/cordic_lut.cc.o" "gcc" "src/transpim/CMakeFiles/tpl_transpim.dir/cordic_lut.cc.o.d"
  "/root/repo/src/transpim/direct_lut.cc" "src/transpim/CMakeFiles/tpl_transpim.dir/direct_lut.cc.o" "gcc" "src/transpim/CMakeFiles/tpl_transpim.dir/direct_lut.cc.o.d"
  "/root/repo/src/transpim/error_model.cc" "src/transpim/CMakeFiles/tpl_transpim.dir/error_model.cc.o" "gcc" "src/transpim/CMakeFiles/tpl_transpim.dir/error_model.cc.o.d"
  "/root/repo/src/transpim/evaluator.cc" "src/transpim/CMakeFiles/tpl_transpim.dir/evaluator.cc.o" "gcc" "src/transpim/CMakeFiles/tpl_transpim.dir/evaluator.cc.o.d"
  "/root/repo/src/transpim/fuzzy_lut.cc" "src/transpim/CMakeFiles/tpl_transpim.dir/fuzzy_lut.cc.o" "gcc" "src/transpim/CMakeFiles/tpl_transpim.dir/fuzzy_lut.cc.o.d"
  "/root/repo/src/transpim/harness.cc" "src/transpim/CMakeFiles/tpl_transpim.dir/harness.cc.o" "gcc" "src/transpim/CMakeFiles/tpl_transpim.dir/harness.cc.o.d"
  "/root/repo/src/transpim/ldexp.cc" "src/transpim/CMakeFiles/tpl_transpim.dir/ldexp.cc.o" "gcc" "src/transpim/CMakeFiles/tpl_transpim.dir/ldexp.cc.o.d"
  "/root/repo/src/transpim/llut16.cc" "src/transpim/CMakeFiles/tpl_transpim.dir/llut16.cc.o" "gcc" "src/transpim/CMakeFiles/tpl_transpim.dir/llut16.cc.o.d"
  "/root/repo/src/transpim/llut64.cc" "src/transpim/CMakeFiles/tpl_transpim.dir/llut64.cc.o" "gcc" "src/transpim/CMakeFiles/tpl_transpim.dir/llut64.cc.o.d"
  "/root/repo/src/transpim/poly.cc" "src/transpim/CMakeFiles/tpl_transpim.dir/poly.cc.o" "gcc" "src/transpim/CMakeFiles/tpl_transpim.dir/poly.cc.o.d"
  "/root/repo/src/transpim/program.cc" "src/transpim/CMakeFiles/tpl_transpim.dir/program.cc.o" "gcc" "src/transpim/CMakeFiles/tpl_transpim.dir/program.cc.o.d"
  "/root/repo/src/transpim/range.cc" "src/transpim/CMakeFiles/tpl_transpim.dir/range.cc.o" "gcc" "src/transpim/CMakeFiles/tpl_transpim.dir/range.cc.o.d"
  "/root/repo/src/transpim/reference.cc" "src/transpim/CMakeFiles/tpl_transpim.dir/reference.cc.o" "gcc" "src/transpim/CMakeFiles/tpl_transpim.dir/reference.cc.o.d"
  "/root/repo/src/transpim/tuner.cc" "src/transpim/CMakeFiles/tpl_transpim.dir/tuner.cc.o" "gcc" "src/transpim/CMakeFiles/tpl_transpim.dir/tuner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tpl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/softfloat/CMakeFiles/tpl_softfloat.dir/DependInfo.cmake"
  "/root/repo/build/src/pimsim/CMakeFiles/tpl_pimsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
