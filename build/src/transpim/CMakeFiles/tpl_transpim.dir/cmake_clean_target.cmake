file(REMOVE_RECURSE
  "libtpl_transpim.a"
)
