# Empty compiler generated dependencies file for tpl_transpim.
# This may be replaced when dependencies are built.
