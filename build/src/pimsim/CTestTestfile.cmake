# CMake generated Testfile for 
# Source directory: /root/repo/src/pimsim
# Build directory: /root/repo/build/src/pimsim
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
