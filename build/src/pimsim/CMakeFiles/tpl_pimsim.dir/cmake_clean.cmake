file(REMOVE_RECURSE
  "CMakeFiles/tpl_pimsim.dir/dpu.cc.o"
  "CMakeFiles/tpl_pimsim.dir/dpu.cc.o.d"
  "CMakeFiles/tpl_pimsim.dir/isa.cc.o"
  "CMakeFiles/tpl_pimsim.dir/isa.cc.o.d"
  "CMakeFiles/tpl_pimsim.dir/system.cc.o"
  "CMakeFiles/tpl_pimsim.dir/system.cc.o.d"
  "libtpl_pimsim.a"
  "libtpl_pimsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpl_pimsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
