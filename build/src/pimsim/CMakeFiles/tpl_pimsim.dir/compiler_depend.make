# Empty compiler generated dependencies file for tpl_pimsim.
# This may be replaced when dependencies are built.
