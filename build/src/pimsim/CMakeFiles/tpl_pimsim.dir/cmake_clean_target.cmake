file(REMOVE_RECURSE
  "libtpl_pimsim.a"
)
