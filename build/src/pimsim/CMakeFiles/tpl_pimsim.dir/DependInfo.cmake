
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pimsim/dpu.cc" "src/pimsim/CMakeFiles/tpl_pimsim.dir/dpu.cc.o" "gcc" "src/pimsim/CMakeFiles/tpl_pimsim.dir/dpu.cc.o.d"
  "/root/repo/src/pimsim/isa.cc" "src/pimsim/CMakeFiles/tpl_pimsim.dir/isa.cc.o" "gcc" "src/pimsim/CMakeFiles/tpl_pimsim.dir/isa.cc.o.d"
  "/root/repo/src/pimsim/system.cc" "src/pimsim/CMakeFiles/tpl_pimsim.dir/system.cc.o" "gcc" "src/pimsim/CMakeFiles/tpl_pimsim.dir/system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tpl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
