# Empty dependencies file for method_explorer.
# This may be replaced when dependencies are built.
