file(REMOVE_RECURSE
  "CMakeFiles/activation_layer.dir/activation_layer.cpp.o"
  "CMakeFiles/activation_layer.dir/activation_layer.cpp.o.d"
  "activation_layer"
  "activation_layer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/activation_layer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
