# Empty dependencies file for activation_layer.
# This may be replaced when dependencies are built.
