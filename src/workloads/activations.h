/**
 * @file
 * Sigmoid and Softmax workloads (paper Section 4.1.2).
 *
 * Sigmoid is element-wise: S(x) = 1 / (1 + e^-x) over a 30M-element
 * vector. Softmax normalizes the exponentials over the whole vector,
 * which on a PIM system requires inter-core communication through the
 * host (the per-DPU partial sums are reduced on the CPU and broadcast
 * back), exactly the structure the paper's Figure 2 mandates.
 *
 * Variants: CPU 1T / 32T (libm, measured), PIM poly (polynomial
 * baseline), PIM M-LUT / L-LUT (interpolated fuzzy LUTs).
 */

#ifndef TPL_WORKLOADS_ACTIVATIONS_H
#define TPL_WORKLOADS_ACTIVATIONS_H

#include <vector>

#include "workloads/common.h"

namespace tpl {
namespace work {

/** Variants shared by the Sigmoid and Softmax workloads. */
enum class ActVariant
{
    CpuSingle,
    CpuMulti,
    PimPoly,
    PimMLut,
    PimLLut,
};

/** Run the Sigmoid workload in one variant. */
WorkloadResult runSigmoid(ActVariant variant, const WorkloadConfig& cfg);

/** Run the Softmax workload in one variant. */
WorkloadResult runSoftmax(ActVariant variant, const WorkloadConfig& cfg);

/** All variants of Sigmoid (one Figure 9 group). */
std::vector<WorkloadResult> runSigmoidAll(const WorkloadConfig& cfg);

/** All variants of Softmax (one Figure 9 group). */
std::vector<WorkloadResult> runSoftmaxAll(const WorkloadConfig& cfg);

} // namespace work
} // namespace tpl

#endif // TPL_WORKLOADS_ACTIVATIONS_H
