/**
 * @file
 * Sigmoid / Softmax implementations.
 *
 * Both workloads compose TransPimLib's exp - the paper's Table 2
 * provides exponentiation, and the applications build sigmoid/softmax
 * on top of it, which is why their PIM cost is dominated by the exp
 * method plus one float add/divide (sigmoid) or multiply (softmax).
 */

#include "workloads/activations.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error_metrics.h"
#include "common/rng.h"
#include "softfloat/softfloat.h"
#include "transpim/evaluator.h"

namespace tpl {
namespace work {

using transpim::Function;
using transpim::FunctionEvaluator;
using transpim::Method;
using transpim::MethodSpec;
using transpim::Placement;

namespace {

std::string
variantLabel(ActVariant v)
{
    switch (v) {
      case ActVariant::CpuSingle: return "CPU 1T";
      case ActVariant::CpuMulti: return "CPU 32T";
      case ActVariant::PimPoly: return "PIM poly";
      case ActVariant::PimMLut: return "PIM M-LUT interp.";
      case ActVariant::PimLLut: return "PIM L-LUT interp.";
    }
    return "?";
}

std::shared_ptr<FunctionEvaluator>
makeExp(ActVariant v, const WorkloadConfig& cfg)
{
    MethodSpec spec;
    spec.interpolated = true;
    spec.placement = Placement::Wram;
    spec.log2Entries = cfg.log2Entries;
    spec.polyDegree = cfg.polyDegree;
    switch (v) {
      case ActVariant::PimPoly: spec.method = Method::Poly; break;
      case ActVariant::PimMLut: spec.method = Method::MLut; break;
      default: spec.method = Method::LLut; break;
    }
    return std::make_shared<FunctionEvaluator>(
        FunctionEvaluator::create(Function::Exp, spec));
}

// ---------------------------------------------------------------- CPU

WorkloadResult
cpuSigmoid(ActVariant v, const WorkloadConfig& cfg)
{
    uint64_t sample =
        std::min<uint64_t>(cfg.cpuSampleElements, cfg.totalElements);
    auto input = uniformFloats(sample, cfg.inputLo, cfg.inputHi, cfg.seed);
    std::vector<float> out(sample);

    uint32_t threads =
        v == ActVariant::CpuSingle ? 1 : cfg.cpuThreads;
    WorkloadResult res;
    res.workload = "Sigmoid";
    res.variant = variantLabel(v);
    res.elements = cfg.totalElements;
    res.seconds = timeCpuBaseline(
        cfg, threads, [&](uint64_t beg, uint64_t end) {
            for (uint64_t i = beg; i < end; ++i)
                out[i] = 1.0f / (1.0f + std::exp(-input[i]));
        });

    ErrorAccumulator acc;
    for (uint64_t i = 0; i < std::min<uint64_t>(sample, 10000); ++i)
        acc.add(out[i], 1.0 / (1.0 + std::exp(-(double)input[i])));
    res.maxAbsError = acc.stats().maxAbs;
    res.rmse = acc.stats().rmse;
    return res;
}

WorkloadResult
cpuSoftmax(ActVariant v, const WorkloadConfig& cfg)
{
    uint64_t sample =
        std::min<uint64_t>(cfg.cpuSampleElements, cfg.totalElements);
    auto input = uniformFloats(sample, cfg.inputLo, cfg.inputHi, cfg.seed);
    std::vector<float> out(sample);

    uint32_t threads =
        v == ActVariant::CpuSingle ? 1 : cfg.cpuThreads;
    WorkloadResult res;
    res.workload = "Softmax";
    res.variant = variantLabel(v);
    res.elements = cfg.totalElements;

    res.seconds = timeCpuBaseline(
        cfg, threads, [&](uint64_t beg, uint64_t end) {
            float local = 0.0f;
            for (uint64_t i = beg; i < end; ++i) {
                out[i] = std::exp(input[i]);
                local += out[i];
            }
            // The final scale pass reuses the exp results.
            float inv = 1.0f / local; // per-chunk normalization proxy
            for (uint64_t i = beg; i < end; ++i)
                out[i] *= inv;
        });

    // Accuracy: exact softmax over a small window.
    size_t w = std::min<uint64_t>(sample, 10000);
    double sum = 0.0;
    for (size_t i = 0; i < w; ++i)
        sum += std::exp((double)input[i]);
    ErrorAccumulator acc;
    double chunkSum = 0.0;
    for (size_t i = 0; i < w; ++i)
        chunkSum += std::exp(input[i]);
    for (size_t i = 0; i < w; ++i)
        acc.add(std::exp(input[i]) / chunkSum,
                std::exp((double)input[i]) / sum);
    res.maxAbsError = acc.stats().maxAbs;
    res.rmse = acc.stats().rmse;
    return res;
}

// ---------------------------------------------------------------- PIM

WorkloadResult
pimSigmoid(ActVariant v, const WorkloadConfig& cfg)
{
    auto expE = makeExp(v, cfg);

    WorkloadResult res;
    res.workload = "Sigmoid";
    res.variant = variantLabel(v);
    res.elements = cfg.totalElements;
    res.setupSeconds = expE->setupSeconds();

    sim::PimSystem sys(cfg.simulatedDpus);
    uint32_t perDpu = cfg.elementsPerSimDpu;
    uint64_t simTotal = static_cast<uint64_t>(perDpu) * sys.numDpus();
    auto input = uniformFloats(simTotal, cfg.inputLo, cfg.inputHi, cfg.seed);

    uint32_t inAddr = 0, outAddr = 0;
    for (uint32_t d = 0; d < sys.numDpus(); ++d) {
        sim::DpuCore& dpu = sys.dpu(d);
        expE->attach(dpu);
        uint32_t bytes = perDpu * sizeof(float);
        inAddr = dpu.mramAlloc(bytes);
        outAddr = dpu.mramAlloc(bytes);
        dpu.hostWriteMram(inAddr,
                          input.data() +
                              static_cast<uint64_t>(d) * perDpu,
                          bytes);
    }

    constexpr uint32_t chunk = 256;
    sys.launchAll(cfg.tasklets, [&](sim::TaskletContext& ctx) {
        float buf[chunk];
        uint32_t chunks = (perDpu + chunk - 1) / chunk;
        for (uint32_t c = ctx.taskletId(); c < chunks;
             c += ctx.numTasklets()) {
            uint32_t beg = c * chunk;
            uint32_t cnt = std::min(chunk, perDpu - beg);
            ctx.mramRead(inAddr + beg * sizeof(float), buf,
                         cnt * sizeof(float));
            for (uint32_t i = 0; i < cnt; ++i) {
                ctx.charge(4);
                float e = expE->eval(sf::neg(buf[i], &ctx), &ctx);
                buf[i] =
                    sf::div(1.0f, sf::add(1.0f, e, &ctx), &ctx);
            }
            ctx.mramWrite(outAddr + beg * sizeof(float), buf,
                          cnt * sizeof(float));
        }
    });

    res.pimKernelSeconds =
        projectPimSeconds(cfg, sys.model(), sys.lastMaxCycles());
    res.hostToPimSeconds = fullTransferSeconds(
        cfg, sys.model(), cfg.totalElements * sizeof(float));
    res.pimToHostSeconds = res.hostToPimSeconds;
    res.seconds = res.pimKernelSeconds + res.hostToPimSeconds +
                  res.pimToHostSeconds + res.setupSeconds;

    ErrorAccumulator acc;
    std::vector<float> out(perDpu);
    sys.dpu(0).hostReadMram(outAddr, out.data(),
                            perDpu * sizeof(float));
    for (uint32_t i = 0; i < perDpu; ++i)
        acc.add(out[i], 1.0 / (1.0 + std::exp(-(double)input[i])));
    res.maxAbsError = acc.stats().maxAbs;
    res.rmse = acc.stats().rmse;
    return res;
}

WorkloadResult
pimSoftmax(ActVariant v, const WorkloadConfig& cfg)
{
    auto expE = makeExp(v, cfg);

    WorkloadResult res;
    res.workload = "Softmax";
    res.variant = variantLabel(v);
    res.elements = cfg.totalElements;
    res.setupSeconds = expE->setupSeconds();

    sim::PimSystem sys(cfg.simulatedDpus);
    uint32_t perDpu = cfg.elementsPerSimDpu;
    uint64_t simTotal = static_cast<uint64_t>(perDpu) * sys.numDpus();
    auto input = uniformFloats(simTotal, cfg.inputLo, cfg.inputHi, cfg.seed);

    uint32_t inAddr = 0, expAddr = 0, sumAddr = 0;
    for (uint32_t d = 0; d < sys.numDpus(); ++d) {
        sim::DpuCore& dpu = sys.dpu(d);
        expE->attach(dpu);
        uint32_t bytes = perDpu * sizeof(float);
        inAddr = dpu.mramAlloc(bytes);
        expAddr = dpu.mramAlloc(bytes);
        sumAddr = dpu.mramAlloc(cfg.tasklets *
                                sizeof(float)); // partial sums
        dpu.hostWriteMram(inAddr,
                          input.data() +
                              static_cast<uint64_t>(d) * perDpu,
                          bytes);
    }

    // Optional pass 0 (stable softmax): global max through the host,
    // so the exponentials cannot overflow for wide input ranges.
    constexpr uint32_t chunk = 256;
    double pass0 = 0.0, pass1 = 0.0, pass2 = 0.0;
    float globalMax = 0.0f;
    if (cfg.stableSoftmax) {
        pass0 = sys.launchAll(cfg.tasklets,
                              [&](sim::TaskletContext& ctx) {
            float buf[chunk];
            float localMax = -3.4e38f;
            uint32_t chunks = (perDpu + chunk - 1) / chunk;
            for (uint32_t c = ctx.taskletId(); c < chunks;
                 c += ctx.numTasklets()) {
                uint32_t beg = c * chunk;
                uint32_t cnt = std::min(chunk, perDpu - beg);
                ctx.mramRead(inAddr + beg * sizeof(float), buf,
                             cnt * sizeof(float));
                for (uint32_t i = 0; i < cnt; ++i) {
                    ctx.charge(2);
                    if (sf::lt(localMax, buf[i], &ctx))
                        localMax = buf[i];
                }
            }
            ctx.mramWrite(sumAddr + ctx.taskletId() * sizeof(float),
                          &localMax, sizeof(float));
        });
        globalMax = -3.4e38f;
        std::vector<float> maxes(cfg.tasklets);
        for (uint32_t d = 0; d < sys.numDpus(); ++d) {
            sys.dpu(d).hostReadMram(sumAddr, maxes.data(),
                                    cfg.tasklets * sizeof(float));
            for (uint32_t t = 0; t < cfg.tasklets; ++t)
                globalMax = std::max(globalMax, maxes[t]);
        }
    }

    // Pass 1: e^(x - max) and per-tasklet partial sums.
    {
        bool stable = cfg.stableSoftmax;
        float maxV = globalMax;
        double secs = sys.launchAll(cfg.tasklets,
                                    [&](sim::TaskletContext& ctx) {
            float buf[chunk];
            float partial = 0.0f;
            uint32_t chunks = (perDpu + chunk - 1) / chunk;
            for (uint32_t c = ctx.taskletId(); c < chunks;
                 c += ctx.numTasklets()) {
                uint32_t beg = c * chunk;
                uint32_t cnt = std::min(chunk, perDpu - beg);
                ctx.mramRead(inAddr + beg * sizeof(float), buf,
                             cnt * sizeof(float));
                for (uint32_t i = 0; i < cnt; ++i) {
                    ctx.charge(4);
                    float x = buf[i];
                    if (stable)
                        x = sf::sub(x, maxV, &ctx);
                    buf[i] = expE->eval(x, &ctx);
                    partial = sf::add(partial, buf[i], &ctx);
                }
                ctx.mramWrite(expAddr + beg * sizeof(float), buf,
                              cnt * sizeof(float));
            }
            ctx.mramWrite(sumAddr + ctx.taskletId() * sizeof(float),
                          &partial, sizeof(float));
        });
        pass1 = secs;
    }

    // Host-side reduction across tasklets and DPUs (the inter-PIM-core
    // communication path of Figure 2), then broadcast 1/sum.
    double simSum = 0.0;
    std::vector<float> partials(cfg.tasklets);
    for (uint32_t d = 0; d < sys.numDpus(); ++d) {
        sys.dpu(d).hostReadMram(sumAddr, partials.data(),
                                cfg.tasklets * sizeof(float));
        for (uint32_t t = 0; t < cfg.tasklets; ++t)
            simSum += partials[t];
    }
    // Scale the simulated sum to the full problem (uniform inputs).
    double fullSum = simSum * static_cast<double>(cfg.totalElements) /
                     static_cast<double>(simTotal);
    float invSimSum = static_cast<float>(1.0 / simSum);
    for (uint32_t d = 0; d < sys.numDpus(); ++d)
        sys.dpu(d).hostWriteMram(sumAddr, &invSimSum, sizeof(float));
    (void)fullSum;

    // Pass 2: scale by the broadcast 1/sum (one multiply/element).
    {
        double secs = sys.launchAll(cfg.tasklets,
                                    [&](sim::TaskletContext& ctx) {
            float buf[chunk];
            float inv;
            ctx.mramRead(sumAddr, &inv, sizeof(float));
            uint32_t chunks = (perDpu + chunk - 1) / chunk;
            for (uint32_t c = ctx.taskletId(); c < chunks;
                 c += ctx.numTasklets()) {
                uint32_t beg = c * chunk;
                uint32_t cnt = std::min(chunk, perDpu - beg);
                ctx.mramRead(expAddr + beg * sizeof(float), buf,
                             cnt * sizeof(float));
                for (uint32_t i = 0; i < cnt; ++i) {
                    ctx.charge(4);
                    buf[i] = sf::mul(buf[i], inv, &ctx);
                }
                ctx.mramWrite(expAddr + beg * sizeof(float), buf,
                              cnt * sizeof(float));
            }
        });
        pass2 = secs;
    }

    // Projection: all passes scale with elements/DPU; the reductions
    // add tiny transfers (partial maxes/sums out, 1/sum back).
    uint64_t pass0Cycles = static_cast<uint64_t>(
        pass0 * sys.model().frequencyHz);
    uint64_t pass1Cycles = static_cast<uint64_t>(
        pass1 * sys.model().frequencyHz);
    uint64_t pass2Cycles = static_cast<uint64_t>(
        pass2 * sys.model().frequencyHz);
    res.pimKernelSeconds =
        projectPimSeconds(cfg, sys.model(), pass0Cycles) +
        projectPimSeconds(cfg, sys.model(), pass1Cycles) +
        projectPimSeconds(cfg, sys.model(), pass2Cycles);
    res.hostToPimSeconds =
        fullTransferSeconds(cfg, sys.model(),
                            cfg.totalElements * sizeof(float)) +
        fullTransferSeconds(cfg, sys.model(),
                            cfg.systemDpus * sizeof(float));
    res.pimToHostSeconds =
        fullTransferSeconds(cfg, sys.model(),
                            cfg.totalElements * sizeof(float)) +
        fullTransferSeconds(cfg, sys.model(),
                            cfg.systemDpus * cfg.tasklets *
                                sizeof(float));
    res.seconds = res.pimKernelSeconds + res.hostToPimSeconds +
                  res.pimToHostSeconds + res.setupSeconds;

    // Accuracy over the simulated subset (its own softmax problem).
    double refSum = 0.0;
    for (uint64_t i = 0; i < simTotal; ++i)
        refSum += std::exp((double)input[i]);
    ErrorAccumulator acc;
    std::vector<float> out(perDpu);
    sys.dpu(0).hostReadMram(expAddr, out.data(),
                            perDpu * sizeof(float));
    for (uint32_t i = 0; i < perDpu; ++i)
        acc.add(out[i], std::exp((double)input[i]) / refSum);
    res.maxAbsError = acc.stats().maxAbs;
    res.rmse = acc.stats().rmse;
    return res;
}

} // namespace

WorkloadResult
runSigmoid(ActVariant variant, const WorkloadConfig& cfg)
{
    if (variant == ActVariant::CpuSingle ||
        variant == ActVariant::CpuMulti) {
        return cpuSigmoid(variant, cfg);
    }
    return pimSigmoid(variant, cfg);
}

WorkloadResult
runSoftmax(ActVariant variant, const WorkloadConfig& cfg)
{
    if (variant == ActVariant::CpuSingle ||
        variant == ActVariant::CpuMulti) {
        return cpuSoftmax(variant, cfg);
    }
    return pimSoftmax(variant, cfg);
}

std::vector<WorkloadResult>
runSigmoidAll(const WorkloadConfig& cfg)
{
    std::vector<WorkloadResult> rows;
    for (ActVariant v :
         {ActVariant::CpuSingle, ActVariant::CpuMulti,
          ActVariant::PimPoly, ActVariant::PimMLut,
          ActVariant::PimLLut}) {
        rows.push_back(runSigmoid(v, cfg));
    }
    return rows;
}

std::vector<WorkloadResult>
runSoftmaxAll(const WorkloadConfig& cfg)
{
    std::vector<WorkloadResult> rows;
    for (ActVariant v :
         {ActVariant::CpuSingle, ActVariant::CpuMulti,
          ActVariant::PimPoly, ActVariant::PimMLut,
          ActVariant::PimLLut}) {
        rows.push_back(runSoftmax(v, cfg));
    }
    return rows;
}

} // namespace work
} // namespace tpl
