/**
 * @file
 * Ray-shading workload (extension; "ray tracing" is one of the
 * paper's motivating applications for transcendental functions).
 *
 * Shades a batch of camera rays against a unit sphere with a Phong
 * model. Per ray the kernel needs:
 *
 *  - rsqrt      to normalize the ray direction,
 *  - sqrt       for the intersection discriminant,
 *  - log2/exp2  for the specular power term
 *               (x^n = 2^(n * log2 x) - the classic pow composition),
 *
 * i.e. four hard-to-calculate functions per element, including the
 * base-2 pair whose range extension is nearly free in this library.
 * Variants: CPU baselines and PIM with polynomial vs L-LUT methods.
 */

#ifndef TPL_WORKLOADS_RAYTRACE_H
#define TPL_WORKLOADS_RAYTRACE_H

#include <vector>

#include "workloads/common.h"

namespace tpl {
namespace work {

/** Ray-shading variants. */
enum class RayVariant
{
    CpuSingle,
    CpuMulti,
    PimPoly,
    PimLLut,
};

/** Run one variant; elements = rays shaded. */
WorkloadResult runRaytrace(RayVariant variant, const WorkloadConfig& cfg);

/** Run all variants. */
std::vector<WorkloadResult> runRaytraceAll(const WorkloadConfig& cfg);

} // namespace work
} // namespace tpl

#endif // TPL_WORKLOADS_RAYTRACE_H
