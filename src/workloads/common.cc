/**
 * @file
 * Workload infrastructure implementation.
 */

#include "workloads/common.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "pimsim/thread_pool.h"

namespace tpl {
namespace work {

double
timeCpuBaseline(const WorkloadConfig& cfg, uint32_t threads,
                const std::function<void(uint64_t, uint64_t)>& body)
{
    uint64_t sample =
        std::min<uint64_t>(cfg.cpuSampleElements, cfg.totalElements);

    // The persistent simulator pool runs the chunks, so the timed
    // region measures only the workload body — no per-call thread
    // spawn/join overhead. The baseline is "real" only when the pool
    // actually offers the requested parallelism; otherwise fall back
    // to the documented scaling model below.
    sim::ThreadPool& pool = sim::ThreadPool::global();
    uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
    uint32_t lanes = std::min(pool.threadCount(), hw);
    bool canRunThreads = threads <= lanes;
    uint32_t runThreads = canRunThreads ? threads : 1;

    auto start = std::chrono::steady_clock::now();
    if (runThreads == 1) {
        body(0, sample);
    } else {
        uint64_t per = (sample + runThreads - 1) / runThreads;
        pool.parallelFor(runThreads, [&](uint64_t t) {
            uint64_t beg = t * per;
            uint64_t end = std::min(sample, beg + per);
            if (beg < end)
                body(beg, end);
        });
    }
    auto stop = std::chrono::steady_clock::now();
    double measured = std::chrono::duration<double>(stop - start).count();

    double full = measured * static_cast<double>(cfg.totalElements) /
                  static_cast<double>(sample);
    if (!canRunThreads && threads > 1) {
        // Host cannot actually run the requested thread count: model
        // the parallel speedup instead of oversubscribing.
        full /= threads * cfg.cpuParallelEfficiency;
    }
    return full;
}

double
projectPimSeconds(const WorkloadConfig& cfg, const sim::CostModel& model,
                  uint64_t cyclesPerSimDpu)
{
    if (cfg.elementsPerSimDpu == 0 || cfg.systemDpus == 0 ||
        model.frequencyHz <= 0.0)
        return 0.0;
    double cyclesPerElement =
        static_cast<double>(cyclesPerSimDpu) /
        static_cast<double>(cfg.elementsPerSimDpu);
    uint64_t perSystemDpu =
        (cfg.totalElements + cfg.systemDpus - 1) / cfg.systemDpus;
    return cyclesPerElement * static_cast<double>(perSystemDpu) /
           model.frequencyHz;
}

double
fullTransferSeconds(const WorkloadConfig& cfg,
                    const sim::CostModel& model, uint64_t totalBytes)
{
    uint32_t ranks = model.dpusPerRank
                         ? std::max(1u, cfg.systemDpus / model.dpusPerRank)
                         : 1u;
    double bw = std::min(model.hostParallelBandwidth * ranks,
                         model.hostAggregateBandwidthCap);
    if (bw <= 0.0)
        return 0.0;
    return static_cast<double>(totalBytes) / bw;
}

} // namespace work
} // namespace tpl
