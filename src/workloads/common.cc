/**
 * @file
 * Workload infrastructure implementation.
 */

#include "workloads/common.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace tpl {
namespace work {

double
timeCpuBaseline(const WorkloadConfig& cfg, uint32_t threads,
                const std::function<void(uint64_t, uint64_t)>& body)
{
    uint64_t sample =
        std::min<uint64_t>(cfg.cpuSampleElements, cfg.totalElements);

    uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
    bool canRunThreads = threads <= hw;
    uint32_t runThreads = canRunThreads ? threads : 1;

    auto start = std::chrono::steady_clock::now();
    if (runThreads == 1) {
        body(0, sample);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(runThreads);
        uint64_t per = (sample + runThreads - 1) / runThreads;
        for (uint32_t t = 0; t < runThreads; ++t) {
            uint64_t beg = t * per;
            uint64_t end = std::min(sample, beg + per);
            if (beg >= end)
                break;
            pool.emplace_back(body, beg, end);
        }
        for (auto& th : pool)
            th.join();
    }
    auto stop = std::chrono::steady_clock::now();
    double measured = std::chrono::duration<double>(stop - start).count();

    double full = measured * static_cast<double>(cfg.totalElements) /
                  static_cast<double>(sample);
    if (!canRunThreads && threads > 1) {
        // Host cannot actually run the requested thread count: model
        // the parallel speedup instead of oversubscribing.
        full /= threads * cfg.cpuParallelEfficiency;
    }
    return full;
}

double
projectPimSeconds(const WorkloadConfig& cfg, const sim::CostModel& model,
                  uint64_t cyclesPerSimDpu)
{
    double cyclesPerElement =
        static_cast<double>(cyclesPerSimDpu) /
        static_cast<double>(cfg.elementsPerSimDpu);
    uint64_t perSystemDpu =
        (cfg.totalElements + cfg.systemDpus - 1) / cfg.systemDpus;
    return cyclesPerElement * static_cast<double>(perSystemDpu) /
           model.frequencyHz;
}

double
fullTransferSeconds(const WorkloadConfig& cfg,
                    const sim::CostModel& model, uint64_t totalBytes)
{
    uint32_t ranks = std::max(1u, cfg.systemDpus / model.dpusPerRank);
    double bw = std::min(model.hostParallelBandwidth * ranks,
                         model.hostAggregateBandwidthCap);
    return static_cast<double>(totalBytes) / bw;
}

} // namespace work
} // namespace tpl
