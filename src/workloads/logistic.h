/**
 * @file
 * Logistic-regression inference workload (extension).
 *
 * The paper motivates sigmoid with logistic regression ("commonly used
 * in logistic regression to compute the probability of an output
 * event", Section 4.1.2); this workload runs the full model instead of
 * the bare activation: y = sigmoid(w . x + b) over a batch of feature
 * vectors. Unlike the element-wise Sigmoid workload, each output
 * requires D multiply-accumulates *plus* one transcendental, so the
 * transcendental's share of the kernel shrinks with the feature
 * dimension - the regime where method choice matters less and the
 * dot product dominates. The bench sweeps the feature dimension to
 * expose that crossover.
 *
 * PIM mapping: the weight vector is broadcast to every core (like a
 * LUT), feature rows are scattered, each tasklet computes rows'
 * dot products with emulated float MACs and applies the sigmoid
 * method; probabilities stream back.
 */

#ifndef TPL_WORKLOADS_LOGISTIC_H
#define TPL_WORKLOADS_LOGISTIC_H

#include <vector>

#include "workloads/common.h"

namespace tpl {
namespace work {

/** Logistic-regression variants. */
enum class LogisticVariant
{
    CpuSingle,
    CpuMulti,
    PimPoly,
    PimLLut,
    PimDlLut,
};

/** Extra configuration: the model's feature dimension. */
struct LogisticConfig : WorkloadConfig
{
    uint32_t features = 16;
};

/** Run one variant; elements = rows classified. */
WorkloadResult runLogistic(LogisticVariant variant,
                           const LogisticConfig& cfg);

/** Run all variants. */
std::vector<WorkloadResult> runLogisticAll(const LogisticConfig& cfg);

} // namespace work
} // namespace tpl

#endif // TPL_WORKLOADS_LOGISTIC_H
