/**
 * @file
 * Blackscholes implementation: CPU baselines + PIM variants.
 */

#include "workloads/blackscholes.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/error_metrics.h"
#include "common/rng.h"
#include "softfloat/softfloat.h"
#include "transpim/evaluator.h"
#include "transpim/fuzzy_lut.h"
#include "transpim/ldexp.h"

namespace tpl {
namespace work {

using transpim::Function;
using transpim::FunctionEvaluator;
using transpim::Method;
using transpim::MethodSpec;
using transpim::Placement;

OptionBatch
generateOptions(size_t n, uint64_t seed)
{
    SplitMix64 rng(seed);
    OptionBatch b;
    b.spot.resize(n);
    b.strike.resize(n);
    b.rate.resize(n);
    b.vol.resize(n);
    b.expiry.resize(n);
    for (size_t i = 0; i < n; ++i) {
        b.spot[i] = rng.nextFloat(10.0f, 200.0f);
        b.strike[i] = b.spot[i] * rng.nextFloat(0.8f, 1.25f);
        b.rate[i] = rng.nextFloat(0.01f, 0.05f);
        b.vol[i] = rng.nextFloat(0.10f, 0.50f);
        b.expiry[i] = rng.nextFloat(0.1f, 2.0f);
    }
    return b;
}

namespace {

double
cndfDouble(double x)
{
    return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

/** Price one option in double (the oracle). */
void
priceOneReference(const OptionBatch& b, size_t i, double& call,
                  double& put)
{
    double s = b.spot[i];
    double k = b.strike[i];
    double r = b.rate[i];
    double v = b.vol[i];
    double t = b.expiry[i];
    double d1 = (std::log(s / k) + (r + 0.5 * v * v) * t) /
                (v * std::sqrt(t));
    double d2 = d1 - v * std::sqrt(t);
    double ke = k * std::exp(-r * t);
    call = s * cndfDouble(d1) - ke * cndfDouble(d2);
    put = call - s + ke;
}

/** Price one option in float with libm (the CPU baseline kernel). */
void
priceOneCpu(const OptionBatch& b, size_t i, float& call, float& put)
{
    float s = b.spot[i];
    float k = b.strike[i];
    float r = b.rate[i];
    float v = b.vol[i];
    float t = b.expiry[i];
    float sq = std::sqrt(t);
    float d1 = (std::log(s / k) + (r + 0.5f * v * v) * t) / (v * sq);
    float d2 = d1 - v * sq;
    float n1 = 0.5f * std::erfc(-d1 * 0.70710678f);
    float n2 = 0.5f * std::erfc(-d2 * 0.70710678f);
    float ke = k * std::exp(-r * t);
    call = s * n1 - ke * n2;
    put = call - s + ke;
}

/** The four transcendental providers a PIM variant plugs in. */
struct BsFunctions
{
    std::function<float(float, InstrSink*)> log;
    std::function<float(float, InstrSink*)> sqrt;
    std::function<float(float, InstrSink*)> exp;
    std::function<float(float, InstrSink*)> cndf;
    std::function<void(sim::DpuCore&)> attach;
    uint32_t memoryBytes = 0;
    double setupSeconds = 0;
};

BsFunctions
fromEvaluators(Method method, const WorkloadConfig& cfg)
{
    MethodSpec spec;
    spec.method = method;
    spec.interpolated = true;
    spec.placement = Placement::Wram;
    spec.log2Entries = cfg.log2Entries;
    spec.polyDegree = cfg.polyDegree;

    auto logE = std::make_shared<FunctionEvaluator>(
        FunctionEvaluator::create(Function::Log, spec));
    auto sqrtE = std::make_shared<FunctionEvaluator>(
        FunctionEvaluator::create(Function::Sqrt, spec));
    auto expE = std::make_shared<FunctionEvaluator>(
        FunctionEvaluator::create(Function::Exp, spec));
    auto cndfE = std::make_shared<FunctionEvaluator>(
        FunctionEvaluator::create(Function::Cndf, spec));

    BsFunctions f;
    f.log = [logE](float x, InstrSink* s) { return logE->eval(x, s); };
    f.sqrt = [sqrtE](float x, InstrSink* s) { return sqrtE->eval(x, s); };
    f.exp = [expE](float x, InstrSink* s) { return expE->eval(x, s); };
    f.cndf = [cndfE](float x, InstrSink* s) { return cndfE->eval(x, s); };
    f.attach = [logE, sqrtE, expE, cndfE](sim::DpuCore& c) {
        logE->attach(c);
        sqrtE->attach(c);
        expE->attach(c);
        cndfE->attach(c);
    };
    f.memoryBytes = logE->memoryBytes() + sqrtE->memoryBytes() +
                    expE->memoryBytes() + cndfE->memoryBytes();
    f.setupSeconds = logE->setupSeconds() + sqrtE->setupSeconds() +
                     expE->setupSeconds() + cndfE->setupSeconds();
    return f;
}

BsFunctions
fixedLLutFunctions(const WorkloadConfig& cfg)
{
    // Domain-tuned Q3.28 tables: the generic log/sqrt domains do not
    // fit fixed point, the Blackscholes parameter ranges do.
    using transpim::LLutFixed;
    auto start = std::chrono::steady_clock::now();
    uint32_t n = 1u << cfg.log2Entries;
    auto logT = std::make_shared<LLutFixed>(
        [](double x) { return std::log(x); }, 0.70, 1.35, n, true,
        Placement::Wram);
    auto sqrtT = std::make_shared<LLutFixed>(
        [](double x) { return std::sqrt(x); }, 0.05, 2.05, n, true,
        Placement::Wram);
    auto expT = std::make_shared<LLutFixed>(
        [](double x) { return std::exp(x); }, -0.15, 0.01, n, true,
        Placement::Wram);
    auto cndfT = std::make_shared<LLutFixed>(
        [](double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); },
        -7.99, 7.99, n, true, Placement::Wram);
    auto end = std::chrono::steady_clock::now();

    BsFunctions f;
    f.log = [logT](float x, InstrSink* s) { return logT->eval(x, s); };
    f.sqrt = [sqrtT](float x, InstrSink* s) { return sqrtT->eval(x, s); };
    f.exp = [expT](float x, InstrSink* s) { return expT->eval(x, s); };
    f.cndf = [cndfT](float x, InstrSink* s) {
        // Clamp into the table domain: CNDF saturates outside.
        chargeInstr(s, 2);
        if (x < -7.9f)
            x = -7.9f;
        if (x > 7.9f)
            x = 7.9f;
        return cndfT->eval(x, s);
    };
    f.attach = [logT, sqrtT, expT, cndfT](sim::DpuCore& c) {
        logT->attach(c);
        sqrtT->attach(c);
        expT->attach(c);
        cndfT->attach(c);
    };
    f.memoryBytes = logT->memoryBytes() + sqrtT->memoryBytes() +
                    expT->memoryBytes() + cndfT->memoryBytes();
    f.setupSeconds = std::chrono::duration<double>(end - start).count();
    return f;
}

/** One option priced with instrumented PIM arithmetic. */
void
priceOnePim(const BsFunctions& fn, float s, float k, float r, float v,
            float t, InstrSink* sink, float& call, float& put)
{
    using namespace tpl::sf;
    using transpim::pimLdexp;

    float ratio = div(s, k, sink);
    float lnr = fn.log(ratio, sink);
    float v2 = mul(v, v, sink);
    float rv = add(r, pimLdexp(v2, -1, sink), sink);
    float num = add(lnr, mul(rv, t, sink), sink);
    float sq = fn.sqrt(t, sink);
    float vsq = mul(v, sq, sink);
    float d1 = div(num, vsq, sink);
    float d2 = sub(d1, vsq, sink);
    float n1 = fn.cndf(d1, sink);
    float n2 = fn.cndf(d2, sink);
    float e = fn.exp(neg(mul(r, t, sink), sink), sink);
    float ke = mul(k, e, sink);
    call = sub(mul(s, n1, sink), mul(ke, n2, sink), sink);
    // Put-call parity: put = call - S + K*e^-rT.
    put = add(sub(call, s, sink), ke, sink);
}

WorkloadResult
runCpu(BsVariant variant, const WorkloadConfig& cfg)
{
    uint64_t sample =
        std::min<uint64_t>(cfg.cpuSampleElements, cfg.totalElements);
    OptionBatch batch = generateOptions(sample, cfg.seed);
    OptionPrices out;
    out.call.resize(sample);
    out.put.resize(sample);

    uint32_t threads = variant == BsVariant::CpuSingle ? 1
                                                       : cfg.cpuThreads;
    WorkloadResult res;
    res.workload = "Blackscholes";
    res.variant = threads == 1 ? "CPU 1T"
                               : "CPU " + std::to_string(threads) + "T";
    res.elements = cfg.totalElements;
    res.seconds = timeCpuBaseline(
        cfg, threads, [&](uint64_t beg, uint64_t end) {
            for (uint64_t i = beg; i < end; ++i)
                priceOneCpu(batch, i, out.call[i], out.put[i]);
        });

    // Accuracy of the float CPU kernel vs the double oracle.
    ErrorAccumulator acc;
    for (uint64_t i = 0; i < std::min<uint64_t>(sample, 10000); ++i) {
        double c, p;
        priceOneReference(batch, i, c, p);
        acc.add(out.call[i], c);
        acc.add(out.put[i], p);
    }
    res.maxAbsError = acc.stats().maxAbs;
    res.rmse = acc.stats().rmse;
    return res;
}

WorkloadResult
runPim(BsVariant variant, const WorkloadConfig& cfg)
{
    BsFunctions fn;
    std::string label;
    switch (variant) {
      case BsVariant::PimPoly:
        fn = fromEvaluators(Method::Poly, cfg);
        label = "PIM poly";
        break;
      case BsVariant::PimMLut:
        fn = fromEvaluators(Method::MLut, cfg);
        label = "PIM M-LUT interp.";
        break;
      case BsVariant::PimLLut:
        fn = fromEvaluators(Method::LLut, cfg);
        label = "PIM L-LUT interp.";
        break;
      default:
        fn = fixedLLutFunctions(cfg);
        label = "PIM fixed L-LUT interp.";
        break;
    }

    WorkloadResult res;
    res.workload = "Blackscholes";
    res.variant = label;
    res.elements = cfg.totalElements;
    res.setupSeconds = fn.setupSeconds;

    sim::PimSystem sys(cfg.simulatedDpus);
    uint32_t perDpu = cfg.elementsPerSimDpu;
    uint64_t simTotal = static_cast<uint64_t>(perDpu) * sys.numDpus();
    OptionBatch batch = generateOptions(simTotal, cfg.seed);

    // Place tables + input arrays on every simulated DPU.
    std::vector<uint32_t> addr(7);
    for (uint32_t d = 0; d < sys.numDpus(); ++d) {
        sim::DpuCore& dpu = sys.dpu(d);
        fn.attach(dpu);
        uint32_t bytes = perDpu * sizeof(float);
        for (int a = 0; a < 7; ++a)
            addr[a] = dpu.mramAlloc(bytes); // 5 in + 2 out
        uint64_t off = static_cast<uint64_t>(d) * perDpu;
        dpu.hostWriteMram(addr[0], batch.spot.data() + off, bytes);
        dpu.hostWriteMram(addr[1], batch.strike.data() + off, bytes);
        dpu.hostWriteMram(addr[2], batch.rate.data() + off, bytes);
        dpu.hostWriteMram(addr[3], batch.vol.data() + off, bytes);
        dpu.hostWriteMram(addr[4], batch.expiry.data() + off, bytes);
    }

    constexpr uint32_t chunk = 128;
    sys.launchAll(cfg.tasklets, [&](sim::TaskletContext& ctx) {
        float s[chunk], k[chunk], r[chunk], v[chunk], t[chunk];
        float call[chunk], put[chunk];
        uint32_t chunks = (perDpu + chunk - 1) / chunk;
        for (uint32_t c = ctx.taskletId(); c < chunks;
             c += ctx.numTasklets()) {
            uint32_t beg = c * chunk;
            uint32_t cnt = std::min(chunk, perDpu - beg);
            uint32_t bo = beg * sizeof(float);
            uint32_t bb = cnt * sizeof(float);
            ctx.mramRead(addr[0] + bo, s, bb);
            ctx.mramRead(addr[1] + bo, k, bb);
            ctx.mramRead(addr[2] + bo, r, bb);
            ctx.mramRead(addr[3] + bo, v, bb);
            ctx.mramRead(addr[4] + bo, t, bb);
            for (uint32_t i = 0; i < cnt; ++i) {
                ctx.charge(6); // loop + WRAM traffic
                priceOnePim(fn, s[i], k[i], r[i], v[i], t[i], &ctx,
                            call[i], put[i]);
            }
            ctx.mramWrite(addr[5] + bo, call, bb);
            ctx.mramWrite(addr[6] + bo, put, bb);
        }
    });

    // Project the slowest simulated DPU to the full machine.
    res.pimKernelSeconds =
        projectPimSeconds(cfg, sys.model(), sys.lastMaxCycles());
    res.hostToPimSeconds = fullTransferSeconds(
        cfg, sys.model(), cfg.totalElements * 5 * sizeof(float));
    res.pimToHostSeconds = fullTransferSeconds(
        cfg, sys.model(), cfg.totalElements * 2 * sizeof(float));
    res.seconds = res.pimKernelSeconds + res.hostToPimSeconds +
                  res.pimToHostSeconds + res.setupSeconds;

    // Accuracy from a simulated DPU's actual outputs. All DPUs share
    // the same MRAM layout, so addr[] (recorded on the last DPU) is
    // valid on any of them; read back the last DPU's share.
    ErrorAccumulator acc;
    std::vector<float> call(perDpu), put(perDpu);
    sim::DpuCore& dpuL = sys.dpu(sys.numDpus() - 1);
    dpuL.hostReadMram(addr[5], call.data(), perDpu * sizeof(float));
    dpuL.hostReadMram(addr[6], put.data(), perDpu * sizeof(float));
    uint64_t off =
        static_cast<uint64_t>(sys.numDpus() - 1) * perDpu;
    for (uint32_t i = 0; i < perDpu; ++i) {
        double c, p;
        priceOneReference(batch, off + i, c, p);
        acc.add(call[i], c);
        acc.add(put[i], p);
    }
    res.maxAbsError = acc.stats().maxAbs;
    res.rmse = acc.stats().rmse;
    return res;
}

} // namespace

OptionPrices
priceReference(const OptionBatch& batch)
{
    OptionPrices out;
    out.call.resize(batch.size());
    out.put.resize(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
        double c, p;
        priceOneReference(batch, i, c, p);
        out.call[i] = static_cast<float>(c);
        out.put[i] = static_cast<float>(p);
    }
    return out;
}

WorkloadResult
runBlackscholes(BsVariant variant, const WorkloadConfig& cfg)
{
    if (variant == BsVariant::CpuSingle || variant == BsVariant::CpuMulti)
        return runCpu(variant, cfg);
    return runPim(variant, cfg);
}

std::vector<WorkloadResult>
runBlackscholesAll(const WorkloadConfig& cfg)
{
    std::vector<WorkloadResult> rows;
    for (BsVariant v :
         {BsVariant::CpuSingle, BsVariant::CpuMulti, BsVariant::PimPoly,
          BsVariant::PimMLut, BsVariant::PimLLut,
          BsVariant::PimFixedLLut}) {
        rows.push_back(runBlackscholes(v, cfg));
    }
    return rows;
}

} // namespace work
} // namespace tpl
