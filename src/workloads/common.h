/**
 * @file
 * Shared workload infrastructure: run configuration, result records,
 * CPU baseline timing, and full-system projection.
 *
 * Methodology (documented in EXPERIMENTS.md): PIM variants simulate a
 * small number of DPUs executing their exact per-core element share and
 * project the cycle counts to the paper's 2545-DPU system; CPU
 * baselines run real code on the host (timed over a subset and scaled
 * linearly). When the host machine has fewer cores than the configured
 * CPU thread count, the multithreaded baseline falls back to a
 * documented scaling model instead of a meaningless oversubscribed
 * measurement.
 */

#ifndef TPL_WORKLOADS_COMMON_H
#define TPL_WORKLOADS_COMMON_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "pimsim/system.h"

namespace tpl {
namespace work {

/** Configuration of one workload experiment. */
struct WorkloadConfig
{
    /** Total elements of the modeled problem (paper: 10M / 30M). */
    uint64_t totalElements = 10'000'000;

    /** Elements each *simulated* DPU actually executes. */
    uint32_t elementsPerSimDpu = 1u << 12;

    /** Number of DPUs actually simulated. */
    uint32_t simulatedDpus = 2;

    /** DPUs of the modeled machine (paper: 2545). */
    uint32_t systemDpus = 2545;

    /** Tasklets per DPU (paper: 16). */
    uint32_t tasklets = 16;

    /** CPU baseline thread count (paper: 32). */
    uint32_t cpuThreads = 32;

    /** Elements the CPU baseline actually times (scaled up linearly). */
    uint64_t cpuSampleElements = 2'000'000;

    /**
     * Parallel efficiency assumed for the multithreaded CPU baseline
     * when the host cannot actually run that many cores (memory-bound
     * streaming workloads on a 2-socket Xeon scale at ~60-75%).
     */
    double cpuParallelEfficiency = 0.7;

    /** LUT budget for LUT-based PIM variants. */
    uint32_t log2Entries = 12;

    /** Polynomial degree for the poly PIM baseline. */
    uint32_t polyDegree = 11;

    /** Input range for the activation workloads (sigmoid/softmax). */
    float inputLo = -8.0f;
    float inputHi = 8.0f;

    /**
     * Softmax: subtract the global maximum before exponentiating
     * (numerically stable for wide input ranges, at the price of one
     * extra reduction pass through the host).
     */
    bool stableSoftmax = false;

    uint64_t seed = 0xb1ac5c01e5;
};

/** One row of the paper's Figure 9. */
struct WorkloadResult
{
    std::string workload;  ///< "Blackscholes" / "Sigmoid" / "Softmax"
    std::string variant;   ///< "CPU 1T", "PIM L-LUT interp.", ...
    double seconds = 0;    ///< end-to-end execution time
    double pimKernelSeconds = 0;
    double hostToPimSeconds = 0;
    double pimToHostSeconds = 0;
    double setupSeconds = 0;
    double maxAbsError = 0; ///< vs double-precision reference
    double rmse = 0;
    uint64_t elements = 0;
};

/**
 * Time @p body(begin, end) over a sample of @p cfg.cpuSampleElements
 * elements split across @p threads threads, and scale the measurement
 * to the full problem size.
 *
 * Units: the measurement itself is host **wall-clock** time (this is
 * the one real-hardware number in a workload row — the CPU baseline
 * the PIM projection is compared against); the return value is that
 * measurement linearly scaled to the full problem. The chunks run on
 * the persistent simulator ThreadPool, so no thread spawn/join cost
 * pollutes the timed region. When the host (or the pool, see
 * TPL_SIM_THREADS) cannot provide @p threads lanes, the sample is
 * timed single-threaded and divided by threads * cpuParallelEfficiency
 * instead — a documented model, not a measurement.
 */
double timeCpuBaseline(const WorkloadConfig& cfg, uint32_t threads,
                       const std::function<void(uint64_t, uint64_t)>& body);

/**
 * Project per-DPU kernel cycles to the full system: the slowest DPU of
 * the modeled machine processes ceil(total/systemDpus) elements.
 * Returns **modeled** seconds (pure function of cycle counts and the
 * cost model — no wall-clock involved); 0 when elementsPerSimDpu,
 * systemDpus, or frequencyHz is not positive.
 */
double projectPimSeconds(const WorkloadConfig& cfg,
                         const sim::CostModel& model,
                         uint64_t cyclesPerSimDpu);

/**
 * Parallel host<->PIM transfer seconds for the full problem.
 * Returns **modeled** seconds; 0 when the model's bandwidth
 * parameters are not positive.
 */
double fullTransferSeconds(const WorkloadConfig& cfg,
                           const sim::CostModel& model,
                           uint64_t totalBytes);

} // namespace work
} // namespace tpl

#endif // TPL_WORKLOADS_COMMON_H
