/**
 * @file
 * Logistic-regression inference implementation.
 */

#include "workloads/logistic.h"

#include <algorithm>
#include <cmath>

#include "common/error_metrics.h"
#include "common/rng.h"
#include "softfloat/softfloat.h"
#include "transpim/evaluator.h"

namespace tpl {
namespace work {

using transpim::Function;
using transpim::FunctionEvaluator;
using transpim::Method;
using transpim::MethodSpec;
using transpim::Placement;

namespace {

std::string
variantLabel(LogisticVariant v)
{
    switch (v) {
      case LogisticVariant::CpuSingle: return "CPU 1T";
      case LogisticVariant::CpuMulti: return "CPU 32T";
      case LogisticVariant::PimPoly: return "PIM poly";
      case LogisticVariant::PimLLut: return "PIM L-LUT interp.";
      case LogisticVariant::PimDlLut: return "PIM DL-LUT interp.";
    }
    return "?";
}

/** Deterministic model weights in [-1, 1] plus bias. */
std::vector<float>
generateWeights(uint32_t features, uint64_t seed)
{
    SplitMix64 rng(seed ^ 0xfeedULL);
    std::vector<float> w(features + 1); // [features] = bias
    for (auto& v : w)
        v = rng.nextFloat(-1.0f, 1.0f);
    return w;
}

/** Feature rows, scaled so logits mostly land in [-8, 8]. */
std::vector<float>
generateRows(uint64_t rows, uint32_t features, uint64_t seed)
{
    SplitMix64 rng(seed);
    std::vector<float> x(rows * features);
    float scale = 4.0f / std::sqrt(static_cast<float>(features));
    for (auto& v : x)
        v = rng.nextFloat(-scale, scale);
    return x;
}

double
referenceProbability(const float* row, const std::vector<float>& w,
                     uint32_t features)
{
    double acc = w[features];
    for (uint32_t j = 0; j < features; ++j)
        acc += static_cast<double>(row[j]) * w[j];
    return 1.0 / (1.0 + std::exp(-acc));
}

std::shared_ptr<FunctionEvaluator>
makeSigmoid(LogisticVariant v, const LogisticConfig& cfg)
{
    MethodSpec spec;
    spec.interpolated = true;
    spec.placement = Placement::Wram;
    spec.log2Entries = cfg.log2Entries;
    spec.polyDegree = cfg.polyDegree;
    switch (v) {
      case LogisticVariant::PimPoly: spec.method = Method::Poly; break;
      case LogisticVariant::PimDlLut: spec.method = Method::DlLut; break;
      default: spec.method = Method::LLut; break;
    }
    return std::make_shared<FunctionEvaluator>(
        FunctionEvaluator::create(Function::Sigmoid, spec));
}

WorkloadResult
runCpu(LogisticVariant v, const LogisticConfig& cfg)
{
    uint64_t sample =
        std::min<uint64_t>(cfg.cpuSampleElements, cfg.totalElements);
    auto w = generateWeights(cfg.features, cfg.seed);
    auto x = generateRows(sample, cfg.features, cfg.seed);
    std::vector<float> out(sample);

    uint32_t threads =
        v == LogisticVariant::CpuSingle ? 1 : cfg.cpuThreads;
    WorkloadResult res;
    res.workload = "Logistic";
    res.variant = variantLabel(v);
    res.elements = cfg.totalElements;
    res.seconds = timeCpuBaseline(
        cfg, threads, [&](uint64_t beg, uint64_t end) {
            for (uint64_t i = beg; i < end; ++i) {
                float acc = w[cfg.features];
                const float* row = &x[i * cfg.features];
                for (uint32_t j = 0; j < cfg.features; ++j)
                    acc += row[j] * w[j];
                out[i] = 1.0f / (1.0f + std::exp(-acc));
            }
        });

    ErrorAccumulator acc;
    for (uint64_t i = 0; i < std::min<uint64_t>(sample, 5000); ++i) {
        acc.add(out[i], referenceProbability(&x[i * cfg.features], w,
                                             cfg.features));
    }
    res.maxAbsError = acc.stats().maxAbs;
    res.rmse = acc.stats().rmse;
    return res;
}

WorkloadResult
runPim(LogisticVariant v, const LogisticConfig& cfg)
{
    auto sigE = makeSigmoid(v, cfg);

    WorkloadResult res;
    res.workload = "Logistic";
    res.variant = variantLabel(v);
    res.elements = cfg.totalElements;
    res.setupSeconds = sigE->setupSeconds();

    sim::PimSystem sys(cfg.simulatedDpus);
    uint32_t perDpu = cfg.elementsPerSimDpu;
    uint32_t features = cfg.features;
    uint64_t simRows = static_cast<uint64_t>(perDpu) * sys.numDpus();
    auto w = generateWeights(features, cfg.seed);
    auto x = generateRows(simRows, features, cfg.seed);

    uint32_t wAddr = 0, xAddr = 0, outAddr = 0;
    uint32_t rowBytes = features * sizeof(float);
    for (uint32_t d = 0; d < sys.numDpus(); ++d) {
        sim::DpuCore& dpu = sys.dpu(d);
        sigE->attach(dpu);
        wAddr = dpu.mramAlloc((features + 1) * sizeof(float));
        xAddr = dpu.mramAlloc(perDpu * rowBytes);
        outAddr = dpu.mramAlloc(perDpu * sizeof(float));
        dpu.hostWriteMram(wAddr, w.data(),
                          (features + 1) * sizeof(float));
        dpu.hostWriteMram(
            xAddr,
            x.data() + static_cast<uint64_t>(d) * perDpu * features,
            perDpu * rowBytes);
    }

    sys.launchAll(cfg.tasklets, [&](sim::TaskletContext& ctx) {
        // Weights are pulled into the scratchpad once per tasklet.
        std::vector<float> wl(features + 1);
        ctx.mramRead(wAddr, wl.data(), (features + 1) * sizeof(float));
        std::vector<float> row(features);
        // Output is buffered per 64-row block to batch the write-back.
        constexpr uint32_t block = 64;
        float out[block];
        uint32_t blocks = (perDpu + block - 1) / block;
        for (uint32_t b = ctx.taskletId(); b < blocks;
             b += ctx.numTasklets()) {
            uint32_t beg = b * block;
            uint32_t cnt = std::min(block, perDpu - beg);
            for (uint32_t i = 0; i < cnt; ++i) {
                ctx.mramRead(xAddr + (beg + i) * rowBytes, row.data(),
                             rowBytes);
                float acc = wl[features]; // bias
                ctx.charge(2);
                for (uint32_t j = 0; j < features; ++j) {
                    ctx.charge(3); // loop + two WRAM loads
                    acc = sf::add(acc, sf::mul(row[j], wl[j], &ctx),
                                  &ctx);
                }
                out[i] = sigE->eval(acc, &ctx);
            }
            ctx.mramWrite(outAddr + beg * sizeof(float), out,
                          cnt * sizeof(float));
        }
    });

    res.pimKernelSeconds =
        projectPimSeconds(cfg, sys.model(), sys.lastMaxCycles());
    res.hostToPimSeconds = fullTransferSeconds(
        cfg, sys.model(),
        cfg.totalElements * rowBytes +
            static_cast<uint64_t>(cfg.systemDpus) * (features + 1) *
                sizeof(float));
    res.pimToHostSeconds = fullTransferSeconds(
        cfg, sys.model(), cfg.totalElements * sizeof(float));
    res.seconds = res.pimKernelSeconds + res.hostToPimSeconds +
                  res.pimToHostSeconds + res.setupSeconds;

    ErrorAccumulator acc;
    std::vector<float> out(perDpu);
    sys.dpu(0).hostReadMram(outAddr, out.data(),
                            perDpu * sizeof(float));
    for (uint32_t i = 0; i < perDpu; ++i) {
        acc.add(out[i], referenceProbability(&x[i * features], w,
                                             features));
    }
    res.maxAbsError = acc.stats().maxAbs;
    res.rmse = acc.stats().rmse;
    return res;
}

} // namespace

WorkloadResult
runLogistic(LogisticVariant variant, const LogisticConfig& cfg)
{
    if (variant == LogisticVariant::CpuSingle ||
        variant == LogisticVariant::CpuMulti) {
        return runCpu(variant, cfg);
    }
    return runPim(variant, cfg);
}

std::vector<WorkloadResult>
runLogisticAll(const LogisticConfig& cfg)
{
    std::vector<WorkloadResult> rows;
    for (LogisticVariant v :
         {LogisticVariant::CpuSingle, LogisticVariant::CpuMulti,
          LogisticVariant::PimPoly, LogisticVariant::PimLLut,
          LogisticVariant::PimDlLut}) {
        rows.push_back(runLogistic(v, cfg));
    }
    return rows;
}

} // namespace work
} // namespace tpl
