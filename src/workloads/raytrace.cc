/**
 * @file
 * Ray-shading workload implementation.
 */

#include "workloads/raytrace.h"

#include <algorithm>
#include <cmath>

#include "common/error_metrics.h"
#include "common/bitops.h"
#include "common/rng.h"
#include "softfloat/softfloat.h"
#include "transpim/evaluator.h"
#include "transpim/ldexp.h"

namespace tpl {
namespace work {

using transpim::Function;
using transpim::FunctionEvaluator;
using transpim::Method;
using transpim::MethodSpec;
using transpim::Placement;

namespace {

// Scene constants: camera at (0,0,3) looking down -z at a unit sphere
// centered on the origin; light direction (1,1,1)/sqrt(3).
constexpr float kCamZ = 3.0f;
constexpr float kLight = 0.57735026919f;
constexpr int kShininess = 16; // power of two: the scale is an ldexp

std::string
variantLabel(RayVariant v)
{
    switch (v) {
      case RayVariant::CpuSingle: return "CPU 1T";
      case RayVariant::CpuMulti: return "CPU 32T";
      case RayVariant::PimPoly: return "PIM poly";
      case RayVariant::PimLLut: return "PIM L-LUT interp.";
    }
    return "?";
}

/** Ray directions (dx, dy) with dz = -1 implied; interleaved pairs. */
std::vector<float>
generateRays(uint64_t rays, uint64_t seed)
{
    return uniformFloats(rays * 2, -0.5f, 0.5f, seed);
}

/** Double-precision shading oracle. */
double
shadeReference(float dx, float dy)
{
    double len2 = (double)dx * dx + (double)dy * dy + 1.0;
    double inv = 1.0 / std::sqrt(len2);
    double nz = -inv; // normalized dz
    double b = kCamZ * nz;
    double disc = b * b - 8.0;
    if (disc < 0.0)
        return 0.0;
    double t = -b - std::sqrt(disc);
    double px = t * (dx * inv);
    double py = t * (dy * inv);
    double pz = kCamZ + t * nz;
    double diff = (px + py + pz) * kLight;
    if (diff <= 1e-4)
        return 0.0;
    double spec = std::exp2(kShininess * std::log2(diff));
    return diff + 0.5 * spec;
}

/** Float/libm shading (the CPU baseline kernel). */
float
shadeCpu(float dx, float dy)
{
    float len2 = dx * dx + dy * dy + 1.0f;
    float inv = 1.0f / std::sqrt(len2);
    float nz = -inv;
    float b = kCamZ * nz;
    float disc = b * b - 8.0f;
    if (disc < 0.0f)
        return 0.0f;
    float t = -b - std::sqrt(disc);
    float px = t * (dx * inv);
    float py = t * (dy * inv);
    float pz = kCamZ + t * nz;
    float diff = (px + py + pz) * kLight;
    if (diff <= 1e-4f)
        return 0.0f;
    float spec = std::exp2(kShininess * std::log2(diff));
    return diff + 0.5f * spec;
}

/** The four transcendental providers of a PIM variant. */
struct RayFunctions
{
    std::shared_ptr<FunctionEvaluator> rsqrt;
    std::shared_ptr<FunctionEvaluator> sqrt;
    std::shared_ptr<FunctionEvaluator> log2;
    std::shared_ptr<FunctionEvaluator> exp2;
};

RayFunctions
makeFunctions(RayVariant v, const WorkloadConfig& cfg)
{
    MethodSpec spec;
    spec.interpolated = true;
    spec.placement = Placement::Wram;
    spec.log2Entries = cfg.log2Entries;
    spec.polyDegree = cfg.polyDegree;
    spec.method =
        v == RayVariant::PimPoly ? Method::Poly : Method::LLut;
    RayFunctions f;
    f.rsqrt = std::make_shared<FunctionEvaluator>(
        FunctionEvaluator::create(Function::Rsqrt, spec));
    f.sqrt = std::make_shared<FunctionEvaluator>(
        FunctionEvaluator::create(Function::Sqrt, spec));
    f.log2 = std::make_shared<FunctionEvaluator>(
        FunctionEvaluator::create(Function::Log2, spec));
    f.exp2 = std::make_shared<FunctionEvaluator>(
        FunctionEvaluator::create(Function::Exp2, spec));
    return f;
}

/** One ray shaded with instrumented PIM arithmetic. */
float
shadePim(const RayFunctions& fn, float dx, float dy, InstrSink* sink)
{
    using namespace tpl::sf;
    using transpim::pimLdexp;

    float len2 = add(add(mul(dx, dx, sink), mul(dy, dy, sink), sink),
                     1.0f, sink);
    float inv = fn.rsqrt->eval(len2, sink);
    float nz = neg(inv, sink);
    float b = mul(kCamZ, nz, sink);
    float disc = sub(mul(b, b, sink), 8.0f, sink);
    chargeInstr(sink, 2); // sign test + branch
    if (floatBits(disc) >> 31)
        return 0.0f; // ray misses the sphere
    float t = sub(neg(b, sink), fn.sqrt->eval(disc, sink), sink);
    float px = mul(t, mul(dx, inv, sink), sink);
    float py = mul(t, mul(dy, inv, sink), sink);
    float pz = add(kCamZ, mul(t, nz, sink), sink);
    float diff =
        mul(add(add(px, py, sink), pz, sink), kLight, sink);
    chargeInstr(sink, 2);
    if (le(diff, 1e-4f, sink))
        return 0.0f;
    // diff^16 = 2^(16 * log2 diff); the x16 is an exponent add.
    float l2 = fn.log2->eval(diff, sink);
    float spec = fn.exp2->eval(pimLdexp(l2, 4, sink), sink);
    return add(diff, pimLdexp(spec, -1, sink), sink);
}

WorkloadResult
runCpu(RayVariant v, const WorkloadConfig& cfg)
{
    uint64_t sample =
        std::min<uint64_t>(cfg.cpuSampleElements, cfg.totalElements);
    auto rays = generateRays(sample, cfg.seed);
    std::vector<float> out(sample);

    uint32_t threads = v == RayVariant::CpuSingle ? 1 : cfg.cpuThreads;
    WorkloadResult res;
    res.workload = "Raytrace";
    res.variant = variantLabel(v);
    res.elements = cfg.totalElements;
    res.seconds = timeCpuBaseline(
        cfg, threads, [&](uint64_t beg, uint64_t end) {
            for (uint64_t i = beg; i < end; ++i)
                out[i] = shadeCpu(rays[2 * i], rays[2 * i + 1]);
        });

    ErrorAccumulator acc;
    for (uint64_t i = 0; i < std::min<uint64_t>(sample, 5000); ++i)
        acc.add(out[i], shadeReference(rays[2 * i], rays[2 * i + 1]));
    res.maxAbsError = acc.stats().maxAbs;
    res.rmse = acc.stats().rmse;
    return res;
}

WorkloadResult
runPim(RayVariant v, const WorkloadConfig& cfg)
{
    RayFunctions fn = makeFunctions(v, cfg);

    WorkloadResult res;
    res.workload = "Raytrace";
    res.variant = variantLabel(v);
    res.elements = cfg.totalElements;
    res.setupSeconds = fn.rsqrt->setupSeconds() +
                       fn.sqrt->setupSeconds() +
                       fn.log2->setupSeconds() +
                       fn.exp2->setupSeconds();

    sim::PimSystem sys(cfg.simulatedDpus);
    uint32_t perDpu = cfg.elementsPerSimDpu;
    uint64_t simRays = static_cast<uint64_t>(perDpu) * sys.numDpus();
    auto rays = generateRays(simRays, cfg.seed);

    uint32_t inAddr = 0, outAddr = 0;
    for (uint32_t d = 0; d < sys.numDpus(); ++d) {
        sim::DpuCore& dpu = sys.dpu(d);
        fn.rsqrt->attach(dpu);
        fn.sqrt->attach(dpu);
        fn.log2->attach(dpu);
        fn.exp2->attach(dpu);
        inAddr = dpu.mramAlloc(perDpu * 2 * sizeof(float));
        outAddr = dpu.mramAlloc(perDpu * sizeof(float));
        dpu.hostWriteMram(
            inAddr, rays.data() + static_cast<uint64_t>(d) * perDpu * 2,
            perDpu * 2 * sizeof(float));
    }

    constexpr uint32_t chunk = 128;
    sys.launchAll(cfg.tasklets, [&](sim::TaskletContext& ctx) {
        float dirs[2 * chunk];
        float out[chunk];
        uint32_t chunks = (perDpu + chunk - 1) / chunk;
        for (uint32_t c = ctx.taskletId(); c < chunks;
             c += ctx.numTasklets()) {
            uint32_t beg = c * chunk;
            uint32_t cnt = std::min(chunk, perDpu - beg);
            ctx.mramRead(inAddr + beg * 2 * sizeof(float), dirs,
                         cnt * 2 * sizeof(float));
            for (uint32_t i = 0; i < cnt; ++i) {
                ctx.charge(5);
                out[i] = shadePim(fn, dirs[2 * i], dirs[2 * i + 1],
                                  &ctx);
            }
            ctx.mramWrite(outAddr + beg * sizeof(float), out,
                          cnt * sizeof(float));
        }
    });

    res.pimKernelSeconds =
        projectPimSeconds(cfg, sys.model(), sys.lastMaxCycles());
    res.hostToPimSeconds = fullTransferSeconds(
        cfg, sys.model(), cfg.totalElements * 2 * sizeof(float));
    res.pimToHostSeconds = fullTransferSeconds(
        cfg, sys.model(), cfg.totalElements * sizeof(float));
    res.seconds = res.pimKernelSeconds + res.hostToPimSeconds +
                  res.pimToHostSeconds + res.setupSeconds;

    ErrorAccumulator acc;
    std::vector<float> out(perDpu);
    sys.dpu(0).hostReadMram(outAddr, out.data(),
                            perDpu * sizeof(float));
    for (uint32_t i = 0; i < perDpu; ++i)
        acc.add(out[i], shadeReference(rays[2 * i], rays[2 * i + 1]));
    res.maxAbsError = acc.stats().maxAbs;
    res.rmse = acc.stats().rmse;
    return res;
}

} // namespace

WorkloadResult
runRaytrace(RayVariant variant, const WorkloadConfig& cfg)
{
    if (variant == RayVariant::CpuSingle ||
        variant == RayVariant::CpuMulti) {
        return runCpu(variant, cfg);
    }
    return runPim(variant, cfg);
}

std::vector<WorkloadResult>
runRaytraceAll(const WorkloadConfig& cfg)
{
    std::vector<WorkloadResult> rows;
    for (RayVariant v : {RayVariant::CpuSingle, RayVariant::CpuMulti,
                         RayVariant::PimPoly, RayVariant::PimLLut}) {
        rows.push_back(runRaytrace(v, cfg));
    }
    return rows;
}

} // namespace work
} // namespace tpl
