/**
 * @file
 * Blackscholes option-pricing workload (paper Section 4.1.2).
 *
 * Prices a portfolio of European options with the Black-Scholes
 * closed-form solution, which exercises four TransPimLib functions per
 * option: logarithm, square root, exponentiation, and the cumulative
 * normal distribution function (CNDF). Variants:
 *
 *  - CPU 1T / CPU 32T: float libm on the host (measured).
 *  - PIM poly: polynomial approximation for all four functions (the
 *    paper's PIM baseline; CNDF uses the Abramowitz-Stegun polynomial
 *    of the original benchmark).
 *  - PIM M-LUT / L-LUT: interpolated fuzzy LUTs.
 *  - PIM fixed L-LUT: Q3.28 tables for the four functions, with
 *    domain-tuned tables for log and sqrt (their generic domains do
 *    not fit Q3.28; the option-parameter ranges do).
 */

#ifndef TPL_WORKLOADS_BLACKSCHOLES_H
#define TPL_WORKLOADS_BLACKSCHOLES_H

#include <vector>

#include "workloads/common.h"

namespace tpl {
namespace work {

/** Option portfolio in structure-of-arrays layout. */
struct OptionBatch
{
    std::vector<float> spot;     ///< S
    std::vector<float> strike;   ///< K
    std::vector<float> rate;     ///< r
    std::vector<float> vol;      ///< v
    std::vector<float> expiry;   ///< T

    size_t size() const { return spot.size(); }
};

/** Generate a deterministic option portfolio. */
OptionBatch generateOptions(size_t n, uint64_t seed);

/** Call/put prices. */
struct OptionPrices
{
    std::vector<float> call;
    std::vector<float> put;
};

/** Double-precision reference pricing (accuracy oracle). */
OptionPrices priceReference(const OptionBatch& batch);

/** Blackscholes PIM variants. */
enum class BsVariant
{
    CpuSingle,
    CpuMulti,
    PimPoly,
    PimMLut,
    PimLLut,
    PimFixedLLut,
};

/** Run one variant and report its Figure 9 row. */
WorkloadResult runBlackscholes(BsVariant variant,
                               const WorkloadConfig& cfg);

/** Run all variants (one Figure 9 group). */
std::vector<WorkloadResult> runBlackscholesAll(const WorkloadConfig& cfg);

} // namespace work
} // namespace tpl

#endif // TPL_WORKLOADS_BLACKSCHOLES_H
