/**
 * @file
 * The concrete online per-tenant auto-tuner: the serve-layer
 * AutoTuner seam (pimsim/serve/auto_tuner.h) backed by the transpim
 * catalog and the static tuner's candidate search.
 *
 * Per (tenant, requested-table) stream the tuner
 *
 *  1. generates candidate configurations with recommendSpec() against
 *     the stream's SLA accuracy target (or the requested config's own
 *     measured RMSE when the SLA has no accuracy clause — a candidate
 *     is never allowed to be *less* accurate than what was asked),
 *     validates each with a full create+attach probe on a scratch
 *     system, and registers the survivors into the EvaluatorCatalog;
 *  2. explores each candidate for a fixed element budget, measuring
 *     exact differential error (stride-sampled against the double
 *     reference) and modeled cycles per element on live waves;
 *  3. commits to the cheapest candidate whose *observed* behavior
 *     meets every SLA clause, and keeps monitoring: a committed
 *     candidate that later violates an accuracy clause is abandoned
 *     (an "sla-miss" decision) and the stream re-commits.
 *
 * MRAM-budget arbitration: with a nonzero budget the tuner accounts
 * the per-DPU footprint of every table it currently routes to; when
 * activating a table would overflow the budget it evicts — via
 * TableCache::evict, so holding ranks re-broadcast on next use — the
 * least-recently-routed tables no stream is currently using. A table
 * that still cannot fit is skipped ("budget" decision) and the stream
 * falls back to the requested configuration.
 *
 * Everything is a pure function of route()/observe() inputs, which
 * the serve drivers supply in wave order from the consumer thread —
 * tuned runs are bit-identical at any TPL_SIM_THREADS (locked by
 * test). Decisions land in decisions(), `tune` journal events, and
 * the `tuner/ *` counter family.
 */

#ifndef TPL_TRANSPIM_AUTO_TUNER_H
#define TPL_TRANSPIM_AUTO_TUNER_H

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "pimsim/serve/auto_tuner.h"
#include "transpim/serve_glue.h"
#include "transpim/tuner.h"

namespace tpl {
namespace transpim {

/** Knobs of the online tuner. */
struct AutoTunerOptions
{
    /** Elements each candidate is explored for before the stream may
     * commit (one epoch; small = fast commit, large = tighter
     * observed statistics). */
    uint64_t exploreElements = 2048;

    /** Candidates per stream, including the requested configuration
     * (always candidate 0). */
    uint32_t maxCandidates = 3;

    /** Per-DPU byte budget across every table the tuner actively
     * routes to; 0 = unlimited. Exceeding it triggers eviction of
     * least-recently-routed idle tables (see file comment). */
    uint64_t mramBudgetBytes = 0;

    /** Max differential-error samples taken per observed wave
     * (stride-sampled across the wave's healthy spans). */
    uint32_t sampleCap = 256;

    /** Per-table byte cap handed to recommendSpec when generating
     * candidates. */
    uint32_t maxTableBytes = 48 * 1024;

    /** Sample size for the candidate search and for measuring the
     * requested config's baseline RMSE. */
    uint32_t searchSamples = 1024;

    /** SLA applied to tenants without an explicit setTenantSla();
     * default-constructed (unconstrained) = those tenants pass
     * through untuned. */
    sim::serve::TenantSla defaultSla;
};

/** Snapshot of one stream's state (CLI reporting). */
struct StreamReport
{
    uint64_t tenant = 0;
    std::string requested; ///< requested table label
    std::string chosen;    ///< currently routed table label
    std::string sla;       ///< canonical SLA text ("" = untunable)
    bool tunable = false;
    bool committed = false;
    uint64_t elements = 0;      ///< observed on the chosen candidate
    double cyclesPerElement = 0.0; ///< observed, chosen candidate
    double rmse = 0.0;          ///< observed, chosen candidate
    double maxUlp = 0.0;        ///< observed, chosen candidate
    bool slaViolated = false;   ///< chosen candidate violates a clause
    uint64_t switches = 0;      ///< times the stream's route changed
};

/**
 * The online tuner. Construct one per pipeline run (it is stateful),
 * over a catalog that outlives it; wire it up via
 * PipelineOptions::autoTuner. The catalog gains the candidate
 * configurations the tuner generates (EvaluatorCatalog::add).
 */
class OnlineAutoTuner final : public sim::serve::AutoTuner
{
  public:
    explicit OnlineAutoTuner(EvaluatorCatalog& catalog,
                             const AutoTunerOptions& options = {});
    ~OnlineAutoTuner() override;

    /** Register @p tenant's SLA (overrides the default SLA). */
    void setTenantSla(uint64_t tenant,
                      const sim::serve::TenantSla& sla);

    /** SLA governing @p tenant (explicit or default). */
    sim::serve::TenantSla tenantSla(uint64_t tenant) const;

    Routing route(const sim::serve::TableKey& requested,
                  uint64_t tenant) override;
    void observe(const sim::serve::WaveOutcome& outcome) override;
    void bindCache(sim::serve::TableCache* cache) override;
    std::vector<sim::serve::TuneDecision> decisions() const override;

    /** One report per stream, in (tenant, requested-hash) order. */
    std::vector<StreamReport> streamReports() const;

    const AutoTunerOptions& options() const { return opts_; }

  private:
    /** One candidate configuration and what has been observed of it. */
    struct Candidate
    {
        sim::serve::TableKey key;
        Function function = Function::Sin;
        MethodSpec spec;
        uint32_t tableBytes = 0; ///< per-DPU footprint (probed)
        bool relativeError = false;

        // Observed, cumulative over this stream's waves.
        uint64_t elements = 0;
        uint64_t totalCycles = 0;
        double sumSqError = 0.0;
        uint64_t errorSamples = 0;
        double maxUlp = 0.0;
        std::vector<double> waveCyclesPerElement;
        bool violated = false; ///< failed an SLA clause; excluded

        double cyclesPerElement() const;
        double rmse() const;
    };

    /** One (tenant, requested-table) stream. */
    struct Stream
    {
        uint64_t tenant = 0;
        sim::serve::TableKey requested;
        sim::serve::TenantSla sla;
        /** Accuracy bound in force when the SLA has no rmse clause:
         * a slack multiple of the requested config's own measured
         * RMSE (candidates must never be worse than asked). 0 when
         * the SLA carries an explicit rmse clause. */
        double implicitRmse = 0.0;
        bool tunable = false;
        std::vector<Candidate> candidates; ///< [0] = requested
        size_t active = 0;     ///< candidate route() currently picks
        bool committed = false;
        uint64_t lastRoutedHash = 0;
        std::string lastReason; ///< reason of the pending switch
        uint64_t switches = 0;
    };

    using StreamKey = std::pair<uint64_t, uint64_t>; ///< (tenant, hash)

    Stream& streamFor(const sim::serve::TableKey& requested,
                      uint64_t tenant);
    void buildCandidates(Stream& s);
    /** Probe (create + attach) @p spec; per-DPU bytes, or nullopt. */
    std::optional<uint32_t> probeSpec(Function f,
                                      const MethodSpec& spec);
    /** Observed cycles/element of @p c under the stream's cycles
     * clause (mean, or the SLA percentile). */
    double cyclesScore(const Stream& s, const Candidate& c) const;
    /** Re-check @p c against every SLA clause; marks violated. */
    void checkSla(Stream& s, Candidate& c);
    /** Pick and commit the best non-violated explored candidate. */
    void commit(Stream& s, const char* reason);
    void recordDecision(const Stream& s, const std::string& from,
                        const std::string& to, const char* reason);
    /** MRAM arbitration: account (and if needed make room for)
     * @p c's table; false when it cannot fit. */
    bool activate(const StreamKey& sk, const Candidate& c);

    EvaluatorCatalog& catalog_;
    AutoTunerOptions opts_;
    sim::serve::TableCache* cache_ = nullptr;
    std::map<uint64_t, sim::serve::TenantSla> tenantSlas_;
    std::map<StreamKey, Stream> streams_;
    /** (tenant, executed-table hash) -> owning stream, for observe()
     * dispatch. First registration wins. */
    std::map<StreamKey, StreamKey> aliases_;
    /** Tables the tuner currently routes to: hash -> (bytes,
     * last-routed sequence, key). */
    struct ActiveTable
    {
        sim::serve::TableKey key;
        uint64_t bytes = 0;
        uint64_t lastUsed = 0;
    };
    std::map<uint64_t, ActiveTable> active_;
    uint64_t activeBytes_ = 0;
    uint64_t routeSeq_ = 0;
    uint64_t decisionSeq_ = 0;
    std::vector<sim::serve::TuneDecision> decisions_;
    /** Scratch system candidate probes attach to (never simulated). */
    std::unique_ptr<sim::PimSystem> probeSys_;
};

} // namespace transpim
} // namespace tpl

#endif // TPL_TRANSPIM_AUTO_TUNER_H
