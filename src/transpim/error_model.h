/**
 * @file
 * Analytic accuracy predictors for the implementation methods.
 *
 * Section 2.2.2 of the paper derives how table error behaves: for a
 * round-to-nearest fuzzy LUT the error follows the spacing and the
 * function's first derivative; with interpolation it follows the
 * spacing squared and the second derivative; CORDIC converges roughly
 * one bit per iteration. These closed forms predict a configuration's
 * RMSE *before building it*:
 *
 *   non-interp:  RMSE ~ (s / sqrt(12)) * rms(f')      (s = spacing)
 *   interp:      RMSE ~ (s^2 / sqrt(120)) * rms(f'')
 *   CORDIC:      RMSE ~ 2^-(iterations)  (angle error propagated)
 *
 * all floored at the binary32 output grid. The predictors are verified
 * against measured RMSE across the sweep in tests/error_model_test.cc
 * (within a small constant factor - they are scaling laws, not exact),
 * and serve as a fast pre-filter for the auto-tuner's knob search.
 */

#ifndef TPL_TRANSPIM_ERROR_MODEL_H
#define TPL_TRANSPIM_ERROR_MODEL_H

#include "transpim/evaluator.h"
#include "transpim/fuzzy_lut.h"

namespace tpl {
namespace transpim {

/** RMS of a function's k-th derivative over [lo, hi] (sampled). */
double rmsDerivative(const TableFn& f, double lo, double hi, int order,
                     int samples = 2048);

/**
 * Predicted RMSE of evaluating @p fn with @p spec over the function's
 * native table interval. Conservative scaling law; the binary32
 * output floor (~1e-8) is applied.
 */
double predictRmse(Function fn, const MethodSpec& spec);

/**
 * Smallest LUT entry budget (log2) predicted to achieve
 * @p targetRmse for @p fn with an interpolated L-LUT, or -1 when the
 * target sits below the binary32 floor.
 */
int predictLog2Entries(Function fn, double targetRmse);

} // namespace transpim
} // namespace tpl

#endif // TPL_TRANSPIM_ERROR_MODEL_H
