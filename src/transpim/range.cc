#include "transpim/range.h"

namespace tpl {
namespace transpim {

float
reduceTwoPi(float x, InstrSink* sink)
{
    SinkRef s(sink);
    return reduceTwoPiT(x, s);
}

QuadrantReduced
reduceQuadrant(float x, InstrSink* sink)
{
    SinkRef s(sink);
    return reduceQuadrantT(x, s);
}

ExpSplit
splitExp(float x, InstrSink* sink)
{
    SinkRef s(sink);
    return splitExpT(x, s);
}

LogSplit
splitLog(float x, InstrSink* sink)
{
    SinkRef s(sink);
    return splitLogT(x, s);
}

SqrtSplit
splitSqrt(float x, InstrSink* sink)
{
    SinkRef s(sink);
    return splitSqrtT(x, s);
}

Fixed
reduceTwoPiFixed(Fixed x, InstrSink* sink)
{
    SinkRef s(sink);
    return reduceTwoPiFixedT(x, s);
}

} // namespace transpim
} // namespace tpl
