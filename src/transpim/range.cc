/**
 * @file
 * Range reduction / extension implementations.
 */

#include "transpim/range.h"

#include "common/bitops.h"
#include "softfloat/softfloat.h"
#include "transpim/ldexp.h"

namespace tpl {
namespace transpim {

namespace {

constexpr float kTwoPi = 6.28318530717958647692f;
constexpr float kPi = 3.14159265358979323846f;
constexpr float kHalfPi = 1.57079632679489661923f;
constexpr float kInvTwoPi = 0.15915494309189533577f;
constexpr float kLog2e = 1.44269504088896340736f;

// Cody-Waite split of ln2: hi has a short mantissa so k*ln2Hi is exact
// for the k range of interest, lo holds the residual.
constexpr float kLn2Hi = 0.693145751953125f;       // 0x1.62e3p-1
constexpr float kLn2Lo = 1.42860677e-06f;          // ln2 - kLn2Hi

} // namespace

float
reduceTwoPi(float x, InstrSink* sink)
{
    // n = floor(x / 2pi); x - n * 2pi. One multiply by the reciprocal,
    // a float->int floor, an int->float, a multiply and a subtract.
    float t = sf::mul(x, kInvTwoPi, sink);
    int32_t n = sf::toI32Floor(t, sink);
    float fn = sf::fromI32(n, sink);
    return sf::sub(x, sf::mul(fn, kTwoPi, sink), sink);
}

QuadrantReduced
reduceQuadrant(float x, InstrSink* sink)
{
    // Conditional subtraction: at most two compares and two subtracts,
    // cheaper than the multiply-based reduction on a PIM core.
    QuadrantReduced out{x, 0};
    if (sf::le(kPi, out.r, sink)) {
        out.r = sf::sub(out.r, kPi, sink);
        out.q += 2;
    }
    if (sf::le(kHalfPi, out.r, sink)) {
        out.r = sf::sub(out.r, kHalfPi, sink);
        out.q += 1;
    }
    chargeInstr(sink, 2); // quadrant bookkeeping
    return out;
}

ExpSplit
splitExp(float x, InstrSink* sink)
{
    ExpSplit out;
    float t = sf::mul(x, kLog2e, sink);
    out.k = sf::toI32Floor(t, sink);
    float fk = sf::fromI32(out.k, sink);
    // Cody-Waite: r = (x - k*ln2Hi) - k*ln2Lo keeps r accurate even
    // though k*ln2 is not exactly representable.
    float r = sf::sub(x, sf::mul(fk, kLn2Hi, sink), sink);
    out.r = sf::sub(r, sf::mul(fk, kLn2Lo, sink), sink);
    return out;
}

LogSplit
splitLog(float x, InstrSink* sink)
{
    uint32_t bits = floatBits(x);
    int e = static_cast<int>(ieeeExponent(bits));
    int k0 = 0;
    if (e == 0) {
        // Subnormal: normalize by scaling with 2^24 first.
        x = pimLdexp(x, 24, sink);
        bits = floatBits(x);
        e = static_cast<int>(ieeeExponent(bits));
        k0 = -24;
    }
    chargeInstr(sink, 6); // exponent extract, rebias, mantissa repack
    LogSplit out;
    out.k = e - ieeeBias + k0;
    out.m = bitsToFloat(ieeePack(0, ieeeBias, ieeeMantissa(bits)));
    return out;
}

SqrtSplit
splitSqrt(float x, InstrSink* sink)
{
    uint32_t bits = floatBits(x);
    int e = static_cast<int>(ieeeExponent(bits));
    int k0 = 0;
    if (e == 0) {
        // Subnormal: scale by 2^24 (even power, so k adjusts by 12).
        x = pimLdexp(x, 24, sink);
        bits = floatBits(x);
        e = static_cast<int>(ieeeExponent(bits));
        k0 = -12;
    }
    chargeInstr(sink, 8); // extract, halve exponent, repack
    int eUnb = e - ieeeBias;
    int k = (eUnb + 1) >> 1; // ceil(e/2): m lands in [0.5, 2)
    int me = eUnb - 2 * k;   // 0 or -1
    SqrtSplit out;
    out.k = k + k0;
    out.m = bitsToFloat(ieeePack(
        0, static_cast<uint32_t>(ieeeBias + me), ieeeMantissa(bits)));
    return out;
}

Fixed
reduceTwoPiFixed(Fixed x, InstrSink* sink)
{
    // Q3.28 holds < 8, so at most one conditional add/subtract of 2*pi
    // is ever needed; the float pipeline performs the wide reduction.
    chargeInstr(sink, 4);
    int32_t twoPi = fixedTwoPi().raw();
    int32_t v = x.raw();
    if (v < 0)
        v += twoPi;
    if (v >= twoPi)
        v -= twoPi;
    return Fixed::fromRaw(v);
}

} // namespace transpim
} // namespace tpl
