/**
 * @file
 * Combined CORDIC + LUT method (Section 3.3.2 of the paper).
 *
 * The first iterations of CORDIC are replaced by one lookup: the table
 * maps the leading bits of the input angle to a pre-rotated vector
 * (x, y) - with the gain of the *remaining* iterations already folded
 * in - plus the grid angle, so the engine only runs the tail
 * iterations on the residual z. This buys a flexible tradeoff between
 * computing cost, table size, and precision within the bounds of the
 * pure CORDIC and pure LUT approaches. The address generation is
 * L-LUT-style (ldexp + round), so the lookup adds no multiplication.
 */

#ifndef TPL_TRANSPIM_CORDIC_LUT_H
#define TPL_TRANSPIM_CORDIC_LUT_H

#include "transpim/cordic.h"
#include "transpim/placement.h"

namespace tpl {
namespace transpim {

/**
 * CORDIC engine whose first iterations are a table lookup.
 */
class CordicLutEngine
{
  public:
    /** One pre-rotated table entry. */
    struct Entry
    {
        float x; ///< cos/cosh of the grid angle, tail-gain folded in
        float y; ///< sin/sinh of the grid angle, tail-gain folded in
        float a; ///< the grid angle itself (subtracted from z)
    };

    using Result = CordicEngine::Result;

    /**
     * @param mode rotation family.
     * @param iterations total equivalent iterations n (accuracy ~2^-n).
     * @param gridBits g: table grid spacing 2^-g radians; iterations
     *        with shift index < g are replaced by the lookup.
     * @param lo smallest angle the table covers.
     * @param hi largest angle the table covers.
     */
    CordicLutEngine(CordicMode mode, uint32_t iterations,
                    uint32_t gridBits, double lo, double hi,
                    Placement placement);

    /** Rotation with LUT head + CORDIC tail; z0 must be in [lo, hi]. */
    Result rotate(float z0, InstrSink* sink) const;

    /** Tail iterations actually executed. */
    uint32_t tailIterations() const
    {
        return static_cast<uint32_t>(tailSchedule_.size());
    }

    uint32_t memoryBytes() const
    {
        return entryTable_.bytes() + angleTable_.bytes();
    }

    void
    attach(sim::DpuCore& core)
    {
        entryTable_.attach(core);
        angleTable_.attach(core);
    }

  private:
    CordicMode mode_;
    uint32_t gridBits_;
    float lo_;
    std::vector<uint32_t> tailSchedule_;
    LutStore<Entry> entryTable_;
    LutStore<float> angleTable_; ///< tail iteration angles
};

} // namespace transpim
} // namespace tpl

#endif // TPL_TRANSPIM_CORDIC_LUT_H
