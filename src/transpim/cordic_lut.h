/**
 * @file
 * Combined CORDIC + LUT method (Section 3.3.2 of the paper).
 *
 * The first iterations of CORDIC are replaced by one lookup: the table
 * maps the leading bits of the input angle to a pre-rotated vector
 * (x, y) - with the gain of the *remaining* iterations already folded
 * in - plus the grid angle, so the engine only runs the tail
 * iterations on the residual z. This buys a flexible tradeoff between
 * computing cost, table size, and precision within the bounds of the
 * pure CORDIC and pure LUT approaches. The address generation is
 * L-LUT-style (ldexp + round), so the lookup adds no multiplication.
 */

#ifndef TPL_TRANSPIM_CORDIC_LUT_H
#define TPL_TRANSPIM_CORDIC_LUT_H

#include "transpim/cordic.h"
#include "transpim/placement.h"

namespace tpl {
namespace transpim {

/**
 * CORDIC engine whose first iterations are a table lookup.
 */
class CordicLutEngine
{
  public:
    /** One pre-rotated table entry. */
    struct Entry
    {
        float x; ///< cos/cosh of the grid angle, tail-gain folded in
        float y; ///< sin/sinh of the grid angle, tail-gain folded in
        float a; ///< the grid angle itself (subtracted from z)
    };

    using Result = CordicEngine::Result;

    /**
     * @param mode rotation family.
     * @param iterations total equivalent iterations n (accuracy ~2^-n).
     * @param gridBits g: table grid spacing 2^-g radians; iterations
     *        with shift index < g are replaced by the lookup.
     * @param lo smallest angle the table covers.
     * @param hi largest angle the table covers.
     */
    CordicLutEngine(CordicMode mode, uint32_t iterations,
                    uint32_t gridBits, double lo, double hi,
                    Placement placement);

    /** Rotation with LUT head + CORDIC tail; z0 must be in [lo, hi]. */
    Result rotate(float z0, InstrSink* sink) const;

    /** Sink-template body of rotate() (batch path inlines it). */
    template <class S>
    Result
    rotateT(float z0, S& sink) const
    {
        // L-LUT-style head: ldexp + round, no multiplication.
        float t = z0;
        if (lo_ != 0.0f)
            t = sf::subT(z0, lo_, sink);
        t = pimLdexpT(t, static_cast<int>(gridBits_), sink);
        int32_t j = sf::toI32RoundT(t, sink);
        sink.charge(2);
        int32_t limit = static_cast<int32_t>(entryTable_.size()) - 1;
        if (j < 0)
            j = 0;
        if (j > limit)
            j = limit;
        Entry e = entryTable_.readT(static_cast<uint32_t>(j), sink);

        float x = e.x;
        float y = e.y;
        float z = sf::subT(z0, e.a, sink);
        for (uint32_t k = 0; k < tailSchedule_.size(); ++k) {
            int i = static_cast<int>(tailSchedule_[k]);
            float xs = pimLdexpT(x, -i, sink);
            float ys = pimLdexpT(y, -i, sink);
            float ang = angleTable_.readT(k, sink);
            sink.charge(4);
            bool positive = (floatBits(z) >> 31) == 0;
            bool xPlus = (mode_ == CordicMode::Hyperbolic) == positive;
            x = xPlus ? sf::addT(x, ys, sink) : sf::subT(x, ys, sink);
            y = positive ? sf::addT(y, xs, sink)
                         : sf::subT(y, xs, sink);
            z = positive ? sf::subT(z, ang, sink)
                         : sf::addT(z, ang, sink);
        }
        return {x, y, z};
    }

    /** Tail iterations actually executed. */
    uint32_t tailIterations() const
    {
        return static_cast<uint32_t>(tailSchedule_.size());
    }

    uint32_t memoryBytes() const
    {
        return entryTable_.bytes() + angleTable_.bytes();
    }

    void
    attach(sim::DpuCore& core)
    {
        entryTable_.attach(core);
        angleTable_.attach(core);
    }

  private:
    CordicMode mode_;
    uint32_t gridBits_;
    float lo_;
    std::vector<uint32_t> tailSchedule_;
    LutStore<Entry> entryTable_;
    LutStore<float> angleTable_; ///< tail iteration angles
};

} // namespace transpim
} // namespace tpl

#endif // TPL_TRANSPIM_CORDIC_LUT_H
