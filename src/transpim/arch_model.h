/**
 * @file
 * Cross-architecture cost analysis (the paper's stated future work).
 *
 * Section 5.1 of the paper: "TransPimLib can be realized for any PIM
 * architecture that supports addition, subtraction, multiplication,
 * and division. As such, future work can implement new versions of
 * TransPimLib's methods for other current and future PIM
 * architectures."
 *
 * This module enables that analysis without re-implementing the
 * numeric kernels: every emulated routine reports its high-level
 * operation class (OpClass) alongside its UPMEM instruction charge, so
 * a method evaluation yields an *operation tally*. Re-costing the
 * tally under a different processing element's per-operation costs
 * answers "what would this method cost on an HBM-PIM-style PE with a
 * native FPU?" - where, notably, the L-LUT's no-multiply advantage
 * evaporates while the LUT-vs-CORDIC tradeoff survives.
 *
 * The re-costing is: cycles = leftoverInstructions * otherScale +
 * sum_op count(op) * archCost(op), where leftoverInstructions is the
 * measured instruction total minus the calibrated UPMEM emulation cost
 * of the noted operations (i.e. the native integer work of addressing,
 * loops, CORDIC shifts, ...).
 */

#ifndef TPL_TRANSPIM_ARCH_MODEL_H
#define TPL_TRANSPIM_ARCH_MODEL_H

#include <array>
#include <string>

#include "common/instr_sink.h"

namespace tpl {
namespace transpim {

/** Operation-class tally of one (or many) evaluations. */
struct OpTally
{
    std::array<uint64_t, numOpClasses> counts{};
    uint64_t instructions = 0;

    OpTally& operator+=(const OpTally& other);
};

/** Sink that records both instruction totals and operation classes. */
class OpTallySink : public InstrSink
{
  public:
    void charge(uint32_t instructions) override
    {
        tally_.instructions += instructions;
    }

    void note(OpClass op) override
    {
        ++tally_.counts[static_cast<int>(op)];
    }

    const OpTally& tally() const { return tally_; }

    void reset() { tally_ = OpTally{}; }

  private:
    OpTally tally_;
};

/** Display name of an operation class. */
std::string_view opClassName(OpClass op);

/** Per-operation cycle costs of a PIM processing element. */
struct ArchProfile
{
    std::string name;
    /** Cycles per operation, indexed by OpClass. */
    std::array<double, numOpClasses> opCycles{};
    /** Cycles per leftover native instruction. */
    double otherInstrScale = 1.0;
};

/**
 * The UPMEM-style DPU baseline: per-op costs measured from the
 * emulation routines themselves, so re-costing under this profile
 * reproduces the plain instruction count (self-consistency).
 */
ArchProfile upmemProfile();

/**
 * An HBM-PIM / AiM-style PE: native pipelined float add/mul (the SIMD
 * MAC datapath), slow iterative divide, cheap conversions. Integer
 * bit-twiddling is ordinary ALU work.
 */
ArchProfile hbmPimLikeProfile();

/**
 * A hypothetical PIM PE with a full FPU (add/mul/div/sqrt/conversions
 * all pipelined) - the limit where method choice is dominated by
 * memory behaviour alone.
 */
ArchProfile idealFpuProfile();

/**
 * Measure the UPMEM emulation cost of each operation class by running
 * the emulated routines against a counting sink (calibration for the
 * leftover-instruction subtraction).
 */
std::array<double, numOpClasses> measureUpmemOpCosts();

/**
 * Re-cost an operation tally under @p profile.
 * @param upmemOpCosts calibration from measureUpmemOpCosts().
 */
double recostCycles(const OpTally& tally, const ArchProfile& profile,
                    const std::array<double, numOpClasses>& upmemOpCosts);

} // namespace transpim
} // namespace tpl

#endif // TPL_TRANSPIM_ARCH_MODEL_H
