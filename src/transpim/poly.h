/**
 * @file
 * Polynomial-approximation baseline (Horner evaluation).
 *
 * The paper's PIM baseline implementations use polynomial approximation
 * (Taylor / minimax, refs [67, 124]); on a PIM core each polynomial
 * degree costs one emulated float multiply and one add, i.e. roughly
 * one float multiplication per bit of precision - which is exactly the
 * disadvantage TransPimLib's LUT methods remove (Section 4.2.1).
 */

#ifndef TPL_TRANSPIM_POLY_H
#define TPL_TRANSPIM_POLY_H

#include <vector>

#include "common/instr_sink.h"
#include "softfloat/softfloat_core.h"

namespace tpl {
namespace transpim {

/**
 * Dense polynomial evaluated with Horner's rule in emulated binary32.
 */
class Polynomial
{
  public:
    /** @param coeffs c0 + c1 x + c2 x^2 + ... (ascending order). */
    explicit Polynomial(std::vector<float> coeffs)
        : coeffs_(std::move(coeffs))
    {}

    /** Evaluate at @p x; degree() multiplies and adds. */
    float eval(float x, InstrSink* sink) const;

    /** Sink-template body of eval() (batch path inlines it). */
    template <class S>
    float
    evalT(float x, S& sink) const
    {
        if (coeffs_.empty())
            return 0.0f;
        float acc = coeffs_.back();
        for (std::size_t i = coeffs_.size() - 1; i-- > 0;) {
            sink.charge(2); // coefficient load + loop control
            acc = sf::addT(sf::mulT(acc, x, sink), coeffs_[i], sink);
        }
        return acc;
    }

    uint32_t degree() const
    {
        return coeffs_.empty()
                   ? 0
                   : static_cast<uint32_t>(coeffs_.size()) - 1;
    }

    const std::vector<float>& coeffs() const { return coeffs_; }

  private:
    std::vector<float> coeffs_;
};

/// @name Coefficient builders (host-side setup).
/// @{

/** Taylor coefficients of sin around 0 (odd terms), up to @p degree. */
Polynomial sinTaylor(uint32_t degree);

/** Taylor coefficients of cos around 0 (even terms), up to @p degree. */
Polynomial cosTaylor(uint32_t degree);

/** Taylor coefficients of exp around 0, up to @p degree. */
Polynomial expTaylor(uint32_t degree);

/** Coefficients of log(1 + u) around 0, up to @p degree. */
Polynomial log1pTaylor(uint32_t degree);

/** Binomial-series coefficients of sqrt(1 + u), up to @p degree. */
Polynomial sqrt1pSeries(uint32_t degree);

/** Binomial-series coefficients of 1/sqrt(1 + u), up to @p degree. */
Polynomial rsqrt1pSeries(uint32_t degree);

/** Taylor coefficients of atan around 0 (odd terms), up to @p degree. */
Polynomial atanTaylor(uint32_t degree);

/// @}

} // namespace transpim
} // namespace tpl

#endif // TPL_TRANSPIM_POLY_H
