/**
 * @file
 * Polynomial baseline implementation.
 */

#include "transpim/poly.h"

#include <cmath>

#include "softfloat/softfloat.h"

namespace tpl {
namespace transpim {

float
Polynomial::eval(float x, InstrSink* sink) const
{
    SinkRef s(sink);
    return evalT(x, s);
}

Polynomial
sinTaylor(uint32_t degree)
{
    std::vector<float> c(degree + 1, 0.0f);
    double fact = 1.0;
    for (uint32_t k = 1; k <= degree; ++k) {
        fact *= k;
        if (k % 2 == 1)
            c[k] = static_cast<float>(((k / 2) % 2 == 0 ? 1.0 : -1.0) /
                                      fact);
    }
    return Polynomial(std::move(c));
}

Polynomial
cosTaylor(uint32_t degree)
{
    std::vector<float> c(degree + 1, 0.0f);
    c[0] = 1.0f;
    double fact = 1.0;
    for (uint32_t k = 1; k <= degree; ++k) {
        fact *= k;
        if (k % 2 == 0)
            c[k] = static_cast<float>(((k / 2) % 2 == 0 ? 1.0 : -1.0) /
                                      fact);
    }
    return Polynomial(std::move(c));
}

Polynomial
expTaylor(uint32_t degree)
{
    std::vector<float> c(degree + 1);
    double fact = 1.0;
    c[0] = 1.0f;
    for (uint32_t k = 1; k <= degree; ++k) {
        fact *= k;
        c[k] = static_cast<float>(1.0 / fact);
    }
    return Polynomial(std::move(c));
}

Polynomial
log1pTaylor(uint32_t degree)
{
    std::vector<float> c(degree + 1, 0.0f);
    for (uint32_t k = 1; k <= degree; ++k)
        c[k] = static_cast<float>((k % 2 == 1 ? 1.0 : -1.0) / k);
    return Polynomial(std::move(c));
}

Polynomial
sqrt1pSeries(uint32_t degree)
{
    // sqrt(1+u) = sum binom(1/2, k) u^k.
    std::vector<float> c(degree + 1);
    double coeff = 1.0;
    c[0] = 1.0f;
    for (uint32_t k = 1; k <= degree; ++k) {
        coeff *= (0.5 - (k - 1)) / k;
        c[k] = static_cast<float>(coeff);
    }
    return Polynomial(std::move(c));
}

Polynomial
rsqrt1pSeries(uint32_t degree)
{
    // 1/sqrt(1+u) = sum binom(-1/2, k) u^k.
    std::vector<float> c(degree + 1);
    double coeff = 1.0;
    c[0] = 1.0f;
    for (uint32_t k = 1; k <= degree; ++k) {
        coeff *= (-0.5 - (k - 1)) / k;
        c[k] = static_cast<float>(coeff);
    }
    return Polynomial(std::move(c));
}

Polynomial
atanTaylor(uint32_t degree)
{
    // atan(u) = u - u^3/3 + u^5/5 - ... ; callers must reduce the
    // argument to |u| <= tan(pi/8) for fast convergence.
    std::vector<float> c(degree + 1, 0.0f);
    for (uint32_t k = 1; k <= degree; k += 2) {
        c[k] = static_cast<float>(((k / 2) % 2 == 0 ? 1.0 : -1.0) / k);
    }
    return Polynomial(std::move(c));
}

} // namespace transpim
} // namespace tpl
