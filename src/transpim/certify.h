/**
 * @file
 * Calibrated compute-cost certificates for evaluator methods.
 *
 * Mini-ISA kernels get *static* cycle bounds from
 * pimsim/analysis/bound.h; the transpim evaluator kernels are C++
 * lambdas the static analyzer cannot see, so their serve-side cost
 * envelope is obtained by calibration instead: run the exact
 * streaming shard kernel the pipeline launches
 * (makeStreamingKernel) at two element counts on a scratch core, fit
 * the linear cycles(elements) law the kernel obeys, and inflate it
 * into an upper envelope (multiplicative margin for data-dependent
 * variation, absolute slack for launch scheduling noise). The
 * resulting WaveCost is keyed by the same TableKey the serve layer
 * uses, so dropping it into a serve::CostBook enables cost-aware
 * wave sizing for that configuration (tests/certify_test.cc locks
 * the envelope's containment over a sweep of element counts).
 */

#ifndef TPL_TRANSPIM_CERTIFY_H
#define TPL_TRANSPIM_CERTIFY_H

#include <cstdint>
#include <optional>

#include "pimsim/serve/cost_book.h"
#include "transpim/evaluator.h"
#include "transpim/reference.h"

namespace tpl {
namespace transpim {

/** Calibration parameters. Tasklet count and streaming chunk size
 * must match what the serving pipeline will launch with, or the
 * envelope brackets the wrong kernel. */
struct CertifyOptions
{
    uint32_t tasklets = 16;      ///< as the pipeline launches
    uint32_t chunkElements = 32; ///< as the EvaluatorCatalog streams
    uint32_t smallElements = 512;  ///< first calibration point
    uint32_t largeElements = 1024; ///< second calibration point
    /** Multiplicative headroom on the fitted law (0.25 = +25%),
     * covering data-dependent per-element cost variation. */
    double margin = 0.25;
    uint64_t seed = 0x5eedc0de; ///< calibration input seed
    /** Optional input domain override (defaults to functionDomain). */
    std::optional<Domain> domain;
};

/** Outcome of one configuration's calibration. */
struct MethodCostCertificate
{
    /** False when the combination is unsupported or its tables do
     * not fit the core; `cost` is meaningless then. */
    bool feasible = false;

    Function function = Function::Sin;
    MethodSpec spec;

    /** Serve identity of the configuration (batchTableKey). */
    sim::serve::TableKey key;

    /** The margined upper envelope, ready for CostBook::set. */
    sim::serve::WaveCost cost;

    /** Raw calibration measurements (element counts and modeled
     * launch cycles), for reporting and tests. */
    uint64_t calibrationElements[2] = {0, 0};
    uint64_t calibrationCycles[2] = {0, 0};
};

/**
 * Calibrate @p f evaluated with @p spec on a scratch core and return
 * its cost certificate. Never throws for infeasible configurations —
 * they come back with feasible = false, mirroring runMicrobench.
 */
MethodCostCertificate certifyMethodCost(Function f,
                                        const MethodSpec& spec,
                                        const CertifyOptions& opts = {});

} // namespace transpim
} // namespace tpl

#endif // TPL_TRANSPIM_CERTIFY_H
