/**
 * @file
 * Range reduction / extension operations (Section 2.2.3, Figure 8).
 *
 * Both CORDIC and lookup tables only cover limited input ranges; these
 * helpers perform the per-function conversions that extend them:
 * periodicity for trigonometric functions, exponent/mantissa splits for
 * exp / log / sqrt. Their costs differ widely between functions - the
 * trigonometric reduction needs real float arithmetic while the
 * exponent splits are almost free bit manipulation - which is exactly
 * what the paper's Figure 8 shows. Each helper is instrumented so the
 * figure can be regenerated.
 */

#ifndef TPL_TRANSPIM_RANGE_H
#define TPL_TRANSPIM_RANGE_H

#include "common/fixed_point.h"
#include "common/instr_sink.h"

namespace tpl {
namespace transpim {

/** Reduce x into [0, 2*pi) using the function's periodicity. */
float reduceTwoPi(float x, InstrSink* sink);

/** Result of quadrant reduction for trigonometric CORDIC. */
struct QuadrantReduced
{
    float r; ///< angle in [0, pi/2]
    int q;   ///< quadrant 0..3
};

/**
 * Reduce an angle in [0, 2*pi) to the first quadrant via conditional
 * subtraction (cheaper than a multiply-based reduction on a PIM core).
 */
QuadrantReduced reduceQuadrant(float x, InstrSink* sink);

/** Result of the exponential split x = k*ln2 + r. */
struct ExpSplit
{
    int k;   ///< power-of-two exponent
    float r; ///< residual in [0, ln2)
};

/** Split for exp: e^x = 2^k * e^r. */
ExpSplit splitExp(float x, InstrSink* sink);

/** Result of the logarithm split x = m * 2^k, m in [1, 2). */
struct LogSplit
{
    int k;
    float m;
};

/**
 * Split for log: log x = k*ln2 + log m. Pure bit manipulation for
 * normal inputs; subnormals are normalized first.
 * @pre x > 0 and finite.
 */
LogSplit splitLog(float x, InstrSink* sink);

/** Result of the square-root split x = m * 4^k, m in [0.5, 2). */
struct SqrtSplit
{
    int k;
    float m;
};

/**
 * Split for sqrt: sqrt x = 2^k * sqrt m. The [0.5, 2) mantissa range
 * keeps the hyperbolic-vectoring CORDIC within its convergence bound.
 * @pre x > 0 and finite.
 */
SqrtSplit splitSqrt(float x, InstrSink* sink);

/** Fixed-point reduction of x into [0, 2*pi) (Q3.28 pipeline). */
Fixed reduceTwoPiFixed(Fixed x, InstrSink* sink);

} // namespace transpim
} // namespace tpl

#endif // TPL_TRANSPIM_RANGE_H
