/**
 * @file
 * Range reduction / extension operations (Section 2.2.3, Figure 8).
 *
 * Both CORDIC and lookup tables only cover limited input ranges; these
 * helpers perform the per-function conversions that extend them:
 * periodicity for trigonometric functions, exponent/mantissa splits for
 * exp / log / sqrt. Their costs differ widely between functions - the
 * trigonometric reduction needs real float arithmetic while the
 * exponent splits are almost free bit manipulation - which is exactly
 * what the paper's Figure 8 shows. Each helper is instrumented so the
 * figure can be regenerated.
 *
 * The bodies are sink-templates over the non-virtual Sink shape so the
 * batch execution path inlines them; the InstrSink* entry points are
 * the same templates instantiated with SinkRef.
 */

#ifndef TPL_TRANSPIM_RANGE_H
#define TPL_TRANSPIM_RANGE_H

#include "common/bitops.h"
#include "common/fixed_point.h"
#include "common/instr_sink.h"
#include "softfloat/softfloat_core.h"
#include "transpim/ldexp.h"

namespace tpl {
namespace transpim {

namespace range_detail {

inline constexpr float kTwoPi = 6.28318530717958647692f;
inline constexpr float kPi = 3.14159265358979323846f;
inline constexpr float kHalfPi = 1.57079632679489661923f;
inline constexpr float kInvTwoPi = 0.15915494309189533577f;
inline constexpr float kLog2e = 1.44269504088896340736f;

// Cody-Waite split of ln2: hi has a short mantissa so k*ln2Hi is exact
// for the k range of interest, lo holds the residual.
inline constexpr float kLn2Hi = 0.693145751953125f; // 0x1.62e3p-1
inline constexpr float kLn2Lo = 1.42860677e-06f;    // ln2 - kLn2Hi

} // namespace range_detail

/** Result of quadrant reduction for trigonometric CORDIC. */
struct QuadrantReduced
{
    float r; ///< angle in [0, pi/2]
    int q;   ///< quadrant 0..3
};

/** Result of the exponential split x = k*ln2 + r. */
struct ExpSplit
{
    int k;   ///< power-of-two exponent
    float r; ///< residual in [0, ln2)
};

/** Result of the logarithm split x = m * 2^k, m in [1, 2). */
struct LogSplit
{
    int k;
    float m;
};

/** Result of the square-root split x = m * 4^k, m in [0.5, 2). */
struct SqrtSplit
{
    int k;
    float m;
};

/** Reduce x into [0, 2*pi) using the function's periodicity. */
template <class S>
inline float
reduceTwoPiT(float x, S& sink)
{
    using namespace range_detail;
    // n = floor(x / 2pi); x - n * 2pi. One multiply by the reciprocal,
    // a float->int floor, an int->float, a multiply and a subtract.
    float t = sf::mulT(x, kInvTwoPi, sink);
    int32_t n = sf::toI32FloorT(t, sink);
    float fn = sf::fromI32T(n, sink);
    return sf::subT(x, sf::mulT(fn, kTwoPi, sink), sink);
}

/**
 * Reduce an angle in [0, 2*pi) to the first quadrant via conditional
 * subtraction (cheaper than a multiply-based reduction on a PIM core).
 */
template <class S>
inline QuadrantReduced
reduceQuadrantT(float x, S& sink)
{
    using namespace range_detail;
    // Conditional subtraction: at most two compares and two subtracts,
    // cheaper than the multiply-based reduction on a PIM core.
    QuadrantReduced out{x, 0};
    if (sf::leT(kPi, out.r, sink)) {
        out.r = sf::subT(out.r, kPi, sink);
        out.q += 2;
    }
    if (sf::leT(kHalfPi, out.r, sink)) {
        out.r = sf::subT(out.r, kHalfPi, sink);
        out.q += 1;
    }
    sink.charge(2); // quadrant bookkeeping
    return out;
}

/** Split for exp: e^x = 2^k * e^r. */
template <class S>
inline ExpSplit
splitExpT(float x, S& sink)
{
    using namespace range_detail;
    ExpSplit out;
    float t = sf::mulT(x, kLog2e, sink);
    out.k = sf::toI32FloorT(t, sink);
    float fk = sf::fromI32T(out.k, sink);
    // Cody-Waite: r = (x - k*ln2Hi) - k*ln2Lo keeps r accurate even
    // though k*ln2 is not exactly representable.
    float r = sf::subT(x, sf::mulT(fk, kLn2Hi, sink), sink);
    out.r = sf::subT(r, sf::mulT(fk, kLn2Lo, sink), sink);
    return out;
}

/**
 * Split for log: log x = k*ln2 + log m. Pure bit manipulation for
 * normal inputs; subnormals are normalized first.
 * @pre x > 0 and finite.
 */
template <class S>
inline LogSplit
splitLogT(float x, S& sink)
{
    uint32_t bits = floatBits(x);
    int e = static_cast<int>(ieeeExponent(bits));
    int k0 = 0;
    if (e == 0) {
        // Subnormal: normalize by scaling with 2^24 first.
        x = pimLdexpT(x, 24, sink);
        bits = floatBits(x);
        e = static_cast<int>(ieeeExponent(bits));
        k0 = -24;
    }
    sink.charge(6); // exponent extract, rebias, mantissa repack
    LogSplit out;
    out.k = e - ieeeBias + k0;
    out.m = bitsToFloat(ieeePack(0, ieeeBias, ieeeMantissa(bits)));
    return out;
}

/**
 * Split for sqrt: sqrt x = 2^k * sqrt m. The [0.5, 2) mantissa range
 * keeps the hyperbolic-vectoring CORDIC within its convergence bound.
 * @pre x > 0 and finite.
 */
template <class S>
inline SqrtSplit
splitSqrtT(float x, S& sink)
{
    uint32_t bits = floatBits(x);
    int e = static_cast<int>(ieeeExponent(bits));
    int k0 = 0;
    if (e == 0) {
        // Subnormal: scale by 2^24 (even power, so k adjusts by 12).
        x = pimLdexpT(x, 24, sink);
        bits = floatBits(x);
        e = static_cast<int>(ieeeExponent(bits));
        k0 = -12;
    }
    sink.charge(8); // extract, halve exponent, repack
    int eUnb = e - ieeeBias;
    int k = (eUnb + 1) >> 1; // ceil(e/2): m lands in [0.5, 2)
    int me = eUnb - 2 * k;   // 0 or -1
    SqrtSplit out;
    out.k = k + k0;
    out.m = bitsToFloat(ieeePack(
        0, static_cast<uint32_t>(ieeeBias + me), ieeeMantissa(bits)));
    return out;
}

/** Fixed-point reduction of x into [0, 2*pi) (Q3.28 pipeline). */
template <class S>
inline Fixed
reduceTwoPiFixedT(Fixed x, S& sink)
{
    // Q3.28 holds < 8, so at most one conditional add/subtract of 2*pi
    // is ever needed; the float pipeline performs the wide reduction.
    sink.charge(4);
    int32_t twoPi = fixedTwoPi().raw();
    int32_t v = x.raw();
    if (v < 0)
        v += twoPi;
    if (v >= twoPi)
        v -= twoPi;
    return Fixed::fromRaw(v);
}

/** Reduce x into [0, 2*pi) using the function's periodicity. */
float reduceTwoPi(float x, InstrSink* sink);

/**
 * Reduce an angle in [0, 2*pi) to the first quadrant via conditional
 * subtraction (cheaper than a multiply-based reduction on a PIM core).
 */
QuadrantReduced reduceQuadrant(float x, InstrSink* sink);

/** Split for exp: e^x = 2^k * e^r. */
ExpSplit splitExp(float x, InstrSink* sink);

/**
 * Split for log: log x = k*ln2 + log m. Pure bit manipulation for
 * normal inputs; subnormals are normalized first.
 * @pre x > 0 and finite.
 */
LogSplit splitLog(float x, InstrSink* sink);

/**
 * Split for sqrt: sqrt x = 2^k * sqrt m. The [0.5, 2) mantissa range
 * keeps the hyperbolic-vectoring CORDIC within its convergence bound.
 * @pre x > 0 and finite.
 */
SqrtSplit splitSqrt(float x, InstrSink* sink);

/** Fixed-point reduction of x into [0, 2*pi) (Q3.28 pipeline). */
Fixed reduceTwoPiFixed(Fixed x, InstrSink* sink);

} // namespace transpim
} // namespace tpl

#endif // TPL_TRANSPIM_RANGE_H
