/**
 * @file
 * Glue between the generic serve layer (pimsim/serve) and transpim
 * evaluators: the TableKey hash for a (function, method spec) pair,
 * the catalog that resolves keys back to evaluator configurations,
 * and the shared streaming kernel both the resilient harness and the
 * serve pipeline run per shard.
 *
 * The split keeps the dependency arrow pointing one way: tpl_pimserve
 * knows nothing about evaluators; this file (in tpl_transpim) teaches
 * it how to build tables for transcendental-function requests.
 */

#ifndef TPL_TRANSPIM_SERVE_GLUE_H
#define TPL_TRANSPIM_SERVE_GLUE_H

#include <cstdint>
#include <map>
#include <optional>
#include <utility>

#include "pimsim/serve/pipeline.h"
#include "transpim/evaluator.h"

namespace tpl {
namespace transpim {

/**
 * Stable identity of one (function, spec) configuration as a serve
 * TableKey: an FNV-1a hash over the function and every table-shaping
 * knob of the spec, labeled "sin/L-LUT interp. (WRAM, 2^12)"-style.
 * Requests with equal keys share one cached table broadcast.
 */
sim::serve::TableKey batchTableKey(Function f, const MethodSpec& spec);

/**
 * Per-shard streaming kernel shared by runResilientMicrobench and the
 * serve pipeline: each tasklet claims chunks of @p chunkElems
 * elements round-robin, DMAs them into WRAM, evaluates with @p ev,
 * and DMAs the results back. @p ev must outlive the returned kernel
 * (it is captured by pointer — LutStore binds tables to one core, so
 * the caller keeps one evaluator per DPU). @p chunkElems is clamped
 * to [1, 256]; keep it small enough that elements/chunkElems >=
 * tasklets, or tail tasklets idle.
 */
sim::Kernel makeStreamingKernel(const FunctionEvaluator& ev,
                                const sim::ShardTask& task,
                                uint32_t chunkElems);

/**
 * A registry of evaluator configurations addressable by TableKey,
 * plus the TableProvider that realizes them on a PimSystem (one
 * evaluator per core, tables attached at bind time). Register every
 * configuration a request trace uses, then hand provider() to the
 * ServePipeline; the catalog must outlive the pipeline run.
 */
class EvaluatorCatalog
{
  public:
    /** Register @p f with @p spec; returns (and remembers) its key.
     * Re-adding an equal configuration is a no-op. */
    sim::serve::TableKey add(Function f, const MethodSpec& spec);

    /** Streaming-kernel chunk size passed to makeStreamingKernel. */
    void setChunkElements(uint32_t n) { chunkElems_ = n; }
    uint32_t chunkElements() const { return chunkElems_; }

    /** Number of registered configurations. */
    size_t size() const { return entries_.size(); }

    /** The (function, spec) registered under @p keyHash, if any —
     * how the online tuner recovers evaluator configurations from
     * the serve layer's opaque TableKeys. */
    std::optional<std::pair<Function, MethodSpec>>
    find(uint64_t keyHash) const
    {
        auto it = entries_.find(keyHash);
        if (it == entries_.end())
            return std::nullopt;
        return std::make_pair(it->second.function, it->second.spec);
    }

    /**
     * The TableProvider for ServePipeline/TableCache. Binds `this`:
     * the catalog must outlive every pipeline using the provider.
     * Unknown keys and infeasible configurations (unsupported
     * combination, tables exceeding core memory) yield an invalid
     * binding — the pipeline drops those requests instead of
     * throwing.
     */
    sim::serve::TableProvider provider() const;

  private:
    struct Entry
    {
        Function function = Function::Sin;
        MethodSpec spec;
    };

    std::map<uint64_t, Entry> entries_;
    uint32_t chunkElems_ = 32;
};

} // namespace transpim
} // namespace tpl

#endif // TPL_TRANSPIM_SERVE_GLUE_H
