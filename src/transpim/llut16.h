/**
 * @file
 * Half-precision (binary16) LDEXP-based fuzzy lookup table.
 *
 * The other end of the precision ladder from LLut64: FP16 is the
 * native format of HBM-PIM-class processing elements, and half tables
 * halve the memory footprint of every entry. Addressing runs in
 * binary32 (indices must be exact); entries are stored and
 * interpolated in binary16, flooring the accuracy near the 2^-11 half
 * grid. ablation_precision quantifies the ladder.
 */

#ifndef TPL_TRANSPIM_LLUT16_H
#define TPL_TRANSPIM_LLUT16_H

#include "softfloat/softfloat16.h"
#include "transpim/fuzzy_lut.h"
#include "transpim/placement.h"

namespace tpl {
namespace transpim {

/** Binary16 L-LUT with ldexp addressing and linear interpolation. */
class LLut16
{
  public:
    LLut16(const TableFn& f, double lo, double hi, uint32_t maxEntries,
           bool interpolated, Placement placement);

    /** Approximate f(x); interpolation arithmetic in binary16. */
    float eval(float x, InstrSink* sink) const;

    uint32_t memoryBytes() const { return table_.bytes(); }

    void attach(sim::DpuCore& core) { table_.attach(core); }

    int densityLog2() const { return e_; }

    uint32_t entries() const { return table_.size(); }

  private:
    LutStore<uint16_t> table_;
    float p_;
    int e_;
    bool interpolated_;
};

} // namespace transpim
} // namespace tpl

#endif // TPL_TRANSPIM_LLUT16_H
