/**
 * @file
 * Half-precision (binary16) LDEXP-based fuzzy lookup table.
 *
 * The other end of the precision ladder from LLut64: FP16 is the
 * native format of HBM-PIM-class processing elements, and half tables
 * halve the memory footprint of every entry. Addressing runs in
 * binary32 (indices must be exact); entries are stored and
 * interpolated in binary16, flooring the accuracy near the 2^-11 half
 * grid. ablation_precision quantifies the ladder.
 */

#ifndef TPL_TRANSPIM_LLUT16_H
#define TPL_TRANSPIM_LLUT16_H

#include "softfloat/softfloat16.h"
#include "transpim/fuzzy_lut.h"
#include "transpim/placement.h"

namespace tpl {
namespace transpim {

/** Binary16 L-LUT with ldexp addressing and linear interpolation. */
class LLut16
{
  public:
    LLut16(const TableFn& f, double lo, double hi, uint32_t maxEntries,
           bool interpolated, Placement placement);

    /** Approximate f(x); interpolation arithmetic in binary16. */
    float eval(float x, InstrSink* sink) const;

    /**
     * Sink-template body of eval() (batch path inlines it). The
     * binary16 tier routines are scalar InstrSink* entry points; they
     * are pure arithmetic, so they go through sinkArith() — a batch
     * sink accumulates their charges with the rest of the batch.
     */
    template <class S>
    float
    evalT(float x, S& sink) const
    {
        InstrSink* arith = sinkArith(sink);
        // Addressing in binary32 (indices must be exact integers).
        float t = x;
        if (p_ != 0.0f)
            t = sf::subT(x, p_, sink);
        t = pimLdexpT(t, e_, sink);
        int32_t limit = static_cast<int32_t>(table_.size()) -
                        (interpolated_ ? 2 : 1);
        if (!interpolated_) {
            int32_t i = sf::toI32RoundT(t, sink);
            sink.charge(2);
            i = std::clamp(i, 0, limit);
            sf::Half h{table_.readT(static_cast<uint32_t>(i), sink)};
            return sf::fromF16(h, arith);
        }
        int32_t i = sf::toI32FloorT(t, sink);
        sink.charge(2);
        i = std::clamp(i, 0, limit);
        float fi = sf::fromI32T(i, sink);
        // Delta quantized to binary16, the PE's native operand format.
        sf::Half delta = sf::toF16(sf::subT(t, fi, sink), arith);
        sf::Half l0{table_.readT(static_cast<uint32_t>(i), sink)};
        sf::Half l1{table_.readT(static_cast<uint32_t>(i) + 1, sink)};
        sf::Half d = sf::sub16(l1, l0, arith);
        sf::Half y = sf::add16(l0, sf::mul16(d, delta, arith), arith);
        return sf::fromF16(y, arith);
    }

    uint32_t memoryBytes() const { return table_.bytes(); }

    void attach(sim::DpuCore& core) { table_.attach(core); }

    int densityLog2() const { return e_; }

    uint32_t entries() const { return table_.size(); }

  private:
    LutStore<uint16_t> table_;
    float p_;
    int e_;
    bool interpolated_;
};

} // namespace transpim
} // namespace tpl

#endif // TPL_TRANSPIM_LLUT16_H
