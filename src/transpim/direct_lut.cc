/**
 * @file
 * D-LUT / DL-LUT implementations.
 */

#include "transpim/direct_lut.h"

#include <cmath>
#include <stdexcept>

#include "common/bitops.h"
#include "softfloat/softfloat.h"
#include "transpim/ldexp.h"

namespace tpl {
namespace transpim {

namespace {

/**
 * Grid magnitude of positive-side entry @p i: the value whose float
 * bits shift down to address base + i.
 */
double
gridValue(const DLutSpec& spec, uint32_t i, double fracOffset)
{
    uint32_t perExp = 1u << spec.mantBits;
    int e = spec.minExp + static_cast<int>(i >> spec.mantBits);
    uint32_t frac = i & (perExp - 1);
    double mant = 1.0 + (static_cast<double>(frac) + fracOffset) / perExp;
    return std::ldexp(mant, e);
}

} // namespace

DLut::DLut(const TableFn& f, const DLutSpec& spec, bool interpolated,
           Placement placement)
    : spec_(spec), interpolated_(interpolated)
{
    if (spec.maxExp < spec.minExp)
        throw std::invalid_argument("DLut: empty exponent range");
    if (spec.mantBits > 23)
        throw std::invalid_argument("DLut: more than 23 mantissa bits");
    shift_ = 23 - spec.mantBits;
    base_ = static_cast<uint32_t>(spec.minExp + ieeeBias)
            << spec.mantBits;
    minMagBits_ =
        static_cast<uint32_t>(spec.minExp + ieeeBias) << 23;
    perSide_ =
        static_cast<uint32_t>(spec.maxExp - spec.minExp + 1)
        << spec.mantBits;

    // Truncation addressing: a non-interpolated table stores f at the
    // bucket midpoint, an interpolated one at the grid point itself.
    double off = interpolated ? 0.0 : 0.5;
    uint32_t total = spec.signedRange ? 2 * perSide_ : perSide_;
    std::vector<float> table(total);
    for (uint32_t i = 0; i < perSide_; ++i) {
        double v = gridValue(spec, i, off);
        table[i] = static_cast<float>(f(v));
        if (spec.signedRange)
            table[perSide_ + i] = static_cast<float>(f(-v));
    }
    table_ = LutStore<float>(std::move(table), placement);
}

float
DLut::eval(float x, InstrSink* sink) const
{
    SinkRef s(sink);
    return evalT(x, s);
}

DlLut::DlLut(const TableFn& f, DLutSpec spec, uint32_t innerEntries,
             bool interpolated, Placement placement)
{
    spec.minExp = 0; // the D-LUT half starts at |x| = 1
    if (spec.maxExp < 0) {
        // Domain entirely inside [-1, 1]: keep a minimal outer table
        // (one exponent block) so clamped out-of-domain queries are
        // still well-defined; in-domain inputs only hit the L-LUT.
        spec.maxExp = 0;
    }
    double lo = spec.signedRange ? -1.0 : 0.0;
    inner_ = std::make_unique<LLut>(f, lo, 1.0, innerEntries,
                                    interpolated, placement);
    outer_ = std::make_unique<DLut>(f, spec, interpolated, placement);
}

float
DlLut::eval(float x, InstrSink* sink) const
{
    SinkRef s(sink);
    return evalT(x, s);
}

uint32_t
DlLut::memoryBytes() const
{
    return inner_->memoryBytes() + outer_->memoryBytes();
}

void
DlLut::attach(sim::DpuCore& core)
{
    inner_->attach(core);
    outer_->attach(core);
}

} // namespace transpim
} // namespace tpl
