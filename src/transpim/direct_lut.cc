/**
 * @file
 * D-LUT / DL-LUT implementations.
 */

#include "transpim/direct_lut.h"

#include <cmath>
#include <stdexcept>

#include "common/bitops.h"
#include "softfloat/softfloat.h"
#include "transpim/ldexp.h"

namespace tpl {
namespace transpim {

namespace {

/**
 * Grid magnitude of positive-side entry @p i: the value whose float
 * bits shift down to address base + i.
 */
double
gridValue(const DLutSpec& spec, uint32_t i, double fracOffset)
{
    uint32_t perExp = 1u << spec.mantBits;
    int e = spec.minExp + static_cast<int>(i >> spec.mantBits);
    uint32_t frac = i & (perExp - 1);
    double mant = 1.0 + (static_cast<double>(frac) + fracOffset) / perExp;
    return std::ldexp(mant, e);
}

} // namespace

DLut::DLut(const TableFn& f, const DLutSpec& spec, bool interpolated,
           Placement placement)
    : spec_(spec), interpolated_(interpolated)
{
    if (spec.maxExp < spec.minExp)
        throw std::invalid_argument("DLut: empty exponent range");
    if (spec.mantBits > 23)
        throw std::invalid_argument("DLut: more than 23 mantissa bits");
    shift_ = 23 - spec.mantBits;
    base_ = static_cast<uint32_t>(spec.minExp + ieeeBias)
            << spec.mantBits;
    minMagBits_ =
        static_cast<uint32_t>(spec.minExp + ieeeBias) << 23;
    perSide_ =
        static_cast<uint32_t>(spec.maxExp - spec.minExp + 1)
        << spec.mantBits;

    // Truncation addressing: a non-interpolated table stores f at the
    // bucket midpoint, an interpolated one at the grid point itself.
    double off = interpolated ? 0.0 : 0.5;
    uint32_t total = spec.signedRange ? 2 * perSide_ : perSide_;
    std::vector<float> table(total);
    for (uint32_t i = 0; i < perSide_; ++i) {
        double v = gridValue(spec, i, off);
        table[i] = static_cast<float>(f(v));
        if (spec.signedRange)
            table[perSide_ + i] = static_cast<float>(f(-v));
    }
    table_ = LutStore<float>(std::move(table), placement);
}

float
DLut::eval(float x, InstrSink* sink) const
{
    uint32_t bits = floatBits(x);
    uint32_t sign = bits >> 31;
    uint32_t mag = bits & 0x7fffffffu;

    // Address generation: shift, subtract, two clamps, sign select.
    chargeInstr(sink, 7);
    bool below = mag < minMagBits_;
    uint32_t idx;
    if (below) {
        idx = 0;
    } else {
        idx = (mag >> shift_) - base_;
        if (idx >= perSide_)
            idx = perSide_ - 1;
    }
    uint32_t sideOffset = (sign && spec_.signedRange) ? perSide_ : 0;

    if (!interpolated_ || below) {
        // Below-range inputs clamp to the first entry without
        // interpolating: the delta bits would be meaningless there.
        return table_.read(sideOffset + idx, sink);
    }

    // Delta from the truncated mantissa bits: uniform within a bucket.
    chargeInstr(sink, 1);
    uint32_t deltaBits = mag & ((1u << shift_) - 1u);
    float fd = sf::fromI32(static_cast<int32_t>(deltaBits), sink);
    float delta = pimLdexp(fd, -static_cast<int>(shift_), sink);

    uint32_t i1 = idx + 1 < perSide_ ? idx + 1 : idx;
    chargeInstr(sink, 2);
    float l0 = table_.read(sideOffset + idx, sink);
    float l1 = table_.read(sideOffset + i1, sink);
    float d = sf::sub(l1, l0, sink);
    return sf::add(l0, sf::mul(d, delta, sink), sink);
}

DlLut::DlLut(const TableFn& f, DLutSpec spec, uint32_t innerEntries,
             bool interpolated, Placement placement)
{
    spec.minExp = 0; // the D-LUT half starts at |x| = 1
    if (spec.maxExp < 0) {
        // Domain entirely inside [-1, 1]: keep a minimal outer table
        // (one exponent block) so clamped out-of-domain queries are
        // still well-defined; in-domain inputs only hit the L-LUT.
        spec.maxExp = 0;
    }
    double lo = spec.signedRange ? -1.0 : 0.0;
    inner_ = std::make_unique<LLut>(f, lo, 1.0, innerEntries,
                                    interpolated, placement);
    outer_ = std::make_unique<DLut>(f, spec, interpolated, placement);
}

float
DlLut::eval(float x, InstrSink* sink) const
{
    // One magnitude compare against 1.0f selects the half.
    chargeInstr(sink, 3);
    uint32_t mag = floatBits(x) & 0x7fffffffu;
    if (mag < floatBits(1.0f))
        return inner_->eval(x, sink);
    return outer_->eval(x, sink);
}

uint32_t
DlLut::memoryBytes() const
{
    return inner_->memoryBytes() + outer_->memoryBytes();
}

void
DlLut::attach(sim::DpuCore& core)
{
    inner_->attach(core);
    outer_->attach(core);
}

} // namespace transpim
} // namespace tpl
