/**
 * @file
 * Cross-architecture re-costing implementation.
 */

#include "transpim/arch_model.h"

#include <algorithm>

#include "common/emu_int.h"
#include "softfloat/softfloat.h"
#include "transpim/ldexp.h"

namespace tpl {
namespace transpim {

OpTally&
OpTally::operator+=(const OpTally& other)
{
    for (int i = 0; i < numOpClasses; ++i)
        counts[i] += other.counts[i];
    instructions += other.instructions;
    return *this;
}

std::string_view
opClassName(OpClass op)
{
    switch (op) {
      case OpClass::FloatAdd: return "fadd";
      case OpClass::FloatMul: return "fmul";
      case OpClass::FloatDiv: return "fdiv";
      case OpClass::FloatSqrt: return "fsqrt";
      case OpClass::FloatCmp: return "fcmp";
      case OpClass::FloatConv: return "fconv";
      case OpClass::Ldexp: return "ldexp";
      case OpClass::IntMul: return "imul";
      case OpClass::IntDiv: return "idiv";
      case OpClass::TableRead: return "read";
    }
    return "?";
}

std::array<double, numOpClasses>
measureUpmemOpCosts()
{
    std::array<double, numOpClasses> costs{};
    auto measure = [](auto&& fn) {
        CountingSink sink;
        constexpr int reps = 64;
        for (int i = 0; i < reps; ++i)
            fn(&sink);
        return static_cast<double>(sink.total()) / reps;
    };
    costs[static_cast<int>(OpClass::FloatAdd)] = measure(
        [](InstrSink* s) { sf::add(1.25f, 2.5f, s); });
    costs[static_cast<int>(OpClass::FloatMul)] = measure(
        [](InstrSink* s) { sf::mul(1.25f, 2.5f, s); });
    costs[static_cast<int>(OpClass::FloatDiv)] = measure(
        [](InstrSink* s) { sf::div(1.25f, 2.5f, s); });
    costs[static_cast<int>(OpClass::FloatSqrt)] = measure(
        [](InstrSink* s) { sf::sqrt(2.5f, s); });
    costs[static_cast<int>(OpClass::FloatCmp)] = measure(
        [](InstrSink* s) { sf::lt(1.25f, 2.5f, s); });
    costs[static_cast<int>(OpClass::FloatConv)] = measure(
        [](InstrSink* s) { sf::toI32Floor(2.5f, s); });
    costs[static_cast<int>(OpClass::Ldexp)] = measure(
        [](InstrSink* s) { pimLdexp(1.25f, 3, s); });
    costs[static_cast<int>(OpClass::IntMul)] = measure(
        [](InstrSink* s) { emuMulS32(123456, 654321, s); });
    costs[static_cast<int>(OpClass::IntDiv)] = measure(
        [](InstrSink* s) { emuDivS32(123456, 321, s); });
    // A table read charges ~2 instructions of addressing (the DMA
    // stall of MRAM placement is accounted separately by the DPU).
    costs[static_cast<int>(OpClass::TableRead)] = 2.0;
    return costs;
}

ArchProfile
upmemProfile()
{
    // Self-consistent baseline: per-op cost equals the measured
    // emulation cost, so recost == raw instruction count.
    ArchProfile p;
    p.name = "UPMEM-like DPU";
    p.opCycles = measureUpmemOpCosts();
    p.otherInstrScale = 1.0;
    return p;
}

ArchProfile
hbmPimLikeProfile()
{
    // HBM-PIM / AiM-class PE: the SIMD datapath executes float
    // add/mul (MAC) natively and pipelined; divide/sqrt are iterative
    // microcode; conversions and shifts are one-cycle ALU work. The
    // integer multiplier serves addressing.
    ArchProfile p;
    p.name = "HBM-PIM-like PE";
    p.opCycles[static_cast<int>(OpClass::FloatAdd)] = 1.0;
    p.opCycles[static_cast<int>(OpClass::FloatMul)] = 1.0;
    p.opCycles[static_cast<int>(OpClass::FloatDiv)] = 16.0;
    p.opCycles[static_cast<int>(OpClass::FloatSqrt)] = 16.0;
    p.opCycles[static_cast<int>(OpClass::FloatCmp)] = 1.0;
    p.opCycles[static_cast<int>(OpClass::FloatConv)] = 2.0;
    p.opCycles[static_cast<int>(OpClass::Ldexp)] = 1.0;
    p.opCycles[static_cast<int>(OpClass::IntMul)] = 2.0;
    p.opCycles[static_cast<int>(OpClass::IntDiv)] = 16.0;
    p.opCycles[static_cast<int>(OpClass::TableRead)] = 2.0;
    p.otherInstrScale = 1.0;
    return p;
}

ArchProfile
idealFpuProfile()
{
    ArchProfile p;
    p.name = "ideal-FPU PE";
    p.opCycles.fill(1.0);
    p.opCycles[static_cast<int>(OpClass::TableRead)] = 1.0;
    p.otherInstrScale = 1.0;
    return p;
}

double
recostCycles(const OpTally& tally, const ArchProfile& profile,
             const std::array<double, numOpClasses>& upmemOpCosts)
{
    // Subtract the calibrated emulation cost of the noted operations;
    // what remains is native integer work (addressing, loops, CORDIC
    // shifts) that every architecture pays at ALU speed.
    double emulated = 0.0;
    double arch = 0.0;
    for (int i = 0; i < numOpClasses; ++i) {
        double n = static_cast<double>(tally.counts[i]);
        emulated += n * upmemOpCosts[i];
        arch += n * profile.opCycles[i];
    }
    double leftover =
        std::max(0.0, static_cast<double>(tally.instructions) - emulated);
    return leftover * profile.otherInstrScale + arch;
}

} // namespace transpim
} // namespace tpl
