/**
 * @file
 * Double-precision L-LUT implementation.
 */

#include "transpim/llut64.h"

#include <cmath>
#include <stdexcept>

#include "softfloat/softfloat64.h"
#include "transpim/ldexp.h"

namespace tpl {
namespace transpim {

LLut64::LLut64(const TableFn& f, double lo, double hi,
               uint32_t maxEntries, bool interpolated,
               Placement placement)
    : p_(lo), interpolated_(interpolated)
{
    if (maxEntries < 2)
        throw std::invalid_argument("LLut64 needs at least 2 entries");
    double span = hi - lo;
    e_ = static_cast<int>(
        std::floor(std::log2((maxEntries - 1) / span)));
    double spacing = std::ldexp(1.0, -e_);
    uint32_t entries =
        static_cast<uint32_t>(std::ceil(span / spacing)) + 1;
    std::vector<double> table(entries);
    for (uint32_t i = 0; i < entries; ++i)
        table[i] = f(lo + i * spacing);
    table_ = LutStore<double>(std::move(table), placement);
}

double
LLut64::eval(double x, InstrSink* sink) const
{
    double t = x;
    if (p_ != 0.0)
        t = sf::sub64(x, p_, sink);
    t = pimLdexp64(t, e_, sink);
    int32_t i = sf::f64ToI32Floor(t, sink);
    chargeInstr(sink, 2); // clamp
    int32_t limit = static_cast<int32_t>(table_.size()) -
                    (interpolated_ ? 2 : 1);
    if (i < 0)
        i = 0;
    if (i > limit)
        i = limit;
    if (!interpolated_)
        return table_.read(static_cast<uint32_t>(i), sink);
    double fi = sf::fromI32asF64(i, sink);
    double delta = sf::sub64(t, fi, sink);
    double l0 = table_.read(static_cast<uint32_t>(i), sink);
    double l1 = table_.read(static_cast<uint32_t>(i) + 1, sink);
    double d = sf::sub64(l1, l0, sink);
    return sf::add64(l0, sf::mul64(d, delta, sink), sink);
}

} // namespace transpim
} // namespace tpl
