/**
 * @file
 * Double-precision L-LUT implementation.
 */

#include "transpim/llut64.h"

#include <cmath>
#include <stdexcept>

#include "softfloat/softfloat64.h"
#include "transpim/ldexp.h"

namespace tpl {
namespace transpim {

LLut64::LLut64(const TableFn& f, double lo, double hi,
               uint32_t maxEntries, bool interpolated,
               Placement placement)
    : p_(lo), interpolated_(interpolated)
{
    if (maxEntries < 2)
        throw std::invalid_argument("LLut64 needs at least 2 entries");
    double span = hi - lo;
    e_ = static_cast<int>(
        std::floor(std::log2((maxEntries - 1) / span)));
    double spacing = std::ldexp(1.0, -e_);
    uint32_t entries =
        static_cast<uint32_t>(std::ceil(span / spacing)) + 1;
    std::vector<double> table(entries);
    for (uint32_t i = 0; i < entries; ++i)
        table[i] = f(lo + i * spacing);
    table_ = LutStore<double>(std::move(table), placement);
}

double
LLut64::eval(double x, InstrSink* sink) const
{
    SinkRef s(sink);
    return evalT(x, s);
}

} // namespace transpim
} // namespace tpl
