/**
 * @file
 * Double-precision reference implementations of every function the
 * library supports.
 *
 * The paper's accuracy methodology compares PIM results against "the
 * output of the host CPU, computed with the standard math library"
 * (Section 4.1.1); these wrappers are that oracle, plus the derived
 * functions (GELU, sigmoid, CNDF) the workloads use.
 */

#ifndef TPL_TRANSPIM_REFERENCE_H
#define TPL_TRANSPIM_REFERENCE_H

#include <string_view>

namespace tpl {
namespace transpim {

/** Functions supported by the library (paper Table 2 plus workloads). */
enum class Function
{
    Sin,
    Cos,
    Tan,
    Sinh,
    Cosh,
    Tanh,
    Exp,
    Log,
    Sqrt,
    Gelu,
    Sigmoid,
    Cndf,
    // Extensions beyond the paper's core set: the inverse functions
    // its Table 1 CORDIC modes provide (arctan, atanh), base-2/10
    // variants that exploit the exponent/mantissa split even harder,
    // and further ML activation functions.
    Atan,
    Asin,
    Acos,
    Atanh,
    Log2,
    Log10,
    Exp2,
    Rsqrt,
    Erf,
    Silu,
    Softplus,
};

/** Human-readable name of a function (for reports and benches). */
std::string_view functionName(Function f);

/** Double-precision reference value of @p f at @p x. */
double referenceValue(Function f, double x);

/**
 * Default evaluation domain of a function: the interval microbenchmark
 * inputs are drawn from (the paper uses [0, 2pi] for sine).
 */
struct Domain
{
    double lo;
    double hi;
};

/** Microbenchmark input domain for @p f. */
Domain functionDomain(Function f);

/** GELU using the exact erf formulation (not the tanh approximation). */
double geluReference(double x);

/** Logistic sigmoid 1 / (1 + e^-x). */
double sigmoidReference(double x);

/** Cumulative normal distribution function. */
double cndfReference(double x);

} // namespace transpim
} // namespace tpl

#endif // TPL_TRANSPIM_REFERENCE_H
