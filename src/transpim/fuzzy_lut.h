/**
 * @file
 * Fuzzy lookup-table methods with uniform spacing: M-LUT and L-LUT.
 *
 * Both methods map an input x to a table address with an affine
 * transform a(x) = round((x - p) * k) (Section 3.2 of the paper):
 *
 *  - M-LUT uses an arbitrary density k, paying one float multiplication
 *    per query.
 *  - L-LUT constrains k to a power of two so the multiplication becomes
 *    an ldexp (exponent add) - losing some freedom in table design but
 *    eliminating the multiply, which dominates query cost on a PIM core
 *    without an FPU.
 *
 * Interpolated variants read two adjacent entries and blend them with
 * delta = (x-p)*k - floor((x-p)*k), adding exactly one multiplication.
 * The fixed-point L-LUT variant replaces the ldexp with a native shift
 * on Q3.28 values and interpolates with one emulated integer multiply.
 */

#ifndef TPL_TRANSPIM_FUZZY_LUT_H
#define TPL_TRANSPIM_FUZZY_LUT_H

#include <functional>

#include "common/fixed_point.h"
#include "common/instr_sink.h"
#include "transpim/placement.h"

namespace tpl {
namespace transpim {

/** Real-valued function used to fill tables at setup time. */
using TableFn = std::function<double(double)>;

/**
 * Multiplication-based fuzzy lookup table (M-LUT).
 */
class MLut
{
  public:
    /**
     * Build an M-LUT for @p f over [lo, hi] with @p entries entries.
     * Interpolated tables store f on the grid points; non-interpolated
     * tables also store f on the grid points, which is optimal for the
     * round-to-nearest address function.
     */
    MLut(const TableFn& f, double lo, double hi, uint32_t entries,
         bool interpolated, Placement placement);

    /** Approximate f(x); x is clamped into [lo, hi]. */
    float eval(float x, InstrSink* sink) const;

    uint32_t memoryBytes() const { return table_.bytes(); }

    void attach(sim::DpuCore& core) { table_.attach(core); }

    /** Table density k (entries per unit input). */
    float density() const { return k_; }

  private:
    LutStore<float> table_;
    float p_;
    float k_;
    bool interpolated_;
};

/**
 * LDEXP-based fuzzy lookup table (L-LUT): density constrained to 2^e.
 */
class LLut
{
  public:
    /**
     * Build an L-LUT for @p f over [lo, hi] using at most @p maxEntries
     * entries; the actual density is the largest power of two that
     * fits, so fewer entries may be allocated (the paper's [0,5] vs
     * [0,6] example in Section 3.2.2).
     */
    LLut(const TableFn& f, double lo, double hi, uint32_t maxEntries,
         bool interpolated, Placement placement);

    float eval(float x, InstrSink* sink) const;

    uint32_t memoryBytes() const { return table_.bytes(); }

    void attach(sim::DpuCore& core) { table_.attach(core); }

    /** log2 of the density (the ldexp shift amount). */
    int densityLog2() const { return e_; }

    uint32_t entries() const { return table_.size(); }

  private:
    LutStore<float> table_;
    float p_;
    int e_;
    bool interpolated_;
};

/**
 * Fixed-point L-LUT on Q3.28 values: native shifts for addressing, one
 * emulated integer multiply for interpolation.
 */
class LLutFixed
{
  public:
    LLutFixed(const TableFn& f, double lo, double hi, uint32_t maxEntries,
              bool interpolated, Placement placement);

    /** Q3.28 in, Q3.28 out (the fixed-point kernel pipeline). */
    Fixed evalFixed(Fixed x, InstrSink* sink) const;

    /** Float in, float out: converts at both ends, as a float kernel
     * calling the fixed-point method would. */
    float eval(float x, InstrSink* sink) const;

    uint32_t memoryBytes() const { return table_.bytes(); }

    void attach(sim::DpuCore& core) { table_.attach(core); }

    int densityLog2() const { return e_; }

    /** Host-side Q3.28 entries (e.g. for hand-written kernels). */
    const std::vector<int32_t>& hostEntries() const
    {
        return table_.host();
    }

  private:
    LutStore<int32_t> table_;
    int32_t pRaw_;
    int e_;      ///< log2 density
    int shift_;  ///< fracBits - e_: right-shift from Q3.28 to address
    bool interpolated_;
};

} // namespace transpim
} // namespace tpl

#endif // TPL_TRANSPIM_FUZZY_LUT_H
