/**
 * @file
 * Fuzzy lookup-table methods with uniform spacing: M-LUT and L-LUT.
 *
 * Both methods map an input x to a table address with an affine
 * transform a(x) = round((x - p) * k) (Section 3.2 of the paper):
 *
 *  - M-LUT uses an arbitrary density k, paying one float multiplication
 *    per query.
 *  - L-LUT constrains k to a power of two so the multiplication becomes
 *    an ldexp (exponent add) - losing some freedom in table design but
 *    eliminating the multiply, which dominates query cost on a PIM core
 *    without an FPU.
 *
 * Interpolated variants read two adjacent entries and blend them with
 * delta = (x-p)*k - floor((x-p)*k), adding exactly one multiplication.
 * The fixed-point L-LUT variant replaces the ldexp with a native shift
 * on Q3.28 values and interpolates with one emulated integer multiply.
 */

#ifndef TPL_TRANSPIM_FUZZY_LUT_H
#define TPL_TRANSPIM_FUZZY_LUT_H

#include <algorithm>
#include <functional>

#include "common/emu_int.h"
#include "common/fixed_point.h"
#include "common/instr_sink.h"
#include "softfloat/softfloat_core.h"
#include "transpim/ldexp.h"
#include "transpim/placement.h"

namespace tpl {
namespace transpim {

/** Real-valued function used to fill tables at setup time. */
using TableFn = std::function<double(double)>;

namespace lut_detail {

/** Clamp an address into [0, limit]; two compare-and-select instrs. */
template <class S>
inline int32_t
clampIndexT(int32_t i, int32_t limit, S& sink)
{
    sink.charge(2);
    return std::clamp(i, 0, limit);
}

} // namespace lut_detail

/**
 * Multiplication-based fuzzy lookup table (M-LUT).
 */
class MLut
{
  public:
    /**
     * Build an M-LUT for @p f over [lo, hi] with @p entries entries.
     * Interpolated tables store f on the grid points; non-interpolated
     * tables also store f on the grid points, which is optimal for the
     * round-to-nearest address function.
     */
    MLut(const TableFn& f, double lo, double hi, uint32_t entries,
         bool interpolated, Placement placement);

    /** Approximate f(x); x is clamped into [lo, hi]. */
    float eval(float x, InstrSink* sink) const;

    /** Sink-template body of eval() (batch path inlines it). */
    template <class S>
    float
    evalT(float x, S& sink) const
    {
        float t = x;
        if (p_ != 0.0f)
            t = sf::subT(x, p_, sink);
        t = sf::mulT(t, k_, sink);
        if (!interpolated_) {
            int32_t i = sf::toI32RoundT(t, sink);
            i = lut_detail::clampIndexT(
                i, static_cast<int32_t>(table_.size()) - 1, sink);
            return table_.readT(static_cast<uint32_t>(i), sink);
        }
        int32_t i = sf::toI32FloorT(t, sink);
        i = lut_detail::clampIndexT(
            i, static_cast<int32_t>(table_.size()) - 2, sink);
        float fi = sf::fromI32T(i, sink);
        float delta = sf::subT(t, fi, sink);
        float l0 = table_.readT(static_cast<uint32_t>(i), sink);
        float l1 = table_.readT(static_cast<uint32_t>(i) + 1, sink);
        float d = sf::subT(l1, l0, sink);
        return sf::addT(l0, sf::mulT(d, delta, sink), sink);
    }

    uint32_t memoryBytes() const { return table_.bytes(); }

    void attach(sim::DpuCore& core) { table_.attach(core); }

    /** Table density k (entries per unit input). */
    float density() const { return k_; }

  private:
    LutStore<float> table_;
    float p_;
    float k_;
    bool interpolated_;
};

/**
 * LDEXP-based fuzzy lookup table (L-LUT): density constrained to 2^e.
 */
class LLut
{
  public:
    /**
     * Build an L-LUT for @p f over [lo, hi] using at most @p maxEntries
     * entries; the actual density is the largest power of two that
     * fits, so fewer entries may be allocated (the paper's [0,5] vs
     * [0,6] example in Section 3.2.2).
     */
    LLut(const TableFn& f, double lo, double hi, uint32_t maxEntries,
         bool interpolated, Placement placement);

    float eval(float x, InstrSink* sink) const;

    /** Sink-template body of eval() (batch path inlines it). */
    template <class S>
    float
    evalT(float x, S& sink) const
    {
        float t = x;
        if (p_ != 0.0f)
            t = sf::subT(x, p_, sink);
        t = pimLdexpT(t, e_, sink);
        if (!interpolated_) {
            int32_t i = sf::toI32RoundT(t, sink);
            i = lut_detail::clampIndexT(
                i, static_cast<int32_t>(table_.size()) - 1, sink);
            return table_.readT(static_cast<uint32_t>(i), sink);
        }
        int32_t i = sf::toI32FloorT(t, sink);
        i = lut_detail::clampIndexT(
            i, static_cast<int32_t>(table_.size()) - 2, sink);
        float fi = sf::fromI32T(i, sink);
        float delta = sf::subT(t, fi, sink);
        float l0 = table_.readT(static_cast<uint32_t>(i), sink);
        float l1 = table_.readT(static_cast<uint32_t>(i) + 1, sink);
        float d = sf::subT(l1, l0, sink);
        return sf::addT(l0, sf::mulT(d, delta, sink), sink);
    }

    uint32_t memoryBytes() const { return table_.bytes(); }

    void attach(sim::DpuCore& core) { table_.attach(core); }

    /** log2 of the density (the ldexp shift amount). */
    int densityLog2() const { return e_; }

    uint32_t entries() const { return table_.size(); }

  private:
    LutStore<float> table_;
    float p_;
    int e_;
    bool interpolated_;
};

/**
 * Fixed-point L-LUT on Q3.28 values: native shifts for addressing, one
 * emulated integer multiply for interpolation.
 */
class LLutFixed
{
  public:
    LLutFixed(const TableFn& f, double lo, double hi, uint32_t maxEntries,
              bool interpolated, Placement placement);

    /** Q3.28 in, Q3.28 out (the fixed-point kernel pipeline). */
    Fixed evalFixed(Fixed x, InstrSink* sink) const;

    /** Float in, float out: converts at both ends, as a float kernel
     * calling the fixed-point method would. */
    float eval(float x, InstrSink* sink) const;

    /** Sink-template body of evalFixed() (batch path inlines it). */
    template <class S>
    Fixed
    evalFixedT(Fixed x, S& sink) const
    {
        // t = x - p as *unsigned* raw arithmetic: for in-range inputs
        // the wrap-free difference (x - lo) * 2^28 fits 32 unsigned
        // bits even when the domain spans the full [-8, 8) Q3.28 range
        // (e.g. tanh), which a signed Q3.28 subtract could not
        // represent.
        sink.charge(1);
        uint32_t t = static_cast<uint32_t>(x.raw()) -
                     static_cast<uint32_t>(pRaw_);
        int32_t limit = static_cast<int32_t>(table_.size()) - 1;
        if (!interpolated_) {
            // Round to nearest: add half-spacing, logical shift right.
            sink.charge(2);
            int32_t i = static_cast<int32_t>(
                (t + (1u << (shift_ - 1))) >> shift_);
            i = lut_detail::clampIndexT(i, limit, sink);
            return Fixed::fromRaw(
                table_.readT(static_cast<uint32_t>(i), sink));
        }
        sink.charge(2); // floor shift + mask
        int32_t i = static_cast<int32_t>(t >> shift_);
        int32_t deltaRaw =
            static_cast<int32_t>(t & ((1u << shift_) - 1u));
        i = lut_detail::clampIndexT(i, limit - 1, sink);
        int32_t l0 = table_.readT(static_cast<uint32_t>(i), sink);
        int32_t l1 = table_.readT(static_cast<uint32_t>(i) + 1, sink);
        sink.charge(1); // diff
        int32_t d = l1 - l0;
        // result = l0 + (d * delta) >> shift: one emulated multiply.
        sink.note(OpClass::IntMul);
        int64_t prod = emuMulS32T(d, deltaRaw, sink);
        sink.charge(3); // 64-bit shift + add
        return Fixed::fromRaw(l0 +
                              static_cast<int32_t>(prod >> shift_));
    }

    /** Sink-template body of eval() (batch path inlines it). */
    template <class S>
    float
    evalT(float x, S& sink) const
    {
        Fixed xf = sf::toFixedT(x, sink);
        Fixed y = evalFixedT(xf, sink);
        return sf::fromFixedT(y, sink);
    }

    uint32_t memoryBytes() const { return table_.bytes(); }

    void attach(sim::DpuCore& core) { table_.attach(core); }

    int densityLog2() const { return e_; }

    /** Host-side Q3.28 entries (e.g. for hand-written kernels). */
    const std::vector<int32_t>& hostEntries() const
    {
        return table_.host();
    }

  private:
    LutStore<int32_t> table_;
    int32_t pRaw_;
    int e_;      ///< log2 density
    int shift_;  ///< fracBits - e_: right-shift from Q3.28 to address
    bool interpolated_;
};

} // namespace transpim
} // namespace tpl

#endif // TPL_TRANSPIM_FUZZY_LUT_H
