/**
 * @file
 * Two-point calibration of evaluator serving cost (certify.h).
 */

#include "transpim/certify.h"

#include <algorithm>
#include <new>
#include <vector>

#include "common/rng.h"
#include "pimsim/cost_model.h"
#include "transpim/serve_glue.h"

namespace tpl {
namespace transpim {

MethodCostCertificate
certifyMethodCost(Function f, const MethodSpec& spec,
                  const CertifyOptions& opts)
{
    MethodCostCertificate cert;
    cert.function = f;
    cert.spec = spec;
    cert.key = batchTableKey(f, spec);
    uint32_t n1 = std::max<uint32_t>(opts.smallElements, 1);
    uint32_t n2 = std::max<uint32_t>(opts.largeElements, n1 + 1);
    cert.calibrationElements[0] = n1;
    cert.calibrationElements[1] = n2;

    FunctionEvaluator ev;
    try {
        ev = FunctionEvaluator::create(f, spec);
    } catch (const UnsupportedCombination&) {
        return cert;
    }
    sim::DpuCore dpu;
    try {
        ev.attach(dpu);
    } catch (const std::bad_alloc&) {
        return cert; // tables do not fit the core
    }

    Domain dom = opts.domain ? *opts.domain : functionDomain(f);
    for (int i = 0; i < 2; ++i) {
        uint32_t n = i == 0 ? n1 : n2;
        std::vector<float> inputs = uniformFloats(
            n, static_cast<float>(dom.lo), static_cast<float>(dom.hi),
            opts.seed + static_cast<uint64_t>(i));
        uint32_t bytes = n * static_cast<uint32_t>(sizeof(float));
        uint32_t inAddr = dpu.mramAlloc(bytes);
        uint32_t outAddr = dpu.mramAlloc(bytes);
        dpu.hostWriteMram(inAddr, inputs.data(), bytes);
        sim::ShardTask task;
        task.dpu = 0;
        task.inAddr = inAddr;
        task.outAddr = outAddr;
        task.firstElement = 0;
        task.elements = n;
        sim::Kernel kernel =
            makeStreamingKernel(ev, task, opts.chunkElements);
        cert.calibrationCycles[i] =
            dpu.launch(opts.tasklets, kernel).cycles;
    }

    // Absolute slack on top of the multiplicative margin: a couple of
    // pipeline revolutions per tasklet of scheduling noise plus a
    // constant floor, so near-zero-cost kernels keep headroom too.
    double slack = 2.0 * sim::CostModel{}.pipelineInterval *
                       static_cast<double>(opts.tasklets) +
                   1000.0;
    cert.cost = sim::serve::fitWaveCost(
        n1, cert.calibrationCycles[0], n2, cert.calibrationCycles[1],
        opts.margin, slack);
    cert.feasible = true;
    return cert;
}

} // namespace transpim
} // namespace tpl
