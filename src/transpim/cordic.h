/**
 * @file
 * CORDIC engines: circular and hyperbolic, rotation and vectoring.
 *
 * CORDIC (Volder 1959) computes trigonometric/hyperbolic values with
 * one table lookup, two shifts and three additions per iteration; the
 * error shrinks roughly by one bit per iteration. TransPimLib's CORDIC
 * methods trade higher PIM-side cycle counts for near-zero host setup
 * time and tiny, accuracy-independent tables (paper Sections 2.2.1,
 * 3.1, 4.2.2).
 *
 * Two engines are provided:
 *
 *  - CordicEngine: arithmetic in emulated binary32 (the shift becomes a
 *    pimLdexp). This is the paper's evaluated floating-point CORDIC;
 *    on a PIM core without an FPU each iteration costs three emulated
 *    float additions, which is what makes CORDIC so much more expensive
 *    than L-LUT at high accuracy in Figure 5.
 *
 *  - CordicFixedEngine: arithmetic in Q3.28 with native integer ops
 *    (an ablation: far cheaper per iteration, accuracy capped near the
 *    2^-28 resolution).
 */

#ifndef TPL_TRANSPIM_CORDIC_H
#define TPL_TRANSPIM_CORDIC_H

#include <cstdint>
#include <vector>

#include "common/bitops.h"
#include "common/fixed_point.h"
#include "common/instr_sink.h"
#include "softfloat/softfloat_core.h"
#include "transpim/ldexp.h"
#include "transpim/placement.h"

namespace tpl {
namespace transpim {

namespace cordic_detail {

/** Instruction cost of the sign test + branch + loop control per step. */
inline constexpr uint32_t iterControlCost = 4;

/** Loop prologue: loading the start vector and constants. */
inline constexpr uint32_t startupCost = 4;

} // namespace cordic_detail

/** Rotation family (paper Table 1). */
enum class CordicMode
{
    Circular,   ///< sin, cos, tan
    Hyperbolic, ///< sinh, cosh, tanh, exp, and via vectoring log, sqrt
};

/**
 * Floating-point CORDIC engine.
 *
 * Hosts the angle table (atan/atanh of 2^-i, including the convergence
 * repeats at i = 4, 13, 40 for the hyperbolic mode) and the gain
 * constants for the exact iteration schedule.
 */
class CordicEngine
{
  public:
    /** (x, y, z) state after the final iteration. */
    struct Result
    {
        float x;
        float y;
        float z;
    };

    /**
     * Build an engine.
     * @param mode rotation family.
     * @param iterations number of CORDIC iterations (schedule length).
     * @param placement where the angle table lives on the PIM core.
     */
    CordicEngine(CordicMode mode, uint32_t iterations,
                 Placement placement);

    /**
     * Rotation mode: drive z to 0 starting from (invGain, 0, z0).
     * Circular: returns (cos z0, sin z0, ~0).
     * Hyperbolic: returns (cosh z0, sinh z0, ~0); requires |z0| < 1.11.
     */
    Result rotate(float z0, InstrSink* sink) const;

    /**
     * Vectoring mode: drive y to 0 starting from (x0, y0, 0).
     * Hyperbolic: returns z = atanh(y0/x0) and x = gain*sqrt(x0^2-y0^2).
     * Circular: returns z = atan(y0/x0) and x = gain*sqrt(x0^2+y0^2).
     */
    Result vector(float x0, float y0, InstrSink* sink) const;

    /** Sink-template body of rotate() (batch path inlines it). */
    template <class S>
    Result
    rotateT(float z0, S& sink) const
    {
        sink.charge(cordic_detail::startupCost);
        float x = invGain_;
        float y = 0.0f;
        float z = z0;
        for (uint32_t k = 0; k < schedule_.size(); ++k) {
            int i = static_cast<int>(schedule_[k]);
            float xs = pimLdexpT(x, -i, sink);
            float ys = pimLdexpT(y, -i, sink);
            float ang = table_.readT(k, sink);
            sink.charge(cordic_detail::iterControlCost);
            bool positive = (floatBits(z) >> 31) == 0;
            // Circular rotation: x -= s*ys; hyperbolic: x += s*ys.
            bool xPlus = (mode_ == CordicMode::Hyperbolic) == positive;
            x = xPlus ? sf::addT(x, ys, sink) : sf::subT(x, ys, sink);
            y = positive ? sf::addT(y, xs, sink)
                         : sf::subT(y, xs, sink);
            z = positive ? sf::subT(z, ang, sink)
                         : sf::addT(z, ang, sink);
        }
        return {x, y, z};
    }

    /** Sink-template body of vector() (batch path inlines it). */
    template <class S>
    Result
    vectorT(float x0, float y0, S& sink) const
    {
        sink.charge(cordic_detail::startupCost);
        float x = x0;
        float y = y0;
        float z = 0.0f;
        for (uint32_t k = 0; k < schedule_.size(); ++k) {
            int i = static_cast<int>(schedule_[k]);
            float xs = pimLdexpT(x, -i, sink);
            float ys = pimLdexpT(y, -i, sink);
            float ang = table_.readT(k, sink);
            sink.charge(cordic_detail::iterControlCost);
            // Vectoring drives y toward zero: s = -sign(y).
            bool positive = (floatBits(y) >> 31) != 0;
            bool xPlus = (mode_ == CordicMode::Hyperbolic) == positive;
            x = xPlus ? sf::addT(x, ys, sink) : sf::subT(x, ys, sink);
            y = positive ? sf::addT(y, xs, sink)
                         : sf::subT(y, xs, sink);
            z = positive ? sf::subT(z, ang, sink)
                         : sf::addT(z, ang, sink);
        }
        return {x, y, z};
    }

    CordicMode mode() const { return mode_; }

    uint32_t iterations() const { return iterations_; }

    /** 1/gain of the full schedule (rotation-mode start value). */
    float invGain() const { return invGain_; }

    /** Gain of the full schedule. */
    float gain() const { return gain_; }

    /** Bytes of PIM memory the angle table occupies. */
    uint32_t memoryBytes() const { return table_.bytes(); }

    /** Place the angle table on a simulated core. */
    void attach(sim::DpuCore& core) { table_.attach(core); }

    /** The iteration schedule (shift amounts, with hyperbolic repeats). */
    const std::vector<uint32_t>& schedule() const { return schedule_; }

  private:
    CordicMode mode_;
    uint32_t iterations_;
    std::vector<uint32_t> schedule_;
    LutStore<float> table_; ///< rotation angle per scheduled iteration
    float invGain_ = 1.0f;
    float gain_ = 1.0f;
};

/**
 * Q3.28 fixed-point CORDIC engine (ablation).
 *
 * Same iteration schedule as CordicEngine, but the state is Q3.28 and
 * each iteration costs two native shifts and three native adds, which
 * is why this variant is roughly an order of magnitude cheaper per
 * iteration than the float engine while capping accuracy near 2^-28.
 */
class CordicFixedEngine
{
  public:
    struct Result
    {
        Fixed x;
        Fixed y;
        Fixed z;
    };

    CordicFixedEngine(CordicMode mode, uint32_t iterations,
                      Placement placement);

    /** Rotation mode on Q3.28 state; see CordicEngine::rotate. */
    Result rotate(Fixed z0, InstrSink* sink) const;

    /** Vectoring mode on Q3.28 state; see CordicEngine::vector. */
    Result vector(Fixed x0, Fixed y0, InstrSink* sink) const;

    /** Sink-template body of rotate() (batch path inlines it). */
    template <class S>
    Result
    rotateT(Fixed z0, S& sink) const
    {
        sink.charge(cordic_detail::startupCost);
        int32_t x = invGain_.raw();
        int32_t y = 0;
        int32_t z = z0.raw();
        for (uint32_t k = 0; k < schedule_.size(); ++k) {
            int i = static_cast<int>(schedule_[k]);
            int32_t xs = x >> i;
            int32_t ys = y >> i;
            int32_t ang = table_.readT(k, sink);
            // Two shifts, three adds, sign test + loop control.
            sink.charge(2 + 3 + cordic_detail::iterControlCost);
            bool positive = z >= 0;
            bool xPlus = (mode_ == CordicMode::Hyperbolic) == positive;
            x = xPlus ? x + ys : x - ys;
            y = positive ? y + xs : y - xs;
            z = positive ? z - ang : z + ang;
        }
        return {Fixed::fromRaw(x), Fixed::fromRaw(y),
                Fixed::fromRaw(z)};
    }

    /** Sink-template body of vector() (batch path inlines it). */
    template <class S>
    Result
    vectorT(Fixed x0, Fixed y0, S& sink) const
    {
        sink.charge(cordic_detail::startupCost);
        int32_t x = x0.raw();
        int32_t y = y0.raw();
        int32_t z = 0;
        for (uint32_t k = 0; k < schedule_.size(); ++k) {
            int i = static_cast<int>(schedule_[k]);
            int32_t xs = x >> i;
            int32_t ys = y >> i;
            int32_t ang = table_.readT(k, sink);
            sink.charge(2 + 3 + cordic_detail::iterControlCost);
            bool positive = y < 0;
            bool xPlus = (mode_ == CordicMode::Hyperbolic) == positive;
            x = xPlus ? x + ys : x - ys;
            y = positive ? y + xs : y - xs;
            z = positive ? z - ang : z + ang;
        }
        return {Fixed::fromRaw(x), Fixed::fromRaw(y),
                Fixed::fromRaw(z)};
    }

    uint32_t iterations() const { return iterations_; }

    Fixed invGain() const { return invGain_; }

    uint32_t memoryBytes() const { return table_.bytes(); }

    void attach(sim::DpuCore& core) { table_.attach(core); }

  private:
    CordicMode mode_;
    uint32_t iterations_;
    std::vector<uint32_t> schedule_;
    LutStore<int32_t> table_; ///< Q3.28 rotation angles
    Fixed invGain_;
};

/**
 * Build the iteration schedule for a mode: circular uses i = 0..n-1;
 * hyperbolic uses i = 1..k with the standard convergence repeats at
 * i = 4, 13, 40, truncated to @p iterations entries.
 */
std::vector<uint32_t> cordicSchedule(CordicMode mode, uint32_t iterations);

} // namespace transpim
} // namespace tpl

#endif // TPL_TRANSPIM_CORDIC_H
