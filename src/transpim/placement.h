/**
 * @file
 * Table storage with WRAM/MRAM placement and access-cost accounting.
 *
 * Every LUT-based method (and the CORDIC angle tables) stores its
 * entries through LutStore. The store owns the authoritative host-side
 * copy generated at setup time; attach() places a copy into a simulated
 * DPU's scratchpad (WRAM) or DRAM bank (MRAM), after which reads charge
 * the corresponding access cost:
 *
 *  - WRAM: one pipelined load plus address arithmetic.
 *  - MRAM: an 8-byte-aligned DMA transfer through the DPU's DMA model
 *    (engine occupancy + tasklet stall), which is how a real DPU reads
 *    a random table entry from its bank.
 *
 * Placing a LUT in WRAM limits its size (the paper's Section 4.2.1
 * observation that scratchpad capacity caps the accuracy of
 * non-interpolated methods); attach() throws std::bad_alloc when a
 * table does not fit, and the benchmark harness reports the
 * configuration as infeasible.
 */

#ifndef TPL_TRANSPIM_PLACEMENT_H
#define TPL_TRANSPIM_PLACEMENT_H

#include <cstring>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "common/instr_sink.h"
#include "pimsim/dpu.h"

namespace tpl {
namespace transpim {

/** Where a method's tables live on the PIM core. */
enum class Placement
{
    Host, ///< not attached; host-side evaluation (tests, references)
    Wram, ///< PIM core scratchpad (fast, 64 KB)
    Mram, ///< PIM core DRAM bank (large, DMA accessed)
};

/** Name for reports. */
inline const char*
placementName(Placement p)
{
    switch (p) {
      case Placement::Host: return "host";
      case Placement::Wram: return "WRAM";
      case Placement::Mram: return "MRAM";
    }
    return "?";
}

/**
 * Resolve the simulator tasklet context behind a Sink, for DMA-modelled
 * MRAM table reads. Batch sinks cache the TaskletContext* once per
 * batch and expose it as tasklet(); the InstrSink*-backed sinks
 * (SinkRef) fall back to a dynamic_cast per read, which is exactly what
 * the scalar path always did.
 */
template <class S>
inline sim::TaskletContext*
lutTasklet(S& sink)
{
    if constexpr (requires { sink.tasklet(); })
        return sink.tasklet();
    else
        return dynamic_cast<sim::TaskletContext*>(sink.raw());
}

/**
 * Typed table with placement-aware reads.
 *
 * @tparam T entry type; trivially copyable (float, Fixed, small PODs).
 */
template <typename T>
class LutStore
{
    static_assert(std::is_trivially_copyable_v<T>);

  public:
    LutStore() = default;

    LutStore(std::vector<T> entries, Placement placement)
        : entries_(std::move(entries)), placement_(placement)
    {}

    uint32_t size() const { return static_cast<uint32_t>(entries_.size()); }

    /** Bytes this table occupies on the PIM core. */
    uint32_t bytes() const { return size() * sizeof(T); }

    Placement placement() const { return placement_; }

    const std::vector<T>& host() const { return entries_; }

    /**
     * Copy the table into @p core at its configured placement.
     * @throws std::bad_alloc when the memory region cannot hold it.
     */
    void
    attach(sim::DpuCore& core)
    {
        core_ = &core;
        switch (placement_) {
          case Placement::Host:
            break;
          case Placement::Wram:
            addr_ = core.wramAlloc(bytes());
            std::memcpy(core.wramData() + addr_, entries_.data(), bytes());
            break;
          case Placement::Mram:
            addr_ = core.mramAlloc(bytes());
            core.hostWriteMram(addr_, entries_.data(), bytes());
            break;
        }
    }

    /** True once attach() has run against a core. */
    bool attached() const { return core_ != nullptr; }

    /**
     * Read entry @p index, charging the placement-specific cost
     * (sink-template; the batch path inlines it).
     * Out-of-range indices are a logic error in the calling method.
     */
    template <class S>
    T
    readT(uint32_t index, S& sink) const
    {
        if (index >= entries_.size())
            throw std::out_of_range("LutStore index");
        sink.note(OpClass::TableRead);
        if (core_ == nullptr || placement_ == Placement::Host) {
            // Host-side evaluation: charge the WRAM-equivalent cost so
            // instruction counts stay comparable in pure-host tests.
            sink.charge(2);
            return entries_[index];
        }
        if (placement_ == Placement::Wram) {
            // Address arithmetic plus one pipelined WRAM load.
            sink.charge(2);
            T value;
            std::memcpy(&value, core_->wramData() + addr_ +
                                    index * sizeof(T),
                        sizeof(T));
            return value;
        }
        // MRAM: issue an aligned DMA for the containing 8-byte blocks.
        uint32_t byteOff = addr_ + index * sizeof(T);
        uint32_t first = byteOff & ~7u;
        uint32_t last = (byteOff + sizeof(T) + 7u) & ~7u;
        alignas(8) unsigned char block[16 + sizeof(T)];
        if (sim::TaskletContext* ctx = lutTasklet(sink)) {
            ctx->mramRead(first, block, last - first);
        } else {
            // No DMA model available: approximate the stall as
            // instructions so costs remain visible.
            sink.charge(8);
            std::memcpy(block, core_->mramData() + first, last - first);
        }
        T value;
        std::memcpy(&value, block + (byteOff - first), sizeof(T));
        return value;
    }

    /**
     * Read entry @p index, charging the placement-specific cost.
     * Out-of-range indices are a logic error in the calling method.
     */
    T
    read(uint32_t index, InstrSink* sink) const
    {
        SinkRef s(sink);
        return readT(index, s);
    }

  private:
    std::vector<T> entries_;
    Placement placement_ = Placement::Host;
    sim::DpuCore* core_ = nullptr;
    uint32_t addr_ = 0;
};

} // namespace transpim
} // namespace tpl

#endif // TPL_TRANSPIM_PLACEMENT_H
