/**
 * @file
 * PimProgram: deploy several function evaluators onto PIM cores as one
 * unit.
 *
 * Real kernels rarely use a single transcendental: Blackscholes needs
 * log, sqrt, exp and CNDF at once, and all their tables must share the
 * core's scratchpad with the operand buffers. PimProgram manages that:
 * it owns a set of named evaluators, checks their combined footprint
 * against a memory budget *before* any transfer, attaches all of them
 * to one core (or every core of a PimSystem) in one call, and reports
 * aggregate setup time and transfer volume - the quantities the
 * paper's Figures 6/7 track per method, rolled up per kernel.
 */

#ifndef TPL_TRANSPIM_PROGRAM_H
#define TPL_TRANSPIM_PROGRAM_H

#include <map>
#include <string>

#include "pimsim/system.h"
#include "transpim/evaluator.h"

namespace tpl {
namespace transpim {

/**
 * A named bundle of evaluators deployed together.
 */
class PimProgram
{
  public:
    /**
     * @param wramBudget bytes of scratchpad the tables may use
     *        (leaving the rest for operand buffers).
     */
    explicit PimProgram(uint32_t wramBudget = 48 * 1024)
        : wramBudget_(wramBudget)
    {}

    /**
     * Add an evaluator under @p name.
     * @throws std::invalid_argument on duplicate names.
     * @throws std::length_error when the WRAM budget would overflow
     *         (MRAM-placed tables do not count against it).
     */
    void add(const std::string& name, FunctionEvaluator evaluator);

    /** Build + add in one step. */
    void
    add(const std::string& name, Function f, const MethodSpec& spec)
    {
        add(name, FunctionEvaluator::create(f, spec));
    }

    /** Look up an evaluator by name. @throws std::out_of_range. */
    const FunctionEvaluator& get(const std::string& name) const;

    /** Shorthand for get(). */
    const FunctionEvaluator&
    operator[](const std::string& name) const
    {
        return get(name);
    }

    /** Number of evaluators in the program. */
    size_t size() const { return evaluators_.size(); }

    /** Combined table bytes (all placements). */
    uint32_t totalTableBytes() const;

    /** Combined table bytes destined for WRAM. */
    uint32_t wramTableBytes() const;

    /** Combined host-side setup seconds. */
    double totalSetupSeconds() const;

    /** Attach every evaluator to one core. */
    void attach(sim::DpuCore& core);

    /**
     * Attach every evaluator to every core of a system.
     * @return modeled broadcast-transfer seconds for the tables.
     */
    double attachAll(sim::PimSystem& system);

  private:
    uint32_t wramBudget_;
    std::map<std::string, FunctionEvaluator> evaluators_;
};

} // namespace transpim
} // namespace tpl

#endif // TPL_TRANSPIM_PROGRAM_H
