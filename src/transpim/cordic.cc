/**
 * @file
 * CORDIC engine implementations.
 */

#include "transpim/cordic.h"

#include <cmath>

#include "common/bitops.h"
#include "softfloat/softfloat.h"
#include "transpim/ldexp.h"

namespace tpl {
namespace transpim {

std::vector<uint32_t>
cordicSchedule(CordicMode mode, uint32_t iterations)
{
    std::vector<uint32_t> schedule;
    schedule.reserve(iterations);
    if (mode == CordicMode::Circular) {
        for (uint32_t i = 0; i < iterations; ++i)
            schedule.push_back(i);
        return schedule;
    }
    // Hyperbolic: indices start at 1 and repeat at 4, 13, 40, ... to
    // guarantee convergence (each repeat index r satisfies
    // r_next = 3r + 1).
    uint32_t nextRepeat = 4;
    uint32_t i = 1;
    while (schedule.size() < iterations) {
        schedule.push_back(i);
        if (i == nextRepeat && schedule.size() < iterations) {
            schedule.push_back(i);
            nextRepeat = 3 * nextRepeat + 1;
        }
        ++i;
    }
    return schedule;
}

namespace {

double
scheduleGain(CordicMode mode, const std::vector<uint32_t>& schedule)
{
    double g = 1.0;
    for (uint32_t i : schedule) {
        double t = std::ldexp(1.0, -2 * static_cast<int>(i));
        g *= mode == CordicMode::Circular ? std::sqrt(1.0 + t)
                                          : std::sqrt(1.0 - t);
    }
    return g;
}

std::vector<float>
angleTable(CordicMode mode, const std::vector<uint32_t>& schedule)
{
    std::vector<float> table;
    table.reserve(schedule.size());
    for (uint32_t i : schedule) {
        double t = std::ldexp(1.0, -static_cast<int>(i));
        double a = mode == CordicMode::Circular ? std::atan(t)
                                                : std::atanh(t);
        table.push_back(static_cast<float>(a));
    }
    return table;
}

} // namespace

CordicEngine::CordicEngine(CordicMode mode, uint32_t iterations,
                           Placement placement)
    : mode_(mode), iterations_(iterations),
      schedule_(cordicSchedule(mode, iterations)),
      table_(angleTable(mode, schedule_), placement)
{
    double g = scheduleGain(mode, schedule_);
    gain_ = static_cast<float>(g);
    invGain_ = static_cast<float>(1.0 / g);
}

CordicEngine::Result
CordicEngine::rotate(float z0, InstrSink* sink) const
{
    SinkRef s(sink);
    return rotateT(z0, s);
}

CordicEngine::Result
CordicEngine::vector(float x0, float y0, InstrSink* sink) const
{
    SinkRef s(sink);
    return vectorT(x0, y0, s);
}

namespace {

std::vector<int32_t>
fixedAngleTable(CordicMode mode, const std::vector<uint32_t>& schedule)
{
    std::vector<int32_t> table;
    table.reserve(schedule.size());
    for (uint32_t i : schedule) {
        double t = std::ldexp(1.0, -static_cast<int>(i));
        double a = mode == CordicMode::Circular ? std::atan(t)
                                                : std::atanh(t);
        table.push_back(Fixed::fromDouble(a).raw());
    }
    return table;
}

} // namespace

CordicFixedEngine::CordicFixedEngine(CordicMode mode, uint32_t iterations,
                                     Placement placement)
    : mode_(mode), iterations_(iterations),
      schedule_(cordicSchedule(mode, iterations)),
      table_(fixedAngleTable(mode, schedule_), placement)
{
    invGain_ = Fixed::fromDouble(1.0 / scheduleGain(mode, schedule_));
}

CordicFixedEngine::Result
CordicFixedEngine::rotate(Fixed z0, InstrSink* sink) const
{
    SinkRef s(sink);
    return rotateT(z0, s);
}

CordicFixedEngine::Result
CordicFixedEngine::vector(Fixed x0, Fixed y0, InstrSink* sink) const
{
    SinkRef s(sink);
    return vectorT(x0, y0, s);
}

} // namespace transpim
} // namespace tpl
