/**
 * @file
 * CORDIC engine implementations.
 */

#include "transpim/cordic.h"

#include <cmath>

#include "common/bitops.h"
#include "softfloat/softfloat.h"
#include "transpim/ldexp.h"

namespace tpl {
namespace transpim {

std::vector<uint32_t>
cordicSchedule(CordicMode mode, uint32_t iterations)
{
    std::vector<uint32_t> schedule;
    schedule.reserve(iterations);
    if (mode == CordicMode::Circular) {
        for (uint32_t i = 0; i < iterations; ++i)
            schedule.push_back(i);
        return schedule;
    }
    // Hyperbolic: indices start at 1 and repeat at 4, 13, 40, ... to
    // guarantee convergence (each repeat index r satisfies
    // r_next = 3r + 1).
    uint32_t nextRepeat = 4;
    uint32_t i = 1;
    while (schedule.size() < iterations) {
        schedule.push_back(i);
        if (i == nextRepeat && schedule.size() < iterations) {
            schedule.push_back(i);
            nextRepeat = 3 * nextRepeat + 1;
        }
        ++i;
    }
    return schedule;
}

namespace {

/** Instruction cost of the sign test + branch + loop control per step. */
constexpr uint32_t iterControlCost = 4;

/** Loop prologue: loading the start vector and constants. */
constexpr uint32_t startupCost = 4;

double
scheduleGain(CordicMode mode, const std::vector<uint32_t>& schedule)
{
    double g = 1.0;
    for (uint32_t i : schedule) {
        double t = std::ldexp(1.0, -2 * static_cast<int>(i));
        g *= mode == CordicMode::Circular ? std::sqrt(1.0 + t)
                                          : std::sqrt(1.0 - t);
    }
    return g;
}

std::vector<float>
angleTable(CordicMode mode, const std::vector<uint32_t>& schedule)
{
    std::vector<float> table;
    table.reserve(schedule.size());
    for (uint32_t i : schedule) {
        double t = std::ldexp(1.0, -static_cast<int>(i));
        double a = mode == CordicMode::Circular ? std::atan(t)
                                                : std::atanh(t);
        table.push_back(static_cast<float>(a));
    }
    return table;
}

} // namespace

CordicEngine::CordicEngine(CordicMode mode, uint32_t iterations,
                           Placement placement)
    : mode_(mode), iterations_(iterations),
      schedule_(cordicSchedule(mode, iterations)),
      table_(angleTable(mode, schedule_), placement)
{
    double g = scheduleGain(mode, schedule_);
    gain_ = static_cast<float>(g);
    invGain_ = static_cast<float>(1.0 / g);
}

CordicEngine::Result
CordicEngine::rotate(float z0, InstrSink* sink) const
{
    chargeInstr(sink, startupCost);
    float x = invGain_;
    float y = 0.0f;
    float z = z0;
    for (uint32_t k = 0; k < schedule_.size(); ++k) {
        int i = static_cast<int>(schedule_[k]);
        float xs = pimLdexp(x, -i, sink);
        float ys = pimLdexp(y, -i, sink);
        float ang = table_.read(k, sink);
        chargeInstr(sink, iterControlCost);
        bool positive = (floatBits(z) >> 31) == 0;
        // Circular rotation: x -= s*ys; hyperbolic: x += s*ys.
        bool xPlus = (mode_ == CordicMode::Hyperbolic) == positive;
        x = xPlus ? sf::add(x, ys, sink) : sf::sub(x, ys, sink);
        y = positive ? sf::add(y, xs, sink) : sf::sub(y, xs, sink);
        z = positive ? sf::sub(z, ang, sink) : sf::add(z, ang, sink);
    }
    return {x, y, z};
}

CordicEngine::Result
CordicEngine::vector(float x0, float y0, InstrSink* sink) const
{
    chargeInstr(sink, startupCost);
    float x = x0;
    float y = y0;
    float z = 0.0f;
    for (uint32_t k = 0; k < schedule_.size(); ++k) {
        int i = static_cast<int>(schedule_[k]);
        float xs = pimLdexp(x, -i, sink);
        float ys = pimLdexp(y, -i, sink);
        float ang = table_.read(k, sink);
        chargeInstr(sink, iterControlCost);
        // Vectoring drives y toward zero: s = -sign(y).
        bool positive = (floatBits(y) >> 31) != 0;
        bool xPlus = (mode_ == CordicMode::Hyperbolic) == positive;
        x = xPlus ? sf::add(x, ys, sink) : sf::sub(x, ys, sink);
        y = positive ? sf::add(y, xs, sink) : sf::sub(y, xs, sink);
        z = positive ? sf::sub(z, ang, sink) : sf::add(z, ang, sink);
    }
    return {x, y, z};
}

namespace {

std::vector<int32_t>
fixedAngleTable(CordicMode mode, const std::vector<uint32_t>& schedule)
{
    std::vector<int32_t> table;
    table.reserve(schedule.size());
    for (uint32_t i : schedule) {
        double t = std::ldexp(1.0, -static_cast<int>(i));
        double a = mode == CordicMode::Circular ? std::atan(t)
                                                : std::atanh(t);
        table.push_back(Fixed::fromDouble(a).raw());
    }
    return table;
}

} // namespace

CordicFixedEngine::CordicFixedEngine(CordicMode mode, uint32_t iterations,
                                     Placement placement)
    : mode_(mode), iterations_(iterations),
      schedule_(cordicSchedule(mode, iterations)),
      table_(fixedAngleTable(mode, schedule_), placement)
{
    invGain_ = Fixed::fromDouble(1.0 / scheduleGain(mode, schedule_));
}

CordicFixedEngine::Result
CordicFixedEngine::rotate(Fixed z0, InstrSink* sink) const
{
    chargeInstr(sink, startupCost);
    int32_t x = invGain_.raw();
    int32_t y = 0;
    int32_t z = z0.raw();
    for (uint32_t k = 0; k < schedule_.size(); ++k) {
        int i = static_cast<int>(schedule_[k]);
        int32_t xs = x >> i;
        int32_t ys = y >> i;
        int32_t ang = table_.read(k, sink);
        // Two shifts, three adds, sign test + loop control.
        chargeInstr(sink, 2 + 3 + iterControlCost);
        bool positive = z >= 0;
        bool xPlus = (mode_ == CordicMode::Hyperbolic) == positive;
        x = xPlus ? x + ys : x - ys;
        y = positive ? y + xs : y - xs;
        z = positive ? z - ang : z + ang;
    }
    return {Fixed::fromRaw(x), Fixed::fromRaw(y), Fixed::fromRaw(z)};
}

CordicFixedEngine::Result
CordicFixedEngine::vector(Fixed x0, Fixed y0, InstrSink* sink) const
{
    chargeInstr(sink, startupCost);
    int32_t x = x0.raw();
    int32_t y = y0.raw();
    int32_t z = 0;
    for (uint32_t k = 0; k < schedule_.size(); ++k) {
        int i = static_cast<int>(schedule_[k]);
        int32_t xs = x >> i;
        int32_t ys = y >> i;
        int32_t ang = table_.read(k, sink);
        chargeInstr(sink, 2 + 3 + iterControlCost);
        bool positive = y < 0;
        bool xPlus = (mode_ == CordicMode::Hyperbolic) == positive;
        x = xPlus ? x + ys : x - ys;
        y = positive ? y + xs : y - xs;
        z = positive ? z - ang : z + ang;
    }
    return {Fixed::fromRaw(x), Fixed::fromRaw(y), Fixed::fromRaw(z)};
}

} // namespace transpim
} // namespace tpl
