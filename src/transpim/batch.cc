/**
 * @file
 * Batch execution support implementation.
 */

#include "transpim/batch.h"

#include <cstdlib>

namespace tpl {
namespace transpim {

bool
batchEvalEnabled()
{
    static const bool enabled = [] {
        const char* v = std::getenv("TPL_BATCH_EVAL");
        return !(v && v[0] == '0' && v[1] == '\0');
    }();
    return enabled;
}

} // namespace transpim
} // namespace tpl
