/**
 * @file
 * OnlineAutoTuner implementation. All mutation happens in route() /
 * observe(), which the serve drivers call in wave order from the
 * consumer thread — every decision is a pure function of the modeled
 * workload, so tuned runs stay bit-identical at any TPL_SIM_THREADS.
 */

#include "transpim/auto_tuner.h"

#include <algorithm>
#include <cmath>

#include "common/error_metrics.h"
#include "common/rng.h"
#include "pimsim/obs/metrics.h"
#include "transpim/reference.h"

namespace tpl {
namespace transpim {

namespace {

/** Candidate-search input seed, shared with the static tuner so the
 * two agree about offline accuracy. */
constexpr uint64_t kSampleSeed = 0x7a11e5;

/** Slack on the implicit accuracy bound used when a tenant's SLA has
 * no rmse clause: the bound is 2x the requested configuration's own
 * measured RMSE, loose enough that sampling noise between the offline
 * probe and live waves cannot thrash the stream, tight enough to
 * catch a genuinely worse candidate. */
constexpr double kImplicitRmseSlack = 2.0;

void
bump(const char* name, uint64_t n = 1)
{
    obs::Registry& reg = obs::Registry::global();
    if (reg.enabled())
        reg.counter(name).add(n);
}

} // namespace

double
OnlineAutoTuner::Candidate::cyclesPerElement() const
{
    return elements > 0 ? static_cast<double>(totalCycles) /
                              static_cast<double>(elements)
                        : 0.0;
}

double
OnlineAutoTuner::Candidate::rmse() const
{
    return errorSamples > 0
               ? std::sqrt(sumSqError /
                           static_cast<double>(errorSamples))
               : 0.0;
}

OnlineAutoTuner::OnlineAutoTuner(EvaluatorCatalog& catalog,
                                 const AutoTunerOptions& options)
    : catalog_(catalog), opts_(options)
{
    if (opts_.maxCandidates == 0)
        opts_.maxCandidates = 1;
    if (opts_.exploreElements == 0)
        opts_.exploreElements = 1;
}

OnlineAutoTuner::~OnlineAutoTuner() = default;

void
OnlineAutoTuner::setTenantSla(uint64_t tenant,
                              const sim::serve::TenantSla& sla)
{
    tenantSlas_[tenant] = sla;
}

sim::serve::TenantSla
OnlineAutoTuner::tenantSla(uint64_t tenant) const
{
    auto it = tenantSlas_.find(tenant);
    return it != tenantSlas_.end() ? it->second : opts_.defaultSla;
}

void
OnlineAutoTuner::bindCache(sim::serve::TableCache* cache)
{
    cache_ = cache;
}

std::vector<sim::serve::TuneDecision>
OnlineAutoTuner::decisions() const
{
    return decisions_;
}

std::optional<uint32_t>
OnlineAutoTuner::probeSpec(Function f, const MethodSpec& spec)
{
    // A full create + attach dry run on a scratch core: a candidate
    // whose tables cannot be generated or staged must never be routed
    // to, or the pipeline would drop the rerouted requests.
    try {
        if (!probeSys_)
            probeSys_ = std::make_unique<sim::PimSystem>(1);
        FunctionEvaluator ev = FunctionEvaluator::create(f, spec);
        ev.attach(probeSys_->dpu(0));
        return ev.memoryBytes();
    } catch (const std::exception&) {
        // Scratch MRAM is a bump arena; a failed attach may mean the
        // arena filled up across many probes — retire it so the next
        // probe starts fresh, and treat this candidate as infeasible.
        probeSys_.reset();
        return std::nullopt;
    }
}

void
OnlineAutoTuner::buildCandidates(Stream& s)
{
    auto entry = catalog_.find(s.requested.hash);
    if (!entry)
        return; // unknown key: pass through untuned

    Candidate base;
    base.key = s.requested;
    base.function = entry->first;
    base.spec = entry->second;
    base.relativeError =
        resolveMetric(base.function) == ErrorMetric::Relative;
    auto baseBytes = probeSpec(base.function, base.spec);
    if (!baseBytes)
        return; // infeasible as requested: the pipeline drops it
    base.tableBytes = *baseBytes;

    // Accuracy target the candidates must meet: the SLA's rmse
    // clause, or (with none) the requested configuration's own
    // measured RMSE — a candidate is never allowed to be less
    // accurate than what the tenant asked for.
    double target = s.sla.maxRmse;
    if (target <= 0.0) {
        Domain dom = functionDomain(base.function);
        auto inputs = uniformFloats(
            opts_.searchSamples, static_cast<float>(dom.lo),
            static_cast<float>(dom.hi), kSampleSeed);
        try {
            FunctionEvaluator ev =
                FunctionEvaluator::create(base.function, base.spec);
            double sumSq = 0.0;
            for (float x : inputs) {
                double ref = referenceValue(
                    base.function, static_cast<double>(x));
                double err =
                    std::abs(ev.eval(x, nullptr) - ref);
                if (base.relativeError)
                    err /= std::max(1.0, std::abs(ref));
                sumSq += err * err;
            }
            target = std::sqrt(sumSq / static_cast<double>(
                                           inputs.size()));
        } catch (const std::exception&) {
            return;
        }
        s.implicitRmse = target * kImplicitRmseSlack;
        if (target <= 0.0)
            target = 1e-12; // exact config: only equals can compete
    }

    s.candidates.push_back(base);

    TunerConstraints tc;
    tc.metric = ErrorMetric::Auto;
    tc.placement = base.spec.placement;
    tc.maxTableBytes = opts_.maxTableBytes;
    tc.sampleSize = opts_.searchSamples;
    auto rec = recommendSpec(base.function, target, tc);
    if (rec) {
        for (const TunedCandidate& tcand : rec->candidates) {
            if (s.candidates.size() >= opts_.maxCandidates)
                break;
            sim::serve::TableKey key =
                batchTableKey(base.function, tcand.spec);
            bool dup = false;
            for (const Candidate& c : s.candidates)
                dup = dup || c.key.hash == key.hash;
            if (dup)
                continue;
            auto bytes = probeSpec(base.function, tcand.spec);
            if (!bytes)
                continue;
            catalog_.add(base.function, tcand.spec);
            Candidate c;
            c.key = key;
            c.function = base.function;
            c.spec = tcand.spec;
            c.tableBytes = *bytes;
            c.relativeError = base.relativeError;
            s.candidates.push_back(c);
        }
    }
    s.tunable = true;
    bump("tuner/streams");
    bump("tuner/candidates", s.candidates.size());
}

OnlineAutoTuner::Stream&
OnlineAutoTuner::streamFor(const sim::serve::TableKey& requested,
                           uint64_t tenant)
{
    const StreamKey sk{tenant, requested.hash};
    auto it = streams_.find(sk);
    if (it != streams_.end())
        return it->second;

    Stream& s = streams_[sk];
    s.tenant = tenant;
    s.requested = requested;
    s.sla = tenantSla(tenant);
    s.lastRoutedHash = requested.hash;
    if (s.sla.constrained())
        buildCandidates(s);
    // Every candidate answers observe() for this stream (first
    // registration wins on alias collisions across streams).
    for (const Candidate& c : s.candidates)
        aliases_.emplace(StreamKey{tenant, c.key.hash}, sk);
    return s;
}

double
OnlineAutoTuner::cyclesScore(const Stream& s,
                             const Candidate& c) const
{
    if (s.sla.cyclesPercentile > 0.0 &&
        !c.waveCyclesPerElement.empty()) {
        std::vector<double> sorted = c.waveCyclesPerElement;
        std::sort(sorted.begin(), sorted.end());
        uint64_t r = static_cast<uint64_t>(
            std::ceil(s.sla.cyclesPercentile / 100.0 *
                      static_cast<double>(sorted.size())));
        r = std::min<uint64_t>(std::max<uint64_t>(r, 1),
                               sorted.size());
        return sorted[r - 1];
    }
    return c.cyclesPerElement();
}

void
OnlineAutoTuner::checkSla(Stream& s, Candidate& c)
{
    if (c.violated)
        return;
    bool bad = false;
    const double rmseBound =
        s.sla.maxRmse > 0.0 ? s.sla.maxRmse : s.implicitRmse;
    if (rmseBound > 0.0 && c.errorSamples > 0 &&
        c.rmse() > rmseBound)
        bad = true;
    if (s.sla.maxUlp > 0.0 && c.errorSamples > 0 &&
        c.maxUlp > s.sla.maxUlp)
        bad = true;
    if (s.sla.maxCyclesPerElement > 0.0 && c.elements > 0 &&
        cyclesScore(s, c) > s.sla.maxCyclesPerElement)
        bad = true;
    if (bad) {
        c.violated = true;
        bump("tuner/sla_violations");
    }
}

void
OnlineAutoTuner::recordDecision(const Stream& s,
                                const std::string& from,
                                const std::string& to,
                                const char* reason)
{
    sim::serve::TuneDecision d;
    d.sequence = decisionSeq_++;
    d.tenant = s.tenant;
    d.stream = s.requested.label;
    d.fromTable = from;
    d.toTable = to;
    d.reason = reason;
    decisions_.push_back(std::move(d));
    bump("tuner/decisions");
}

void
OnlineAutoTuner::commit(Stream& s, const char* reason)
{
    size_t best = 0;
    double bestScore = 0.0;
    bool have = false;
    for (size_t i = 0; i < s.candidates.size(); ++i) {
        const Candidate& c = s.candidates[i];
        if (c.violated || c.elements == 0)
            continue;
        double score = c.cyclesPerElement();
        if (!have || score < bestScore) {
            best = i;
            bestScore = score;
            have = true;
        }
    }
    // Nothing qualifies: run what the tenant asked for.
    const std::string from = s.candidates[s.active].key.label;
    s.active = have ? best : 0;
    s.committed = true;
    s.lastReason = reason;
    recordDecision(s, from, s.candidates[s.active].key.label,
                   reason);
}

bool
OnlineAutoTuner::activate(const StreamKey& sk, const Candidate& c)
{
    (void)sk;
    auto it = active_.find(c.key.hash);
    if (it != active_.end()) {
        it->second.lastUsed = routeSeq_;
        return true;
    }
    const uint64_t bytes = c.tableBytes;
    if (opts_.mramBudgetBytes > 0) {
        while (activeBytes_ + bytes > opts_.mramBudgetBytes &&
               !active_.empty()) {
            // Evict the least-recently-routed table no stream is
            // currently pointing at; re-use pays a fresh broadcast.
            std::map<uint64_t, ActiveTable>::iterator lru =
                active_.end();
            for (auto at = active_.begin(); at != active_.end();
                 ++at) {
                bool inUse = false;
                for (const auto& [key, st] : streams_)
                    if (st.tunable &&
                        st.candidates[st.active].key.hash ==
                            at->first)
                        inUse = true;
                if (inUse)
                    continue;
                if (lru == active_.end() ||
                    at->second.lastUsed < lru->second.lastUsed)
                    lru = at;
            }
            if (lru == active_.end())
                break; // everything left is in use
            activeBytes_ -= lru->second.bytes;
            if (cache_)
                cache_->evict(lru->second.key);
            bump("tuner/evictions");
            sim::serve::TuneDecision d;
            d.sequence = decisionSeq_++;
            d.tenant = sk.first;
            d.fromTable = lru->second.key.label;
            d.reason = "evict";
            decisions_.push_back(std::move(d));
            bump("tuner/decisions");
            active_.erase(lru);
        }
        if (activeBytes_ + bytes > opts_.mramBudgetBytes)
            return false;
    }
    active_[c.key.hash] = ActiveTable{c.key, bytes, routeSeq_};
    activeBytes_ += bytes;
    return true;
}

sim::serve::AutoTuner::Routing
OnlineAutoTuner::route(const sim::serve::TableKey& requested,
                       uint64_t tenant)
{
    ++routeSeq_;
    Stream& s = streamFor(requested, tenant);
    if (!s.tunable)
        return {requested, false, {}};

    Candidate* c = &s.candidates[s.active];
    if (s.active != 0 && !activate({tenant, requested.hash}, *c)) {
        // The candidate's table cannot fit the MRAM budget even
        // after evicting idle tables: exclude it and fall back.
        c->violated = true;
        recordDecision(s, c->key.label, s.requested.label, "budget");
        if (s.committed)
            commit(s, "budget");
        else
            s.active = 0;
        c = &s.candidates[s.active];
    }
    if (s.active == 0)
        activate({tenant, requested.hash}, *c); // best effort
    const bool switched = c->key.hash != s.lastRoutedHash;
    Routing out;
    out.table = c->key;
    out.switched = switched;
    if (switched) {
        ++s.switches;
        bump("tuner/switches");
        out.note = (s.lastReason.empty() ? std::string("route")
                                         : s.lastReason) +
                   " (requested " + s.requested.label + ")";
    }
    s.lastRoutedHash = c->key.hash;
    return out;
}

void
OnlineAutoTuner::observe(const sim::serve::WaveOutcome& outcome)
{
    auto al = aliases_.find(
        StreamKey{outcome.tenant, outcome.table.hash});
    if (al == aliases_.end())
        return;
    auto st = streams_.find(al->second);
    if (st == streams_.end() || !st->second.tunable)
        return;
    Stream& s = st->second;
    Candidate* c = nullptr;
    size_t ci = 0;
    for (size_t i = 0; i < s.candidates.size(); ++i)
        if (s.candidates[i].key.hash == outcome.table.hash) {
            c = &s.candidates[i];
            ci = i;
            break;
        }
    if (!c || outcome.elements == 0)
        return;

    c->elements += outcome.elements;
    c->totalCycles += outcome.totalCycles;
    c->waveCyclesPerElement.push_back(
        static_cast<double>(outcome.totalCycles) /
        static_cast<double>(outcome.elements));

    // Exact differential error, stride-sampled over the wave's
    // healthy gathered ranges against the double-precision reference.
    uint64_t spanTotal = 0;
    for (const auto& sp : outcome.spans)
        spanTotal += sp.elements;
    if (spanTotal > 0 && opts_.sampleCap > 0) {
        const uint64_t stride =
            std::max<uint64_t>(1, spanTotal / opts_.sampleCap);
        uint64_t idx = 0;
        uint32_t taken = 0;
        for (const auto& sp : outcome.spans) {
            for (uint64_t i = 0; i < sp.elements; ++i, ++idx) {
                if (idx % stride != 0 || taken >= opts_.sampleCap)
                    continue;
                ++taken;
                const float in = sp.input[i];
                const float outV = sp.output[i];
                const double ref = referenceValue(
                    c->function, static_cast<double>(in));
                double err =
                    std::abs(static_cast<double>(outV) - ref);
                if (c->relativeError)
                    err /= std::max(1.0, std::abs(ref));
                c->sumSqError += err * err;
                ++c->errorSamples;
                c->maxUlp = std::max(
                    c->maxUlp,
                    ulpDistance(outV, static_cast<float>(ref)));
            }
        }
    }

    checkSla(s, *c);

    if (!s.committed && ci == s.active) {
        if (c->violated || c->elements >= opts_.exploreElements) {
            // Epoch over (or the candidate just disqualified):
            // explore the next candidate, or commit.
            size_t next = s.active + 1;
            while (next < s.candidates.size() &&
                   s.candidates[next].violated)
                ++next;
            if (next < s.candidates.size()) {
                const std::string from = c->key.label;
                s.active = next;
                s.lastReason = "explore";
                recordDecision(s, from,
                               s.candidates[next].key.label,
                               "explore");
            } else {
                commit(s, "commit");
            }
        }
    } else if (s.committed && ci == s.active && c->violated) {
        // The stream's committed choice stopped meeting its SLA on
        // live data: abandon it and re-commit.
        commit(s, "sla-miss");
    }
}

std::vector<StreamReport>
OnlineAutoTuner::streamReports() const
{
    std::vector<StreamReport> out;
    out.reserve(streams_.size());
    for (const auto& [key, s] : streams_) {
        StreamReport r;
        r.tenant = s.tenant;
        r.requested = s.requested.label;
        r.tunable = s.tunable;
        r.committed = s.committed;
        r.switches = s.switches;
        if (s.tunable) {
            const Candidate& c = s.candidates[s.active];
            r.chosen = c.key.label;
            r.sla = s.sla.toText();
            r.elements = c.elements;
            r.cyclesPerElement = c.cyclesPerElement();
            r.rmse = c.rmse();
            r.maxUlp = c.maxUlp;
            r.slaViolated = c.violated;
        } else {
            r.chosen = s.requested.label;
        }
        out.push_back(std::move(r));
    }
    return out;
}

} // namespace transpim
} // namespace tpl
