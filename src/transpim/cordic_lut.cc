/**
 * @file
 * CORDIC + LUT implementation.
 */

#include "transpim/cordic_lut.h"

#include <cmath>

#include "common/bitops.h"
#include "softfloat/softfloat.h"
#include "transpim/ldexp.h"

namespace tpl {
namespace transpim {

CordicLutEngine::CordicLutEngine(CordicMode mode, uint32_t iterations,
                                 uint32_t gridBits, double lo, double hi,
                                 Placement placement)
    : mode_(mode), gridBits_(gridBits), lo_(static_cast<float>(lo))
{
    // Tail: the scheduled iterations whose shift index is >= gridBits;
    // the LUT resolves the angle to within 2^-(gridBits+1), which the
    // tail can rotate away since sum(atan 2^-i, i >= g) > 2^-g.
    for (uint32_t i : cordicSchedule(mode, iterations)) {
        if (i >= gridBits)
            tailSchedule_.push_back(i);
    }

    double tailGain = 1.0;
    std::vector<float> angles;
    angles.reserve(tailSchedule_.size());
    for (uint32_t i : tailSchedule_) {
        double t = std::ldexp(1.0, -static_cast<int>(i));
        tailGain *= mode == CordicMode::Circular ? std::sqrt(1.0 + t * t)
                                                 : std::sqrt(1.0 - t * t);
        angles.push_back(static_cast<float>(
            mode == CordicMode::Circular ? std::atan(t) : std::atanh(t)));
    }
    angleTable_ = LutStore<float>(std::move(angles), placement);

    double spacing = std::ldexp(1.0, -static_cast<int>(gridBits));
    uint32_t entries =
        static_cast<uint32_t>(std::ceil((hi - lo) / spacing)) + 1;
    std::vector<Entry> table(entries);
    double invTailGain = 1.0 / tailGain;
    for (uint32_t j = 0; j < entries; ++j) {
        double a = lo + j * spacing;
        double c = mode == CordicMode::Circular ? std::cos(a)
                                                : std::cosh(a);
        double s = mode == CordicMode::Circular ? std::sin(a)
                                                : std::sinh(a);
        table[j] = {static_cast<float>(c * invTailGain),
                    static_cast<float>(s * invTailGain),
                    static_cast<float>(a)};
    }
    entryTable_ = LutStore<Entry>(std::move(table), placement);
}

CordicLutEngine::Result
CordicLutEngine::rotate(float z0, InstrSink* sink) const
{
    // L-LUT-style head: ldexp + round, no multiplication.
    float t = z0;
    if (lo_ != 0.0f)
        t = sf::sub(z0, lo_, sink);
    t = pimLdexp(t, static_cast<int>(gridBits_), sink);
    int32_t j = sf::toI32Round(t, sink);
    chargeInstr(sink, 2);
    int32_t limit = static_cast<int32_t>(entryTable_.size()) - 1;
    if (j < 0)
        j = 0;
    if (j > limit)
        j = limit;
    Entry e = entryTable_.read(static_cast<uint32_t>(j), sink);

    float x = e.x;
    float y = e.y;
    float z = sf::sub(z0, e.a, sink);
    for (uint32_t k = 0; k < tailSchedule_.size(); ++k) {
        int i = static_cast<int>(tailSchedule_[k]);
        float xs = pimLdexp(x, -i, sink);
        float ys = pimLdexp(y, -i, sink);
        float ang = angleTable_.read(k, sink);
        chargeInstr(sink, 4);
        bool positive = (floatBits(z) >> 31) == 0;
        bool xPlus = (mode_ == CordicMode::Hyperbolic) == positive;
        x = xPlus ? sf::add(x, ys, sink) : sf::sub(x, ys, sink);
        y = positive ? sf::add(y, xs, sink) : sf::sub(y, xs, sink);
        z = positive ? sf::sub(z, ang, sink) : sf::add(z, ang, sink);
    }
    return {x, y, z};
}

} // namespace transpim
} // namespace tpl
