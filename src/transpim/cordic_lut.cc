/**
 * @file
 * CORDIC + LUT implementation.
 */

#include "transpim/cordic_lut.h"

#include <cmath>

#include "common/bitops.h"
#include "softfloat/softfloat.h"
#include "transpim/ldexp.h"

namespace tpl {
namespace transpim {

CordicLutEngine::CordicLutEngine(CordicMode mode, uint32_t iterations,
                                 uint32_t gridBits, double lo, double hi,
                                 Placement placement)
    : mode_(mode), gridBits_(gridBits), lo_(static_cast<float>(lo))
{
    // Tail: the scheduled iterations whose shift index is >= gridBits;
    // the LUT resolves the angle to within 2^-(gridBits+1), which the
    // tail can rotate away since sum(atan 2^-i, i >= g) > 2^-g.
    for (uint32_t i : cordicSchedule(mode, iterations)) {
        if (i >= gridBits)
            tailSchedule_.push_back(i);
    }

    double tailGain = 1.0;
    std::vector<float> angles;
    angles.reserve(tailSchedule_.size());
    for (uint32_t i : tailSchedule_) {
        double t = std::ldexp(1.0, -static_cast<int>(i));
        tailGain *= mode == CordicMode::Circular ? std::sqrt(1.0 + t * t)
                                                 : std::sqrt(1.0 - t * t);
        angles.push_back(static_cast<float>(
            mode == CordicMode::Circular ? std::atan(t) : std::atanh(t)));
    }
    angleTable_ = LutStore<float>(std::move(angles), placement);

    double spacing = std::ldexp(1.0, -static_cast<int>(gridBits));
    uint32_t entries =
        static_cast<uint32_t>(std::ceil((hi - lo) / spacing)) + 1;
    std::vector<Entry> table(entries);
    double invTailGain = 1.0 / tailGain;
    for (uint32_t j = 0; j < entries; ++j) {
        double a = lo + j * spacing;
        double c = mode == CordicMode::Circular ? std::cos(a)
                                                : std::cosh(a);
        double s = mode == CordicMode::Circular ? std::sin(a)
                                                : std::sinh(a);
        table[j] = {static_cast<float>(c * invTailGain),
                    static_cast<float>(s * invTailGain),
                    static_cast<float>(a)};
    }
    entryTable_ = LutStore<Entry>(std::move(table), placement);
}

CordicLutEngine::Result
CordicLutEngine::rotate(float z0, InstrSink* sink) const
{
    SinkRef s(sink);
    return rotateT(z0, s);
}

} // namespace transpim
} // namespace tpl
