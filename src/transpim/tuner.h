/**
 * @file
 * Method auto-tuner: pick the cheapest configuration that meets an
 * accuracy target under deployment constraints.
 *
 * The paper's evaluation (Figures 5-7, Key Takeaways 1-3) is a manual
 * exploration of the method/accuracy/memory/setup tradeoff space; this
 * API automates it. Given a function, a target RMSE, and constraints
 * (table placement, memory budget, how many evaluations the kernel
 * will amortize setup over), the tuner searches each supported
 * method's knob for the smallest configuration meeting the target,
 * measures its per-evaluation instruction cost and setup time, and
 * returns the cheapest option:
 *
 *  - few evaluations -> CORDIC-family (flat, tiny setup; KT2),
 *  - many evaluations -> interpolated L-LUT (best cycles/accuracy;
 *    KT1), or fixed-point L-LUT when ranges allow,
 *  - tight memory at high accuracy -> CORDIC-family again (KT3).
 */

#ifndef TPL_TRANSPIM_TUNER_H
#define TPL_TRANSPIM_TUNER_H

#include <optional>
#include <vector>

#include "transpim/evaluator.h"

namespace tpl {
namespace transpim {

/** How the tuner interprets the accuracy target. */
enum class ErrorMetric
{
    /** Relative for functions with large output ranges (exp, sinh,
     * cosh, exp2), absolute otherwise. */
    Auto,
    Absolute, ///< RMSE of |approx - ref|
    Relative, ///< RMSE of |approx - ref| / max(1, |ref|)
};

/** Deployment constraints the recommendation must respect. */
struct TunerConstraints
{
    /** Accuracy-metric interpretation of the target RMSE. */
    ErrorMetric metric = ErrorMetric::Auto;

    /** Where tables will live. */
    Placement placement = Placement::Wram;

    /** Table budget in bytes (WRAM default: leave room for buffers). */
    uint32_t maxTableBytes = 48 * 1024;

    /** Evaluations the kernel performs (amortizes setup time). */
    uint64_t expectedEvaluations = 1'000'000;

    /** Allow Q3.28 fixed-point variants where ranges permit. */
    bool allowFixedPoint = true;

    /** Candidate methods; empty = every supported method. */
    std::vector<Method> methods;

    /** Sample size used to validate accuracy during the search. */
    uint32_t sampleSize = 2000;
};

/** One scored candidate configuration. */
struct TunedCandidate
{
    MethodSpec spec;
    double rmse = 0.0;
    double instructionsPerEval = 0.0;
    double setupSeconds = 0.0;  ///< generation + modeled transfer
    uint32_t tableBytes = 0;
    /** Amortized seconds per evaluation (the ranking score). */
    double secondsPerEval = 0.0;
};

/** Full tuner output: the winner plus every feasible candidate. */
struct TunerResult
{
    TunedCandidate best;
    std::vector<TunedCandidate> candidates; ///< sorted by score
};

/**
 * Recommend the cheapest configuration of any supported method that
 * achieves @p targetRmse for @p f under @p constraints.
 * @return nullopt when no method reaches the target within budget.
 */
std::optional<TunerResult> recommendSpec(
    Function f, double targetRmse,
    const TunerConstraints& constraints = {});

/**
 * Resolve ErrorMetric::Auto for @p f: Relative for the functions with
 * large output ranges (Exp, Exp2, Sinh, Cosh), Absolute otherwise.
 * Explicit metrics pass through unchanged. This is the classification
 * recommendSpec and the online AutoTuner both score against.
 */
ErrorMetric resolveMetric(Function f,
                          ErrorMetric metric = ErrorMetric::Auto);

} // namespace transpim
} // namespace tpl

#endif // TPL_TRANSPIM_TUNER_H
