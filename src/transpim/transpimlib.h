/**
 * @file
 * Umbrella header: everything a user of the library needs.
 *
 * See README.md for a quickstart and examples/ for runnable programs.
 */

#ifndef TPL_TRANSPIM_TRANSPIMLIB_H
#define TPL_TRANSPIM_TRANSPIMLIB_H

#include "transpim/arch_model.h"
#include "transpim/cordic.h"
#include "transpim/cordic_lut.h"
#include "transpim/direct_lut.h"
#include "transpim/error_model.h"
#include "transpim/evaluator.h"
#include "transpim/fuzzy_lut.h"
#include "transpim/harness.h"
#include "transpim/ldexp.h"
#include "transpim/placement.h"
#include "transpim/poly.h"
#include "transpim/program.h"
#include "transpim/range.h"
#include "transpim/reference.h"
#include "transpim/tuner.h"

#endif // TPL_TRANSPIM_TRANSPIMLIB_H
