/**
 * @file
 * Direct float-conversion lookup tables: D-LUT and DL-LUT.
 *
 * D-LUT derives the table address directly from the input's IEEE-754
 * bit pattern: shifting the bits right by s keeps the exponent and the
 * top (23 - s) mantissa bits, which yields a pseudo-logarithmic entry
 * spacing - dense near zero, coarse for large magnitudes - without a
 * single arithmetic operation beyond shift/subtract (Section 3.2 of the
 * paper). This matches functions that are approximately linear near
 * zero and saturate for large inputs (tanh, GELU, sigmoid).
 *
 * The inherent limitation: there are no entries between zero and the
 * smallest covered exponent, so inputs with |x| < 2^minExp clamp to the
 * first entry. DL-LUT removes that blind spot by pairing a D-LUT (for
 * |x| >= 1) with a uniformly spaced L-LUT (for |x| < 1), as in
 * Section 3.3.1 / Figure 4(d).
 */

#ifndef TPL_TRANSPIM_DIRECT_LUT_H
#define TPL_TRANSPIM_DIRECT_LUT_H

#include <memory>

#include "common/bitops.h"
#include "transpim/fuzzy_lut.h"
#include "transpim/placement.h"

namespace tpl {
namespace transpim {

/** Configuration of a D-LUT's coverage. */
struct DLutSpec
{
    int minExp = -12;       ///< smallest covered exponent (2^minExp)
    int maxExp = 3;         ///< largest covered exponent (up to 2^(maxExp+1))
    uint32_t mantBits = 6;  ///< mantissa MSBs kept -> 2^mantBits entries/exp
    bool signedRange = true; ///< cover negative inputs with a second half
};

/**
 * Direct float-conversion fuzzy lookup table.
 */
class DLut
{
  public:
    DLut(const TableFn& f, const DLutSpec& spec, bool interpolated,
         Placement placement);

    /**
     * Approximate f(x). Inputs below the covered range clamp to the
     * first entry of their sign's half; inputs above clamp to the last.
     */
    float eval(float x, InstrSink* sink) const;

    /** Sink-template body of eval() (batch path inlines it). */
    template <class S>
    float
    evalT(float x, S& sink) const
    {
        uint32_t bits = floatBits(x);
        uint32_t sign = bits >> 31;
        uint32_t mag = bits & 0x7fffffffu;

        // Address generation: shift, subtract, two clamps, sign select.
        sink.charge(7);
        bool below = mag < minMagBits_;
        uint32_t idx;
        if (below) {
            idx = 0;
        } else {
            idx = (mag >> shift_) - base_;
            if (idx >= perSide_)
                idx = perSide_ - 1;
        }
        uint32_t sideOffset =
            (sign && spec_.signedRange) ? perSide_ : 0;

        if (!interpolated_ || below) {
            // Below-range inputs clamp to the first entry without
            // interpolating: the delta bits would be meaningless there.
            return table_.readT(sideOffset + idx, sink);
        }

        // Delta from the truncated mantissa bits: uniform in a bucket.
        sink.charge(1);
        uint32_t deltaBits = mag & ((1u << shift_) - 1u);
        float fd = sf::fromI32T(static_cast<int32_t>(deltaBits), sink);
        float delta = pimLdexpT(fd, -static_cast<int>(shift_), sink);

        uint32_t i1 = idx + 1 < perSide_ ? idx + 1 : idx;
        sink.charge(2);
        float l0 = table_.readT(sideOffset + idx, sink);
        float l1 = table_.readT(sideOffset + i1, sink);
        float d = sf::subT(l1, l0, sink);
        return sf::addT(l0, sf::mulT(d, delta, sink), sink);
    }

    uint32_t memoryBytes() const { return table_.bytes(); }

    void attach(sim::DpuCore& core) { table_.attach(core); }

    /** Entries per sign half. */
    uint32_t entriesPerSide() const { return perSide_; }

  private:
    LutStore<float> table_;
    DLutSpec spec_;
    uint32_t shift_;     ///< 23 - mantBits
    uint32_t base_;      ///< address of the smallest covered magnitude
    uint32_t minMagBits_; ///< float bits of 2^minExp
    uint32_t perSide_;
    bool interpolated_;
};

/**
 * Combined L-LUT + D-LUT (DL-LUT): uniform spacing below |x| = 1,
 * pseudo-logarithmic above.
 */
class DlLut
{
  public:
    /**
     * @param f function to tabulate.
     * @param spec D-LUT coverage for |x| >= 1 (minExp is forced to 0).
     * @param innerEntries L-LUT entry budget for the [-1, 1] segment
     *        (or [0, 1] when the spec is unsigned).
     */
    DlLut(const TableFn& f, DLutSpec spec, uint32_t innerEntries,
          bool interpolated, Placement placement);

    float eval(float x, InstrSink* sink) const;

    /** Sink-template body of eval() (batch path inlines it). */
    template <class S>
    float
    evalT(float x, S& sink) const
    {
        // One magnitude compare against 1.0f selects the half.
        sink.charge(3);
        uint32_t mag = floatBits(x) & 0x7fffffffu;
        if (mag < floatBits(1.0f))
            return inner_->evalT(x, sink);
        return outer_->evalT(x, sink);
    }

    uint32_t memoryBytes() const;

    void attach(sim::DpuCore& core);

  private:
    std::unique_ptr<LLut> inner_;
    std::unique_ptr<DLut> outer_;
};

} // namespace transpim
} // namespace tpl

#endif // TPL_TRANSPIM_DIRECT_LUT_H
