/**
 * @file
 * Analytic accuracy predictor implementation.
 */

#include "transpim/error_model.h"

#include <algorithm>
#include <cmath>

namespace tpl {
namespace transpim {

namespace {

/** Binary32 output grid floor for O(1)-magnitude outputs. */
constexpr double kFloatFloor = 2e-8;

/** Table interval each (function, method family) uses internally. */
void
tableInterval(Function fn, bool directLut, double& lo, double& hi)
{
    Domain dom = functionDomain(fn);
    if (directLut) {
        lo = dom.lo;
        hi = dom.hi;
        return;
    }
    switch (fn) {
      case Function::Sin:
      case Function::Cos:
      case Function::Tan:
        lo = 0.0;
        hi = 6.283185307179586;
        return;
      case Function::Exp:
        lo = 0.0;
        hi = 0.6931471805599453;
        return;
      case Function::Exp2:
        lo = 0.0;
        hi = 1.0;
        return;
      case Function::Log:
      case Function::Log2:
      case Function::Log10:
        lo = 1.0;
        hi = 2.0;
        return;
      case Function::Sqrt:
      case Function::Rsqrt:
        lo = 0.5;
        hi = 2.0;
        return;
      default:
        lo = dom.lo;
        hi = dom.hi;
        return;
    }
}

/** The tabulated function (after range extension) for derivatives. */
TableFn
tabulated(Function fn)
{
    switch (fn) {
      case Function::Tan: // sin table dominates the error
        return [](double x) { return std::sin(x); };
      default:
        return [fn](double x) { return referenceValue(fn, x); };
    }
}

} // namespace

double
rmsDerivative(const TableFn& f, double lo, double hi, int order,
              int samples)
{
    double h = (hi - lo) / (samples + 4);
    double sumSq = 0.0;
    int n = 0;
    for (int i = 2; i < samples + 2; ++i) {
        double x = lo + i * h;
        double d;
        if (order == 1) {
            d = (f(x + h) - f(x - h)) / (2 * h);
        } else {
            d = (f(x + h) - 2 * f(x) + f(x - h)) / (h * h);
        }
        if (!std::isfinite(d))
            continue;
        sumSq += d * d;
        ++n;
    }
    return n ? std::sqrt(sumSq / n) : 0.0;
}

double
predictRmse(Function fn, const MethodSpec& spec)
{
    switch (spec.method) {
      case Method::Cordic:
      case Method::CordicLut:
        // One bit per iteration, floored by float accumulation noise.
        return std::max(std::ldexp(1.0, -(int)spec.iterations), 1e-7);
      case Method::CordicFixed:
        return std::max(std::ldexp(1.0, -(int)spec.iterations), 2e-9);
      case Method::Poly: {
        // Taylor remainder on the reduced interval (r <= pi/2 for
        // trig; tighter for the split-based functions).
        double r;
        switch (fn) {
          case Function::Sin:
          case Function::Cos:
          case Function::Tan:
            r = 1.5707963267948966;
            break;
          case Function::Exp:
          case Function::Exp2:
          case Function::Sinh:
          case Function::Cosh:
          case Function::Tanh:
          case Function::Sigmoid:
          case Function::Silu:
          case Function::Softplus:
            r = 0.6931471805599453;
            break;
          default:
            r = 1.0 / 3.0; // log/sqrt-style series arguments
            break;
        }
        double fact = 1.0;
        for (uint32_t k = 2; k <= spec.polyDegree + 1; ++k)
            fact *= k;
        double rem = std::pow(r, spec.polyDegree + 1) / fact;
        if (r < 0.5) // geometric-ish series (log/sqrt)
            rem = std::pow(r, spec.polyDegree) / spec.polyDegree;
        return std::max(rem, kFloatFloor);
      }
      default:
        break;
    }

    // LUT families.
    bool direct = spec.method == Method::DLut ||
                  spec.method == Method::DlLut;
    double lo, hi;
    tableInterval(fn, direct, lo, hi);
    TableFn f = tabulated(fn);

    double spacing;
    if (direct) {
        // Spacing at magnitude ~1 (one entry per 2^-mantBits octave
        // slice); the pseudo-log layout keeps the *relative* spacing
        // constant, so this is representative for O(1) outputs.
        spacing = std::ldexp(1.0, -(int)spec.dlutMantBits);
    } else {
        uint32_t entries = 1u << spec.log2Entries;
        spacing = (hi - lo) / entries;
        if (spec.method == Method::LLut ||
            spec.method == Method::LLutFixed) {
            // Power-of-two density: effective spacing within 2x.
            spacing *= 1.5;
        }
    }

    double rmse;
    if (spec.interpolated) {
        double f2 = rmsDerivative(f, lo, hi, 2);
        rmse = spacing * spacing / std::sqrt(120.0) * f2;
    } else {
        double f1 = rmsDerivative(f, lo, hi, 1);
        rmse = spacing / std::sqrt(12.0) * f1;
    }
    double floorV = spec.method == Method::LLutFixed
                        ? 2e-9 // Q3.28 grid
                        : kFloatFloor;
    return std::max(rmse, floorV);
}

int
predictLog2Entries(Function fn, double targetRmse)
{
    if (targetRmse < kFloatFloor)
        return -1;
    for (int log2n = 6; log2n <= 22; ++log2n) {
        MethodSpec spec;
        spec.method = Method::LLut;
        spec.interpolated = true;
        spec.log2Entries = static_cast<uint32_t>(log2n);
        if (predictRmse(fn, spec) <= targetRmse)
            return log2n;
    }
    return 22;
}

} // namespace transpim
} // namespace tpl
