/**
 * @file
 * Public entry point of the library: build an evaluator for a
 * (function, method) pair and run it element-wise on a PIM core.
 *
 * Mirrors TransPimLib's usage model: the host includes a setup header
 * that generates tables and transfers them to the PIM core, and the PIM
 * kernel includes the matching evaluation routine. Here both halves
 * meet in FunctionEvaluator: create() is the host-side setup (timed, as
 * the paper's Figure 6 measures), attach() is the table transfer, and
 * eval() is the C-like kernel-side routine (instrumented, as Figure 5
 * counts).
 *
 * Example:
 * @code
 *   using namespace tpl::transpim;
 *   MethodSpec spec;                       // interpolated L-LUT, WRAM
 *   spec.log2Entries = 12;
 *   auto sine = FunctionEvaluator::create(Function::Sin, spec);
 *   sim::DpuCore dpu;
 *   sine.attach(dpu);
 *   dpu.launch(16, [&](sim::TaskletContext& ctx) {
 *       float y = sine.eval(1.0f, &ctx);   // charges PIM instructions
 *   });
 * @endcode
 */

#ifndef TPL_TRANSPIM_EVALUATOR_H
#define TPL_TRANSPIM_EVALUATOR_H

#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>

#include "pimsim/dpu.h"
#include "transpim/batch.h"
#include "transpim/placement.h"
#include "transpim/reference.h"

namespace tpl {
namespace transpim {

/** Implementation methods (paper Table 2). */
enum class Method
{
    Cordic,      ///< floating-point CORDIC
    CordicFixed, ///< Q3.28 CORDIC (ablation; trig only)
    CordicLut,   ///< CORDIC with LUT-replaced initial iterations
    MLut,        ///< multiplication-based fuzzy LUT
    LLut,        ///< ldexp-based fuzzy LUT
    LLutFixed,   ///< Q3.28 ldexp-based fuzzy LUT
    DLut,        ///< direct float-conversion LUT
    DlLut,       ///< combined L-LUT + D-LUT
    Poly,        ///< polynomial approximation (the PIM baseline)
};

/** Short name of a method ("L-LUT", "CORDIC", ...). */
std::string_view methodName(Method m);

/** Full configuration of a method instance. */
struct MethodSpec
{
    Method method = Method::LLut;

    /** Interpolate between adjacent entries (LUT methods). */
    bool interpolated = true;

    /** Where tables live on the PIM core. */
    Placement placement = Placement::Wram;

    /** log2 of the LUT entry budget (LUT methods). */
    uint32_t log2Entries = 12;

    /** CORDIC iteration count (accuracy ~ 2^-iterations). */
    uint32_t iterations = 24;

    /** CORDIC+LUT: grid bits g; iterations below g become one lookup. */
    uint32_t gridBits = 8;

    /** Polynomial degree (Poly method). */
    uint32_t polyDegree = 11;

    /** D-LUT: mantissa MSBs kept per exponent. */
    uint32_t dlutMantBits = 6;

    /** D-LUT: smallest covered exponent. */
    int dlutMinExp = -12;

    /**
     * Trigonometric functions: apply the mod-2pi range reduction before
     * evaluating. The paper's microbenchmarks draw inputs from [0, 2pi]
     * and skip this step (its cost is reported separately in Figure 8),
     * so it defaults to off.
     */
    bool reduceRange = false;

    /**
     * Tangent via LUT methods: share one sine table between the sine
     * and cosine queries using cos(x) = sin(x + pi/2) - the table
     * covers [0, 2pi + pi/2] instead of two full periods, cutting the
     * footprint by ~40% for one extra float addition per element.
     */
    bool shareTrigTables = false;
};

/** Human-readable label, e.g. "L-LUT interp. (WRAM, 2^12)". */
std::string methodLabel(const MethodSpec& spec);

/** Thrown when a (function, method) pair is not in the support matrix. */
class UnsupportedCombination : public std::invalid_argument
{
  public:
    UnsupportedCombination(Function f, const MethodSpec& spec);
};

/**
 * A ready-to-run implementation of one function with one method.
 */
class FunctionEvaluator
{
  public:
    FunctionEvaluator() = default;

    /**
     * Host-side setup: generates all tables/constants for evaluating
     * @p f with @p spec and records the wall-clock generation time.
     * @throws UnsupportedCombination per the support matrix.
     */
    static FunctionEvaluator create(Function f, const MethodSpec& spec);

    /** True if the support matrix contains (f, method-of-spec). */
    static bool supports(Function f, const MethodSpec& spec);

    /**
     * Kernel-side evaluation, charging PIM instructions to @p sink.
     * Pass a sim::TaskletContext to also model MRAM-placed table DMA.
     */
    float
    eval(float x, InstrSink* sink = nullptr) const
    {
        return eval_(x, sink);
    }

    float operator()(float x, InstrSink* sink = nullptr) const
    {
        return eval_(x, sink);
    }

    /**
     * Batched kernel-side evaluation over SoA spans: semantically
     * identical to eval() element-by-element — bit-identical outputs
     * and bit-identical charges — but runs the per-element body with
     * the inlined batch sink (no virtual dispatch, softfloat fast-value
     * lane) and flushes the accumulated charges to @p sink once.
     * MRAM-placed table DMA still goes through the tasklet's DMA model
     * per element, so DMA-engine occupancy and fault firing match the
     * scalar path exactly.
     *
     * @param in input elements.
     * @param out outputs; out.size() must equal in.size(); out may
     *        alias in.
     * @param sink instruction sink the batch totals flush to.
     * @param stats when given, accumulates this batch's element count
     *        and charge totals.
     */
    void
    evalBatch(std::span<const float> in, std::span<float> out,
              InstrSink* sink = nullptr,
              BatchStats* stats = nullptr) const
    {
        evalBatch_(in, out, sink, stats);
    }

    /** Batched evaluation collecting per-batch accounting. */
    void
    evalBatch(std::span<const float> in, std::span<float> out,
              BatchStats& stats) const
    {
        evalBatch_(in, out, nullptr, &stats);
    }

    /** Bytes of PIM memory all tables of this evaluator occupy. */
    uint32_t memoryBytes() const { return memoryBytes_; }

    /** Measured host-side table-generation time in seconds. */
    double setupSeconds() const { return setupSeconds_; }

    /** Transfer all tables to a simulated core. */
    void
    attach(sim::DpuCore& core)
    {
        if (attach_)
            attach_(core);
    }

    Function function() const { return fn_; }

    const MethodSpec& spec() const { return spec_; }

    /** False only for a default-constructed (empty) evaluator. */
    bool valid() const { return static_cast<bool>(eval_); }

  private:
    Function fn_ = Function::Sin;
    MethodSpec spec_;
    std::function<float(float, InstrSink*)> eval_;
    std::function<void(std::span<const float>, std::span<float>,
                       InstrSink*, BatchStats*)>
        evalBatch_;
    std::function<void(sim::DpuCore&)> attach_;
    uint32_t memoryBytes_ = 0;
    double setupSeconds_ = 0.0;
};

} // namespace transpim
} // namespace tpl

#endif // TPL_TRANSPIM_EVALUATOR_H
