/**
 * @file
 * Double-precision LDEXP-based fuzzy lookup table (extension).
 *
 * Probes the paper's observation 5: the accuracy of all binary32
 * methods floors around RMSE 1e-8 because of the output format, not
 * the methods themselves. LLut64 stores binary64 entries and
 * interpolates with the emulated binary64 arithmetic tier, pushing the
 * floor toward the double grid at roughly 2-4x the per-query cost and
 * exactly 2x the memory (the ablation_precision bench quantifies all
 * three axes).
 */

#ifndef TPL_TRANSPIM_LLUT64_H
#define TPL_TRANSPIM_LLUT64_H

#include "softfloat/softfloat64.h"
#include "transpim/fuzzy_lut.h"
#include "transpim/placement.h"

namespace tpl {
namespace transpim {

/** Binary64 L-LUT with ldexp addressing and linear interpolation. */
class LLut64
{
  public:
    LLut64(const TableFn& f, double lo, double hi, uint32_t maxEntries,
           bool interpolated, Placement placement);

    /** Approximate f(x) in emulated binary64. */
    double eval(double x, InstrSink* sink) const;

    /**
     * Sink-template body of eval() (batch path inlines it). The
     * binary64 tier routines are scalar InstrSink* entry points; they
     * are pure arithmetic, so they go through sinkArith() — a batch
     * sink accumulates their charges with the rest of the batch.
     */
    template <class S>
    double
    evalT(double x, S& sink) const
    {
        InstrSink* arith = sinkArith(sink);
        double t = x;
        if (p_ != 0.0)
            t = sf::sub64(x, p_, arith);
        t = pimLdexp64T(t, e_, sink);
        int32_t i = sf::f64ToI32Floor(t, arith);
        sink.charge(2); // clamp
        int32_t limit = static_cast<int32_t>(table_.size()) -
                        (interpolated_ ? 2 : 1);
        if (i < 0)
            i = 0;
        if (i > limit)
            i = limit;
        if (!interpolated_)
            return table_.readT(static_cast<uint32_t>(i), sink);
        double fi = sf::fromI32asF64(i, arith);
        double delta = sf::sub64(t, fi, arith);
        double l0 = table_.readT(static_cast<uint32_t>(i), sink);
        double l1 = table_.readT(static_cast<uint32_t>(i) + 1, sink);
        double d = sf::sub64(l1, l0, arith);
        return sf::add64(l0, sf::mul64(d, delta, arith), arith);
    }

    uint32_t memoryBytes() const { return table_.bytes(); }

    void attach(sim::DpuCore& core) { table_.attach(core); }

    int densityLog2() const { return e_; }

    uint32_t entries() const { return table_.size(); }

  private:
    LutStore<double> table_;
    double p_;
    int e_;
    bool interpolated_;
};

} // namespace transpim
} // namespace tpl

#endif // TPL_TRANSPIM_LLUT64_H
