/**
 * @file
 * Double-precision LDEXP-based fuzzy lookup table (extension).
 *
 * Probes the paper's observation 5: the accuracy of all binary32
 * methods floors around RMSE 1e-8 because of the output format, not
 * the methods themselves. LLut64 stores binary64 entries and
 * interpolates with the emulated binary64 arithmetic tier, pushing the
 * floor toward the double grid at roughly 2-4x the per-query cost and
 * exactly 2x the memory (the ablation_precision bench quantifies all
 * three axes).
 */

#ifndef TPL_TRANSPIM_LLUT64_H
#define TPL_TRANSPIM_LLUT64_H

#include "transpim/fuzzy_lut.h"
#include "transpim/placement.h"

namespace tpl {
namespace transpim {

/** Binary64 L-LUT with ldexp addressing and linear interpolation. */
class LLut64
{
  public:
    LLut64(const TableFn& f, double lo, double hi, uint32_t maxEntries,
           bool interpolated, Placement placement);

    /** Approximate f(x) in emulated binary64. */
    double eval(double x, InstrSink* sink) const;

    uint32_t memoryBytes() const { return table_.bytes(); }

    void attach(sim::DpuCore& core) { table_.attach(core); }

    int densityLog2() const { return e_; }

    uint32_t entries() const { return table_.size(); }

  private:
    LutStore<double> table_;
    double p_;
    int e_;
    bool interpolated_;
};

} // namespace transpim
} // namespace tpl

#endif // TPL_TRANSPIM_LLUT64_H
