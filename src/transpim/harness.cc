/**
 * @file
 * Microbenchmark harness implementation.
 */

#include "transpim/harness.h"

#include <algorithm>
#include <new>
#include <string>

#include "common/rng.h"
#include "pimsim/obs/trace.h"
#include "transpim/error_model.h"

namespace tpl {
namespace transpim {

std::vector<float>
referenceOutputs(Function f, const std::vector<float>& inputs)
{
    std::vector<float> out(inputs.size());
    for (size_t i = 0; i < inputs.size(); ++i)
        out[i] = static_cast<float>(
            referenceValue(f, static_cast<double>(inputs[i])));
    return out;
}

ErrorStats
evaluateAccuracy(const FunctionEvaluator& eval,
                 const std::vector<float>& inputs)
{
    ErrorAccumulator acc;
    for (float x : inputs) {
        float y = eval.eval(x, nullptr);
        float ref = static_cast<float>(
            referenceValue(eval.function(), static_cast<double>(x)));
        acc.add(y, ref);
    }
    return acc.stats();
}

MicrobenchResult
runMicrobench(Function f, const MethodSpec& spec,
              const MicrobenchOptions& opts)
{
    MicrobenchResult res;
    res.function = f;
    res.spec = spec;
    res.elements = opts.elements;
    res.tasklets = opts.tasklets;

    obs::TraceSpan benchSpan(
        "microbench " + std::string(functionName(f)) + " / " +
            methodLabel(spec),
        "host",
        obs::argsObject(
            {obs::argKv("elements",
                        static_cast<uint64_t>(opts.elements)),
             obs::argKv("tasklets",
                        static_cast<uint64_t>(opts.tasklets))}));

    Domain dom = opts.domain ? *opts.domain : functionDomain(f);
    std::vector<float> inputs =
        uniformFloats(opts.elements, static_cast<float>(dom.lo),
                      static_cast<float>(dom.hi), opts.seed);

    FunctionEvaluator eval;
    try {
        eval = FunctionEvaluator::create(f, spec);
    } catch (const UnsupportedCombination&) {
        res.feasible = false;
        return res;
    }

    sim::DpuCore dpu;
    try {
        obs::TraceSpan attachSpan("attach tables", "host");
        eval.attach(dpu);
    } catch (const std::bad_alloc&) {
        res.feasible = false;
        return res;
    }

    // Input and output arrays in the DRAM bank.
    uint32_t bytes = opts.elements * sizeof(float);
    uint32_t inAddr = dpu.mramAlloc(bytes);
    uint32_t outAddr = dpu.mramAlloc(bytes);
    dpu.hostWriteMram(inAddr, inputs.data(), bytes);

    // The paper's microbenchmark kernel: each tasklet streams chunks
    // from MRAM through a WRAM buffer and evaluates every element.
    constexpr uint32_t chunkElems = 256;
    sim::LaunchStats stats =
        dpu.launch(opts.tasklets, [&](sim::TaskletContext& ctx) {
            float buffer[chunkElems];
            uint32_t perChunk = chunkElems;
            uint32_t chunks =
                (opts.elements + perChunk - 1) / perChunk;
            for (uint32_t c = ctx.taskletId(); c < chunks;
                 c += ctx.numTasklets()) {
                uint32_t beg = c * perChunk;
                uint32_t cnt =
                    std::min(perChunk, opts.elements - beg);
                ctx.mramRead(inAddr + beg * sizeof(float), buffer,
                             cnt * sizeof(float));
                for (uint32_t i = 0; i < cnt; ++i) {
                    ctx.charge(4); // loop control + WRAM load/store
                    buffer[i] = eval.eval(buffer[i], &ctx);
                }
                ctx.mramWrite(outAddr + beg * sizeof(float), buffer,
                              cnt * sizeof(float));
            }
        });

    std::vector<float> outputs(opts.elements);
    dpu.hostReadMram(outAddr, outputs.data(), bytes);

    ErrorAccumulator acc;
    {
        obs::TraceSpan accuracySpan("accuracy readback", "host");
        for (uint32_t i = 0; i < opts.elements; ++i) {
            float ref = static_cast<float>(
                referenceValue(f, static_cast<double>(inputs[i])));
            acc.add(outputs[i], ref);
        }
    }

    res.error = acc.stats();
    res.launch = stats;
    res.cyclesPerElement =
        static_cast<double>(stats.cycles) / opts.elements;
    res.instructionsPerElement =
        static_cast<double>(stats.totalInstructions) / opts.elements;
    res.memoryBytes = eval.memoryBytes();
    res.hostGenSeconds = eval.setupSeconds();

    // Table transfer: a single-DPU setup streams the tables serially
    // (they are one buffer, not a parallel per-DPU transfer).
    sim::PimSystem timing(1);
    res.transferSeconds =
        timing.serialTransferSeconds(eval.memoryBytes());
    res.setupSeconds = res.hostGenSeconds + res.transferSeconds;
    return res;
}

ResilientResult
runResilientMicrobench(Function f, const MethodSpec& spec,
                       const ResilientOptions& opts)
{
    ResilientResult res;
    res.totalDpus = opts.dpus;

    obs::TraceSpan benchSpan(
        "resilient " + std::string(functionName(f)) + " / " +
            methodLabel(spec),
        "host",
        obs::argsObject(
            {obs::argKv("elements",
                        static_cast<uint64_t>(opts.elements)),
             obs::argKv("dpus", static_cast<uint64_t>(opts.dpus))}));

    Domain dom = opts.domain ? *opts.domain : functionDomain(f);
    std::vector<float> inputs =
        uniformFloats(opts.elements, static_cast<float>(dom.lo),
                      static_cast<float>(dom.hi), opts.seed);
    std::vector<float> outputs(opts.elements, 0.0f);

    sim::PimSystem sys(opts.dpus);
    sys.setRetryPolicy(opts.policy);

    // LutStore binds each attached table to one core, so every core
    // gets its own evaluator (same spec => identical tables).
    std::vector<FunctionEvaluator> evals(opts.dpus);
    for (uint32_t i = 0; i < opts.dpus; ++i) {
        try {
            evals[i] = FunctionEvaluator::create(f, spec);
            evals[i].attach(sys.dpu(i));
        } catch (const UnsupportedCombination&) {
            res.feasible = false;
            return res;
        } catch (const std::bad_alloc&) {
            res.feasible = false;
            return res;
        }
    }

    if (opts.plan)
        sys.armFaults(*opts.plan);

    res.run = sys.runSharded(
        inputs.data(), outputs.data(), opts.elements, sizeof(float),
        opts.tasklets, [&](const sim::ShardTask& t) -> sim::Kernel {
            const FunctionEvaluator& ev = evals[t.dpu];
            return [&ev, t](sim::TaskletContext& ctx) {
                constexpr uint32_t chunkElems = 256;
                float buffer[chunkElems];
                uint32_t chunks =
                    (t.elements + chunkElems - 1) / chunkElems;
                for (uint32_t c = ctx.taskletId(); c < chunks;
                     c += ctx.numTasklets()) {
                    uint32_t beg = c * chunkElems;
                    uint32_t cnt =
                        std::min(chunkElems, t.elements - beg);
                    ctx.mramRead(t.inAddr + beg * sizeof(float),
                                 buffer, cnt * sizeof(float));
                    for (uint32_t i = 0; i < cnt; ++i) {
                        ctx.charge(4);
                        buffer[i] = ev.eval(buffer[i], &ctx);
                    }
                    ctx.mramWrite(t.outAddr + beg * sizeof(float),
                                  buffer, cnt * sizeof(float));
                }
            };
        });

    res.healthyDpus = sys.healthyDpus();

    ErrorAccumulator acc;
    for (uint32_t i = 0; i < opts.elements; ++i) {
        float ref = static_cast<float>(
            referenceValue(f, static_cast<double>(inputs[i])));
        acc.add(outputs[i], ref);
    }
    res.error = acc.stats();
    res.predictedRmse = predictRmse(f, spec);
    double bound =
        std::max(res.predictedRmse * opts.errorBoundFactor, 1e-6);
    res.withinErrorBound = res.run.complete && res.error.rmse <= bound;
    return res;
}

} // namespace transpim
} // namespace tpl
