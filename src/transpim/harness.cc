/**
 * @file
 * Microbenchmark harness implementation.
 */

#include "transpim/harness.h"

#include <algorithm>
#include <cstring>
#include <new>
#include <string>

#include "common/rng.h"
#include "pimsim/obs/trace.h"
#include "transpim/error_model.h"

namespace tpl {
namespace transpim {

std::vector<float>
referenceOutputs(Function f, const std::vector<float>& inputs)
{
    std::vector<float> out(inputs.size());
    for (size_t i = 0; i < inputs.size(); ++i)
        out[i] = static_cast<float>(
            referenceValue(f, static_cast<double>(inputs[i])));
    return out;
}

ErrorStats
evaluateAccuracy(const FunctionEvaluator& eval,
                 const std::vector<float>& inputs)
{
    ErrorAccumulator acc;
    for (float x : inputs) {
        float y = eval.eval(x, nullptr);
        float ref = static_cast<float>(
            referenceValue(eval.function(), static_cast<double>(x)));
        acc.add(y, ref);
    }
    return acc.stats();
}

MicrobenchResult
runMicrobench(Function f, const MethodSpec& spec,
              const MicrobenchOptions& opts)
{
    MicrobenchResult res;
    res.function = f;
    res.spec = spec;
    res.elements = opts.elements;
    res.tasklets = opts.tasklets;

    obs::TraceSpan benchSpan(
        "microbench " + std::string(functionName(f)) + " / " +
            methodLabel(spec),
        "host",
        obs::argsObject(
            {obs::argKv("elements",
                        static_cast<uint64_t>(opts.elements)),
             obs::argKv("tasklets",
                        static_cast<uint64_t>(opts.tasklets))}));

    Domain dom = opts.domain ? *opts.domain : functionDomain(f);
    std::vector<float> inputs =
        uniformFloats(opts.elements, static_cast<float>(dom.lo),
                      static_cast<float>(dom.hi), opts.seed);

    FunctionEvaluator eval;
    try {
        eval = FunctionEvaluator::create(f, spec);
    } catch (const UnsupportedCombination&) {
        res.feasible = false;
        return res;
    }

    sim::DpuCore dpu;
    try {
        obs::TraceSpan attachSpan("attach tables", "host");
        eval.attach(dpu);
    } catch (const std::bad_alloc&) {
        res.feasible = false;
        return res;
    }

    // Input and output arrays in the DRAM bank.
    uint32_t bytes = opts.elements * sizeof(float);
    uint32_t inAddr = dpu.mramAlloc(bytes);
    uint32_t outAddr = dpu.mramAlloc(bytes);
    dpu.hostWriteMram(inAddr, inputs.data(), bytes);

    // The paper's microbenchmark kernel: each tasklet streams chunks
    // from MRAM through a WRAM buffer and evaluates every element.
    // Chunks run through evalBatch (charge-identical to the scalar
    // loop); TPL_BATCH_EVAL=0 selects the per-element path instead.
    constexpr uint32_t chunkElems = 256;
    const bool useBatch = batchEvalEnabled();
    sim::LaunchStats stats =
        dpu.launch(opts.tasklets, [&](sim::TaskletContext& ctx) {
            float buffer[chunkElems];
            uint32_t perChunk = chunkElems;
            uint32_t chunks =
                (opts.elements + perChunk - 1) / perChunk;
            for (uint32_t c = ctx.taskletId(); c < chunks;
                 c += ctx.numTasklets()) {
                uint32_t beg = c * perChunk;
                uint32_t cnt =
                    std::min(perChunk, opts.elements - beg);
                ctx.mramRead(inAddr + beg * sizeof(float), buffer,
                             cnt * sizeof(float));
                if (useBatch) {
                    // loop control + WRAM load/store, bulk-charged
                    ctx.chargeClassN(InstrClass::IntAlu, 4, cnt);
                    std::span<float> span(buffer, cnt);
                    eval.evalBatch(span, span, &ctx);
                } else {
                    for (uint32_t i = 0; i < cnt; ++i) {
                        ctx.charge(4); // loop control + WRAM ld/st
                        buffer[i] = eval.eval(buffer[i], &ctx);
                    }
                }
                ctx.mramWrite(outAddr + beg * sizeof(float), buffer,
                              cnt * sizeof(float));
            }
        });

    std::vector<float> outputs(opts.elements);
    dpu.hostReadMram(outAddr, outputs.data(), bytes);

    ErrorAccumulator acc;
    {
        obs::TraceSpan accuracySpan("accuracy readback", "host");
        for (uint32_t i = 0; i < opts.elements; ++i) {
            float ref = static_cast<float>(
                referenceValue(f, static_cast<double>(inputs[i])));
            acc.add(outputs[i], ref);
        }
    }

    res.error = acc.stats();
    res.launch = stats;
    res.cyclesPerElement =
        static_cast<double>(stats.cycles) / opts.elements;
    res.instructionsPerElement =
        static_cast<double>(stats.totalInstructions) / opts.elements;
    res.memoryBytes = eval.memoryBytes();
    res.hostGenSeconds = eval.setupSeconds();

    // Table transfer: a single-DPU setup streams the tables serially
    // (they are one buffer, not a parallel per-DPU transfer).
    sim::PimSystem timing(1);
    res.transferSeconds =
        timing.serialTransferSeconds(eval.memoryBytes());
    res.setupSeconds = res.hostGenSeconds + res.transferSeconds;
    return res;
}

ResilientResult
runResilientMicrobench(Function f, const MethodSpec& spec,
                       const ResilientOptions& opts)
{
    ResilientResult res;
    res.totalDpus = opts.dpus;

    obs::TraceSpan benchSpan(
        "resilient " + std::string(functionName(f)) + " / " +
            methodLabel(spec),
        "host",
        obs::argsObject(
            {obs::argKv("elements",
                        static_cast<uint64_t>(opts.elements)),
             obs::argKv("dpus", static_cast<uint64_t>(opts.dpus))}));

    Domain dom = opts.domain ? *opts.domain : functionDomain(f);
    std::vector<float> inputs =
        uniformFloats(opts.elements, static_cast<float>(dom.lo),
                      static_cast<float>(dom.hi), opts.seed);
    std::vector<float> outputs(opts.elements, 0.0f);

    sim::PimSystem sys(opts.dpus);
    sys.setRetryPolicy(opts.policy);

    // LutStore binds each attached table to one core, so every core
    // gets its own evaluator (same spec => identical tables).
    std::vector<FunctionEvaluator> evals(opts.dpus);
    for (uint32_t i = 0; i < opts.dpus; ++i) {
        try {
            evals[i] = FunctionEvaluator::create(f, spec);
            evals[i].attach(sys.dpu(i));
        } catch (const UnsupportedCombination&) {
            res.feasible = false;
            return res;
        } catch (const std::bad_alloc&) {
            res.feasible = false;
            return res;
        }
    }

    if (opts.plan)
        sys.armFaults(*opts.plan);

    res.run = sys.runSharded(
        inputs.data(), outputs.data(), opts.elements, sizeof(float),
        opts.tasklets, [&](const sim::ShardTask& t) -> sim::Kernel {
            return makeStreamingKernel(evals[t.dpu], t, 256);
        });

    res.healthyDpus = sys.healthyDpus();

    ErrorAccumulator acc;
    for (uint32_t i = 0; i < opts.elements; ++i) {
        float ref = static_cast<float>(
            referenceValue(f, static_cast<double>(inputs[i])));
        acc.add(outputs[i], ref);
    }
    res.error = acc.stats();
    res.predictedRmse = predictRmse(f, spec);
    double bound =
        std::max(res.predictedRmse * opts.errorBoundFactor, 1e-6);
    res.withinErrorBound = res.run.complete && res.error.rmse <= bound;
    return res;
}

BatchedResult
runBatchedThroughput(Function f, const MethodSpec& spec,
                     const BatchedOptions& opts)
{
    BatchedResult res;

    obs::TraceSpan benchSpan(
        "batched " + std::string(functionName(f)) + " / " +
            methodLabel(spec),
        "host",
        obs::argsObject(
            {obs::argKv("requests",
                        static_cast<uint64_t>(opts.requests)),
             obs::argKv("dpus", static_cast<uint64_t>(opts.dpus))}));

    Domain dom = opts.domain ? *opts.domain : functionDomain(f);
    const uint64_t total = static_cast<uint64_t>(opts.requests) *
                           opts.elementsPerRequest;
    std::vector<float> inputs =
        uniformFloats(total, static_cast<float>(dom.lo),
                      static_cast<float>(dom.hi), opts.seed);

    // Two identical request streams, one system per schedule. The
    // catalog (and with it the table cache contents) is rebuilt per
    // system: tables bind to cores.
    auto serveOnce =
        [&](bool pipelined,
            std::vector<float>& outputs) -> sim::serve::ServeReport {
        sim::PimSystem sys(opts.dpus);
        sys.setRetryPolicy(opts.policy);
        if (opts.simThreads)
            sys.setSimThreads(opts.simThreads);
        if (opts.plan)
            sys.armFaults(*opts.plan);

        EvaluatorCatalog catalog;
        catalog.setChunkElements(opts.chunkElems);
        sim::serve::TableKey key = catalog.add(f, spec);

        sim::serve::BatchQueue queue;
        for (uint32_t r = 0; r < opts.requests; ++r) {
            sim::serve::Request req;
            req.table = key;
            req.input = inputs.data() +
                        static_cast<uint64_t>(r) *
                            opts.elementsPerRequest;
            req.output = outputs.data() +
                         static_cast<uint64_t>(r) *
                             opts.elementsPerRequest;
            req.elements = opts.elementsPerRequest;
            queue.push(req);
        }
        queue.close();

        sim::serve::PipelineOptions popts;
        popts.numTasklets = opts.tasklets;
        popts.perDpuElements = opts.perDpuElements;
        popts.pipelined = pipelined;
        popts.maxRetryWaves = opts.maxRetryWaves;
        sim::serve::ServePipeline pipeline(sys, catalog.provider(),
                                           popts);
        return pipeline.run(queue);
    };

    std::vector<float> outPipelined(total, 0.0f);
    std::vector<float> outSync(total, 0.0f);
    res.pipelined = serveOnce(true, outPipelined);
    res.sync = serveOnce(false, outSync);

    res.feasible = res.pipelined.infeasibleElements == 0 &&
                   res.sync.infeasibleElements == 0;
    res.outputsMatch =
        total > 0 && std::memcmp(outPipelined.data(), outSync.data(),
                                 total * sizeof(float)) == 0;
    if (res.pipelined.elements > 0)
        res.cyclesPerElement =
            static_cast<double>(res.pipelined.computeCycles) /
            static_cast<double>(res.pipelined.elements);
    return res;
}

} // namespace transpim
} // namespace tpl
