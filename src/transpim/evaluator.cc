/**
 * @file
 * FunctionEvaluator construction: the (function x method) dispatch.
 *
 * Each builder assembles the kernel-side pipeline the paper describes
 * for that combination - range reduction/extension where the function
 * needs it, the core method over its native interval, and the output
 * fixups (quadrant signs, ldexp rescaling, identities).
 */

#include "transpim/evaluator.h"

#include <chrono>
#include <cmath>

#include "common/bitops.h"
#include "pimsim/obs/trace.h"
#include "softfloat/softfloat.h"
#include "transpim/cordic.h"
#include "transpim/cordic_lut.h"
#include "transpim/direct_lut.h"
#include "transpim/fuzzy_lut.h"
#include "transpim/ldexp.h"
#include "transpim/poly.h"
#include "transpim/range.h"

namespace tpl {
namespace transpim {

namespace {

constexpr double dTwoPi = 6.28318530717958647692;
constexpr double dLn2 = 0.69314718055994530942;
constexpr float fLn2 = 0.69314718055994530942f;
constexpr float fInvSqrt2Pi = 0.39894228040143267794f;

using Eval = std::function<float(float, InstrSink*)>;
using BatchEval = std::function<void(std::span<const float>,
                                     std::span<float>, InstrSink*,
                                     BatchStats*)>;
using Attach = std::function<void(sim::DpuCore&)>;

/**
 * Both materializations of one evaluation body. The builders assign a
 * generic `(float x, auto& sink)` lambda once; the templated operator=
 * instantiates it twice — with SinkRef for the scalar std::function
 * and with BatchSink for the batched loop — so the two paths share one
 * body and cannot diverge in values or charges.
 */
struct EvalPair
{
    Eval scalar;
    BatchEval batch;

    template <class Body>
    EvalPair&
    operator=(Body body)
    {
        scalar = [body](float x, InstrSink* sink) {
            SinkRef s(sink);
            return body(x, s);
        };
        batch = [body](std::span<const float> in, std::span<float> out,
                       InstrSink* sink, BatchStats* stats) {
            BatchSink bs(sink);
            for (std::size_t i = 0; i < in.size(); ++i)
                out[i] = body(in[i], bs);
            if (stats)
                stats->elements += in.size();
            bs.flush(stats);
        };
        return *this;
    }
};

/** Builder result before it is wrapped into a FunctionEvaluator. */
struct Built
{
    EvalPair eval;
    Attach attach;
    uint32_t memoryBytes = 0;
};

TableFn
refFn(Function f)
{
    return [f](double x) { return referenceValue(f, x); };
}

/** Negate with one sign-flip instruction. */
template <class S>
float
negate(float v, S& sink)
{
    return sf::negT(v, sink);
}

/** Quadrant output selection for sine. */
template <class S>
float
selectSin(const CordicEngine::Result& r, int q, S& sink)
{
    sink.charge(2);
    switch (q & 3) {
      case 0: return r.y;
      case 1: return r.x;
      case 2: return negate(r.y, sink);
      default: return negate(r.x, sink);
    }
}

/** Quadrant output selection for cosine. */
template <class S>
float
selectCos(const CordicEngine::Result& r, int q, S& sink)
{
    sink.charge(2);
    switch (q & 3) {
      case 0: return r.x;
      case 1: return negate(r.y, sink);
      case 2: return negate(r.x, sink);
      default: return r.y;
    }
}

// ---------------------------------------------------------------------
// LUT-family builders (M-LUT, L-LUT, fixed L-LUT, D-LUT, DL-LUT)
// ---------------------------------------------------------------------

/** Uniform handle over the five table types. */
struct AnyLut
{
    std::shared_ptr<MLut> m;
    std::shared_ptr<LLut> l;
    std::shared_ptr<LLutFixed> lf;
    std::shared_ptr<DLut> d;
    std::shared_ptr<DlLut> dl;

    template <class S>
    float
    evalT(float x, S& sink) const
    {
        if (m) return m->evalT(x, sink);
        if (l) return l->evalT(x, sink);
        if (lf) return lf->evalT(x, sink);
        if (d) return d->evalT(x, sink);
        return dl->evalT(x, sink);
    }

    uint32_t
    bytes() const
    {
        if (m) return m->memoryBytes();
        if (l) return l->memoryBytes();
        if (lf) return lf->memoryBytes();
        if (d) return d->memoryBytes();
        return dl->memoryBytes();
    }

    void
    attach(sim::DpuCore& core) const
    {
        if (m) m->attach(core);
        if (l) l->attach(core);
        if (lf) lf->attach(core);
        if (d) d->attach(core);
        if (dl) dl->attach(core);
    }
};

/**
 * Build the configured table type for @p f over [lo, hi] (fuzzy LUTs)
 * or @p dspec (direct LUTs).
 */
AnyLut
makeLut(const MethodSpec& spec, const TableFn& f, double lo, double hi,
        const DLutSpec& dspec)
{
    AnyLut lut;
    uint32_t n = 1u << spec.log2Entries;
    switch (spec.method) {
      case Method::MLut:
        lut.m = std::make_shared<MLut>(f, lo, hi, n, spec.interpolated,
                                       spec.placement);
        break;
      case Method::LLut:
        lut.l = std::make_shared<LLut>(f, lo, hi, n, spec.interpolated,
                                       spec.placement);
        break;
      case Method::LLutFixed:
        lut.lf = std::make_shared<LLutFixed>(f, lo, hi, n,
                                             spec.interpolated,
                                             spec.placement);
        break;
      case Method::DLut:
        lut.d = std::make_shared<DLut>(f, dspec, spec.interpolated,
                                       spec.placement);
        break;
      case Method::DlLut:
        lut.dl = std::make_shared<DlLut>(f, dspec, n, spec.interpolated,
                                         spec.placement);
        break;
      default:
        throw std::logic_error("makeLut: not a LUT method");
    }
    return lut;
}

/** D-LUT coverage for each function's direct table. */
DLutSpec
dlutSpecFor(Function f, const MethodSpec& spec)
{
    DLutSpec d;
    d.mantBits = spec.dlutMantBits;
    d.minExp = spec.dlutMinExp;
    switch (f) {
      case Function::Sin:
      case Function::Cos:
      case Function::Tan:
        d.signedRange = false;
        d.maxExp = 2; // covers up to 8 > 2*pi
        break;
      case Function::Sinh:
      case Function::Cosh:
        d.signedRange = true;
        d.maxExp = 2; // +-[0, 8)
        break;
      case Function::Tanh:
      case Function::Gelu:
        d.signedRange = true;
        d.maxExp = 3; // +-[0, 16); tanh/gelu saturate beyond
        break;
      case Function::Sigmoid:
        d.signedRange = true;
        d.maxExp = 4; // +-[0, 32)
        break;
      case Function::Cndf:
        d.signedRange = true;
        d.maxExp = 2; // +-[0, 8)
        break;
      case Function::Exp:
      case Function::Exp2:
        d.signedRange = true;
        d.maxExp = 3; // +-[0, 16)
        break;
      case Function::Log:
      case Function::Log2:
      case Function::Log10:
        d.signedRange = false;
        d.maxExp = 6; // (0, 128)
        break;
      case Function::Sqrt:
      case Function::Rsqrt:
        d.signedRange = false;
        d.maxExp = 6; // (0, 128)
        break;
      case Function::Atan:
      case Function::Silu:
        d.signedRange = true;
        d.maxExp = 3; // +-[0, 16)
        break;
      case Function::Asin:
      case Function::Acos:
      case Function::Atanh:
        d.signedRange = true;
        d.maxExp = -1; // +-[0, 1)
        break;
      case Function::Erf:
        d.signedRange = true;
        d.maxExp = 2; // +-[0, 8)
        break;
      case Function::Softplus:
        d.signedRange = true;
        d.maxExp = 3; // +-[0, 16)
        break;
    }
    return d;
}

/** True when the method family uses a direct (no-extension) table. */
bool
isDirectLut(Method m)
{
    return m == Method::DLut || m == Method::DlLut;
}

Built
buildTableMethod(Function f, const MethodSpec& spec)
{
    Built out;
    DLutSpec dspec = dlutSpecFor(f, spec);
    Domain dom = functionDomain(f);

    switch (f) {
      case Function::Sin:
      case Function::Cos: {
        auto lut = std::make_shared<AnyLut>(
            makeLut(spec, refFn(f), 0.0, dTwoPi, dspec));
        bool reduce = spec.reduceRange;
        out.eval = [lut, reduce](float x, auto& sink) {
            if (reduce)
                x = reduceTwoPiT(x, sink);
            return lut->evalT(x, sink);
        };
        out.attach = [lut](sim::DpuCore& c) { lut->attach(c); };
        out.memoryBytes = lut->bytes();
        return out;
      }
      case Function::Tan: {
        if (spec.shareTrigTables && !isDirectLut(spec.method)) {
            // One sine table over [0, 2pi + pi/2]; the cosine query
            // reuses it shifted by a quarter period.
            const double dHalfPi = 1.5707963267948966;
            auto lut = std::make_shared<AnyLut>(
                makeLut(spec, refFn(Function::Sin), 0.0,
                        dTwoPi + dHalfPi, dspec));
            bool reduce = spec.reduceRange;
            const float fHalfPi = 1.57079632679489661923f;
            out.eval = [lut, reduce, fHalfPi](float x,
                                              auto& sink) {
                if (reduce)
                    x = reduceTwoPiT(x, sink);
                float s = lut->evalT(x, sink);
                float c = lut->evalT(sf::addT(x, fHalfPi, sink), sink);
                return sf::divT(s, c, sink);
            };
            out.attach = [lut](sim::DpuCore& c) { lut->attach(c); };
            out.memoryBytes = lut->bytes();
            return out;
        }
        // tan = sin/cos: two tables plus one float division, the
        // 2-3x cost the paper reports for tangent (Section 4.2.4).
        auto sinL = std::make_shared<AnyLut>(makeLut(
            spec, refFn(Function::Sin), 0.0, dTwoPi, dspec));
        auto cosL = std::make_shared<AnyLut>(makeLut(
            spec, refFn(Function::Cos), 0.0, dTwoPi, dspec));
        bool reduce = spec.reduceRange;
        out.eval = [sinL, cosL, reduce](float x, auto& sink) {
            if (reduce)
                x = reduceTwoPiT(x, sink);
            float s = sinL->evalT(x, sink);
            float c = cosL->evalT(x, sink);
            return sf::divT(s, c, sink);
        };
        out.attach = [sinL, cosL](sim::DpuCore& c) {
            sinL->attach(c);
            cosL->attach(c);
        };
        out.memoryBytes = sinL->bytes() + cosL->bytes();
        return out;
      }
      case Function::Sinh:
      case Function::Cosh:
      case Function::Tanh:
      case Function::Gelu:
      case Function::Sigmoid:
      case Function::Cndf:
      case Function::Atan:
      case Function::Asin:
      case Function::Acos:
      case Function::Atanh:
      case Function::Erf:
      case Function::Silu:
      case Function::Softplus: {
        // Direct tables over the evaluation domain; these functions
        // need no range extension (Key Takeaway 4 territory).
        auto lut = std::make_shared<AnyLut>(
            makeLut(spec, refFn(f), dom.lo, dom.hi, dspec));
        out.eval = [lut](float x, auto& sink) {
            return lut->evalT(x, sink);
        };
        out.attach = [lut](sim::DpuCore& c) { lut->attach(c); };
        out.memoryBytes = lut->bytes();
        return out;
      }
      case Function::Exp: {
        if (isDirectLut(spec.method)) {
            auto lut = std::make_shared<AnyLut>(
                makeLut(spec, refFn(f), dom.lo, dom.hi, dspec));
            out.eval = [lut](float x, auto& sink) {
                return lut->evalT(x, sink);
            };
            out.attach = [lut](sim::DpuCore& c) { lut->attach(c); };
            out.memoryBytes = lut->bytes();
            return out;
        }
        // Range extension: e^x = 2^k * e^r, r in [0, ln2).
        auto lut = std::make_shared<AnyLut>(
            makeLut(spec, refFn(f), 0.0, dLn2, dspec));
        out.eval = [lut](float x, auto& sink) {
            ExpSplit s = splitExpT(x, sink);
            float y = lut->evalT(s.r, sink);
            return pimLdexpT(y, s.k, sink);
        };
        out.attach = [lut](sim::DpuCore& c) { lut->attach(c); };
        out.memoryBytes = lut->bytes();
        return out;
      }
      case Function::Log: {
        if (isDirectLut(spec.method)) {
            auto lut = std::make_shared<AnyLut>(
                makeLut(spec, refFn(f), dom.lo, dom.hi, dspec));
            out.eval = [lut](float x, auto& sink) {
                return lut->evalT(x, sink);
            };
            out.attach = [lut](sim::DpuCore& c) { lut->attach(c); };
            out.memoryBytes = lut->bytes();
            return out;
        }
        // log x = k*ln2 + log m, m in [1, 2).
        auto lut = std::make_shared<AnyLut>(
            makeLut(spec, refFn(f), 1.0, 2.0, dspec));
        out.eval = [lut](float x, auto& sink) {
            LogSplit s = splitLogT(x, sink);
            float y = lut->evalT(s.m, sink);
            float kf = sf::fromI32T(s.k, sink);
            return sf::addT(y, sf::mulT(kf, fLn2, sink), sink);
        };
        out.attach = [lut](sim::DpuCore& c) { lut->attach(c); };
        out.memoryBytes = lut->bytes();
        return out;
      }
      case Function::Sqrt: {
        if (isDirectLut(spec.method)) {
            auto lut = std::make_shared<AnyLut>(
                makeLut(spec, refFn(f), dom.lo, dom.hi, dspec));
            out.eval = [lut](float x, auto& sink) {
                return lut->evalT(x, sink);
            };
            out.attach = [lut](sim::DpuCore& c) { lut->attach(c); };
            out.memoryBytes = lut->bytes();
            return out;
        }
        // sqrt x = 2^k * sqrt m, m in [0.5, 2).
        auto lut = std::make_shared<AnyLut>(
            makeLut(spec, refFn(f), 0.5, 2.0, dspec));
        out.eval = [lut](float x, auto& sink) {
            sink.charge(2); // zero guard
            if (floatBits(x) == 0 || floatBits(x) == 0x80000000u)
                return 0.0f;
            SqrtSplit s = splitSqrtT(x, sink);
            float y = lut->evalT(s.m, sink);
            return pimLdexpT(y, s.k, sink);
        };
        out.attach = [lut](sim::DpuCore& c) { lut->attach(c); };
        out.memoryBytes = lut->bytes();
        return out;
      }
      case Function::Log2:
      case Function::Log10: {
        if (isDirectLut(spec.method)) {
            auto lut = std::make_shared<AnyLut>(
                makeLut(spec, refFn(f), dom.lo, dom.hi, dspec));
            out.eval = [lut](float x, auto& sink) {
                return lut->evalT(x, sink);
            };
            out.attach = [lut](sim::DpuCore& c) { lut->attach(c); };
            out.memoryBytes = lut->bytes();
            return out;
        }
        // log2 x = k + log2 m: the exponent contributes *exactly*, so
        // this is even cheaper than natural log (no k*ln2 multiply).
        auto lut = std::make_shared<AnyLut>(makeLut(
            spec, [](double m) { return std::log2(m); }, 1.0, 2.0,
            dspec));
        bool base10 = f == Function::Log10;
        const float log10of2 = 0.30102999566398119521f;
        out.eval = [lut, base10, log10of2](float x, auto& sink) {
            LogSplit s = splitLogT(x, sink);
            float y = lut->evalT(s.m, sink);
            float kf = sf::fromI32T(s.k, sink);
            float l2 = sf::addT(y, kf, sink);
            if (base10)
                l2 = sf::mulT(l2, log10of2, sink);
            return l2;
        };
        out.attach = [lut](sim::DpuCore& c) { lut->attach(c); };
        out.memoryBytes = lut->bytes();
        return out;
      }
      case Function::Exp2: {
        if (isDirectLut(spec.method)) {
            auto lut = std::make_shared<AnyLut>(
                makeLut(spec, refFn(f), dom.lo, dom.hi, dspec));
            out.eval = [lut](float x, auto& sink) {
                return lut->evalT(x, sink);
            };
            out.attach = [lut](sim::DpuCore& c) { lut->attach(c); };
            out.memoryBytes = lut->bytes();
            return out;
        }
        // 2^x = 2^k * 2^r with k = floor(x): no ln2 multiplies at all,
        // the cheapest range extension in the library.
        auto lut = std::make_shared<AnyLut>(makeLut(
            spec, [](double r) { return std::exp2(r); }, 0.0, 1.0,
            dspec));
        out.eval = [lut](float x, auto& sink) {
            int32_t k = sf::toI32FloorT(x, sink);
            float kf = sf::fromI32T(k, sink);
            float r = sf::subT(x, kf, sink);
            float y = lut->evalT(r, sink);
            return pimLdexpT(y, k, sink);
        };
        out.attach = [lut](sim::DpuCore& c) { lut->attach(c); };
        out.memoryBytes = lut->bytes();
        return out;
      }
      case Function::Rsqrt: {
        if (isDirectLut(spec.method)) {
            auto lut = std::make_shared<AnyLut>(
                makeLut(spec, refFn(f), dom.lo, dom.hi, dspec));
            out.eval = [lut](float x, auto& sink) {
                return lut->evalT(x, sink);
            };
            out.attach = [lut](sim::DpuCore& c) { lut->attach(c); };
            out.memoryBytes = lut->bytes();
            return out;
        }
        // 1/sqrt(m * 4^k) = 2^-k / sqrt(m), m in [0.5, 2).
        auto lut = std::make_shared<AnyLut>(makeLut(
            spec, [](double m) { return 1.0 / std::sqrt(m); }, 0.5,
            2.0, dspec));
        out.eval = [lut](float x, auto& sink) {
            SqrtSplit s = splitSqrtT(x, sink);
            float y = lut->evalT(s.m, sink);
            return pimLdexpT(y, -s.k, sink);
        };
        out.attach = [lut](sim::DpuCore& c) { lut->attach(c); };
        out.memoryBytes = lut->bytes();
        return out;
      }
    }
    throw std::logic_error("buildTableMethod: unhandled function");
}

// ---------------------------------------------------------------------
// CORDIC builders
// ---------------------------------------------------------------------

/** e^x via split + hyperbolic rotation + ldexp. */
template <class S>
float
cordicExp(const CordicEngine& engine, float x, S& sink)
{
    ExpSplit s = splitExpT(x, sink);
    CordicEngine::Result r = engine.rotateT(s.r, sink);
    float e = sf::addT(r.x, r.y, sink); // cosh + sinh
    return pimLdexpT(e, s.k, sink);
}

/** |x| <= 1 test: one bit-mask compare. */
template <class S>
bool
magnitudeBelowOne(float x, S& sink)
{
    sink.charge(3);
    return (floatBits(x) & 0x7fffffffu) < floatBits(1.0f);
}

Built
buildCordic(Function f, const MethodSpec& spec)
{
    Built out;
    bool reduce = spec.reduceRange;

    switch (f) {
      case Function::Sin:
      case Function::Cos:
      case Function::Tan: {
        auto eng = std::make_shared<CordicEngine>(
            CordicMode::Circular, spec.iterations, spec.placement);
        out.eval = [eng, f, reduce](float x, auto& sink) {
            if (reduce)
                x = reduceTwoPiT(x, sink);
            QuadrantReduced qr = reduceQuadrantT(x, sink);
            CordicEngine::Result r = eng->rotateT(qr.r, sink);
            if (f == Function::Sin)
                return selectSin(r, qr.q, sink);
            if (f == Function::Cos)
                return selectCos(r, qr.q, sink);
            float s = selectSin(r, qr.q, sink);
            float c = selectCos(r, qr.q, sink);
            return sf::divT(s, c, sink);
        };
        out.attach = [eng](sim::DpuCore& c) { eng->attach(c); };
        out.memoryBytes = eng->memoryBytes();
        return out;
      }
      case Function::Sinh:
      case Function::Cosh: {
        auto eng = std::make_shared<CordicEngine>(
            CordicMode::Hyperbolic, spec.iterations, spec.placement);
        out.eval = [eng, f](float x, auto& sink) {
            if (magnitudeBelowOne(x, sink)) {
                CordicEngine::Result r = eng->rotateT(x, sink);
                return f == Function::Sinh ? r.y : r.x;
            }
            // Outside the convergence range: exp identities.
            float e = cordicExp(*eng, x, sink);
            float ei = sf::divT(1.0f, e, sink);
            float t = f == Function::Sinh ? sf::subT(e, ei, sink)
                                          : sf::addT(e, ei, sink);
            return pimLdexpT(t, -1, sink);
        };
        out.attach = [eng](sim::DpuCore& c) { eng->attach(c); };
        out.memoryBytes = eng->memoryBytes();
        return out;
      }
      case Function::Tanh: {
        auto eng = std::make_shared<CordicEngine>(
            CordicMode::Hyperbolic, spec.iterations, spec.placement);
        out.eval = [eng](float x, auto& sink) {
            if (magnitudeBelowOne(x, sink)) {
                CordicEngine::Result r = eng->rotateT(x, sink);
                return sf::divT(r.y, r.x, sink);
            }
            // tanh x = 1 - 2 / (e^(2x) + 1).
            float e2 = cordicExp(*eng, pimLdexpT(x, 1, sink), sink);
            float d = sf::addT(e2, 1.0f, sink);
            float t = sf::divT(2.0f, d, sink);
            return sf::subT(1.0f, t, sink);
        };
        out.attach = [eng](sim::DpuCore& c) { eng->attach(c); };
        out.memoryBytes = eng->memoryBytes();
        return out;
      }
      case Function::Exp: {
        auto eng = std::make_shared<CordicEngine>(
            CordicMode::Hyperbolic, spec.iterations, spec.placement);
        out.eval = [eng](float x, auto& sink) {
            return cordicExp(*eng, x, sink);
        };
        out.attach = [eng](sim::DpuCore& c) { eng->attach(c); };
        out.memoryBytes = eng->memoryBytes();
        return out;
      }
      case Function::Log: {
        auto eng = std::make_shared<CordicEngine>(
            CordicMode::Hyperbolic, spec.iterations, spec.placement);
        out.eval = [eng](float x, auto& sink) {
            // log x = k*ln2 + 2*atanh((m-1)/(m+1)).
            LogSplit s = splitLogT(x, sink);
            float x0 = sf::addT(s.m, 1.0f, sink);
            float y0 = sf::subT(s.m, 1.0f, sink);
            CordicEngine::Result r = eng->vectorT(x0, y0, sink);
            float lm = pimLdexpT(r.z, 1, sink);
            float kf = sf::fromI32T(s.k, sink);
            return sf::addT(lm, sf::mulT(kf, fLn2, sink), sink);
        };
        out.attach = [eng](sim::DpuCore& c) { eng->attach(c); };
        out.memoryBytes = eng->memoryBytes();
        return out;
      }
      case Function::Sqrt: {
        auto eng = std::make_shared<CordicEngine>(
            CordicMode::Hyperbolic, spec.iterations, spec.placement);
        float invGain = eng->invGain();
        out.eval = [eng, invGain](float x, auto& sink) {
            sink.charge(2); // zero guard
            if (floatBits(x) == 0 || floatBits(x) == 0x80000000u)
                return 0.0f;
            // sqrt x = 2^k * gain^-1 * x_n with (x_n, _) from
            // vectoring (m + 1/4, m - 1/4).
            SqrtSplit s = splitSqrtT(x, sink);
            float x0 = sf::addT(s.m, 0.25f, sink);
            float y0 = sf::subT(s.m, 0.25f, sink);
            CordicEngine::Result r = eng->vectorT(x0, y0, sink);
            float v = sf::mulT(r.x, invGain, sink);
            return pimLdexpT(v, s.k, sink);
        };
        out.attach = [eng](sim::DpuCore& c) { eng->attach(c); };
        out.memoryBytes = eng->memoryBytes();
        return out;
      }
      case Function::Sigmoid:
      case Function::Silu: {
        auto eng = std::make_shared<CordicEngine>(
            CordicMode::Hyperbolic, spec.iterations, spec.placement);
        bool silu = f == Function::Silu;
        out.eval = [eng, silu](float x, auto& sink) {
            float e = cordicExp(*eng, sf::negT(x, sink), sink);
            float s = sf::divT(1.0f, sf::addT(1.0f, e, sink), sink);
            if (silu)
                s = sf::mulT(x, s, sink);
            return s;
        };
        out.attach = [eng](sim::DpuCore& c) { eng->attach(c); };
        out.memoryBytes = eng->memoryBytes();
        return out;
      }
      case Function::Atan: {
        // Circular vectoring: z accumulates atan(y0/x0).
        auto eng = std::make_shared<CordicEngine>(
            CordicMode::Circular, spec.iterations, spec.placement);
        out.eval = [eng](float x, auto& sink) {
            CordicEngine::Result r = eng->vectorT(1.0f, x, sink);
            return r.z;
        };
        out.attach = [eng](sim::DpuCore& c) { eng->attach(c); };
        out.memoryBytes = eng->memoryBytes();
        return out;
      }
      case Function::Atanh: {
        auto eng = std::make_shared<CordicEngine>(
            CordicMode::Hyperbolic, spec.iterations, spec.placement);
        out.eval = [eng](float x, auto& sink) {
            // Direct vectoring converges for |x| <= tanh(1.118); use
            // atanh x = ln((1+x)/(1-x))/2 via the log path beyond.
            sink.charge(3);
            if ((floatBits(x) & 0x7fffffffu) < floatBits(0.75f)) {
                CordicEngine::Result r = eng->vectorT(1.0f, x, sink);
                return r.z;
            }
            float u = sf::divT(sf::addT(1.0f, x, sink),
                              sf::subT(1.0f, x, sink), sink);
            LogSplit s = splitLogT(u, sink);
            float x0 = sf::addT(s.m, 1.0f, sink);
            float y0 = sf::subT(s.m, 1.0f, sink);
            CordicEngine::Result r = eng->vectorT(x0, y0, sink);
            float lm = pimLdexpT(r.z, 1, sink);
            float kf = sf::fromI32T(s.k, sink);
            float ln = sf::addT(lm, sf::mulT(kf, fLn2, sink), sink);
            return pimLdexpT(ln, -1, sink);
        };
        out.attach = [eng](sim::DpuCore& c) { eng->attach(c); };
        out.memoryBytes = eng->memoryBytes();
        return out;
      }
      case Function::Log2:
      case Function::Log10: {
        auto eng = std::make_shared<CordicEngine>(
            CordicMode::Hyperbolic, spec.iterations, spec.placement);
        bool base10 = f == Function::Log10;
        const float log2e = 1.44269504088896340736f;
        const float log10of2 = 0.30102999566398119521f;
        out.eval = [eng, base10, log2e, log10of2](float x,
                                                  auto& sink) {
            LogSplit s = splitLogT(x, sink);
            float x0 = sf::addT(s.m, 1.0f, sink);
            float y0 = sf::subT(s.m, 1.0f, sink);
            CordicEngine::Result r = eng->vectorT(x0, y0, sink);
            float lnm = pimLdexpT(r.z, 1, sink);
            float l2m = sf::mulT(lnm, log2e, sink);
            float kf = sf::fromI32T(s.k, sink);
            float l2 = sf::addT(l2m, kf, sink);
            if (base10)
                l2 = sf::mulT(l2, log10of2, sink);
            return l2;
        };
        out.attach = [eng](sim::DpuCore& c) { eng->attach(c); };
        out.memoryBytes = eng->memoryBytes();
        return out;
      }
      case Function::Exp2: {
        auto eng = std::make_shared<CordicEngine>(
            CordicMode::Hyperbolic, spec.iterations, spec.placement);
        out.eval = [eng](float x, auto& sink) {
            // 2^x = 2^k * e^(r*ln2), r = x - floor(x) in [0, 1).
            int32_t k = sf::toI32FloorT(x, sink);
            float kf = sf::fromI32T(k, sink);
            float r = sf::subT(x, kf, sink);
            float rl = sf::mulT(r, fLn2, sink);
            CordicEngine::Result rot = eng->rotateT(rl, sink);
            float e = sf::addT(rot.x, rot.y, sink);
            return pimLdexpT(e, k, sink);
        };
        out.attach = [eng](sim::DpuCore& c) { eng->attach(c); };
        out.memoryBytes = eng->memoryBytes();
        return out;
      }
      case Function::Rsqrt: {
        auto eng = std::make_shared<CordicEngine>(
            CordicMode::Hyperbolic, spec.iterations, spec.placement);
        float invGain = eng->invGain();
        out.eval = [eng, invGain](float x, auto& sink) {
            SqrtSplit s = splitSqrtT(x, sink);
            float x0 = sf::addT(s.m, 0.25f, sink);
            float y0 = sf::subT(s.m, 0.25f, sink);
            CordicEngine::Result r = eng->vectorT(x0, y0, sink);
            float sq = sf::mulT(r.x, invGain, sink);
            float inv = sf::divT(1.0f, sq, sink);
            return pimLdexpT(inv, -s.k, sink);
        };
        out.attach = [eng](sim::DpuCore& c) { eng->attach(c); };
        out.memoryBytes = eng->memoryBytes();
        return out;
      }
      case Function::Softplus: {
        auto eng = std::make_shared<CordicEngine>(
            CordicMode::Hyperbolic, spec.iterations, spec.placement);
        out.eval = [eng](float x, auto& sink) {
            // ln(1 + e^x): exp path, then log path on the same engine.
            float e = cordicExp(*eng, x, sink);
            float u = sf::addT(1.0f, e, sink);
            LogSplit s = splitLogT(u, sink);
            float x0 = sf::addT(s.m, 1.0f, sink);
            float y0 = sf::subT(s.m, 1.0f, sink);
            CordicEngine::Result r = eng->vectorT(x0, y0, sink);
            float lm = pimLdexpT(r.z, 1, sink);
            float kf = sf::fromI32T(s.k, sink);
            return sf::addT(lm, sf::mulT(kf, fLn2, sink), sink);
        };
        out.attach = [eng](sim::DpuCore& c) { eng->attach(c); };
        out.memoryBytes = eng->memoryBytes();
        return out;
      }
      default:
        break;
    }
    throw std::logic_error("buildCordic: unhandled function");
}

Built
buildCordicFixed(Function f, const MethodSpec& spec)
{
    // Trigonometric ablation: the full fixed-point pipeline of the
    // paper's Figure 3(a), with native integer iterations.
    Built out;
    auto eng = std::make_shared<CordicFixedEngine>(
        CordicMode::Circular, spec.iterations, spec.placement);
    bool reduce = spec.reduceRange;
    out.eval = [eng, f, reduce](float x, auto& sink) {
        if (reduce)
            x = reduceTwoPiT(x, sink);
        Fixed v = sf::toFixedT(x, sink);
        v = reduceTwoPiFixedT(v, sink);
        // Quadrant reduction by conditional subtraction.
        sink.charge(4);
        int q = 0;
        int32_t raw = v.raw();
        if (raw >= fixedPi().raw()) {
            raw -= fixedPi().raw();
            q += 2;
        }
        if (raw >= fixedHalfPi().raw()) {
            raw -= fixedHalfPi().raw();
            q += 1;
        }
        CordicFixedEngine::Result r =
            eng->rotateT(Fixed::fromRaw(raw), sink);
        sink.charge(3); // quadrant select + conditional negate
        Fixed sinV, cosV;
        switch (q) {
          case 0: sinV = r.y; cosV = r.x; break;
          case 1: sinV = r.x; cosV = -r.y; break;
          case 2: sinV = -r.y; cosV = -r.x; break;
          default: sinV = -r.x; cosV = r.y; break;
        }
        if (f == Function::Sin)
            return sf::fromFixedT(sinV, sink);
        if (f == Function::Cos)
            return sf::fromFixedT(cosV, sink);
        float s = sf::fromFixedT(sinV, sink);
        float c = sf::fromFixedT(cosV, sink);
        return sf::divT(s, c, sink);
    };
    out.attach = [eng](sim::DpuCore& c) { eng->attach(c); };
    out.memoryBytes = eng->memoryBytes();
    return out;
}

Built
buildCordicLut(Function f, const MethodSpec& spec)
{
    Built out;
    switch (f) {
      case Function::Sin:
      case Function::Cos:
      case Function::Tan: {
        auto eng = std::make_shared<CordicLutEngine>(
            CordicMode::Circular, spec.iterations, spec.gridBits, 0.0,
            1.5707963267948966, spec.placement);
        bool reduce = spec.reduceRange;
        out.eval = [eng, f, reduce](float x, auto& sink) {
            if (reduce)
                x = reduceTwoPiT(x, sink);
            QuadrantReduced qr = reduceQuadrantT(x, sink);
            CordicEngine::Result r = eng->rotateT(qr.r, sink);
            if (f == Function::Sin)
                return selectSin(r, qr.q, sink);
            if (f == Function::Cos)
                return selectCos(r, qr.q, sink);
            float s = selectSin(r, qr.q, sink);
            float c = selectCos(r, qr.q, sink);
            return sf::divT(s, c, sink);
        };
        out.attach = [eng](sim::DpuCore& c) { eng->attach(c); };
        out.memoryBytes = eng->memoryBytes();
        return out;
      }
      case Function::Exp:
      case Function::Exp2:
      case Function::Sinh:
      case Function::Cosh:
      case Function::Tanh:
      case Function::Sigmoid:
      case Function::Silu: {
        // One hyperbolic engine covering [-1.12, 1.12] serves both the
        // direct rotations and the e^r (r in [0, ln2)) extension path.
        auto eng = std::make_shared<CordicLutEngine>(
            CordicMode::Hyperbolic, spec.iterations, spec.gridBits,
            -1.12, 1.12, spec.placement);
        auto expEval = [eng](float x, auto& sink) {
            ExpSplit s = splitExpT(x, sink);
            CordicEngine::Result r = eng->rotateT(s.r, sink);
            float e = sf::addT(r.x, r.y, sink);
            return pimLdexpT(e, s.k, sink);
        };
        switch (f) {
          case Function::Exp:
            out.eval = expEval;
            break;
          case Function::Exp2:
            out.eval = [eng](float x, auto& sink) {
                const float ln2 = 0.69314718055994530942f;
                int32_t k = sf::toI32FloorT(x, sink);
                float kf = sf::fromI32T(k, sink);
                float r = sf::subT(x, kf, sink);
                float rl = sf::mulT(r, ln2, sink);
                CordicEngine::Result rot = eng->rotateT(rl, sink);
                float e = sf::addT(rot.x, rot.y, sink);
                return pimLdexpT(e, k, sink);
            };
            break;
          case Function::Silu:
            out.eval = [expEval](float x, auto& sink) {
                float e = expEval(sf::negT(x, sink), sink);
                float s =
                    sf::divT(1.0f, sf::addT(1.0f, e, sink), sink);
                return sf::mulT(x, s, sink);
            };
            break;
          case Function::Sinh:
          case Function::Cosh:
            out.eval = [eng, expEval, f](float x, auto& sink) {
                if (magnitudeBelowOne(x, sink)) {
                    CordicEngine::Result r = eng->rotateT(x, sink);
                    return f == Function::Sinh ? r.y : r.x;
                }
                float e = expEval(x, sink);
                float ei = sf::divT(1.0f, e, sink);
                float t = f == Function::Sinh ? sf::subT(e, ei, sink)
                                              : sf::addT(e, ei, sink);
                return pimLdexpT(t, -1, sink);
            };
            break;
          case Function::Tanh:
            out.eval = [eng, expEval](float x, auto& sink) {
                if (magnitudeBelowOne(x, sink)) {
                    CordicEngine::Result r = eng->rotateT(x, sink);
                    return sf::divT(r.y, r.x, sink);
                }
                float e2 = expEval(pimLdexpT(x, 1, sink), sink);
                float d = sf::addT(e2, 1.0f, sink);
                return sf::subT(1.0f, sf::divT(2.0f, d, sink), sink);
            };
            break;
          default: // Sigmoid
            out.eval = [expEval](float x, auto& sink) {
                float e = expEval(sf::negT(x, sink), sink);
                return sf::divT(1.0f, sf::addT(1.0f, e, sink), sink);
            };
            break;
        }
        out.attach = [eng](sim::DpuCore& c) { eng->attach(c); };
        out.memoryBytes = eng->memoryBytes();
        return out;
      }
      default:
        break;
    }
    throw std::logic_error("buildCordicLut: unhandled function");
}

// ---------------------------------------------------------------------
// Polynomial baseline builders
// ---------------------------------------------------------------------

Built
buildPoly(Function f, const MethodSpec& spec)
{
    Built out;
    out.attach = [](sim::DpuCore&) {}; // coefficients are immediates
    uint32_t deg = spec.polyDegree;
    bool reduce = spec.reduceRange;

    auto expPoly = std::make_shared<Polynomial>(expTaylor(deg));
    auto expEval = [expPoly](float x, auto& sink) {
        ExpSplit s = splitExpT(x, sink);
        float y = expPoly->evalT(s.r, sink);
        return pimLdexpT(y, s.k, sink);
    };

    // Reusable sub-evaluators for the compositional functions.
    auto logPoly = std::make_shared<Polynomial>(log1pTaylor(deg));
    auto logEval = [logPoly](float x, auto& sink) {
        LogSplit s = splitLogT(x, sink);
        sink.charge(3);
        float m = s.m;
        int k = s.k;
        if (sf::leT(4.0f / 3.0f, m, sink)) {
            m = pimLdexpT(m, -1, sink);
            k += 1;
        }
        float u = sf::subT(m, 1.0f, sink);
        float y = logPoly->evalT(u, sink);
        float kf = sf::fromI32T(k, sink);
        return sf::addT(y, sf::mulT(kf, fLn2, sink), sink);
    };
    auto sqrtPoly = std::make_shared<Polynomial>(sqrt1pSeries(deg));
    auto sqrtEval = [sqrtPoly](float x, auto& sink) {
        sink.charge(2);
        if (floatBits(x) == 0 || floatBits(x) == 0x80000000u)
            return 0.0f;
        SqrtSplit s = splitSqrtT(x, sink);
        sink.charge(3);
        float m = s.m;
        bool scaled = false;
        if (sf::leT(4.0f / 3.0f, m, sink)) {
            m = pimLdexpT(m, -1, sink);
            scaled = true;
        }
        float u = sf::subT(m, 1.0f, sink);
        float y = sqrtPoly->evalT(u, sink);
        if (scaled)
            y = sf::mulT(y, 1.41421356237309504880f, sink);
        return pimLdexpT(y, s.k, sink);
    };
    auto atanPoly = std::make_shared<Polynomial>(atanTaylor(deg));
    auto atanEval = [atanPoly](float x, auto& sink) {
        // Octant reduction to |u| <= tan(pi/8) for fast convergence:
        // sign fold, reciprocal fold, then the pi/4 rotation identity.
        const float tanPi8 = 0.41421356237309504880f;
        const float pi4 = 0.78539816339744830962f;
        const float pi2 = 1.57079632679489661923f;
        sink.charge(3);
        uint32_t sign = floatBits(x) >> 31;
        float a = sf::absT(x, sink);
        bool recip = false;
        if (sf::leT(1.0f, a, sink)) {
            a = sf::divT(1.0f, a, sink);
            recip = true;
        }
        bool rotated = false;
        if (sf::leT(tanPi8, a, sink)) {
            a = sf::divT(sf::subT(a, 1.0f, sink),
                        sf::addT(a, 1.0f, sink), sink);
            rotated = true;
        }
        float y = atanPoly->evalT(a, sink);
        if (rotated)
            y = sf::addT(y, pi4, sink);
        if (recip)
            y = sf::subT(pi2, y, sink);
        if (sign)
            y = sf::negT(y, sink);
        return y;
    };

    switch (f) {
      case Function::Sin:
      case Function::Cos:
      case Function::Tan: {
        auto sinP = std::make_shared<Polynomial>(sinTaylor(deg));
        auto cosP = std::make_shared<Polynomial>(cosTaylor(deg));
        auto sinAt = [sinP, cosP](float r, int q, auto& sink) {
            sink.charge(2);
            switch (q & 3) {
              case 0: return sinP->evalT(r, sink);
              case 1: return cosP->evalT(r, sink);
              case 2: return sf::negT(sinP->evalT(r, sink), sink);
              default: return sf::negT(cosP->evalT(r, sink), sink);
            }
        };
        out.eval = [sinAt, f, reduce](float x, auto& sink) {
            if (reduce)
                x = reduceTwoPiT(x, sink);
            QuadrantReduced qr = reduceQuadrantT(x, sink);
            if (f == Function::Sin)
                return sinAt(qr.r, qr.q, sink);
            if (f == Function::Cos)
                return sinAt(qr.r, qr.q + 1, sink);
            float s = sinAt(qr.r, qr.q, sink);
            float c = sinAt(qr.r, qr.q + 1, sink);
            return sf::divT(s, c, sink);
        };
        out.memoryBytes = 2 * (deg + 1) * sizeof(float);
        return out;
      }
      case Function::Exp:
        out.eval = expEval;
        out.memoryBytes = (deg + 1) * sizeof(float);
        return out;
      case Function::Log:
        out.eval = logEval;
        out.memoryBytes = (deg + 1) * sizeof(float);
        return out;
      case Function::Sqrt:
        out.eval = sqrtEval;
        out.memoryBytes = (deg + 1) * sizeof(float);
        return out;
      case Function::Log2:
      case Function::Log10: {
        bool base10 = f == Function::Log10;
        const float log2e = 1.44269504088896340736f;
        const float log10e = 0.43429448190325182765f;
        out.eval = [logEval, base10, log2e, log10e](float x,
                                                    auto& sink) {
            float ln = logEval(x, sink);
            return sf::mulT(ln, base10 ? log10e : log2e, sink);
        };
        out.memoryBytes = (deg + 1) * sizeof(float);
        return out;
      }
      case Function::Exp2:
        out.eval = [expPoly](float x, auto& sink) {
            // 2^x = 2^k * e^(r*ln2), r = x - floor(x).
            int32_t k = sf::toI32FloorT(x, sink);
            float kf = sf::fromI32T(k, sink);
            float r = sf::mulT(sf::subT(x, kf, sink), fLn2, sink);
            float y = expPoly->evalT(r, sink);
            return pimLdexpT(y, k, sink);
        };
        out.memoryBytes = (deg + 1) * sizeof(float);
        return out;
      case Function::Rsqrt: {
        auto rsP = std::make_shared<Polynomial>(rsqrt1pSeries(deg));
        const float invSqrt2 = 0.70710678118654752440f;
        out.eval = [rsP, invSqrt2](float x, auto& sink) {
            SqrtSplit s = splitSqrtT(x, sink);
            sink.charge(3);
            float m = s.m;
            bool scaled = false;
            if (sf::leT(4.0f / 3.0f, m, sink)) {
                m = pimLdexpT(m, -1, sink);
                scaled = true;
            }
            float u = sf::subT(m, 1.0f, sink);
            float y = rsP->evalT(u, sink);
            if (scaled)
                y = sf::mulT(y, invSqrt2, sink);
            return pimLdexpT(y, -s.k, sink);
        };
        out.memoryBytes = (deg + 1) * sizeof(float);
        return out;
      }
      case Function::Atan:
        out.eval = atanEval;
        out.memoryBytes = (deg + 1) * sizeof(float);
        return out;
      case Function::Asin:
      case Function::Acos: {
        // asin x = atan(x / sqrt(1 - x^2)); acos x = pi/2 - asin x.
        bool acos = f == Function::Acos;
        const float pi2 = 1.57079632679489661923f;
        out.eval = [atanEval, sqrtEval, acos, pi2](float x,
                                                   auto& sink) {
            float x2 = sf::mulT(x, x, sink);
            float den = sqrtEval(sf::subT(1.0f, x2, sink), sink);
            float y = atanEval(sf::divT(x, den, sink), sink);
            if (acos)
                y = sf::subT(pi2, y, sink);
            return y;
        };
        out.memoryBytes = 2 * (deg + 1) * sizeof(float);
        return out;
      }
      case Function::Atanh:
        // atanh x = ln((1+x)/(1-x)) / 2.
        out.eval = [logEval](float x, auto& sink) {
            float u = sf::divT(sf::addT(1.0f, x, sink),
                              sf::subT(1.0f, x, sink), sink);
            return pimLdexpT(logEval(u, sink), -1, sink);
        };
        out.memoryBytes = (deg + 1) * sizeof(float);
        return out;
      case Function::Softplus:
        // ln(1 + e^x).
        out.eval = [expEval, logEval](float x, auto& sink) {
            float e = expEval(x, sink);
            return logEval(sf::addT(1.0f, e, sink), sink);
        };
        out.memoryBytes = 2 * (deg + 1) * sizeof(float);
        return out;
      case Function::Silu:
        out.eval = [expEval](float x, auto& sink) {
            float e = expEval(sf::negT(x, sink), sink);
            float s = sf::divT(1.0f, sf::addT(1.0f, e, sink), sink);
            return sf::mulT(x, s, sink);
        };
        out.memoryBytes = (deg + 1) * sizeof(float);
        return out;
      case Function::Sinh:
      case Function::Cosh:
        out.eval = [expEval, f](float x, auto& sink) {
            float e = expEval(x, sink);
            float ei = sf::divT(1.0f, e, sink);
            float t = f == Function::Sinh ? sf::subT(e, ei, sink)
                                          : sf::addT(e, ei, sink);
            return pimLdexpT(t, -1, sink);
        };
        out.memoryBytes = (deg + 1) * sizeof(float);
        return out;
      case Function::Tanh:
        out.eval = [expEval](float x, auto& sink) {
            float e2 = expEval(pimLdexpT(x, 1, sink), sink);
            float d = sf::addT(e2, 1.0f, sink);
            return sf::subT(1.0f, sf::divT(2.0f, d, sink), sink);
        };
        out.memoryBytes = (deg + 1) * sizeof(float);
        return out;
      case Function::Sigmoid:
        out.eval = [expEval](float x, auto& sink) {
            float e = expEval(sf::negT(x, sink), sink);
            return sf::divT(1.0f, sf::addT(1.0f, e, sink), sink);
        };
        out.memoryBytes = (deg + 1) * sizeof(float);
        return out;
      case Function::Cndf:
      case Function::Gelu:
      case Function::Erf: {
        // Abramowitz-Stegun 26.2.17 CNDF, the formulation the original
        // Blackscholes benchmark uses: one exp, one divide, degree-5
        // polynomial in t = 1/(1 + 0.2316419|x|).
        auto tailP = std::make_shared<Polynomial>(std::vector<float>{
            0.0f, 0.319381530f, -0.356563782f, 1.781477937f,
            -1.821255978f, 1.330274429f});
        auto cndf = [tailP, expEval](float x, auto& sink) {
            float ax = sf::absT(x, sink);
            float t = sf::divT(
                1.0f,
                sf::addT(1.0f, sf::mulT(0.2316419f, ax, sink), sink),
                sink);
            // phi(x) = exp(-x^2/2) / sqrt(2*pi)
            float x2 = sf::mulT(x, x, sink);
            float e = expEval(sf::negT(pimLdexpT(x2, -1, sink), sink),
                              sink);
            float phi = sf::mulT(fInvSqrt2Pi, e, sink);
            float tail = sf::mulT(phi, tailP->evalT(t, sink), sink);
            float cnd = sf::subT(1.0f, tail, sink);
            sink.charge(2);
            if (floatBits(x) >> 31)
                cnd = sf::subT(1.0f, cnd, sink);
            return cnd;
        };
        if (f == Function::Cndf) {
            out.eval = cndf;
        } else if (f == Function::Gelu) {
            out.eval = [cndf](float x, auto& sink) {
                return sf::mulT(x, cndf(x, sink), sink);
            };
        } else {
            // erf x = 2 * cndf(x * sqrt(2)) - 1.
            const float sqrt2 = 1.41421356237309504880f;
            out.eval = [cndf, sqrt2](float x, auto& sink) {
                float c = cndf(sf::mulT(x, sqrt2, sink), sink);
                return sf::subT(pimLdexpT(c, 1, sink), 1.0f, sink);
            };
        }
        out.memoryBytes = (deg + 1 + 6) * sizeof(float);
        return out;
      }
    }
    throw std::logic_error("buildPoly: unhandled function");
}

/** The support matrix (paper Table 2 plus the workload functions). */
bool
supportsImpl(Function f, Method m)
{
    switch (m) {
      case Method::MLut:
      case Method::LLut:
      case Method::DLut:
      case Method::DlLut:
      case Method::Poly:
        return true;
      case Method::LLutFixed:
        // Inputs and outputs must fit Q3.28's [-8, 8) range.
        switch (f) {
          case Function::Sin:
          case Function::Cos:
          case Function::Tan:
          case Function::Exp:
          case Function::Exp2:
          case Function::Tanh:
          case Function::Gelu:
          case Function::Cndf:
          case Function::Atan:
          case Function::Asin:
          case Function::Acos:
          case Function::Atanh:
          case Function::Erf:
          case Function::Silu:
            return true;
          default:
            return false;
        }
      case Method::Cordic:
        switch (f) {
          case Function::Gelu:
          case Function::Cndf:
          case Function::Erf:
          case Function::Asin:
          case Function::Acos:
            return false; // no CORDIC mode computes erf-family values
          default:
            return true;
        }
      case Method::CordicFixed:
        return f == Function::Sin || f == Function::Cos ||
               f == Function::Tan;
      case Method::CordicLut:
        switch (f) {
          case Function::Sin:
          case Function::Cos:
          case Function::Tan:
          case Function::Exp:
          case Function::Exp2:
          case Function::Sinh:
          case Function::Cosh:
          case Function::Tanh:
          case Function::Sigmoid:
          case Function::Silu:
            return true;
          default:
            return false;
        }
    }
    return false;
}

} // namespace

std::string_view
methodName(Method m)
{
    switch (m) {
      case Method::Cordic: return "CORDIC";
      case Method::CordicFixed: return "CORDIC fixed";
      case Method::CordicLut: return "CORDIC+LUT";
      case Method::MLut: return "M-LUT";
      case Method::LLut: return "L-LUT";
      case Method::LLutFixed: return "L-LUT fixed";
      case Method::DLut: return "D-LUT";
      case Method::DlLut: return "DL-LUT";
      case Method::Poly: return "Poly";
    }
    return "?";
}

std::string
methodLabel(const MethodSpec& spec)
{
    std::string label(methodName(spec.method));
    bool isLut = spec.method == Method::MLut ||
                 spec.method == Method::LLut ||
                 spec.method == Method::LLutFixed ||
                 spec.method == Method::DLut ||
                 spec.method == Method::DlLut;
    if (isLut && spec.interpolated)
        label += " interp.";
    if (isLut || spec.method == Method::CordicLut) {
        label += " (";
        label += placementName(spec.placement);
        label += ")";
    }
    return label;
}

UnsupportedCombination::UnsupportedCombination(Function f,
                                               const MethodSpec& spec)
    : std::invalid_argument(std::string(functionName(f)) +
                            " is not supported by " +
                            std::string(methodName(spec.method)))
{
}

bool
FunctionEvaluator::supports(Function f, const MethodSpec& spec)
{
    return supportsImpl(f, spec.method);
}

FunctionEvaluator
FunctionEvaluator::create(Function f, const MethodSpec& spec)
{
    if (!supportsImpl(f, spec.method))
        throw UnsupportedCombination(f, spec);

    // Table-generation phase span (obs layer): the harness's setup
    // figure and a Perfetto view of the same phase agree by design.
    obs::TraceSpan span("table-gen " + methodLabel(spec), "host");
    auto start = std::chrono::steady_clock::now();
    Built built;
    switch (spec.method) {
      case Method::MLut:
      case Method::LLut:
      case Method::LLutFixed:
      case Method::DLut:
      case Method::DlLut:
        built = buildTableMethod(f, spec);
        break;
      case Method::Cordic:
        built = buildCordic(f, spec);
        break;
      case Method::CordicFixed:
        built = buildCordicFixed(f, spec);
        break;
      case Method::CordicLut:
        built = buildCordicLut(f, spec);
        break;
      case Method::Poly:
        built = buildPoly(f, spec);
        break;
    }
    auto end = std::chrono::steady_clock::now();

    FunctionEvaluator out;
    out.fn_ = f;
    out.spec_ = spec;
    out.eval_ = std::move(built.eval.scalar);
    out.evalBatch_ = std::move(built.eval.batch);
    out.attach_ = std::move(built.attach);
    out.memoryBytes_ = built.memoryBytes;
    out.setupSeconds_ =
        std::chrono::duration<double>(end - start).count();
    return out;
}

} // namespace transpim
} // namespace tpl
