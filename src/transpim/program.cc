/**
 * @file
 * PimProgram implementation.
 */

#include "transpim/program.h"

#include <stdexcept>

namespace tpl {
namespace transpim {

void
PimProgram::add(const std::string& name, FunctionEvaluator evaluator)
{
    if (evaluators_.count(name))
        throw std::invalid_argument("PimProgram: duplicate name '" +
                                    name + "'");
    uint32_t wramUsed = wramTableBytes();
    uint32_t requested = evaluator.spec().placement == Placement::Wram
                             ? evaluator.memoryBytes()
                             : 0;
    if (wramUsed + requested > wramBudget_) {
        uint32_t remaining =
            wramBudget_ > wramUsed ? wramBudget_ - wramUsed : 0;
        throw std::length_error(
            "PimProgram: WRAM table budget exceeded adding '" + name +
            "': requested " + std::to_string(requested) +
            " bytes but only " + std::to_string(remaining) +
            " of " + std::to_string(wramBudget_) +
            " remain (" + std::to_string(wramUsed) +
            " already committed)");
    }
    evaluators_.emplace(name, std::move(evaluator));
}

const FunctionEvaluator&
PimProgram::get(const std::string& name) const
{
    auto it = evaluators_.find(name);
    if (it == evaluators_.end())
        throw std::out_of_range("PimProgram: no evaluator '" + name +
                                "'");
    return it->second;
}

uint32_t
PimProgram::totalTableBytes() const
{
    uint32_t total = 0;
    for (const auto& [name, eval] : evaluators_)
        total += eval.memoryBytes();
    return total;
}

uint32_t
PimProgram::wramTableBytes() const
{
    uint32_t total = 0;
    for (const auto& [name, eval] : evaluators_) {
        if (eval.spec().placement == Placement::Wram)
            total += eval.memoryBytes();
    }
    return total;
}

double
PimProgram::totalSetupSeconds() const
{
    double total = 0.0;
    for (const auto& [name, eval] : evaluators_)
        total += eval.setupSeconds();
    return total;
}

void
PimProgram::attach(sim::DpuCore& core)
{
    for (auto& [name, eval] : evaluators_)
        eval.attach(core);
}

double
PimProgram::attachAll(sim::PimSystem& system)
{
    for (uint32_t d = 0; d < system.numDpus(); ++d)
        attach(system.dpu(d));
    return system.parallelTransferSeconds(totalTableBytes());
}

} // namespace transpim
} // namespace tpl
