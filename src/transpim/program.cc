/**
 * @file
 * PimProgram implementation.
 */

#include "transpim/program.h"

#include <stdexcept>

namespace tpl {
namespace transpim {

void
PimProgram::add(const std::string& name, FunctionEvaluator evaluator)
{
    if (evaluators_.count(name))
        throw std::invalid_argument("PimProgram: duplicate name '" +
                                    name + "'");
    uint32_t wramAfter = wramTableBytes();
    if (evaluator.spec().placement == Placement::Wram)
        wramAfter += evaluator.memoryBytes();
    if (wramAfter > wramBudget_) {
        throw std::length_error(
            "PimProgram: WRAM table budget exceeded by '" + name +
            "' (" + std::to_string(wramAfter) + " > " +
            std::to_string(wramBudget_) + " bytes)");
    }
    evaluators_.emplace(name, std::move(evaluator));
}

const FunctionEvaluator&
PimProgram::get(const std::string& name) const
{
    auto it = evaluators_.find(name);
    if (it == evaluators_.end())
        throw std::out_of_range("PimProgram: no evaluator '" + name +
                                "'");
    return it->second;
}

uint32_t
PimProgram::totalTableBytes() const
{
    uint32_t total = 0;
    for (const auto& [name, eval] : evaluators_)
        total += eval.memoryBytes();
    return total;
}

uint32_t
PimProgram::wramTableBytes() const
{
    uint32_t total = 0;
    for (const auto& [name, eval] : evaluators_) {
        if (eval.spec().placement == Placement::Wram)
            total += eval.memoryBytes();
    }
    return total;
}

double
PimProgram::totalSetupSeconds() const
{
    double total = 0.0;
    for (const auto& [name, eval] : evaluators_)
        total += eval.setupSeconds();
    return total;
}

void
PimProgram::attach(sim::DpuCore& core)
{
    for (auto& [name, eval] : evaluators_)
        eval.attach(core);
}

double
PimProgram::attachAll(sim::PimSystem& system)
{
    for (uint32_t d = 0; d < system.numDpus(); ++d)
        attach(system.dpu(d));
    return system.parallelTransferSeconds(totalTableBytes());
}

} // namespace transpim
} // namespace tpl
