/**
 * @file
 * Reference oracle implementations.
 */

#include "transpim/reference.h"

#include <cmath>

namespace tpl {
namespace transpim {

std::string_view
functionName(Function f)
{
    switch (f) {
      case Function::Sin: return "sin";
      case Function::Cos: return "cos";
      case Function::Tan: return "tan";
      case Function::Sinh: return "sinh";
      case Function::Cosh: return "cosh";
      case Function::Tanh: return "tanh";
      case Function::Exp: return "exp";
      case Function::Log: return "log";
      case Function::Sqrt: return "sqrt";
      case Function::Gelu: return "gelu";
      case Function::Sigmoid: return "sigmoid";
      case Function::Cndf: return "cndf";
      case Function::Atan: return "atan";
      case Function::Asin: return "asin";
      case Function::Acos: return "acos";
      case Function::Atanh: return "atanh";
      case Function::Log2: return "log2";
      case Function::Log10: return "log10";
      case Function::Exp2: return "exp2";
      case Function::Rsqrt: return "rsqrt";
      case Function::Erf: return "erf";
      case Function::Silu: return "silu";
      case Function::Softplus: return "softplus";
    }
    return "?";
}

double
geluReference(double x)
{
    return 0.5 * x * (1.0 + std::erf(x / std::sqrt(2.0)));
}

double
sigmoidReference(double x)
{
    return 1.0 / (1.0 + std::exp(-x));
}

double
cndfReference(double x)
{
    return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double
referenceValue(Function f, double x)
{
    switch (f) {
      case Function::Sin: return std::sin(x);
      case Function::Cos: return std::cos(x);
      case Function::Tan: return std::tan(x);
      case Function::Sinh: return std::sinh(x);
      case Function::Cosh: return std::cosh(x);
      case Function::Tanh: return std::tanh(x);
      case Function::Exp: return std::exp(x);
      case Function::Log: return std::log(x);
      case Function::Sqrt: return std::sqrt(x);
      case Function::Gelu: return geluReference(x);
      case Function::Sigmoid: return sigmoidReference(x);
      case Function::Cndf: return cndfReference(x);
      case Function::Atan: return std::atan(x);
      case Function::Asin: return std::asin(x);
      case Function::Acos: return std::acos(x);
      case Function::Atanh: return std::atanh(x);
      case Function::Log2: return std::log2(x);
      case Function::Log10: return std::log10(x);
      case Function::Exp2: return std::exp2(x);
      case Function::Rsqrt: return 1.0 / std::sqrt(x);
      case Function::Erf: return std::erf(x);
      case Function::Silu: return x * sigmoidReference(x);
      case Function::Softplus: return std::log1p(std::exp(x));
    }
    return 0.0;
}

Domain
functionDomain(Function f)
{
    constexpr double twoPi = 6.28318530717958647692;
    switch (f) {
      case Function::Sin:
      case Function::Cos:
      case Function::Tan:
        return {0.0, twoPi};
      case Function::Sinh:
      case Function::Cosh:
        return {-4.0, 4.0};
      case Function::Tanh:
        return {-8.0, 8.0};
      case Function::Gelu:
        return {-8.0, 8.0};
      case Function::Sigmoid:
        return {-16.0, 16.0};
      case Function::Cndf:
        return {-6.0, 6.0};
      case Function::Exp:
        return {-10.0, 10.0};
      case Function::Log:
        return {0.001, 100.0};
      case Function::Sqrt:
        return {0.0, 100.0};
      case Function::Atan:
        return {-8.0, 8.0};
      case Function::Asin:
      case Function::Acos:
        return {-0.99, 0.99};
      case Function::Atanh:
        return {-0.99, 0.99};
      case Function::Log2:
      case Function::Log10:
        return {0.001, 100.0};
      case Function::Exp2:
        return {-10.0, 10.0};
      case Function::Rsqrt:
        return {0.01, 100.0};
      case Function::Erf:
        return {-4.0, 4.0};
      case Function::Silu:
        return {-8.0, 8.0};
      case Function::Softplus:
        return {-10.0, 10.0};
    }
    return {0.0, 1.0};
}

} // namespace transpim
} // namespace tpl
