/**
 * @file
 * Auto-tuner implementation.
 */

#include "transpim/tuner.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "pimsim/system.h"
#include "transpim/error_model.h"
#include "transpim/harness.h"

namespace tpl {
namespace transpim {

namespace {

/** Ascending accuracy knob per method family. */
std::vector<uint32_t>
knobLadder(Method m)
{
    switch (m) {
      case Method::Cordic:
      case Method::CordicFixed:
      case Method::CordicLut:
        return {8, 10, 12, 14, 16, 18, 20, 22, 24, 26, 28};
      case Method::Poly:
        return {3, 5, 7, 9, 11, 13, 15};
      default: // LUT families: log2 of the entry budget
        return {6, 8, 10, 12, 14, 16, 18, 20};
    }
}

MethodSpec
specWithKnob(Method m, uint32_t knob, const TunerConstraints& c)
{
    MethodSpec spec;
    spec.method = m;
    spec.interpolated = true;
    spec.placement = c.placement;
    switch (m) {
      case Method::Cordic:
      case Method::CordicFixed:
      case Method::CordicLut:
        spec.iterations = knob;
        break;
      case Method::Poly:
        spec.polyDegree = knob;
        break;
      default:
        spec.log2Entries = knob;
        break;
    }
    return spec;
}

const std::vector<Method> kAllMethods{
    Method::Cordic,  Method::CordicFixed, Method::CordicLut,
    Method::MLut,    Method::LLut,        Method::LLutFixed,
    Method::DLut,    Method::DlLut,       Method::Poly,
};

/** Resolve the Auto metric: relative for large-output functions. */
bool
useRelative(Function f, ErrorMetric metric)
{
    if (metric != ErrorMetric::Auto)
        return metric == ErrorMetric::Relative;
    switch (f) {
      case Function::Exp:
      case Function::Exp2:
      case Function::Sinh:
      case Function::Cosh:
        return true;
      default:
        return false;
    }
}

/** RMSE under the chosen metric over sample inputs. */
double
measureRmse(const FunctionEvaluator& eval,
            const std::vector<float>& inputs, bool relative)
{
    double sumSq = 0.0;
    size_t n = 0;
    for (float x : inputs) {
        double ref =
            referenceValue(eval.function(), static_cast<double>(x));
        double err = std::abs(eval.eval(x, nullptr) - ref);
        if (relative)
            err /= std::max(1.0, std::abs(ref));
        sumSq += err * err;
        ++n;
    }
    return n ? std::sqrt(sumSq / static_cast<double>(n)) : 0.0;
}

} // namespace

std::optional<TunerResult>
recommendSpec(Function f, double targetRmse,
              const TunerConstraints& constraints)
{
    Domain dom = functionDomain(f);
    auto inputs =
        uniformFloats(constraints.sampleSize, static_cast<float>(dom.lo),
                      static_cast<float>(dom.hi), 0x7a11e5);

    const std::vector<Method>& methods =
        constraints.methods.empty() ? kAllMethods : constraints.methods;

    sim::CostModel model;
    sim::PimSystem timing(1);
    std::vector<TunedCandidate> candidates;

    for (Method m : methods) {
        MethodSpec probe;
        probe.method = m;
        if (!FunctionEvaluator::supports(f, probe))
            continue;
        if (m == Method::LLutFixed && !constraints.allowFixedPoint)
            continue;

        for (uint32_t knob : knobLadder(m)) {
            MethodSpec spec = specWithKnob(m, knob, constraints);
            // Accuracy search runs host-side; placement only affects
            // the memory budget check here.
            spec.placement = Placement::Host;
            // Fast pre-filter: skip knobs the analytic error model
            // predicts to miss the target by a wide margin, avoiding
            // table construction for hopeless configurations.
            if (predictRmse(f, spec) > 30.0 * targetRmse)
                continue;
            FunctionEvaluator eval = FunctionEvaluator::create(f, spec);
            if (eval.memoryBytes() > constraints.maxTableBytes) {
                // Table growth is monotone in the knob: no larger
                // configuration of this method fits either.
                break;
            }
            bool relative = useRelative(f, constraints.metric);
            double rmse = measureRmse(eval, inputs, relative);
            if (rmse > targetRmse)
                continue; // not accurate enough yet; raise the knob

            // Accuracy target met: measure the per-eval cost.
            CountingSink cost;
            uint32_t probes =
                std::min<uint32_t>(256, constraints.sampleSize);
            for (uint32_t i = 0; i < probes; ++i)
                eval.eval(inputs[i], &cost);

            TunedCandidate cand;
            cand.spec = specWithKnob(m, knob, constraints);
            cand.rmse = rmse;
            cand.instructionsPerEval =
                static_cast<double>(cost.total()) / probes;
            cand.tableBytes = eval.memoryBytes();
            cand.setupSeconds =
                eval.setupSeconds() +
                timing.serialTransferSeconds(eval.memoryBytes());
            // Score: issue-bound kernel time per evaluation plus the
            // amortized setup share.
            double evals = static_cast<double>(
                std::max<uint64_t>(1, constraints.expectedEvaluations));
            cand.secondsPerEval =
                cand.instructionsPerEval / model.frequencyHz +
                cand.setupSeconds / evals;
            candidates.push_back(cand);
            break; // smallest knob meeting the target: done with m
        }
    }

    if (candidates.empty())
        return std::nullopt;
    std::sort(candidates.begin(), candidates.end(),
              [](const TunedCandidate& a, const TunedCandidate& b) {
                  return a.secondsPerEval < b.secondsPerEval;
              });
    TunerResult result;
    result.best = candidates.front();
    result.candidates = std::move(candidates);
    return result;
}

ErrorMetric
resolveMetric(Function f, ErrorMetric metric)
{
    if (metric != ErrorMetric::Auto)
        return metric;
    return useRelative(f, metric) ? ErrorMetric::Relative
                                  : ErrorMetric::Absolute;
}

} // namespace transpim
} // namespace tpl
