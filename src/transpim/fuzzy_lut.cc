/**
 * @file
 * M-LUT / L-LUT implementations.
 */

#include "transpim/fuzzy_lut.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/emu_int.h"
#include "softfloat/softfloat.h"
#include "transpim/ldexp.h"

namespace tpl {
namespace transpim {

namespace {

std::vector<float>
buildFloatTable(const TableFn& f, double p, double spacing,
                uint32_t entries)
{
    std::vector<float> table(entries);
    for (uint32_t i = 0; i < entries; ++i)
        table[i] = static_cast<float>(f(p + i * spacing));
    return table;
}

} // namespace

MLut::MLut(const TableFn& f, double lo, double hi, uint32_t entries,
           bool interpolated, Placement placement)
    : p_(static_cast<float>(lo)), interpolated_(interpolated)
{
    if (entries < 2)
        throw std::invalid_argument("MLut needs at least 2 entries");
    double k = (entries - 1) / (hi - lo);
    k_ = static_cast<float>(k);
    table_ = LutStore<float>(buildFloatTable(f, lo, 1.0 / k, entries),
                             placement);
}

float
MLut::eval(float x, InstrSink* sink) const
{
    SinkRef s(sink);
    return evalT(x, s);
}

LLut::LLut(const TableFn& f, double lo, double hi, uint32_t maxEntries,
           bool interpolated, Placement placement)
    : p_(static_cast<float>(lo)), interpolated_(interpolated)
{
    if (maxEntries < 2)
        throw std::invalid_argument("LLut needs at least 2 entries");
    // Largest power-of-two density whose grid fits in maxEntries.
    double span = hi - lo;
    e_ = static_cast<int>(
        std::floor(std::log2((maxEntries - 1) / span)));
    double spacing = std::ldexp(1.0, -e_);
    uint32_t entries =
        static_cast<uint32_t>(std::ceil(span / spacing)) + 1;
    table_ = LutStore<float>(buildFloatTable(f, lo, spacing, entries),
                             placement);
}

float
LLut::eval(float x, InstrSink* sink) const
{
    SinkRef s(sink);
    return evalT(x, s);
}

LLutFixed::LLutFixed(const TableFn& f, double lo, double hi,
                     uint32_t maxEntries, bool interpolated,
                     Placement placement)
    : pRaw_(Fixed::fromDouble(lo).raw()), interpolated_(interpolated)
{
    if (maxEntries < 2)
        throw std::invalid_argument("LLutFixed needs at least 2 entries");
    double span = hi - lo;
    e_ = static_cast<int>(
        std::floor(std::log2((maxEntries - 1) / span)));
    // The address shift must stay within the fractional bits (and at
    // least one bit of shift so the rounding half-constant exists).
    e_ = std::min(e_, Fixed::fracBits - 1);
    shift_ = Fixed::fracBits - e_;
    double spacing = std::ldexp(1.0, -e_);
    uint32_t entries =
        static_cast<uint32_t>(std::ceil(span / spacing)) + 1;
    std::vector<int32_t> table(entries);
    for (uint32_t i = 0; i < entries; ++i)
        table[i] = saturatingFromDouble(f(lo + i * spacing)).raw();
    table_ = LutStore<int32_t>(std::move(table), placement);
}

Fixed
LLutFixed::evalFixed(Fixed x, InstrSink* sink) const
{
    SinkRef s(sink);
    return evalFixedT(x, s);
}

float
LLutFixed::eval(float x, InstrSink* sink) const
{
    SinkRef s(sink);
    return evalT(x, s);
}

} // namespace transpim
} // namespace tpl
