/**
 * @file
 * M-LUT / L-LUT implementations.
 */

#include "transpim/fuzzy_lut.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/emu_int.h"
#include "softfloat/softfloat.h"
#include "transpim/ldexp.h"

namespace tpl {
namespace transpim {

namespace {

/** Clamp an address into [0, limit]; two compare-and-select instrs. */
int32_t
clampIndex(int32_t i, int32_t limit, InstrSink* sink)
{
    chargeInstr(sink, 2);
    return std::clamp(i, 0, limit);
}

std::vector<float>
buildFloatTable(const TableFn& f, double p, double spacing,
                uint32_t entries)
{
    std::vector<float> table(entries);
    for (uint32_t i = 0; i < entries; ++i)
        table[i] = static_cast<float>(f(p + i * spacing));
    return table;
}

} // namespace

MLut::MLut(const TableFn& f, double lo, double hi, uint32_t entries,
           bool interpolated, Placement placement)
    : p_(static_cast<float>(lo)), interpolated_(interpolated)
{
    if (entries < 2)
        throw std::invalid_argument("MLut needs at least 2 entries");
    double k = (entries - 1) / (hi - lo);
    k_ = static_cast<float>(k);
    table_ = LutStore<float>(buildFloatTable(f, lo, 1.0 / k, entries),
                             placement);
}

float
MLut::eval(float x, InstrSink* sink) const
{
    float t = x;
    if (p_ != 0.0f)
        t = sf::sub(x, p_, sink);
    t = sf::mul(t, k_, sink);
    if (!interpolated_) {
        int32_t i = sf::toI32Round(t, sink);
        i = clampIndex(i, static_cast<int32_t>(table_.size()) - 1, sink);
        return table_.read(static_cast<uint32_t>(i), sink);
    }
    int32_t i = sf::toI32Floor(t, sink);
    i = clampIndex(i, static_cast<int32_t>(table_.size()) - 2, sink);
    float fi = sf::fromI32(i, sink);
    float delta = sf::sub(t, fi, sink);
    float l0 = table_.read(static_cast<uint32_t>(i), sink);
    float l1 = table_.read(static_cast<uint32_t>(i) + 1, sink);
    float d = sf::sub(l1, l0, sink);
    return sf::add(l0, sf::mul(d, delta, sink), sink);
}

LLut::LLut(const TableFn& f, double lo, double hi, uint32_t maxEntries,
           bool interpolated, Placement placement)
    : p_(static_cast<float>(lo)), interpolated_(interpolated)
{
    if (maxEntries < 2)
        throw std::invalid_argument("LLut needs at least 2 entries");
    // Largest power-of-two density whose grid fits in maxEntries.
    double span = hi - lo;
    e_ = static_cast<int>(
        std::floor(std::log2((maxEntries - 1) / span)));
    double spacing = std::ldexp(1.0, -e_);
    uint32_t entries =
        static_cast<uint32_t>(std::ceil(span / spacing)) + 1;
    table_ = LutStore<float>(buildFloatTable(f, lo, spacing, entries),
                             placement);
}

float
LLut::eval(float x, InstrSink* sink) const
{
    float t = x;
    if (p_ != 0.0f)
        t = sf::sub(x, p_, sink);
    t = pimLdexp(t, e_, sink);
    if (!interpolated_) {
        int32_t i = sf::toI32Round(t, sink);
        i = clampIndex(i, static_cast<int32_t>(table_.size()) - 1, sink);
        return table_.read(static_cast<uint32_t>(i), sink);
    }
    int32_t i = sf::toI32Floor(t, sink);
    i = clampIndex(i, static_cast<int32_t>(table_.size()) - 2, sink);
    float fi = sf::fromI32(i, sink);
    float delta = sf::sub(t, fi, sink);
    float l0 = table_.read(static_cast<uint32_t>(i), sink);
    float l1 = table_.read(static_cast<uint32_t>(i) + 1, sink);
    float d = sf::sub(l1, l0, sink);
    return sf::add(l0, sf::mul(d, delta, sink), sink);
}

LLutFixed::LLutFixed(const TableFn& f, double lo, double hi,
                     uint32_t maxEntries, bool interpolated,
                     Placement placement)
    : pRaw_(Fixed::fromDouble(lo).raw()), interpolated_(interpolated)
{
    if (maxEntries < 2)
        throw std::invalid_argument("LLutFixed needs at least 2 entries");
    double span = hi - lo;
    e_ = static_cast<int>(
        std::floor(std::log2((maxEntries - 1) / span)));
    // The address shift must stay within the fractional bits (and at
    // least one bit of shift so the rounding half-constant exists).
    e_ = std::min(e_, Fixed::fracBits - 1);
    shift_ = Fixed::fracBits - e_;
    double spacing = std::ldexp(1.0, -e_);
    uint32_t entries =
        static_cast<uint32_t>(std::ceil(span / spacing)) + 1;
    std::vector<int32_t> table(entries);
    for (uint32_t i = 0; i < entries; ++i)
        table[i] = saturatingFromDouble(f(lo + i * spacing)).raw();
    table_ = LutStore<int32_t>(std::move(table), placement);
}

Fixed
LLutFixed::evalFixed(Fixed x, InstrSink* sink) const
{
    // t = x - p as *unsigned* raw arithmetic: for in-range inputs the
    // wrap-free difference (x - lo) * 2^28 fits 32 unsigned bits even
    // when the domain spans the full [-8, 8) Q3.28 range (e.g. tanh),
    // which a signed Q3.28 subtract could not represent.
    chargeInstr(sink, 1);
    uint32_t t = static_cast<uint32_t>(x.raw()) -
                 static_cast<uint32_t>(pRaw_);
    int32_t limit = static_cast<int32_t>(table_.size()) - 1;
    if (!interpolated_) {
        // Round to nearest: add half-spacing, logical shift right.
        chargeInstr(sink, 2);
        int32_t i = static_cast<int32_t>(
            (t + (1u << (shift_ - 1))) >> shift_);
        i = clampIndex(i, limit, sink);
        return Fixed::fromRaw(table_.read(static_cast<uint32_t>(i), sink));
    }
    chargeInstr(sink, 2); // floor shift + mask
    int32_t i = static_cast<int32_t>(t >> shift_);
    int32_t deltaRaw = static_cast<int32_t>(t & ((1u << shift_) - 1u));
    i = clampIndex(i, limit - 1, sink);
    int32_t l0 = table_.read(static_cast<uint32_t>(i), sink);
    int32_t l1 = table_.read(static_cast<uint32_t>(i) + 1, sink);
    chargeInstr(sink, 1); // diff
    int32_t d = l1 - l0;
    // result = l0 + (d * delta) >> shift: one emulated multiply.
    noteOp(sink, OpClass::IntMul);
    int64_t prod = emuMulS32(d, deltaRaw, sink);
    chargeInstr(sink, 3); // 64-bit shift + add
    return Fixed::fromRaw(l0 +
                          static_cast<int32_t>(prod >> shift_));
}

float
LLutFixed::eval(float x, InstrSink* sink) const
{
    Fixed xf = sf::toFixed(x, sink);
    Fixed y = evalFixed(xf, sink);
    return sf::fromFixed(y, sink);
}

} // namespace transpim
} // namespace tpl
