/**
 * @file
 * Evaluator glue for the serve layer.
 */

#include "transpim/serve_glue.h"

#include <algorithm>
#include <memory>
#include <new>
#include <string>
#include <vector>

namespace tpl {
namespace transpim {

namespace {

/** FNV-1a, the idiomatic small stable hash. */
class Fnv1a
{
  public:
    template <typename T>
    void
    mix(const T& value)
    {
        const unsigned char* p =
            reinterpret_cast<const unsigned char*>(&value);
        for (size_t i = 0; i < sizeof(T); ++i) {
            hash_ ^= p[i];
            hash_ *= 0x100000001b3ull;
        }
    }

    uint64_t value() const { return hash_; }

  private:
    uint64_t hash_ = 0xcbf29ce484222325ull;
};

} // namespace

sim::serve::TableKey
batchTableKey(Function f, const MethodSpec& spec)
{
    // Field-by-field (never the raw struct: padding bytes are
    // indeterminate), covering every knob that shapes the generated
    // tables or the kernel's evaluation path.
    Fnv1a h;
    h.mix(static_cast<uint32_t>(f));
    h.mix(static_cast<uint32_t>(spec.method));
    h.mix(static_cast<uint8_t>(spec.interpolated));
    h.mix(static_cast<uint32_t>(spec.placement));
    h.mix(spec.log2Entries);
    h.mix(spec.iterations);
    h.mix(spec.gridBits);
    h.mix(spec.polyDegree);
    h.mix(spec.dlutMantBits);
    h.mix(spec.dlutMinExp);
    h.mix(static_cast<uint8_t>(spec.reduceRange));
    h.mix(static_cast<uint8_t>(spec.shareTrigTables));

    sim::serve::TableKey key;
    key.hash = h.value();
    key.label =
        std::string(functionName(f)) + "/" + methodLabel(spec);
    return key;
}

sim::Kernel
makeStreamingKernel(const FunctionEvaluator& ev,
                    const sim::ShardTask& task, uint32_t chunkElems)
{
    const FunctionEvaluator* evp = &ev;
    const uint32_t chunk = std::clamp(chunkElems, 1u, 256u);
    const bool useBatch = batchEvalEnabled();
    return [evp, task, chunk, useBatch](sim::TaskletContext& ctx) {
        float buffer[256];
        uint32_t chunks = (task.elements + chunk - 1) / chunk;
        for (uint32_t c = ctx.taskletId(); c < chunks;
             c += ctx.numTasklets()) {
            uint32_t beg = c * chunk;
            uint32_t cnt = std::min(chunk, task.elements - beg);
            ctx.mramRead(task.inAddr + beg * sizeof(float), buffer,
                         cnt * sizeof(float));
            if (useBatch) {
                // loop control + WRAM load/store, bulk-charged
                ctx.chargeClassN(InstrClass::IntAlu, 4, cnt);
                std::span<float> span(buffer, cnt);
                evp->evalBatch(span, span, &ctx);
            } else {
                for (uint32_t i = 0; i < cnt; ++i) {
                    ctx.charge(4); // loop control + WRAM load/store
                    buffer[i] = evp->eval(buffer[i], &ctx);
                }
            }
            ctx.mramWrite(task.outAddr + beg * sizeof(float), buffer,
                          cnt * sizeof(float));
        }
    };
}

sim::serve::TableKey
EvaluatorCatalog::add(Function f, const MethodSpec& spec)
{
    sim::serve::TableKey key = batchTableKey(f, spec);
    entries_.emplace(key.hash, Entry{f, spec});
    return key;
}

sim::serve::TableProvider
EvaluatorCatalog::provider() const
{
    return [this](const sim::serve::TableKey& key,
                  sim::PimSystem& sys) -> sim::serve::TableBinding {
        sim::serve::TableBinding binding;
        auto it = entries_.find(key.hash);
        if (it == entries_.end())
            return binding; // unknown configuration
        const Entry& entry = it->second;

        // One evaluator per core: LutStore binds attached tables to
        // one DpuCore, and per-core tables are what the modeled
        // machine has anyway.
        auto evals =
            std::make_shared<std::vector<FunctionEvaluator>>(
                sys.numDpus());
        try {
            for (uint32_t d = 0; d < sys.numDpus(); ++d) {
                (*evals)[d] =
                    FunctionEvaluator::create(entry.function,
                                              entry.spec);
                (*evals)[d].attach(sys.dpu(d));
            }
        } catch (const UnsupportedCombination&) {
            return binding;
        } catch (const std::bad_alloc&) {
            return binding;
        }

        binding.valid = true;
        binding.tableBytes =
            evals->empty() ? 0 : evals->front().memoryBytes();
        const uint32_t chunk = chunkElems_;
        binding.makeKernel =
            [evals, chunk](const sim::ShardTask& t) -> sim::Kernel {
            return makeStreamingKernel((*evals)[t.dpu], t, chunk);
        };
        binding.state = evals;
        return binding;
    };
}

} // namespace transpim
} // namespace tpl
