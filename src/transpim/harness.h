/**
 * @file
 * Microbenchmark harness: runs a FunctionEvaluator over an input array
 * on a simulated PIM core and reports the four metrics of the paper's
 * Section 4.2 - accuracy (RMSE / max error / ULP against the host
 * libm), execution cycles per element, host setup time, and memory
 * consumption.
 *
 * The kernel follows the paper's microbenchmark structure: the input
 * array lives in the PIM core's DRAM bank, tasklets stream chunks into
 * the scratchpad, evaluate every element, and write results back.
 */

#ifndef TPL_TRANSPIM_HARNESS_H
#define TPL_TRANSPIM_HARNESS_H

#include <optional>
#include <vector>

#include "common/error_metrics.h"
#include "pimsim/serve/pipeline.h"
#include "pimsim/system.h"
#include "transpim/evaluator.h"
#include "transpim/serve_glue.h"

namespace tpl {
namespace transpim {

/** Everything the paper's Figures 5-7 need, for one configuration. */
struct MicrobenchResult
{
    Function function;
    MethodSpec spec;
    ErrorStats error;            ///< vs. host libm (float reference)
    double cyclesPerElement = 0; ///< modeled DPU cycles / element
    double instructionsPerElement = 0;
    uint32_t memoryBytes = 0;    ///< tables on the PIM core (Figure 7)
    double setupSeconds = 0;     ///< host generation + transfer model
    double hostGenSeconds = 0;   ///< host generation only
    double transferSeconds = 0;  ///< modeled table transfer
    bool feasible = true;        ///< false if tables did not fit
    uint32_t elements = 0;
    uint32_t tasklets = 0;

    /** Full launch statistics of the kernel, including the per-
     * InstrClass cycle attribution and per-tasklet breakdown the obs
     * layer / pimtrace profile consume. */
    sim::LaunchStats launch;
};

/** Harness options. */
struct MicrobenchOptions
{
    uint32_t elements = 1u << 14; ///< paper uses 2^16
    uint32_t tasklets = 16;
    uint64_t seed = 0x7ea9c0de;
    /** Optional input domain override (defaults to functionDomain). */
    std::optional<Domain> domain;
};

/**
 * Run one (function, method) microbenchmark on a fresh simulated DPU.
 * Infeasible configurations (tables exceeding WRAM/MRAM) return with
 * feasible = false instead of throwing.
 */
MicrobenchResult runMicrobench(Function f, const MethodSpec& spec,
                               const MicrobenchOptions& opts = {});

/**
 * Options for the degradation-aware multi-DPU harness. The fault plan
 * is optional: with none armed the run degenerates to one wave over
 * all cores and the report shows zero failures.
 */
struct ResilientOptions
{
    uint32_t elements = 1u << 12;
    uint32_t dpus = 8;
    uint32_t tasklets = 8;
    uint64_t seed = 0x7ea9c0de;
    /** Optional input domain override (defaults to functionDomain). */
    std::optional<Domain> domain;
    /** Retry/backoff/timeout knobs applied to the PimSystem. */
    sim::RetryPolicy policy;
    /** Fault plan armed before the run, when set. */
    std::optional<sim::fault::FaultPlan> plan;
    /**
     * Degraded-result acceptance bound: the run is within bound when
     * it completed and measured RMSE <= max(predictRmse * this
     * factor, 1e-6). The error model is a scaling law verified within
     * a factor of ~4-6 (tests/error_model_test.cc), so the default
     * leaves headroom without masking corrupted outputs, which are
     * orders of magnitude off.
     */
    double errorBoundFactor = 10.0;
};

/** Outcome of a resilient run: degradation report + accuracy check. */
struct ResilientResult
{
    bool feasible = true;        ///< false: unsupported/tables too big
    sim::ShardedRunReport run;   ///< waves, failures, retries, seconds
    ErrorStats error;            ///< vs. host libm, all elements
    double predictedRmse = 0.0;  ///< error_model scaling-law bound
    bool withinErrorBound = false; ///< complete && rmse within bound
    uint32_t healthyDpus = 0;    ///< cores alive after the run
    uint32_t totalDpus = 0;
};

/**
 * Run one (function, method) evaluation over @p opts.elements inputs
 * sharded across a multi-DPU system, with the fault plan (if any)
 * armed: failed cores are masked, their elements re-sharded onto
 * survivors, and the final accuracy is checked against the analytic
 * error model. Exercises PimSystem::runSharded end to end.
 */
ResilientResult runResilientMicrobench(Function f,
                                       const MethodSpec& spec,
                                       const ResilientOptions& opts = {});

/**
 * Options for the batched throughput benchmark: a stream of
 * same-configuration requests served through the pimserve pipeline,
 * once double-buffered and once synchronous, on two fresh systems.
 * Defaults produce a >= 5-wave L-LUT sweep over 64 DPUs (the
 * acceptance configuration of the pipelined-vs-sync comparison).
 */
struct BatchedOptions
{
    uint32_t dpus = 64;
    uint32_t tasklets = 16;
    /** Per-DPU slice capacity; one wave is dpus * this elements. */
    uint32_t perDpuElements = 512;
    uint32_t requests = 5;
    uint32_t elementsPerRequest = 1u << 15;
    /** Streaming-kernel chunk; keep perDpuElements / chunkElems >=
     * tasklets so every tasklet gets work. */
    uint32_t chunkElems = 32;
    uint64_t seed = 0x7ea9c0de;
    /** Optional input domain override (defaults to functionDomain). */
    std::optional<Domain> domain;
    /** Retry/backoff/timeout knobs applied to both systems. */
    sim::RetryPolicy policy;
    /** Fault plan armed on both systems before serving, when set. */
    std::optional<sim::fault::FaultPlan> plan;
    uint32_t maxRetryWaves = 6;
    /** Simulation threads override (0 = global default). */
    uint32_t simThreads = 0;
};

/** Pipelined-vs-synchronous outcome of one batched benchmark. */
struct BatchedResult
{
    bool feasible = true; ///< false: no valid binding for the config
    sim::serve::ServeReport pipelined;
    sim::serve::ServeReport sync;
    /** Outputs of the two runs are bit-identical (always expected
     * without a fault plan; probabilistic plans may diverge because
     * the two schedules order per-DPU transfer events differently). */
    bool outputsMatch = false;
    double cyclesPerElement = 0.0; ///< pipelined run, compute only

    /** Sync over pipelined end-to-end modeled time. */
    double
    speedup() const
    {
        return pipelined.modeledSeconds > 0.0
                   ? sync.modeledSeconds / pipelined.modeledSeconds
                   : 0.0;
    }

    /** Overlap efficiency of the pipelined run, in percent. */
    double
    overlapPercent() const
    {
        return pipelined.overlapFraction() * 100.0;
    }
};

/**
 * Serve a burst of identical-configuration requests through the
 * pimserve pipeline twice — double-buffered and synchronous — and
 * compare modeled end-to-end time. This is the benchmark behind the
 * bench/run_all.sh sync-vs-pipelined sweep and tools/pimserve.
 */
BatchedResult runBatchedThroughput(Function f, const MethodSpec& spec,
                                   const BatchedOptions& opts = {});

/**
 * Accuracy-only evaluation on the host (no DPU, no cycle model):
 * used by tests and for quick table-size sweeps.
 */
ErrorStats evaluateAccuracy(const FunctionEvaluator& eval,
                            const std::vector<float>& inputs);

/** Reference outputs (host libm in double, rounded to float). */
std::vector<float> referenceOutputs(Function f,
                                    const std::vector<float>& inputs);

} // namespace transpim
} // namespace tpl

#endif // TPL_TRANSPIM_HARNESS_H
