/**
 * @file
 * Batch execution support for the transpim evaluators.
 *
 * The batch path runs the same templated per-element bodies as the
 * scalar path, but instantiated with BatchSink instead of SinkRef:
 * charges become inlined array adds (no virtual dispatch), the
 * softfloat cores take their fast-value lane (host IEEE arithmetic,
 * canonical-NaN-patched — bit-identical by the locked differential
 * property), and the accumulated totals are flushed to the real
 * InstrSink once per batch through the bulk chargeClassN/noteN hooks.
 * MRAM table reads still go through the tasklet's DMA model per
 * element (same DMA event sequence, so fault injection and DMA-engine
 * occupancy are unchanged); BatchSink caches the TaskletContext*
 * lookup once per batch instead of one dynamic_cast per read.
 */

#ifndef TPL_TRANSPIM_BATCH_H
#define TPL_TRANSPIM_BATCH_H

#include <array>
#include <cstdint>

#include "common/instr_sink.h"
#include "pimsim/dpu.h"

namespace tpl {
namespace transpim {

/**
 * Per-batch accounting summary an evalBatch call can return: how many
 * elements ran and the instruction/operation totals their evaluation
 * charged (the same totals the underlying sink received).
 */
struct BatchStats
{
    uint64_t elements = 0;

    /** Instructions charged, partitioned by InstrClass. */
    std::array<uint64_t, numInstrClasses> classInstructions{};

    /** High-level operations noted, partitioned by OpClass. */
    std::array<uint64_t, numOpClasses> opCounts{};

    /** Total instructions across all classes. */
    uint64_t
    totalInstructions() const
    {
        uint64_t t = 0;
        for (uint64_t v : classInstructions)
            t += v;
        return t;
    }

    /** Zero all fields. */
    void
    reset()
    {
        elements = 0;
        classInstructions = {};
        opCounts = {};
    }
};

/**
 * The batch path's Sink: a BatchTally plus the underlying InstrSink
 * (for the once-per-batch flush) and its cached TaskletContext view
 * (for DMA-modelled MRAM reads). Opts into the softfloat fast-value
 * lane.
 */
class BatchSink
{
  public:
    /** Sinks may be null (value-only evaluation, like a null sink). */
    explicit BatchSink(InstrSink* real)
        : real_(real), ctx_(dynamic_cast<sim::TaskletContext*>(real))
    {}

    BatchSink(const BatchSink&) = delete;
    BatchSink& operator=(const BatchSink&) = delete;

    static constexpr bool fastValues = true;

    void charge(uint32_t instructions) { tally_.charge(instructions); }

    void
    chargeClass(InstrClass cls, uint32_t instructions)
    {
        tally_.chargeClass(cls, instructions);
    }

    void note(OpClass op) { tally_.note(op); }

    /** The wrapped sink (may be null). */
    InstrSink* raw() const { return real_; }

    /** Cached tasklet view of the wrapped sink (may be null). */
    sim::TaskletContext* tasklet() const { return ctx_; }

    /**
     * InstrSink adapter over this batch's tally, for scalar
     * InstrSink*-based *arithmetic* routines on the body's path (the
     * binary16/64 softfloat tiers). Their charges accumulate with the
     * rest of the batch and flush together. Never hand this to a table
     * read — it is not a TaskletContext, so the DMA model could not be
     * resolved through it (readT's lutTasklet uses tasklet() instead).
     */
    InstrSink* bridge() { return &arith_; }

    /** Accumulated-but-unflushed charges. */
    const BatchTally& tally() const { return tally_; }

    /**
     * Flush the accumulated charges to the wrapped sink (one bulk call
     * per non-zero class), add them into @p stats when given, and
     * reset the tally for the next batch.
     */
    void
    flush(BatchStats* stats = nullptr)
    {
        tally_.flushTo(real_);
        if (stats) {
            for (int c = 0; c < numInstrClasses; ++c)
                stats->classInstructions[c] +=
                    tally_.classInstructions()[c];
            for (int o = 0; o < numOpClasses; ++o)
                stats->opCounts[o] += tally_.opCounts()[o];
        }
        tally_.reset();
    }

  private:
    BatchTally tally_;
    TallySink arith_{tally_};
    InstrSink* real_;
    sim::TaskletContext* ctx_;
};

/**
 * Process-wide batch-path toggle read once from the environment:
 * TPL_BATCH_EVAL=0 makes the streaming kernels take the scalar
 * per-element path (the batch path is the default). The two paths are
 * charge- and bit-identical by construction; the toggle exists for
 * A/B throughput measurement and defect isolation.
 */
bool batchEvalEnabled();

} // namespace transpim
} // namespace tpl

#endif // TPL_TRANSPIM_BATCH_H
