/**
 * @file
 * C99-compliant ldexpf for the PIM core.
 *
 * The L-LUT family multiplies by powers of two during address
 * generation. A general float multiply is very expensive on a PIM core
 * without an FPU, but multiplying by 2^n only manipulates the exponent
 * field. The UPMEM runtime does not provide ldexpf, so the paper
 * implements it in accordance with the C99 standard (Section 3.2.2);
 * this is that implementation, instrumented with its instruction count.
 *
 * Semantics match C99 ldexpf: NaN and infinity pass through, zero keeps
 * its sign, overflow returns +-infinity, underflow produces subnormals
 * or signed zero, and subnormal inputs scale exactly.
 */

#ifndef TPL_TRANSPIM_LDEXP_H
#define TPL_TRANSPIM_LDEXP_H

#include "common/instr_sink.h"

namespace tpl {
namespace transpim {

/** Compute arg * 2^exp with C99 ldexpf semantics. */
float pimLdexp(float arg, int exp, InstrSink* sink = nullptr);

/** Binary64 variant: arg * 2^exp with C99 ldexp semantics. */
double pimLdexp64(double arg, int exp, InstrSink* sink = nullptr);

} // namespace transpim
} // namespace tpl

#endif // TPL_TRANSPIM_LDEXP_H
