/**
 * @file
 * C99-compliant ldexpf for the PIM core.
 *
 * The L-LUT family multiplies by powers of two during address
 * generation. A general float multiply is very expensive on a PIM core
 * without an FPU, but multiplying by 2^n only manipulates the exponent
 * field. The UPMEM runtime does not provide ldexpf, so the paper
 * implements it in accordance with the C99 standard (Section 3.2.2);
 * this is that implementation, instrumented with its instruction count.
 *
 * Semantics match C99 ldexpf: NaN and infinity pass through, zero keeps
 * its sign, overflow returns +-infinity, underflow produces subnormals
 * or signed zero, and subnormal inputs scale exactly.
 *
 * The bodies are sink-templates (inlined by the batch execution path);
 * the InstrSink* entry points instantiate them with SinkRef.
 */

#ifndef TPL_TRANSPIM_LDEXP_H
#define TPL_TRANSPIM_LDEXP_H

#include <bit>

#include "common/bitops.h"
#include "common/instr_sink.h"

namespace tpl {
namespace transpim {

namespace ldexp_detail {

/** Fast path: one exponent-field add plus range checks. */
inline constexpr uint32_t fastPathCost = 10;

/** Extra work to normalize a subnormal input. */
inline constexpr uint32_t subnormalInCost = 6;

/** Extra work to denormalize + round an underflowing result. */
inline constexpr uint32_t underflowCost = 14;

} // namespace ldexp_detail

/** Compute arg * 2^exp with C99 ldexpf semantics (sink-template). */
template <class S>
inline float
pimLdexpT(float arg, int exp, S& sink)
{
    using namespace ldexp_detail;
    sink.note(OpClass::Ldexp);
    uint32_t bits = floatBits(arg);
    uint32_t sign = bits & 0x80000000u;
    int e = static_cast<int>(ieeeExponent(bits));
    uint32_t m = ieeeMantissa(bits);

    if (e == 0xff) {
        sink.charge(6);
        return arg; // NaN or +-inf pass through
    }
    if (e == 0 && m == 0) {
        sink.charge(6);
        return arg; // +-0 keeps its sign
    }

    if (e == 0) {
        // Subnormal input: normalize so the implicit bit is explicit.
        sink.charge(subnormalInCost);
        int s = countLeadingZeros32(m) - 8;
        m <<= s;
        e = 1 - s;
    } else {
        m |= 0x800000u;
    }

    int64_t ne = static_cast<int64_t>(e) + exp;
    if (ne >= 0xff) {
        sink.charge(fastPathCost);
        return bitsToFloat(sign | ieeePosInf); // overflow
    }
    if (ne >= 1) {
        sink.charge(fastPathCost);
        return bitsToFloat(sign |
                           ieeePack(0, static_cast<uint32_t>(ne),
                                    m & 0x7fffffu));
    }

    // Underflow: denormalize with round-to-nearest-even.
    sink.charge(underflowCost);
    int shift = static_cast<int>(1 - ne);
    if (shift > 24)
        return bitsToFloat(sign); // rounds to signed zero
    uint32_t keep = m >> shift;
    uint32_t rem = m & ((1u << shift) - 1u);
    uint32_t half = 1u << (shift - 1);
    if (rem > half || (rem == half && (keep & 1u)))
        ++keep;
    // If rounding carried into bit 23 the packed exponent field becomes
    // 1 automatically (smallest normal), which is correct.
    return bitsToFloat(sign | keep);
}

/** Binary64 variant: arg * 2^exp with C99 ldexp semantics. */
template <class S>
inline double
pimLdexp64T(double arg, int exp, S& sink)
{
    using namespace ldexp_detail;
    sink.note(OpClass::Ldexp);
    uint64_t bits = std::bit_cast<uint64_t>(arg);
    uint64_t sign = bits & (1ull << 63);
    int e = static_cast<int>((bits >> 52) & 0x7ffull);
    uint64_t m = bits & 0xfffffffffffffull;

    if (e == 0x7ff) {
        sink.charge(6);
        return arg; // NaN or +-inf
    }
    if (e == 0 && m == 0) {
        sink.charge(6);
        return arg; // +-0
    }

    if (e == 0) {
        sink.charge(subnormalInCost + 4);
        int s = countLeadingZeros64(m) - 11;
        m <<= s;
        e = 1 - s;
    } else {
        m |= 1ull << 52;
    }

    int64_t ne = static_cast<int64_t>(e) + exp;
    if (ne >= 0x7ff) {
        sink.charge(fastPathCost + 4);
        return std::bit_cast<double>(sign | (0x7ffull << 52)); // inf
    }
    if (ne >= 1) {
        sink.charge(fastPathCost + 4);
        return std::bit_cast<double>(
            sign | (static_cast<uint64_t>(ne) << 52) |
            (m & 0xfffffffffffffull));
    }

    sink.charge(underflowCost + 6);
    int shift = static_cast<int>(1 - ne);
    if (shift > 53)
        return std::bit_cast<double>(sign); // signed zero
    uint64_t keep = m >> shift;
    uint64_t rem = m & ((1ull << shift) - 1ull);
    uint64_t half = 1ull << (shift - 1);
    if (rem > half || (rem == half && (keep & 1ull)))
        ++keep;
    return std::bit_cast<double>(sign | keep);
}

/** Compute arg * 2^exp with C99 ldexpf semantics. */
float pimLdexp(float arg, int exp, InstrSink* sink = nullptr);

/** Binary64 variant: arg * 2^exp with C99 ldexp semantics. */
double pimLdexp64(double arg, int exp, InstrSink* sink = nullptr);

} // namespace transpim
} // namespace tpl

#endif // TPL_TRANSPIM_LDEXP_H
