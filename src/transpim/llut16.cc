/**
 * @file
 * Half-precision L-LUT implementation.
 */

#include "transpim/llut16.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "softfloat/softfloat.h"
#include "transpim/ldexp.h"

namespace tpl {
namespace transpim {

LLut16::LLut16(const TableFn& f, double lo, double hi,
               uint32_t maxEntries, bool interpolated,
               Placement placement)
    : p_(static_cast<float>(lo)), interpolated_(interpolated)
{
    if (maxEntries < 2)
        throw std::invalid_argument("LLut16 needs at least 2 entries");
    double span = hi - lo;
    e_ = static_cast<int>(
        std::floor(std::log2((maxEntries - 1) / span)));
    double spacing = std::ldexp(1.0, -e_);
    uint32_t entries =
        static_cast<uint32_t>(std::ceil(span / spacing)) + 1;
    std::vector<uint16_t> table(entries);
    for (uint32_t i = 0; i < entries; ++i) {
        table[i] =
            sf::toF16(static_cast<float>(f(lo + i * spacing)), nullptr)
                .bits;
    }
    table_ = LutStore<uint16_t>(std::move(table), placement);
}

float
LLut16::eval(float x, InstrSink* sink) const
{
    SinkRef s(sink);
    return evalT(x, s);
}

} // namespace transpim
} // namespace tpl
