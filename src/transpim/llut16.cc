/**
 * @file
 * Half-precision L-LUT implementation.
 */

#include "transpim/llut16.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "softfloat/softfloat.h"
#include "transpim/ldexp.h"

namespace tpl {
namespace transpim {

LLut16::LLut16(const TableFn& f, double lo, double hi,
               uint32_t maxEntries, bool interpolated,
               Placement placement)
    : p_(static_cast<float>(lo)), interpolated_(interpolated)
{
    if (maxEntries < 2)
        throw std::invalid_argument("LLut16 needs at least 2 entries");
    double span = hi - lo;
    e_ = static_cast<int>(
        std::floor(std::log2((maxEntries - 1) / span)));
    double spacing = std::ldexp(1.0, -e_);
    uint32_t entries =
        static_cast<uint32_t>(std::ceil(span / spacing)) + 1;
    std::vector<uint16_t> table(entries);
    for (uint32_t i = 0; i < entries; ++i) {
        table[i] =
            sf::toF16(static_cast<float>(f(lo + i * spacing)), nullptr)
                .bits;
    }
    table_ = LutStore<uint16_t>(std::move(table), placement);
}

float
LLut16::eval(float x, InstrSink* sink) const
{
    // Addressing in binary32 (indices must be exact integers).
    float t = x;
    if (p_ != 0.0f)
        t = sf::sub(x, p_, sink);
    t = pimLdexp(t, e_, sink);
    int32_t limit = static_cast<int32_t>(table_.size()) -
                    (interpolated_ ? 2 : 1);
    if (!interpolated_) {
        int32_t i = sf::toI32Round(t, sink);
        chargeInstr(sink, 2);
        i = std::clamp(i, 0, limit);
        sf::Half h{table_.read(static_cast<uint32_t>(i), sink)};
        return sf::fromF16(h, sink);
    }
    int32_t i = sf::toI32Floor(t, sink);
    chargeInstr(sink, 2);
    i = std::clamp(i, 0, limit);
    float fi = sf::fromI32(i, sink);
    // Delta quantized to binary16 as the PE's native operand format.
    sf::Half delta = sf::toF16(sf::sub(t, fi, sink), sink);
    sf::Half l0{table_.read(static_cast<uint32_t>(i), sink)};
    sf::Half l1{table_.read(static_cast<uint32_t>(i) + 1, sink)};
    sf::Half d = sf::sub16(l1, l0, sink);
    sf::Half y = sf::add16(l0, sf::mul16(d, delta, sink), sink);
    return sf::fromF16(y, sink);
}

} // namespace transpim
} // namespace tpl
