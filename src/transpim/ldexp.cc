/**
 * @file
 * C99 ldexpf: InstrSink* entry points over the templated cores in
 * ldexp.h (inlined by the batch execution path).
 */

#include "transpim/ldexp.h"

namespace tpl {
namespace transpim {

float
pimLdexp(float arg, int exp, InstrSink* sink)
{
    SinkRef s(sink);
    return pimLdexpT(arg, exp, s);
}

double
pimLdexp64(double arg, int exp, InstrSink* sink)
{
    SinkRef s(sink);
    return pimLdexp64T(arg, exp, s);
}

} // namespace transpim
} // namespace tpl
