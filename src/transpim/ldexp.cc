/**
 * @file
 * C99 ldexpf implementation on raw IEEE-754 bits.
 */

#include "transpim/ldexp.h"

#include <bit>

#include "common/bitops.h"

namespace tpl {
namespace transpim {

namespace {

/** Fast path: one exponent-field add plus range checks. */
constexpr uint32_t fastPathCost = 10;

/** Extra work to normalize a subnormal input. */
constexpr uint32_t subnormalInCost = 6;

/** Extra work to denormalize + round an underflowing result. */
constexpr uint32_t underflowCost = 14;

} // namespace

float
pimLdexp(float arg, int exp, InstrSink* sink)
{
    noteOp(sink, OpClass::Ldexp);
    uint32_t bits = floatBits(arg);
    uint32_t sign = bits & 0x80000000u;
    int e = static_cast<int>(ieeeExponent(bits));
    uint32_t m = ieeeMantissa(bits);

    if (e == 0xff) {
        chargeInstr(sink, 6);
        return arg; // NaN or +-inf pass through
    }
    if (e == 0 && m == 0) {
        chargeInstr(sink, 6);
        return arg; // +-0 keeps its sign
    }

    if (e == 0) {
        // Subnormal input: normalize so the implicit bit is explicit.
        chargeInstr(sink, subnormalInCost);
        int s = countLeadingZeros32(m) - 8;
        m <<= s;
        e = 1 - s;
    } else {
        m |= 0x800000u;
    }

    int64_t ne = static_cast<int64_t>(e) + exp;
    if (ne >= 0xff) {
        chargeInstr(sink, fastPathCost);
        return bitsToFloat(sign | ieeePosInf); // overflow
    }
    if (ne >= 1) {
        chargeInstr(sink, fastPathCost);
        return bitsToFloat(sign |
                           ieeePack(0, static_cast<uint32_t>(ne),
                                    m & 0x7fffffu));
    }

    // Underflow: denormalize with round-to-nearest-even.
    chargeInstr(sink, underflowCost);
    int shift = static_cast<int>(1 - ne);
    if (shift > 24)
        return bitsToFloat(sign); // rounds to signed zero
    uint32_t keep = m >> shift;
    uint32_t rem = m & ((1u << shift) - 1u);
    uint32_t half = 1u << (shift - 1);
    if (rem > half || (rem == half && (keep & 1u)))
        ++keep;
    // If rounding carried into bit 23 the packed exponent field becomes
    // 1 automatically (smallest normal), which is correct.
    return bitsToFloat(sign | keep);
}

double
pimLdexp64(double arg, int exp, InstrSink* sink)
{
    noteOp(sink, OpClass::Ldexp);
    uint64_t bits = std::bit_cast<uint64_t>(arg);
    uint64_t sign = bits & (1ull << 63);
    int e = static_cast<int>((bits >> 52) & 0x7ffull);
    uint64_t m = bits & 0xfffffffffffffull;

    if (e == 0x7ff) {
        chargeInstr(sink, 6);
        return arg; // NaN or +-inf
    }
    if (e == 0 && m == 0) {
        chargeInstr(sink, 6);
        return arg; // +-0
    }

    if (e == 0) {
        chargeInstr(sink, subnormalInCost + 4);
        int s = countLeadingZeros64(m) - 11;
        m <<= s;
        e = 1 - s;
    } else {
        m |= 1ull << 52;
    }

    int64_t ne = static_cast<int64_t>(e) + exp;
    if (ne >= 0x7ff) {
        chargeInstr(sink, fastPathCost + 4);
        return std::bit_cast<double>(sign | (0x7ffull << 52)); // inf
    }
    if (ne >= 1) {
        chargeInstr(sink, fastPathCost + 4);
        return std::bit_cast<double>(
            sign | (static_cast<uint64_t>(ne) << 52) |
            (m & 0xfffffffffffffull));
    }

    chargeInstr(sink, underflowCost + 6);
    int shift = static_cast<int>(1 - ne);
    if (shift > 53)
        return std::bit_cast<double>(sign); // signed zero
    uint64_t keep = m >> shift;
    uint64_t rem = m & ((1ull << shift) - 1ull);
    uint64_t half = 1ull << (shift - 1);
    if (rem > half || (rem == half && (keep & 1ull)))
        ++keep;
    return std::bit_cast<double>(sign | keep);
}

} // namespace transpim
} // namespace tpl
