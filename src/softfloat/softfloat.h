/**
 * @file
 * Bit-exact IEEE-754 binary32 software floating point, instrumented with
 * native-instruction counts.
 *
 * The UPMEM DPU has no floating-point unit: the vendor runtime emulates
 * every float operation in software on the 32-bit integer ALU, which is
 * why float multiplication and division are so costly on that system
 * (the effect TransPimLib's L-LUT methods exploit). This module plays
 * the role of that runtime in the reproduction. All operations:
 *
 *  - compute results that are bit-identical to host IEEE-754 binary32
 *    arithmetic under round-to-nearest-even (verified exhaustively in
 *    tests/softfloat_test.cc), and
 *  - report how many native integer instructions the emulation executes
 *    through an InstrSink, so the relative costs of float add / mul /
 *    div *emerge* from their instruction mixes instead of being baked-in
 *    magic numbers.
 *
 * NaN convention: any NaN operand or invalid operation produces the
 * canonical quiet NaN (0x7fc00000). Signaling-NaN propagation details
 * are not modeled (the evaluation never produces NaNs).
 */

#ifndef TPL_SOFTFLOAT_SOFTFLOAT_H
#define TPL_SOFTFLOAT_SOFTFLOAT_H

#include <cstdint>

#include "common/fixed_point.h"
#include "common/instr_sink.h"

namespace tpl {
namespace sf {

/** Emulated binary32 addition (round-to-nearest-even). */
float add(float a, float b, InstrSink* sink = nullptr);

/** Emulated binary32 subtraction. */
float sub(float a, float b, InstrSink* sink = nullptr);

/** Emulated binary32 multiplication. */
float mul(float a, float b, InstrSink* sink = nullptr);

/** Emulated binary32 division. */
float div(float a, float b, InstrSink* sink = nullptr);

/** Emulated binary32 square root (digit-recurrence). */
float sqrt(float a, InstrSink* sink = nullptr);

/** Sign flip; one instruction on the DPU (xor with sign mask). */
float neg(float a, InstrSink* sink = nullptr);

/** Absolute value; one instruction (and with ~sign mask). */
float abs(float a, InstrSink* sink = nullptr);

/** Emulated ordered comparison a < b. */
bool lt(float a, float b, InstrSink* sink = nullptr);

/** Emulated ordered comparison a <= b. */
bool le(float a, float b, InstrSink* sink = nullptr);

/** Emulated equality comparison (0 == -0, NaN != NaN). */
bool eq(float a, float b, InstrSink* sink = nullptr);

/** Convert float to int32 truncating toward zero (C cast semantics). */
int32_t toI32Trunc(float a, InstrSink* sink = nullptr);

/** Convert float to int32 rounding toward negative infinity. */
int32_t toI32Floor(float a, InstrSink* sink = nullptr);

/** Convert float to int32 rounding to nearest (ties away from zero). */
int32_t toI32Round(float a, InstrSink* sink = nullptr);

/** Convert int32 to the nearest binary32. */
float fromI32(int32_t a, InstrSink* sink = nullptr);

/**
 * Convert a binary32 value to Q3.28 fixed point (round to nearest).
 * Values outside the representable range wrap, as the DPU sequence
 * would; the library's range-reduction steps guarantee in-range inputs.
 */
Fixed toFixed(float a, InstrSink* sink = nullptr);

/** Convert a Q3.28 fixed-point value to the nearest binary32. */
float fromFixed(Fixed a, InstrSink* sink = nullptr);

} // namespace sf
} // namespace tpl

#endif // TPL_SOFTFLOAT_SOFTFLOAT_H
