/**
 * @file
 * IEEE-754 binary32 software floating point: InstrSink* entry points.
 *
 * The unpack / operate / round-pack cores (Berkeley-SoftFloat style)
 * live in softfloat_core.h as sink-templates so both the scalar API
 * here and the batch execution path (softfloat_batch.h) inline the
 * same code; these wrappers instantiate them with SinkRef.
 */

#include "softfloat/softfloat.h"

#include "softfloat/softfloat_core.h"

namespace tpl {
namespace sf {

float
add(float fa, float fb, InstrSink* sink)
{
    SinkRef s(sink);
    return addT(fa, fb, s);
}

float
sub(float fa, float fb, InstrSink* sink)
{
    SinkRef s(sink);
    return subT(fa, fb, s);
}

float
mul(float fa, float fb, InstrSink* sink)
{
    SinkRef s(sink);
    return mulT(fa, fb, s);
}

float
div(float fa, float fb, InstrSink* sink)
{
    SinkRef s(sink);
    return divT(fa, fb, s);
}

float
sqrt(float fa, InstrSink* sink)
{
    SinkRef s(sink);
    return sqrtT(fa, s);
}

float
neg(float a, InstrSink* sink)
{
    SinkRef s(sink);
    return negT(a, s);
}

float
abs(float a, InstrSink* sink)
{
    SinkRef s(sink);
    return absT(a, s);
}

bool
lt(float a, float b, InstrSink* sink)
{
    SinkRef s(sink);
    return ltT(a, b, s);
}

bool
le(float a, float b, InstrSink* sink)
{
    SinkRef s(sink);
    return leT(a, b, s);
}

bool
eq(float a, float b, InstrSink* sink)
{
    SinkRef s(sink);
    return eqT(a, b, s);
}

int32_t
toI32Trunc(float a, InstrSink* sink)
{
    SinkRef s(sink);
    return toI32TruncT(a, s);
}

int32_t
toI32Floor(float a, InstrSink* sink)
{
    SinkRef s(sink);
    return toI32FloorT(a, s);
}

int32_t
toI32Round(float a, InstrSink* sink)
{
    SinkRef s(sink);
    return toI32RoundT(a, s);
}

float
fromI32(int32_t a, InstrSink* sink)
{
    SinkRef s(sink);
    return fromI32T(a, s);
}

Fixed
toFixed(float a, InstrSink* sink)
{
    SinkRef s(sink);
    return toFixedT(a, s);
}

float
fromFixed(Fixed a, InstrSink* sink)
{
    SinkRef s(sink);
    return fromFixedT(a, s);
}

} // namespace sf
} // namespace tpl
