/**
 * @file
 * IEEE-754 binary64 software floating point.
 *
 * Internal representation mirrors the binary32 module one word wider:
 *
 *   value = (-1)^sign * sig / 2^62 * 2^(exp - 1023)
 *
 * with a non-zero sig normalized so bit 62 is set and bits 9..0 acting
 * as guard/round/sticky precision. The 53x53-bit significand product
 * and the 115-bit division use the compiler's 128-bit integers; their
 * instruction charges model the four-partial-product expansion a
 * 32-bit DPU executes.
 */

#include "softfloat/softfloat64.h"

#include <bit>
#include <utility>

#include "common/bitops.h"

namespace tpl {
namespace sf {

namespace {

/// @name Cost calibration.
/// Binary64 emulation on a 32-bit core roughly doubles the add cost
/// (double-word alignment/normalization) and quadruples the multiply
/// (four 32x32 partial products with 128-bit accumulation); division
/// runs a 63-step quotient loop. Ratios track the PrIM double-vs-float
/// measurements.
/// @{
constexpr uint32_t callOverhead64 = 36;
constexpr uint32_t unpackCost64 = 6;
constexpr uint32_t specialsCost64 = 4;
constexpr uint32_t roundPackCost64 = 14;
constexpr uint32_t addCoreCost64 = 28;
constexpr uint32_t mulCoreCost64 = 330;
constexpr uint32_t divCoreCost64 = 640;
constexpr uint32_t convertCost64 = 40;
/// @}

constexpr int kBias64 = 1023;
constexpr uint64_t kQuietNan64 = 0x7ff8000000000000ull;

uint64_t
bits64(double v)
{
    return std::bit_cast<uint64_t>(v);
}

double
fromBits64(uint64_t b)
{
    return std::bit_cast<double>(b);
}

uint64_t
exponent64(uint64_t b)
{
    return (b >> 52) & 0x7ffull;
}

uint64_t
mantissa64(uint64_t b)
{
    return b & 0xfffffffffffffull;
}

uint64_t
pack64(uint64_t sign, uint64_t exp, uint64_t mant)
{
    return (sign << 63) | (exp << 52) | mant;
}

struct Unpacked64
{
    uint64_t sign;
    int exp;      ///< biased; may be <= 0 for subnormals
    uint64_t sig; ///< bit 62 set when non-zero; bits 9..0 precision
    bool isZero;
    bool isInf;
    bool isNan;
};

Unpacked64
unpack64(uint64_t b)
{
    Unpacked64 u{};
    u.sign = b >> 63;
    uint64_t e = exponent64(b);
    uint64_t m = mantissa64(b);
    if (e == 0x7ff) {
        u.isInf = (m == 0);
        u.isNan = (m != 0);
        u.exp = 0x7ff;
        return u;
    }
    if (e == 0) {
        if (m == 0) {
            u.isZero = true;
            return u;
        }
        // Subnormal: value = m * 2^-1074; normalize so bit 62 is set.
        int s = countLeadingZeros64(m) - 1;
        u.sig = m << s;
        u.exp = 11 - s;
        return u;
    }
    u.sig = (m | (1ull << 52)) << 10;
    u.exp = static_cast<int>(e);
    return u;
}

uint64_t
shiftRightJam64(uint64_t a, int dist)
{
    if (dist <= 0)
        return a;
    if (dist >= 63)
        return a != 0 ? 1 : 0;
    uint64_t shifted = a >> dist;
    uint64_t lost = a << (64 - dist);
    return shifted | (lost != 0 ? 1 : 0);
}

double
roundPack64(uint64_t sign, int exp, uint64_t sig)
{
    if (sig == 0)
        return fromBits64(sign << 63);
    if (exp <= 0) {
        sig = shiftRightJam64(sig, 1 - exp);
        exp = 0;
    }
    uint64_t roundBits = sig & 0x3ffull;
    uint64_t rounded = (sig + 0x200ull) >> 10;
    if (roundBits == 0x200ull)
        rounded &= ~1ull; // tie to even
    if (rounded & (1ull << 53)) {
        rounded >>= 1;
        ++exp;
    }
    if (exp == 0 && (rounded & (1ull << 52)))
        exp = 1; // rounded up to the smallest normal
    if (exp >= 0x7ff)
        return fromBits64(pack64(sign, 0x7ff, 0)); // overflow
    if (rounded == 0)
        return fromBits64(sign << 63);
    return fromBits64(pack64(sign, static_cast<uint64_t>(exp),
                             rounded & 0xfffffffffffffull));
}

double
quietNan64()
{
    return fromBits64(kQuietNan64);
}

double
addMags64(uint64_t sign, Unpacked64 a, Unpacked64 b)
{
    if (a.exp < b.exp || (a.exp == b.exp && a.sig < b.sig))
        std::swap(a, b);
    uint64_t sigB = shiftRightJam64(b.sig, a.exp - b.exp);
    uint64_t sum = a.sig + sigB;
    int exp = a.exp;
    if (sum & (1ull << 63)) {
        sum = shiftRightJam64(sum, 1);
        ++exp;
    }
    return roundPack64(sign, exp, sum);
}

double
subMags64(uint64_t sign, Unpacked64 a, Unpacked64 b)
{
    if (a.exp < b.exp || (a.exp == b.exp && a.sig < b.sig)) {
        std::swap(a, b);
        sign ^= 1ull;
    }
    if (a.exp == b.exp && a.sig == b.sig)
        return 0.0;
    uint64_t sigB = shiftRightJam64(b.sig, a.exp - b.exp);
    uint64_t diff = a.sig - sigB;
    int exp = a.exp;
    int s = countLeadingZeros64(diff) - 1;
    diff <<= s;
    exp -= s;
    return roundPack64(sign, exp, diff);
}

} // namespace

double
add64(double fa, double fb, InstrSink* sink)
{
    chargeClassed(sink, InstrClass::SoftFloat, callOverhead64 + 2 * unpackCost64 +
                          specialsCost64 + addCoreCost64 +
                          roundPackCost64);
    noteOp(sink, OpClass::FloatAdd);
    uint64_t ba = bits64(fa);
    uint64_t bb = bits64(fb);
    Unpacked64 a = unpack64(ba);
    Unpacked64 b = unpack64(bb);
    if (a.isNan || b.isNan)
        return quietNan64();
    if (a.isInf) {
        if (b.isInf && a.sign != b.sign)
            return quietNan64();
        return fa;
    }
    if (b.isInf)
        return fb;
    if (a.isZero && b.isZero)
        return fromBits64((a.sign & b.sign) << 63);
    if (a.isZero)
        return fb;
    if (b.isZero)
        return fa;
    if (a.sign == b.sign)
        return addMags64(a.sign, a, b);
    return subMags64(a.sign, a, b);
}

double
sub64(double fa, double fb, InstrSink* sink)
{
    chargeClassed(sink, InstrClass::SoftFloat, 1);
    return add64(fa, fromBits64(bits64(fb) ^ (1ull << 63)), sink);
}

double
mul64(double fa, double fb, InstrSink* sink)
{
    chargeClassed(sink, InstrClass::SoftFloat, callOverhead64 + 2 * unpackCost64 +
                          specialsCost64 + mulCoreCost64 +
                          roundPackCost64);
    noteOp(sink, OpClass::FloatMul);
    Unpacked64 a = unpack64(bits64(fa));
    Unpacked64 b = unpack64(bits64(fb));
    uint64_t sign = a.sign ^ b.sign;
    if (a.isNan || b.isNan)
        return quietNan64();
    if (a.isInf || b.isInf) {
        if (a.isZero || b.isZero)
            return quietNan64();
        return fromBits64(pack64(sign, 0x7ff, 0));
    }
    if (a.isZero || b.isZero)
        return fromBits64(sign << 63);

    uint64_t a53 = a.sig >> 10;
    uint64_t b53 = b.sig >> 10;
    unsigned __int128 prod =
        static_cast<unsigned __int128>(a53) * b53;
    // prod in [2^104, 2^106); normalize to bit 62 with sticky.
    int exp;
    uint64_t sig;
    if (prod & (static_cast<unsigned __int128>(1) << 105)) {
        sig = static_cast<uint64_t>(prod >> 43);
        if (static_cast<uint64_t>(prod) & ((1ull << 43) - 1))
            sig |= 1;
        exp = a.exp + b.exp - 1022;
    } else {
        sig = static_cast<uint64_t>(prod >> 42);
        if (static_cast<uint64_t>(prod) & ((1ull << 42) - 1))
            sig |= 1;
        exp = a.exp + b.exp - 1023;
    }
    return roundPack64(sign, exp, sig);
}

double
div64(double fa, double fb, InstrSink* sink)
{
    chargeClassed(sink, InstrClass::SoftFloat, callOverhead64 + 2 * unpackCost64 +
                          specialsCost64 + divCoreCost64 +
                          roundPackCost64);
    noteOp(sink, OpClass::FloatDiv);
    Unpacked64 a = unpack64(bits64(fa));
    Unpacked64 b = unpack64(bits64(fb));
    uint64_t sign = a.sign ^ b.sign;
    if (a.isNan || b.isNan)
        return quietNan64();
    if (a.isInf) {
        if (b.isInf)
            return quietNan64();
        return fromBits64(pack64(sign, 0x7ff, 0));
    }
    if (b.isInf)
        return fromBits64(sign << 63);
    if (b.isZero) {
        if (a.isZero)
            return quietNan64();
        return fromBits64(pack64(sign, 0x7ff, 0));
    }
    if (a.isZero)
        return fromBits64(sign << 63);

    uint64_t a53 = a.sig >> 10;
    uint64_t b53 = b.sig >> 10;
    int exp = a.exp - b.exp + kBias64;
    if (a53 < b53) {
        a53 <<= 1;
        --exp;
    }
    unsigned __int128 num = static_cast<unsigned __int128>(a53) << 62;
    uint64_t q = static_cast<uint64_t>(num / b53);
    uint64_t rem = static_cast<uint64_t>(num % b53);
    uint64_t sig = q | (rem != 0 ? 1ull : 0ull);
    return roundPack64(sign, exp, sig);
}

double
fromF32(float a, InstrSink* sink)
{
    chargeClassed(sink, InstrClass::SoftFloat, convertCost64 / 2);
    noteOp(sink, OpClass::FloatConv);
    uint32_t b = floatBits(a);
    uint64_t sign = static_cast<uint64_t>(b >> 31);
    uint32_t e = ieeeExponent(b);
    uint32_t m = ieeeMantissa(b);
    if (e == 0xff) {
        return fromBits64(pack64(sign, 0x7ff,
                                 m ? (1ull << 51) : 0ull));
    }
    if (e == 0) {
        if (m == 0)
            return fromBits64(sign << 63);
        // Subnormal float becomes a normal double: after shifting the
        // mantissa up to bit 23 its value is (m/2^23) * 2^(-126-s).
        int s = countLeadingZeros32(m) - 8;
        m <<= s;
        int exp = -126 - s + kBias64;
        return fromBits64(pack64(
            sign, static_cast<uint64_t>(exp),
            (static_cast<uint64_t>(m) & 0x7fffffull) << 29));
    }
    return fromBits64(pack64(sign,
                             static_cast<uint64_t>(e) - 127 + kBias64,
                             static_cast<uint64_t>(m) << 29));
}

float
toF32(double a, InstrSink* sink)
{
    chargeClassed(sink, InstrClass::SoftFloat, convertCost64);
    noteOp(sink, OpClass::FloatConv);
    uint64_t b = bits64(a);
    Unpacked64 u = unpack64(b);
    if (u.isNan)
        return bitsToFloat(ieeeQuietNan);
    if (u.isInf)
        return bitsToFloat(ieeePack(static_cast<uint32_t>(u.sign),
                                    0xff, 0));
    if (u.isZero)
        return bitsToFloat(static_cast<uint32_t>(u.sign) << 31);

    // Re-round the 63-bit significand to the binary32 grid: bit 62
    // becomes bit 30 (jam the lost 32 bits into stickiness).
    uint32_t sig32 = static_cast<uint32_t>(u.sig >> 32);
    if (u.sig & 0xffffffffull)
        sig32 |= 1;
    int exp32 = u.exp - kBias64 + ieeeBias;

    // Inline binary32 round-pack (same scheme as the sf32 module).
    if (exp32 <= 0) {
        sig32 = static_cast<uint32_t>(
            shiftRightJam64(sig32, 1 - exp32));
        exp32 = 0;
    }
    uint32_t roundBits = sig32 & 0x7fu;
    uint32_t rounded = (sig32 + 0x40u) >> 7;
    if (roundBits == 0x40u)
        rounded &= ~1u;
    if (rounded & 0x1000000u) {
        rounded >>= 1;
        ++exp32;
    }
    if (exp32 == 0 && (rounded & 0x800000u))
        exp32 = 1;
    if (exp32 >= 0xff)
        return bitsToFloat(
            ieeePack(static_cast<uint32_t>(u.sign), 0xff, 0));
    if (rounded == 0)
        return bitsToFloat(static_cast<uint32_t>(u.sign) << 31);
    return bitsToFloat(ieeePack(static_cast<uint32_t>(u.sign),
                                static_cast<uint32_t>(exp32),
                                rounded & 0x7fffffu));
}

double
fromI32asF64(int32_t a, InstrSink* sink)
{
    chargeClassed(sink, InstrClass::SoftFloat, convertCost64 / 2);
    noteOp(sink, OpClass::FloatConv);
    // Every int32 is exactly representable in binary64.
    if (a == 0)
        return 0.0;
    uint64_t sign = a < 0 ? 1ull : 0ull;
    uint64_t mag = a < 0 ? static_cast<uint64_t>(-(int64_t)a)
                         : static_cast<uint64_t>(a);
    int p = 63 - countLeadingZeros64(mag);
    uint64_t mant = (mag << (52 - p)) & 0xfffffffffffffull;
    return fromBits64(pack64(sign,
                             static_cast<uint64_t>(kBias64 + p), mant));
}

int32_t
f64ToI32Floor(double a, InstrSink* sink)
{
    chargeClassed(sink, InstrClass::SoftFloat, convertCost64);
    noteOp(sink, OpClass::FloatConv);
    uint64_t b = bits64(a);
    Unpacked64 u = unpack64(b);
    if (u.isNan)
        return 0;
    if (u.isInf)
        return u.sign ? INT32_MIN : INT32_MAX;
    int e = u.exp - kBias64;
    if (e < 0)
        return u.sign && !u.isZero ? -1 : 0;
    if (e >= 31)
        return u.sign ? INT32_MIN : INT32_MAX;
    uint64_t sig53 = u.sig >> 10;
    uint64_t mag = sig53 >> (52 - e);
    bool frac = (sig53 & ((1ull << (52 - e)) - 1)) != 0 ||
                (u.sig & 0x3ffull) != 0;
    if (!u.sign)
        return static_cast<int32_t>(mag);
    int64_t v = -static_cast<int64_t>(mag);
    if (frac)
        --v;
    return static_cast<int32_t>(v);
}

} // namespace sf
} // namespace tpl
