/**
 * @file
 * Batched softfloat entry points.
 *
 * Charge discipline: every N-entry point produces exactly the charges
 * of n scalar calls. Operations with constant per-element cost charge
 * once in bulk (chargeClassN); the multiply's data-dependent IntMulDiv
 * part is recomputed per element by the same rule the scalar core uses
 * (emuMul32T's non-zero-byte row count on the non-special path) and
 * flushed as one 64-bit total. Charges are computed *before* results
 * are stored so `out` may alias an input span.
 */

#include "softfloat/softfloat_batch.h"

#include <cassert>
#include <cstring>

#include "softfloat/softfloat64.h"
#include "softfloat/softfloat_core.h"

namespace tpl {
namespace sf {

bool
simdEnabled()
{
    return TPL_SF_SIMD != 0;
}

int
simdLaneWidth()
{
    return simdLanes;
}

namespace {

#if TPL_SF_SIMD

VFloat
loadV(const float* p)
{
    VFloat v;
    std::memcpy(&v, p, sizeof v);
    return v;
}

void
storeV(float* p, VFloat v)
{
    std::memcpy(p, &v, sizeof v);
}

/**
 * Replace NaN lanes with the canonical quiet NaN (0x7fc00000): the
 * single place host IEEE results and the softfloat cores differ.
 */
VFloat
patchNan(VFloat v)
{
    for (int l = 0; l < simdLanes; ++l) {
        if (v[l] != v[l])
            v[l] = bitsToFloat(ieeeQuietNan);
    }
    return v;
}

#endif // TPL_SF_SIMD

} // namespace

void
addN(std::span<const float> a, std::span<const float> b,
     std::span<float> out, InstrSink* sink)
{
    size_t n = a.size();
    assert(b.size() == n && out.size() == n);
    if (sink && n > 0) {
        sink->chargeClassN(InstrClass::SoftFloat, core::addCharge, n);
        sink->noteN(OpClass::FloatAdd, n);
    }
    size_t i = 0;
#if TPL_SF_SIMD
    for (; i + simdLanes <= n; i += simdLanes)
        storeV(&out[i], patchNan(loadV(&a[i]) + loadV(&b[i])));
#endif
    NullSink none;
    for (; i < n; ++i)
        out[i] = addT(a[i], b[i], none);
}

void
subN(std::span<const float> a, std::span<const float> b,
     std::span<float> out, InstrSink* sink)
{
    size_t n = a.size();
    assert(b.size() == n && out.size() == n);
    if (sink && n > 0) {
        // sub = 1 (sign flip) + the add core's constant charge.
        sink->chargeClassN(InstrClass::SoftFloat, core::addCharge + 1, n);
        sink->noteN(OpClass::FloatAdd, n);
    }
    size_t i = 0;
#if TPL_SF_SIMD
    for (; i + simdLanes <= n; i += simdLanes)
        storeV(&out[i], patchNan(loadV(&a[i]) - loadV(&b[i])));
#endif
    NullSink none;
    for (; i < n; ++i)
        out[i] = subT(a[i], b[i], none);
}

void
mulN(std::span<const float> a, std::span<const float> b,
     std::span<float> out, InstrSink* sink)
{
    size_t n = a.size();
    assert(b.size() == n && out.size() == n);
    if (sink && n > 0) {
        uint64_t intCharge = 0;
        for (size_t j = 0; j < n; ++j)
            intCharge +=
                core::mulIntCharge(floatBits(a[j]), floatBits(b[j]));
        sink->chargeClassN(InstrClass::SoftFloat, core::mulCharge, n);
        if (intCharge > 0)
            sink->chargeClassN(InstrClass::IntMulDiv, 1, intCharge);
        sink->noteN(OpClass::FloatMul, n);
    }
    size_t i = 0;
#if TPL_SF_SIMD
    for (; i + simdLanes <= n; i += simdLanes)
        storeV(&out[i], patchNan(loadV(&a[i]) * loadV(&b[i])));
#endif
    NullSink none;
    for (; i < n; ++i)
        out[i] = mulT(a[i], b[i], none);
}

void
divN(std::span<const float> a, std::span<const float> b,
     std::span<float> out, InstrSink* sink)
{
    size_t n = a.size();
    assert(b.size() == n && out.size() == n);
    if (sink && n > 0) {
        sink->chargeClassN(InstrClass::SoftFloat, core::divCharge, n);
        sink->noteN(OpClass::FloatDiv, n);
    }
    size_t i = 0;
#if TPL_SF_SIMD
    for (; i + simdLanes <= n; i += simdLanes)
        storeV(&out[i], patchNan(loadV(&a[i]) / loadV(&b[i])));
#endif
    NullSink none;
    for (; i < n; ++i)
        out[i] = divT(a[i], b[i], none);
}

void
sqrtN(std::span<const float> a, std::span<float> out, InstrSink* sink)
{
    size_t n = a.size();
    assert(out.size() == n);
    if (sink && n > 0) {
        sink->chargeClassN(InstrClass::SoftFloat, core::sqrtCharge, n);
        sink->noteN(OpClass::FloatSqrt, n);
    }
    NullSink none;
    for (size_t i = 0; i < n; ++i)
        out[i] = sqrtT(a[i], none);
}

void
toI32TruncN(std::span<const float> a, std::span<int32_t> out,
            InstrSink* sink)
{
    size_t n = a.size();
    assert(out.size() == n);
    if (sink && n > 0) {
        sink->chargeClassN(InstrClass::SoftFloat, core::convertCost, n);
        sink->noteN(OpClass::FloatConv, n);
    }
    NullSink none;
    for (size_t i = 0; i < n; ++i)
        out[i] = toI32TruncT(a[i], none);
}

void
toI32FloorN(std::span<const float> a, std::span<int32_t> out,
            InstrSink* sink)
{
    size_t n = a.size();
    assert(out.size() == n);
    if (sink && n > 0) {
        sink->chargeClassN(InstrClass::SoftFloat, core::convertCost + 4,
                           n);
        sink->noteN(OpClass::FloatConv, n);
    }
    NullSink none;
    for (size_t i = 0; i < n; ++i)
        out[i] = toI32FloorT(a[i], none);
}

void
toI32RoundN(std::span<const float> a, std::span<int32_t> out,
            InstrSink* sink)
{
    size_t n = a.size();
    assert(out.size() == n);
    if (sink && n > 0) {
        sink->chargeClassN(InstrClass::SoftFloat, core::convertCost + 4,
                           n);
        sink->noteN(OpClass::FloatConv, n);
    }
    NullSink none;
    for (size_t i = 0; i < n; ++i)
        out[i] = toI32RoundT(a[i], none);
}

void
fromI32N(std::span<const int32_t> a, std::span<float> out,
         InstrSink* sink)
{
    size_t n = a.size();
    assert(out.size() == n);
    if (sink && n > 0) {
        sink->chargeClassN(InstrClass::SoftFloat, core::convertCost, n);
        sink->noteN(OpClass::FloatConv, n);
    }
    NullSink none;
    for (size_t i = 0; i < n; ++i)
        out[i] = fromI32T(a[i], none);
}

namespace {

/** Loop a binary16/64 scalar op with charges tallied, flushed once. */
template <class T, class Fn>
void
tallyLoop2(std::span<const T> a, std::span<const T> b, std::span<T> out,
           InstrSink* sink, Fn&& fn)
{
    assert(b.size() == a.size() && out.size() == a.size());
    BatchTally tally;
    TallySink ts(tally);
    InstrSink* charged = sink ? static_cast<InstrSink*>(&ts) : nullptr;
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = fn(a[i], b[i], charged);
    tally.flushTo(sink);
}

template <class In, class Out, class Fn>
void
tallyLoop1(std::span<const In> a, std::span<Out> out, InstrSink* sink,
           Fn&& fn)
{
    assert(out.size() == a.size());
    BatchTally tally;
    TallySink ts(tally);
    InstrSink* charged = sink ? static_cast<InstrSink*>(&ts) : nullptr;
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = fn(a[i], charged);
    tally.flushTo(sink);
}

} // namespace

void
add16N(std::span<const Half> a, std::span<const Half> b,
       std::span<Half> out, InstrSink* sink)
{
    tallyLoop2(a, b, out, sink,
               [](Half x, Half y, InstrSink* s) { return add16(x, y, s); });
}

void
sub16N(std::span<const Half> a, std::span<const Half> b,
       std::span<Half> out, InstrSink* sink)
{
    tallyLoop2(a, b, out, sink,
               [](Half x, Half y, InstrSink* s) { return sub16(x, y, s); });
}

void
mul16N(std::span<const Half> a, std::span<const Half> b,
       std::span<Half> out, InstrSink* sink)
{
    tallyLoop2(a, b, out, sink,
               [](Half x, Half y, InstrSink* s) { return mul16(x, y, s); });
}

void
div16N(std::span<const Half> a, std::span<const Half> b,
       std::span<Half> out, InstrSink* sink)
{
    tallyLoop2(a, b, out, sink,
               [](Half x, Half y, InstrSink* s) { return div16(x, y, s); });
}

void
toF16N(std::span<const float> a, std::span<Half> out, InstrSink* sink)
{
    tallyLoop1(a, out, sink,
               [](float x, InstrSink* s) { return toF16(x, s); });
}

void
fromF16N(std::span<const Half> a, std::span<float> out, InstrSink* sink)
{
    tallyLoop1(a, out, sink,
               [](Half x, InstrSink* s) { return fromF16(x, s); });
}

void
add64N(std::span<const double> a, std::span<const double> b,
       std::span<double> out, InstrSink* sink)
{
    tallyLoop2(a, b, out, sink, [](double x, double y, InstrSink* s) {
        return add64(x, y, s);
    });
}

void
sub64N(std::span<const double> a, std::span<const double> b,
       std::span<double> out, InstrSink* sink)
{
    tallyLoop2(a, b, out, sink, [](double x, double y, InstrSink* s) {
        return sub64(x, y, s);
    });
}

void
mul64N(std::span<const double> a, std::span<const double> b,
       std::span<double> out, InstrSink* sink)
{
    tallyLoop2(a, b, out, sink, [](double x, double y, InstrSink* s) {
        return mul64(x, y, s);
    });
}

void
div64N(std::span<const double> a, std::span<const double> b,
       std::span<double> out, InstrSink* sink)
{
    tallyLoop2(a, b, out, sink, [](double x, double y, InstrSink* s) {
        return div64(x, y, s);
    });
}

void
fromF32N(std::span<const float> a, std::span<double> out,
         InstrSink* sink)
{
    tallyLoop1(a, out, sink,
               [](float x, InstrSink* s) { return fromF32(x, s); });
}

void
toF32N(std::span<const double> a, std::span<float> out, InstrSink* sink)
{
    tallyLoop1(a, out, sink,
               [](double x, InstrSink* s) { return toF32(x, s); });
}

} // namespace sf
} // namespace tpl
