/**
 * @file
 * Inlinable IEEE-754 binary32 soft-float cores, templated on the sink.
 *
 * This header holds the full unpack / operate / round-pack
 * implementation that used to live in softfloat.cc, refactored into
 * function templates over the non-virtual Sink shape (SinkRef,
 * BatchTally, NullSink — common/instr_sink.h). The public scalar API
 * in softfloat.h is exactly these templates instantiated with SinkRef,
 * so the classic entry points and the batch execution path share one
 * set of numeric cores and one set of charge sites: they cannot
 * diverge in either values or accounting.
 *
 * See softfloat.h for the semantic contract (bit-identical to host
 * IEEE-754 binary32 under round-to-nearest-even, canonical quiet NaN,
 * instruction charges calibrated to the UPMEM runtime).
 */

#ifndef TPL_SOFTFLOAT_SOFTFLOAT_CORE_H
#define TPL_SOFTFLOAT_SOFTFLOAT_CORE_H

#include <cstdint>
#include <utility>

#include "common/bitops.h"
#include "common/emu_int.h"
#include "common/fixed_point.h"
#include "common/instr_sink.h"

namespace tpl {
namespace sf {
namespace core {

/**
 * Call/return, argument marshalling and register save/restore overhead
 * of one emulated float routine in the runtime library.
 *
 * Calibration note: with these constants the per-operation instruction
 * counts land at roughly add ~65, mul ~175, div ~330, sqrt ~330, which
 * matches the measured single-DPU throughput ratios of the UPMEM
 * runtime's emulated float operations (PrIM characterization: float
 * add/mul/div peak throughput ratios of about 1 : 2.7 : 5.5). The
 * multiply overhead in particular reflects that the runtime routine
 * manages a 48-bit product across 32-bit register pairs.
 */
inline constexpr uint32_t callOverhead = 30;

/** Unpacking one operand: load, shifts, masks, subnormal test. */
inline constexpr uint32_t unpackCost = 4;

/** Special-value screening (NaN/inf/zero) per operation. */
inline constexpr uint32_t specialsCost = 4;

/** Round-and-pack epilogue: rounding add, tie fixup, pack, range test. */
inline constexpr uint32_t roundPackCost = 10;

/** Align/add/normalize core of addition or subtraction. */
inline constexpr uint32_t addCoreCost = 12;

/** Normalization of the product + sticky collection in multiply. */
inline constexpr uint32_t mulNormCost = 8;

/**
 * Wide-product management in the multiply routine: accumulating the
 * 48-bit significand product across 32-bit register pairs, carries,
 * and double-word shifts (see the calibration note above).
 */
inline constexpr uint32_t mulWideCost = 90;

/** Per-quotient-bit cost of the float-divide div_step loop. */
inline constexpr uint32_t divBitCost = 9;

/** Quotient bits produced by the float divide (24 + guard/sticky). */
inline constexpr uint32_t divBits = 31;

/** Per-result-bit cost of the digit-recurrence square root. */
inline constexpr uint32_t sqrtBitCost = 9;

/** Result bits produced by the square-root recurrence. */
inline constexpr uint32_t sqrtBits = 31;

/** Cost of an emulated float comparison (integer compare + sign fixups). */
inline constexpr uint32_t compareCost = 10;

/**
 * Cost of float<->int conversions. These are runtime-library calls on
 * the DPU (__fixsfsi / __floatsisf style): unpack or normalize, shift
 * by a data-dependent amount, round, clamp, plus call overhead.
 */
inline constexpr uint32_t convertCost = 30;

/** Constant SoftFloat-class charge of one add/sub core invocation. */
inline constexpr uint32_t addCharge = callOverhead + 2 * unpackCost +
                                      specialsCost + addCoreCost +
                                      roundPackCost;

/** Constant SoftFloat-class part of one multiply (IntMulDiv part is
 * data-dependent, through emuMul32T on the non-special path). */
inline constexpr uint32_t mulCharge = callOverhead + 2 * unpackCost +
                                      specialsCost + mulNormCost +
                                      mulWideCost + roundPackCost;

/** Constant SoftFloat-class charge of one divide. */
inline constexpr uint32_t divCharge = callOverhead + 2 * unpackCost +
                                      specialsCost +
                                      divBits * divBitCost +
                                      roundPackCost;

/** Constant SoftFloat-class charge of one square root. */
inline constexpr uint32_t sqrtCharge = callOverhead + unpackCost +
                                       specialsCost +
                                       sqrtBits * sqrtBitCost +
                                       roundPackCost;

struct Unpacked
{
    uint32_t sign; ///< sign bit
    int exp;       ///< biased exponent; may be <= 0 for subnormals
    uint32_t sig;  ///< bit 30 set when non-zero; bits 6..0 are precision
    bool isZero;
    bool isInf;
    bool isNan;
};

inline Unpacked
unpack(uint32_t bits)
{
    Unpacked u{};
    u.sign = ieeeSign(bits);
    uint32_t e = ieeeExponent(bits);
    uint32_t m = ieeeMantissa(bits);
    if (e == 0xff) {
        u.isInf = (m == 0);
        u.isNan = (m != 0);
        u.exp = 0xff;
        u.sig = 0;
        return u;
    }
    if (e == 0) {
        if (m == 0) {
            u.isZero = true;
            u.exp = 0;
            u.sig = 0;
            return u;
        }
        // Subnormal: normalize so that bit 30 is set. A subnormal's
        // value is m * 2^(-126-23); after shifting left by s its
        // effective biased exponent becomes 8 - s.
        int s = countLeadingZeros32(m) - 1;
        u.sig = m << s;
        u.exp = 8 - s;
        return u;
    }
    u.sig = (m | 0x800000u) << 7;
    u.exp = static_cast<int>(e);
    return u;
}

/** Right shift that ORs any lost non-zero bits into the result LSB. */
inline uint32_t
shiftRightJam32(uint32_t a, int dist)
{
    if (dist <= 0)
        return a;
    if (dist >= 31)
        return a != 0 ? 1 : 0;
    uint32_t shifted = a >> dist;
    uint32_t lost = a << (32 - dist);
    return shifted | (lost != 0 ? 1 : 0);
}

/**
 * Round (to nearest even) and pack a sign/exponent/significand triple.
 * Expects sig == 0 (signed zero) or sig normalized with bit 30 set;
 * handles overflow to infinity and underflow to subnormal/zero.
 */
inline float
roundPack(uint32_t sign, int exp, uint32_t sig)
{
    if (sig == 0)
        return bitsToFloat(sign << 31);

    if (exp <= 0) {
        // Subnormal (or underflow-to-zero) result: push the significand
        // down so the exponent field becomes 0, keeping stickiness.
        sig = shiftRightJam32(sig, 1 - exp);
        exp = 0;
    }

    uint32_t roundBits = sig & 0x7fu;
    uint32_t rounded = (sig + 0x40u) >> 7;
    if (roundBits == 0x40u)
        rounded &= ~1u; // tie: round to even
    if (rounded & 0x1000000u) {
        // Carry out of the 24-bit significand.
        rounded >>= 1;
        ++exp;
    }
    if (exp == 0 && (rounded & 0x800000u)) {
        // Subnormal rounded up to the smallest normal.
        exp = 1;
    }
    if (exp >= 0xff)
        return bitsToFloat(ieeePack(sign, 0xff, 0)); // overflow -> inf
    if (rounded == 0)
        return bitsToFloat(sign << 31);

    uint32_t mant = rounded & 0x7fffffu;
    return bitsToFloat(ieeePack(sign, static_cast<uint32_t>(exp), mant));
}

inline float
quietNan()
{
    return bitsToFloat(ieeeQuietNan);
}

/** Magnitude addition of two same-sign unpacked operands. */
inline float
addMags(uint32_t sign, Unpacked a, Unpacked b)
{
    if (a.exp < b.exp || (a.exp == b.exp && a.sig < b.sig))
        std::swap(a, b);
    uint32_t sigB = shiftRightJam32(b.sig, a.exp - b.exp);
    uint32_t sum = a.sig + sigB;
    int exp = a.exp;
    if (sum & 0x80000000u) {
        sum = shiftRightJam32(sum, 1);
        ++exp;
    }
    return roundPack(sign, exp, sum);
}

/** Magnitude subtraction; sign is the sign of the larger magnitude. */
inline float
subMags(uint32_t sign, Unpacked a, Unpacked b)
{
    if (a.exp < b.exp || (a.exp == b.exp && a.sig < b.sig)) {
        std::swap(a, b);
        sign ^= 1u;
    }
    if (a.exp == b.exp && a.sig == b.sig)
        return 0.0f; // exact cancellation rounds to +0 under RNE

    uint32_t sigB = shiftRightJam32(b.sig, a.exp - b.exp);
    uint32_t diff = a.sig - sigB;
    int exp = a.exp;
    int s = countLeadingZeros32(diff) - 1;
    diff <<= s;
    exp -= s;
    return roundPack(sign, exp, diff);
}

/** Map binary32 bits onto a totally ordered signed integer line. */
inline int32_t
orderFloatBits(uint32_t bits)
{
    if (bits & 0x80000000u)
        return static_cast<int32_t>(0x80000000u - bits);
    return static_cast<int32_t>(bits);
}

inline bool
isNanBits(uint32_t bits)
{
    return ieeeExponent(bits) == 0xff && ieeeMantissa(bits) != 0;
}

/**
 * IntMulDiv charge of one scalar multiply, computed analytically: zero
 * on the special paths (NaN/inf/zero operands never reach the emulated
 * multiplier), else exactly what emuMul32T charges for the two 24-bit
 * significands. Used by the fast-value lane and the batched mulN so
 * their accounting matches the emulated core bit for bit.
 */
inline uint32_t
mulIntCharge(uint32_t bitsA, uint32_t bitsB)
{
    Unpacked a = unpack(bitsA);
    Unpacked b = unpack(bitsB);
    if (a.isNan || b.isNan || a.isInf || b.isInf || a.isZero || b.isZero)
        return 0;
    uint32_t ra = emu::nonZeroBytes(a.sig >> 7);
    uint32_t rb = emu::nonZeroBytes(b.sig >> 7);
    uint32_t rows = ra < rb ? ra : rb;
    return emu::mulBaseCost + rows * emu::mulRowCost;
}

} // namespace core

/**
 * Sinks may opt into the fast-value lane by declaring
 * `static constexpr bool fastValues = true`: the add/sub/mul/div cores
 * then compute *values* with native host IEEE-754 arithmetic (patching
 * NaN results to the canonical quiet NaN) while keeping every charge
 * and note identical to the emulated lane. This is valid because the
 * emulated binary32 cores are bit-identical to host round-to-nearest-
 * even for every non-NaN result and always return the canonical quiet
 * NaN otherwise — the exact property the exhaustive binary16 and 1M-
 * random binary32 differential tests lock. The batch execution path's
 * sinks opt in; SinkRef does not, so the public scalar API always runs
 * the emulated cores.
 */
template <class S>
inline constexpr bool sinkFastValues = [] {
    if constexpr (requires { S::fastValues; })
        return static_cast<bool>(S::fastValues);
    else
        return false;
}();

/** Emulated binary32 addition (round-to-nearest-even). */
template <class S>
inline float
addT(float fa, float fb, S& s)
{
    s.chargeClass(InstrClass::SoftFloat, core::addCharge);
    s.note(OpClass::FloatAdd);
    if constexpr (sinkFastValues<S>) {
        float r = fa + fb;
        return r != r ? core::quietNan() : r;
    }
    core::Unpacked a = core::unpack(floatBits(fa));
    core::Unpacked b = core::unpack(floatBits(fb));

    if (a.isNan || b.isNan)
        return core::quietNan();
    if (a.isInf) {
        if (b.isInf && a.sign != b.sign)
            return core::quietNan();
        return fa;
    }
    if (b.isInf)
        return fb;
    if (a.isZero && b.isZero)
        return bitsToFloat((a.sign & b.sign) << 31);
    if (a.isZero)
        return fb;
    if (b.isZero)
        return fa;

    if (a.sign == b.sign)
        return core::addMags(a.sign, a, b);
    return core::subMags(a.sign, a, b);
}

/** Emulated binary32 subtraction. */
template <class S>
inline float
subT(float fa, float fb, S& s)
{
    // a - b == a + (-b); the DPU sequence flips the sign bit first.
    s.chargeClass(InstrClass::SoftFloat, 1);
    return addT(fa, bitsToFloat(floatBits(fb) ^ 0x80000000u), s);
}

/** Emulated binary32 multiplication. */
template <class S>
inline float
mulT(float fa, float fb, S& s)
{
    s.chargeClass(InstrClass::SoftFloat, core::mulCharge);
    s.note(OpClass::FloatMul);
    if constexpr (sinkFastValues<S>) {
        // Same data-dependent IntMulDiv charge the emulated lane's
        // emuMul32T produces on the non-special path.
        uint32_t ic = core::mulIntCharge(floatBits(fa), floatBits(fb));
        if (ic)
            s.chargeClass(InstrClass::IntMulDiv, ic);
        float r = fa * fb;
        return r != r ? core::quietNan() : r;
    }
    core::Unpacked a = core::unpack(floatBits(fa));
    core::Unpacked b = core::unpack(floatBits(fb));
    uint32_t sign = a.sign ^ b.sign;

    if (a.isNan || b.isNan)
        return core::quietNan();
    if (a.isInf || b.isInf) {
        if (a.isZero || b.isZero)
            return core::quietNan(); // inf * 0
        return bitsToFloat(ieeePack(sign, 0xff, 0));
    }
    if (a.isZero || b.isZero)
        return bitsToFloat(sign << 31);

    // 24x24-bit significand product through the emulated multiplier.
    uint32_t sig24A = a.sig >> 7;
    uint32_t sig24B = b.sig >> 7;
    uint64_t prod = emuMul32T(sig24A, sig24B, s);

    int exp;
    uint32_t sig;
    if (prod & (1ull << 47)) {
        sig = static_cast<uint32_t>(prod >> 17);
        sig |= (prod & 0x1ffffu) != 0 ? 1u : 0u;
        exp = a.exp + b.exp - 126;
    } else {
        sig = static_cast<uint32_t>(prod >> 16);
        sig |= (prod & 0xffffu) != 0 ? 1u : 0u;
        exp = a.exp + b.exp - 127;
    }
    return core::roundPack(sign, exp, sig);
}

/** Emulated binary32 division. */
template <class S>
inline float
divT(float fa, float fb, S& s)
{
    s.chargeClass(InstrClass::SoftFloat, core::divCharge);
    s.note(OpClass::FloatDiv);
    if constexpr (sinkFastValues<S>) {
        float r = fa / fb;
        return r != r ? core::quietNan() : r;
    }
    core::Unpacked a = core::unpack(floatBits(fa));
    core::Unpacked b = core::unpack(floatBits(fb));
    uint32_t sign = a.sign ^ b.sign;

    if (a.isNan || b.isNan)
        return core::quietNan();
    if (a.isInf) {
        if (b.isInf)
            return core::quietNan();
        return bitsToFloat(ieeePack(sign, 0xff, 0));
    }
    if (b.isInf)
        return bitsToFloat(sign << 31);
    if (b.isZero) {
        if (a.isZero)
            return core::quietNan(); // 0 / 0
        return bitsToFloat(ieeePack(sign, 0xff, 0));
    }
    if (a.isZero)
        return bitsToFloat(sign << 31);

    uint32_t a24 = a.sig >> 7;
    uint32_t b24 = b.sig >> 7;
    int exp = a.exp - b.exp + 127;
    if (a24 < b24) {
        a24 <<= 1;
        --exp;
    }
    // Long division producing a 31-bit quotient (bit 30 set) + sticky.
    uint64_t num = static_cast<uint64_t>(a24) << 30;
    uint32_t q = static_cast<uint32_t>(num / b24);
    uint32_t rem = static_cast<uint32_t>(num % b24);
    uint32_t sig = q | (rem != 0 ? 1u : 0u);
    return core::roundPack(sign, exp, sig);
}

/** Emulated binary32 square root (digit-recurrence). */
template <class S>
inline float
sqrtT(float fa, S& s)
{
    s.chargeClass(InstrClass::SoftFloat, core::sqrtCharge);
    s.note(OpClass::FloatSqrt);
    uint32_t bits = floatBits(fa);
    core::Unpacked a = core::unpack(bits);

    if (a.isNan)
        return core::quietNan();
    if (a.isZero)
        return fa; // sqrt(+-0) = +-0
    if (a.sign)
        return core::quietNan(); // negative non-zero
    if (a.isInf)
        return fa;

    int e = a.exp - 127; // unbiased exponent
    uint32_t a24 = a.sig >> 7;
    uint64_t radicand;
    int rexp;
    if (e & 1) {
        // Odd exponent: fold one factor of two into the significand.
        // (works for negative odd e as well: (e-1) is even)
        radicand = static_cast<uint64_t>(a24) << 1;
        rexp = (e - 1) / 2 + 127;
    } else {
        radicand = a24;
        rexp = e / 2 + 127;
    }
    // Integer square root of radicand * 2^37: result has bit 30 set.
    uint64_t n = radicand << 37;
    uint64_t sq = 0;
    uint64_t rem = 0;
    for (int i = 62; i >= 0; i -= 2) {
        rem = (rem << 2) | ((n >> i) & 3u);
        uint64_t trial = (sq << 2) | 1u;
        sq <<= 1;
        if (trial <= rem) {
            rem -= trial;
            sq |= 1u;
        }
    }
    uint32_t sig = static_cast<uint32_t>(sq) | (rem != 0 ? 1u : 0u);
    return core::roundPack(0, rexp, sig);
}

/** Sign flip; one instruction on the DPU (xor with sign mask). */
template <class S>
inline float
negT(float a, S& s)
{
    s.chargeClass(InstrClass::SoftFloat, 1);
    return bitsToFloat(floatBits(a) ^ 0x80000000u);
}

/** Absolute value; one instruction (and with ~sign mask). */
template <class S>
inline float
absT(float a, S& s)
{
    s.chargeClass(InstrClass::SoftFloat, 1);
    return bitsToFloat(floatBits(a) & 0x7fffffffu);
}

/** Emulated ordered comparison a < b. */
template <class S>
inline bool
ltT(float a, float b, S& s)
{
    s.chargeClass(InstrClass::SoftFloat, core::compareCost);
    s.note(OpClass::FloatCmp);
    uint32_t ua = floatBits(a);
    uint32_t ub = floatBits(b);
    if (core::isNanBits(ua) || core::isNanBits(ub))
        return false;
    // -0 == +0 under IEEE comparison.
    if (((ua | ub) & 0x7fffffffu) == 0)
        return false;
    return core::orderFloatBits(ua) < core::orderFloatBits(ub);
}

/** Emulated ordered comparison a <= b. */
template <class S>
inline bool
leT(float a, float b, S& s)
{
    s.chargeClass(InstrClass::SoftFloat, core::compareCost);
    s.note(OpClass::FloatCmp);
    uint32_t ua = floatBits(a);
    uint32_t ub = floatBits(b);
    if (core::isNanBits(ua) || core::isNanBits(ub))
        return false;
    if (((ua | ub) & 0x7fffffffu) == 0)
        return true;
    return core::orderFloatBits(ua) <= core::orderFloatBits(ub);
}

/** Emulated equality comparison (0 == -0, NaN != NaN). */
template <class S>
inline bool
eqT(float a, float b, S& s)
{
    s.chargeClass(InstrClass::SoftFloat, core::compareCost);
    s.note(OpClass::FloatCmp);
    uint32_t ua = floatBits(a);
    uint32_t ub = floatBits(b);
    if (core::isNanBits(ua) || core::isNanBits(ub))
        return false;
    if (((ua | ub) & 0x7fffffffu) == 0)
        return true;
    return ua == ub;
}

/** Convert float to int32 truncating toward zero (C cast semantics). */
template <class S>
inline int32_t
toI32TruncT(float a, S& s)
{
    s.chargeClass(InstrClass::SoftFloat, core::convertCost);
    s.note(OpClass::FloatConv);
    uint32_t bits = floatBits(a);
    if (core::isNanBits(bits))
        return 0;
    uint32_t sign = ieeeSign(bits);
    int e = static_cast<int>(ieeeExponent(bits)) - ieeeBias;
    if (e < 0)
        return 0;
    if (e >= 31) {
        // Saturate (C leaves this undefined; the DPU sequence clamps).
        return sign ? INT32_MIN : INT32_MAX;
    }
    uint32_t sig = ieeeMantissa(bits) | 0x800000u;
    uint32_t mag = e >= 23 ? sig << (e - 23) : sig >> (23 - e);
    return sign ? -static_cast<int32_t>(mag) : static_cast<int32_t>(mag);
}

/** Convert float to int32 rounding toward negative infinity. */
template <class S>
inline int32_t
toI32FloorT(float a, S& s)
{
    s.chargeClass(InstrClass::SoftFloat, core::convertCost + 4);
    s.note(OpClass::FloatConv);
    uint32_t bits = floatBits(a);
    if (core::isNanBits(bits))
        return 0;
    NullSink none;
    int32_t t = toI32TruncT(a, none);
    if ((bits & 0x80000000u) &&
        static_cast<float>(t) != a && t != INT32_MIN) {
        return t - 1;
    }
    return t;
}

/** Convert float to int32 rounding to nearest (ties away from zero). */
template <class S>
inline int32_t
toI32RoundT(float a, S& s)
{
    s.chargeClass(InstrClass::SoftFloat, core::convertCost + 4);
    s.note(OpClass::FloatConv);
    uint32_t bits = floatBits(a);
    if (core::isNanBits(bits))
        return 0;
    uint32_t sign = ieeeSign(bits);
    int e = static_cast<int>(ieeeExponent(bits)) - ieeeBias;
    if (e < -1)
        return 0;
    if (e >= 31)
        return sign ? INT32_MIN : INT32_MAX;
    uint64_t sig = ieeeMantissa(bits) | 0x800000u;
    // Value = sig * 2^(e-23); round half away from zero.
    int shift = 23 - e;
    uint64_t mag;
    if (shift <= 0) {
        mag = sig << (-shift);
    } else {
        uint64_t half = 1ull << (shift - 1);
        mag = (sig + half) >> shift;
    }
    return sign ? -static_cast<int32_t>(mag) : static_cast<int32_t>(mag);
}

/** Convert int32 to the nearest binary32. */
template <class S>
inline float
fromI32T(int32_t a, S& s)
{
    s.chargeClass(InstrClass::SoftFloat, core::convertCost);
    s.note(OpClass::FloatConv);
    if (a == 0)
        return 0.0f;
    uint32_t sign = a < 0 ? 1u : 0u;
    uint32_t mag = a < 0 ? static_cast<uint32_t>(-(int64_t)a)
                         : static_cast<uint32_t>(a);
    int p = 31 - countLeadingZeros32(mag); // msb position
    uint32_t sig;
    if (p <= 30)
        sig = mag << (30 - p);
    else
        sig = core::shiftRightJam32(mag, p - 30);
    return core::roundPack(sign, ieeeBias + p, sig);
}

/**
 * Convert a binary32 value to Q3.28 fixed point (round to nearest).
 * See softfloat.h for the saturation contract.
 */
template <class S>
inline Fixed
toFixedT(float a, S& s)
{
    // Shift the significand so the binary point sits at bit 28, round
    // to nearest (half away from zero), preserving the DPU instruction
    // shape: exponent extract, shift, conditional negate.
    s.chargeClass(InstrClass::SoftFloat, core::convertCost + 2);
    s.note(OpClass::FloatConv);
    uint32_t bits = floatBits(a);
    if (core::isNanBits(bits))
        return Fixed::fromRaw(0);
    uint32_t sign = ieeeSign(bits);
    int e = static_cast<int>(ieeeExponent(bits));
    if (e == 0)
        return Fixed::fromRaw(0); // subnormals (< 2^-126) round to 0
    int shift = 23 - (e - ieeeBias) - Fixed::fracBits; // right-shift amount
    uint64_t sig = ieeeMantissa(bits) | 0x800000u;
    uint64_t mag;
    if (shift <= 0) {
        if (shift < -31)
            mag = 1ull << 40; // force saturation below
        else
            mag = sig << (-shift);
    } else if (shift > 40) {
        mag = 0;
    } else {
        uint64_t half = 1ull << (shift - 1);
        mag = (sig + half) >> shift;
    }
    // Saturate at the Q3.28 range instead of wrapping (values at or
    // beyond +-8.0 clamp to the nearest representable), matching what
    // a careful DPU conversion routine does.
    if (sign) {
        if (mag > 0x80000000ull)
            mag = 0x80000000ull;
        return Fixed::fromRaw(static_cast<int32_t>(
            -static_cast<int64_t>(mag)));
    }
    if (mag > 0x7fffffffull)
        mag = 0x7fffffffull;
    return Fixed::fromRaw(static_cast<int32_t>(mag));
}

/** Convert a Q3.28 fixed-point value to the nearest binary32. */
template <class S>
inline float
fromFixedT(Fixed a, S& s)
{
    s.chargeClass(InstrClass::SoftFloat, core::convertCost + 2);
    s.note(OpClass::FloatConv);
    int32_t raw = a.raw();
    if (raw == 0)
        return 0.0f;
    uint32_t sign = raw < 0 ? 1u : 0u;
    uint32_t mag = raw < 0 ? static_cast<uint32_t>(-(int64_t)raw)
                           : static_cast<uint32_t>(raw);
    int p = 31 - countLeadingZeros32(mag);
    uint32_t sig;
    if (p <= 30)
        sig = mag << (30 - p);
    else
        sig = core::shiftRightJam32(mag, p - 30);
    // Value = mag * 2^-28, so the biased exponent is p - 28 + bias.
    return core::roundPack(sign, ieeeBias + p - Fixed::fracBits, sig);
}

} // namespace sf
} // namespace tpl

#endif // TPL_SOFTFLOAT_SOFTFLOAT_CORE_H
