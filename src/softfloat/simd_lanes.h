/**
 * @file
 * Lane-width-generic SIMD support for the batched softfloat paths.
 *
 * The vector kernels are written against GCC/Clang vector extensions
 * (`__attribute__((vector_size)))`) instead of per-ISA intrinsics: one
 * template-free kernel compiles to SSE2, AVX2 or NEON depending on the
 * target flags, and to scalar lowering everywhere else. The lane path
 * is valid because the binary32 softfloat tier is bit-identical to
 * host IEEE-754 arithmetic under round-to-nearest-even for every
 * non-NaN result (verified exhaustively by the softfloat test tier);
 * the only divergence — NaN payloads, where softfloat always returns
 * the canonical quiet NaN 0x7fc00000 — is repaired by patching
 * NaN-result lanes after the vector op.
 *
 * Gate: the lane path is compiled only when the build defines
 * TPL_SOFTFLOAT_SIMD=1 (CMake option of the same name, default ON) on
 * a GCC/Clang compiler. The scalar fallback (the same inlined cores in
 * softfloat_core.h) is always available and bit-identical; the
 * TPL_TIER1_SIMD CI leg builds and tests both configurations.
 */

#ifndef TPL_SOFTFLOAT_SIMD_LANES_H
#define TPL_SOFTFLOAT_SIMD_LANES_H

#include <cstdint>

namespace tpl {
namespace sf {

#if defined(TPL_SOFTFLOAT_SIMD) && TPL_SOFTFLOAT_SIMD &&                   \
    (defined(__GNUC__) || defined(__clang__))
#define TPL_SF_SIMD 1

/** Lanes per vector: 8 with AVX/AVX2, else 4 (SSE2/NEON/generic). */
#if defined(__AVX2__) || defined(__AVX__)
inline constexpr int simdLanes = 8;
#else
inline constexpr int simdLanes = 4;
#endif

/** One SIMD register of binary32 lanes. */
typedef float VFloat
    __attribute__((vector_size(simdLanes * sizeof(float))));

/** One SIMD register of 32-bit integer lanes (bit manipulation). */
typedef uint32_t VBits
    __attribute__((vector_size(simdLanes * sizeof(uint32_t))));

#else
#define TPL_SF_SIMD 0

/** Lane width 1: every batched entry point runs the scalar cores. */
inline constexpr int simdLanes = 1;

#endif

/** True when this build's batched softfloat uses the SIMD lane path. */
bool simdEnabled();

/** Lane width the batched entry points advance by (1 when scalar). */
int simdLaneWidth();

} // namespace sf
} // namespace tpl

#endif // TPL_SOFTFLOAT_SIMD_LANES_H
