/**
 * @file
 * Bit-exact IEEE-754 binary64 software floating point, instrumented.
 *
 * The UPMEM runtime also emulates double precision (at roughly 2-4x
 * the cost of the binary32 routines: double-word significands, a
 * 53x53-bit product from four 32-bit multiplies). This module provides
 * that tier so experiments can ask what double-precision tables and
 * arithmetic would buy - e.g. the paper's observation 5 (the accuracy
 * floor near RMSE 1e-8 comes from binary32) is probed directly by the
 * ablation_precision bench.
 *
 * Same conventions as the binary32 module: results bit-identical to
 * host IEEE-754 binary64 under round-to-nearest-even (verified in
 * tests/softfloat64_test.cc), canonical quiet NaNs, and per-operation
 * instruction charges through InstrSink.
 */

#ifndef TPL_SOFTFLOAT_SOFTFLOAT64_H
#define TPL_SOFTFLOAT_SOFTFLOAT64_H

#include <cstdint>

#include "common/instr_sink.h"

namespace tpl {
namespace sf {

/** Emulated binary64 addition (round-to-nearest-even). */
double add64(double a, double b, InstrSink* sink = nullptr);

/** Emulated binary64 subtraction. */
double sub64(double a, double b, InstrSink* sink = nullptr);

/** Emulated binary64 multiplication. */
double mul64(double a, double b, InstrSink* sink = nullptr);

/** Emulated binary64 division. */
double div64(double a, double b, InstrSink* sink = nullptr);

/** Widen binary32 to binary64 (exact). */
double fromF32(float a, InstrSink* sink = nullptr);

/** Narrow binary64 to binary32 (round-to-nearest-even). */
float toF32(double a, InstrSink* sink = nullptr);

/** Convert int32 to binary64 (exact). */
double fromI32asF64(int32_t a, InstrSink* sink = nullptr);

/** Convert binary64 to int32, rounding toward negative infinity. */
int32_t f64ToI32Floor(double a, InstrSink* sink = nullptr);

} // namespace sf
} // namespace tpl

#endif // TPL_SOFTFLOAT_SOFTFLOAT64_H
