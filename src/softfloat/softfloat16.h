/**
 * @file
 * IEEE-754 binary16 (half precision) software floating point.
 *
 * HBM-PIM's processing elements compute natively in FP16; this tier
 * lets the precision ladder run in both directions from the paper's
 * binary32 (see ablation_precision): binary16 tables halve the memory
 * and cheapen the emulated arithmetic, at an accuracy floor around the
 * 2^-11 half grid.
 *
 * Representation: a `Half` is the raw 16-bit pattern. Arithmetic is
 * performed by widening to the (bit-exact) binary32 tier and rounding
 * the result back to binary16 - correctly rounded, because binary32's
 * 24-bit significand exceeds 2x11+2 bits, so no double-rounding error
 * can occur (verified against the compiler's _Float16 arithmetic in
 * tests/softfloat16_test.cc).
 *
 * Instruction charges reflect a 32-bit core where 16-bit emulated
 * float routines shuffle half-width significands: cheaper than the
 * binary32 tier by roughly the significand-width ratio.
 */

#ifndef TPL_SOFTFLOAT_SOFTFLOAT16_H
#define TPL_SOFTFLOAT_SOFTFLOAT16_H

#include <cstdint>

#include "common/instr_sink.h"

namespace tpl {
namespace sf {

/** Raw binary16 value. */
struct Half
{
    uint16_t bits = 0;

    constexpr bool operator==(const Half&) const = default;
};

/** Convert binary32 to binary16 (round-to-nearest-even). */
Half toF16(float a, InstrSink* sink = nullptr);

/** Convert binary16 to binary32 (exact). */
float fromF16(Half a, InstrSink* sink = nullptr);

/** Emulated binary16 addition (correctly rounded). */
Half add16(Half a, Half b, InstrSink* sink = nullptr);

/** Emulated binary16 subtraction. */
Half sub16(Half a, Half b, InstrSink* sink = nullptr);

/** Emulated binary16 multiplication. */
Half mul16(Half a, Half b, InstrSink* sink = nullptr);

/** Emulated binary16 division. */
Half div16(Half a, Half b, InstrSink* sink = nullptr);

} // namespace sf
} // namespace tpl

#endif // TPL_SOFTFLOAT_SOFTFLOAT16_H
