/**
 * @file
 * Batched softfloat entry points over contiguous spans.
 *
 * Each N-suffixed function is semantically n invocations of the
 * corresponding scalar operation: out[i] = op(a[i], b[i]) for every i,
 * with exactly the instruction charges and operation notes the n
 * scalar calls would have produced — flushed to the sink in bulk
 * (InstrSink::chargeClassN / noteN) instead of per element.
 *
 * The binary32 elementwise ops (addN/subN/mulN/divN) take the SIMD
 * lane path when the build enables it (simd_lanes.h): native vector
 * arithmetic with NaN-result lanes patched to the canonical quiet NaN,
 * bit-identical to the scalar cores. Everything else (conversions,
 * sqrt, the binary16/64 tiers) runs the inlined scalar cores in a
 * tight loop. All spans must have equal lengths (out may alias a or
 * b); empty spans are no-ops that charge nothing.
 */

#ifndef TPL_SOFTFLOAT_SOFTFLOAT_BATCH_H
#define TPL_SOFTFLOAT_SOFTFLOAT_BATCH_H

#include <cstdint>
#include <span>

#include "common/instr_sink.h"
#include "softfloat/simd_lanes.h"
#include "softfloat/softfloat16.h"

namespace tpl {
namespace sf {

/// @name Batched binary32 arithmetic (SIMD lane path when enabled)
/// @{

/** out[i] = add(a[i], b[i]). */
void addN(std::span<const float> a, std::span<const float> b,
          std::span<float> out, InstrSink* sink = nullptr);

/** out[i] = sub(a[i], b[i]). */
void subN(std::span<const float> a, std::span<const float> b,
          std::span<float> out, InstrSink* sink = nullptr);

/** out[i] = mul(a[i], b[i]) (data-dependent IntMulDiv charges kept). */
void mulN(std::span<const float> a, std::span<const float> b,
          std::span<float> out, InstrSink* sink = nullptr);

/** out[i] = div(a[i], b[i]). */
void divN(std::span<const float> a, std::span<const float> b,
          std::span<float> out, InstrSink* sink = nullptr);

/** out[i] = sqrt(a[i]). */
void sqrtN(std::span<const float> a, std::span<float> out,
           InstrSink* sink = nullptr);

/// @}
/// @name Batched binary32 conversions
/// @{

/** out[i] = toI32Trunc(a[i]). */
void toI32TruncN(std::span<const float> a, std::span<int32_t> out,
                 InstrSink* sink = nullptr);

/** out[i] = toI32Floor(a[i]). */
void toI32FloorN(std::span<const float> a, std::span<int32_t> out,
                 InstrSink* sink = nullptr);

/** out[i] = toI32Round(a[i]). */
void toI32RoundN(std::span<const float> a, std::span<int32_t> out,
                 InstrSink* sink = nullptr);

/** out[i] = fromI32(a[i]). */
void fromI32N(std::span<const int32_t> a, std::span<float> out,
              InstrSink* sink = nullptr);

/// @}
/// @name Batched binary16 tier
/// @{

/** out[i] = add16(a[i], b[i]). */
void add16N(std::span<const Half> a, std::span<const Half> b,
            std::span<Half> out, InstrSink* sink = nullptr);

/** out[i] = sub16(a[i], b[i]). */
void sub16N(std::span<const Half> a, std::span<const Half> b,
            std::span<Half> out, InstrSink* sink = nullptr);

/** out[i] = mul16(a[i], b[i]). */
void mul16N(std::span<const Half> a, std::span<const Half> b,
            std::span<Half> out, InstrSink* sink = nullptr);

/** out[i] = div16(a[i], b[i]). */
void div16N(std::span<const Half> a, std::span<const Half> b,
            std::span<Half> out, InstrSink* sink = nullptr);

/** out[i] = toF16(a[i]) (binary32 -> binary16 conversion). */
void toF16N(std::span<const float> a, std::span<Half> out,
            InstrSink* sink = nullptr);

/** out[i] = fromF16(a[i]) (binary16 -> binary32 conversion). */
void fromF16N(std::span<const Half> a, std::span<float> out,
              InstrSink* sink = nullptr);

/// @}
/// @name Batched binary64 tier
/// @{

/** out[i] = add64(a[i], b[i]). */
void add64N(std::span<const double> a, std::span<const double> b,
            std::span<double> out, InstrSink* sink = nullptr);

/** out[i] = sub64(a[i], b[i]). */
void sub64N(std::span<const double> a, std::span<const double> b,
            std::span<double> out, InstrSink* sink = nullptr);

/** out[i] = mul64(a[i], b[i]). */
void mul64N(std::span<const double> a, std::span<const double> b,
            std::span<double> out, InstrSink* sink = nullptr);

/** out[i] = div64(a[i], b[i]). */
void div64N(std::span<const double> a, std::span<const double> b,
            std::span<double> out, InstrSink* sink = nullptr);

/** out[i] = fromF32(a[i]) (binary32 -> binary64 conversion). */
void fromF32N(std::span<const float> a, std::span<double> out,
              InstrSink* sink = nullptr);

/** out[i] = toF32(a[i]) (binary64 -> binary32 conversion). */
void toF32N(std::span<const double> a, std::span<float> out,
            InstrSink* sink = nullptr);

/// @}

} // namespace sf
} // namespace tpl

#endif // TPL_SOFTFLOAT_SOFTFLOAT_BATCH_H
