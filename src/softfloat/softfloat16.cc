/**
 * @file
 * Binary16 software floating point implementation.
 */

#include "softfloat/softfloat16.h"

#include "common/bitops.h"
#include "softfloat/softfloat.h"

namespace tpl {
namespace sf {

namespace {

/// @name Cost calibration: half-width emulated routines on a 32-bit
/// core (single-word significand handling throughout, an 11x11
/// product in one hardware multiply step).
/// @{
constexpr uint32_t addCost16 = 40;
constexpr uint32_t mulCost16 = 80;
constexpr uint32_t divCost16 = 150;
constexpr uint32_t convCost16 = 12;
/// @}

constexpr uint16_t kNan16 = 0x7e00;
constexpr uint16_t kInf16 = 0x7c00;

} // namespace

Half
toF16(float a, InstrSink* sink)
{
    chargeClassed(sink, InstrClass::SoftFloat, convCost16);
    noteOp(sink, OpClass::FloatConv);
    uint32_t bits = floatBits(a);
    uint32_t sign16 = (bits >> 16) & 0x8000u;
    uint32_t e32 = ieeeExponent(bits);
    uint32_t m = ieeeMantissa(bits);

    if (e32 == 0xff) {
        if (m != 0)
            return {kNan16};
        return {static_cast<uint16_t>(sign16 | kInf16)};
    }
    if (e32 == 0) {
        // Binary32 subnormals are far below the binary16 grid.
        return {static_cast<uint16_t>(sign16)};
    }

    int e16 = static_cast<int>(e32) - 127 + 15;
    if (e16 >= 31)
        return {static_cast<uint16_t>(sign16 | kInf16)};

    uint32_t sig = m | 0x800000u;
    if (e16 >= 1) {
        uint32_t keep = sig >> 13;
        uint32_t rem = sig & 0x1fffu;
        if (rem > 0x1000u || (rem == 0x1000u && (keep & 1u)))
            ++keep;
        if (keep == 0x800u) {
            keep = 0x400u;
            ++e16;
            if (e16 >= 31)
                return {static_cast<uint16_t>(sign16 | kInf16)};
        }
        return {static_cast<uint16_t>(
            sign16 | (static_cast<uint32_t>(e16) << 10) |
            (keep & 0x3ffu))};
    }

    // Subnormal binary16 result: shift further with RNE.
    int rshift = 13 + (1 - e16);
    if (rshift > 26)
        return {static_cast<uint16_t>(sign16)};
    uint32_t keep = sig >> rshift;
    uint32_t rem = sig & ((1u << rshift) - 1u);
    uint32_t half = 1u << (rshift - 1);
    if (rem > half || (rem == half && (keep & 1u)))
        ++keep;
    // A carry into bit 10 lands in the exponent field = smallest
    // normal, which is exactly right.
    return {static_cast<uint16_t>(sign16 | keep)};
}

float
fromF16(Half a, InstrSink* sink)
{
    chargeClassed(sink, InstrClass::SoftFloat, convCost16);
    noteOp(sink, OpClass::FloatConv);
    uint32_t sign = (a.bits & 0x8000u) << 16;
    uint32_t e = (a.bits >> 10) & 0x1fu;
    uint32_t m = a.bits & 0x3ffu;
    if (e == 31) {
        if (m != 0)
            return bitsToFloat(ieeeQuietNan);
        return bitsToFloat(sign | ieeePosInf);
    }
    if (e == 0) {
        if (m == 0)
            return bitsToFloat(sign);
        // Subnormal half: normalize into a binary32 normal.
        int s = countLeadingZeros32(m) - 21; // bit 10 target
        m <<= s;
        uint32_t exp32 = 127 - 15 - s + 1;
        return bitsToFloat(sign | (exp32 << 23) |
                           ((m & 0x3ffu) << 13));
    }
    return bitsToFloat(sign | ((e - 15 + 127) << 23) | (m << 13));
}

namespace {

/** Widen, run the binary32 op (values only), round back, charge. */
template <typename Op>
Half
via32(Half a, Half b, uint32_t cost, OpClass opClass, InstrSink* sink,
      Op&& op)
{
    // Correctly rounded: binary32 carries > 2*11 + 2 significand bits,
    // so rounding the binary32 result to binary16 equals rounding the
    // exact result.
    chargeClassed(sink, InstrClass::SoftFloat, cost);
    noteOp(sink, opClass);
    float fa = fromF16(a, nullptr);
    float fb = fromF16(b, nullptr);
    float r = op(fa, fb);
    return toF16(r, nullptr);
}

} // namespace

Half
add16(Half a, Half b, InstrSink* sink)
{
    return via32(a, b, addCost16, OpClass::FloatAdd, sink,
                 [](float x, float y) { return sf::add(x, y); });
}

Half
sub16(Half a, Half b, InstrSink* sink)
{
    return via32(a, b, addCost16, OpClass::FloatAdd, sink,
                 [](float x, float y) { return sf::sub(x, y); });
}

Half
mul16(Half a, Half b, InstrSink* sink)
{
    return via32(a, b, mulCost16, OpClass::FloatMul, sink,
                 [](float x, float y) { return sf::mul(x, y); });
}

Half
div16(Half a, Half b, InstrSink* sink)
{
    return via32(a, b, divCost16, OpClass::FloatDiv, sink,
                 [](float x, float y) { return sf::div(x, y); });
}

} // namespace sf
} // namespace tpl
