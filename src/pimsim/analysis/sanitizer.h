/**
 * @file
 * pimcheck layer 2: opt-in runtime sanitizer for simulated kernels.
 *
 * The static verifier (verify.h) only sees statically-known addresses;
 * the sanitizer watches the accesses a kernel *actually makes* while
 * it runs on the simulator:
 *
 *  - **Shadow WRAM**: a byte-granular init bitmap, poisoned when the
 *    sanitizer is attached. Host staging through
 *    `DpuCore::hostWriteWram` and kernel stores / inbound DMA mark
 *    bytes initialized; a load touching a poisoned byte reports
 *    `UninitWramLoad`.
 *  - **Bounds**: WRAM and MRAM accesses outside the scratchpad / bank
 *    report structured diagnostics (in addition to the simulator's
 *    hard exception).
 *  - **DMA legality**: every simulated DMA is checked for the UPMEM
 *    rules (8-byte aligned addresses, size a non-zero multiple of 8,
 *    at most `maxDmaBytes` per transfer).
 *  - **Race detection (happens-before-lite)**: per 4-byte WRAM word
 *    the sanitizer records the last-writer tasklet and the barrier
 *    epoch it wrote in. A read or write by a different tasklet races
 *    unless the writer's epoch predates the accessor's current epoch,
 *    i.e. unless a `barrier` separates the pair. Write-after-read
 *    conflicts are not tracked (hence "lite").
 *
 * The sanitizer only observes: it charges no instructions and touches
 * no cost counters, so modeled cycle/instruction/DMA statistics are
 * bit-identical with and without it (asserted by a determinism test).
 * It is attached to a `DpuCore` with `setSanitizer()` and is off by
 * default.
 */

#ifndef TPL_PIMSIM_ANALYSIS_SANITIZER_H
#define TPL_PIMSIM_ANALYSIS_SANITIZER_H

#include <cstdint>
#include <set>
#include <tuple>
#include <vector>

#include "pimsim/analysis/diag.h"
#include "pimsim/dpu.h"

namespace tpl {
namespace sim {
namespace check {

/** Which runtime checks are armed. All on by default. */
struct CheckConfig
{
    bool poisonWram = true;  ///< uninitialized-load detection
    bool checkBounds = true; ///< WRAM/MRAM bounds diagnostics
    bool checkDma = true;    ///< DMA alignment/size legality
    bool detectRaces = true; ///< cross-tasklet WRAM conflicts
    uint32_t maxDmaBytes = 2048;  ///< UPMEM per-transfer cap
    size_t maxDiagnostics = 256;  ///< flood guard
};

/**
 * Runtime sanitizer state for one DpuCore. Attach with
 * `core.setSanitizer(&sanitizer)`; the core does not own it.
 */
class Sanitizer
{
  public:
    Sanitizer(uint32_t wramBytes, uint64_t mramBytes,
              const CheckConfig& config = {});

    /** Convenience: size the shadow from a core's cost model. */
    explicit Sanitizer(const DpuCore& core,
                       const CheckConfig& config = {});

    const CheckConfig& config() const { return config_; }

    /** Re-poison the whole WRAM shadow (fresh kernel program). */
    void poisonWram();

    /**
     * Mark @p size bytes at @p addr as initialized — the host staged
     * data there (DpuCore::hostWriteWram calls this).
     */
    void markWramInitialized(uint32_t addr, uint64_t size);

    /**
     * Called by DpuCore::launch: resets the race-detector state (the
     * previous launch's completion is a synchronization point) and the
     * per-tasklet barrier epochs. The init shadow persists — tables
     * staged before the launch stay valid.
     */
    void beginLaunch(uint32_t numTasklets);

    /// @name Access hooks (line 0 = no assembly line, e.g. C++ kernel)
    /// @{
    void onWramLoad(uint32_t tasklet, uint32_t addr, uint32_t size,
                    uint32_t line);
    void onWramStore(uint32_t tasklet, uint32_t addr, uint32_t size,
                     uint32_t line);
    /** @p wramAddr is the WRAM-side offset, or -1 when the buffer is
     * host memory standing in for a tasklet's WRAM chunk. */
    void onDma(uint32_t tasklet, uint64_t mramAddr, int64_t wramAddr,
               uint32_t size, uint32_t line);
    void onBarrier(uint32_t tasklet);
    /// @}

    /** Findings so far (ordered as they occurred). */
    const std::vector<Diagnostic>& diagnostics() const
    {
        return diags_;
    }

    /** True when no diagnostic has been reported. */
    bool clean() const { return diags_.empty(); }

    void clearDiagnostics();

  private:
    struct Writer
    {
        int32_t tasklet = -1; ///< -1: no write recorded
        uint32_t epoch = 0;
    };

    void report(CheckKind kind, uint32_t line, uint64_t dedupKey,
                std::string message);
    void raceCheck(uint32_t tasklet, uint32_t addr, uint32_t size,
                   bool isWrite, uint32_t line);

    CheckConfig config_;
    uint32_t wramBytes_;
    uint64_t mramBytes_;
    std::vector<uint8_t> shadowInit_; ///< per WRAM byte, 1 = written
    std::vector<Writer> lastWriter_;  ///< per 4-byte WRAM word
    std::vector<uint32_t> epochs_;    ///< per tasklet barrier epoch
    std::vector<Diagnostic> diags_;
    std::set<std::tuple<int, uint32_t, uint64_t>> reported_;
};

} // namespace check
} // namespace sim
} // namespace tpl

#endif // TPL_PIMSIM_ANALYSIS_SANITIZER_H
