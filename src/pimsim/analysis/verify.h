/**
 * @file
 * pimcheck layer 1: static verifier for assembled mini-ISA programs.
 *
 * Real DPU kernels are hand-written integer code against a machine
 * with no MMU and no hardware traps; the UPMEM literature documents
 * unaligned MRAM DMA, silent WRAM overflows and tasklet races as the
 * bugs that cost days on real hardware. `verify()` catches the
 * statically decidable share of those *before* a kernel ever runs:
 *
 *  - def-before-use of registers (forward dataflow over the CFG; a
 *    register read on some path before any write is an error — the
 *    simulator zero-fills registers, real hardware does not)
 *  - branch-target validity and unreachable basic blocks
 *  - WRAM/MRAM bounds for statically-known addresses (constant
 *    propagation; unknown addresses are left to the runtime sanitizer)
 *  - UPMEM DMA legality: 8-byte aligned addresses, size a non-zero
 *    multiple of 8, at most `maxDmaBytes` per transfer
 *  - barrier balance: every path through the program must execute the
 *    same number of `barrier` instructions (a mismatch deadlocks the
 *    rendezvous on hardware). Loops are collapsed against the
 *    natural-loop forest (loops.h): a barrier inside a loop whose
 *    trip count is statically known (or `@trip`-annotated) is legal —
 *    every tasklet runs the same count — while a barrier inside a
 *    data-dependent loop is still flagged
 *
 * Diagnostics come back as a structured vector (see diag.h), sorted by
 * source line, so tests can assert on exact findings and `pimlint`
 * can print them.
 */

#ifndef TPL_PIMSIM_ANALYSIS_VERIFY_H
#define TPL_PIMSIM_ANALYSIS_VERIFY_H

#include <cstdint>
#include <map>
#include <vector>

#include "pimsim/analysis/diag.h"
#include "pimsim/isa.h"

namespace tpl {
namespace sim {
namespace check {

/** Machine parameters the bounds / DMA passes check against. */
struct VerifyOptions
{
    uint32_t wramBytes = 64 * 1024;       ///< scratchpad size
    uint64_t mramBytes = 64ull << 20;     ///< MRAM bank size
    uint32_t maxDmaBytes = 2048;          ///< UPMEM per-transfer cap
    /** `@trip(N)` annotations (see loops.h), keyed by 1-based source
     * line; lets the barrier-balance pass accept barriers inside
     * loops whose trip count inference cannot see. */
    std::map<uint32_t, uint64_t> tripAnnotations;
};

/**
 * Run every static pass over @p program.
 * @return diagnostics sorted by source line (empty when clean).
 */
std::vector<Diagnostic> verify(const Program& program,
                               const VerifyOptions& options = {});

/**
 * Registers an instruction reads / writes, as bitmasks over r0..r23.
 * Exposed for the verifier tests; `Stw` reads both its address and its
 * stored value, DMA instructions read all three operands.
 */
struct RegUse
{
    uint32_t reads = 0;
    uint32_t writes = 0;
};
RegUse regUse(const Instruction& ins);

} // namespace check
} // namespace sim
} // namespace tpl

#endif // TPL_PIMSIM_ANALYSIS_VERIFY_H
