/**
 * @file
 * Constant-propagation lattice over mini-ISA programs, shared by the
 * verifier's bounds/DMA pass (verify.cc), the natural-loop pass's
 * trip-count inference (loops.cc) and the static cycle-bound pass
 * (bound.cc).
 *
 * The lattice value of one register is either "unknown" or a known
 * 32-bit constant; the meet of two states keeps a register only when
 * both sides agree. `constFixpoint()` runs the standard forward
 * fixpoint over a CFG and returns the state *entering* each block;
 * callers replay `transferConst()` instruction by instruction to get
 * the state at any program point.
 */

#ifndef TPL_PIMSIM_ANALYSIS_CONSTPROP_H
#define TPL_PIMSIM_ANALYSIS_CONSTPROP_H

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "pimsim/analysis/cfg.h"
#include "pimsim/isa.h"

namespace tpl {
namespace sim {
namespace check {

/** Lattice value of one register: unknown or a known 32-bit constant. */
using ConstVal = std::optional<int32_t>;

/** One lattice state: a value per register r0..r23. */
using ConstState = std::array<ConstVal, 24>;

/** Meet: keep a register constant only when both sides agree. */
inline ConstState
meetStates(const ConstState& a, const ConstState& b)
{
    ConstState out;
    for (uint32_t r = 0; r < out.size(); ++r) {
        if (a[r] && b[r] && *a[r] == *b[r])
            out[r] = a[r];
        else
            out[r] = std::nullopt;
    }
    return out;
}

/** Fold one instruction; returns the new value of rd if computable. */
inline ConstVal
foldValue(const Instruction& ins, const ConstState& st)
{
    auto ua = [&]() -> std::optional<uint32_t> {
        if (st[ins.ra])
            return static_cast<uint32_t>(*st[ins.ra]);
        return std::nullopt;
    }();
    auto ub = [&]() -> std::optional<uint32_t> {
        if (st[ins.rb])
            return static_cast<uint32_t>(*st[ins.rb]);
        return std::nullopt;
    }();
    uint32_t uimm = static_cast<uint32_t>(ins.imm);
    auto wrap = [](uint32_t v) {
        return ConstVal(static_cast<int32_t>(v));
    };

    switch (ins.op) {
      case Opcode::Movi:
        return ins.imm;
      case Opcode::Add:
        if (ua && ub) return wrap(*ua + *ub);
        break;
      case Opcode::Addi:
        if (ua) return wrap(*ua + uimm);
        break;
      case Opcode::Sub:
        if (ua && ub) return wrap(*ua - *ub);
        break;
      case Opcode::Subi:
        if (ua) return wrap(*ua - uimm);
        break;
      case Opcode::And:
        if (ua && ub) return wrap(*ua & *ub);
        break;
      case Opcode::Andi:
        if (ua) return wrap(*ua & uimm);
        break;
      case Opcode::Or:
        if (ua && ub) return wrap(*ua | *ub);
        break;
      case Opcode::Ori:
        if (ua) return wrap(*ua | uimm);
        break;
      case Opcode::Xor:
        if (ua && ub) return wrap(*ua ^ *ub);
        break;
      case Opcode::Xori:
        if (ua) return wrap(*ua ^ uimm);
        break;
      case Opcode::Sll:
        if (ua && ub) return wrap(*ua << (*ub & 31));
        break;
      case Opcode::Slli:
        if (ua) return wrap(*ua << (ins.imm & 31));
        break;
      case Opcode::Srl:
        if (ua && ub) return wrap(*ua >> (*ub & 31));
        break;
      case Opcode::Srli:
        if (ua) return wrap(*ua >> (ins.imm & 31));
        break;
      case Opcode::Sra:
        if (st[ins.ra] && ub)
            return ConstVal(*st[ins.ra] >> (*ub & 31));
        break;
      case Opcode::Srai:
        if (st[ins.ra])
            return ConstVal(*st[ins.ra] >> (ins.imm & 31));
        break;
      case Opcode::Mul:
        if (st[ins.ra] && st[ins.rb]) {
            int64_t prod = static_cast<int64_t>(*st[ins.ra]) *
                           static_cast<int64_t>(*st[ins.rb]);
            return ConstVal(static_cast<int32_t>(prod));
        }
        break;
      case Opcode::Mulh:
        if (st[ins.ra] && st[ins.rb]) {
            int64_t prod = static_cast<int64_t>(*st[ins.ra]) *
                           static_cast<int64_t>(*st[ins.rb]);
            return ConstVal(static_cast<int32_t>(prod >> 32));
        }
        break;
      default:
        break;
    }
    return std::nullopt;
}

/** Apply one instruction's effect to the state (kill or fold rd). */
inline void
transferConst(const Instruction& ins, ConstState& st)
{
    if (!opTraits(ins.op).writesRd)
        return;
    st[ins.rd] = foldValue(ins, st);
}

/**
 * Result of the forward constant-propagation fixpoint: the lattice
 * state entering each block. `known[b]` is false for blocks the
 * propagation never reached (unreachable code).
 */
struct ConstFixpoint
{
    std::vector<ConstState> in;
    std::vector<bool> known;
};

/** Run the forward fixpoint over @p cfg (reachable blocks only). */
inline ConstFixpoint
constFixpoint(const Program& program, const Cfg& cfg,
              const std::vector<bool>& reachable,
              const std::vector<uint32_t>& rpo)
{
    ConstFixpoint fp;
    fp.in.resize(cfg.blocks.size());
    fp.known.assign(cfg.blocks.size(), false);
    if (cfg.blocks.empty())
        return fp;
    fp.in[0] = ConstState{}; // nothing constant at entry
    fp.known[0] = true;

    bool changed = true;
    while (changed) {
        changed = false;
        for (uint32_t b : rpo) {
            if (!fp.known[b])
                continue;
            ConstState st = fp.in[b];
            const BasicBlock& bb = cfg.blocks[b];
            for (uint32_t i = bb.first; i <= bb.last; ++i)
                transferConst(program.code[i], st);
            for (uint32_t succ : cfg.blocks[b].succs) {
                if (succ == Cfg::kExit || !reachable[succ])
                    continue;
                if (!fp.known[succ]) {
                    fp.in[succ] = st;
                    fp.known[succ] = true;
                    changed = true;
                } else {
                    ConstState met = meetStates(fp.in[succ], st);
                    if (met != fp.in[succ]) {
                        fp.in[succ] = met;
                        changed = true;
                    }
                }
            }
        }
    }
    return fp;
}

} // namespace check
} // namespace sim
} // namespace tpl

#endif // TPL_PIMSIM_ANALYSIS_CONSTPROP_H
