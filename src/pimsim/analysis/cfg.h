/**
 * @file
 * Control-flow graph over an assembled mini-ISA program.
 *
 * Basic blocks are maximal straight-line instruction runs; block 0 is
 * the entry. Program exit (falling off the end, a `halt`, or a branch
 * to the label *after* the last instruction — which the assembler
 * legally produces for a trailing `done:` label) is modeled as the
 * pseudo-successor `Cfg::kExit` rather than a real block, so dataflow
 * passes can treat "leaves the program" uniformly.
 *
 * The builder assumes branch targets are in range; `verify()` checks
 * them first and refuses to build a CFG over a program with wild
 * targets.
 */

#ifndef TPL_PIMSIM_ANALYSIS_CFG_H
#define TPL_PIMSIM_ANALYSIS_CFG_H

#include <cstdint>
#include <vector>

#include "pimsim/isa.h"

namespace tpl {
namespace sim {
namespace check {

/** One basic block: instructions [first, last] inclusive. */
struct BasicBlock
{
    uint32_t first = 0;
    uint32_t last = 0;
    /** Successor block ids; may contain Cfg::kExit. */
    std::vector<uint32_t> succs;
    /** Predecessor block ids (never contains kExit). */
    std::vector<uint32_t> preds;
};

/** CFG of a program. */
struct Cfg
{
    /** Pseudo block id meaning "program exit". */
    static constexpr uint32_t kExit = 0xffffffffu;

    std::vector<BasicBlock> blocks;
    /** Block id containing each instruction. */
    std::vector<uint32_t> blockOf;
};

/**
 * Partition @p program into basic blocks and wire successor /
 * predecessor edges. Requires all branch targets in
 * [0, program.code.size()] (target == size is the exit label).
 */
Cfg buildCfg(const Program& program);

/** Blocks reachable from the entry block, as a bitmap. */
std::vector<bool> reachableBlocks(const Cfg& cfg);

/**
 * Reverse post-order of the reachable blocks (entry first) — the
 * iteration order that makes the forward dataflow passes converge in
 * few sweeps.
 */
std::vector<uint32_t> reversePostOrder(const Cfg& cfg);

} // namespace check
} // namespace sim
} // namespace tpl

#endif // TPL_PIMSIM_ANALYSIS_CFG_H
