/**
 * @file
 * CFG construction over mini-ISA programs.
 */

#include "pimsim/analysis/cfg.h"

#include <algorithm>
#include <set>

namespace tpl {
namespace sim {
namespace check {

Cfg
buildCfg(const Program& program)
{
    Cfg cfg;
    const uint32_t n = static_cast<uint32_t>(program.code.size());
    if (n == 0)
        return cfg;

    // Leaders: entry, every branch target inside the program, and the
    // instruction after any control transfer.
    std::set<uint32_t> leaders{0};
    for (uint32_t i = 0; i < n; ++i) {
        const Instruction& ins = program.code[i];
        const OpTraits& tr = opTraits(ins.op);
        if (tr.condBranch || tr.jump) {
            uint32_t target = static_cast<uint32_t>(ins.imm);
            if (target < n)
                leaders.insert(target);
        }
        if (tr.endsBlock() && i + 1 < n)
            leaders.insert(i + 1);
    }

    cfg.blockOf.assign(n, 0);
    for (auto it = leaders.begin(); it != leaders.end(); ++it) {
        auto next = std::next(it);
        BasicBlock bb;
        bb.first = *it;
        bb.last = (next == leaders.end() ? n : *next) - 1;
        uint32_t id = static_cast<uint32_t>(cfg.blocks.size());
        for (uint32_t i = bb.first; i <= bb.last; ++i)
            cfg.blockOf[i] = id;
        cfg.blocks.push_back(std::move(bb));
    }

    auto blockOrExit = [&](uint32_t instr) {
        return instr < n ? cfg.blockOf[instr] : Cfg::kExit;
    };

    for (BasicBlock& bb : cfg.blocks) {
        const Instruction& tail = program.code[bb.last];
        const OpTraits& tr = opTraits(tail.op);
        if (tr.halts) {
            bb.succs.push_back(Cfg::kExit);
        } else if (tr.jump) {
            bb.succs.push_back(blockOrExit(static_cast<uint32_t>(tail.imm)));
        } else if (tr.condBranch) {
            bb.succs.push_back(blockOrExit(static_cast<uint32_t>(tail.imm)));
            uint32_t fall = blockOrExit(bb.last + 1);
            if (std::find(bb.succs.begin(), bb.succs.end(), fall) ==
                bb.succs.end())
                bb.succs.push_back(fall);
        } else {
            bb.succs.push_back(blockOrExit(bb.last + 1));
        }
    }

    for (uint32_t id = 0; id < cfg.blocks.size(); ++id) {
        for (uint32_t succ : cfg.blocks[id].succs) {
            if (succ != Cfg::kExit)
                cfg.blocks[succ].preds.push_back(id);
        }
    }
    return cfg;
}

std::vector<bool>
reachableBlocks(const Cfg& cfg)
{
    std::vector<bool> seen(cfg.blocks.size(), false);
    if (cfg.blocks.empty())
        return seen;
    std::vector<uint32_t> stack{0};
    seen[0] = true;
    while (!stack.empty()) {
        uint32_t id = stack.back();
        stack.pop_back();
        for (uint32_t succ : cfg.blocks[id].succs) {
            if (succ != Cfg::kExit && !seen[succ]) {
                seen[succ] = true;
                stack.push_back(succ);
            }
        }
    }
    return seen;
}

std::vector<uint32_t>
reversePostOrder(const Cfg& cfg)
{
    std::vector<uint32_t> order;
    if (cfg.blocks.empty())
        return order;
    std::vector<uint8_t> visited(cfg.blocks.size(), 0);
    // Iterative DFS emitting post-order, then reversed.
    std::vector<std::pair<uint32_t, size_t>> stack{{0u, 0u}};
    visited[0] = 1;
    while (!stack.empty()) {
        auto [id, idx] = stack.back();
        const auto& succs = cfg.blocks[id].succs;
        if (idx < succs.size()) {
            ++stack.back().second;
            uint32_t succ = succs[idx];
            if (succ != Cfg::kExit && !visited[succ]) {
                visited[succ] = 1;
                stack.push_back({succ, 0});
            }
        } else {
            order.push_back(id);
            stack.pop_back();
        }
    }
    std::reverse(order.begin(), order.end());
    return order;
}

} // namespace check
} // namespace sim
} // namespace tpl
