/**
 * @file
 * Static cycle bounds for mini-ISA kernels.
 *
 * Walks the natural-loop forest (loops.h) against the same cost model
 * the interpreter charges (cost_model.h: pipeline dispatch interval,
 * DMA setup + per-byte streaming + latency, emulated-multiply
 * expansion) and produces a per-launch [BCET, WCET] cycle interval
 * plus a per-InstrClass worst-case partition —*without running the
 * kernel*. The interval is sound: for every execution of the program
 * under the interpreter, the launch's modeled `LaunchStats::cycles`
 * falls inside `[bcet, wcet]` (locked by tests/bound_test.cc, which
 * asserts containment for every shipped kernel at several tasklet
 * counts).
 *
 * Where costs are data-dependent the pass brackets them:
 *  - `mul`/`mulh` charge 12..36 instructions depending on operand
 *    byte patterns; constant operands tighten the interval, a single
 *    constant operand caps the row count.
 *  - branch alternatives merge elementwise (min of mins, max of maxs).
 *  - loops multiply the per-iteration interval by the trip count from
 *    loops.h; a counted loop with a secondary (break) exit has no
 *    exact trip, so its iteration interval is widened to
 *    [0, tripUpper] repetitions — the WCET scales by the header-test
 *    bound, the BCET assumes an immediate break. A loop with unknown
 *    trip (and no `@trip` annotation) makes the program unbounded —
 *    reported, not guessed.
 *  - a DMA whose size register is not statically constant is
 *    unbounded too: the interpreter transfers whatever the register
 *    holds (the runtime sanitizer, not the ISA, enforces the 2048-byte
 *    cap), so no static charge brackets it.
 */

#ifndef TPL_PIMSIM_ANALYSIS_BOUND_H
#define TPL_PIMSIM_ANALYSIS_BOUND_H

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "common/instr_sink.h"
#include "pimsim/cost_model.h"
#include "pimsim/isa.h"

namespace tpl {
namespace sim {
namespace check {

/** Inputs to the bound computation. */
struct BoundOptions
{
    /** Cost model to bound against (must match the launch's). */
    CostModel model{};
    /** Tasklets the launch will run (1..model.maxTasklets). */
    uint32_t tasklets = 1;
    /** `@trip(N)` annotations (see loops.h), keyed by source line. */
    std::map<uint32_t, uint64_t> tripAnnotations;
};

/**
 * Static cycle bound of one kernel launch. All `*Min`/`*Max` fields
 * are per-tasklet path intervals (every tasklet runs the same
 * program; tid-dependent paths are covered by the interval);
 * `bcet`/`wcet`/`classWorst` are launch-level reconstructions for
 * `tasklets` tasklets via the revolver-pipeline formula.
 */
struct CycleBound
{
    /** False when no finite bound exists; see `reason`. */
    bool bounded = false;
    /** Human-readable cause when !bounded (unknown trip count,
     * non-constant DMA size, irreducible control flow, ...). */
    std::string reason;

    uint32_t tasklets = 1;  ///< launch size the bound is for
    uint64_t bcet = 0;      ///< best-case modeled launch cycles
    uint64_t wcet = 0;      ///< worst-case modeled launch cycles

    /// @name Per-tasklet path intervals.
    /// @{
    uint64_t instrMin = 0, instrMax = 0;   ///< retired instructions
    uint64_t stallMin = 0, stallMax = 0;   ///< DMA latency stalls
    uint64_t engineMin = 0, engineMax = 0; ///< DMA engine occupancy
    uint64_t bytesMin = 0, bytesMax = 0;   ///< DMA bytes moved
    std::array<uint64_t, numInstrClasses> classMin{};
    std::array<uint64_t, numInstrClasses> classMax{};
    /// @}

    /** Launch-level worst-case instruction partition:
     * tasklets * classMax per InstrClass. */
    std::array<uint64_t, numInstrClasses> classWorst{};

    /** True when any loop's trip count came from a `@trip`
     * annotation rather than inference (the bound is then only as
     * sound as the annotation). */
    bool usedAnnotation = false;

    /** True when some loop had a secondary (break) exit and was
     * scaled by [0, tripUpper] iterations instead of an exact trip:
     * the WCET is still sound but the BCET side is the loop-skipping
     * path, so the interval may be much wider than any real run. */
    bool usedTripUpper = false;
};

/** Compute the static cycle bound of @p program. */
CycleBound computeBound(const Program& program,
                        const BoundOptions& options = {});

} // namespace check
} // namespace sim
} // namespace tpl

#endif // TPL_PIMSIM_ANALYSIS_BOUND_H
