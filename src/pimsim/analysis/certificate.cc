/**
 * @file
 * Cost-certificate JSON serialization.
 */

#include "pimsim/analysis/certificate.h"

#include <cctype>
#include <cstdio>

namespace tpl {
namespace sim {
namespace check {

namespace {

std::string
u64(uint64_t v)
{
    return std::to_string(v);
}

std::string
pair(uint64_t lo, uint64_t hi)
{
    return "[" + u64(lo) + ", " + u64(hi) + "]";
}

/**
 * Position just past `"key":` at or after @p from, or npos. Scans by
 * lexing whole string literals (escape-aware) instead of raw
 * substring search, so key-like text *inside* a string value — a
 * kernel name or unbounded reason containing `\"bcet\"` — can never
 * match: only a complete string token whose unescaped content equals
 * @p key and whose next non-space character is `:` counts.
 */
size_t
afterKey(const std::string& json, const std::string& key,
         size_t from = 0)
{
    size_t p = from;
    while (p < json.size()) {
        if (json[p] != '"') {
            ++p;
            continue;
        }
        ++p; // string token: unescape its full content
        std::string content;
        bool closed = false;
        while (p < json.size()) {
            char c = json[p];
            if (c == '\\' && p + 1 < json.size()) {
                switch (json[p + 1]) {
                  case 'n': content += '\n'; break;
                  case 't': content += '\t'; break;
                  default: content += json[p + 1]; break;
                }
                p += 2;
            } else if (c == '"') {
                closed = true;
                ++p;
                break;
            } else {
                content += c;
                ++p;
            }
        }
        if (!closed)
            return std::string::npos; // unterminated string
        if (content != key)
            continue;
        size_t q = p;
        while (q < json.size() &&
               std::isspace(static_cast<unsigned char>(json[q])))
            ++q;
        if (q < json.size() && json[q] == ':') {
            ++q;
            while (q < json.size() &&
                   std::isspace(static_cast<unsigned char>(json[q])))
                ++q;
            return q;
        }
        // A string *value* equal to the key (followed by `,`/`}`):
        // not a key occurrence; keep scanning.
    }
    return std::string::npos;
}

bool
readU64At(const std::string& json, size_t p, uint64_t& out)
{
    if (p == std::string::npos || p >= json.size() ||
        !std::isdigit(static_cast<unsigned char>(json[p])))
        return false;
    out = 0;
    while (p < json.size() &&
           std::isdigit(static_cast<unsigned char>(json[p]))) {
        out = out * 10 + static_cast<uint64_t>(json[p] - '0');
        ++p;
    }
    return true;
}

bool
readU64(const std::string& json, const std::string& key, uint64_t& out,
        size_t from = 0)
{
    return readU64At(json, afterKey(json, key, from), out);
}

bool
readBool(const std::string& json, const std::string& key, bool& out,
         size_t from = 0)
{
    size_t p = afterKey(json, key, from);
    if (p == std::string::npos)
        return false;
    if (json.compare(p, 4, "true") == 0) {
        out = true;
        return true;
    }
    if (json.compare(p, 5, "false") == 0) {
        out = false;
        return true;
    }
    return false;
}

bool
readString(const std::string& json, const std::string& key,
           std::string& out, size_t from = 0)
{
    size_t p = afterKey(json, key, from);
    if (p == std::string::npos || p >= json.size() || json[p] != '"')
        return false;
    ++p;
    out.clear();
    while (p < json.size() && json[p] != '"') {
        if (json[p] == '\\' && p + 1 < json.size()) {
            ++p;
            switch (json[p]) {
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              default: out += json[p]; break;
            }
        } else {
            out += json[p];
        }
        ++p;
    }
    return p < json.size();
}

bool
readPair(const std::string& json, const std::string& key,
         uint64_t& lo, uint64_t& hi, size_t from = 0)
{
    size_t p = afterKey(json, key, from);
    if (p == std::string::npos || p >= json.size() || json[p] != '[')
        return false;
    ++p;
    while (p < json.size() && std::isspace(
                                  static_cast<unsigned char>(json[p])))
        ++p;
    if (!readU64At(json, p, lo))
        return false;
    p = json.find(',', p);
    if (p == std::string::npos)
        return false;
    ++p;
    while (p < json.size() && std::isspace(
                                  static_cast<unsigned char>(json[p])))
        ++p;
    return readU64At(json, p, hi);
}

} // namespace

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
serializeCertificate(const KernelCertificate& cert)
{
    const CycleBound& b = cert.bound;
    std::string out = "{\n";
    out += "  \"kernel\": \"" + jsonEscape(cert.kernel) + "\",\n";
    out += "  \"bound\": {\n";
    out += "    \"bounded\": " +
           std::string(b.bounded ? "true" : "false") + ",\n";
    out += "    \"reason\": \"" + jsonEscape(b.reason) + "\",\n";
    out += "    \"tasklets\": " + u64(b.tasklets) + ",\n";
    out += "    \"bcet\": " + u64(b.bcet) + ",\n";
    out += "    \"wcet\": " + u64(b.wcet) + ",\n";
    out += "    \"usedAnnotation\": " +
           std::string(b.usedAnnotation ? "true" : "false") + ",\n";
    out += "    \"usedTripUpper\": " +
           std::string(b.usedTripUpper ? "true" : "false") + ",\n";
    out += "    \"perTasklet\": {\n";
    out += "      \"instructions\": " + pair(b.instrMin, b.instrMax) +
           ",\n";
    out += "      \"dmaStall\": " + pair(b.stallMin, b.stallMax) +
           ",\n";
    out += "      \"dmaEngine\": " + pair(b.engineMin, b.engineMax) +
           ",\n";
    out += "      \"dmaBytes\": " + pair(b.bytesMin, b.bytesMax) +
           "\n";
    out += "    },\n";
    out += "    \"classBounds\": {";
    for (int c = 0; c < numInstrClasses; ++c) {
        out += std::string(c ? ", " : "") + "\"" +
               instrClassName(static_cast<InstrClass>(c)) + "\": " +
               pair(b.classMin[c], b.classMax[c]);
    }
    out += "},\n";
    out += "    \"classWorst\": {";
    for (int c = 0; c < numInstrClasses; ++c) {
        out += std::string(c ? ", " : "") + "\"" +
               instrClassName(static_cast<InstrClass>(c)) + "\": " +
               u64(b.classWorst[c]);
    }
    out += "}\n";
    out += "  },\n";
    out += "  \"interleave\": {\n";
    out += "    \"checked\": " +
           std::string(cert.interleaveChecked ? "true" : "false") +
           ",\n";
    out += "    \"tasklets\": " + u64(cert.interleaveTasklets) + ",\n";
    out += "    \"verdict\": \"" +
           std::string(toString(cert.interleave)) + "\",\n";
    out += "    \"phases\": " + u64(cert.interleavePhases) + "\n";
    out += "  }\n";
    out += "}\n";
    return out;
}

bool
parseCertificate(const std::string& json, KernelCertificate& cert)
{
    if (!readString(json, "kernel", cert.kernel))
        return false;
    size_t boundAt = afterKey(json, "bound");
    if (boundAt == std::string::npos)
        return false;
    CycleBound& b = cert.bound;
    uint64_t v = 0;
    if (!readBool(json, "bounded", b.bounded, boundAt))
        return false;
    if (!readString(json, "reason", b.reason, boundAt))
        return false;
    if (!readU64(json, "tasklets", v, boundAt))
        return false;
    b.tasklets = static_cast<uint32_t>(v);
    if (!readU64(json, "bcet", b.bcet, boundAt) ||
        !readU64(json, "wcet", b.wcet, boundAt))
        return false;
    if (!readBool(json, "usedAnnotation", b.usedAnnotation, boundAt))
        return false;
    // Optional (absent from certificates serialized before the
    // trip-upper-bound distinction existed).
    if (!readBool(json, "usedTripUpper", b.usedTripUpper, boundAt))
        b.usedTripUpper = false;
    if (!readPair(json, "instructions", b.instrMin, b.instrMax,
                  boundAt) ||
        !readPair(json, "dmaStall", b.stallMin, b.stallMax, boundAt) ||
        !readPair(json, "dmaEngine", b.engineMin, b.engineMax,
                  boundAt) ||
        !readPair(json, "dmaBytes", b.bytesMin, b.bytesMax, boundAt))
        return false;
    size_t clsAt = afterKey(json, "classBounds", boundAt);
    size_t worstAt = afterKey(json, "classWorst", boundAt);
    if (clsAt == std::string::npos || worstAt == std::string::npos)
        return false;
    for (int c = 0; c < numInstrClasses; ++c) {
        const char* name = instrClassName(static_cast<InstrClass>(c));
        if (!readPair(json, name, b.classMin[c], b.classMax[c], clsAt))
            return false;
        if (!readU64(json, name, b.classWorst[c], worstAt))
            return false;
    }
    size_t ilAt = afterKey(json, "interleave");
    if (ilAt == std::string::npos)
        return false;
    if (!readBool(json, "checked", cert.interleaveChecked, ilAt))
        return false;
    if (!readU64(json, "tasklets", v, ilAt))
        return false;
    cert.interleaveTasklets = static_cast<uint32_t>(v);
    std::string verdict;
    if (!readString(json, "verdict", verdict, ilAt))
        return false;
    bool known = false;
    for (InterleaveVerdict iv :
         {InterleaveVerdict::RaceFree, InterleaveVerdict::Race,
          InterleaveVerdict::Deadlock,
          InterleaveVerdict::Inconclusive}) {
        if (verdict == toString(iv)) {
            cert.interleave = iv;
            known = true;
        }
    }
    if (!known)
        return false;
    if (!readU64(json, "phases", v, ilAt))
        return false;
    cert.interleavePhases = static_cast<uint32_t>(v);
    return true;
}

} // namespace check
} // namespace sim
} // namespace tpl
