/**
 * @file
 * Natural-loop detection and trip-count inference.
 */

#include "pimsim/analysis/loops.h"

#include <algorithm>
#include <deque>

#include "pimsim/analysis/constprop.h"

namespace tpl {
namespace sim {
namespace check {

namespace {

/** Inference gives up past this many simulated header tests. */
constexpr uint64_t kMaxTrip = 1ull << 22;

constexpr uint32_t kUndef = 0xffffffffu;

/** True when block @p a dominates block @p b (both reachable). */
bool
dominates(const std::vector<uint32_t>& idom, uint32_t a, uint32_t b)
{
    // Walk b's dominator chain up to the entry (its own idom).
    uint32_t cur = b;
    while (true) {
        if (cur == a)
            return true;
        uint32_t up = idom[cur];
        if (up == cur || up == kUndef)
            return false;
        cur = up;
    }
}

/** Evaluate a conditional branch's predicate. */
bool
evalCond(Opcode op, int32_t a, int32_t b)
{
    uint32_t ua = static_cast<uint32_t>(a);
    uint32_t ub = static_cast<uint32_t>(b);
    switch (op) {
      case Opcode::Beq: return a == b;
      case Opcode::Bne: return a != b;
      case Opcode::Blt: return a < b;
      case Opcode::Bge: return a >= b;
      case Opcode::Bltu: return ua < ub;
      case Opcode::Bgeu: return ua >= ub;
      default: return false;
    }
}

/** Const state at the *exit* of block @p b (replays the block). */
ConstState
outState(const Program& program, const Cfg& cfg,
         const ConstFixpoint& fp, uint32_t b)
{
    ConstState st = fp.in[b];
    const BasicBlock& bb = cfg.blocks[b];
    for (uint32_t i = bb.first; i <= bb.last; ++i)
        transferConst(program.code[i], st);
    return st;
}

/**
 * Try to infer @p loop's trip count from the counted-loop shape:
 * header-tested conditional branch over one induction register
 * (updated by a single addi/subi that dominates every latch) and one
 * loop-invariant constant bound. Simulates the exact 32-bit branch
 * semantics, so wraparound behaves as the interpreter would.
 */
void
inferTrip(const Program& program, const Cfg& cfg,
          const std::vector<uint32_t>& idom, const ConstFixpoint& fp,
          const std::vector<uint32_t>& loopOf, uint32_t loopId,
          LoopInfo& loop)
{
    const BasicBlock& hb = cfg.blocks[loop.header];
    const Instruction& br = program.code[hb.last];
    if (!opTraits(br.op).condBranch)
        return; // not header-tested
    if (br.ra == br.rb)
        return;

    const uint32_t n = static_cast<uint32_t>(program.code.size());
    auto blockOrExit = [&](uint32_t instr) {
        return instr < n ? cfg.blockOf[instr] : Cfg::kExit;
    };
    uint32_t takenBlock = blockOrExit(static_cast<uint32_t>(br.imm));
    uint32_t fallBlock = blockOrExit(hb.last + 1);
    bool takenIn =
        takenBlock != Cfg::kExit && loop.contains(takenBlock);
    bool fallIn = fallBlock != Cfg::kExit && loop.contains(fallBlock);
    if (takenIn == fallIn)
        return; // both continue or both exit: not a counted header

    // Classify the two branch operands: exactly one induction
    // register (written in the loop), one invariant bound.
    auto writersOf = [&](uint8_t reg) {
        std::vector<uint32_t> writers;
        for (uint32_t b : loop.blocks) {
            const BasicBlock& bb = cfg.blocks[b];
            for (uint32_t i = bb.first; i <= bb.last; ++i) {
                const Instruction& ins = program.code[i];
                if (opTraits(ins.op).writesRd && ins.rd == reg)
                    writers.push_back(i);
            }
        }
        return writers;
    };
    std::vector<uint32_t> wa = writersOf(br.ra);
    std::vector<uint32_t> wb = writersOf(br.rb);
    uint8_t var, bound;
    std::vector<uint32_t>* varWriters;
    if (!wa.empty() && wb.empty()) {
        var = br.ra;
        bound = br.rb;
        varWriters = &wa;
    } else if (wa.empty() && !wb.empty()) {
        var = br.rb;
        bound = br.ra;
        varWriters = &wb;
    } else {
        return;
    }

    // Single addi/subi step, i = i +/- imm, executing exactly once
    // per iteration: its block dominates every latch and is not
    // buried in a nested loop.
    if (varWriters->size() != 1)
        return;
    const uint32_t incIdx = (*varWriters)[0];
    const Instruction& inc = program.code[incIdx];
    if ((inc.op != Opcode::Addi && inc.op != Opcode::Subi) ||
        inc.ra != var)
        return;
    uint32_t incBlock = cfg.blockOf[incIdx];
    if (loopOf[incBlock] != loopId)
        return;
    for (uint32_t latch : loop.latches) {
        if (!dominates(idom, incBlock, latch))
            return;
    }

    // Initial induction value and the bound: constants at the loop
    // preheader (meet over the non-latch predecessors of the header;
    // the header's own in-state already meets the back edge, which
    // destroys the induction register's constancy).
    bool haveInit = false;
    bool initKnown = false, boundKnown = false;
    int32_t initVal = 0, boundVal = 0;
    for (uint32_t pred : cfg.blocks[loop.header].preds) {
        if (std::find(loop.latches.begin(), loop.latches.end(),
                      pred) != loop.latches.end())
            continue;
        if (!fp.known[pred])
            continue;
        ConstState st = outState(program, cfg, fp, pred);
        if (!haveInit) {
            initKnown = st[var].has_value();
            initVal = initKnown ? *st[var] : 0;
            boundKnown = st[bound].has_value();
            boundVal = boundKnown ? *st[bound] : 0;
            haveInit = true;
        } else {
            initKnown &= st[var] && *st[var] == initVal;
            boundKnown &= st[bound] && *st[bound] == boundVal;
        }
    }
    if (!haveInit || !initKnown || !boundKnown)
        return;

    uint32_t step = static_cast<uint32_t>(inc.imm);
    if (inc.op == Opcode::Subi)
        step = 0u - step;
    // If the step sits in the header block it has already executed
    // when the branch tests (block instructions precede the
    // terminator); account for that before the first test.
    uint32_t val = static_cast<uint32_t>(initVal);
    if (incBlock == loop.header)
        val += step;

    uint64_t trips = 0;
    while (trips <= kMaxTrip) {
        int32_t sv = static_cast<int32_t>(val);
        int32_t a = (br.ra == var) ? sv : boundVal;
        int32_t b = (br.rb == var) ? sv : boundVal;
        bool continues = evalCond(br.op, a, b) ? takenIn : fallIn;
        if (!continues) {
            // Exact only when the header test is the loop's sole
            // exit; a secondary (break) edge in the body can leave
            // earlier, making the header count an upper bound on
            // completed iterations.
            if (loop.headerOnlyExit) {
                loop.tripKnown = true;
                loop.tripCount = trips;
            } else {
                loop.tripUpperKnown = true;
                loop.tripUpper = trips;
            }
            return;
        }
        ++trips;
        val += step;
    }
    // Never exited within the cap: leave unknown.
}

} // namespace

bool
LoopInfo::contains(uint32_t block) const
{
    return std::binary_search(blocks.begin(), blocks.end(), block);
}

std::vector<uint32_t>
dominators(const Cfg& cfg)
{
    std::vector<uint32_t> idom(cfg.blocks.size(), kUndef);
    if (cfg.blocks.empty())
        return idom;
    std::vector<uint32_t> rpo = reversePostOrder(cfg);
    std::vector<uint32_t> rpoIndex(cfg.blocks.size(), kUndef);
    for (uint32_t i = 0; i < rpo.size(); ++i)
        rpoIndex[rpo[i]] = i;

    idom[0] = 0;
    auto intersect = [&](uint32_t a, uint32_t b) {
        while (a != b) {
            while (rpoIndex[a] > rpoIndex[b])
                a = idom[a];
            while (rpoIndex[b] > rpoIndex[a])
                b = idom[b];
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (uint32_t b : rpo) {
            if (b == 0)
                continue;
            uint32_t newIdom = kUndef;
            for (uint32_t pred : cfg.blocks[b].preds) {
                if (rpoIndex[pred] == kUndef || idom[pred] == kUndef)
                    continue; // unreachable or not yet processed
                newIdom = (newIdom == kUndef)
                              ? pred
                              : intersect(pred, newIdom);
            }
            if (newIdom != kUndef && idom[b] != newIdom) {
                idom[b] = newIdom;
                changed = true;
            }
        }
    }
    return idom;
}

LoopForest
findLoops(const Program& program, const Cfg& cfg,
          const std::map<uint32_t, uint64_t>& tripAnnotations)
{
    LoopForest forest;
    forest.loopOf.assign(cfg.blocks.size(), LoopInfo::kNone);
    if (cfg.blocks.empty())
        return forest;

    std::vector<bool> reachable = reachableBlocks(cfg);
    std::vector<uint32_t> rpo = reversePostOrder(cfg);
    std::vector<uint32_t> idom = dominators(cfg);

    // Dominance back edges u -> h; natural loop of h = union over
    // its back edges of everything that reaches u without passing h.
    std::map<uint32_t, std::vector<uint32_t>> latchesOf;
    for (uint32_t u = 0; u < cfg.blocks.size(); ++u) {
        if (!reachable[u])
            continue;
        for (uint32_t v : cfg.blocks[u].succs) {
            if (v == Cfg::kExit || !reachable[v])
                continue;
            if (dominates(idom, v, u))
                latchesOf[v].push_back(u);
        }
    }

    for (auto& [header, latches] : latchesOf) {
        LoopInfo loop;
        loop.header = header;
        loop.latches = latches;
        std::vector<bool> inLoop(cfg.blocks.size(), false);
        inLoop[header] = true;
        std::deque<uint32_t> work(latches.begin(), latches.end());
        while (!work.empty()) {
            uint32_t b = work.front();
            work.pop_front();
            if (inLoop[b])
                continue;
            inLoop[b] = true;
            for (uint32_t pred : cfg.blocks[b].preds) {
                if (reachable[pred] && !inLoop[pred])
                    work.push_back(pred);
            }
        }
        for (uint32_t b = 0; b < cfg.blocks.size(); ++b) {
            if (inLoop[b])
                loop.blocks.push_back(b);
        }
        loop.headerOnlyExit = true;
        for (uint32_t b : loop.blocks) {
            if (b == header)
                continue;
            for (uint32_t s : cfg.blocks[b].succs) {
                if (s == Cfg::kExit || !inLoop[s])
                    loop.headerOnlyExit = false;
            }
        }
        forest.loops.push_back(std::move(loop));
    }

    // Irreducibility: with every dominance back edge cut, a reducible
    // CFG is acyclic. Kahn's algorithm over the reachable remainder.
    {
        std::vector<uint32_t> indeg(cfg.blocks.size(), 0);
        auto isBackEdge = [&](uint32_t u, uint32_t v) {
            auto it = latchesOf.find(v);
            if (it == latchesOf.end())
                return false;
            return std::find(it->second.begin(), it->second.end(),
                             u) != it->second.end();
        };
        uint32_t live = 0;
        for (uint32_t u = 0; u < cfg.blocks.size(); ++u) {
            if (!reachable[u])
                continue;
            ++live;
            for (uint32_t v : cfg.blocks[u].succs) {
                if (v != Cfg::kExit && reachable[v] &&
                    !isBackEdge(u, v))
                    ++indeg[v];
            }
        }
        std::deque<uint32_t> ready;
        for (uint32_t b = 0; b < cfg.blocks.size(); ++b) {
            if (reachable[b] && indeg[b] == 0)
                ready.push_back(b);
        }
        uint32_t popped = 0;
        while (!ready.empty()) {
            uint32_t u = ready.front();
            ready.pop_front();
            ++popped;
            for (uint32_t v : cfg.blocks[u].succs) {
                if (v == Cfg::kExit || !reachable[v] ||
                    isBackEdge(u, v))
                    continue;
                if (--indeg[v] == 0)
                    ready.push_back(v);
            }
        }
        forest.irreducible = (popped != live);
    }

    // Innermost-first order: sort by member count so iterating the
    // vector front-to-back visits children before parents.
    std::sort(forest.loops.begin(), forest.loops.end(),
              [](const LoopInfo& a, const LoopInfo& b) {
                  if (a.blocks.size() != b.blocks.size())
                      return a.blocks.size() < b.blocks.size();
                  return a.header < b.header;
              });

    for (uint32_t id = 0; id < forest.loops.size(); ++id) {
        for (uint32_t b : forest.loops[id].blocks) {
            if (forest.loopOf[b] == LoopInfo::kNone)
                forest.loopOf[b] = id; // smallest loop wins
        }
    }
    for (uint32_t id = 0; id < forest.loops.size(); ++id) {
        for (uint32_t outer = id + 1; outer < forest.loops.size();
             ++outer) {
            if (forest.loops[outer].contains(
                    forest.loops[id].header)) {
                forest.loops[id].parent = outer;
                forest.loops[outer].children.push_back(id);
                break;
            }
        }
    }
    for (uint32_t id = forest.loops.size(); id-- > 0;) {
        uint32_t parent = forest.loops[id].parent;
        forest.loops[id].depth =
            parent == LoopInfo::kNone
                ? 1
                : forest.loops[parent].depth + 1;
    }

    if (forest.irreducible)
        return forest; // trip inference over undefined structure: no

    ConstFixpoint fp = constFixpoint(program, cfg, reachable, rpo);
    for (uint32_t id = 0; id < forest.loops.size(); ++id) {
        inferTrip(program, cfg, idom, fp, forest.loopOf, id,
                  forest.loops[id]);
    }

    // Annotation fallback: map each @trip(N) line to the innermost
    // loop containing an instruction on that line.
    for (const auto& [line, trip] : tripAnnotations) {
        for (uint32_t i = 0; i < program.lines.size(); ++i) {
            if (program.lines[i] != line)
                continue;
            uint32_t loopId = forest.loopOf[cfg.blockOf[i]];
            if (loopId == LoopInfo::kNone)
                continue;
            LoopInfo& loop = forest.loops[loopId];
            if (!loop.tripKnown && !loop.tripUpperKnown) {
                // An annotation on a multi-exit loop is only an
                // upper bound: a break can still leave earlier, and
                // different tasklets may break at different
                // iterations, so the count must not be treated as
                // exact (barrier balance would be unsound).
                if (loop.headerOnlyExit) {
                    loop.tripKnown = true;
                    loop.tripCount = trip;
                } else {
                    loop.tripUpperKnown = true;
                    loop.tripUpper = trip;
                }
                loop.annotated = true;
            }
            break;
        }
    }
    return forest;
}

std::map<uint32_t, uint64_t>
parseTripAnnotations(const std::string& source)
{
    std::map<uint32_t, uint64_t> out;
    uint32_t lineNo = 1;
    size_t pos = 0;
    while (pos <= source.size()) {
        size_t eol = source.find('\n', pos);
        std::string line = source.substr(
            pos, eol == std::string::npos ? std::string::npos
                                          : eol - pos);
        size_t at = line.find("@trip(");
        if (at != std::string::npos) {
            size_t p = at + 6;
            uint64_t value = 0;
            bool any = false;
            while (p < line.size() && line[p] >= '0' &&
                   line[p] <= '9') {
                value = value * 10 + (line[p] - '0');
                any = true;
                ++p;
            }
            if (any && p < line.size() && line[p] == ')')
                out[lineNo] = value;
        }
        if (eol == std::string::npos)
            break;
        pos = eol + 1;
        ++lineNo;
    }
    return out;
}

} // namespace check
} // namespace sim
} // namespace tpl
