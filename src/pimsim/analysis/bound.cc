/**
 * @file
 * Static cycle-bound computation over the natural-loop forest.
 */

#include "pimsim/analysis/bound.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/emu_int.h"
#include "pimsim/analysis/constprop.h"
#include "pimsim/analysis/loops.h"

namespace tpl {
namespace sim {
namespace check {

namespace {

/** Per-tasklet cost interval of a program region (all fields are
 * [min over paths, max over paths]). */
struct Interval
{
    uint64_t instrMin = 0, instrMax = 0;
    uint64_t stallMin = 0, stallMax = 0;
    uint64_t engineMin = 0, engineMax = 0;
    uint64_t bytesMin = 0, bytesMax = 0;
    std::array<uint64_t, numInstrClasses> clsMin{};
    std::array<uint64_t, numInstrClasses> clsMax{};

    bool operator==(const Interval& o) const
    {
        return instrMin == o.instrMin && instrMax == o.instrMax &&
               stallMin == o.stallMin && stallMax == o.stallMax &&
               engineMin == o.engineMin && engineMax == o.engineMax &&
               bytesMin == o.bytesMin && bytesMax == o.bytesMax &&
               clsMin == o.clsMin && clsMax == o.clsMax;
    }
};

/** Sequential composition: both segments execute. */
Interval
seq(const Interval& a, const Interval& b)
{
    Interval r;
    r.instrMin = a.instrMin + b.instrMin;
    r.instrMax = a.instrMax + b.instrMax;
    r.stallMin = a.stallMin + b.stallMin;
    r.stallMax = a.stallMax + b.stallMax;
    r.engineMin = a.engineMin + b.engineMin;
    r.engineMax = a.engineMax + b.engineMax;
    r.bytesMin = a.bytesMin + b.bytesMin;
    r.bytesMax = a.bytesMax + b.bytesMax;
    for (int c = 0; c < numInstrClasses; ++c) {
        r.clsMin[c] = a.clsMin[c] + b.clsMin[c];
        r.clsMax[c] = a.clsMax[c] + b.clsMax[c];
    }
    return r;
}

/** Alternative composition: one of the two paths executes. */
Interval
alt(const Interval& a, const Interval& b)
{
    Interval r;
    r.instrMin = std::min(a.instrMin, b.instrMin);
    r.instrMax = std::max(a.instrMax, b.instrMax);
    r.stallMin = std::min(a.stallMin, b.stallMin);
    r.stallMax = std::max(a.stallMax, b.stallMax);
    r.engineMin = std::min(a.engineMin, b.engineMin);
    r.engineMax = std::max(a.engineMax, b.engineMax);
    r.bytesMin = std::min(a.bytesMin, b.bytesMin);
    r.bytesMax = std::max(a.bytesMax, b.bytesMax);
    for (int c = 0; c < numInstrClasses; ++c) {
        r.clsMin[c] = std::min(a.clsMin[c], b.clsMin[c]);
        r.clsMax[c] = std::max(a.clsMax[c], b.clsMax[c]);
    }
    return r;
}

/** The segment repeated @p n times. */
Interval
scale(const Interval& a, uint64_t n)
{
    Interval r;
    r.instrMin = a.instrMin * n;
    r.instrMax = a.instrMax * n;
    r.stallMin = a.stallMin * n;
    r.stallMax = a.stallMax * n;
    r.engineMin = a.engineMin * n;
    r.engineMax = a.engineMax * n;
    r.bytesMin = a.bytesMin * n;
    r.bytesMax = a.bytesMax * n;
    for (int c = 0; c < numInstrClasses; ++c) {
        r.clsMin[c] = a.clsMin[c] * n;
        r.clsMax[c] = a.clsMax[c] * n;
    }
    return r;
}

/** The segment repeated anywhere between 0 and @p n times (counted
 * loop with a secondary break exit: the header test caps iterations
 * at n, a break can leave after any earlier iteration). */
Interval
scaleUpper(const Interval& a, uint64_t n)
{
    Interval r; // min side: the loop may exit before any iteration
    r.instrMax = a.instrMax * n;
    r.stallMax = a.stallMax * n;
    r.engineMax = a.engineMax * n;
    r.bytesMax = a.bytesMax * n;
    for (int c = 0; c < numInstrClasses; ++c)
        r.clsMax[c] = a.clsMax[c] * n;
    return r;
}

/** Magnitude the emulated multiply's row scan sees. */
uint32_t
magOf(int32_t v)
{
    return v < 0 ? static_cast<uint32_t>(-static_cast<int64_t>(v))
                 : static_cast<uint32_t>(v);
}

/** Add a fixed charge in one class to both interval sides. */
void
chargeExact(Interval& iv, InstrClass cls, uint64_t n)
{
    int c = static_cast<int>(cls);
    iv.instrMin += n;
    iv.instrMax += n;
    iv.clsMin[c] += n;
    iv.clsMax[c] += n;
}

/** Add a [lo, hi] charge in one class. */
void
chargeRange(Interval& iv, InstrClass cls, uint64_t lo, uint64_t hi)
{
    int c = static_cast<int>(cls);
    iv.instrMin += lo;
    iv.instrMax += hi;
    iv.clsMin[c] += lo;
    iv.clsMax[c] += hi;
}

/**
 * Charge one instruction into @p iv, mirroring exactly what the
 * interpreter (isa.cc) and TaskletContext (dpu.cc) charge at runtime.
 * @return false (setting @p reason) when no finite bound exists.
 */
bool
instrCost(const Instruction& ins, uint32_t line, const ConstState& st,
          const CostModel& m, Interval& iv, std::string& reason)
{
    switch (ins.op) {
      case Opcode::Mul:
      case Opcode::Mulh: {
        // emuMulS32: 4 (sign handling) + mulBaseCost + rows *
        // mulRowCost, rows = min(nonZeroBytes(|a|), nonZeroBytes(|b|))
        // in [0, 4]. Constant operands pin or cap the row count.
        uint64_t base = 4 + emu::mulBaseCost;
        if (st[ins.ra] && st[ins.rb]) {
            uint32_t rows =
                std::min(emu::nonZeroBytes(magOf(*st[ins.ra])),
                         emu::nonZeroBytes(magOf(*st[ins.rb])));
            chargeExact(iv, InstrClass::IntMulDiv,
                        base + rows * emu::mulRowCost);
        } else if (st[ins.ra] || st[ins.rb]) {
            uint32_t cap = emu::nonZeroBytes(
                magOf(st[ins.ra] ? *st[ins.ra] : *st[ins.rb]));
            chargeRange(iv, InstrClass::IntMulDiv, base,
                        base + cap * emu::mulRowCost);
        } else {
            chargeRange(iv, InstrClass::IntMulDiv, base,
                        base + 4 * emu::mulRowCost);
        }
        return true;
      }
      case Opcode::Ldma:
      case Opcode::Sdma: {
        if (!st[ins.rb]) {
            reason = "line " + std::to_string(line) + ": " +
                     std::string(ins.op == Opcode::Ldma ? "ldma"
                                                        : "sdma") +
                     " size register r" + std::to_string(ins.rb) +
                     " is not statically constant";
            return false;
        }
        uint32_t size = static_cast<uint32_t>(*st[ins.rb]);
        // accountDma(): engine = setup + trunc(size * cyclesPerByte);
        // the tasklet stalls for latency + engine on top.
        uint64_t engine =
            m.dmaSetupCycles +
            static_cast<uint64_t>(static_cast<double>(size) *
                                  m.dmaCyclesPerByte);
        iv.engineMin += engine;
        iv.engineMax += engine;
        iv.stallMin += m.dmaLatencyCycles + engine;
        iv.stallMax += m.dmaLatencyCycles + engine;
        iv.bytesMin += size;
        iv.bytesMax += size;
        chargeExact(iv, InstrClass::DmaIssue, 2);
        return true;
      }
      case Opcode::Barrier:
        chargeExact(iv, InstrClass::Barrier, 1);
        return true;
      default:
        // Every other opcode (ALU, loads/stores, branches, movi,
        // tid/ntask, halt) charges exactly one IntAlu slot.
        chargeExact(iv, InstrClass::IntAlu, 1);
        return true;
    }
}

uint32_t
lineOf(const Program& program, uint32_t i)
{
    if (i < program.lines.size())
        return program.lines[i];
    return i + 1;
}

/** Result of evaluating a region (loop body or whole program). */
struct RegionValue
{
    bool hasLatch = false;
    Interval latch; ///< header -> back edge (one full iteration)
    bool hasExit = false;
    Interval exit; ///< header -> first edge leaving the region
};

/**
 * Propagate cost intervals through one region of the loop forest:
 * either the body of loop @p regionId or, with LoopInfo::kNone, the
 * whole program. Child loops are collapsed super-nodes whose value
 * (@p loopVal) was computed innermost-first by the caller.
 */
RegionValue
evalRegion(const Program& program, const Cfg& cfg,
           const std::vector<bool>& reachable,
           const std::vector<uint32_t>& rpo, const LoopForest& forest,
           const std::vector<Interval>& blockCost,
           const std::vector<Interval>& loopVal, uint32_t regionId)
{
    (void)program;
    const bool top = regionId == LoopInfo::kNone;
    const LoopInfo* region = top ? nullptr : &forest.loops[regionId];

    auto inRegion = [&](uint32_t b) {
        if (top)
            return reachable[b];
        return region->contains(b);
    };
    // Representative node of block b: the block itself when it sits
    // directly in this region, else the child loop (walked up to an
    // immediate child) it belongs to, keyed by that loop's header.
    auto nodeOf = [&](uint32_t b) -> std::pair<uint32_t, uint32_t> {
        uint32_t c = forest.loopOf[b];
        if (c == regionId)
            return {b, LoopInfo::kNone};
        while (forest.loops[c].parent != regionId)
            c = forest.loops[c].parent;
        return {forest.loops[c].header, c};
    };

    // Region nodes in (reverse post) order.
    std::vector<std::pair<uint32_t, uint32_t>> nodes;
    std::set<uint32_t> seen;
    for (uint32_t b : rpo) {
        if (!inRegion(b))
            continue;
        auto node = nodeOf(b);
        if (seen.insert(node.first).second)
            nodes.push_back(node);
    }

    std::map<uint32_t, Interval> in;
    std::set<uint32_t> known;
    uint32_t entryRep =
        top ? (cfg.blocks.empty() ? 0 : nodeOf(0).first)
            : region->header;
    in[entryRep] = Interval{};
    known.insert(entryRep);

    // Outgoing edges of a node: a block's successors, or every edge
    // leaving a collapsed child loop.
    auto forEachEdge = [&](const std::pair<uint32_t, uint32_t>& node,
                           const Interval& out, auto&& visit) {
        if (node.second == LoopInfo::kNone) {
            for (uint32_t s : cfg.blocks[node.first].succs)
                visit(s, out);
        } else {
            const LoopInfo& child = forest.loops[node.second];
            for (uint32_t b : child.blocks) {
                for (uint32_t s : cfg.blocks[b].succs) {
                    if (s == Cfg::kExit || !child.contains(s))
                        visit(s, out);
                }
            }
        }
    };

    auto costOf = [&](const std::pair<uint32_t, uint32_t>& node) {
        return node.second == LoopInfo::kNone
                   ? blockCost[node.first]
                   : loopVal[node.second];
    };

    // Forward fixpoint (converges fast: the collapsed region graph
    // of a reducible CFG is acyclic and nodes are in RPO).
    bool changed = true;
    while (changed) {
        changed = false;
        for (const auto& node : nodes) {
            if (!known.count(node.first))
                continue;
            Interval out = seq(in[node.first], costOf(node));
            forEachEdge(node, out, [&](uint32_t s, const Interval& o) {
                if (s == Cfg::kExit || !inRegion(s))
                    return; // exit edge: collected after convergence
                if (!top && s == region->header)
                    return; // back edge: collected after convergence
                uint32_t rep = nodeOf(s).first;
                if (!known.count(rep)) {
                    in[rep] = o;
                    known.insert(rep);
                    changed = true;
                } else {
                    Interval met = alt(in[rep], o);
                    if (!(met == in[rep])) {
                        in[rep] = met;
                        changed = true;
                    }
                }
            });
        }
    }

    RegionValue rv;
    for (const auto& node : nodes) {
        if (!known.count(node.first))
            continue;
        Interval out = seq(in[node.first], costOf(node));
        forEachEdge(node, out, [&](uint32_t s, const Interval& o) {
            if (s == Cfg::kExit || !inRegion(s)) {
                rv.exit = rv.hasExit ? alt(rv.exit, o) : o;
                rv.hasExit = true;
            } else if (!top && s == region->header) {
                rv.latch = rv.hasLatch ? alt(rv.latch, o) : o;
                rv.hasLatch = true;
            }
        });
    }
    return rv;
}

} // namespace

CycleBound
computeBound(const Program& program, const BoundOptions& options)
{
    CycleBound bound;
    bound.tasklets = options.tasklets;
    if (program.code.empty()) {
        bound.bounded = true;
        return bound;
    }

    Cfg cfg = buildCfg(program);
    std::vector<bool> reachable = reachableBlocks(cfg);
    std::vector<uint32_t> rpo = reversePostOrder(cfg);
    LoopForest forest =
        findLoops(program, cfg, options.tripAnnotations);
    if (forest.irreducible) {
        bound.reason = "irreducible control flow: loop structure "
                       "(and any trip count) is undefined";
        return bound;
    }

    ConstFixpoint fp = constFixpoint(program, cfg, reachable, rpo);

    // Per-block cost intervals from the per-point constant states.
    std::vector<Interval> blockCost(cfg.blocks.size());
    for (uint32_t b = 0; b < cfg.blocks.size(); ++b) {
        if (!reachable[b] || !fp.known[b])
            continue;
        ConstState st = fp.in[b];
        const BasicBlock& bb = cfg.blocks[b];
        for (uint32_t i = bb.first; i <= bb.last; ++i) {
            if (!instrCost(program.code[i], lineOf(program, i), st,
                           options.model, blockCost[b],
                           bound.reason))
                return bound;
            transferConst(program.code[i], st);
        }
    }

    // Collapse loops innermost-first (the forest is sorted that way).
    std::vector<Interval> loopVal(forest.loops.size());
    for (uint32_t id = 0; id < forest.loops.size(); ++id) {
        const LoopInfo& loop = forest.loops[id];
        if (!reachable[loop.header])
            continue;
        if (!loop.tripKnown && !loop.tripUpperKnown) {
            bound.reason =
                "line " +
                std::to_string(lineOf(
                    program, cfg.blocks[loop.header].last)) +
                ": loop trip count is not statically known "
                "(data-dependent bound; annotate with # @trip(N))";
            return bound;
        }
        bound.usedAnnotation |= loop.annotated;
        bound.usedTripUpper |= !loop.tripKnown;
        RegionValue rv =
            evalRegion(program, cfg, reachable, rpo, forest,
                       blockCost, loopVal, id);
        if (!rv.hasExit) {
            bound.reason =
                "line " +
                std::to_string(lineOf(
                    program, cfg.blocks[loop.header].first)) +
                ": loop has no exit edge (never terminates)";
            return bound;
        }
        // Trip iterations around the back edge, then the exit path
        // (which runs the header's final test). With only an upper
        // bound (secondary break exit) the iteration count is
        // [0, tripUpper]; the exit interval already spans every exit
        // edge, break paths included.
        Interval val = rv.exit;
        if (rv.hasLatch) {
            val = loop.tripKnown
                      ? seq(scale(rv.latch, loop.tripCount), val)
                      : seq(scaleUpper(rv.latch, loop.tripUpper),
                            val);
        }
        loopVal[id] = val;
    }

    RegionValue total =
        evalRegion(program, cfg, reachable, rpo, forest, blockCost,
                   loopVal, LoopInfo::kNone);
    if (!total.hasExit) {
        bound.reason = "no path reaches the program exit";
        return bound;
    }

    const Interval& t = total.exit;
    bound.instrMin = t.instrMin;
    bound.instrMax = t.instrMax;
    bound.stallMin = t.stallMin;
    bound.stallMax = t.stallMax;
    bound.engineMin = t.engineMin;
    bound.engineMax = t.engineMax;
    bound.bytesMin = t.bytesMin;
    bound.bytesMax = t.bytesMax;
    bound.classMin = t.clsMin;
    bound.classMax = t.clsMax;

    // Launch reconstruction (dpu.cc): cycles = max(total
    // instructions, max per-tasklet work, DMA engine occupancy),
    // with every tasklet's path independently inside the interval.
    const uint64_t T = options.tasklets;
    const uint64_t I = options.model.pipelineInterval;
    bound.bcet = std::max({T * t.instrMin,
                           t.instrMin * I + t.stallMin,
                           T * t.engineMin});
    bound.wcet = std::max({T * t.instrMax,
                           t.instrMax * I + t.stallMax,
                           T * t.engineMax});
    for (int c = 0; c < numInstrClasses; ++c)
        bound.classWorst[c] = T * t.clsMax[c];
    bound.bounded = true;
    return bound;
}

} // namespace check
} // namespace sim
} // namespace tpl
