/**
 * @file
 * Serialized cost certificates.
 *
 * A certificate bundles what the static passes proved about one
 * kernel — its cycle-bound interval (bound.h) and, when the
 * interleaving explorer ran, its race/deadlock verdict (interleave.h)
 * — into a JSON document tools can emit (`pimlint --json`), CI can
 * archive, and the serving layer can consume for cost-aware wave
 * sizing (serve/cost_book.h). The schema is documented in
 * docs/analysis.md; `parseCertificate()` round-trips everything
 * `serializeCertificate()` emits (it is a reader for this one schema,
 * not a general JSON parser).
 */

#ifndef TPL_PIMSIM_ANALYSIS_CERTIFICATE_H
#define TPL_PIMSIM_ANALYSIS_CERTIFICATE_H

#include <string>

#include "pimsim/analysis/bound.h"
#include "pimsim/analysis/interleave.h"

namespace tpl {
namespace sim {
namespace check {

/** Everything proven about one kernel, ready to serialize. */
struct KernelCertificate
{
    std::string kernel;   ///< kernel name (free-form identifier)
    CycleBound bound;     ///< static cycle bounds (bound.h)
    bool interleaveChecked = false; ///< explorer ran
    uint32_t interleaveTasklets = 0; ///< tasklets it modeled
    InterleaveVerdict interleave = InterleaveVerdict::Inconclusive;
    uint32_t interleavePhases = 0; ///< barrier phases explored
};

/** Escape @p s for embedding in a JSON string literal. */
std::string jsonEscape(const std::string& s);

/** Serialize to the JSON schema in docs/analysis.md. */
std::string serializeCertificate(const KernelCertificate& cert);

/**
 * Parse a document produced by serializeCertificate() back into
 * @p cert. Returns false (leaving @p cert partially filled) on
 * malformed input.
 */
bool parseCertificate(const std::string& json, KernelCertificate& cert);

} // namespace check
} // namespace sim
} // namespace tpl

#endif // TPL_PIMSIM_ANALYSIS_CERTIFICATE_H
