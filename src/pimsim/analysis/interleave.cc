/**
 * @file
 * Phase-wise exhaustive-equivalent tasklet-interleaving exploration.
 */

#include "pimsim/analysis/interleave.h"

#include <algorithm>
#include <cstring>

namespace tpl {
namespace sim {
namespace check {

namespace {

/** One recorded memory access (for diagnostics). */
struct Access
{
    uint32_t addr;
    uint32_t size;
    uint32_t line;
    bool write;
};

/** Cap on per-segment recorded events. Past the cap the WRAM bitmap
 * stays exact (only diagnostic line attribution degrades), but MRAM
 * conflict checking and the phase commit depend entirely on the
 * event list — an MRAM overflow therefore forces an Inconclusive
 * verdict instead of a silently incomplete race check. */
constexpr size_t kMaxEvents = 1u << 16;

/** Footprint of one tasklet's phase segment. */
struct SegmentLog
{
    std::vector<uint64_t> wramRead;  ///< byte-granular bitmap
    std::vector<uint64_t> wramWrite; ///< byte-granular bitmap
    std::vector<Access> wramEvents;
    std::vector<Access> mramEvents;
    /** wramEvents dropped entries: line attribution degrades only. */
    bool wramEventsOverflow = false;
    /** mramEvents dropped entries: conflict/commit coverage lost —
     * the explorer must refuse a race-free verdict. */
    bool mramEventsOverflow = false;
    uint32_t barrierLine = 0; ///< line of the barrier reached (if any)

    void reset(uint32_t wramBytes)
    {
        wramRead.assign((wramBytes + 63) / 64, 0);
        wramWrite.assign((wramBytes + 63) / 64, 0);
        wramEvents.clear();
        mramEvents.clear();
        wramEventsOverflow = false;
        mramEventsOverflow = false;
        barrierLine = 0;
    }

    void markWram(uint32_t addr, uint32_t size, uint32_t line,
                  bool write)
    {
        std::vector<uint64_t>& map = write ? wramWrite : wramRead;
        for (uint32_t a = addr; a < addr + size; ++a)
            map[a >> 6] |= 1ull << (a & 63);
        if (wramEvents.size() < kMaxEvents)
            wramEvents.push_back({addr, size, line, write});
        else
            wramEventsOverflow = true;
    }

    void markMram(uint32_t addr, uint32_t size, uint32_t line,
                  bool write)
    {
        if (mramEvents.size() < kMaxEvents)
            mramEvents.push_back({addr, size, line, write});
        else
            mramEventsOverflow = true;
    }
};

/** Why a phase segment stopped. */
enum class SegEnd
{
    Barrier, ///< reached a barrier rendezvous (pc past it)
    Halted,  ///< halt or fell off the end
    Fuel,    ///< instruction budget exhausted
    Error,   ///< invalid memory access
};

/** Persistent per-tasklet machine state (registers survive phases). */
struct TaskletState
{
    std::array<int32_t, 24> regs{};
    uint32_t pc = 0;
    bool halted = false;
};

/** Line of instruction @p i (fallback: index + 1). */
uint32_t
lineOf(const Program& program, uint32_t i)
{
    if (i < program.lines.size())
        return program.lines[i];
    return i + 1;
}

/**
 * Run one tasklet's segment — from its saved pc to the next barrier
 * or halt — against private memory images, recording its footprint.
 */
SegEnd
runSegment(const Program& program, const InterleaveOptions& opt,
           uint32_t tid, TaskletState& ts, std::vector<uint8_t>& wram,
           std::vector<uint8_t>& mram, SegmentLog& log,
           std::string& error)
{
    auto& r = ts.regs;
    const size_t n = program.code.size();
    uint64_t executed = 0;
    while (ts.pc < n) {
        if (executed >= opt.maxSegmentInstructions)
            return SegEnd::Fuel;
        const Instruction& ins = program.code[ts.pc];
        const uint32_t line = lineOf(program, ts.pc);
        ++executed;
        ++ts.pc;
        uint32_t ua = static_cast<uint32_t>(r[ins.ra]);
        uint32_t ub = static_cast<uint32_t>(r[ins.rb]);
        switch (ins.op) {
          case Opcode::Add:
            r[ins.rd] = static_cast<int32_t>(ua + ub);
            break;
          case Opcode::Addi:
            r[ins.rd] = static_cast<int32_t>(
                ua + static_cast<uint32_t>(ins.imm));
            break;
          case Opcode::Sub:
            r[ins.rd] = static_cast<int32_t>(ua - ub);
            break;
          case Opcode::Subi:
            r[ins.rd] = static_cast<int32_t>(
                ua - static_cast<uint32_t>(ins.imm));
            break;
          case Opcode::And:
            r[ins.rd] = static_cast<int32_t>(ua & ub);
            break;
          case Opcode::Andi:
            r[ins.rd] = static_cast<int32_t>(
                ua & static_cast<uint32_t>(ins.imm));
            break;
          case Opcode::Or:
            r[ins.rd] = static_cast<int32_t>(ua | ub);
            break;
          case Opcode::Ori:
            r[ins.rd] = static_cast<int32_t>(
                ua | static_cast<uint32_t>(ins.imm));
            break;
          case Opcode::Xor:
            r[ins.rd] = static_cast<int32_t>(ua ^ ub);
            break;
          case Opcode::Xori:
            r[ins.rd] = static_cast<int32_t>(
                ua ^ static_cast<uint32_t>(ins.imm));
            break;
          case Opcode::Sll:
            r[ins.rd] = static_cast<int32_t>(ua << (ub & 31));
            break;
          case Opcode::Slli:
            r[ins.rd] = static_cast<int32_t>(ua << (ins.imm & 31));
            break;
          case Opcode::Srl:
            r[ins.rd] = static_cast<int32_t>(ua >> (ub & 31));
            break;
          case Opcode::Srli:
            r[ins.rd] = static_cast<int32_t>(ua >> (ins.imm & 31));
            break;
          case Opcode::Sra:
            r[ins.rd] = r[ins.ra] >> (ub & 31);
            break;
          case Opcode::Srai:
            r[ins.rd] = r[ins.ra] >> (ins.imm & 31);
            break;
          case Opcode::Mul: {
            int64_t prod = static_cast<int64_t>(r[ins.ra]) *
                           static_cast<int64_t>(r[ins.rb]);
            r[ins.rd] = static_cast<int32_t>(prod);
            break;
          }
          case Opcode::Mulh: {
            int64_t prod = static_cast<int64_t>(r[ins.ra]) *
                           static_cast<int64_t>(r[ins.rb]);
            r[ins.rd] = static_cast<int32_t>(prod >> 32);
            break;
          }
          case Opcode::Movi:
            r[ins.rd] = ins.imm;
            break;
          case Opcode::Tid:
            r[ins.rd] = static_cast<int32_t>(tid);
            break;
          case Opcode::Ntask:
            r[ins.rd] = static_cast<int32_t>(opt.tasklets);
            break;
          case Opcode::Ldw: {
            uint32_t addr = ua + static_cast<uint32_t>(ins.imm);
            if (static_cast<uint64_t>(addr) + 4 > wram.size()) {
                error = "line " + std::to_string(line) +
                        ": WRAM load out of the explorer image";
                return SegEnd::Error;
            }
            log.markWram(addr, 4, line, false);
            int32_t v;
            std::memcpy(&v, wram.data() + addr, 4);
            r[ins.rd] = v;
            break;
          }
          case Opcode::Stw: {
            uint32_t addr = ua + static_cast<uint32_t>(ins.imm);
            if (static_cast<uint64_t>(addr) + 4 > wram.size()) {
                error = "line " + std::to_string(line) +
                        ": WRAM store out of the explorer image";
                return SegEnd::Error;
            }
            log.markWram(addr, 4, line, true);
            std::memcpy(wram.data() + addr, &r[ins.rd], 4);
            break;
          }
          case Opcode::Ldma:
          case Opcode::Sdma: {
            uint32_t wa = static_cast<uint32_t>(r[ins.rd]);
            uint32_t ma = ua;
            uint32_t size = ub;
            if (static_cast<uint64_t>(wa) + size > wram.size() ||
                static_cast<uint64_t>(ma) + size > mram.size()) {
                error = "line " + std::to_string(line) +
                        ": DMA range out of the explorer images";
                return SegEnd::Error;
            }
            bool toWram = ins.op == Opcode::Ldma;
            log.markWram(wa, size, line, toWram);
            log.markMram(ma, size, line, !toWram);
            if (toWram)
                std::memcpy(wram.data() + wa, mram.data() + ma,
                            size);
            else
                std::memcpy(mram.data() + ma, wram.data() + wa,
                            size);
            break;
          }
          case Opcode::Beq:
            if (r[ins.ra] == r[ins.rb])
                ts.pc = static_cast<uint32_t>(ins.imm);
            break;
          case Opcode::Bne:
            if (r[ins.ra] != r[ins.rb])
                ts.pc = static_cast<uint32_t>(ins.imm);
            break;
          case Opcode::Blt:
            if (r[ins.ra] < r[ins.rb])
                ts.pc = static_cast<uint32_t>(ins.imm);
            break;
          case Opcode::Bge:
            if (r[ins.ra] >= r[ins.rb])
                ts.pc = static_cast<uint32_t>(ins.imm);
            break;
          case Opcode::Bltu:
            if (ua < ub)
                ts.pc = static_cast<uint32_t>(ins.imm);
            break;
          case Opcode::Bgeu:
            if (ua >= ub)
                ts.pc = static_cast<uint32_t>(ins.imm);
            break;
          case Opcode::Jmp:
            ts.pc = static_cast<uint32_t>(ins.imm);
            break;
          case Opcode::Barrier:
            log.barrierLine = line;
            return SegEnd::Barrier;
          case Opcode::Halt:
            ts.halted = true;
            return SegEnd::Halted;
        }
    }
    ts.halted = true;
    return SegEnd::Halted;
}

/** Line of an event of tasklet @p log covering @p addr. */
uint32_t
eventLine(const SegmentLog& log, uint32_t addr, bool wantWrite)
{
    for (const Access& a : log.wramEvents) {
        if (a.write == wantWrite && addr >= a.addr &&
            addr < a.addr + a.size)
            return a.line;
    }
    return 0;
}

/**
 * First overlapping pair between two address-sorted interval lists
 * (two-pointer sweep, O(|a| + |b|)): at a non-overlapping pair the
 * interval with the smaller end cannot overlap anything later in the
 * other list (starts only grow), so it can be discarded.
 */
bool
firstOverlap(const std::vector<Access>& a, const std::vector<Access>& b,
             const Access*& outA, const Access*& outB)
{
    size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
        uint64_t aEnd = static_cast<uint64_t>(a[i].addr) + a[i].size;
        uint64_t bEnd = static_cast<uint64_t>(b[j].addr) + b[j].size;
        if (a[i].addr < bEnd && b[j].addr < aEnd) {
            outA = &a[i];
            outB = &b[j];
            return true;
        }
        if (aEnd <= bEnd)
            ++i;
        else
            ++j;
    }
    return false;
}

} // namespace

const char*
toString(InterleaveVerdict verdict)
{
    switch (verdict) {
      case InterleaveVerdict::RaceFree: return "race-free";
      case InterleaveVerdict::Race: return "race";
      case InterleaveVerdict::Deadlock: return "deadlock";
      case InterleaveVerdict::Inconclusive: return "inconclusive";
    }
    return "?";
}

InterleaveExplorer::InterleaveExplorer(Program program,
                                       InterleaveOptions options)
    : program_(std::move(program)), options_(options),
      wramInit_(options.wramBytes, 0), mramInit_(options.mramBytes, 0)
{
}

void
InterleaveExplorer::stageWram(uint32_t addr, const void* data,
                              uint32_t size)
{
    if (static_cast<uint64_t>(addr) + size > wramInit_.size())
        throw std::out_of_range("stageWram beyond explorer image");
    std::memcpy(wramInit_.data() + addr, data, size);
}

void
InterleaveExplorer::stageMram(uint32_t addr, const void* data,
                              uint32_t size)
{
    if (static_cast<uint64_t>(addr) + size > mramInit_.size())
        throw std::out_of_range("stageMram beyond explorer image");
    std::memcpy(mramInit_.data() + addr, data, size);
}

InterleaveResult
InterleaveExplorer::explore() const
{
    InterleaveResult res;
    const uint32_t T = options_.tasklets;
    if (T == 0 || program_.code.empty()) {
        res.verdict = InterleaveVerdict::RaceFree;
        return res;
    }

    std::vector<uint8_t> wram = wramInit_;
    std::vector<uint8_t> mram = mramInit_;
    std::vector<TaskletState> states(T);
    std::vector<SegmentLog> logs(T);
    std::vector<std::vector<uint8_t>> privWram(T), privMram(T);
    std::vector<SegEnd> ends(T, SegEnd::Halted);

    while (res.phases < options_.maxPhases) {
        // Run every live tasklet's segment in isolation against the
        // phase-entry snapshot.
        for (uint32_t t = 0; t < T; ++t) {
            if (states[t].halted)
                continue;
            privWram[t] = wram;
            privMram[t] = mram;
            logs[t].reset(options_.wramBytes);
            std::string error;
            ends[t] = runSegment(program_, options_, t, states[t],
                                 privWram[t], privMram[t], logs[t],
                                 error);
            if (ends[t] == SegEnd::Error) {
                res.verdict = InterleaveVerdict::Inconclusive;
                res.note = "tasklet " + std::to_string(t) + ": " +
                           error;
                return res;
            }
            if (ends[t] == SegEnd::Fuel) {
                res.verdict = InterleaveVerdict::Inconclusive;
                res.note = "tasklet " + std::to_string(t) +
                           " exceeded the per-segment instruction "
                           "budget";
                return res;
            }
            if (logs[t].mramEventsOverflow) {
                // MRAM conflict checking and the phase commit depend
                // entirely on the event list (the WRAM bitmap stays
                // exact); dropped events would silently exclude DMA
                // accesses from the race check.
                res.verdict = InterleaveVerdict::Inconclusive;
                res.note = "tasklet " + std::to_string(t) +
                           " issued more than " +
                           std::to_string(kMaxEvents) +
                           " DMA accesses in one phase; MRAM "
                           "conflict checking would be incomplete";
                return res;
            }
        }

        // Address-sorted MRAM read/write interval lists per tasklet
        // (for the pairwise overlap sweeps below).
        std::vector<std::vector<Access>> mramWrites(T), mramReads(T);
        for (uint32_t t = 0; t < T; ++t) {
            for (const Access& a : logs[t].mramEvents)
                (a.write ? mramWrites : mramReads)[t].push_back(a);
            auto byAddr = [](const Access& x, const Access& y) {
                return x.addr < y.addr;
            };
            std::sort(mramWrites[t].begin(), mramWrites[t].end(),
                      byAddr);
            std::sort(mramReads[t].begin(), mramReads[t].end(),
                      byAddr);
        }

        // Pairwise footprint conflicts: a write overlapping another
        // tasklet's access in the same phase is a race under some
        // interleaving (and every interleaving is covered — see the
        // header comment).
        for (uint32_t i = 0; i < T; ++i) {
            if (states[i].halted && logs[i].wramWrite.empty())
                continue;
            for (uint32_t j = i + 1; j < T; ++j) {
                if (logs[i].wramWrite.empty() ||
                    logs[j].wramWrite.empty())
                    continue; // a tasklet that never ran this phase
                for (size_t w = 0; w < logs[i].wramWrite.size();
                     ++w) {
                    uint64_t conflict =
                        (logs[i].wramWrite[w] &
                         (logs[j].wramRead[w] |
                          logs[j].wramWrite[w])) |
                        (logs[j].wramWrite[w] &
                         logs[i].wramRead[w]);
                    if (!conflict)
                        continue;
                    uint32_t addr = static_cast<uint32_t>(
                        w * 64 +
                        __builtin_ctzll(conflict));
                    bool iWrites =
                        (logs[i].wramWrite[w] >>
                         (addr & 63)) & 1;
                    uint32_t wl = eventLine(
                        iWrites ? logs[i] : logs[j], addr, true);
                    uint32_t ol = eventLine(
                        iWrites ? logs[j] : logs[i], addr, true);
                    if (!ol)
                        ol = eventLine(iWrites ? logs[j] : logs[i],
                                       addr, false);
                    res.diags.push_back(
                        {CheckKind::TaskletRace, Severity::Error,
                         wl,
                         "tasklets " + std::to_string(i) + " and " +
                             std::to_string(j) +
                             " conflict on WRAM[" +
                             std::to_string(addr) +
                             "] within one barrier phase (write at "
                             "line " +
                             std::to_string(wl) +
                             ", concurrent access at line " +
                             std::to_string(ol) + ")"});
                    res.verdict = InterleaveVerdict::Race;
                    return res;
                }
                // MRAM: DMA ranges. Three overlap sweeps over the
                // sorted lists (write/write, write/read,
                // read/write) — read-read pairs never conflict.
                auto mramConflict = [&](const Access& wr,
                                        const Access& other) {
                    res.diags.push_back(
                        {CheckKind::TaskletRace, Severity::Error,
                         wr.line,
                         "tasklets " + std::to_string(i) + " and " +
                             std::to_string(j) +
                             " conflict on MRAM[" +
                             std::to_string(
                                 std::max(wr.addr, other.addr)) +
                             "] within one barrier phase "
                             "(DMA write at line " +
                             std::to_string(wr.line) +
                             ", concurrent DMA at line " +
                             std::to_string(other.line) + ")"});
                    res.verdict = InterleaveVerdict::Race;
                };
                const Access* a = nullptr;
                const Access* b = nullptr;
                if (firstOverlap(mramWrites[i], mramWrites[j], a,
                                 b) ||
                    firstOverlap(mramWrites[i], mramReads[j], a,
                                 b)) {
                    mramConflict(*a, *b);
                    return res;
                }
                if (firstOverlap(mramReads[i], mramWrites[j], a,
                                 b)) {
                    mramConflict(*b, *a);
                    return res;
                }
            }
        }

        // Commit the phase: conflict-free writes are pairwise
        // disjoint, so merging them is order-independent.
        uint32_t arrived = 0, halted = 0;
        uint32_t arrivedT = 0, haltedT = 0;
        for (uint32_t t = 0; t < T; ++t) {
            if (logs[t].wramWrite.empty())
                continue; // was already halted before this phase
            for (size_t w = 0; w < logs[t].wramWrite.size(); ++w) {
                uint64_t bits = logs[t].wramWrite[w];
                while (bits) {
                    uint32_t bit = __builtin_ctzll(bits);
                    bits &= bits - 1;
                    uint32_t addr =
                        static_cast<uint32_t>(w * 64 + bit);
                    wram[addr] = privWram[t][addr];
                }
            }
            for (const Access& a : logs[t].mramEvents) {
                if (a.write)
                    std::memcpy(mram.data() + a.addr,
                                privMram[t].data() + a.addr,
                                a.size);
            }
            if (ends[t] == SegEnd::Barrier) {
                ++arrived;
                arrivedT = t;
            } else {
                ++halted;
                haltedT = t;
            }
        }
        ++res.phases;

        if (arrived == 0) {
            res.verdict = InterleaveVerdict::RaceFree;
            return res;
        }
        if (halted > 0) {
            res.diags.push_back(
                {CheckKind::BarrierDeadlock, Severity::Error,
                 logs[arrivedT].barrierLine,
                 "tasklet " + std::to_string(arrivedT) +
                     " waits at this barrier but tasklet " +
                     std::to_string(haltedT) +
                     " has already halted: the rendezvous never "
                     "completes"});
            res.verdict = InterleaveVerdict::Deadlock;
            return res;
        }
        // All tasklets arrived: released together into the next
        // phase (the cleared logs make halted detection exact).
    }
    res.verdict = InterleaveVerdict::Inconclusive;
    res.note = "barrier-phase budget exhausted after " +
               std::to_string(res.phases) + " phases";
    return res;
}

} // namespace check
} // namespace sim
} // namespace tpl
