/**
 * @file
 * Diagnostics shared by the pimcheck static verifier and the runtime
 * sanitizer.
 *
 * Every check in the analysis module reports through the same
 * structured `Diagnostic` record (kind + severity + source line +
 * human-readable message) so tests can assert on exactly which check
 * fired and tools can format them uniformly.
 */

#ifndef TPL_PIMSIM_ANALYSIS_DIAG_H
#define TPL_PIMSIM_ANALYSIS_DIAG_H

#include <cstdint>
#include <string>
#include <vector>

namespace tpl {
namespace sim {
namespace check {

/** Which check produced a diagnostic. */
enum class CheckKind
{
    // Static verifier (verify.h).
    UninitRegister,      ///< register may be read before it is written
    InvalidBranchTarget, ///< branch/jump outside the program
    UnreachableCode,     ///< basic block no path from entry reaches
    WramOutOfBounds,     ///< WRAM access beyond the scratchpad
    MramOutOfBounds,     ///< MRAM access beyond the bank
    DmaBadAlignment,     ///< DMA address not 8-byte aligned
    DmaBadSize,          ///< DMA size zero, not a multiple of 8, or
                         ///< above the per-transfer maximum
    BarrierImbalance,    ///< paths reach a join / exit with differing
                         ///< barrier counts (deadlock on hardware)
    // Runtime sanitizer (sanitizer.h).
    UninitWramLoad,      ///< load from WRAM bytes never stored to
    TaskletRace,         ///< cross-tasklet WRAM conflict with no
                         ///< separating barrier
    // Interleaving explorer (interleave.h).
    BarrierDeadlock,     ///< a tasklet halts while another waits at a
                         ///< barrier rendezvous
    // Cycle-bound pass (bound.h).
    UnboundedCost,       ///< no finite static cycle bound exists
};

/** Diagnostic severity. Errors fail `pimlint`; warnings do not. */
enum class Severity
{
    Warning,
    Error,
};

/** One finding, ready for asserting on or printing. */
struct Diagnostic
{
    CheckKind kind;
    Severity severity;
    /** 1-based assembly source line, or 0 when no line is known
     * (e.g. a DMA issued from a C++ kernel). */
    uint32_t line;
    std::string message;
};

/** Stable short name of a check kind, e.g. "uninit-register". */
const char* toString(CheckKind kind);

/** "warning" or "error". */
const char* toString(Severity severity);

/** Format as "line 12: error: <message> [uninit-register]". */
std::string format(const Diagnostic& diag);

/** True if any diagnostic in @p diags has Severity::Error. */
bool hasErrors(const std::vector<Diagnostic>& diags);

/** Count diagnostics of a given kind. */
size_t countOf(const std::vector<Diagnostic>& diags, CheckKind kind);

} // namespace check
} // namespace sim
} // namespace tpl

#endif // TPL_PIMSIM_ANALYSIS_DIAG_H
