/**
 * @file
 * Bounded exhaustive tasklet-interleaving checking for mini-ISA
 * kernels.
 *
 * The runtime sanitizer's race detector (sanitizer.h) observes ONE
 * schedule — the sequential order the simulator happens to run
 * tasklets in — so a clean run is evidence, not proof. This explorer
 * upgrades the verdict to *sound* for barrier-synchronized kernels by
 * exploiting their phase structure instead of enumerating schedules:
 *
 *   Between two consecutive barrier rendezvous, tasklets share no
 *   ordering. Two phase segments either touch disjoint memory — then
 *   they commute and every interleaving produces the same state — or
 *   they conflict (some tasklet writes a byte another reads or
 *   writes), and some interleaving orders the conflicting accesses
 *   adjacently in either order: a race by definition. So checking
 *   pairwise footprint disjointness per phase is *equivalent* to
 *   enumerating every interleaving (a DPOR with maximal persistent
 *   sets), at the cost of running each tasklet's segment once.
 *
 * Each phase runs every tasklet's segment against a private copy of
 * the phase-entry memory snapshot, records byte-granular WRAM and
 * MRAM read/write footprints, reports any cross-tasklet conflict as
 * a race, and detects barrier deadlock (a tasklet halting while
 * another waits at the rendezvous — the dynamic counterpart of the
 * verifier's barrier-balance pass). Fuel caps keep exploration
 * bounded; running out — including overflowing the per-segment DMA
 * event list the MRAM checks depend on — yields an explicit
 * `Inconclusive`, never a false "race-free" stamp.
 *
 * The verdict is exact for kernels whose control flow does not
 * depend on values another tasklet wrote (true of barrier-free and
 * publish-then-consume kernels alike); data staged via `stageWram`/
 * `stageMram` parameterizes kernels whose flow depends on inputs.
 */

#ifndef TPL_PIMSIM_ANALYSIS_INTERLEAVE_H
#define TPL_PIMSIM_ANALYSIS_INTERLEAVE_H

#include <cstdint>
#include <string>
#include <vector>

#include "pimsim/analysis/diag.h"
#include "pimsim/isa.h"

namespace tpl {
namespace sim {
namespace check {

/** Outcome of exhaustive-equivalent interleaving exploration. */
enum class InterleaveVerdict
{
    RaceFree,     ///< no interleaving of any phase races or deadlocks
    Race,         ///< a conflicting access pair exists (diagnosed)
    Deadlock,     ///< some tasklet halts while another waits at a
                  ///< barrier rendezvous
    Inconclusive, ///< fuel exhausted or a runtime error; no verdict
};

/** Stable short name of a verdict, e.g. "race-free". */
const char* toString(InterleaveVerdict verdict);

/** Exploration parameters. */
struct InterleaveOptions
{
    uint32_t tasklets = 2;            ///< tasklets to model
    uint32_t wramBytes = 64 * 1024;   ///< scratchpad image size
    uint32_t mramBytes = 1u << 20;    ///< MRAM image size (explorer
                                      ///< models only this window)
    /** Per-tasklet instruction budget per phase segment. */
    uint64_t maxSegmentInstructions = 1u << 20;
    /** Barrier-phase budget. */
    uint32_t maxPhases = 1u << 12;
};

/** Exploration result. */
struct InterleaveResult
{
    InterleaveVerdict verdict = InterleaveVerdict::Inconclusive;
    /** Race / deadlock findings (line-tagged, same shape as the
     * verifier's). Empty for RaceFree. */
    std::vector<Diagnostic> diags;
    uint32_t phases = 0; ///< barrier phases fully explored
    std::string note;    ///< cause detail for Inconclusive
};

/**
 * Explore every tasklet interleaving of @p program (by phase-wise
 * footprint checking — see the file comment for why that is
 * exhaustive-equivalent). Stage input data first if control flow
 * depends on it.
 */
class InterleaveExplorer
{
  public:
    InterleaveExplorer(Program program, InterleaveOptions options);

    /** Pre-load WRAM bytes (host staging before the launch). */
    void stageWram(uint32_t addr, const void* data, uint32_t size);

    /** Pre-load MRAM bytes. */
    void stageMram(uint32_t addr, const void* data, uint32_t size);

    /** Run the exploration. Idempotent: each call restarts from the
     * staged images. */
    InterleaveResult explore() const;

  private:
    Program program_;
    InterleaveOptions options_;
    std::vector<uint8_t> wramInit_;
    std::vector<uint8_t> mramInit_;
};

} // namespace check
} // namespace sim
} // namespace tpl

#endif // TPL_PIMSIM_ANALYSIS_INTERLEAVE_H
