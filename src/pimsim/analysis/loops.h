/**
 * @file
 * Natural-loop analysis over mini-ISA CFGs: dominators, loop nesting,
 * and trip-count inference.
 *
 * The static cycle-bound pass (bound.h) and the barrier-balance pass
 * (verify.cc) both need to know *how often* a loop body executes.
 * This pass finds natural loops from dominance back edges, nests them
 * into a forest, and infers constant trip counts for the common
 * counted-loop shape the mini-ISA kernels use:
 *
 *     movi  rI, <init>          # (or any statically-constant init)
 *   loop:
 *     bge   rI, rN, done        # header-tested, rN loop-invariant
 *     ...
 *     addi  rI, rI, <step>      # single increment dominating latch
 *     jmp   loop
 *
 * Inference simulates the exact branch semantics (signed/unsigned,
 * 32-bit wraparound) rather than solving a closed form, so any
 * init/step/bound combination the interpreter terminates on gets the
 * exact count. Loops whose trip depends on data (or on `ntask`) stay
 * unknown; a `# @trip(N)` annotation on any source line inside the
 * loop supplies the count by hand, and the certificate records that
 * the bound rests on an annotation.
 *
 * A count is *exact* only for loops whose sole exit is the header
 * test (`headerOnlyExit`). A loop with a secondary, data-dependent
 * exit in its body (a break) can leave earlier than the header test
 * would, so the counted-header number is just an upper bound on
 * completed iterations: such loops carry `tripUpperKnown`/`tripUpper`
 * instead of `tripKnown`/`tripCount`. Consumers that need every
 * tasklet to iterate the same number of times (barrier balance, the
 * BCET side of cycle bounds) must require `tripKnown`; WCET-style
 * consumers may scale by `tripUpper`. `@trip` annotations obey the
 * same rule: on a multi-exit loop they only supply the upper bound.
 */

#ifndef TPL_PIMSIM_ANALYSIS_LOOPS_H
#define TPL_PIMSIM_ANALYSIS_LOOPS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "pimsim/analysis/cfg.h"
#include "pimsim/isa.h"

namespace tpl {
namespace sim {
namespace check {

/** One natural loop (identified by its header block). */
struct LoopInfo
{
    /** Sentinel for "no loop" / "no parent". */
    static constexpr uint32_t kNone = 0xffffffffu;

    uint32_t header = 0;          ///< header block id
    std::vector<uint32_t> blocks; ///< member blocks incl. nested, sorted
    std::vector<uint32_t> latches; ///< blocks with a back edge to header
    uint32_t parent = kNone;      ///< immediate enclosing loop, or kNone
    std::vector<uint32_t> children; ///< immediate child loop ids
    uint32_t depth = 1;           ///< nesting depth (top-level = 1)

    /** Every edge leaving the loop originates from the header block
     * (no break in the body). Precondition for an exact trip. */
    bool headerOnlyExit = false;

    bool tripKnown = false;  ///< exact constant trip count available
    uint64_t tripCount = 0;  ///< body executions per entry (if known)
    /** Upper bound on completed iterations, for counted loops with a
     * secondary exit (the header test would exit after `tripUpper`
     * iterations; a break can only leave earlier). */
    bool tripUpperKnown = false;
    uint64_t tripUpper = 0;
    bool annotated = false;  ///< trip came from a @trip() annotation

    /** True when @p block is a member of this loop. */
    bool contains(uint32_t block) const;
};

/** All loops of a program, nested into a forest. */
struct LoopForest
{
    std::vector<LoopInfo> loops;
    /** Innermost loop id containing each block (LoopInfo::kNone if
     * the block is in no loop). */
    std::vector<uint32_t> loopOf;
    /** True when the CFG has a retreating edge that is not a
     * dominance back edge: loop structure (and any bound built on
     * it) is undefined. */
    bool irreducible = false;
};

/**
 * Immediate dominator of every block (entry block dominates itself;
 * unreachable blocks get Cfg::kExit as a "no dominator" sentinel).
 * Cooper-Harvey-Kennedy iterative algorithm over reverse post-order.
 */
std::vector<uint32_t> dominators(const Cfg& cfg);

/**
 * Find natural loops, nest them, and infer trip counts.
 * @param tripAnnotations map of 1-based source line to trip count,
 *        from parseTripAnnotations(); applied to loops whose trip
 *        inference fails (inference wins when both are available).
 */
LoopForest findLoops(const Program& program, const Cfg& cfg,
                     const std::map<uint32_t, uint64_t>&
                         tripAnnotations = {});

/**
 * Scan assembly source for `@trip(N)` annotations (conventionally in
 * a `#` comment on a line inside the loop). Returns 1-based source
 * line -> N.
 */
std::map<uint32_t, uint64_t> parseTripAnnotations(
    const std::string& source);

} // namespace check
} // namespace sim
} // namespace tpl

#endif // TPL_PIMSIM_ANALYSIS_LOOPS_H
