/**
 * @file
 * Runtime sanitizer implementation.
 */

#include "pimsim/analysis/sanitizer.h"

#include <algorithm>
#include <string>

#include "pimsim/obs/metrics.h"

namespace tpl {
namespace sim {
namespace check {

Sanitizer::Sanitizer(uint32_t wramBytes, uint64_t mramBytes,
                     const CheckConfig& config)
    : config_(config), wramBytes_(wramBytes), mramBytes_(mramBytes),
      shadowInit_(wramBytes, 0),
      lastWriter_((wramBytes + 3) / 4)
{
}

Sanitizer::Sanitizer(const DpuCore& core, const CheckConfig& config)
    : Sanitizer(core.model().wramBytes, core.model().mramBytes, config)
{
}

void
Sanitizer::poisonWram()
{
    std::fill(shadowInit_.begin(), shadowInit_.end(), 0);
}

void
Sanitizer::markWramInitialized(uint32_t addr, uint64_t size)
{
    if (addr >= wramBytes_)
        return;
    uint64_t end = std::min<uint64_t>(addr + size, wramBytes_);
    std::fill(shadowInit_.begin() + addr, shadowInit_.begin() + end, 1);
}

void
Sanitizer::beginLaunch(uint32_t numTasklets)
{
    epochs_.assign(numTasklets, 1);
    std::fill(lastWriter_.begin(), lastWriter_.end(), Writer{});
}

void
Sanitizer::report(CheckKind kind, uint32_t line, uint64_t dedupKey,
                  std::string message)
{
    if (diags_.size() >= config_.maxDiagnostics)
        return;
    if (!reported_.insert({static_cast<int>(kind), line, dedupKey})
             .second)
        return;
    // Runtime findings surface in the same metrics dump as the cycle
    // attribution, keyed by the diagnostic's stable kind name.
    obs::Registry& reg = obs::Registry::global();
    if (reg.enabled())
        reg.counter(std::string("pimcheck/sanitizer/") +
                    toString(kind))
            .add(1);
    diags_.push_back(
        {kind, Severity::Error, line, std::move(message)});
}

void
Sanitizer::raceCheck(uint32_t tasklet, uint32_t addr, uint32_t size,
                     bool isWrite, uint32_t line)
{
    if (tasklet >= epochs_.size())
        return; // access outside a launch (host staging)
    uint32_t epoch = epochs_[tasklet];
    uint64_t end = std::min<uint64_t>(static_cast<uint64_t>(addr) + size,
                                      wramBytes_);
    for (uint64_t w = addr / 4; w * 4 < end; ++w) {
        Writer& lw = lastWriter_[w];
        if (config_.detectRaces && lw.tasklet >= 0 &&
            lw.tasklet != static_cast<int32_t>(tasklet) &&
            lw.epoch >= epoch) {
            report(CheckKind::TaskletRace, line, w,
                   std::string("tasklet ") + std::to_string(tasklet) +
                       (isWrite ? " writes" : " reads") + " WRAM[" +
                       std::to_string(w * 4) +
                       "] last written by tasklet " +
                       std::to_string(lw.tasklet) +
                       " with no barrier in between");
        }
        if (isWrite)
            lw = {static_cast<int32_t>(tasklet), epoch};
    }
}

void
Sanitizer::onWramLoad(uint32_t tasklet, uint32_t addr, uint32_t size,
                      uint32_t line)
{
    if (static_cast<uint64_t>(addr) + size > wramBytes_) {
        if (config_.checkBounds) {
            report(CheckKind::WramOutOfBounds, line, addr,
                   "load of " + std::to_string(size) +
                       " bytes at WRAM[" + std::to_string(addr) +
                       "] beyond the " + std::to_string(wramBytes_) +
                       "-byte scratchpad");
        }
        if (addr >= wramBytes_)
            return;
    }
    uint64_t end = std::min<uint64_t>(static_cast<uint64_t>(addr) + size,
                                      wramBytes_);
    if (config_.poisonWram) {
        for (uint64_t b = addr; b < end; ++b) {
            if (!shadowInit_[b]) {
                report(CheckKind::UninitWramLoad, line, addr,
                       "load of " + std::to_string(size) +
                           " bytes at WRAM[" + std::to_string(addr) +
                           "] reads bytes never stored to");
                break;
            }
        }
        // Mark after reporting so each poisoned region reports once.
        std::fill(shadowInit_.begin() + addr, shadowInit_.begin() + end,
                  1);
    }
    raceCheck(tasklet, addr, static_cast<uint32_t>(end - addr), false,
              line);
}

void
Sanitizer::onWramStore(uint32_t tasklet, uint32_t addr, uint32_t size,
                       uint32_t line)
{
    if (static_cast<uint64_t>(addr) + size > wramBytes_) {
        if (config_.checkBounds) {
            report(CheckKind::WramOutOfBounds, line, addr,
                   "store of " + std::to_string(size) +
                       " bytes at WRAM[" + std::to_string(addr) +
                       "] beyond the " + std::to_string(wramBytes_) +
                       "-byte scratchpad");
        }
        if (addr >= wramBytes_)
            return;
    }
    uint64_t end = std::min<uint64_t>(static_cast<uint64_t>(addr) + size,
                                      wramBytes_);
    std::fill(shadowInit_.begin() + addr, shadowInit_.begin() + end, 1);
    raceCheck(tasklet, addr, static_cast<uint32_t>(end - addr), true,
              line);
}

void
Sanitizer::onDma(uint32_t tasklet, uint64_t mramAddr, int64_t wramAddr,
                 uint32_t size, uint32_t line)
{
    (void)tasklet;
    if (config_.checkDma) {
        if (size == 0 || size % 8 != 0 || size > config_.maxDmaBytes) {
            report(CheckKind::DmaBadSize, line, size,
                   "DMA transfer size " + std::to_string(size) +
                       " must be a non-zero multiple of 8 and at most " +
                       std::to_string(config_.maxDmaBytes) + " bytes");
        }
        if (mramAddr % 8 != 0) {
            report(CheckKind::DmaBadAlignment, line, mramAddr,
                   "DMA MRAM address " + std::to_string(mramAddr) +
                       " is not 8-byte aligned");
        }
        if (wramAddr >= 0 && wramAddr % 8 != 0) {
            report(CheckKind::DmaBadAlignment, line,
                   static_cast<uint64_t>(wramAddr),
                   "DMA WRAM address " + std::to_string(wramAddr) +
                       " is not 8-byte aligned");
        }
    }
    if (config_.checkBounds && mramAddr + size > mramBytes_) {
        report(CheckKind::MramOutOfBounds, line, mramAddr,
               "DMA MRAM range [" + std::to_string(mramAddr) + ", " +
                   std::to_string(mramAddr + size) + ") beyond the " +
                   std::to_string(mramBytes_) + "-byte bank");
    }
}

void
Sanitizer::onBarrier(uint32_t tasklet)
{
    if (tasklet < epochs_.size())
        ++epochs_[tasklet];
}

void
Sanitizer::clearDiagnostics()
{
    diags_.clear();
    reported_.clear();
}

} // namespace check
} // namespace sim
} // namespace tpl
