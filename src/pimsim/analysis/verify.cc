/**
 * @file
 * Static verifier passes.
 */

#include "pimsim/analysis/verify.h"

#include <algorithm>
#include <array>
#include <map>
#include <optional>

#include "pimsim/analysis/cfg.h"
#include "pimsim/analysis/constprop.h"
#include "pimsim/analysis/loops.h"

namespace tpl {
namespace sim {
namespace check {

namespace {

constexpr uint32_t kNumRegs = 24;
constexpr uint32_t kAllRegs = (1u << kNumRegs) - 1;

/** Source line of instruction @p i (hand-built programs may omit
 * the line table; fall back to the instruction index). */
uint32_t
lineOf(const Program& program, uint32_t i)
{
    if (i < program.lines.size())
        return program.lines[i];
    return i + 1;
}

std::string
regName(uint32_t reg)
{
    return "r" + std::to_string(reg);
}

// ---------------------------------------------------------------------
// Pass: branch-target validity
// ---------------------------------------------------------------------

bool
checkBranchTargets(const Program& program, std::vector<Diagnostic>& diags)
{
    bool ok = true;
    const auto n = static_cast<int64_t>(program.code.size());
    for (uint32_t i = 0; i < program.code.size(); ++i) {
        const Instruction& ins = program.code[i];
        const OpTraits& tr = opTraits(ins.op);
        if (!tr.condBranch && !tr.jump)
            continue;
        // Target == n is the label after the last instruction (a
        // trailing "done:" label): a legal exit.
        if (ins.imm < 0 || ins.imm > n) {
            diags.push_back({CheckKind::InvalidBranchTarget,
                             Severity::Error, lineOf(program, i),
                             "branch target " + std::to_string(ins.imm) +
                                 " outside program of " +
                                 std::to_string(n) + " instructions"});
            ok = false;
        }
    }
    return ok;
}

// ---------------------------------------------------------------------
// Pass: unreachable code
// ---------------------------------------------------------------------

void
checkUnreachable(const Program& program, const Cfg& cfg,
                 const std::vector<bool>& reachable,
                 std::vector<Diagnostic>& diags)
{
    for (uint32_t b = 0; b < cfg.blocks.size(); ++b) {
        if (reachable[b])
            continue;
        const BasicBlock& bb = cfg.blocks[b];
        diags.push_back({CheckKind::UnreachableCode, Severity::Warning,
                         lineOf(program, bb.first),
                         "unreachable code (" +
                             std::to_string(bb.last - bb.first + 1) +
                             " instruction(s) no path reaches)"});
    }
}

// ---------------------------------------------------------------------
// Pass: def-before-use (forward "definitely assigned" dataflow)
// ---------------------------------------------------------------------

void
checkDefBeforeUse(const Program& program, const Cfg& cfg,
                  const std::vector<bool>& reachable,
                  const std::vector<uint32_t>& rpo,
                  std::vector<Diagnostic>& diags)
{
    // OUT[b]: registers definitely written on every path through b.
    // Initialized to "all" (top) so intersection over not-yet-visited
    // loop back-edges is a no-op.
    std::vector<uint32_t> out(cfg.blocks.size(), kAllRegs);
    auto blockIn = [&](uint32_t b) {
        uint32_t in = (b == 0) ? 0u : kAllRegs;
        for (uint32_t pred : cfg.blocks[b].preds) {
            if (reachable[pred])
                in &= out[pred];
        }
        return in;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (uint32_t b : rpo) {
            uint32_t defined = blockIn(b);
            const BasicBlock& bb = cfg.blocks[b];
            for (uint32_t i = bb.first; i <= bb.last; ++i)
                defined |= regUse(program.code[i]).writes;
            if (defined != out[b]) {
                out[b] = defined;
                changed = true;
            }
        }
    }

    for (uint32_t b : rpo) {
        uint32_t defined = blockIn(b);
        const BasicBlock& bb = cfg.blocks[b];
        for (uint32_t i = bb.first; i <= bb.last; ++i) {
            RegUse use = regUse(program.code[i]);
            uint32_t undef = use.reads & ~defined;
            for (uint32_t reg = 0; reg < kNumRegs; ++reg) {
                if (undef & (1u << reg)) {
                    diags.push_back(
                        {CheckKind::UninitRegister, Severity::Error,
                         lineOf(program, i),
                         "register " + regName(reg) +
                             " may be read before initialization"});
                }
            }
            defined |= use.writes;
        }
    }
}

// ---------------------------------------------------------------------
// Pass: bounds / DMA legality (over the shared const-prop lattice)
// ---------------------------------------------------------------------

void
checkAccess(const Program& program, uint32_t i, const ConstState& st,
            const VerifyOptions& opt, std::vector<Diagnostic>& diags)
{
    const Instruction& ins = program.code[i];
    uint32_t line = lineOf(program, i);
    auto report = [&](CheckKind kind, const std::string& msg) {
        diags.push_back({kind, Severity::Error, line, msg});
    };

    switch (ins.op) {
      case Opcode::Ldw:
      case Opcode::Stw: {
        if (!st[ins.ra])
            return;
        uint32_t addr = static_cast<uint32_t>(*st[ins.ra]) +
                        static_cast<uint32_t>(ins.imm);
        if (static_cast<uint64_t>(addr) + 4 > opt.wramBytes) {
            report(CheckKind::WramOutOfBounds,
                   std::string(ins.op == Opcode::Ldw ? "ldw" : "stw") +
                       " accesses WRAM[" + std::to_string(addr) +
                       "] beyond the " + std::to_string(opt.wramBytes) +
                       "-byte scratchpad");
        }
        break;
      }
      case Opcode::Ldma:
      case Opcode::Sdma: {
        const char* mn = ins.op == Opcode::Ldma ? "ldma" : "sdma";
        ConstVal wa = st[ins.rd];
        ConstVal ma = st[ins.ra];
        ConstVal sz = st[ins.rb];
        if (sz) {
            uint32_t size = static_cast<uint32_t>(*sz);
            if (size == 0 || size % 8 != 0 || size > opt.maxDmaBytes) {
                report(CheckKind::DmaBadSize,
                       std::string(mn) + " transfer size " +
                           std::to_string(size) +
                           " must be a non-zero multiple of 8 and at"
                           " most " +
                           std::to_string(opt.maxDmaBytes) + " bytes");
            }
        }
        if (wa) {
            uint32_t addr = static_cast<uint32_t>(*wa);
            if (addr % 8 != 0) {
                report(CheckKind::DmaBadAlignment,
                       std::string(mn) + " WRAM address " +
                           std::to_string(addr) +
                           " is not 8-byte aligned");
            }
            uint64_t end = static_cast<uint64_t>(addr) +
                           (sz ? static_cast<uint32_t>(*sz) : 0);
            if (end > opt.wramBytes || addr >= opt.wramBytes) {
                report(CheckKind::WramOutOfBounds,
                       std::string(mn) + " WRAM range [" +
                           std::to_string(addr) + ", " +
                           std::to_string(end) + ") beyond the " +
                           std::to_string(opt.wramBytes) +
                           "-byte scratchpad");
            }
        }
        if (ma) {
            uint32_t addr = static_cast<uint32_t>(*ma);
            if (addr % 8 != 0) {
                report(CheckKind::DmaBadAlignment,
                       std::string(mn) + " MRAM address " +
                           std::to_string(addr) +
                           " is not 8-byte aligned");
            }
            uint64_t end = static_cast<uint64_t>(addr) +
                           (sz ? static_cast<uint32_t>(*sz) : 0);
            if (end > opt.mramBytes || addr >= opt.mramBytes) {
                report(CheckKind::MramOutOfBounds,
                       std::string(mn) + " MRAM range [" +
                           std::to_string(addr) + ", " +
                           std::to_string(end) + ") beyond the " +
                           std::to_string(opt.mramBytes) +
                           "-byte bank");
            }
        }
        break;
      }
      default:
        break;
    }
}

void
checkBoundsAndDma(const Program& program, const Cfg& cfg,
                  const std::vector<bool>& reachable,
                  const std::vector<uint32_t>& rpo,
                  const VerifyOptions& opt,
                  std::vector<Diagnostic>& diags)
{
    ConstFixpoint fp = constFixpoint(program, cfg, reachable, rpo);
    for (uint32_t b : rpo) {
        if (!fp.known[b])
            continue;
        ConstState st = fp.in[b];
        const BasicBlock& bb = cfg.blocks[b];
        for (uint32_t i = bb.first; i <= bb.last; ++i) {
            checkAccess(program, i, st, opt, diags);
            transferConst(program.code[i], st);
        }
    }
}

// ---------------------------------------------------------------------
// Pass: barrier balance (loop-collapsed)
// ---------------------------------------------------------------------
//
// Lattice over barrier counts: kTop (no path seen yet), a
// non-negative count, or kConflict (paths disagree). Loops are
// collapsed innermost-first against the natural-loop forest: a loop
// whose body executes d barriers per iteration contributes
// trip * d + e (e = barriers on the exit path) as a single summary —
// legal whenever the trip count is statically known, since every
// tasklet then runs the same count. A barrier inside a loop with an
// unknown trip stays an error (tasklets may disagree on the count and
// deadlock the rendezvous).

constexpr int64_t kTop = -1;
constexpr int64_t kConflict = -2;

int64_t
meetCount(int64_t a, int64_t b)
{
    if (a == kTop)
        return b;
    if (b == kTop)
        return a;
    if (a == kConflict || b == kConflict || a != b)
        return kConflict;
    return a;
}

int64_t
addCount(int64_t a, int64_t b)
{
    if (a == kTop || b == kTop)
        return kTop;
    if (a == kConflict || b == kConflict)
        return kConflict;
    return a + b;
}

struct BarrierRegion
{
    int64_t latch = kTop; ///< meet over back edges into the header
    int64_t exit = kTop;  ///< meet over edges leaving the region
    bool conflictInside = false; ///< some join inside disagreed
    uint32_t conflictBlock = 0;  ///< a block witnessing the conflict
};

/**
 * Evaluate one region (loop @p regionId, or the whole program when
 * regionId == LoopInfo::kNone) with child loops collapsed to their
 * summaries. @p exitAt collects, per exit-edge source block, the
 * count leaving the region there (top level: exits to Cfg::kExit).
 */
BarrierRegion
evalBarrierRegion(const Program& program, const Cfg& cfg,
                  const std::vector<bool>& reachable,
                  const std::vector<uint32_t>& rpo,
                  const LoopForest& forest,
                  const std::vector<int64_t>& blockBarriers,
                  const std::vector<int64_t>& loopSummary,
                  uint32_t regionId,
                  std::map<uint32_t, int64_t>* exitAt = nullptr)
{
    (void)program;
    const bool isLoop = regionId != LoopInfo::kNone;
    const LoopInfo* loop = isLoop ? &forest.loops[regionId] : nullptr;

    auto inRegion = [&](uint32_t b) {
        if (b == Cfg::kExit || !reachable[b])
            return false;
        return isLoop ? loop->contains(b) : true;
    };
    // Representative of the region node containing block b: b itself
    // when directly in the region, else the header of the immediate
    // child loop containing it.
    auto nodeOf = [&](uint32_t b) {
        uint32_t l = forest.loopOf[b];
        while (l != LoopInfo::kNone && l != regionId &&
               forest.loops[l].parent != regionId)
            l = forest.loops[l].parent;
        if (l == regionId || l == LoopInfo::kNone)
            return b;
        return forest.loops[l].header;
    };
    // Summary of the node represented by block rep.
    auto nodeDelta = [&](uint32_t rep) {
        uint32_t l = forest.loopOf[rep];
        while (l != LoopInfo::kNone &&
               forest.loops[l].parent != regionId)
            l = forest.loops[l].parent;
        if (l != LoopInfo::kNone && l != regionId &&
            forest.loops[l].header == rep)
            return loopSummary[l];
        return blockBarriers[rep];
    };
    // Blocks whose out-edges the node represented by rep owns.
    auto forEachNodeEdge = [&](uint32_t rep, auto&& fn) {
        uint32_t l = forest.loopOf[rep];
        while (l != LoopInfo::kNone &&
               forest.loops[l].parent != regionId)
            l = forest.loops[l].parent;
        if (l != LoopInfo::kNone && l != regionId &&
            forest.loops[l].header == rep) {
            const LoopInfo& child = forest.loops[l];
            for (uint32_t cb : child.blocks) {
                if (!reachable[cb])
                    continue;
                for (uint32_t s : cfg.blocks[cb].succs) {
                    if (s != Cfg::kExit && child.contains(s))
                        continue; // internal to the child
                    fn(cb, s);
                }
            }
        } else {
            for (uint32_t s : cfg.blocks[rep].succs)
                fn(rep, s);
        }
    };

    const uint32_t entry = isLoop ? loop->header : 0;
    std::map<uint32_t, int64_t> in;
    in[nodeOf(entry)] = 0;

    bool changed = true;
    while (changed) {
        changed = false;
        for (uint32_t b : rpo) {
            if (!inRegion(b) || nodeOf(b) != b)
                continue;
            auto it = in.find(b);
            if (it == in.end())
                continue;
            int64_t out = addCount(it->second, nodeDelta(b));
            forEachNodeEdge(b, [&](uint32_t, uint32_t s) {
                if (s == Cfg::kExit || !inRegion(s))
                    return;
                if (isLoop && s == loop->header)
                    return; // back edge: collected below, not met in
                uint32_t rep = nodeOf(s);
                auto sit = in.find(rep);
                if (sit == in.end()) {
                    in[rep] = out;
                    changed = true;
                } else {
                    int64_t met = meetCount(sit->second, out);
                    if (met != sit->second) {
                        sit->second = met;
                        changed = true;
                    }
                }
            });
        }
    }

    BarrierRegion res;
    for (const auto& kv : in) {
        if (kv.second == kConflict && !res.conflictInside) {
            res.conflictInside = true;
            res.conflictBlock = kv.first;
        }
    }
    for (const auto& kv : in) {
        int64_t out = addCount(kv.second, nodeDelta(kv.first));
        forEachNodeEdge(kv.first, [&](uint32_t src, uint32_t s) {
            if (isLoop && s == loop->header) {
                res.latch = meetCount(res.latch, out);
            } else if (s == Cfg::kExit || !inRegion(s)) {
                res.exit = meetCount(res.exit, out);
                if (exitAt)
                    (*exitAt)[src] = out;
            }
        });
    }
    return res;
}

void
checkBarrierBalance(const Program& program, const Cfg& cfg,
                    const std::vector<bool>& reachable,
                    const std::vector<uint32_t>& rpo,
                    const VerifyOptions& opt,
                    std::vector<Diagnostic>& diags)
{
    std::vector<int64_t> blockBarriers(cfg.blocks.size(), 0);
    bool anyBarrier = false;
    for (uint32_t b = 0; b < cfg.blocks.size(); ++b) {
        const BasicBlock& bb = cfg.blocks[b];
        for (uint32_t i = bb.first; i <= bb.last; ++i) {
            if (program.code[i].op == Opcode::Barrier) {
                ++blockBarriers[b];
                anyBarrier = true;
            }
        }
    }
    if (!anyBarrier)
        return;

    auto firstBarrierLine = [&](const std::vector<uint32_t>& blocks) {
        for (uint32_t b : blocks) {
            const BasicBlock& bb = cfg.blocks[b];
            for (uint32_t i = bb.first; i <= bb.last; ++i) {
                if (program.code[i].op == Opcode::Barrier)
                    return lineOf(program, i);
            }
        }
        return 0u;
    };

    LoopForest forest = findLoops(program, cfg, opt.tripAnnotations);
    if (forest.irreducible) {
        // No loop structure to collapse against: any barrier that is
        // part of a cycle is suspect.
        std::vector<uint32_t> all;
        for (uint32_t b = 0; b < cfg.blocks.size(); ++b)
            if (blockBarriers[b] > 0)
                all.push_back(b);
        diags.push_back(
            {CheckKind::BarrierImbalance, Severity::Error,
             firstBarrierLine(all),
             "barrier in irreducible control flow: the per-tasklet "
             "barrier count cannot be proven equal"});
        return;
    }

    // Collapse loops innermost-first into barrier-count summaries.
    std::vector<int64_t> loopSummary(forest.loops.size(), 0);
    for (uint32_t id = 0; id < forest.loops.size(); ++id) {
        const LoopInfo& loop = forest.loops[id];
        if (!reachable[loop.header])
            continue;
        bool hasBarrier = false;
        for (uint32_t b : loop.blocks)
            hasBarrier |= blockBarriers[b] > 0;
        if (!hasBarrier)
            continue; // trivially balanced whatever the trip count

        BarrierRegion rv =
            evalBarrierRegion(program, cfg, reachable, rpo, forest,
                              blockBarriers, loopSummary, id);
        uint32_t headerLine =
            lineOf(program, cfg.blocks[loop.header].first);
        if (rv.conflictInside || rv.latch == kConflict ||
            rv.exit == kConflict) {
            diags.push_back(
                {CheckKind::BarrierImbalance, Severity::Error,
                 headerLine,
                 "paths through this loop execute differing numbers "
                 "of barriers per iteration (tasklets would deadlock "
                 "at the rendezvous)"});
            return;
        }
        int64_t latch = rv.latch == kTop ? 0 : rv.latch;
        int64_t exit = rv.exit == kTop ? 0 : rv.exit;
        if (latch > 0 && !loop.tripKnown) {
            // Only an *exact* trip makes the summary sound: an upper
            // bound (loop with a break) still lets tasklets leave at
            // different iterations with differing barrier counts.
            std::string why =
                loop.headerOnlyExit
                    ? "barrier inside a loop whose trip count is not "
                      "statically known (tasklets may disagree on "
                      "the barrier count and deadlock; a constant "
                      "bound or a # @trip(N) annotation makes it "
                      "checkable)"
                    : "barrier inside a loop with a secondary "
                      "(break) exit: tasklets may leave at "
                      "different iterations and execute differing "
                      "barrier counts, deadlocking the rendezvous "
                      "(restructure so the loop exits only at its "
                      "header test)";
            diags.push_back({CheckKind::BarrierImbalance,
                             Severity::Error,
                             firstBarrierLine(loop.blocks),
                             std::move(why)});
            return;
        }
        loopSummary[id] =
            static_cast<int64_t>(loop.tripCount) * latch + exit;
    }

    // Top-level DAG with loops collapsed: joins and exits must agree.
    std::map<uint32_t, int64_t> exitAt;
    BarrierRegion top =
        evalBarrierRegion(program, cfg, reachable, rpo, forest,
                          blockBarriers, loopSummary, LoopInfo::kNone,
                          &exitAt);
    if (top.conflictInside) {
        diags.push_back(
            {CheckKind::BarrierImbalance, Severity::Error,
             lineOf(program, cfg.blocks[top.conflictBlock].first),
             "paths reach this point having executed differing "
             "numbers of barriers (tasklets would deadlock at the "
             "rendezvous)"});
        return;
    }
    int64_t exitCount = kTop;
    for (const auto& kv : exitAt) {
        if (kv.second < 0)
            continue;
        if (exitCount == kTop) {
            exitCount = kv.second;
        } else if (kv.second != exitCount) {
            diags.push_back(
                {CheckKind::BarrierImbalance, Severity::Error,
                 lineOf(program, cfg.blocks[kv.first].last),
                 "program exits with " + std::to_string(kv.second) +
                     " barrier(s) on this path but " +
                     std::to_string(exitCount) +
                     " on another (tasklets would deadlock)"});
        }
    }
}

} // namespace

RegUse
regUse(const Instruction& ins)
{
    const OpTraits& tr = opTraits(ins.op);
    RegUse use;
    if (tr.readsRa)
        use.reads |= 1u << ins.ra;
    if (tr.readsRb)
        use.reads |= 1u << ins.rb;
    if (tr.readsRd)
        use.reads |= 1u << ins.rd;
    if (tr.writesRd)
        use.writes |= 1u << ins.rd;
    return use;
}

std::vector<Diagnostic>
verify(const Program& program, const VerifyOptions& options)
{
    std::vector<Diagnostic> diags;
    if (program.code.empty())
        return diags;

    if (!checkBranchTargets(program, diags))
        return diags; // CFG over wild targets would be meaningless

    Cfg cfg = buildCfg(program);
    std::vector<bool> reachable = reachableBlocks(cfg);
    std::vector<uint32_t> rpo = reversePostOrder(cfg);

    checkUnreachable(program, cfg, reachable, diags);
    checkDefBeforeUse(program, cfg, reachable, rpo, diags);
    checkBoundsAndDma(program, cfg, reachable, rpo, options, diags);
    checkBarrierBalance(program, cfg, reachable, rpo, options, diags);

    std::stable_sort(diags.begin(), diags.end(),
                     [](const Diagnostic& a, const Diagnostic& b) {
                         return a.line < b.line;
                     });
    return diags;
}

} // namespace check
} // namespace sim
} // namespace tpl
