/**
 * @file
 * Static verifier passes.
 */

#include "pimsim/analysis/verify.h"

#include <algorithm>
#include <array>
#include <optional>

#include "pimsim/analysis/cfg.h"

namespace tpl {
namespace sim {
namespace check {

namespace {

constexpr uint32_t kNumRegs = 24;
constexpr uint32_t kAllRegs = (1u << kNumRegs) - 1;

/** Source line of instruction @p i (hand-built programs may omit
 * the line table; fall back to the instruction index). */
uint32_t
lineOf(const Program& program, uint32_t i)
{
    if (i < program.lines.size())
        return program.lines[i];
    return i + 1;
}

std::string
regName(uint32_t reg)
{
    return "r" + std::to_string(reg);
}

bool
isBranchOrJump(Opcode op)
{
    switch (op) {
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Bltu:
      case Opcode::Bgeu:
      case Opcode::Jmp:
        return true;
      default:
        return false;
    }
}

// ---------------------------------------------------------------------
// Pass: branch-target validity
// ---------------------------------------------------------------------

bool
checkBranchTargets(const Program& program, std::vector<Diagnostic>& diags)
{
    bool ok = true;
    const auto n = static_cast<int64_t>(program.code.size());
    for (uint32_t i = 0; i < program.code.size(); ++i) {
        const Instruction& ins = program.code[i];
        if (!isBranchOrJump(ins.op))
            continue;
        // Target == n is the label after the last instruction (a
        // trailing "done:" label): a legal exit.
        if (ins.imm < 0 || ins.imm > n) {
            diags.push_back({CheckKind::InvalidBranchTarget,
                             Severity::Error, lineOf(program, i),
                             "branch target " + std::to_string(ins.imm) +
                                 " outside program of " +
                                 std::to_string(n) + " instructions"});
            ok = false;
        }
    }
    return ok;
}

// ---------------------------------------------------------------------
// Pass: unreachable code
// ---------------------------------------------------------------------

void
checkUnreachable(const Program& program, const Cfg& cfg,
                 const std::vector<bool>& reachable,
                 std::vector<Diagnostic>& diags)
{
    for (uint32_t b = 0; b < cfg.blocks.size(); ++b) {
        if (reachable[b])
            continue;
        const BasicBlock& bb = cfg.blocks[b];
        diags.push_back({CheckKind::UnreachableCode, Severity::Warning,
                         lineOf(program, bb.first),
                         "unreachable code (" +
                             std::to_string(bb.last - bb.first + 1) +
                             " instruction(s) no path reaches)"});
    }
}

// ---------------------------------------------------------------------
// Pass: def-before-use (forward "definitely assigned" dataflow)
// ---------------------------------------------------------------------

void
checkDefBeforeUse(const Program& program, const Cfg& cfg,
                  const std::vector<bool>& reachable,
                  const std::vector<uint32_t>& rpo,
                  std::vector<Diagnostic>& diags)
{
    // OUT[b]: registers definitely written on every path through b.
    // Initialized to "all" (top) so intersection over not-yet-visited
    // loop back-edges is a no-op.
    std::vector<uint32_t> out(cfg.blocks.size(), kAllRegs);
    auto blockIn = [&](uint32_t b) {
        uint32_t in = (b == 0) ? 0u : kAllRegs;
        for (uint32_t pred : cfg.blocks[b].preds) {
            if (reachable[pred])
                in &= out[pred];
        }
        return in;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (uint32_t b : rpo) {
            uint32_t defined = blockIn(b);
            const BasicBlock& bb = cfg.blocks[b];
            for (uint32_t i = bb.first; i <= bb.last; ++i)
                defined |= regUse(program.code[i]).writes;
            if (defined != out[b]) {
                out[b] = defined;
                changed = true;
            }
        }
    }

    for (uint32_t b : rpo) {
        uint32_t defined = blockIn(b);
        const BasicBlock& bb = cfg.blocks[b];
        for (uint32_t i = bb.first; i <= bb.last; ++i) {
            RegUse use = regUse(program.code[i]);
            uint32_t undef = use.reads & ~defined;
            for (uint32_t reg = 0; reg < kNumRegs; ++reg) {
                if (undef & (1u << reg)) {
                    diags.push_back(
                        {CheckKind::UninitRegister, Severity::Error,
                         lineOf(program, i),
                         "register " + regName(reg) +
                             " may be read before initialization"});
                }
            }
            defined |= use.writes;
        }
    }
}

// ---------------------------------------------------------------------
// Pass: constant propagation + bounds / DMA legality
// ---------------------------------------------------------------------

/** Lattice value of one register: unknown or a known 32-bit constant. */
using ConstVal = std::optional<int32_t>;
using ConstState = std::array<ConstVal, kNumRegs>;

ConstState
meetStates(const ConstState& a, const ConstState& b)
{
    ConstState out;
    for (uint32_t r = 0; r < kNumRegs; ++r) {
        if (a[r] && b[r] && *a[r] == *b[r])
            out[r] = a[r];
        else
            out[r] = std::nullopt;
    }
    return out;
}

/** Fold one instruction; returns the new value of rd if computable. */
ConstVal
foldValue(const Instruction& ins, const ConstState& st)
{
    auto ua = [&]() -> std::optional<uint32_t> {
        if (st[ins.ra])
            return static_cast<uint32_t>(*st[ins.ra]);
        return std::nullopt;
    }();
    auto ub = [&]() -> std::optional<uint32_t> {
        if (st[ins.rb])
            return static_cast<uint32_t>(*st[ins.rb]);
        return std::nullopt;
    }();
    uint32_t uimm = static_cast<uint32_t>(ins.imm);
    auto wrap = [](uint32_t v) {
        return ConstVal(static_cast<int32_t>(v));
    };

    switch (ins.op) {
      case Opcode::Movi:
        return ins.imm;
      case Opcode::Add:
        if (ua && ub) return wrap(*ua + *ub);
        break;
      case Opcode::Addi:
        if (ua) return wrap(*ua + uimm);
        break;
      case Opcode::Sub:
        if (ua && ub) return wrap(*ua - *ub);
        break;
      case Opcode::Subi:
        if (ua) return wrap(*ua - uimm);
        break;
      case Opcode::And:
        if (ua && ub) return wrap(*ua & *ub);
        break;
      case Opcode::Andi:
        if (ua) return wrap(*ua & uimm);
        break;
      case Opcode::Or:
        if (ua && ub) return wrap(*ua | *ub);
        break;
      case Opcode::Ori:
        if (ua) return wrap(*ua | uimm);
        break;
      case Opcode::Xor:
        if (ua && ub) return wrap(*ua ^ *ub);
        break;
      case Opcode::Xori:
        if (ua) return wrap(*ua ^ uimm);
        break;
      case Opcode::Sll:
        if (ua && ub) return wrap(*ua << (*ub & 31));
        break;
      case Opcode::Slli:
        if (ua) return wrap(*ua << (ins.imm & 31));
        break;
      case Opcode::Srl:
        if (ua && ub) return wrap(*ua >> (*ub & 31));
        break;
      case Opcode::Srli:
        if (ua) return wrap(*ua >> (ins.imm & 31));
        break;
      case Opcode::Sra:
        if (st[ins.ra] && ub)
            return ConstVal(*st[ins.ra] >> (*ub & 31));
        break;
      case Opcode::Srai:
        if (st[ins.ra])
            return ConstVal(*st[ins.ra] >> (ins.imm & 31));
        break;
      case Opcode::Mul:
        if (st[ins.ra] && st[ins.rb]) {
            int64_t prod = static_cast<int64_t>(*st[ins.ra]) *
                           static_cast<int64_t>(*st[ins.rb]);
            return ConstVal(static_cast<int32_t>(prod));
        }
        break;
      case Opcode::Mulh:
        if (st[ins.ra] && st[ins.rb]) {
            int64_t prod = static_cast<int64_t>(*st[ins.ra]) *
                           static_cast<int64_t>(*st[ins.rb]);
            return ConstVal(static_cast<int32_t>(prod >> 32));
        }
        break;
      default:
        break;
    }
    return std::nullopt;
}

void
transferConst(const Instruction& ins, ConstState& st)
{
    RegUse use = regUse(ins);
    if (use.writes == 0)
        return;
    st[ins.rd] = foldValue(ins, st);
}

void
checkAccess(const Program& program, uint32_t i, const ConstState& st,
            const VerifyOptions& opt, std::vector<Diagnostic>& diags)
{
    const Instruction& ins = program.code[i];
    uint32_t line = lineOf(program, i);
    auto report = [&](CheckKind kind, const std::string& msg) {
        diags.push_back({kind, Severity::Error, line, msg});
    };

    switch (ins.op) {
      case Opcode::Ldw:
      case Opcode::Stw: {
        if (!st[ins.ra])
            return;
        uint32_t addr = static_cast<uint32_t>(*st[ins.ra]) +
                        static_cast<uint32_t>(ins.imm);
        if (static_cast<uint64_t>(addr) + 4 > opt.wramBytes) {
            report(CheckKind::WramOutOfBounds,
                   std::string(ins.op == Opcode::Ldw ? "ldw" : "stw") +
                       " accesses WRAM[" + std::to_string(addr) +
                       "] beyond the " + std::to_string(opt.wramBytes) +
                       "-byte scratchpad");
        }
        break;
      }
      case Opcode::Ldma:
      case Opcode::Sdma: {
        const char* mn = ins.op == Opcode::Ldma ? "ldma" : "sdma";
        ConstVal wa = st[ins.rd];
        ConstVal ma = st[ins.ra];
        ConstVal sz = st[ins.rb];
        if (sz) {
            uint32_t size = static_cast<uint32_t>(*sz);
            if (size == 0 || size % 8 != 0 || size > opt.maxDmaBytes) {
                report(CheckKind::DmaBadSize,
                       std::string(mn) + " transfer size " +
                           std::to_string(size) +
                           " must be a non-zero multiple of 8 and at"
                           " most " +
                           std::to_string(opt.maxDmaBytes) + " bytes");
            }
        }
        if (wa) {
            uint32_t addr = static_cast<uint32_t>(*wa);
            if (addr % 8 != 0) {
                report(CheckKind::DmaBadAlignment,
                       std::string(mn) + " WRAM address " +
                           std::to_string(addr) +
                           " is not 8-byte aligned");
            }
            uint64_t end = static_cast<uint64_t>(addr) +
                           (sz ? static_cast<uint32_t>(*sz) : 0);
            if (end > opt.wramBytes || addr >= opt.wramBytes) {
                report(CheckKind::WramOutOfBounds,
                       std::string(mn) + " WRAM range [" +
                           std::to_string(addr) + ", " +
                           std::to_string(end) + ") beyond the " +
                           std::to_string(opt.wramBytes) +
                           "-byte scratchpad");
            }
        }
        if (ma) {
            uint32_t addr = static_cast<uint32_t>(*ma);
            if (addr % 8 != 0) {
                report(CheckKind::DmaBadAlignment,
                       std::string(mn) + " MRAM address " +
                           std::to_string(addr) +
                           " is not 8-byte aligned");
            }
            uint64_t end = static_cast<uint64_t>(addr) +
                           (sz ? static_cast<uint32_t>(*sz) : 0);
            if (end > opt.mramBytes || addr >= opt.mramBytes) {
                report(CheckKind::MramOutOfBounds,
                       std::string(mn) + " MRAM range [" +
                           std::to_string(addr) + ", " +
                           std::to_string(end) + ") beyond the " +
                           std::to_string(opt.mramBytes) +
                           "-byte bank");
            }
        }
        break;
      }
      default:
        break;
    }
}

void
checkBoundsAndDma(const Program& program, const Cfg& cfg,
                  const std::vector<bool>& reachable,
                  const std::vector<uint32_t>& rpo,
                  const VerifyOptions& opt,
                  std::vector<Diagnostic>& diags)
{
    std::vector<ConstState> in(cfg.blocks.size());
    std::vector<bool> inSet(cfg.blocks.size(), false);
    ConstState entry{}; // all unknown: nothing is constant at entry
    in[0] = entry;
    inSet[0] = true;

    bool changed = true;
    while (changed) {
        changed = false;
        for (uint32_t b : rpo) {
            if (!inSet[b])
                continue;
            ConstState st = in[b];
            const BasicBlock& bb = cfg.blocks[b];
            for (uint32_t i = bb.first; i <= bb.last; ++i)
                transferConst(program.code[i], st);
            for (uint32_t succ : cfg.blocks[b].succs) {
                if (succ == Cfg::kExit || !reachable[succ])
                    continue;
                if (!inSet[succ]) {
                    in[succ] = st;
                    inSet[succ] = true;
                    changed = true;
                } else {
                    ConstState met = meetStates(in[succ], st);
                    if (met != in[succ]) {
                        in[succ] = met;
                        changed = true;
                    }
                }
            }
        }
    }

    for (uint32_t b : rpo) {
        if (!inSet[b])
            continue;
        ConstState st = in[b];
        const BasicBlock& bb = cfg.blocks[b];
        for (uint32_t i = bb.first; i <= bb.last; ++i) {
            checkAccess(program, i, st, opt, diags);
            transferConst(program.code[i], st);
        }
    }
}

// ---------------------------------------------------------------------
// Pass: barrier balance
// ---------------------------------------------------------------------

void
checkBarrierBalance(const Program& program, const Cfg& cfg,
                    const std::vector<bool>& reachable,
                    const std::vector<uint32_t>& rpo,
                    std::vector<Diagnostic>& diags)
{
    bool anyBarrier = false;
    for (const Instruction& ins : program.code) {
        if (ins.op == Opcode::Barrier) {
            anyBarrier = true;
            break;
        }
    }
    if (!anyBarrier)
        return;

    constexpr int64_t kTop = -1;
    constexpr int64_t kConflict = -2;
    auto meet = [](int64_t a, int64_t b) {
        if (a == kTop)
            return b;
        if (b == kTop)
            return a;
        if (a == kConflict || b == kConflict || a != b)
            return kConflict;
        return a;
    };

    std::vector<int64_t> in(cfg.blocks.size(), kTop);
    in[0] = 0;
    bool changed = true;
    while (changed) {
        changed = false;
        for (uint32_t b : rpo) {
            int64_t count = in[b];
            if (count == kTop)
                continue;
            if (count >= 0) {
                const BasicBlock& bb = cfg.blocks[b];
                for (uint32_t i = bb.first; i <= bb.last; ++i) {
                    if (program.code[i].op == Opcode::Barrier)
                        ++count;
                }
            }
            for (uint32_t succ : cfg.blocks[b].succs) {
                if (succ == Cfg::kExit || !reachable[succ])
                    continue;
                int64_t met = meet(in[succ], count);
                if (met != in[succ]) {
                    in[succ] = met;
                    changed = true;
                }
            }
        }
    }

    // Joins with conflicting counts.
    for (uint32_t b : rpo) {
        if (in[b] == kConflict) {
            diags.push_back(
                {CheckKind::BarrierImbalance, Severity::Error,
                 lineOf(program, cfg.blocks[b].first),
                 "paths reach this point having executed differing "
                 "numbers of barriers (tasklets would deadlock at the "
                 "rendezvous)"});
        }
    }

    // Exits with differing counts: one tasklet returns while another
    // still waits at a barrier.
    int64_t exitCount = kTop;
    for (uint32_t b : rpo) {
        if (in[b] < 0)
            continue;
        bool exits = false;
        for (uint32_t succ : cfg.blocks[b].succs)
            exits |= (succ == Cfg::kExit);
        if (!exits)
            continue;
        int64_t count = in[b];
        const BasicBlock& bb = cfg.blocks[b];
        for (uint32_t i = bb.first; i <= bb.last; ++i) {
            if (program.code[i].op == Opcode::Barrier)
                ++count;
        }
        if (exitCount == kTop) {
            exitCount = count;
        } else if (count != exitCount) {
            diags.push_back(
                {CheckKind::BarrierImbalance, Severity::Error,
                 lineOf(program, bb.last),
                 "program exits with " + std::to_string(count) +
                     " barrier(s) on this path but " +
                     std::to_string(exitCount) +
                     " on another (tasklets would deadlock)"});
        }
    }
}

} // namespace

RegUse
regUse(const Instruction& ins)
{
    auto bit = [](uint8_t reg) { return 1u << reg; };
    RegUse use;
    switch (ins.op) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Sll:
      case Opcode::Srl:
      case Opcode::Sra:
      case Opcode::Mul:
      case Opcode::Mulh:
        use.reads = bit(ins.ra) | bit(ins.rb);
        use.writes = bit(ins.rd);
        break;
      case Opcode::Addi:
      case Opcode::Subi:
      case Opcode::Andi:
      case Opcode::Ori:
      case Opcode::Xori:
      case Opcode::Slli:
      case Opcode::Srli:
      case Opcode::Srai:
        use.reads = bit(ins.ra);
        use.writes = bit(ins.rd);
        break;
      case Opcode::Movi:
      case Opcode::Tid:
      case Opcode::Ntask:
        use.writes = bit(ins.rd);
        break;
      case Opcode::Ldw:
        use.reads = bit(ins.ra);
        use.writes = bit(ins.rd);
        break;
      case Opcode::Stw:
        // Stores read both the address base and the stored value.
        use.reads = bit(ins.ra) | bit(ins.rd);
        break;
      case Opcode::Ldma:
      case Opcode::Sdma:
        // WRAM address, MRAM address, and size are all inputs.
        use.reads = bit(ins.rd) | bit(ins.ra) | bit(ins.rb);
        break;
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Bltu:
      case Opcode::Bgeu:
        use.reads = bit(ins.ra) | bit(ins.rb);
        break;
      case Opcode::Jmp:
      case Opcode::Barrier:
      case Opcode::Halt:
        break;
    }
    return use;
}

std::vector<Diagnostic>
verify(const Program& program, const VerifyOptions& options)
{
    std::vector<Diagnostic> diags;
    if (program.code.empty())
        return diags;

    if (!checkBranchTargets(program, diags))
        return diags; // CFG over wild targets would be meaningless

    Cfg cfg = buildCfg(program);
    std::vector<bool> reachable = reachableBlocks(cfg);
    std::vector<uint32_t> rpo = reversePostOrder(cfg);

    checkUnreachable(program, cfg, reachable, diags);
    checkDefBeforeUse(program, cfg, reachable, rpo, diags);
    checkBoundsAndDma(program, cfg, reachable, rpo, options, diags);
    checkBarrierBalance(program, cfg, reachable, rpo, diags);

    std::stable_sort(diags.begin(), diags.end(),
                     [](const Diagnostic& a, const Diagnostic& b) {
                         return a.line < b.line;
                     });
    return diags;
}

} // namespace check
} // namespace sim
} // namespace tpl
