/**
 * @file
 * Diagnostic formatting helpers.
 */

#include "pimsim/analysis/diag.h"

#include <algorithm>

namespace tpl {
namespace sim {
namespace check {

const char*
toString(CheckKind kind)
{
    switch (kind) {
      case CheckKind::UninitRegister:      return "uninit-register";
      case CheckKind::InvalidBranchTarget: return "invalid-branch-target";
      case CheckKind::UnreachableCode:     return "unreachable-code";
      case CheckKind::WramOutOfBounds:     return "wram-out-of-bounds";
      case CheckKind::MramOutOfBounds:     return "mram-out-of-bounds";
      case CheckKind::DmaBadAlignment:     return "dma-bad-alignment";
      case CheckKind::DmaBadSize:          return "dma-bad-size";
      case CheckKind::BarrierImbalance:    return "barrier-imbalance";
      case CheckKind::UninitWramLoad:      return "uninit-wram-load";
      case CheckKind::TaskletRace:         return "tasklet-race";
      case CheckKind::BarrierDeadlock:     return "barrier-deadlock";
      case CheckKind::UnboundedCost:       return "unbounded-cost";
    }
    return "unknown";
}

const char*
toString(Severity severity)
{
    return severity == Severity::Error ? "error" : "warning";
}

std::string
format(const Diagnostic& diag)
{
    std::string out;
    if (diag.line != 0)
        out += "line " + std::to_string(diag.line) + ": ";
    out += toString(diag.severity);
    out += ": ";
    out += diag.message;
    out += " [";
    out += toString(diag.kind);
    out += "]";
    return out;
}

bool
hasErrors(const std::vector<Diagnostic>& diags)
{
    return std::any_of(diags.begin(), diags.end(), [](const Diagnostic& d) {
        return d.severity == Severity::Error;
    });
}

size_t
countOf(const std::vector<Diagnostic>& diags, CheckKind kind)
{
    return static_cast<size_t>(
        std::count_if(diags.begin(), diags.end(),
                      [kind](const Diagnostic& d) { return d.kind == kind; }));
}

} // namespace check
} // namespace sim
} // namespace tpl
