/**
 * @file
 * Multi-DPU PIM system with a host-transfer timing model.
 *
 * Mirrors the structure in Figure 2 of the paper: a host CPU that can
 * copy buffers to/from the MRAM bank of every PIM core, launch the same
 * SPMD kernel on all cores, and gather results. There is no direct
 * PIM-to-PIM channel — inter-core communication happens through the
 * host, as on all five real PIM systems the paper surveys.
 *
 * Transfer timing follows the UPMEM characterization: transfers execute
 * in parallel across DPUs when every DPU sends/receives a buffer of the
 * same size, and serialize otherwise. The model exposes both so the
 * workload harness can account setup and result movement the way the
 * paper does.
 */

#ifndef TPL_PIMSIM_SYSTEM_H
#define TPL_PIMSIM_SYSTEM_H

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "pimsim/dpu.h"
#include "pimsim/fault/fault.h"

namespace tpl {
namespace sim {

class ThreadPool;

namespace fault {
class SystemFaultState; // system.cc (plan copy + per-DPU states)
} // namespace fault

/**
 * How a host<->PIM transfer streams on the modeled machine: rank-
 * parallel (same-size buffer per DPU, the fast path the UPMEM runtime
 * reaches with aligned same-size transfers) or serialized on the host
 * interface (distinct sizes / unaligned).
 */
enum class TransferMode
{
    Parallel,
    Serial,
};

/** "parallel" or "serial". */
inline const char*
toString(TransferMode mode)
{
    return mode == TransferMode::Parallel ? "parallel" : "serial";
}

/**
 * Per-direction x per-mode transfer accounting. Earlier revisions
 * folded rank-parallel and serial timing into one returned number;
 * this split keeps a distinct counter per (broadcast/scatter/gather,
 * parallel/serial) cell so the tracer and metrics registry can label
 * them — the cells sum exactly to the old combined totals (locked by
 * a unit test).
 */
struct TransferStats
{
    struct Cell
    {
        uint64_t transfers = 0; ///< calls accounted in this cell
        uint64_t bytes = 0;     ///< modeled stream bytes
        double seconds = 0.0;   ///< modeled transfer seconds
    };

    /** Indexed by static_cast<int>(TransferMode). */
    Cell broadcast[2];
    Cell scatter[2];
    Cell gather[2];

    /** Sum of every cell's modeled seconds (the old combined view). */
    double
    totalSeconds() const
    {
        double s = 0.0;
        for (int m = 0; m < 2; ++m)
            s += broadcast[m].seconds + scatter[m].seconds +
                 gather[m].seconds;
        return s;
    }

    /** Sum of every cell's modeled stream bytes. */
    uint64_t
    totalBytes() const
    {
        uint64_t b = 0;
        for (int m = 0; m < 2; ++m)
            b += broadcast[m].bytes + scatter[m].bytes +
                 gather[m].bytes;
        return b;
    }
};

/**
 * How the runtime reacts to transfer and launch failures injected by
 * an armed FaultPlan. All times are modeled seconds; with no plan
 * armed the policy is never consulted.
 */
struct RetryPolicy
{
    /** Retries per failed host<->DPU transfer leg before the DPU is
     * masked out as failed. */
    uint32_t maxTransferRetries = 3;

    /** Backoff before retry k is min(base * 2^k, cap): capped
     * exponential, modeled on the host interface clock. */
    double backoffBaseSeconds = 1e-6;
    double backoffCapSeconds = 1e-3;

    /** Launches exceeding this many cycles are treated as failed
     * (straggler fencing); 0 disables the timeout. */
    uint64_t launchTimeoutCycles = 0;

    /** Re-shard passes runSharded may take before giving up. */
    uint32_t maxReshardWaves = 6;

    /** Detected-corrupt transfer legs are retried; when false they
     * land silently (models a runtime without CRC). */
    bool detectTransferCorruption = true;
};

/**
 * What happened in the last launchAll: which cores ran, which were
 * skipped because an earlier fault masked them, and which failed this
 * launch (hard failure, or cycles beyond the policy's launch
 * timeout). Failure surfaces here and in the per-core
 * LaunchStats::failed flag; the obs Registry counts under `fault/...`.
 */
struct LaunchReport
{
    uint32_t attempted = 0; ///< unmasked cores launched
    uint32_t masked = 0;    ///< cores skipped (previously failed)
    std::vector<uint32_t> failedDpus; ///< newly failed this launch
    uint64_t maxCycles = 0; ///< slowest healthy core
    uint64_t faultEvents = 0; ///< injected events across cores
};

/** One shard of a runSharded pass: where a contiguous slice of the
 * element range landed on one core. */
struct ShardTask
{
    uint32_t dpu = 0;          ///< simulated DPU index
    uint32_t inAddr = 0;       ///< MRAM address of the input slice
    uint32_t outAddr = 0;      ///< MRAM address of the output slice
    uint64_t firstElement = 0; ///< offset into the host arrays
    uint32_t elements = 0;     ///< elements in this shard
};

/** Builds the kernel evaluating one shard (SPMD body per tasklet). */
using ShardKernelFactory = std::function<Kernel(const ShardTask&)>;

/** Outcome of a PimSystem::runSharded call. */
struct ShardedRunReport
{
    bool complete = false;    ///< every element produced an output
    uint32_t waves = 0;       ///< launch passes (1 = no failures)
    double modeledSeconds = 0.0; ///< transfers + slowest launch/wave
    std::vector<uint32_t> failedDpus; ///< cores masked along the way
    uint64_t reshardedElements = 0; ///< elements moved off failed cores
    uint32_t transferRetries = 0;   ///< failed legs that were retried
    uint32_t transferFailures = 0;  ///< legs dead after all retries
};

/**
 * Modeled-time resource timeline for pipelined (double-buffered)
 * execution: one lane for the serialized host interface plus one lane
 * per DPU. A reservation starts when both its dependency (@p readyAt)
 * and the lane are free — exactly the rank-level overlap the UPMEM
 * async API exposes, where the host can stream wave N+1 while the
 * DPUs compute wave N.
 *
 * Purely modeled time: the simulator still executes everything
 * eagerly in wall time; the timeline only decides how the modeled
 * seconds of the legs overlap. Reservations mutate nothing but the
 * lane clocks, so makespan() is a pure function of the reservation
 * sequence and therefore bit-identical for any TPL_SIM_THREADS.
 */
class PipelineTimeline
{
  public:
    explicit PipelineTimeline(uint32_t numDpus)
        : dpus_(numDpus, 0.0)
    {
    }

    /** When the host-interface lane next becomes idle. */
    double hostFree() const { return host_; }

    /** When @p dpu's compute lane next becomes idle. */
    double dpuFree(uint32_t dpu) const { return dpus_[dpu]; }

    /**
     * Arm per-rank transfer lanes: @p ranks rank lanes of
     * @p dpusPerRank DPUs each, with rank r's transfers carried on
     * channel @p channelOfRank[r]. Ranks mapped to distinct channels
     * overlap; ranks sharing a channel serialize against each other.
     * Until this is called (the flat single-system path), rank lanes
     * do not exist and reserveRank must not be used.
     */
    void
    configureRanks(uint32_t ranks, uint32_t dpusPerRank,
                   std::vector<uint32_t> channelOfRank)
    {
        rankDpus_ = dpusPerRank;
        channelOfRank_ = std::move(channelOfRank);
        rankLane_.assign(ranks, 0.0);
        rankMakespan_.assign(ranks, 0.0);
        uint32_t channels = 0;
        for (uint32_t c : channelOfRank_)
            channels = std::max(channels, c + 1);
        channelLane_.assign(channels, 0.0);
    }

    /** Number of rank lanes armed by configureRanks (0 = flat). */
    uint32_t rankCount() const
    {
        return static_cast<uint32_t>(rankLane_.size());
    }

    /** When @p rank's transfer lane (and its channel) next free up. */
    double
    rankFree(uint32_t rank) const
    {
        return std::max(rankLane_[rank],
                        channelLane_[channelOfRank_[rank]]);
    }

    /**
     * Occupy @p rank's transfer lane and its channel for @p seconds
     * starting no earlier than @p readyAt. @return the completion
     * time.
     */
    double
    reserveRank(uint32_t rank, double readyAt, double seconds)
    {
        double start = std::max(readyAt, rankFree(rank));
        double end = start + seconds;
        rankLane_[rank] = end;
        channelLane_[channelOfRank_[rank]] = end;
        rankMakespan_[rank] = std::max(rankMakespan_[rank], end);
        makespan_ = std::max(makespan_, end);
        return end;
    }

    /**
     * Latest completion of any reservation attributed to @p rank:
     * its transfer lane plus the compute lanes of its DPUs.
     */
    double rankMakespan(uint32_t rank) const
    {
        return rankMakespan_[rank];
    }

    /**
     * Occupy the host lane for @p seconds starting no earlier than
     * @p readyAt. @return the completion time.
     */
    double
    reserveHost(double readyAt, double seconds)
    {
        double start = std::max(readyAt, host_);
        host_ = start + seconds;
        makespan_ = std::max(makespan_, host_);
        return host_;
    }

    /** Occupy @p dpu's compute lane; see reserveHost. */
    double
    reserveDpu(uint32_t dpu, double readyAt, double seconds)
    {
        double start = std::max(readyAt, dpus_[dpu]);
        dpus_[dpu] = start + seconds;
        makespan_ = std::max(makespan_, dpus_[dpu]);
        if (rankDpus_ > 0) {
            uint32_t rank = dpu / rankDpus_;
            if (rank < rankMakespan_.size())
                rankMakespan_[rank] =
                    std::max(rankMakespan_[rank], dpus_[dpu]);
        }
        return dpus_[dpu];
    }

    /** Latest completion time of any reservation so far. */
    double makespan() const { return makespan_; }

  private:
    double host_ = 0.0;
    std::vector<double> dpus_;
    double makespan_ = 0.0;
    // Rank lanes (empty until configureRanks): per-rank transfer
    // lanes, the channel lanes they serialize on, and per-rank
    // makespans folding in DPU-lane reservations.
    uint32_t rankDpus_ = 0;
    std::vector<uint32_t> channelOfRank_;
    std::vector<double> rankLane_;
    std::vector<double> channelLane_;
    std::vector<double> rankMakespan_;
};

/**
 * One leg reserved on a PipelineTimeline: when the lane began the
 * operation (after both the dependency and the lane were free) and
 * when it completed. end - start is the operation's own duration,
 * independent of any waiting — summing seconds() over all legs of a
 * run therefore reproduces the synchronous (no-overlap) makespan.
 */
struct PipelineEvent
{
    double start = 0.0; ///< modeled time the lane began the leg
    double end = 0.0;   ///< modeled completion time

    /** Duration of the leg itself (waiting excluded). */
    double seconds() const { return end - start; }
};

/** One per-DPU slice of an async scatter: @p bytes from host memory
 * @p src land at @p mramAddr of DPU @p dpu. Slices may differ in
 * size, so the legs serialize on the host interface. */
struct ScatterSlice
{
    uint32_t dpu = 0;
    uint32_t mramAddr = 0;
    const void* src = nullptr;
    uint32_t bytes = 0;
};

/** One per-DPU slice of an async gather (MRAM -> host @p dst). */
struct GatherSlice
{
    uint32_t dpu = 0;
    uint32_t mramAddr = 0;
    void* dst = nullptr;
    uint32_t bytes = 0;
};

/**
 * Builds the kernel one DPU runs in a launchAsync wave. Returning an
 * empty Kernel excludes that DPU from the wave (its lane stays free).
 */
using DpuKernelFactory = std::function<Kernel(uint32_t dpu)>;

/** Accumulated timing of one offloaded phase. */
struct PhaseTiming
{
    double hostToPimSeconds = 0.0; ///< CPU -> MRAM transfers
    double pimSeconds = 0.0;       ///< slowest DPU kernel time
    double pimToHostSeconds = 0.0; ///< MRAM -> CPU transfers
    double setupSeconds = 0.0;     ///< host-side table generation etc.

    /** End-to-end time of the phase. */
    double
    total() const
    {
        return hostToPimSeconds + pimSeconds + pimToHostSeconds +
               setupSeconds;
    }
};

/**
 * A set of simulated DPUs plus the host-side runtime.
 *
 * The number of *simulated* cores is deliberately decoupled from the
 * number of cores of the *modeled* machine: microbenchmarks simulate a
 * single DPU (as in the paper), while the workload experiments simulate
 * a handful of DPUs executing their exact per-core element share and
 * project to the full 2545-DPU system (see projectedSystemSeconds).
 *
 * Time domains: every `double` this class returns is **modeled time**
 * (seconds of the modeled PIM machine, derived from cycle counts and
 * bandwidth parameters of the CostModel), never host wall-clock time.
 * The only wall-clock measurement in the stack is the host-side table
 * generation (FunctionEvaluator::setupSeconds) and the CPU baselines
 * (work::timeCpuBaseline).
 *
 * Parallel simulation: launchAll and the bulk transfer helpers execute
 * across DPUs on the process-wide ThreadPool. Each DpuCore is fully
 * self-contained (its own MRAM/WRAM arrays, per-tasklet instruction
 * counters, per-core DMA accumulator), so modeled cycles, energy and
 * memory numbers are pure functions of per-core state and the results
 * are bit-identical for any thread count. Set TPL_SIM_THREADS=1 (or
 * setSimThreads(1)) to force the serial reference path.
 */
class PimSystem
{
  public:
    /**
     * @param numDpus simulated DPU count.
     * @param model cost-model parameters (shared by all cores).
     */
    explicit PimSystem(uint32_t numDpus,
                       const CostModel& model = CostModel{});
    ~PimSystem(); // out of line: SystemFaultState is incomplete here

    uint32_t numDpus() const { return static_cast<uint32_t>(dpus_.size()); }

    DpuCore& dpu(uint32_t i) { return *dpus_[i]; }
    const DpuCore& dpu(uint32_t i) const { return *dpus_[i]; }

    const CostModel& model() const { return model_; }

    /**
     * Broadcast the same buffer into every DPU at @p mramAddr.
     * @return modeled transfer seconds. Parallel mode (default, the
     * pre-split behavior): the same bytes stream once per rank,
     * overlapped across ranks. Serial mode: one pass of the buffer
     * per DPU on the serialized host interface.
     */
    double broadcastToMram(uint32_t mramAddr, const void* src,
                           uint32_t size,
                           TransferMode mode = TransferMode::Parallel);

    /**
     * Scatter equal-size slices of @p data across the DPUs.
     * Slice i (size bytesPerDpu) lands at @p mramAddr of DPU i.
     * @return modeled transfer seconds in @p mode.
     */
    double scatterToMram(uint32_t mramAddr, const void* data,
                         uint32_t bytesPerDpu,
                         TransferMode mode = TransferMode::Parallel);

    /** Gather equal-size slices back from the DPUs. */
    double gatherFromMram(uint32_t mramAddr, void* data,
                          uint32_t bytesPerDpu,
                          TransferMode mode = TransferMode::Parallel);

    /// @name Asynchronous (pipelined) legs.
    ///
    /// The async variants perform their data movement / simulation
    /// immediately in wall time but reserve their modeled cost on a
    /// caller-owned PipelineTimeline instead of assuming the legs run
    /// back to back: transfer legs occupy the serialized host lane,
    /// kernel legs occupy each DPU's own lane. Passing the completion
    /// time of a leg as another leg's @p readyAt expresses the data
    /// dependency; the timeline's makespan is then the end-to-end
    /// modeled time of the overlapped schedule. Fault semantics,
    /// TransferStats accounting and LaunchStats (including the exact
    /// per-class cycle partition) are identical to the synchronous
    /// calls.
    /// @{

    /**
     * Account a rank-parallel broadcast of @p tableBytes on the host
     * lane, timing only: the broadcast data itself must already have
     * been staged through direct core writes (e.g. an evaluator's
     * attach()). Used by the serve layer to model LUT distribution on
     * a cache miss.
     *
     * With @p rank >= 0 the leg is reserved on that rank's transfer
     * lane (the timeline must have configureRanks armed) and costs
     * one single-rank parallel pass (rankParallelTransferSeconds)
     * instead of the whole-system parallel rate — the fleet path
     * broadcasts a table once per holding rank, not once per DPU.
     */
    PipelineEvent broadcastAsync(PipelineTimeline& timeline,
                                 double readyAt, uint64_t tableBytes,
                                 int32_t rank = -1);

    /**
     * Scatter variable-size @p slices (serialized on the host lane)
     * starting no earlier than @p readyAt. Copies happen immediately;
     * with a fault plan armed each slice is one retryable transfer
     * leg and a slice whose DPU dies is dropped (check isMasked()
     * afterwards). @return the leg's reservation on the host lane,
     * or on @p rank's transfer lane when @p rank >= 0 (fleet path:
     * the slices must all target DPUs of that rank).
     */
    PipelineEvent scatterAsync(PipelineTimeline& timeline,
                               double readyAt,
                               std::span<const ScatterSlice> slices,
                               int32_t rank = -1);

    /** Gather variable-size @p slices; mirror of scatterAsync. */
    PipelineEvent gatherAsync(PipelineTimeline& timeline,
                              double readyAt,
                              std::span<const GatherSlice> slices,
                              int32_t rank = -1);

    /**
     * Launch a wave on every DPU for which @p makeKernel returns a
     * non-empty kernel, each core's modeled cycles reserved on its
     * own lane starting no earlier than @p readyAt. Masked cores are
     * skipped; failures are swept exactly as in launchAll (see
     * lastLaunchReport()). The event spans from the earliest lane
     * start to the latest lane end; with all lanes free at @p readyAt
     * its seconds() is the slowest healthy core's time, like
     * launchAll's return value.
     */
    PipelineEvent launchAsync(PipelineTimeline& timeline,
                              double readyAt, uint32_t numTasklets,
                              const DpuKernelFactory& makeKernel);
    /// @}

    /**
     * Accumulated per-direction x per-mode transfer accounting of
     * every broadcast/scatter/gather this system ran.
     */
    const TransferStats& transferStats() const
    {
        return transferStats_;
    }

    /**
     * Launch the same kernel on every simulated DPU. With a fault
     * plan armed, masked (previously failed) cores are skipped and
     * cores that fail during this launch are masked for subsequent
     * work; see lastLaunchReport().
     * @return seconds of the slowest healthy DPU (they run
     * concurrently).
     */
    double launchAll(uint32_t numTasklets, const Kernel& kernel);

    /** Cycles of the slowest DPU in the last launchAll. */
    uint64_t lastMaxCycles() const { return lastMaxCycles_; }

    /**
     * Per-DPU cycle counts of the last launchAll/launchAsync, indexed
     * by DPU (0 for cores that did not run the wave; straggler
     * entries already fenced at the policy's launch timeout). Filled
     * by the same sequential failure sweep that computes
     * lastMaxCycles(), so it is deterministic at any thread count —
     * the serve pipeline's straggler detector reads its spread.
     */
    const std::vector<uint64_t>& lastLaunchCycles() const
    {
        return lastCycles_;
    }

    /** Failure accounting of the last launchAll. */
    const LaunchReport& lastLaunchReport() const { return lastReport_; }

    /// @name Fault injection & resilience (pimsim/fault/fault.h).
    /// @{

    /**
     * Arm @p plan on every core: the plan is copied, per-DPU fault
     * states are created, and all launches/transfers/memory writes
     * consult it until disarmFaults(). Re-arming replaces the active
     * plan and clears all masks. A plan whose specs never fire leaves
     * every modeled statistic bit-identical to no plan at all.
     */
    void armFaults(const fault::FaultPlan& plan);

    /** Detach the armed plan (cores become permanently healthy). */
    void disarmFaults();

    /** The armed plan, or nullptr. */
    const fault::FaultPlan* faultPlan() const;

    /** Retry/degradation knobs consulted while a plan is armed. */
    void setRetryPolicy(const RetryPolicy& policy) { policy_ = policy; }
    const RetryPolicy& retryPolicy() const { return policy_; }

    /** True when @p dpu has been masked out by a failure. */
    bool isMasked(uint32_t dpu) const;

    /** Number of cores not masked out. */
    uint32_t healthyDpus() const;

    /**
     * Degradation-aware sharded execution: scatter @p elements items
     * of @p elemBytes from @p input across the healthy cores, launch
     * the shard kernels, and gather into @p output — retrying failed
     * transfer legs with capped exponential backoff and re-sharding
     * the slices of failed cores onto the survivors in subsequent
     * waves. Without an armed plan this degenerates to one wave over
     * all cores. @p makeKernel is called once per shard per wave.
     */
    ShardedRunReport runSharded(const void* input, void* output,
                                uint64_t elements, uint32_t elemBytes,
                                uint32_t numTasklets,
                                const ShardKernelFactory& makeKernel);
    /// @}

    /**
     * Override the simulation parallelism for this system.
     * 0 (default) uses the global ThreadPool (sized by TPL_SIM_THREADS,
     * else hardware concurrency); 1 forces the serial reference path;
     * any value > 1 runs on the global pool. Results are bit-identical
     * either way — this knob exists for debugging and A/B timing.
     */
    void setSimThreads(uint32_t threads) { simThreads_ = threads; }
    uint32_t simThreads() const { return simThreads_; }

    /**
     * Run this system's loops on @p pool instead of the global pool
     * (nullptr restores the global pool). The pool must outlive the
     * system. Used by tests that need guaranteed-threaded execution
     * regardless of the host's core count / TPL_SIM_THREADS.
     */
    void setThreadPool(ThreadPool* pool) { pool_ = pool; }

    /**
     * Modeled seconds a transfer of @p totalBytes takes in parallel
     * mode (same-size buffer per DPU, overlapped across ranks).
     * Returns 0 if the model's bandwidth parameters are non-positive.
     */
    double parallelTransferSeconds(uint64_t totalBytes) const;

    /**
     * Modeled seconds one *rank* takes to stream @p totalBytes in
     * parallel mode: a single rank engages only its own per-rank
     * bandwidth, however many DPUs it carries. The fleet path charges
     * this per holding rank; ranks on distinct channels overlap on
     * the timeline instead of multiplying the rate here.
     */
    double rankParallelTransferSeconds(uint64_t totalBytes) const;

    /**
     * Modeled seconds a transfer of @p totalBytes takes in serial mode
     * (distinct buffer sizes serialize on the host interface).
     * Returns 0 if the model's serial bandwidth is non-positive.
     */
    double serialTransferSeconds(uint64_t totalBytes) const;

    /**
     * Project a per-DPU cycle count measured on the simulated cores to
     * a full system of @p systemDpus cores processing @p totalElements
     * elements, assuming the measured kernel processed
     * @p simulatedElements elements per core (linear in elements, which
     * holds for the streaming element-wise kernels evaluated here).
     * Returns modeled seconds; 0 when any of the divisors
     * (simulatedElementsPerDpu, systemDpus, frequencyHz) is not
     * positive.
     */
    double projectedSystemSeconds(uint64_t perDpuCycles,
                                  uint64_t simulatedElementsPerDpu,
                                  uint64_t totalElements,
                                  uint32_t systemDpus) const;

  private:
    /** Run fn(d) for every DPU index, parallel when profitable. */
    void forEachDpu(const std::function<void(uint32_t)>& fn,
                    uint64_t bytesPerDpu) const;

    /**
     * Account one transfer into @p cell (and, observationally, the
     * obs layer): modeled seconds for @p streamBytes in @p mode,
     * plus @p extraSeconds of fault-retry overhead (0 when no fault
     * fired).
     */
    double accountTransfer(TransferStats::Cell (&cells)[2],
                           const char* direction, TransferMode mode,
                           uint64_t streamBytes,
                           double extraSeconds = 0.0);

    /**
     * accountTransfer with the stream seconds supplied by the caller
     * instead of derived from @p mode — used by the fleet path to
     * charge a broadcast at the single-rank parallel rate.
     */
    double accountTransferSeconds(TransferStats::Cell (&cells)[2],
                                  const char* direction,
                                  TransferMode mode,
                                  uint64_t streamBytes,
                                  double seconds);

    /**
     * One per-DPU leg of a bulk transfer under the armed plan's retry
     * semantics: draws the leg outcome, retries timeouts/detected
     * corruption with capped exponential backoff, masks the DPU when
     * retries are exhausted. @p copy performs the actual bytes;
     * @p corruptTarget/@p corruptSize name the region an undetected
     * corrupt leg flips a bit in. @return extra modeled seconds
     * (backoff + re-streamed bytes) — 0 with no plan armed.
     */
    double transferLeg(uint32_t dpu, uint64_t bytes,
                       const std::function<void()>& copy,
                       uint8_t* corruptTarget, uint64_t corruptSize);

    /** Mark a DPU failed/masked (armed plans only). */
    void maskDpu(uint32_t dpu);

    /**
     * Post-launch failure sweep shared by launchAll and launchAsync:
     * fence stragglers at the policy's launch timeout (capping their
     * entry in @p cycles), mask newly failed cores, and fill
     * lastReport_ / lastMaxCycles_. @p ran marks cores that executed
     * this wave, @p skip cores excluded because they were already
     * masked when the wave started. Sequential, so the result is
     * independent of the simulation thread count.
     */
    void sweepLaunchFailures(const std::vector<uint8_t>& ran,
                             const std::vector<uint8_t>& skip,
                             std::vector<uint64_t>& cycles);

    CostModel model_;
    std::vector<std::unique_ptr<DpuCore>> dpus_;
    uint64_t lastMaxCycles_ = 0;
    std::vector<uint64_t> lastCycles_;
    uint32_t simThreads_ = 0;
    ThreadPool* pool_ = nullptr; ///< nullptr = the global pool
    TransferStats transferStats_;
    RetryPolicy policy_;
    LaunchReport lastReport_;
    std::unique_ptr<fault::SystemFaultState> faults_;
};

} // namespace sim
} // namespace tpl

#endif // TPL_PIMSIM_SYSTEM_H
