/**
 * @file
 * Multi-DPU PIM system with a host-transfer timing model.
 *
 * Mirrors the structure in Figure 2 of the paper: a host CPU that can
 * copy buffers to/from the MRAM bank of every PIM core, launch the same
 * SPMD kernel on all cores, and gather results. There is no direct
 * PIM-to-PIM channel — inter-core communication happens through the
 * host, as on all five real PIM systems the paper surveys.
 *
 * Transfer timing follows the UPMEM characterization: transfers execute
 * in parallel across DPUs when every DPU sends/receives a buffer of the
 * same size, and serialize otherwise. The model exposes both so the
 * workload harness can account setup and result movement the way the
 * paper does.
 */

#ifndef TPL_PIMSIM_SYSTEM_H
#define TPL_PIMSIM_SYSTEM_H

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "pimsim/dpu.h"

namespace tpl {
namespace sim {

class ThreadPool;

/**
 * How a host<->PIM transfer streams on the modeled machine: rank-
 * parallel (same-size buffer per DPU, the fast path the UPMEM runtime
 * reaches with aligned same-size transfers) or serialized on the host
 * interface (distinct sizes / unaligned).
 */
enum class TransferMode
{
    Parallel,
    Serial,
};

/** "parallel" or "serial". */
inline const char*
toString(TransferMode mode)
{
    return mode == TransferMode::Parallel ? "parallel" : "serial";
}

/**
 * Per-direction x per-mode transfer accounting. Earlier revisions
 * folded rank-parallel and serial timing into one returned number;
 * this split keeps a distinct counter per (broadcast/scatter/gather,
 * parallel/serial) cell so the tracer and metrics registry can label
 * them — the cells sum exactly to the old combined totals (locked by
 * a unit test).
 */
struct TransferStats
{
    struct Cell
    {
        uint64_t transfers = 0; ///< calls accounted in this cell
        uint64_t bytes = 0;     ///< modeled stream bytes
        double seconds = 0.0;   ///< modeled transfer seconds
    };

    /** Indexed by static_cast<int>(TransferMode). */
    Cell broadcast[2];
    Cell scatter[2];
    Cell gather[2];

    /** Sum of every cell's modeled seconds (the old combined view). */
    double
    totalSeconds() const
    {
        double s = 0.0;
        for (int m = 0; m < 2; ++m)
            s += broadcast[m].seconds + scatter[m].seconds +
                 gather[m].seconds;
        return s;
    }

    /** Sum of every cell's modeled stream bytes. */
    uint64_t
    totalBytes() const
    {
        uint64_t b = 0;
        for (int m = 0; m < 2; ++m)
            b += broadcast[m].bytes + scatter[m].bytes +
                 gather[m].bytes;
        return b;
    }
};

/** Accumulated timing of one offloaded phase. */
struct PhaseTiming
{
    double hostToPimSeconds = 0.0; ///< CPU -> MRAM transfers
    double pimSeconds = 0.0;       ///< slowest DPU kernel time
    double pimToHostSeconds = 0.0; ///< MRAM -> CPU transfers
    double setupSeconds = 0.0;     ///< host-side table generation etc.

    /** End-to-end time of the phase. */
    double
    total() const
    {
        return hostToPimSeconds + pimSeconds + pimToHostSeconds +
               setupSeconds;
    }
};

/**
 * A set of simulated DPUs plus the host-side runtime.
 *
 * The number of *simulated* cores is deliberately decoupled from the
 * number of cores of the *modeled* machine: microbenchmarks simulate a
 * single DPU (as in the paper), while the workload experiments simulate
 * a handful of DPUs executing their exact per-core element share and
 * project to the full 2545-DPU system (see projectedSystemSeconds).
 *
 * Time domains: every `double` this class returns is **modeled time**
 * (seconds of the modeled PIM machine, derived from cycle counts and
 * bandwidth parameters of the CostModel), never host wall-clock time.
 * The only wall-clock measurement in the stack is the host-side table
 * generation (FunctionEvaluator::setupSeconds) and the CPU baselines
 * (work::timeCpuBaseline).
 *
 * Parallel simulation: launchAll and the bulk transfer helpers execute
 * across DPUs on the process-wide ThreadPool. Each DpuCore is fully
 * self-contained (its own MRAM/WRAM arrays, per-tasklet instruction
 * counters, per-core DMA accumulator), so modeled cycles, energy and
 * memory numbers are pure functions of per-core state and the results
 * are bit-identical for any thread count. Set TPL_SIM_THREADS=1 (or
 * setSimThreads(1)) to force the serial reference path.
 */
class PimSystem
{
  public:
    /**
     * @param numDpus simulated DPU count.
     * @param model cost-model parameters (shared by all cores).
     */
    explicit PimSystem(uint32_t numDpus,
                       const CostModel& model = CostModel{});

    uint32_t numDpus() const { return static_cast<uint32_t>(dpus_.size()); }

    DpuCore& dpu(uint32_t i) { return *dpus_[i]; }
    const DpuCore& dpu(uint32_t i) const { return *dpus_[i]; }

    const CostModel& model() const { return model_; }

    /**
     * Broadcast the same buffer into every DPU at @p mramAddr.
     * @return modeled transfer seconds. Parallel mode (default, the
     * pre-split behavior): the same bytes stream once per rank,
     * overlapped across ranks. Serial mode: one pass of the buffer
     * per DPU on the serialized host interface.
     */
    double broadcastToMram(uint32_t mramAddr, const void* src,
                           uint32_t size,
                           TransferMode mode = TransferMode::Parallel);

    /**
     * Scatter equal-size slices of @p data across the DPUs.
     * Slice i (size bytesPerDpu) lands at @p mramAddr of DPU i.
     * @return modeled transfer seconds in @p mode.
     */
    double scatterToMram(uint32_t mramAddr, const void* data,
                         uint32_t bytesPerDpu,
                         TransferMode mode = TransferMode::Parallel);

    /** Gather equal-size slices back from the DPUs. */
    double gatherFromMram(uint32_t mramAddr, void* data,
                          uint32_t bytesPerDpu,
                          TransferMode mode = TransferMode::Parallel);

    /**
     * Accumulated per-direction x per-mode transfer accounting of
     * every broadcast/scatter/gather this system ran.
     */
    const TransferStats& transferStats() const
    {
        return transferStats_;
    }

    /**
     * Launch the same kernel on every simulated DPU.
     * @return seconds of the slowest DPU (they run concurrently).
     */
    double launchAll(uint32_t numTasklets, const Kernel& kernel);

    /** Cycles of the slowest DPU in the last launchAll. */
    uint64_t lastMaxCycles() const { return lastMaxCycles_; }

    /**
     * Override the simulation parallelism for this system.
     * 0 (default) uses the global ThreadPool (sized by TPL_SIM_THREADS,
     * else hardware concurrency); 1 forces the serial reference path;
     * any value > 1 runs on the global pool. Results are bit-identical
     * either way — this knob exists for debugging and A/B timing.
     */
    void setSimThreads(uint32_t threads) { simThreads_ = threads; }
    uint32_t simThreads() const { return simThreads_; }

    /**
     * Run this system's loops on @p pool instead of the global pool
     * (nullptr restores the global pool). The pool must outlive the
     * system. Used by tests that need guaranteed-threaded execution
     * regardless of the host's core count / TPL_SIM_THREADS.
     */
    void setThreadPool(ThreadPool* pool) { pool_ = pool; }

    /**
     * Modeled seconds a transfer of @p totalBytes takes in parallel
     * mode (same-size buffer per DPU, overlapped across ranks).
     * Returns 0 if the model's bandwidth parameters are non-positive.
     */
    double parallelTransferSeconds(uint64_t totalBytes) const;

    /**
     * Modeled seconds a transfer of @p totalBytes takes in serial mode
     * (distinct buffer sizes serialize on the host interface).
     * Returns 0 if the model's serial bandwidth is non-positive.
     */
    double serialTransferSeconds(uint64_t totalBytes) const;

    /**
     * Project a per-DPU cycle count measured on the simulated cores to
     * a full system of @p systemDpus cores processing @p totalElements
     * elements, assuming the measured kernel processed
     * @p simulatedElements elements per core (linear in elements, which
     * holds for the streaming element-wise kernels evaluated here).
     * Returns modeled seconds; 0 when any of the divisors
     * (simulatedElementsPerDpu, systemDpus, frequencyHz) is not
     * positive.
     */
    double projectedSystemSeconds(uint64_t perDpuCycles,
                                  uint64_t simulatedElementsPerDpu,
                                  uint64_t totalElements,
                                  uint32_t systemDpus) const;

  private:
    /** Run fn(d) for every DPU index, parallel when profitable. */
    void forEachDpu(const std::function<void(uint32_t)>& fn,
                    uint64_t bytesPerDpu) const;

    /**
     * Account one transfer into @p cell (and, observationally, the
     * obs layer): modeled seconds for @p streamBytes in @p mode.
     */
    double accountTransfer(TransferStats::Cell (&cells)[2],
                           const char* direction, TransferMode mode,
                           uint64_t streamBytes);

    CostModel model_;
    std::vector<std::unique_ptr<DpuCore>> dpus_;
    uint64_t lastMaxCycles_ = 0;
    uint32_t simThreads_ = 0;
    ThreadPool* pool_ = nullptr; ///< nullptr = the global pool
    TransferStats transferStats_;
};

} // namespace sim
} // namespace tpl

#endif // TPL_PIMSIM_SYSTEM_H
