/**
 * @file
 * pimfault: deterministic, seeded fault injection for the simulator.
 *
 * Real UPMEM deployments run with faulty or disabled DPUs and flaky
 * rank transfers (Gómez-Luna et al., arXiv:2105.03814 report both on
 * the 2556-DPU system the paper characterizes), yet simulators — ours
 * included, until this module — only ever model the sunny day. This
 * module makes every documented failure mode *expressible and
 * replayable*:
 *
 *   - memory cell faults: stuck-at bits and one-shot bit flips in
 *     MRAM or WRAM,
 *   - DMA faults: silent data corruption of a transferred buffer and
 *     timed-out transfers (extra latency on the issuing tasklet),
 *   - core faults: permanent per-DPU hard failures and slow-DPU
 *     stragglers (cycle multipliers),
 *   - host<->DPU transfer faults: per-leg timeouts and detected
 *     corruption, both retryable by the PimSystem runtime.
 *
 * Everything is configured by a FaultPlan: a seed plus a list of
 * FaultSpec entries (site + probability + trigger). Every firing
 * decision is a pure hash of (plan seed, spec index, DPU index,
 * per-DPU event counter) — no shared RNG stream — so a plan replays
 * bit-identically at any simulation thread count, and an armed plan
 * whose specs all have probability 0 leaves every modeled statistic
 * bit-identical to a run with no plan at all (locked by
 * tests/fault_test.cc and the fault-determinism test in
 * tests/concurrency_test.cc).
 *
 * Observability: every fired fault counts into the obs Registry under
 * `fault/...` when the registry is enabled; firing never depends on
 * the registry state.
 */

#ifndef TPL_PIMSIM_FAULT_FAULT_H
#define TPL_PIMSIM_FAULT_FAULT_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace tpl {
namespace sim {

class DpuCore;

namespace fault {

/** Injection sites / failure modes a FaultSpec can select. */
enum class FaultKind
{
    MramStuckBit,    ///< MRAM cell bit stuck at a value (reasserted
                     ///< after every write covering it)
    WramStuckBit,    ///< WRAM cell bit stuck at a value
    MramBitFlip,     ///< one-shot MRAM bit flip at a trigger launch
    WramBitFlip,     ///< one-shot WRAM bit flip at a trigger launch
    DmaCorrupt,      ///< silent bit corruption of a tasklet DMA buffer
    DmaTimeout,      ///< timed-out tasklet DMA: extra stall cycles
    DpuHardFail,     ///< permanent core failure (launches fail)
    DpuStraggler,    ///< slow core: launch cycles multiplied
    TransferTimeout, ///< host<->DPU transfer leg fails (retryable)
    TransferCorrupt, ///< host<->DPU transfer leg corrupted (detected
                     ///< by the runtime's CRC model, retryable)
};

/** Stable lowercase-slug of a kind ("dpu-hard-fail", ...). */
const char* kindSlug(FaultKind kind);

/** Inverse of kindSlug; empty optional for unknown slugs. */
std::optional<FaultKind> kindFromSlug(const std::string& slug);

/**
 * One injectable fault: a kind, a site, and a trigger. Fields beyond
 * the kind's site are ignored (a DpuHardFail has no addr/bit).
 */
struct FaultSpec
{
    FaultKind kind = FaultKind::DpuHardFail;

    /** Target DPU index, or -1 for every DPU. */
    int32_t dpu = -1;

    /** Byte address of the faulty cell (memory-cell kinds). */
    uint32_t addr = 0;

    /** Bit index within the byte (memory-cell kinds). */
    uint8_t bit = 0;

    /** Stuck-at value (MramStuckBit / WramStuckBit). */
    bool stuckValue = false;

    /**
     * Per-event firing probability. The event an eligible spec draws
     * on depends on the kind: each tasklet DMA (DmaCorrupt /
     * DmaTimeout), each launch (DpuHardFail / DpuStraggler and the
     * bit-flip trigger), each per-DPU transfer attempt
     * (TransferTimeout / TransferCorrupt). Stuck-at cells ignore it
     * (they are permanently asserted).
     */
    double probability = 1.0;

    /** Events of the kind to skip before the spec becomes eligible
     * (e.g. bit flips: the launch index to flip at). */
    uint64_t triggerAfter = 0;

    /** Cycle multiplier while a DpuStraggler fires. */
    double slowdown = 4.0;

    /** Extra stall cycles a fired DmaTimeout charges. */
    uint64_t extraStallCycles = 1000;
};

/**
 * A complete, replayable failure scenario: the seed plus every
 * injectable fault. Serializes to a line-based text form
 * (`tools/pimfault` replays files of it):
 *
 *   # comment
 *   seed 42
 *   fault kind=dpu-hard-fail dpu=3 prob=1
 *   fault kind=dma-corrupt prob=0.01
 *   fault kind=mram-stuck-bit dpu=0 addr=1024 bit=3 stuck=1
 *   fault kind=dpu-straggler prob=0.1 slowdown=4
 *   fault kind=dma-timeout prob=0.01 stall=10000
 *   fault kind=transfer-timeout prob=0.05
 *   fault kind=mram-bit-flip dpu=1 addr=2048 bit=7 after=1
 */
struct FaultPlan
{
    uint64_t seed = 0;
    std::vector<FaultSpec> faults;

    bool empty() const { return faults.empty(); }

    /** Serialize to the text form parse() accepts. */
    std::string toText() const;

    /**
     * Parse the text form. On failure returns std::nullopt and, when
     * @p error is non-null, a line-tagged message.
     */
    static std::optional<FaultPlan> parse(const std::string& text,
                                          std::string* error = nullptr);
};

/** Outcome of one host<->DPU transfer-leg attempt. */
enum class TransferOutcome
{
    Ok,
    Timeout, ///< the leg never completed; retry after backoff
    Corrupt, ///< the leg completed but failed the CRC; retry
};

/**
 * Per-DPU fault state: the specs of a plan that target one DPU, plus
 * that DPU's private event counters. Owned by the SystemFaultState a
 * PimSystem::armFaults creates; a DpuCore holds a non-owning pointer
 * (like its sanitizer). All counters are single-threaded by contract:
 * a DpuCore is only ever touched by one simulation thread at a time.
 */
class DpuFaultState
{
  public:
    DpuFaultState(const FaultPlan& plan, uint32_t dpuIndex,
                  DpuCore* core);

    uint32_t dpuIndex() const { return dpu_; }

    /// @name Launch-level hooks (DpuCore::launch).
    /// @{

    /**
     * Called at the top of every launch: applies due one-shot bit
     * flips and draws the hard-fail / straggler specs for this launch
     * event. @return true when the core is (now) hard-failed and the
     * launch must not execute.
     */
    bool onLaunchBegin();

    /** Straggler adjustment of a finished launch's cycles. */
    uint64_t adjustCycles(uint64_t cycles) const;

    /** Permanently failed (a DpuHardFail fired on this core). */
    bool hardFailed() const { return hardFailed_; }

    /** Injected fault events since the last onLaunchBegin. */
    uint64_t launchFaultEvents() const { return launchFaultEvents_; }
    /// @}

    /// @name DMA hooks (TaskletContext::mramReadAt / mramWriteAt).
    /// @{

    /** DMA data landed in @p data: maybe corrupt it; @return extra
     * stall cycles from timed-out transfers. */
    uint64_t onDmaData(uint8_t* data, uint32_t size);
    /// @}

    /// @name Memory-write hooks (stuck-at reassertion).
    /// @{
    void onMramWritten(uint32_t addr, uint32_t size);
    void onWramWritten(uint32_t addr, uint32_t size);
    /// @}

    /** Draw the outcome of one host<->DPU transfer-leg attempt. */
    TransferOutcome onTransferAttempt();

    /** Corrupt one deterministic bit of a transfer region (used when
     * a corrupt leg lands undetected). */
    void corruptRegion(uint8_t* data, uint64_t size);

  private:
    double draw(uint32_t specIndex, uint64_t salt, uint64_t counter) const;
    uint64_t rawDraw(uint32_t specIndex, uint64_t salt,
                     uint64_t counter) const;
    void applyStuck(FaultKind kind, uint8_t* mem, uint64_t memSize,
                    uint32_t addr, uint32_t size);

    const FaultPlan* plan_;
    uint32_t dpu_;
    DpuCore* core_;
    std::vector<uint32_t> mine_; ///< indices of specs targeting dpu_
    uint64_t dmaEvents_ = 0;
    uint64_t launchEvents_ = 0;
    uint64_t transferEvents_ = 0;
    uint64_t launchFaultEvents_ = 0;
    double slowdown_ = 1.0; ///< straggler multiplier for this launch
    bool hardFailed_ = false;
    std::vector<uint8_t> flipFired_; ///< per-spec one-shot latch
};

} // namespace fault
} // namespace sim
} // namespace tpl

#endif // TPL_PIMSIM_FAULT_FAULT_H
