/**
 * @file
 * pimfault implementation: deterministic draws, fault application,
 * and the FaultPlan text form.
 */

#include "pimsim/fault/fault.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "pimsim/dpu.h"
#include "pimsim/obs/metrics.h"

namespace tpl {
namespace sim {
namespace fault {

namespace {

/** SplitMix64 finalizer: the bit mixer behind every firing decision. */
uint64_t
mix(uint64_t z)
{
    z += 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** Uniform [0, 1) from a raw draw. */
double
u01(uint64_t raw)
{
    return static_cast<double>(raw >> 11) * 0x1.0p-53;
}

/** Per-kind salt so distinct hooks never share a decision stream. */
constexpr uint64_t kSaltLaunch = 0x11;
constexpr uint64_t kSaltDma = 0x22;
constexpr uint64_t kSaltDmaSite = 0x33;
constexpr uint64_t kSaltTransfer = 0x44;

void
countFault(const char* name)
{
    obs::Registry& reg = obs::Registry::global();
    if (reg.enabled())
        reg.counter(std::string("fault/") + name).add(1);
}

struct KindName
{
    FaultKind kind;
    const char* slug;
};

constexpr KindName kKindNames[] = {
    {FaultKind::MramStuckBit, "mram-stuck-bit"},
    {FaultKind::WramStuckBit, "wram-stuck-bit"},
    {FaultKind::MramBitFlip, "mram-bit-flip"},
    {FaultKind::WramBitFlip, "wram-bit-flip"},
    {FaultKind::DmaCorrupt, "dma-corrupt"},
    {FaultKind::DmaTimeout, "dma-timeout"},
    {FaultKind::DpuHardFail, "dpu-hard-fail"},
    {FaultKind::DpuStraggler, "dpu-straggler"},
    {FaultKind::TransferTimeout, "transfer-timeout"},
    {FaultKind::TransferCorrupt, "transfer-corrupt"},
};

/** Shortest decimal that round-trips a probability/slowdown. */
std::string
formatDouble(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    for (int prec = 1; prec < 17; ++prec) {
        char trial[32];
        std::snprintf(trial, sizeof(trial), "%.*g", prec, v);
        double back = 0.0;
        std::sscanf(trial, "%lf", &back);
        if (back == v)
            return trial;
    }
    return buf;
}

} // namespace

const char*
kindSlug(FaultKind kind)
{
    for (const auto& k : kKindNames)
        if (k.kind == kind)
            return k.slug;
    return "unknown";
}

std::optional<FaultKind>
kindFromSlug(const std::string& slug)
{
    for (const auto& k : kKindNames)
        if (slug == k.slug)
            return k.kind;
    return std::nullopt;
}

std::string
FaultPlan::toText() const
{
    std::ostringstream out;
    out << "seed " << seed << "\n";
    for (const FaultSpec& f : faults) {
        out << "fault kind=" << kindSlug(f.kind);
        if (f.dpu >= 0)
            out << " dpu=" << f.dpu;
        switch (f.kind) {
          case FaultKind::MramStuckBit:
          case FaultKind::WramStuckBit:
            out << " addr=" << f.addr << " bit=" << unsigned(f.bit)
                << " stuck=" << (f.stuckValue ? 1 : 0);
            break;
          case FaultKind::MramBitFlip:
          case FaultKind::WramBitFlip:
            out << " addr=" << f.addr << " bit=" << unsigned(f.bit);
            break;
          case FaultKind::DpuStraggler:
            out << " slowdown=" << formatDouble(f.slowdown);
            break;
          case FaultKind::DmaTimeout:
            out << " stall=" << f.extraStallCycles;
            break;
          default:
            break;
        }
        out << " prob=" << formatDouble(f.probability);
        if (f.triggerAfter > 0)
            out << " after=" << f.triggerAfter;
        out << "\n";
    }
    return out.str();
}

std::optional<FaultPlan>
FaultPlan::parse(const std::string& text, std::string* error)
{
    auto fail = [&](int line, const std::string& msg)
        -> std::optional<FaultPlan> {
        if (error)
            *error = "line " + std::to_string(line) + ": " + msg;
        return std::nullopt;
    };

    FaultPlan plan;
    std::istringstream in(text);
    std::string rawLine;
    int lineNo = 0;
    while (std::getline(in, rawLine)) {
        ++lineNo;
        std::string line = rawLine.substr(0, rawLine.find('#'));
        std::istringstream tokens(line);
        std::string head;
        if (!(tokens >> head))
            continue;
        if (head == "seed") {
            if (!(tokens >> plan.seed))
                return fail(lineNo, "seed needs an integer");
            continue;
        }
        if (head != "fault")
            return fail(lineNo, "expected 'seed' or 'fault', got '" +
                                    head + "'");
        FaultSpec spec;
        bool haveKind = false;
        std::string kv;
        while (tokens >> kv) {
            size_t eq = kv.find('=');
            if (eq == std::string::npos)
                return fail(lineNo, "expected key=value, got '" + kv +
                                        "'");
            std::string key = kv.substr(0, eq);
            std::string val = kv.substr(eq + 1);
            try {
                if (key == "kind") {
                    auto k = kindFromSlug(val);
                    if (!k)
                        return fail(lineNo,
                                    "unknown fault kind '" + val + "'");
                    spec.kind = *k;
                    haveKind = true;
                } else if (key == "dpu") {
                    spec.dpu = val == "*" ? -1 : std::stoi(val);
                } else if (key == "addr") {
                    spec.addr =
                        static_cast<uint32_t>(std::stoul(val, nullptr, 0));
                } else if (key == "bit") {
                    unsigned long b = std::stoul(val);
                    if (b > 7)
                        return fail(lineNo, "bit must be 0..7");
                    spec.bit = static_cast<uint8_t>(b);
                } else if (key == "stuck") {
                    spec.stuckValue = std::stoul(val) != 0;
                } else if (key == "prob") {
                    spec.probability = std::stod(val);
                } else if (key == "after") {
                    spec.triggerAfter = std::stoull(val);
                } else if (key == "slowdown") {
                    spec.slowdown = std::stod(val);
                } else if (key == "stall") {
                    spec.extraStallCycles = std::stoull(val);
                } else {
                    return fail(lineNo, "unknown key '" + key + "'");
                }
            } catch (const std::exception&) {
                return fail(lineNo, "bad value for '" + key + "'");
            }
        }
        if (!haveKind)
            return fail(lineNo, "fault line needs kind=<slug>");
        if (spec.probability < 0.0 || spec.probability > 1.0)
            return fail(lineNo, "prob must be in [0, 1]");
        plan.faults.push_back(spec);
    }
    return plan;
}

// -------------------------------------------------------- DpuFaultState

DpuFaultState::DpuFaultState(const FaultPlan& plan, uint32_t dpuIndex,
                             DpuCore* core)
    : plan_(&plan), dpu_(dpuIndex), core_(core)
{
    for (uint32_t i = 0; i < plan.faults.size(); ++i) {
        const FaultSpec& f = plan.faults[i];
        if (f.dpu < 0 || static_cast<uint32_t>(f.dpu) == dpuIndex)
            mine_.push_back(i);
    }
    flipFired_.assign(plan.faults.size(), 0);
}

uint64_t
DpuFaultState::rawDraw(uint32_t specIndex, uint64_t salt,
                       uint64_t counter) const
{
    uint64_t h = plan_->seed;
    h = mix(h ^ (specIndex * 0x9e3779b97f4a7c15ull));
    h = mix(h ^ (static_cast<uint64_t>(dpu_) << 32) ^ salt);
    h = mix(h ^ counter);
    return h;
}

double
DpuFaultState::draw(uint32_t specIndex, uint64_t salt,
                    uint64_t counter) const
{
    return u01(rawDraw(specIndex, salt, counter));
}

void
DpuFaultState::applyStuck(FaultKind kind, uint8_t* mem,
                          uint64_t memSize, uint32_t addr,
                          uint32_t size)
{
    for (uint32_t i : mine_) {
        const FaultSpec& f = plan_->faults[i];
        if (f.kind != kind)
            continue;
        if (f.addr < addr ||
            f.addr >= static_cast<uint64_t>(addr) + size ||
            f.addr >= memSize)
            continue;
        uint8_t maskBit = static_cast<uint8_t>(1u << (f.bit & 7));
        uint8_t& cell = mem[f.addr];
        uint8_t forced = f.stuckValue ? (cell | maskBit)
                                      : (cell & ~maskBit);
        if (forced != cell) {
            cell = forced;
            countFault("mem/stuck_asserts");
        }
    }
}

void
DpuFaultState::onMramWritten(uint32_t addr, uint32_t size)
{
    applyStuck(FaultKind::MramStuckBit, core_->mramData(),
               core_->model().mramBytes, addr, size);
}

void
DpuFaultState::onWramWritten(uint32_t addr, uint32_t size)
{
    applyStuck(FaultKind::WramStuckBit, core_->wramData(),
               core_->model().wramBytes, addr, size);
}

bool
DpuFaultState::onLaunchBegin()
{
    launchFaultEvents_ = 0;
    slowdown_ = 1.0;
    uint64_t event = launchEvents_++;
    for (uint32_t i : mine_) {
        const FaultSpec& f = plan_->faults[i];
        if (event < f.triggerAfter)
            continue;
        switch (f.kind) {
          case FaultKind::MramBitFlip:
          case FaultKind::WramBitFlip: {
            if (flipFired_[i] ||
                draw(i, kSaltLaunch, event) >= f.probability)
                break;
            flipFired_[i] = 1;
            bool mram = f.kind == FaultKind::MramBitFlip;
            uint8_t* mem =
                mram ? core_->mramData() : core_->wramData();
            uint64_t memSize = mram ? core_->model().mramBytes
                                    : core_->model().wramBytes;
            if (f.addr < memSize) {
                mem[f.addr] ^= static_cast<uint8_t>(1u << (f.bit & 7));
                ++launchFaultEvents_;
                countFault("mem/bit_flips");
            }
            break;
          }
          case FaultKind::DpuHardFail:
            if (!hardFailed_ &&
                draw(i, kSaltLaunch, event) < f.probability) {
                hardFailed_ = true;
                ++launchFaultEvents_;
                countFault("dpu/hard_fail");
            }
            break;
          case FaultKind::DpuStraggler:
            if (draw(i, kSaltLaunch, event) < f.probability) {
                slowdown_ = std::max(slowdown_, f.slowdown);
                ++launchFaultEvents_;
                countFault("dpu/straggler");
            }
            break;
          default:
            break;
        }
    }
    return hardFailed_;
}

uint64_t
DpuFaultState::adjustCycles(uint64_t cycles) const
{
    if (slowdown_ <= 1.0)
        return cycles;
    return static_cast<uint64_t>(static_cast<double>(cycles) *
                                 slowdown_);
}

uint64_t
DpuFaultState::onDmaData(uint8_t* data, uint32_t size)
{
    uint64_t event = dmaEvents_++;
    uint64_t extraStall = 0;
    for (uint32_t i : mine_) {
        const FaultSpec& f = plan_->faults[i];
        if (event < f.triggerAfter)
            continue;
        if (f.kind == FaultKind::DmaCorrupt && size > 0 &&
            draw(i, kSaltDma, event) < f.probability) {
            uint64_t site = rawDraw(i, kSaltDmaSite, event);
            data[site % size] ^=
                static_cast<uint8_t>(1u << ((site >> 32) & 7));
            ++launchFaultEvents_;
            countFault("dma/corrupt");
        } else if (f.kind == FaultKind::DmaTimeout &&
                   draw(i, kSaltDma, event) < f.probability) {
            extraStall += f.extraStallCycles;
            ++launchFaultEvents_;
            countFault("dma/timeout");
            obs::Registry& reg = obs::Registry::global();
            if (reg.enabled())
                reg.counter("fault/dma/timeout_stall_cycles")
                    .add(f.extraStallCycles);
        }
    }
    return extraStall;
}

TransferOutcome
DpuFaultState::onTransferAttempt()
{
    uint64_t event = transferEvents_++;
    TransferOutcome out = TransferOutcome::Ok;
    for (uint32_t i : mine_) {
        const FaultSpec& f = plan_->faults[i];
        if (event < f.triggerAfter)
            continue;
        if (f.kind == FaultKind::TransferTimeout &&
            draw(i, kSaltTransfer, event) < f.probability) {
            countFault("transfer/timeout");
            return TransferOutcome::Timeout; // timeouts dominate
        }
        if (f.kind == FaultKind::TransferCorrupt &&
            out == TransferOutcome::Ok &&
            draw(i, kSaltTransfer, event) < f.probability) {
            countFault("transfer/corrupt");
            out = TransferOutcome::Corrupt;
        }
    }
    return out;
}

void
DpuFaultState::corruptRegion(uint8_t* data, uint64_t size)
{
    if (size == 0)
        return;
    uint64_t site = mix(plan_->seed ^
                        (static_cast<uint64_t>(dpu_) << 32) ^
                        transferEvents_);
    data[site % size] ^= static_cast<uint8_t>(1u << ((site >> 32) & 7));
}

} // namespace fault
} // namespace sim
} // namespace tpl
