/**
 * @file
 * Fleet topology: how a PIM machine's DPUs are organized into ranks
 * and DIMMs, and how that organization shapes host-transfer
 * parallelism.
 *
 * The paper's UPMEM results come from a 2545-DPU machine organized as
 * 20 DIMMs x 2 ranks x 64 DPUs. The benchmarking studies of that
 * machine (Gomez-Luna et al., PAPERS.md) characterize transfer
 * bandwidth as scaling with the number of *ranks* engaged in
 * parallel, not with DPU count: each rank streams at the per-rank
 * host bandwidth, ranks on distinct DIMMs (distinct memory channels)
 * overlap, and the two ranks of one DIMM share a channel and
 * serialize against each other.
 *
 * Topology is a plain description; the modeled consequences live in
 * PipelineTimeline's rank/channel lanes (system.h) and in the serve
 * layer's FleetScheduler (serve/fleet.h).
 */

#ifndef TPL_PIMSIM_TOPOLOGY_H
#define TPL_PIMSIM_TOPOLOGY_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace tpl {
namespace sim {

/**
 * Shape of a PIM fleet: @c dimms DIMMs, each carrying
 * @c ranksPerDimm ranks of @c dpusPerRank DPUs. Ranks are numbered
 * DIMM-major (rank r lives on DIMM r / ranksPerDimm) and DPUs
 * rank-major (DPU d lives on rank d / dpusPerRank), so a
 * Topology{1, 1, N} is exactly today's flat N-DPU pool.
 *
 * One memory channel per DIMM: ranks on different DIMMs transfer in
 * parallel; the ranks of one DIMM serialize on their shared channel.
 */
struct Topology
{
    uint32_t dimms = 1;        ///< number of DIMMs in the fleet
    uint32_t ranksPerDimm = 1; ///< ranks per DIMM (UPMEM: 2)
    uint32_t dpusPerRank = 64; ///< DPUs per rank (UPMEM: 64)

    /** Total ranks in the fleet. */
    uint32_t numRanks() const { return dimms * ranksPerDimm; }

    /** Total DPUs in the fleet. */
    uint32_t numDpus() const { return numRanks() * dpusPerRank; }

    /** All three extents positive. */
    bool valid() const
    {
        return dimms > 0 && ranksPerDimm > 0 && dpusPerRank > 0;
    }

    /** Rank holding global DPU index @p dpu. */
    uint32_t rankOfDpu(uint32_t dpu) const { return dpu / dpusPerRank; }

    /** Global index of the first DPU on @p rank. */
    uint32_t firstDpuOfRank(uint32_t rank) const
    {
        return rank * dpusPerRank;
    }

    /**
     * Memory channel carrying @p rank's transfers. One channel per
     * DIMM: the ranks of a DIMM share it and serialize.
     */
    uint32_t channelOfRank(uint32_t rank) const
    {
        return rank / ranksPerDimm;
    }

    /** Per-rank channel map, indexed by rank; see channelOfRank. */
    std::vector<uint32_t> channelMap() const;

    /** Render as the "DxRxP" grammar parse() accepts, e.g. "20x2x64". */
    std::string toText() const;

    /**
     * Parse "DIMMSxRANKSxDPUS" (e.g. "20x2x64" = 20 DIMMs, 2 ranks
     * per DIMM, 64 DPUs per rank). Returns std::nullopt on anything
     * malformed: wrong field count, non-digits, zero extents, or
     * values that overflow the uint32 DPU count.
     */
    static std::optional<Topology> parse(const std::string& text);
};

/** Structural equality (same extents). */
bool operator==(const Topology& a, const Topology& b);

} // namespace sim
} // namespace tpl

#endif // TPL_PIMSIM_TOPOLOGY_H
