/**
 * @file
 * A miniature DPU instruction set with assembler and interpreter.
 *
 * Purpose: *validate the cost model bottom-up*. The rest of the
 * simulator charges instruction counts at the level of emulated
 * operations ("this fixed-point interpolated LUT query retires ~40
 * native instructions"). This module lets a kernel be written
 * instruction by instruction in a RISC-style assembly resembling the
 * DPU ISA (32-bit integer ALU, WRAM loads/stores, MRAM DMA, an
 * emulated multiply); executing it on the same DpuCore retires exactly
 * one charge per instruction, so the test suite can compare the
 * hand-written kernel's instruction count and *outputs* against the
 * high-level model (tests/isa_test.cc).
 *
 * The ISA is deliberately small: enough to express the fixed-point
 * L-LUT and fixed-point CORDIC kernels (pure integer code, like real
 * TransPimLib DPU kernels in their hot loops).
 *
 * Registers: r0..r23 general purpose (r0 is NOT hardwired to zero),
 * plus the tasklet id readable via TID.
 *
 * Assembly syntax, one instruction per line ('#' comments):
 *   label:
 *   addi  r1, r2, 42       # r1 = r2 + 42
 *   add   r1, r2, r3
 *   sub/and/or/xor/sll/srl/sra  (register and 'i' immediate forms)
 *   mul   r1, r2, r3       # 32x32->32 low product (runtime expansion)
 *   mulh  r1, r2, r3       # high 32 bits of the signed 64-bit product
 *   movi  r1, 0x12345678   # load 32-bit immediate
 *   tid   r1               # r1 = tasklet id
 *   ntask r1               # r1 = number of tasklets
 *   ldw   r1, r2, 4        # r1 = WRAM[r2 + 4]
 *   stw   r1, r2, 4        # WRAM[r2 + 4] = r1
 *   ldma  r1, r2, r3       # DMA MRAM[r2 .. r2+r3) -> WRAM[r1 ..)
 *   sdma  r1, r2, r3       # DMA WRAM[r1 ..) -> MRAM[r2 .. r2+r3)
 *   beq/bne/blt/bge  r1, r2, label   (signed compares)
 *   bltu/bgeu        r1, r2, label   (unsigned compares)
 *   jmp   label
 *   barrier                # all tasklets rendezvous
 *   halt
 *
 * `barrier` models UPMEM's barrier_wait(): all tasklets of the launch
 * rendezvous. Tasklets execute sequentially in simulation, so the
 * instruction only charges its issue slot functionally — but it is the
 * synchronization the pimcheck race detector honors, and the static
 * verifier's barrier-balance pass proves every tasklet reaches the
 * same barrier count regardless of branching (a mismatch deadlocks
 * real hardware).
 */

#ifndef TPL_PIMSIM_ISA_H
#define TPL_PIMSIM_ISA_H

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "pimsim/dpu.h"

namespace tpl {
namespace sim {

/** Opcodes of the miniature ISA. */
enum class Opcode
{
    Add, Addi, Sub, Subi, And, Andi, Or, Ori, Xor, Xori,
    Sll, Slli, Srl, Srli, Sra, Srai,
    Mul, Mulh,
    Movi, Tid, Ntask,
    Ldw, Stw, Ldma, Sdma,
    Beq, Bne, Blt, Bge, Bltu, Bgeu, Jmp,
    Barrier,
    Halt,
};

/** Number of Opcode enumerators (table sizing / enumeration). */
inline constexpr uint32_t kNumOpcodes =
    static_cast<uint32_t>(Opcode::Halt) + 1;

/**
 * Static properties of one opcode — the single source of truth shared
 * by the assembler (mnemonic + operand pattern), the CFG builder
 * (control-flow roles) and the verifier's register read/write masks
 * (operand roles). A new instruction is added *here once*; a missing
 * or inconsistent entry is caught by the enumeration cross-check in
 * tests/analysis_test.cc, so it cannot silently ship with an empty
 * read/write mask or an unsplit basic block.
 */
struct OpTraits
{
    Opcode op;              ///< must equal the table index
    const char* mnemonic;   ///< assembly name
    /** Operand pattern: 'd'=dest reg, 'a'/'b'=source regs,
     * 'i'=immediate, 'l'=label (encoded into imm). */
    const char* operands;
    bool condBranch;        ///< two-successor terminator
    bool jump;              ///< unconditional jmp
    bool halts;             ///< terminates the tasklet
    /// @name Operand roles (register read/write masks derive from
    /// these: DMA reads rd as its WRAM address, stw reads rd as the
    /// stored value).
    /// @{
    bool readsRa;
    bool readsRb;
    bool readsRd;
    bool writesRd;
    /// @}

    /** True when the opcode ends a basic block. */
    bool endsBlock() const { return condBranch || jump || halts; }
};

/** Traits of @p op (O(1) table lookup). */
const OpTraits& opTraits(Opcode op);

/** One decoded instruction. */
struct Instruction
{
    Opcode op;
    uint8_t rd = 0;  ///< destination (or DMA wram-addr register)
    uint8_t ra = 0;  ///< first source
    uint8_t rb = 0;  ///< second source
    int32_t imm = 0; ///< immediate / branch target (instruction index)
};

/** An assembled program. */
struct Program
{
    std::vector<Instruction> code;
    /** Source line for each instruction (diagnostics). */
    std::vector<uint32_t> lines;
};

/** Thrown on assembly errors, with a line number in the message. */
class AsmError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Assemble source text into a program. @throws AsmError. */
Program assemble(const std::string& source);

/** Result of one tasklet's execution. */
struct ExecResult
{
    uint64_t instructionsExecuted = 0;
    std::array<int32_t, 24> registers{};
};

/**
 * Execute @p program on a tasklet. Each retired instruction charges
 * one native instruction (the Mul/Mulh pseudo-instructions charge
 * their runtime-expansion cost; DMA instructions additionally go
 * through the DMA model). WRAM accesses address the core's scratchpad
 * directly.
 *
 * @param maxInstructions runaway guard.
 * @throws std::runtime_error on invalid memory access or fuel
 *         exhaustion.
 */
ExecResult execute(const Program& program, TaskletContext& ctx,
                   uint64_t maxInstructions = 10'000'000);

} // namespace sim
} // namespace tpl

#endif // TPL_PIMSIM_ISA_H
