/**
 * @file
 * Simulated DPU implementation.
 */

#include "pimsim/dpu.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstring>
#include <stdexcept>
#include <string>

#include "pimsim/analysis/sanitizer.h"
#include "pimsim/fault/fault.h"
#include "pimsim/obs/metrics.h"
#include "pimsim/obs/trace.h"

namespace tpl {
namespace sim {

namespace {

/**
 * Launch-path metric handles, resolved once. Registry handles have
 * stable addresses for the process lifetime, so the per-launch string
 * concatenation + map lookup the report site used to pay is hoisted
 * into this lazily-built table. The per-class counters stay lazy
 * (registered on first non-zero count) so the registry's JSON dump
 * lists exactly the same names as the per-launch lookups did.
 */
struct LaunchMetrics
{
    obs::Counter* launches;
    obs::Counter* cycles;
    obs::Counter* instructions;
    obs::Counter* stallCycles;
    obs::Counter* dmaBytes;
    obs::Counter* dmaEngineCycles;
    obs::RealAccum* energyJoules;
    obs::Histogram* cyclesPerLaunch;
};

const LaunchMetrics&
launchMetrics()
{
    static const LaunchMetrics m = [] {
        obs::Registry& reg = obs::Registry::global();
        LaunchMetrics t;
        t.launches = &reg.counter("pimsim/dpu/launches");
        t.cycles = &reg.counter("pimsim/dpu/cycles");
        t.instructions = &reg.counter("pimsim/dpu/instructions");
        t.stallCycles = &reg.counter("pimsim/dpu/stall_cycles");
        t.dmaBytes = &reg.counter("pimsim/dpu/dma/bytes");
        t.dmaEngineCycles =
            &reg.counter("pimsim/dpu/dma/engine_cycles");
        t.energyJoules = &reg.real("pimsim/dpu/energy_joules");
        t.cyclesPerLaunch =
            &reg.histogram("pimsim/dpu/cycles_per_launch");
        return t;
    }();
    return m;
}

/** Cached "pimsim/dpu/instr/<class>" handle (lazy, race-benign). */
obs::Counter&
instrClassCounter(int c)
{
    static std::atomic<obs::Counter*> cache[numInstrClasses]{};
    obs::Counter* p = cache[c].load(std::memory_order_acquire);
    if (!p) {
        p = &obs::Registry::global().counter(
            std::string("pimsim/dpu/instr/") +
            std::string(instrClassName(static_cast<InstrClass>(c))));
        cache[c].store(p, std::memory_order_release);
    }
    return *p;
}

/** Cached "pimsim/dpu/ops/<op>" handle (lazy, race-benign). */
obs::Counter&
opClassCounter(int o)
{
    static std::atomic<obs::Counter*> cache[numOpClasses]{};
    obs::Counter* p = cache[o].load(std::memory_order_acquire);
    if (!p) {
        p = &obs::Registry::global().counter(
            std::string("pimsim/dpu/ops/") +
            std::string(opClassSlug(static_cast<OpClass>(o))));
        cache[o].store(p, std::memory_order_release);
    }
    return *p;
}

} // namespace

DpuCore::DpuCore(const CostModel& model)
    : model_(model), mram_(model.mramBytes), wram_(model.wramBytes)
{
}

void
DpuCore::hostWriteMram(uint32_t addr, const void* src, uint32_t size)
{
    if (static_cast<uint64_t>(addr) + size > mram_.size())
        throw std::out_of_range("hostWriteMram beyond MRAM bank");
    std::memcpy(mram_.data() + addr, src, size);
    if (faults_)
        faults_->onMramWritten(addr, size);
}

void
DpuCore::hostReadMram(uint32_t addr, void* dst, uint32_t size) const
{
    if (static_cast<uint64_t>(addr) + size > mram_.size())
        throw std::out_of_range("hostReadMram beyond MRAM bank");
    std::memcpy(dst, mram_.data() + addr, size);
}

void
DpuCore::hostWriteWram(uint32_t addr, const void* src, uint32_t size)
{
    if (static_cast<uint64_t>(addr) + size > wram_.size())
        throw std::out_of_range("hostWriteWram beyond scratchpad");
    std::memcpy(wram_.data() + addr, src, size);
    if (sanitizer_)
        sanitizer_->markWramInitialized(addr, size);
    if (faults_)
        faults_->onWramWritten(addr, size);
}

void
DpuCore::hostReadWram(uint32_t addr, void* dst, uint32_t size) const
{
    if (static_cast<uint64_t>(addr) + size > wram_.size())
        throw std::out_of_range("hostReadWram beyond scratchpad");
    std::memcpy(dst, wram_.data() + addr, size);
}

namespace {

uint32_t
alignUp8(uint32_t v)
{
    return (v + 7u) & ~7u;
}

/** WRAM offset of @p p if [p, p+size) lies inside the scratchpad,
 * else -1 (a host buffer standing in for a tasklet's WRAM chunk). */
int64_t
wramOffsetOf(const std::vector<uint8_t>& wram, const void* p,
             uint32_t size)
{
    auto base = reinterpret_cast<uintptr_t>(wram.data());
    auto ptr = reinterpret_cast<uintptr_t>(p);
    if (ptr >= base && ptr + size <= base + wram.size())
        return static_cast<int64_t>(ptr - base);
    return -1;
}

} // namespace

uint32_t
DpuCore::mramAlloc(uint32_t size)
{
    uint32_t addr = mramTop_;
    uint32_t next = alignUp8(mramTop_ + size);
    if (next > mram_.size())
        throw std::bad_alloc();
    mramTop_ = next;
    return addr;
}

uint32_t
DpuCore::wramAlloc(uint32_t size)
{
    uint32_t addr = wramTop_;
    uint32_t next = alignUp8(wramTop_ + size);
    if (next > wram_.size())
        throw std::bad_alloc();
    wramTop_ = next;
    return addr;
}

void
DpuCore::resetAllocators()
{
    mramTop_ = 0;
    wramTop_ = 0;
}

uint64_t
DpuCore::accountDma(uint32_t size)
{
    // Widen the byte count before the multiply and truncate the
    // product explicitly: the streaming term must never wrap for
    // bank-sized transfers, whatever cyclesPerByte the model sweeps.
    uint64_t streaming = static_cast<uint64_t>(
        static_cast<double>(size) * model_.dmaCyclesPerByte);
    uint64_t engine = model_.dmaSetupCycles + streaming;
    dmaEngineCycles_ += engine;
    dmaBytes_ += size;
    return model_.dmaLatencyCycles + engine;
}

LaunchStats
DpuCore::launch(uint32_t numTasklets, const Kernel& kernel)
{
    assert(numTasklets >= 1 && numTasklets <= model_.maxTasklets);
    dmaEngineCycles_ = 0;
    dmaBytes_ = 0;
    if (faults_ && faults_->onLaunchBegin()) {
        // Hard-failed core: the kernel never runs. Everything but the
        // failure flag stays zero so a masked core contributes nothing
        // to any aggregate.
        LaunchStats stats;
        stats.tasklets = numTasklets;
        stats.failed = true;
        stats.faultEvents = faults_->launchFaultEvents();
        obs::Registry& reg = obs::Registry::global();
        if (reg.enabled())
            reg.counter("fault/launch/failed").add(1);
        last_ = stats;
        return stats;
    }
    if (sanitizer_)
        sanitizer_->beginLaunch(numTasklets);

    std::vector<TaskletContext> contexts;
    contexts.reserve(numTasklets);
    for (uint32_t t = 0; t < numTasklets; ++t)
        contexts.emplace_back(*this, t, numTasklets);

    // Purely observational: wall-clock slices per tasklet when the
    // tracer is on. Modeled statistics never depend on this branch.
    obs::Tracer& tracer = obs::Tracer::global();
    const bool tracing = tracer.enabled();
    std::vector<std::pair<double, double>> slices;
    if (tracing)
        slices.reserve(numTasklets);
    for (auto& ctx : contexts) {
        if (tracing) {
            double t0 = tracer.nowUs();
            kernel(ctx);
            slices.emplace_back(t0, tracer.nowUs() - t0);
        } else {
            kernel(ctx);
        }
    }

    LaunchStats stats;
    stats.tasklets = numTasklets;
    stats.dmaEngineCycles = dmaEngineCycles_;
    stats.perTasklet.reserve(numTasklets);
    for (const auto& ctx : contexts) {
        stats.totalInstructions += ctx.instructions();
        uint64_t work = ctx.instructions() * model_.pipelineInterval +
                        ctx.dmaStallCycles();
        stats.maxTaskletWork = std::max(stats.maxTaskletWork, work);
        TaskletStats ts;
        ts.instructions = ctx.instructions();
        ts.dmaStallCycles = ctx.dmaStallCycles();
        ts.classInstructions = ctx.classInstructions();
        stats.perTasklet.push_back(ts);
        for (int c = 0; c < numInstrClasses; ++c)
            stats.classInstructions[c] += ctx.classInstructions()[c];
        for (int o = 0; o < numOpClasses; ++o)
            stats.opCounts[o] += ctx.opCounts()[o];
    }
    stats.cycles = std::max({stats.totalInstructions,
                             stats.maxTaskletWork,
                             stats.dmaEngineCycles});
    if (faults_) {
        // Straggler slowdown stretches the launch; the added cycles
        // land in the stall residual so the partition stays exact.
        stats.cycles = faults_->adjustCycles(stats.cycles);
        stats.faultEvents = faults_->launchFaultEvents();
    }
    // Exact cycle partition: one issue slot per retired instruction,
    // the binding constraint's slack is the stall residual.
    stats.stallCycles = stats.cycles - stats.totalInstructions;
    stats.dmaBytes = dmaBytes_;
    stats.energyJoules =
        (static_cast<double>(stats.totalInstructions) *
             model_.instrEnergyPj +
         static_cast<double>(dmaBytes_) * model_.dmaEnergyPerBytePj) *
        1e-12;

    if (tracing) {
        for (uint32_t t = 0; t < numTasklets; ++t)
            tracer.complete(
                "tasklet " + std::to_string(t), "tasklet",
                slices[t].first, slices[t].second,
                obs::argsObject(
                    {obs::argKv("instructions",
                                stats.perTasklet[t].instructions),
                     obs::argKv("dma_stall_cycles",
                                stats.perTasklet[t].dmaStallCycles)}));
    }

    if (obs::Registry::global().enabled()) {
        const LaunchMetrics& m = launchMetrics();
        m.launches->add(1);
        m.cycles->add(stats.cycles);
        m.instructions->add(stats.totalInstructions);
        m.stallCycles->add(stats.stallCycles);
        m.dmaBytes->add(stats.dmaBytes);
        m.dmaEngineCycles->add(stats.dmaEngineCycles);
        m.energyJoules->add(stats.energyJoules);
        for (int c = 0; c < numInstrClasses; ++c)
            if (stats.classInstructions[c])
                instrClassCounter(c).add(stats.classInstructions[c]);
        for (int o = 0; o < numOpClasses; ++o)
            if (stats.opCounts[o])
                opClassCounter(o).add(stats.opCounts[o]);
        m.cyclesPerLaunch->observe(stats.cycles);
    }

    last_ = stats;
    return stats;
}

void
TaskletContext::mramRead(uint32_t mramAddr, void* dst, uint32_t size)
{
    mramReadAt(mramAddr, dst, size, 0);
}

void
TaskletContext::mramReadAt(uint32_t mramAddr, void* dst, uint32_t size,
                           uint32_t line)
{
    if (check::Sanitizer* san = core_.sanitizer_) {
        int64_t wa = wramOffsetOf(core_.wram_, dst, size);
        san->onDma(id_, mramAddr, wa, size, line);
        if (wa >= 0)
            san->onWramStore(id_, static_cast<uint32_t>(wa), size,
                             line);
    }
    if (static_cast<uint64_t>(mramAddr) + size > core_.mram_.size())
        throw std::out_of_range("mramRead beyond MRAM bank");
    std::memcpy(dst, core_.mram_.data() + mramAddr, size);
    dmaStall_ += core_.accountDma(size);
    if (core_.faults_)
        dmaStall_ += core_.faults_->onDmaData(
            static_cast<uint8_t*>(dst), size);
    // Issuing the DMA costs a couple of instructions as well.
    chargeClass(InstrClass::DmaIssue, 2);
}

void
TaskletContext::mramWrite(uint32_t mramAddr, const void* src, uint32_t size)
{
    mramWriteAt(mramAddr, src, size, 0);
}

void
TaskletContext::mramWriteAt(uint32_t mramAddr, const void* src,
                            uint32_t size, uint32_t line)
{
    if (check::Sanitizer* san = core_.sanitizer_) {
        int64_t wa = wramOffsetOf(core_.wram_, src, size);
        san->onDma(id_, mramAddr, wa, size, line);
        if (wa >= 0)
            san->onWramLoad(id_, static_cast<uint32_t>(wa), size, line);
    }
    if (static_cast<uint64_t>(mramAddr) + size > core_.mram_.size())
        throw std::out_of_range("mramWrite beyond MRAM bank");
    std::memcpy(core_.mram_.data() + mramAddr, src, size);
    dmaStall_ += core_.accountDma(size);
    if (core_.faults_) {
        dmaStall_ += core_.faults_->onDmaData(
            core_.mram_.data() + mramAddr, size);
        core_.faults_->onMramWritten(mramAddr, size);
    }
    chargeClass(InstrClass::DmaIssue, 2);
}

void
TaskletContext::barrier()
{
    chargeClass(InstrClass::Barrier, 1);
    if (core_.sanitizer_)
        core_.sanitizer_->onBarrier(id_);
}

void
TaskletContext::chargeWramAccess(uint32_t accesses)
{
    chargeClass(InstrClass::WramAccess,
                accesses * core_.model_.wramAccessCost);
}

} // namespace sim
} // namespace tpl
