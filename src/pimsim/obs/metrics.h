/**
 * @file
 * obs layer piece 1: the metrics registry.
 *
 * A process-wide registry of named counters, real-valued accumulators
 * and log2-bucket histograms that the simulator's instrumentation
 * points (DpuCore::launch, the PimSystem transfer paths, the runtime
 * sanitizer) report into. Always compiled, **off by default**: every
 * report site guards on `Registry::global().enabled()`, a single
 * relaxed atomic load, and no instrumentation ever touches a modeled
 * statistic — cycles/instructions/DMA/energy are bit-identical with
 * the registry on or off (asserted by the extended determinism test).
 *
 * Naming is hierarchical by convention: "/"-separated paths such as
 * `pimsim/dpu/instr/softfloat` or `pimcheck/sanitizer/tasklet-race`.
 * The JSON dump emits one flat, name-sorted object per metric family,
 * so consumers (bench/run_all.sh, pimtrace) never need to know the
 * hierarchy in advance.
 *
 * Thread safety: metric handles are created under a mutex on first
 * use and never move afterwards (the registry stores them behind
 * stable pointers); updates are lock-free atomics, safe from the
 * thread pool's workers.
 *
 * Environment bootstrap: setting `TPL_OBS_METRICS=<path>` enables the
 * global registry at process start and dumps its JSON to <path> at
 * exit — how bench binaries grow per-phase breakdowns without any
 * per-bench code.
 */

#ifndef TPL_PIMSIM_OBS_METRICS_H
#define TPL_PIMSIM_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace tpl {
namespace obs {

/** Monotonic integer counter (lock-free add). */
class Counter
{
  public:
    void add(uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
    uint64_t value() const { return value_.load(std::memory_order_relaxed); }
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> value_{0};
};

/** Real-valued accumulator (CAS add; modeled-seconds totals). */
class RealAccum
{
  public:
    void add(double delta)
    {
        double cur = value_.load(std::memory_order_relaxed);
        while (!value_.compare_exchange_weak(cur, cur + delta,
                                             std::memory_order_relaxed))
        {}
    }

    double value() const { return value_.load(std::memory_order_relaxed); }
    void reset() { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Log2-bucket histogram over uint64 samples: bucket i counts samples
 * with bit_width(sample) == i (bucket 0: sample == 0). Tracks count,
 * sum, min and max alongside, enough for latency/size distributions
 * without per-sample storage.
 */
class Histogram
{
  public:
    static constexpr int kBuckets = 65;

    void observe(uint64_t sample);

    uint64_t count() const { return count_.load(std::memory_order_relaxed); }
    uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
    uint64_t minValue() const { return min_.load(std::memory_order_relaxed); }
    uint64_t maxValue() const { return max_.load(std::memory_order_relaxed); }
    uint64_t bucket(int i) const { return buckets_[i].load(std::memory_order_relaxed); }

    void reset();

  private:
    std::atomic<uint64_t> buckets_[kBuckets]{};
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> sum_{0};
    std::atomic<uint64_t> min_{UINT64_MAX};
    std::atomic<uint64_t> max_{0};
};

/**
 * The registry: named metric families, create-on-first-use. One
 * global instance serves the whole process; independent instances
 * exist only for tests.
 */
class Registry
{
  public:
    Registry() = default;
    Registry(const Registry&) = delete;
    Registry& operator=(const Registry&) = delete;

    /** The process-wide registry every instrumentation point uses. */
    static Registry& global();

    /** Cheap gate every report site checks first. */
    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    void setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    /// @name Metric handles (stable addresses, create-on-first-use).
    /// @{
    Counter& counter(const std::string& name);
    RealAccum& real(const std::string& name);
    Histogram& histogram(const std::string& name);
    /// @}

    /** Zero every registered metric (registrations stay). */
    void reset();

    /**
     * Dump as JSON: {"counters": {name: value, ...}, "reals": {...},
     * "histograms": {name: {count, sum, min, max, buckets}, ...}},
     * names sorted. Valid JSON by construction (names are sanitized
     * of quotes/backslashes on registration).
     */
    std::string toJson() const;

    /** Write toJson() to @p path; false on I/O failure. */
    bool writeJson(const std::string& path) const;

  private:
    mutable std::mutex mutex_;
    std::atomic<bool> enabled_{false};
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<RealAccum>> reals_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

} // namespace obs
} // namespace tpl

#endif // TPL_PIMSIM_OBS_METRICS_H
