/**
 * @file
 * obs layer piece 1: the metrics registry.
 *
 * A process-wide registry of named counters, real-valued accumulators
 * and log-linear histograms that the simulator's instrumentation
 * points (DpuCore::launch, the PimSystem transfer paths, the runtime
 * sanitizer, the serve pipeline) report into. Always compiled, **off
 * by default**: every report site guards on
 * `Registry::global().enabled()`, a single relaxed atomic load, and no
 * instrumentation ever touches a modeled statistic — cycles/
 * instructions/DMA/energy are bit-identical with the registry on or
 * off (asserted by the extended determinism test).
 *
 * Naming is hierarchical by convention: "/"-separated paths such as
 * `pimsim/dpu/instr/softfloat` or `pimcheck/sanitizer/tasklet-race`.
 * The JSON dump emits one flat, name-sorted object per metric family,
 * so consumers (bench/run_all.sh, pimtrace) never need to know the
 * hierarchy in advance.
 *
 * Thread safety: metric handles are created under a mutex on first
 * use and never move afterwards (the registry stores them behind
 * stable pointers); updates are lock-free atomics, safe from the
 * thread pool's workers.
 *
 * Environment bootstrap: setting `TPL_OBS_METRICS=<path>` enables the
 * global registry at process start and dumps its JSON to <path> at
 * exit — how bench binaries grow per-phase breakdowns without any
 * per-bench code.
 */

#ifndef TPL_PIMSIM_OBS_METRICS_H
#define TPL_PIMSIM_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tpl {
namespace obs {

/** Monotonic integer counter (lock-free add). */
class Counter
{
  public:
    void add(uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
    uint64_t value() const { return value_.load(std::memory_order_relaxed); }
    void reset() { value_.store(0, std::memory_order_relaxed); }

    /** Fold @p other's value into this counter. */
    void mergeFrom(const Counter& other) { add(other.value()); }

  private:
    std::atomic<uint64_t> value_{0};
};

/** Real-valued accumulator (CAS add; modeled-seconds totals). */
class RealAccum
{
  public:
    void add(double delta)
    {
        double cur = value_.load(std::memory_order_relaxed);
        while (!value_.compare_exchange_weak(cur, cur + delta,
                                             std::memory_order_relaxed))
        {}
    }

    double value() const { return value_.load(std::memory_order_relaxed); }
    void reset() { value_.store(0.0, std::memory_order_relaxed); }

    /** Fold @p other's value into this accumulator. */
    void mergeFrom(const RealAccum& other) { add(other.value()); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * HDR-style log-linear histogram over uint64 samples: each power-of-
 * two range is subdivided into 2^subBucketBits equal-width
 * sub-buckets, so quantiles extracted from the bucket array carry a
 * bounded *relative* error of at most 2^-subBucketBits (6.25% at the
 * default 4 bits) while the footprint stays a few hundred words.
 * Samples below 2^(subBucketBits+1) land in width-1 buckets and are
 * recovered exactly.
 *
 * Tracks count, sum, min and max alongside (sum wraps mod 2^64).
 * observe() is lock-free (relaxed atomics); quantile() walks the
 * bucket array deterministically — the result is a pure function of
 * the recorded multiset, identical at any thread count.
 */
class Histogram
{
  public:
    /** Default sub-bucket resolution: 16 sub-buckets per octave,
     * relative quantile error <= 1/16. */
    static constexpr uint32_t kDefaultSubBucketBits = 4;

    explicit Histogram(uint32_t subBucketBits = kDefaultSubBucketBits);

    void observe(uint64_t sample);

    uint64_t count() const { return count_.load(std::memory_order_relaxed); }
    uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
    uint64_t minValue() const { return min_.load(std::memory_order_relaxed); }
    uint64_t maxValue() const { return max_.load(std::memory_order_relaxed); }

    uint32_t subBucketBits() const { return subBits_; }
    uint32_t numBuckets() const { return static_cast<uint32_t>(buckets_.size()); }
    uint64_t bucket(uint32_t i) const { return buckets_[i].load(std::memory_order_relaxed); }

    /** Flat bucket index a sample maps to, for @p subBucketBits of
     * resolution (pure function; exposed for tests/consumers). */
    static uint32_t bucketIndex(uint64_t sample, uint32_t subBucketBits);

    /** Smallest / largest sample value bucket @p i can hold. */
    uint64_t bucketLow(uint32_t i) const;
    uint64_t bucketHigh(uint32_t i) const;

    /**
     * Deterministic nearest-rank quantile: the upper edge of the
     * bucket holding the ceil(q * count)'th smallest sample, clamped
     * to [minValue, maxValue]. @p q in [0, 1]; returns 0 on an empty
     * histogram. Guarantee: result >= the true quantile and <= true *
     * (1 + 2^-subBucketBits); exact below 2^(subBucketBits+1).
     */
    uint64_t quantile(double q) const;

    /**
     * Fold @p other's samples into this histogram. Returns false
     * (and merges nothing) when the sub-bucket resolutions differ —
     * bucket arrays of different shapes cannot be added losslessly.
     */
    bool mergeFrom(const Histogram& other);

    void reset();

  private:
    uint32_t subBits_;
    std::vector<std::atomic<uint64_t>> buckets_;
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> sum_{0};
    std::atomic<uint64_t> min_{UINT64_MAX};
    std::atomic<uint64_t> max_{0};
};

/**
 * The registry: named metric families, create-on-first-use. One
 * global instance serves the whole process; independent instances
 * exist for tests and per-shard aggregation (see mergeFrom).
 */
class Registry
{
  public:
    Registry() = default;
    Registry(const Registry&) = delete;
    Registry& operator=(const Registry&) = delete;

    /** The process-wide registry every instrumentation point uses. */
    static Registry& global();

    /** Cheap gate every report site checks first. */
    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    void setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    /// @name Metric handles (stable addresses, create-on-first-use).
    /// @{
    Counter& counter(const std::string& name);
    RealAccum& real(const std::string& name);

    /** The histogram named @p name, created on first use with
     * @p subBucketBits of resolution (later calls return the existing
     * handle; the resolution of the *first* call wins). */
    Histogram& histogram(
        const std::string& name,
        uint32_t subBucketBits = Histogram::kDefaultSubBucketBits);
    /// @}

    /** Names of every registered histogram family, sorted. */
    std::vector<std::string> histogramNames() const;

    /** The histogram named @p name, or nullptr if never registered
     * (never creates — safe for read-only consumers). */
    const Histogram* findHistogram(const std::string& name) const;

    /**
     * Fold every metric of @p other into this registry (missing
     * families are created), so per-shard/per-test registries can be
     * aggregated without double-counting — call once per source
     * registry. Histograms whose sub-bucket resolutions disagree with
     * an existing family are skipped; @return how many were.
     */
    size_t mergeFrom(const Registry& other);

    /** Zero every registered metric (registrations stay). */
    void reset();

    /**
     * Dump as JSON: {"counters": {name: value, ...}, "reals": {...},
     * "histograms": {name: {count, sum, min, max, sub_bucket_bits,
     * p50, p90, p99, buckets}, ...}}, names sorted. Valid JSON by
     * construction (names are sanitized of quotes/backslashes on
     * registration).
     */
    std::string toJson() const;

    /** Write toJson() to @p path; false on I/O failure. */
    bool writeJson(const std::string& path) const;

  private:
    mutable std::mutex mutex_;
    std::atomic<bool> enabled_{false};
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<RealAccum>> reals_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

} // namespace obs
} // namespace tpl

#endif // TPL_PIMSIM_OBS_METRICS_H
