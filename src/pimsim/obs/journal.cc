/**
 * @file
 * Journal implementation: canonical JSONL serialization, exact
 * nearest-rank percentile extraction, SLO spec grammar + tracker.
 */

#include "pimsim/obs/journal.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <tuple>

namespace tpl {
namespace obs {

namespace {

/**
 * Deterministic double → text: %.17g round-trips the exact binary
 * value and never depends on locale or stream state, so two journals
 * of the same modeled schedule serialize byte-identically.
 */
std::string
formatDouble(double v)
{
    if (std::isnan(v) || std::isinf(v))
        return "0";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

void
appendEventLine(std::ostringstream& out, const JournalEvent& ev)
{
    out << "{\"kind\": \"" << jsonEscape(ev.kind) << "\""
        << ", \"t\": " << formatDouble(ev.t)
        << ", \"dur\": " << formatDouble(ev.dur)
        << ", \"request\": " << ev.request
        << ", \"elements\": " << ev.elements;
    if (ev.wave != JournalEvent::kNoWave)
        out << ", \"wave\": " << ev.wave;
    if (ev.cycles != 0)
        out << ", \"cycles\": " << ev.cycles;
    if (ev.rank >= 0)
        out << ", \"rank\": " << ev.rank;
    if (ev.tenant != 0)
        out << ", \"tenant\": " << ev.tenant;
    if (!ev.table.empty())
        out << ", \"table\": \"" << jsonEscape(ev.table) << "\"";
    if (!ev.note.empty())
        out << ", \"note\": \"" << jsonEscape(ev.note) << "\"";
    out << "}\n";
}

void
appendLatencyLine(std::ostringstream& out, const RequestLatency& lat)
{
    out << "{\"kind\": \"latency\""
        << ", \"request\": " << lat.request
        << ", \"table\": \"" << jsonEscape(lat.table) << "\""
        << ", \"elements\": " << lat.elements
        << ", \"waves\": " << lat.waves
        << ", \"complete\": " << (lat.complete ? "true" : "false")
        << ", \"arrival_s\": " << formatDouble(lat.arrivalSeconds)
        << ", \"first_scatter_s\": "
        << formatDouble(lat.firstScatterSeconds)
        << ", \"completed_s\": " << formatDouble(lat.completedSeconds)
        << ", \"queue_wait_s\": " << formatDouble(lat.queueWaitSeconds)
        << ", \"transfer_s\": " << formatDouble(lat.transferSeconds)
        << ", \"compute_s\": " << formatDouble(lat.computeSeconds)
        << ", \"stall_s\": " << formatDouble(lat.stallSeconds)
        << ", \"latency_s\": " << formatDouble(lat.latencySeconds())
        << "}\n";
}

} // namespace

void
Journal::record(const JournalEvent& ev)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!eventsEnabled_)
        return;
    events_.push_back(ev);
}

void
Journal::recordLatency(const RequestLatency& lat)
{
    std::lock_guard<std::mutex> lock(mutex_);
    latencies_.push_back(lat);
}

std::vector<JournalEvent>
Journal::events() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_;
}

std::vector<RequestLatency>
Journal::latencies() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return latencies_;
}

LatencySummary
Journal::summarize(double makespanSeconds) const
{
    std::vector<RequestLatency> lats = latencies();
    LatencySummary s;
    std::vector<double> done;
    done.reserve(lats.size());
    double sum = 0.0;
    for (const auto& lat : lats) {
        if (!lat.complete) {
            ++s.incomplete;
            continue;
        }
        const double v = lat.latencySeconds();
        done.push_back(v);
        sum += v;
        if (v > s.max)
            s.max = v;
    }
    s.requests = done.size();
    if (done.empty())
        return s;
    std::sort(done.begin(), done.end());
    // Exact nearest-rank: the ceil(q*n)'th smallest recorded latency.
    auto rank = [&](double q) {
        uint64_t r = static_cast<uint64_t>(
            std::ceil(q * static_cast<double>(done.size())));
        if (r < 1)
            r = 1;
        if (r > done.size())
            r = done.size();
        return done[r - 1];
    };
    s.p50 = rank(0.50);
    s.p90 = rank(0.90);
    s.p99 = rank(0.99);
    s.p999 = rank(0.999);
    s.mean = sum / static_cast<double>(done.size());
    if (makespanSeconds > 0.0)
        s.requestsPerSecond =
            static_cast<double>(done.size()) / makespanSeconds;
    return s;
}

std::string
Journal::toJsonl() const
{
    std::vector<JournalEvent> evs = events();
    std::vector<RequestLatency> lats = latencies();
    // Canonical order: events by (t, kind, request, wave, rank) —
    // modeled time first so the log reads causally; rank last so the
    // fleet path stays canonical when two ranks tie on everything
    // else; stable_sort keeps any residual ties in (deterministic
    // single-consumer) append order.
    std::stable_sort(evs.begin(), evs.end(),
                     [](const JournalEvent& a, const JournalEvent& b) {
                         return std::tie(a.t, a.kind, a.request, a.wave,
                                         a.rank) <
                                std::tie(b.t, b.kind, b.request, b.wave,
                                         b.rank);
                     });
    std::stable_sort(lats.begin(), lats.end(),
                     [](const RequestLatency& a, const RequestLatency& b) {
                         return a.request < b.request;
                     });
    std::ostringstream out;
    for (const auto& ev : evs)
        appendEventLine(out, ev);
    for (const auto& lat : lats)
        appendLatencyLine(out, lat);
    return out.str();
}

bool
Journal::writeJsonl(const std::string& path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << toJsonl();
    return static_cast<bool>(out);
}

void
Journal::setEventsEnabled(bool enabled)
{
    std::lock_guard<std::mutex> lock(mutex_);
    eventsEnabled_ = enabled;
}

bool
Journal::eventsEnabled() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return eventsEnabled_;
}

void
Journal::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
    latencies_.clear();
}

bool
SloSpec::parse(const std::string& text, SloSpec& out)
{
    const char* p = text.c_str();
    if (*p != 'p' && *p != 'P')
        return false;
    ++p;
    char* end = nullptr;
    const double pct = std::strtod(p, &end);
    if (end == p || !(pct > 0.0) || !(pct < 100.0))
        return false;
    p = end;
    if (*p != '<' && *p != ':')
        return false;
    ++p;
    const double target = std::strtod(p, &end);
    if (end == p || !(target > 0.0))
        return false;
    p = end;
    double scale = 0.0;
    if (std::strcmp(p, "s") == 0)
        scale = 1.0;
    else if (std::strcmp(p, "ms") == 0)
        scale = 1e-3;
    else if (std::strcmp(p, "us") == 0)
        scale = 1e-6;
    else if (std::strcmp(p, "ns") == 0)
        scale = 1e-9;
    else
        return false;
    out.percentile = pct;
    out.targetSeconds = target * scale;
    return true;
}

std::string
SloSpec::toText() const
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "p%g<%gs", percentile, targetSeconds);
    return buf;
}

void
SloTracker::observe(const std::string& table, double latencySeconds,
                    bool complete)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Tally& t = tallies_[table];
    if (complete && latencySeconds <= spec_.targetSeconds)
        ++t.good;
    else
        ++t.bad;
}

SloResult
SloTracker::finish(const std::string& table, const Tally& t) const
{
    SloResult r;
    r.table = table;
    r.good = t.good;
    r.bad = t.bad;
    const uint64_t total = t.good + t.bad;
    r.badFraction =
        total ? static_cast<double>(t.bad) / static_cast<double>(total)
              : 0.0;
    const double allowed = spec_.allowedBadFraction();
    // A p100-style spec has no error budget; any bad event burns
    // infinitely. Guard the division and saturate instead.
    if (allowed > 0.0)
        r.burnRate = r.badFraction / allowed;
    else
        r.burnRate = r.badFraction > 0.0 ? 1e9 : 0.0;
    r.met = r.burnRate <= 1.0;
    return r;
}

std::vector<SloResult>
SloTracker::results() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<SloResult> out;
    out.reserve(tallies_.size());
    for (const auto& [table, t] : tallies_)
        out.push_back(finish(table, t));
    return out;
}

SloResult
SloTracker::total() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Tally sum;
    for (const auto& [table, t] : tallies_) {
        sum.good += t.good;
        sum.bad += t.bad;
    }
    return finish("*", sum);
}

} // namespace obs
} // namespace tpl
