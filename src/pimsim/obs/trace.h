/**
 * @file
 * obs layer piece 2: the tracer.
 *
 * Records timestamped spans and events — kernel launches, per-tasklet
 * execution slices, DMA/host transfers, table-generation phases —
 * into per-thread buffers and exports them as Chrome trace-event JSON
 * (the `{"traceEvents": [...]}` format), loadable in Perfetto and
 * chrome://tracing.
 *
 * Like the metrics registry, the tracer is always compiled and off by
 * default: every record site guards on `Tracer::global().enabled()`
 * (one relaxed atomic load) and never touches a modeled statistic.
 * Timestamps are host wall-clock microseconds since the tracer was
 * created (std::chrono::steady_clock) — the *modeled* quantities
 * (cycles, bytes, modeled seconds) ride along in each event's `args`,
 * so a Perfetto view shows simulation wall time with modeled numbers
 * attached to every slice.
 *
 * Threading model: each host thread appends to its own buffer (a
 * thread_local handle registered with the tracer under a mutex on
 * first use), so recording from thread-pool workers is contention
 * free. Begin/end pairs always come from the same thread (the
 * `TraceSpan` RAII wrapper enforces this), which is exactly the
 * nesting discipline the Chrome B/E phases require per tid.
 *
 * Event taxonomy (the `cat` field):
 *   "host"  — host-side phases: table generation, setup, readback
 *   "xfer"  — CPU<->PIM transfer modeling (broadcast/scatter/gather)
 *   "sim"   — multi-DPU simulation phases (launchAll)
 *   "dpu"   — one DPU's kernel launch
 *   "tasklet" — per-tasklet execution slices inside a launch
 *   "serve" — batched pipeline phases (waves, scatter/compute/gather
 *             legs) plus queue-depth counter tracks
 *
 * Environment bootstrap: `TPL_OBS_TRACE=<path>` enables the global
 * tracer at process start and writes the Chrome JSON to <path> at
 * exit.
 */

#ifndef TPL_PIMSIM_OBS_TRACE_H
#define TPL_PIMSIM_OBS_TRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tpl {
namespace obs {

/** One Chrome trace event (phases used: B, E, X, i, C, s, t, f). */
struct TraceEvent
{
    char phase = 'X';
    double tsUs = 0.0;  ///< microseconds since tracer epoch
    double durUs = 0.0; ///< X events only
    uint32_t tid = 0;   ///< dense host-thread index
    uint64_t flowId = 0; ///< flow events (s/t/f) only
    std::string name;
    std::string cat;
    std::string args;   ///< preformatted JSON object body, may be ""
};

/**
 * The tracer. Use `Tracer::global()`; independent instances exist
 * only for tests.
 */
class Tracer
{
  public:
    Tracer();
    Tracer(const Tracer&) = delete;
    Tracer& operator=(const Tracer&) = delete;

    /** The process-wide tracer every record site uses. */
    static Tracer& global();

    /** Cheap gate every record site checks first. */
    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    void setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    /** Microseconds since this tracer's epoch (steady clock). */
    double nowUs() const;

    /// @name Recording (no-ops while disabled).
    /// @{

    /** Open a span on the calling thread (Chrome phase B). */
    void begin(const std::string& name, const char* cat,
               std::string args = {});

    /** Close the innermost span on the calling thread (phase E). */
    void end();

    /** A complete slice with explicit start/duration (phase X). */
    void complete(const std::string& name, const char* cat,
                  double tsUs, double durUs, std::string args = {});

    /** An instantaneous event (phase i, thread scope). */
    void instant(const std::string& name, const char* cat,
                 std::string args = {});

    /**
     * A counter sample (phase C): Perfetto renders successive samples
     * of the same @p name as a step chart — used for queue depth and
     * in-flight wave tracks in the serve pipeline.
     */
    void counterValue(const std::string& name, const char* cat,
                      double value);

    /**
     * Perfetto flow events (phases s/t/f): arrows connecting slices
     * across lanes. All three take the same @p id — every event with
     * the same id joins one flow chain. The serve pipeline emits one
     * flow per request (id = the request's journal span ID), linking
     * its enqueue point through the waves that carried it, so a
     * Perfetto view can follow one request across wave/DPU lanes.
     */
    void flowBegin(const std::string& name, const char* cat,
                   uint64_t id);

    /** A mid-chain flow point (phase t). */
    void flowStep(const std::string& name, const char* cat,
                  uint64_t id);

    /** The flow's terminal point (phase f, binding point "e"). */
    void flowEnd(const std::string& name, const char* cat, uint64_t id);
    /// @}

    /**
     * Drop all recorded events (buffers stay registered). Only call
     * while no thread is actively recording.
     */
    void clear();

    /** Number of events recorded so far (across all threads). */
    size_t eventCount() const;

    /**
     * Export as Chrome trace-event JSON. Events are merged across
     * threads and sorted by timestamp; per-thread relative order is
     * preserved, so B/E pairs stay properly nested per tid.
     */
    std::string toChromeJson() const;

    /** Write toChromeJson() to @p path; false on I/O failure. */
    bool writeChromeJson(const std::string& path) const;

  private:
    struct ThreadBuffer
    {
        uint32_t tid = 0;
        std::vector<TraceEvent> events;
    };

    ThreadBuffer& localBuffer();

    std::chrono::steady_clock::time_point epoch_;
    std::atomic<bool> enabled_{false};
    mutable std::mutex mutex_; ///< guards buffers_ registration/export
    std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/**
 * RAII span: opens on construction, closes on destruction, on the
 * same thread. Near-zero cost while the tracer is disabled.
 */
class TraceSpan
{
  public:
    TraceSpan(const std::string& name, const char* cat,
              std::string args = {})
        : active_(Tracer::global().enabled())
    {
        if (active_)
            Tracer::global().begin(name, cat, std::move(args));
    }

    ~TraceSpan()
    {
        if (active_)
            Tracer::global().end();
    }

    TraceSpan(const TraceSpan&) = delete;
    TraceSpan& operator=(const TraceSpan&) = delete;

  private:
    bool active_;
};

/** Format helper: one numeric key/value for an event args object. */
std::string argKv(const char* key, uint64_t value);
std::string argKv(const char* key, double value);

/** String key/value (the value is JSON-escaped). */
std::string argKv(const char* key, const std::string& value);

/** Join non-empty key/value fragments into a JSON object body. */
std::string argsObject(std::initializer_list<std::string> kvs);

} // namespace obs
} // namespace tpl

#endif // TPL_PIMSIM_OBS_TRACE_H
