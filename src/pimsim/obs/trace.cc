/**
 * @file
 * Tracer implementation + TPL_OBS_TRACE env bootstrap.
 */

#include "pimsim/obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace tpl {
namespace obs {

namespace {

/** Escape a string for embedding in a JSON string literal. */
std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

std::string
formatDouble(double v)
{
    std::ostringstream s;
    s.precision(15);
    s << v;
    std::string out = s.str();
    if (out.find("inf") != std::string::npos ||
        out.find("nan") != std::string::npos)
        out = "0";
    return out;
}

} // namespace

std::string
argKv(const char* key, uint64_t value)
{
    std::ostringstream s;
    s << "\"" << key << "\": " << value;
    return s.str();
}

std::string
argKv(const char* key, double value)
{
    std::ostringstream s;
    s << "\"" << key << "\": " << formatDouble(value);
    return s.str();
}

std::string
argKv(const char* key, const std::string& value)
{
    std::ostringstream s;
    s << "\"" << key << "\": \"" << jsonEscape(value) << "\"";
    return s.str();
}

std::string
argsObject(std::initializer_list<std::string> kvs)
{
    std::string out;
    for (const auto& kv : kvs) {
        if (kv.empty())
            continue;
        if (!out.empty())
            out += ", ";
        out += kv;
    }
    return out;
}

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

Tracer&
Tracer::global()
{
    static Tracer* instance = new Tracer(); // never destroyed: pool
    // workers and the atexit exporter may outlive static dtors.
    return *instance;
}

double
Tracer::nowUs() const
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

Tracer::ThreadBuffer&
Tracer::localBuffer()
{
    // One buffer per (thread, tracer). A plain thread_local pointer
    // would alias across tracer instances (tests build their own), so
    // the cache is keyed by tracer identity.
    struct Cache
    {
        Tracer* owner = nullptr;
        ThreadBuffer* buf = nullptr;
    };
    thread_local Cache cache;
    if (cache.owner == this && cache.buf)
        return *cache.buf;
    std::lock_guard<std::mutex> lock(mutex_);
    buffers_.push_back(std::make_unique<ThreadBuffer>());
    buffers_.back()->tid = static_cast<uint32_t>(buffers_.size() - 1);
    cache.owner = this;
    cache.buf = buffers_.back().get();
    return *cache.buf;
}

void
Tracer::begin(const std::string& name, const char* cat,
              std::string args)
{
    if (!enabled())
        return;
    ThreadBuffer& buf = localBuffer();
    TraceEvent ev;
    ev.phase = 'B';
    ev.tsUs = nowUs();
    ev.tid = buf.tid;
    ev.name = name;
    ev.cat = cat;
    ev.args = std::move(args);
    buf.events.push_back(std::move(ev));
}

void
Tracer::end()
{
    if (!enabled())
        return;
    ThreadBuffer& buf = localBuffer();
    TraceEvent ev;
    ev.phase = 'E';
    ev.tsUs = nowUs();
    ev.tid = buf.tid;
    buf.events.push_back(std::move(ev));
}

void
Tracer::complete(const std::string& name, const char* cat, double tsUs,
                 double durUs, std::string args)
{
    if (!enabled())
        return;
    ThreadBuffer& buf = localBuffer();
    TraceEvent ev;
    ev.phase = 'X';
    ev.tsUs = tsUs;
    ev.durUs = durUs;
    ev.tid = buf.tid;
    ev.name = name;
    ev.cat = cat;
    ev.args = std::move(args);
    buf.events.push_back(std::move(ev));
}

void
Tracer::instant(const std::string& name, const char* cat,
                std::string args)
{
    if (!enabled())
        return;
    ThreadBuffer& buf = localBuffer();
    TraceEvent ev;
    ev.phase = 'i';
    ev.tsUs = nowUs();
    ev.tid = buf.tid;
    ev.name = name;
    ev.cat = cat;
    ev.args = std::move(args);
    buf.events.push_back(std::move(ev));
}

void
Tracer::counterValue(const std::string& name, const char* cat,
                     double value)
{
    if (!enabled())
        return;
    ThreadBuffer& buf = localBuffer();
    TraceEvent ev;
    ev.phase = 'C';
    ev.tsUs = nowUs();
    ev.tid = buf.tid;
    ev.name = name;
    ev.cat = cat;
    ev.args = argKv("value", value);
    buf.events.push_back(std::move(ev));
}

void
Tracer::flowBegin(const std::string& name, const char* cat, uint64_t id)
{
    if (!enabled())
        return;
    ThreadBuffer& buf = localBuffer();
    TraceEvent ev;
    ev.phase = 's';
    ev.tsUs = nowUs();
    ev.tid = buf.tid;
    ev.flowId = id;
    ev.name = name;
    ev.cat = cat;
    buf.events.push_back(std::move(ev));
}

void
Tracer::flowStep(const std::string& name, const char* cat, uint64_t id)
{
    if (!enabled())
        return;
    ThreadBuffer& buf = localBuffer();
    TraceEvent ev;
    ev.phase = 't';
    ev.tsUs = nowUs();
    ev.tid = buf.tid;
    ev.flowId = id;
    ev.name = name;
    ev.cat = cat;
    buf.events.push_back(std::move(ev));
}

void
Tracer::flowEnd(const std::string& name, const char* cat, uint64_t id)
{
    if (!enabled())
        return;
    ThreadBuffer& buf = localBuffer();
    TraceEvent ev;
    ev.phase = 'f';
    ev.tsUs = nowUs();
    ev.tid = buf.tid;
    ev.flowId = id;
    ev.name = name;
    ev.cat = cat;
    buf.events.push_back(std::move(ev));
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& buf : buffers_)
        buf->events.clear();
}

size_t
Tracer::eventCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    size_t n = 0;
    for (const auto& buf : buffers_)
        n += buf->events.size();
    return n;
}

std::string
Tracer::toChromeJson() const
{
    // Concatenate per-thread buffers in registration order, then
    // stable-sort by timestamp: equal timestamps keep each thread's
    // append order, so B/E pairs can never invert within a tid.
    std::vector<const TraceEvent*> events;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto& buf : buffers_)
            for (const auto& ev : buf->events)
                events.push_back(&ev);
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent* a, const TraceEvent* b) {
                         return a->tsUs < b->tsUs;
                     });

    std::ostringstream out;
    out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
    bool first = true;
    for (const TraceEvent* ev : events) {
        out << (first ? "" : ",") << "\n  {\"ph\": \"" << ev->phase
            << "\", \"pid\": 1, \"tid\": " << ev->tid
            << ", \"ts\": " << formatDouble(ev->tsUs);
        if (ev->phase == 'X')
            out << ", \"dur\": " << formatDouble(ev->durUs);
        if (ev->phase != 'E') {
            out << ", \"name\": \"" << jsonEscape(ev->name)
                << "\", \"cat\": \"" << jsonEscape(ev->cat) << "\"";
            if (ev->phase == 'i')
                out << ", \"s\": \"t\"";
            if (ev->phase == 's' || ev->phase == 't' ||
                ev->phase == 'f') {
                out << ", \"id\": " << ev->flowId;
                // Bind the flow terminus to the enclosing slice's end.
                if (ev->phase == 'f')
                    out << ", \"bp\": \"e\"";
            }
            if (!ev->args.empty())
                out << ", \"args\": {" << ev->args << "}";
        }
        out << "}";
        first = false;
    }
    out << "\n]}\n";
    return out.str();
}

bool
Tracer::writeChromeJson(const std::string& path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << toChromeJson();
    return static_cast<bool>(out);
}

namespace {

/**
 * TPL_OBS_TRACE=<path>: enable the global tracer for the whole
 * process and export the Chrome JSON to <path> at exit.
 */
struct TraceEnvBootstrap
{
    TraceEnvBootstrap()
    {
        const char* path = std::getenv("TPL_OBS_TRACE");
        if (!path || !*path)
            return;
        Tracer::global().setEnabled(true);
        static std::string outPath = path;
        std::atexit(
            [] { Tracer::global().writeChromeJson(outPath); });
    }
};

const TraceEnvBootstrap traceEnvBootstrap{};

} // namespace

} // namespace obs
} // namespace tpl
