/**
 * @file
 * Metrics registry implementation + TPL_OBS_METRICS env bootstrap.
 */

#include "pimsim/obs/metrics.h"

#include <bit>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace tpl {
namespace obs {

namespace {

/** Keep metric names JSON-safe: drop quotes/backslashes/controls. */
std::string
sanitizeName(const std::string& name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        if (c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20)
            out.push_back('_');
        else
            out.push_back(c);
    }
    return out;
}

} // namespace

void
Histogram::observe(uint64_t sample)
{
    int b = sample == 0 ? 0 : std::bit_width(sample);
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(sample, std::memory_order_relaxed);
    uint64_t cur = min_.load(std::memory_order_relaxed);
    while (sample < cur &&
           !min_.compare_exchange_weak(cur, sample,
                                       std::memory_order_relaxed))
    {}
    cur = max_.load(std::memory_order_relaxed);
    while (sample > cur &&
           !max_.compare_exchange_weak(cur, sample,
                                       std::memory_order_relaxed))
    {}
}

void
Histogram::reset()
{
    for (auto& b : buckets_)
        b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(UINT64_MAX, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
}

Registry&
Registry::global()
{
    static Registry* instance = new Registry(); // never destroyed: the
    // atexit JSON dump and worker threads may outlive static dtors.
    return *instance;
}

Counter&
Registry::counter(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = counters_[sanitizeName(name)];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

RealAccum&
Registry::real(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = reals_[sanitizeName(name)];
    if (!slot)
        slot = std::make_unique<RealAccum>();
    return *slot;
}

Histogram&
Registry::histogram(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = histograms_[sanitizeName(name)];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [name, c] : counters_)
        c->reset();
    for (auto& [name, r] : reals_)
        r->reset();
    for (auto& [name, h] : histograms_)
        h->reset();
}

std::string
Registry::toJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream out;
    out << "{\n  \"counters\": {";
    bool first = true;
    for (const auto& [name, c] : counters_) {
        out << (first ? "" : ",") << "\n    \"" << name
            << "\": " << c->value();
        first = false;
    }
    out << (first ? "" : "\n  ") << "},\n  \"reals\": {";
    first = true;
    for (const auto& [name, r] : reals_) {
        std::ostringstream v;
        v.precision(17);
        v << r->value();
        std::string vs = v.str();
        // JSON has no inf/nan literals; clamp to null.
        if (vs.find("inf") != std::string::npos ||
            vs.find("nan") != std::string::npos)
            vs = "null";
        out << (first ? "" : ",") << "\n    \"" << name << "\": " << vs;
        first = false;
    }
    out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
    first = true;
    for (const auto& [name, h] : histograms_) {
        out << (first ? "" : ",") << "\n    \"" << name << "\": {"
            << "\"count\": " << h->count() << ", \"sum\": " << h->sum();
        if (h->count() > 0)
            out << ", \"min\": " << h->minValue()
                << ", \"max\": " << h->maxValue();
        out << ", \"log2_buckets\": [";
        // Trailing zero buckets are elided to keep dumps compact.
        int top = Histogram::kBuckets;
        while (top > 0 && h->bucket(top - 1) == 0)
            --top;
        for (int i = 0; i < top; ++i)
            out << (i ? ", " : "") << h->bucket(i);
        out << "]}";
        first = false;
    }
    out << (first ? "" : "\n  ") << "}\n}\n";
    return out.str();
}

bool
Registry::writeJson(const std::string& path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << toJson();
    return static_cast<bool>(out);
}

namespace {

/**
 * TPL_OBS_METRICS=<path>: enable the global registry for the whole
 * process and dump its JSON to <path> at exit. Lives here (not in a
 * bench/tool main) so every binary linking the simulator gets the
 * knob for free.
 */
struct MetricsEnvBootstrap
{
    MetricsEnvBootstrap()
    {
        const char* path = std::getenv("TPL_OBS_METRICS");
        if (!path || !*path)
            return;
        Registry::global().setEnabled(true);
        static std::string outPath = path;
        std::atexit(
            [] { Registry::global().writeJson(outPath); });
    }
};

const MetricsEnvBootstrap metricsEnvBootstrap{};

} // namespace

} // namespace obs
} // namespace tpl
