/**
 * @file
 * Metrics registry implementation + TPL_OBS_METRICS env bootstrap.
 */

#include "pimsim/obs/metrics.h"

#include <bit>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace tpl {
namespace obs {

namespace {

/** Keep metric names JSON-safe: drop quotes/backslashes/controls. */
std::string
sanitizeName(const std::string& name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        if (c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20)
            out.push_back('_');
        else
            out.push_back(c);
    }
    return out;
}

} // namespace

Histogram::Histogram(uint32_t subBucketBits)
    : subBits_(subBucketBits),
      // One octave of 2^B width-1 buckets below 2^B, then one group
      // of 2^B sub-buckets per sample bit-width B+1..64: the last
      // flat index is bucketIndex(UINT64_MAX) = (64-B+1) * 2^B - 1.
      buckets_((64u - subBucketBits + 1u) << subBucketBits)
{}

uint32_t
Histogram::bucketIndex(uint64_t sample, uint32_t subBucketBits)
{
    const uint64_t subCount = uint64_t{1} << subBucketBits;
    if (sample < subCount)
        return static_cast<uint32_t>(sample);
    const uint32_t width = static_cast<uint32_t>(std::bit_width(sample));
    const uint32_t granularity = width - 1 - subBucketBits;
    const uint64_t sub = (sample - (uint64_t{1} << (width - 1))) >> granularity;
    return static_cast<uint32_t>(
        (uint64_t{granularity + 1} << subBucketBits) + sub);
}

uint64_t
Histogram::bucketLow(uint32_t i) const
{
    const uint64_t subCount = uint64_t{1} << subBits_;
    if (i < subCount)
        return i;
    const uint32_t granularity = i / static_cast<uint32_t>(subCount) - 1;
    const uint64_t sub = i & (subCount - 1);
    return (uint64_t{1} << (granularity + subBits_)) +
           (sub << granularity);
}

uint64_t
Histogram::bucketHigh(uint32_t i) const
{
    const uint64_t subCount = uint64_t{1} << subBits_;
    if (i < subCount)
        return i;
    const uint32_t granularity = i / static_cast<uint32_t>(subCount) - 1;
    return bucketLow(i) + ((uint64_t{1} << granularity) - 1);
}

void
Histogram::observe(uint64_t sample)
{
    buckets_[bucketIndex(sample, subBits_)].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(sample, std::memory_order_relaxed);
    uint64_t cur = min_.load(std::memory_order_relaxed);
    while (sample < cur &&
           !min_.compare_exchange_weak(cur, sample,
                                       std::memory_order_relaxed))
    {}
    cur = max_.load(std::memory_order_relaxed);
    while (sample > cur &&
           !max_.compare_exchange_weak(cur, sample,
                                       std::memory_order_relaxed))
    {}
}

uint64_t
Histogram::quantile(double q) const
{
    const uint64_t n = count();
    if (n == 0)
        return 0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    uint64_t rank = static_cast<uint64_t>(
        std::ceil(q * static_cast<double>(n)));
    if (rank < 1)
        rank = 1;
    if (rank > n)
        rank = n;
    uint64_t cum = 0;
    for (uint32_t i = 0; i < numBuckets(); ++i) {
        cum += bucket(i);
        if (cum >= rank) {
            const uint64_t hi = bucketHigh(i);
            const uint64_t mx = maxValue();
            return hi < mx ? hi : mx;
        }
    }
    // Unreachable when count matches the bucket totals; fall back to
    // the recorded max so a torn concurrent snapshot stays sane.
    return maxValue();
}

bool
Histogram::mergeFrom(const Histogram& other)
{
    if (other.subBits_ != subBits_)
        return false;
    for (uint32_t i = 0; i < numBuckets(); ++i) {
        const uint64_t v = other.bucket(i);
        if (v)
            buckets_[i].fetch_add(v, std::memory_order_relaxed);
    }
    count_.fetch_add(other.count(), std::memory_order_relaxed);
    sum_.fetch_add(other.sum(), std::memory_order_relaxed);
    const uint64_t omin = other.minValue();
    uint64_t cur = min_.load(std::memory_order_relaxed);
    while (omin < cur &&
           !min_.compare_exchange_weak(cur, omin,
                                       std::memory_order_relaxed))
    {}
    const uint64_t omax = other.maxValue();
    cur = max_.load(std::memory_order_relaxed);
    while (omax > cur &&
           !max_.compare_exchange_weak(cur, omax,
                                       std::memory_order_relaxed))
    {}
    return true;
}

void
Histogram::reset()
{
    for (auto& b : buckets_)
        b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(UINT64_MAX, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
}

Registry&
Registry::global()
{
    static Registry* instance = new Registry(); // never destroyed: the
    // atexit JSON dump and worker threads may outlive static dtors.
    return *instance;
}

Counter&
Registry::counter(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = counters_[sanitizeName(name)];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

RealAccum&
Registry::real(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = reals_[sanitizeName(name)];
    if (!slot)
        slot = std::make_unique<RealAccum>();
    return *slot;
}

Histogram&
Registry::histogram(const std::string& name, uint32_t subBucketBits)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = histograms_[sanitizeName(name)];
    if (!slot)
        slot = std::make_unique<Histogram>(subBucketBits);
    return *slot;
}

std::vector<std::string>
Registry::histogramNames() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> names;
    names.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_)
        names.push_back(name);
    return names;
}

const Histogram*
Registry::findHistogram(const std::string& name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = histograms_.find(sanitizeName(name));
    return it == histograms_.end() ? nullptr : it->second.get();
}

size_t
Registry::mergeFrom(const Registry& other)
{
    if (&other == this)
        return 0;
    std::scoped_lock lock(mutex_, other.mutex_);
    for (const auto& [name, c] : other.counters_) {
        auto& slot = counters_[name];
        if (!slot)
            slot = std::make_unique<Counter>();
        slot->mergeFrom(*c);
    }
    for (const auto& [name, r] : other.reals_) {
        auto& slot = reals_[name];
        if (!slot)
            slot = std::make_unique<RealAccum>();
        slot->mergeFrom(*r);
    }
    size_t skipped = 0;
    for (const auto& [name, h] : other.histograms_) {
        auto& slot = histograms_[name];
        if (!slot)
            slot = std::make_unique<Histogram>(h->subBucketBits());
        if (!slot->mergeFrom(*h))
            ++skipped;
    }
    return skipped;
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [name, c] : counters_)
        c->reset();
    for (auto& [name, r] : reals_)
        r->reset();
    for (auto& [name, h] : histograms_)
        h->reset();
}

std::string
Registry::toJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream out;
    out << "{\n  \"counters\": {";
    bool first = true;
    for (const auto& [name, c] : counters_) {
        out << (first ? "" : ",") << "\n    \"" << name
            << "\": " << c->value();
        first = false;
    }
    out << (first ? "" : "\n  ") << "},\n  \"reals\": {";
    first = true;
    for (const auto& [name, r] : reals_) {
        std::ostringstream v;
        v.precision(17);
        v << r->value();
        std::string vs = v.str();
        // JSON has no inf/nan literals; clamp to null.
        if (vs.find("inf") != std::string::npos ||
            vs.find("nan") != std::string::npos)
            vs = "null";
        out << (first ? "" : ",") << "\n    \"" << name << "\": " << vs;
        first = false;
    }
    out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
    first = true;
    for (const auto& [name, h] : histograms_) {
        out << (first ? "" : ",") << "\n    \"" << name << "\": {"
            << "\"count\": " << h->count() << ", \"sum\": " << h->sum();
        if (h->count() > 0)
            out << ", \"min\": " << h->minValue()
                << ", \"max\": " << h->maxValue()
                << ", \"p50\": " << h->quantile(0.50)
                << ", \"p90\": " << h->quantile(0.90)
                << ", \"p99\": " << h->quantile(0.99)
                << ", \"p999\": " << h->quantile(0.999);
        out << ", \"sub_bucket_bits\": " << h->subBucketBits();
        out << ", \"buckets\": [";
        // Trailing zero buckets are elided to keep dumps compact.
        uint32_t top = h->numBuckets();
        while (top > 0 && h->bucket(top - 1) == 0)
            --top;
        for (uint32_t i = 0; i < top; ++i)
            out << (i ? ", " : "") << h->bucket(i);
        out << "]}";
        first = false;
    }
    out << (first ? "" : "\n  ") << "}\n}\n";
    return out.str();
}

bool
Registry::writeJson(const std::string& path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << toJson();
    return static_cast<bool>(out);
}

namespace {

/**
 * TPL_OBS_METRICS=<path>: enable the global registry for the whole
 * process and dump its JSON to <path> at exit. Lives here (not in a
 * bench/tool main) so every binary linking the simulator gets the
 * knob for free.
 */
struct MetricsEnvBootstrap
{
    MetricsEnvBootstrap()
    {
        const char* path = std::getenv("TPL_OBS_METRICS");
        if (!path || !*path)
            return;
        Registry::global().setEnabled(true);
        static std::string outPath = path;
        std::atexit(
            [] { Registry::global().writeJson(outPath); });
    }
};

const MetricsEnvBootstrap metricsEnvBootstrap{};

} // namespace

} // namespace obs
} // namespace tpl
