/**
 * @file
 * obs layer piece 3: the request journal — per-request causal spans
 * over *modeled* time, exact latency percentiles, and SLO accounting
 * for the serve pipeline.
 *
 * The metrics registry answers "how much, in aggregate"; the tracer
 * answers "what ran when, per lane". The journal answers the serving
 * question neither can: *what happened to request 17*. Every request
 * pushed into a BatchQueue carries a stable span ID (its monotonic
 * request id); the ServePipeline stamps events at each causal stage —
 * enqueue → coalesce-into-wave → scatter → compute → gather-complete —
 * with timestamps read off the PipelineTimeline, never a wall clock.
 * Because modeled time and request ids are pure functions of the
 * workload, the journal is **bit-identical at any `TPL_SIM_THREADS`**
 * (locked by test and by the tier-1 OBS leg's byte-compare).
 *
 * From the stamped spans each request's modeled latency decomposes
 * exactly:
 *
 *     latency = completed - arrival
 *             = queueWait + transfer + compute + stall
 *
 * where queueWait is arrival → first scatter start, transfer/compute
 * sum the request's waves' leg durations, and stall is the residual
 * (negative when a multi-wave request's waves overlap in the
 * double-buffered schedule — overlap means legs sum to *more* than
 * the span). The identity holds to the last ulp by construction and
 * is locked by test.
 *
 * Latency percentiles here are **exact** (nearest-rank over the full
 * recorded set), unlike the registry's HDR histograms whose quantiles
 * carry a bounded relative error — the journal keeps every record, so
 * it can afford exactness; the registry streams, so it cannot.
 *
 * Off by default and statistics-neutral like the rest of the obs
 * layer: a pipeline run with a journal attached produces bit-identical
 * modeled cycles/instructions/DMA/energy to one without.
 */

#ifndef TPL_PIMSIM_OBS_JOURNAL_H
#define TPL_PIMSIM_OBS_JOURNAL_H

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace tpl {
namespace obs {

/**
 * One causal event on a request's span, stamped in modeled seconds.
 * `wave` is kNoWave for events not tied to a wave (enqueue, drop).
 */
struct JournalEvent
{
    static constexpr uint64_t kNoWave = UINT64_MAX;

    std::string kind;      ///< enqueue|coalesce|scatter|compute|gather|done|drop|anomaly|tune
    double t = 0.0;        ///< modeled seconds (event start)
    double dur = 0.0;      ///< modeled seconds (0 for instant events)
    uint64_t request = 0;  ///< stable span ID (BatchQueue request id)
    uint64_t wave = kNoWave; ///< serving wave index, if any
    uint64_t elements = 0; ///< elements this event covers
    uint64_t cycles = 0;   ///< modeled DPU cycles (compute events)
    int32_t rank = -1;     ///< executing rank (fleet path); -1 = flat
    /** Owning tenant (enqueue / tune events); serialized only when
     * nonzero, so tenant-oblivious runs keep their exact bytes. */
    uint64_t tenant = 0;
    std::string table;     ///< TableKey label
    std::string note;      ///< free-form detail (anomaly reason, drop cause)
};

/** Fully-accounted modeled latency of one request. */
struct RequestLatency
{
    uint64_t request = 0;
    std::string table;
    uint64_t elements = 0;
    uint64_t waves = 0;        ///< waves this request's elements rode in
    bool complete = false;     ///< all elements gathered healthy
    double arrivalSeconds = 0.0;
    double firstScatterSeconds = 0.0;
    double completedSeconds = 0.0;
    double queueWaitSeconds = 0.0; ///< arrival -> first scatter start
    double transferSeconds = 0.0;  ///< sum of wave broadcast+scatter+gather legs
    double computeSeconds = 0.0;   ///< sum of wave compute legs
    double stallSeconds = 0.0;     ///< residual; negative under wave overlap

    /** End-to-end modeled latency (0 for incomplete requests). */
    double latencySeconds() const
    {
        return complete ? completedSeconds - arrivalSeconds : 0.0;
    }
};

/** Exact nearest-rank percentile summary over completed requests. */
struct LatencySummary
{
    uint64_t requests = 0;   ///< completed requests summarized
    uint64_t incomplete = 0; ///< recorded but never fully gathered
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    double p999 = 0.0;
    double mean = 0.0;
    double max = 0.0;
    double requestsPerSecond = 0.0; ///< completed / makespan
};

/**
 * The journal proper: an append log of events plus per-request
 * latency records. Mutex-guarded so producers on any thread may
 * record; determinism comes from the *content* (modeled time + stable
 * ids + canonical sort in toJsonl), not from append order.
 */
class Journal
{
  public:
    void record(const JournalEvent& ev);
    void recordLatency(const RequestLatency& lat);

    /**
     * When disabled, record() drops events; recordLatency is
     * unaffected. pimserve turns event capture off on large replays
     * that requested no --journal output, so a million-request trace
     * costs per-request latency records only, not per-wave spans.
     */
    void setEventsEnabled(bool enabled);
    bool eventsEnabled() const;

    std::vector<JournalEvent> events() const;
    std::vector<RequestLatency> latencies() const;

    /**
     * Exact nearest-rank percentiles over every *complete* recorded
     * latency; requestsPerSecond = completed / @p makespanSeconds
     * (0 when the makespan is 0).
     */
    LatencySummary summarize(double makespanSeconds) const;

    /**
     * Canonical JSONL: one event object per line sorted by (t, kind,
     * request, wave), then one {"kind":"latency",...} line per request
     * sorted by request id. Doubles are printed with %.17g so the
     * text round-trips the exact binary value — byte-identical output
     * at any thread count.
     */
    std::string toJsonl() const;

    /** Write toJsonl() to @p path; false on I/O failure. */
    bool writeJsonl(const std::string& path) const;

    void clear();

  private:
    mutable std::mutex mutex_;
    bool eventsEnabled_ = true;
    std::vector<JournalEvent> events_;
    std::vector<RequestLatency> latencies_;
};

/**
 * A service-level objective: "percentile P of request latency must be
 * under T". Text grammar (see docs/observability.md):
 *
 *     p<percentile> '<'|':' <target><unit>     unit in {s, ms, us, ns}
 *
 * e.g. `p99<2ms`, `p50:150us`.
 */
struct SloSpec
{
    double percentile = 99.0;    ///< in (0, 100)
    double targetSeconds = 0.0;  ///< latency budget

    /** Parse the grammar above; false (spec untouched) on malformed input. */
    static bool parse(const std::string& text, SloSpec& out);

    /** Canonical text form (always `pP<Ts` with seconds unit scaled). */
    std::string toText() const;

    /** Fraction of requests allowed over budget: (100 - percentile)/100.
     * Written this way (not 1 - p/100) so round percentiles give exact
     * budgets — p90 yields 0.1, not 0.09999999999999998 — and a run
     * sitting exactly at the budget counts as met. */
    double allowedBadFraction() const
    {
        return (100.0 - percentile) / 100.0;
    }
};

/** Per-table SLO tally. */
struct SloResult
{
    std::string table;
    uint64_t good = 0; ///< complete and within budget
    uint64_t bad = 0;  ///< over budget, incomplete, or dropped
    double badFraction = 0.0;
    /** badFraction / allowedBadFraction: >1 means the SLO is burning
     * error budget faster than it accrues. */
    double burnRate = 0.0;
    bool met = false;  ///< burnRate <= 1
};

/**
 * Streams request outcomes against one SloSpec, tallied per TableKey
 * label. Incomplete requests always count bad — an answer that never
 * arrived cannot have met a latency target.
 */
class SloTracker
{
  public:
    explicit SloTracker(const SloSpec& spec) : spec_(spec) {}

    void observe(const std::string& table, double latencySeconds,
                 bool complete);

    /** Per-table results, sorted by table label. */
    std::vector<SloResult> results() const;

    /** All tables folded into one tally (table = "*"). */
    SloResult total() const;

    const SloSpec& spec() const { return spec_; }

  private:
    struct Tally
    {
        uint64_t good = 0;
        uint64_t bad = 0;
    };

    SloResult finish(const std::string& table, const Tally& t) const;

    SloSpec spec_;
    mutable std::mutex mutex_;
    std::map<std::string, Tally> tallies_;
};

} // namespace obs
} // namespace tpl

#endif // TPL_PIMSIM_OBS_JOURNAL_H
