/**
 * @file
 * Host-side parallel execution engine for the simulator.
 *
 * A deliberately simple, work-stealing-free thread pool: parallelFor
 * posts one job (an index range plus a callable) and every participant
 * — the calling thread included — claims indices from a shared atomic
 * counter until the range is exhausted. There are no per-worker deques
 * and no stealing; for the simulator's workloads (tens of DPUs, tens of
 * sweep points, each index worth many microseconds) a single shared
 * counter is contention-free in practice and much easier to reason
 * about.
 *
 * Determinism contract: the pool schedules *which thread* runs an
 * index, never *what* the index computes. Everything the simulator
 * models (cycles, instructions, DMA bytes, energy) is a pure function
 * of per-index state (one DPU, one sweep point), so results are
 * bit-identical for any thread count. The `TPL_SIM_THREADS` environment
 * variable (or ThreadPool::setDefaultThreads) forces a specific
 * parallelism — `TPL_SIM_THREADS=1` is the serial escape hatch for
 * debugging.
 *
 * Nested parallelFor calls from inside a worker run inline (serially on
 * the calling worker): the pool never deadlocks and inner loops simply
 * do not over-subscribe the machine.
 */

#ifndef TPL_PIMSIM_THREAD_POOL_H
#define TPL_PIMSIM_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace tpl {
namespace sim {

/** Fixed-size pool; the caller of parallelFor always participates. */
class ThreadPool
{
  public:
    /**
     * @param threads total parallelism (callers + workers). 0 means
     * "use the default" (TPL_SIM_THREADS, else hardware concurrency).
     * The pool spawns threads-1 workers; the caller is the last lane.
     */
    explicit ThreadPool(uint32_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Total parallelism of the pool (>= 1). */
    uint32_t threadCount() const
    {
        return static_cast<uint32_t>(workers_.size()) + 1;
    }

    /**
     * Run fn(i) for every i in [0, count). Blocks until all indices
     * finished. The first exception thrown by fn is rethrown on the
     * calling thread (remaining unclaimed indices are skipped).
     * Reentrant calls from inside a worker run inline.
     */
    void parallelFor(uint64_t count,
                     const std::function<void(uint64_t)>& fn);

    /**
     * Process-wide shared pool, built on first use with
     * defaultThreads() lanes. Never destroyed (workers are detached at
     * exit by the OS), so it is safe to use from static destructors.
     */
    static ThreadPool& global();

    /**
     * Parallelism the global pool is built with: TPL_SIM_THREADS if
     * set (clamped to >= 1), else std::thread::hardware_concurrency().
     */
    static uint32_t defaultThreads();

  private:
    struct Job
    {
        uint64_t count = 0;
        const std::function<void(uint64_t)>* fn = nullptr;
        std::atomic<uint64_t> next{0};
        std::atomic<uint32_t> active{0};
        std::exception_ptr error; ///< guarded by the pool mutex

        bool hasWork() const { return next.load() < count; }
    };

    void workerLoop();
    void runIndices(Job& job);

    mutable std::mutex mutex_;
    std::condition_variable wakeCv_; ///< workers: new job available
    std::condition_variable doneCv_; ///< caller: job drained
    std::shared_ptr<Job> job_;       ///< current job, if any
    std::vector<std::thread> workers_;
    bool stop_ = false;
};

/**
 * Run fn(i) for i in [0, count) on the global pool (or inline when the
 * pool is serial / count <= 1). The simulator's only parallel primitive.
 */
void parallelFor(uint64_t count, const std::function<void(uint64_t)>& fn);

} // namespace sim
} // namespace tpl

#endif // TPL_PIMSIM_THREAD_POOL_H
