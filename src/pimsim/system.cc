/**
 * @file
 * Multi-DPU system implementation.
 *
 * All multi-DPU loops (kernel launches, bulk MRAM copies) run on the
 * process-wide ThreadPool. Each DpuCore owns its entire state, so the
 * loops are embarrassingly parallel and the modeled numbers they
 * produce are independent of the thread count (see the determinism
 * test in tests/concurrency_test.cc).
 */

#include "pimsim/system.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <string>

#include "pimsim/obs/metrics.h"
#include "pimsim/obs/trace.h"
#include "pimsim/thread_pool.h"

namespace tpl {
namespace sim {

namespace fault {

/**
 * The armed plan plus every per-DPU fault state and the health mask.
 * Created by PimSystem::armFaults; the DpuFaultState pointers handed
 * to the cores point into this object. Mask slots are written only by
 * the thread simulating that DPU (or sequentially by the host side),
 * and reads happen after the pool joins, so plain bytes suffice; the
 * retry/failure tallies cross threads and are atomic.
 */
class SystemFaultState
{
  public:
    SystemFaultState(const FaultPlan& plan,
                     std::vector<std::unique_ptr<DpuCore>>& dpus)
        : plan_(plan), masked_(dpus.size(), 0)
    {
        states_.reserve(dpus.size());
        for (uint32_t i = 0; i < dpus.size(); ++i)
            states_.push_back(std::make_unique<DpuFaultState>(
                plan_, i, dpus[i].get()));
    }

    const FaultPlan& plan() const { return plan_; }
    DpuFaultState& dpu(uint32_t i) { return *states_[i]; }
    bool masked(uint32_t i) const { return masked_[i] != 0; }
    void mask(uint32_t i) { masked_[i] = 1; }

    std::atomic<uint32_t> transferRetries{0};
    std::atomic<uint32_t> transferFailures{0};

  private:
    FaultPlan plan_;
    std::vector<std::unique_ptr<DpuFaultState>> states_;
    std::vector<uint8_t> masked_;
};

} // namespace fault

namespace {

/**
 * Per-DPU copies below this size are cheaper than a pool dispatch;
 * run them serially. Launches always go parallel — a kernel launch is
 * orders of magnitude more work than a pool handoff.
 */
constexpr uint64_t kParallelCopyThresholdBytes = 4096;

} // namespace

PimSystem::PimSystem(uint32_t numDpus, const CostModel& model)
    : model_(model)
{
    dpus_.reserve(numDpus);
    for (uint32_t i = 0; i < numDpus; ++i)
        dpus_.push_back(std::make_unique<DpuCore>(model));
}

PimSystem::~PimSystem() = default;

void
PimSystem::armFaults(const fault::FaultPlan& plan)
{
    faults_ = std::make_unique<fault::SystemFaultState>(plan, dpus_);
    for (uint32_t i = 0; i < numDpus(); ++i)
        dpus_[i]->setFaultState(&faults_->dpu(i));
}

void
PimSystem::disarmFaults()
{
    for (auto& d : dpus_)
        d->setFaultState(nullptr);
    faults_.reset();
}

const fault::FaultPlan*
PimSystem::faultPlan() const
{
    return faults_ ? &faults_->plan() : nullptr;
}

bool
PimSystem::isMasked(uint32_t dpu) const
{
    return faults_ && faults_->masked(dpu);
}

uint32_t
PimSystem::healthyDpus() const
{
    uint32_t n = 0;
    for (uint32_t i = 0; i < numDpus(); ++i)
        n += isMasked(i) ? 0 : 1;
    return n;
}

void
PimSystem::maskDpu(uint32_t dpu)
{
    if (faults_)
        faults_->mask(dpu);
}

void
PimSystem::forEachDpu(const std::function<void(uint32_t)>& fn,
                      uint64_t bytesPerDpu) const
{
    uint32_t n = numDpus();
    bool serial = simThreads_ == 1 || n <= 1 ||
                  bytesPerDpu < kParallelCopyThresholdBytes;
    if (serial) {
        for (uint32_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    ThreadPool& pool = pool_ ? *pool_ : ThreadPool::global();
    pool.parallelFor(n,
                     [&](uint64_t i) { fn(static_cast<uint32_t>(i)); });
}

double
PimSystem::parallelTransferSeconds(uint64_t totalBytes) const
{
    // Parallel transfers stream at the per-rank bandwidth, overlapped
    // across ranks, capped by host memory bandwidth.
    uint32_t ranks = model_.dpusPerRank
                         ? std::max(1u, numDpus() / model_.dpusPerRank)
                         : 1u;
    double bw = std::min(model_.hostParallelBandwidth * ranks,
                         model_.hostAggregateBandwidthCap);
    if (bw <= 0.0)
        return 0.0;
    return static_cast<double>(totalBytes) / bw;
}

double
PimSystem::serialTransferSeconds(uint64_t totalBytes) const
{
    if (model_.hostSerialBandwidth <= 0.0)
        return 0.0;
    return static_cast<double>(totalBytes) / model_.hostSerialBandwidth;
}

double
PimSystem::rankParallelTransferSeconds(uint64_t totalBytes) const
{
    // A single rank engages one rank's worth of parallel bandwidth,
    // regardless of how many ranks the whole system has.
    double bw = std::min(model_.hostParallelBandwidth,
                         model_.hostAggregateBandwidthCap);
    if (bw <= 0.0)
        return 0.0;
    return static_cast<double>(totalBytes) / bw;
}

double
PimSystem::accountTransfer(TransferStats::Cell (&cells)[2],
                           const char* direction, TransferMode mode,
                           uint64_t streamBytes, double extraSeconds)
{
    double seconds = (mode == TransferMode::Parallel
                          ? parallelTransferSeconds(streamBytes)
                          : serialTransferSeconds(streamBytes)) +
                     extraSeconds;
    return accountTransferSeconds(cells, direction, mode, streamBytes,
                                  seconds);
}

double
PimSystem::accountTransferSeconds(TransferStats::Cell (&cells)[2],
                                  const char* direction,
                                  TransferMode mode,
                                  uint64_t streamBytes, double seconds)
{
    TransferStats::Cell& cell = cells[static_cast<int>(mode)];
    ++cell.transfers;
    cell.bytes += streamBytes;
    cell.seconds += seconds;

    obs::Registry& reg = obs::Registry::global();
    if (reg.enabled()) {
        std::string base = std::string("pimsim/host/") + direction +
                           "/" + toString(mode);
        reg.counter(base + "/transfers").add(1);
        reg.counter(base + "/bytes").add(streamBytes);
        reg.real(base + "/modeled_seconds").add(seconds);
    }
    return seconds;
}

double
PimSystem::transferLeg(uint32_t dpu, uint64_t bytes,
                       const std::function<void()>& copy,
                       uint8_t* corruptTarget, uint64_t corruptSize)
{
    if (!faults_) {
        copy();
        return 0.0;
    }
    if (faults_->masked(dpu))
        return 0.0; // skipped: the core is already dead

    fault::DpuFaultState& state = faults_->dpu(dpu);
    obs::Registry& reg = obs::Registry::global();
    double extra = 0.0;
    uint32_t attempts = policy_.maxTransferRetries + 1;
    for (uint32_t attempt = 0; attempt < attempts; ++attempt) {
        if (attempt > 0) {
            // Capped exponential backoff before each retry.
            double backoff =
                std::min(policy_.backoffBaseSeconds *
                             static_cast<double>(1ull << (attempt - 1)),
                         policy_.backoffCapSeconds);
            extra += backoff;
            faults_->transferRetries.fetch_add(
                1, std::memory_order_relaxed);
            if (reg.enabled()) {
                reg.counter("fault/transfer/retries").add(1);
                reg.real("fault/transfer/backoff_seconds").add(backoff);
            }
        }
        fault::TransferOutcome outcome = state.onTransferAttempt();
        if (outcome == fault::TransferOutcome::Ok) {
            copy();
            return extra;
        }
        if (outcome == fault::TransferOutcome::Corrupt) {
            // The bytes made it across the link, but damaged.
            copy();
            if (!policy_.detectTransferCorruption) {
                // No CRC on this runtime: the flip lands silently.
                if (corruptTarget && corruptSize)
                    state.corruptRegion(corruptTarget, corruptSize);
                return extra;
            }
            // Detected: the streamed bytes were wasted; retry.
            extra += serialTransferSeconds(bytes);
        }
        // Timeout: nothing arrived; the attempt cost the leg's stream
        // time before the host gave up.
        if (outcome == fault::TransferOutcome::Timeout)
            extra += serialTransferSeconds(bytes);
    }
    // Out of retries: this core's link is considered dead.
    maskDpu(dpu);
    faults_->transferFailures.fetch_add(1, std::memory_order_relaxed);
    if (reg.enabled())
        reg.counter("fault/transfer/failures").add(1);
    return extra;
}

double
PimSystem::broadcastToMram(uint32_t mramAddr, const void* src,
                           uint32_t size, TransferMode mode)
{
    obs::TraceSpan span(
        std::string("broadcast ") + toString(mode), "xfer",
        obs::argKv("bytes", static_cast<uint64_t>(size)));
    // Fault-retry overhead lands in a pre-sized slot per DPU and is
    // summed sequentially, so the modeled seconds are independent of
    // the thread count (all slots are 0.0 with no plan armed).
    std::vector<double> extra(numDpus(), 0.0);
    forEachDpu(
        [&](uint32_t i) {
            extra[i] = transferLeg(
                i, size,
                [&, i] { dpus_[i]->hostWriteMram(mramAddr, src, size); },
                dpus_[i]->mramData() + mramAddr, size);
        },
        size);
    double extraSeconds = 0.0;
    for (double e : extra)
        extraSeconds += e;
    // Parallel broadcast writes the same buffer to each rank
    // overlapped, costing one parallel pass of the table bytes;
    // serialized it streams the buffer once per DPU.
    uint64_t streamBytes =
        mode == TransferMode::Parallel
            ? size
            : static_cast<uint64_t>(size) * numDpus();
    return accountTransfer(transferStats_.broadcast, "broadcast", mode,
                           streamBytes, extraSeconds);
}

double
PimSystem::scatterToMram(uint32_t mramAddr, const void* data,
                         uint32_t bytesPerDpu, TransferMode mode)
{
    uint64_t total = static_cast<uint64_t>(bytesPerDpu) * numDpus();
    obs::TraceSpan span(std::string("scatter ") + toString(mode),
                        "xfer", obs::argKv("bytes", total));
    const uint8_t* bytes = static_cast<const uint8_t*>(data);
    std::vector<double> extra(numDpus(), 0.0);
    forEachDpu(
        [&](uint32_t i) {
            extra[i] = transferLeg(
                i, bytesPerDpu,
                [&, i] {
                    dpus_[i]->hostWriteMram(
                        mramAddr,
                        bytes + static_cast<uint64_t>(i) * bytesPerDpu,
                        bytesPerDpu);
                },
                dpus_[i]->mramData() + mramAddr, bytesPerDpu);
        },
        bytesPerDpu);
    double extraSeconds = 0.0;
    for (double e : extra)
        extraSeconds += e;
    return accountTransfer(transferStats_.scatter, "scatter", mode,
                           total, extraSeconds);
}

double
PimSystem::gatherFromMram(uint32_t mramAddr, void* data,
                          uint32_t bytesPerDpu, TransferMode mode)
{
    uint64_t total = static_cast<uint64_t>(bytesPerDpu) * numDpus();
    obs::TraceSpan span(std::string("gather ") + toString(mode),
                        "xfer", obs::argKv("bytes", total));
    uint8_t* bytes = static_cast<uint8_t*>(data);
    std::vector<double> extra(numDpus(), 0.0);
    forEachDpu(
        [&](uint32_t i) {
            uint8_t* dst = bytes + static_cast<uint64_t>(i) * bytesPerDpu;
            extra[i] = transferLeg(
                i, bytesPerDpu,
                [&, i, dst] {
                    dpus_[i]->hostReadMram(mramAddr, dst, bytesPerDpu);
                },
                dst, bytesPerDpu);
        },
        bytesPerDpu);
    double extraSeconds = 0.0;
    for (double e : extra)
        extraSeconds += e;
    return accountTransfer(transferStats_.gather, "gather", mode,
                           total, extraSeconds);
}

double
PimSystem::launchAll(uint32_t numTasklets, const Kernel& kernel)
{
    uint32_t n = numDpus();
    obs::TraceSpan span(
        "launchAll", "sim",
        obs::argsObject(
            {obs::argKv("dpus", static_cast<uint64_t>(n)),
             obs::argKv("tasklets",
                        static_cast<uint64_t>(numTasklets))}));
    obs::Tracer& tracer = obs::Tracer::global();
    const bool tracing = tracer.enabled();
    // Cores masked by an earlier failure are skipped this launch;
    // snapshot the mask up front so a core failing *during* this
    // launch still counts as attempted.
    std::vector<uint8_t> skip(n, 0);
    if (faults_)
        for (uint32_t i = 0; i < n; ++i)
            skip[i] = faults_->masked(i) ? 1 : 0;
    // Per-DPU cycles land in a pre-sized slot each, then reduce
    // sequentially: no cross-thread accumulation, so the result is
    // identical to the serial loop bit for bit.
    std::vector<uint64_t> cycles(n, 0);
    auto runOne = [&](uint32_t i) {
        if (skip[i])
            return;
        if (tracing) {
            // The per-DPU slice lands on whichever pool thread ran
            // it, exercising the tracer's per-thread buffers.
            double t0 = tracer.nowUs();
            cycles[i] = dpus_[i]->launch(numTasklets, kernel).cycles;
            tracer.complete(
                "dpu " + std::to_string(i), "dpu", t0,
                tracer.nowUs() - t0,
                obs::argKv("cycles", cycles[i]));
        } else {
            cycles[i] = dpus_[i]->launch(numTasklets, kernel).cycles;
        }
    };
    if (simThreads_ == 1 || n <= 1) {
        for (uint32_t i = 0; i < n; ++i)
            runOne(i);
    } else {
        ThreadPool& pool = pool_ ? *pool_ : ThreadPool::global();
        pool.parallelFor(
            n, [&](uint64_t i) { runOne(static_cast<uint32_t>(i)); });
    }
    obs::Registry& reg = obs::Registry::global();

    std::vector<uint8_t> ran(n, 0);
    for (uint32_t i = 0; i < n; ++i)
        ran[i] = skip[i] ? 0 : 1;
    sweepLaunchFailures(ran, skip, cycles);
    uint64_t maxCycles = lastMaxCycles_;

    if (reg.enabled()) {
        reg.counter("pimsim/system/launches").add(1);
        reg.counter("pimsim/system/max_cycles").add(maxCycles);
        reg.histogram("pimsim/system/max_cycles_per_launch")
            .observe(maxCycles);
    }

    if (model_.frequencyHz <= 0.0)
        return 0.0;
    double seconds = static_cast<double>(maxCycles) / model_.frequencyHz;
    if (reg.enabled())
        reg.real("pimsim/system/modeled_seconds").add(seconds);
    return seconds;
}

void
PimSystem::sweepLaunchFailures(const std::vector<uint8_t>& ran,
                               const std::vector<uint8_t>& skip,
                               std::vector<uint64_t>& cycles)
{
    uint32_t n = numDpus();
    obs::Registry& reg = obs::Registry::global();
    // Sequential failure sweep: apply the launch timeout, mask newly
    // failed cores, and cap their cycle contribution (the host fences
    // a straggler at the timeout; a hard-failed core contributed 0).
    LaunchReport report;
    if (faults_) {
        for (uint32_t i = 0; i < n; ++i) {
            if (skip[i]) {
                ++report.masked;
                continue;
            }
            if (!ran[i])
                continue;
            ++report.attempted;
            const LaunchStats& st = dpus_[i]->lastLaunch();
            report.faultEvents += st.faultEvents;
            bool failed = st.failed;
            if (!failed && policy_.launchTimeoutCycles > 0 &&
                st.cycles > policy_.launchTimeoutCycles) {
                failed = true;
                cycles[i] = policy_.launchTimeoutCycles;
                if (reg.enabled())
                    reg.counter("fault/launch/timeout").add(1);
            }
            if (failed) {
                report.failedDpus.push_back(i);
                faults_->mask(i);
            }
        }
        if (reg.enabled() && report.masked)
            reg.counter("fault/launch/masked_skips").add(report.masked);
    } else {
        for (uint32_t i = 0; i < n; ++i)
            report.attempted += ran[i] ? 1 : 0;
    }

    uint64_t maxCycles = 0;
    for (uint64_t c : cycles)
        maxCycles = std::max(maxCycles, c);
    lastMaxCycles_ = maxCycles;
    lastCycles_ = cycles;
    report.maxCycles = maxCycles;
    lastReport_ = std::move(report);
}

PipelineEvent
PimSystem::broadcastAsync(PipelineTimeline& timeline, double readyAt,
                          uint64_t tableBytes, int32_t rank)
{
    obs::TraceSpan span("broadcastAsync", "xfer",
                        obs::argKv("bytes", tableBytes));
    if (rank >= 0) {
        // Fleet path: one single-rank parallel pass, reserved on the
        // rank's transfer lane (serializing with any sibling rank on
        // the same channel).
        double seconds = accountTransferSeconds(
            transferStats_.broadcast, "broadcast",
            TransferMode::Parallel, tableBytes,
            rankParallelTransferSeconds(tableBytes));
        double end = timeline.reserveRank(
            static_cast<uint32_t>(rank), readyAt, seconds);
        return {end - seconds, end};
    }
    double seconds =
        accountTransfer(transferStats_.broadcast, "broadcast",
                        TransferMode::Parallel, tableBytes);
    double start = std::max(readyAt, timeline.hostFree());
    double end = timeline.reserveHost(readyAt, seconds);
    return {start, end};
}

PipelineEvent
PimSystem::scatterAsync(PipelineTimeline& timeline, double readyAt,
                        std::span<const ScatterSlice> slices,
                        int32_t rank)
{
    uint64_t total = 0;
    for (const ScatterSlice& s : slices)
        total += s.bytes;
    obs::TraceSpan span("scatterAsync", "xfer",
                        obs::argKv("bytes", total));
    // One retryable leg per slice, sequentially: the slices have
    // distinct sizes, so the host interface serializes them anyway,
    // and sequential legs keep the per-DPU fault-event order (and
    // thus the modeled numbers) independent of the thread count.
    uint64_t streamBytes = 0;
    double extra = 0.0;
    for (const ScatterSlice& s : slices) {
        DpuCore& d = *dpus_[s.dpu];
        extra += transferLeg(
            s.dpu, s.bytes,
            [&] { d.hostWriteMram(s.mramAddr, s.src, s.bytes); },
            d.mramData() + s.mramAddr, s.bytes);
        if (!isMasked(s.dpu))
            streamBytes += s.bytes;
    }
    double seconds =
        accountTransfer(transferStats_.scatter, "scatter",
                        TransferMode::Serial, streamBytes, extra);
    if (rank >= 0) {
        double end = timeline.reserveRank(
            static_cast<uint32_t>(rank), readyAt, seconds);
        return {end - seconds, end};
    }
    double start = std::max(readyAt, timeline.hostFree());
    double end = timeline.reserveHost(readyAt, seconds);
    return {start, end};
}

PipelineEvent
PimSystem::gatherAsync(PipelineTimeline& timeline, double readyAt,
                       std::span<const GatherSlice> slices,
                       int32_t rank)
{
    uint64_t total = 0;
    for (const GatherSlice& s : slices)
        total += s.bytes;
    obs::TraceSpan span("gatherAsync", "xfer",
                        obs::argKv("bytes", total));
    uint64_t streamBytes = 0;
    double extra = 0.0;
    for (const GatherSlice& s : slices) {
        uint8_t* dst = static_cast<uint8_t*>(s.dst);
        extra += transferLeg(
            s.dpu, s.bytes,
            [&] {
                dpus_[s.dpu]->hostReadMram(s.mramAddr, dst, s.bytes);
            },
            dst, s.bytes);
        if (!isMasked(s.dpu))
            streamBytes += s.bytes;
    }
    double seconds =
        accountTransfer(transferStats_.gather, "gather",
                        TransferMode::Serial, streamBytes, extra);
    if (rank >= 0) {
        double end = timeline.reserveRank(
            static_cast<uint32_t>(rank), readyAt, seconds);
        return {end - seconds, end};
    }
    double start = std::max(readyAt, timeline.hostFree());
    double end = timeline.reserveHost(readyAt, seconds);
    return {start, end};
}

PipelineEvent
PimSystem::launchAsync(PipelineTimeline& timeline, double readyAt,
                       uint32_t numTasklets,
                       const DpuKernelFactory& makeKernel)
{
    uint32_t n = numDpus();
    obs::TraceSpan span(
        "launchAsync", "sim",
        obs::argsObject(
            {obs::argKv("dpus", static_cast<uint64_t>(n)),
             obs::argKv("tasklets",
                        static_cast<uint64_t>(numTasklets))}));
    obs::Tracer& tracer = obs::Tracer::global();
    const bool tracing = tracer.enabled();

    // Build the wave on the host thread (deterministic factory call
    // order). A core is "skipped" only if it was asked to participate
    // but an earlier failure masked it.
    std::vector<uint8_t> skip(n, 0);
    std::vector<uint8_t> ran(n, 0);
    std::vector<Kernel> kernels(n);
    for (uint32_t i = 0; i < n; ++i) {
        Kernel k = makeKernel(i);
        if (!k)
            continue;
        if (faults_ && faults_->masked(i)) {
            skip[i] = 1;
            continue;
        }
        kernels[i] = std::move(k);
        ran[i] = 1;
    }

    // Per-DPU cycles land in pre-sized slots (same determinism
    // argument as launchAll).
    std::vector<uint64_t> cycles(n, 0);
    auto runOne = [&](uint32_t i) {
        if (!ran[i])
            return;
        if (tracing) {
            double t0 = tracer.nowUs();
            cycles[i] =
                dpus_[i]->launch(numTasklets, kernels[i]).cycles;
            tracer.complete("dpu " + std::to_string(i), "dpu", t0,
                            tracer.nowUs() - t0,
                            obs::argKv("cycles", cycles[i]));
        } else {
            cycles[i] =
                dpus_[i]->launch(numTasklets, kernels[i]).cycles;
        }
    };
    if (simThreads_ == 1 || n <= 1) {
        for (uint32_t i = 0; i < n; ++i)
            runOne(i);
    } else {
        ThreadPool& pool = pool_ ? *pool_ : ThreadPool::global();
        pool.parallelFor(
            n, [&](uint64_t i) { runOne(static_cast<uint32_t>(i)); });
    }

    sweepLaunchFailures(ran, skip, cycles);

    // Merge each participating core's modeled cycles onto its own
    // timeline lane; the wave's event spans the earliest lane start
    // to the latest lane end.
    PipelineEvent ev{readyAt, readyAt};
    bool first = true;
    for (uint32_t i = 0; i < n; ++i) {
        if (!ran[i])
            continue;
        double secs = model_.frequencyHz > 0.0
                          ? static_cast<double>(cycles[i]) /
                                model_.frequencyHz
                          : 0.0;
        double start = std::max(readyAt, timeline.dpuFree(i));
        double end = timeline.reserveDpu(i, readyAt, secs);
        ev.start = first ? start : std::min(ev.start, start);
        ev.end = std::max(ev.end, end);
        first = false;
    }

    obs::Registry& reg = obs::Registry::global();
    if (reg.enabled()) {
        reg.counter("pimsim/system/async_launches").add(1);
        reg.counter("pimsim/system/max_cycles").add(lastMaxCycles_);
        reg.histogram("pimsim/system/max_cycles_per_launch")
            .observe(lastMaxCycles_);
        reg.real("pimsim/system/modeled_seconds")
            .add(ev.end - ev.start);
    }
    return ev;
}

ShardedRunReport
PimSystem::runSharded(const void* input, void* output,
                      uint64_t elements, uint32_t elemBytes,
                      uint32_t numTasklets,
                      const ShardKernelFactory& makeKernel)
{
    ShardedRunReport rep;
    if (elements == 0) {
        rep.complete = true;
        return rep;
    }
    obs::TraceSpan span(
        "runSharded", "sim",
        obs::argsObject(
            {obs::argKv("elements", elements),
             obs::argKv("dpus", static_cast<uint64_t>(numDpus()))}));
    obs::Registry& reg = obs::Registry::global();
    const uint32_t retries0 =
        faults_ ? faults_->transferRetries.load() : 0;
    const uint32_t failures0 =
        faults_ ? faults_->transferFailures.load() : 0;

    const uint8_t* in = static_cast<const uint8_t*>(input);
    uint8_t* out = static_cast<uint8_t*>(output);

    // Pending contiguous element ranges (first, count). Failed shards
    // put their range back here and the next wave re-distributes it
    // over whatever cores are still healthy.
    std::vector<std::pair<uint64_t, uint64_t>> pending{{0, elements}};
    const uint32_t waveLimit = std::max(1u, policy_.maxReshardWaves);

    auto noteFailed = [&rep](uint32_t d) {
        if (std::find(rep.failedDpus.begin(), rep.failedDpus.end(),
                      d) == rep.failedDpus.end())
            rep.failedDpus.push_back(d);
    };

    while (!pending.empty() && rep.waves < waveLimit) {
        std::vector<uint32_t> healthy;
        for (uint32_t i = 0; i < numDpus(); ++i)
            if (!isMasked(i))
                healthy.push_back(i);
        if (healthy.empty())
            break;
        ++rep.waves;

        uint64_t total = 0;
        for (const auto& r : pending)
            total += r.second;
        // Even split over the healthy cores; each core gets at most
        // one shard per wave, so leftover fragments roll over to the
        // next wave (pending shrinks every wave — this terminates).
        const uint64_t per =
            (total + healthy.size() - 1) / healthy.size();

        std::vector<ShardTask> tasks;
        std::vector<std::pair<uint64_t, uint64_t>> next;
        {
            size_t h = 0;
            for (const auto& r : pending) {
                uint64_t first = r.first, count = r.second;
                while (count > 0) {
                    if (h == healthy.size()) {
                        next.emplace_back(first, count);
                        break;
                    }
                    uint64_t take = std::min(count, per);
                    ShardTask t;
                    t.dpu = healthy[h++];
                    t.firstElement = first;
                    t.elements = static_cast<uint32_t>(take);
                    tasks.push_back(t);
                    first += take;
                    count -= take;
                }
            }
        }
        pending.clear();

        // Scatter: one serial leg per shard (sizes differ, so the
        // host interface serializes). A leg that kills its core drops
        // the shard back into the pending set before launch.
        std::vector<char> live(tasks.size(), 1);
        uint64_t scatterBytes = 0;
        double scatterExtra = 0.0;
        for (size_t k = 0; k < tasks.size(); ++k) {
            ShardTask& t = tasks[k];
            DpuCore& d = dpu(t.dpu);
            const uint64_t bytes =
                static_cast<uint64_t>(t.elements) * elemBytes;
            t.inAddr = d.mramAlloc(static_cast<uint32_t>(bytes));
            t.outAddr = d.mramAlloc(static_cast<uint32_t>(bytes));
            scatterExtra += transferLeg(
                t.dpu, bytes,
                [&] {
                    d.hostWriteMram(t.inAddr,
                                    in + t.firstElement * elemBytes,
                                    static_cast<uint32_t>(bytes));
                },
                d.mramData() + t.inAddr, bytes);
            if (isMasked(t.dpu)) {
                live[k] = 0;
                next.emplace_back(t.firstElement, t.elements);
                noteFailed(t.dpu);
            } else {
                scatterBytes += bytes;
            }
        }
        rep.modeledSeconds +=
            accountTransfer(transferStats_.scatter, "scatter",
                            TransferMode::Serial, scatterBytes,
                            scatterExtra);

        // Launch every live shard (distinct cores, so parallel is
        // safe); per-task cycles land in pre-sized slots.
        std::vector<uint64_t> cyc(tasks.size(), 0);
        auto runOne = [&](size_t k) {
            if (!live[k])
                return;
            const ShardTask& t = tasks[k];
            cyc[k] =
                dpu(t.dpu).launch(numTasklets, makeKernel(t)).cycles;
        };
        if (simThreads_ == 1 || tasks.size() <= 1) {
            for (size_t k = 0; k < tasks.size(); ++k)
                runOne(k);
        } else {
            ThreadPool& pool = pool_ ? *pool_ : ThreadPool::global();
            pool.parallelFor(tasks.size(),
                             [&](uint64_t k) { runOne(k); });
        }

        // Sequential sweep: fence stragglers, mask failures, gather
        // the survivors' outputs into the host array.
        uint64_t gatherBytes = 0;
        double gatherExtra = 0.0;
        uint64_t waveMax = 0;
        for (size_t k = 0; k < tasks.size(); ++k) {
            if (!live[k])
                continue;
            const ShardTask& t = tasks[k];
            const LaunchStats& st = dpu(t.dpu).lastLaunch();
            bool failed = st.failed;
            if (!failed && policy_.launchTimeoutCycles > 0 &&
                st.cycles > policy_.launchTimeoutCycles) {
                failed = true;
                cyc[k] = policy_.launchTimeoutCycles;
                if (reg.enabled())
                    reg.counter("fault/launch/timeout").add(1);
            }
            if (failed) {
                maskDpu(t.dpu);
                noteFailed(t.dpu);
                next.emplace_back(t.firstElement, t.elements);
                waveMax = std::max(waveMax, cyc[k]);
                continue;
            }
            const uint64_t bytes =
                static_cast<uint64_t>(t.elements) * elemBytes;
            uint8_t* dst = out + t.firstElement * elemBytes;
            gatherExtra += transferLeg(
                t.dpu, bytes,
                [&] {
                    dpu(t.dpu).hostReadMram(
                        t.outAddr, dst, static_cast<uint32_t>(bytes));
                },
                dst, bytes);
            if (isMasked(t.dpu)) {
                // The gather leg died: the results are lost and the
                // shard recomputes elsewhere.
                noteFailed(t.dpu);
                next.emplace_back(t.firstElement, t.elements);
            } else {
                gatherBytes += bytes;
            }
            waveMax = std::max(waveMax, cyc[k]);
        }
        rep.modeledSeconds +=
            accountTransfer(transferStats_.gather, "gather",
                            TransferMode::Serial, gatherBytes,
                            gatherExtra);
        if (model_.frequencyHz > 0.0)
            rep.modeledSeconds +=
                static_cast<double>(waveMax) / model_.frequencyHz;
        lastMaxCycles_ = std::max(lastMaxCycles_, waveMax);

        for (const auto& r : next)
            rep.reshardedElements += r.second;
        pending = std::move(next);
    }

    rep.complete = pending.empty();
    if (faults_) {
        rep.transferRetries =
            faults_->transferRetries.load() - retries0;
        rep.transferFailures =
            faults_->transferFailures.load() - failures0;
    }
    if (reg.enabled()) {
        reg.counter("fault/shard/waves").add(rep.waves);
        if (rep.reshardedElements)
            reg.counter("fault/shard/resharded_elements")
                .add(rep.reshardedElements);
        if (!rep.complete)
            reg.counter("fault/shard/incomplete").add(1);
    }
    return rep;
}

double
PimSystem::projectedSystemSeconds(uint64_t perDpuCycles,
                                  uint64_t simulatedElementsPerDpu,
                                  uint64_t totalElements,
                                  uint32_t systemDpus) const
{
    if (simulatedElementsPerDpu == 0 || systemDpus == 0 ||
        model_.frequencyHz <= 0.0)
        return 0.0;
    double cyclesPerElement = static_cast<double>(perDpuCycles) /
                              static_cast<double>(simulatedElementsPerDpu);
    uint64_t elementsPerDpu =
        (totalElements + systemDpus - 1) / systemDpus;
    return cyclesPerElement * static_cast<double>(elementsPerDpu) /
           model_.frequencyHz;
}

} // namespace sim
} // namespace tpl
