/**
 * @file
 * Multi-DPU system implementation.
 *
 * All multi-DPU loops (kernel launches, bulk MRAM copies) run on the
 * process-wide ThreadPool. Each DpuCore owns its entire state, so the
 * loops are embarrassingly parallel and the modeled numbers they
 * produce are independent of the thread count (see the determinism
 * test in tests/concurrency_test.cc).
 */

#include "pimsim/system.h"

#include <algorithm>
#include <cstring>
#include <string>

#include "pimsim/obs/metrics.h"
#include "pimsim/obs/trace.h"
#include "pimsim/thread_pool.h"

namespace tpl {
namespace sim {

namespace {

/**
 * Per-DPU copies below this size are cheaper than a pool dispatch;
 * run them serially. Launches always go parallel — a kernel launch is
 * orders of magnitude more work than a pool handoff.
 */
constexpr uint64_t kParallelCopyThresholdBytes = 4096;

} // namespace

PimSystem::PimSystem(uint32_t numDpus, const CostModel& model)
    : model_(model)
{
    dpus_.reserve(numDpus);
    for (uint32_t i = 0; i < numDpus; ++i)
        dpus_.push_back(std::make_unique<DpuCore>(model));
}

void
PimSystem::forEachDpu(const std::function<void(uint32_t)>& fn,
                      uint64_t bytesPerDpu) const
{
    uint32_t n = numDpus();
    bool serial = simThreads_ == 1 || n <= 1 ||
                  bytesPerDpu < kParallelCopyThresholdBytes;
    if (serial) {
        for (uint32_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    ThreadPool& pool = pool_ ? *pool_ : ThreadPool::global();
    pool.parallelFor(n,
                     [&](uint64_t i) { fn(static_cast<uint32_t>(i)); });
}

double
PimSystem::parallelTransferSeconds(uint64_t totalBytes) const
{
    // Parallel transfers stream at the per-rank bandwidth, overlapped
    // across ranks, capped by host memory bandwidth.
    uint32_t ranks = model_.dpusPerRank
                         ? std::max(1u, numDpus() / model_.dpusPerRank)
                         : 1u;
    double bw = std::min(model_.hostParallelBandwidth * ranks,
                         model_.hostAggregateBandwidthCap);
    if (bw <= 0.0)
        return 0.0;
    return static_cast<double>(totalBytes) / bw;
}

double
PimSystem::serialTransferSeconds(uint64_t totalBytes) const
{
    if (model_.hostSerialBandwidth <= 0.0)
        return 0.0;
    return static_cast<double>(totalBytes) / model_.hostSerialBandwidth;
}

double
PimSystem::accountTransfer(TransferStats::Cell (&cells)[2],
                           const char* direction, TransferMode mode,
                           uint64_t streamBytes)
{
    double seconds = mode == TransferMode::Parallel
                         ? parallelTransferSeconds(streamBytes)
                         : serialTransferSeconds(streamBytes);
    TransferStats::Cell& cell = cells[static_cast<int>(mode)];
    ++cell.transfers;
    cell.bytes += streamBytes;
    cell.seconds += seconds;

    obs::Registry& reg = obs::Registry::global();
    if (reg.enabled()) {
        std::string base = std::string("pimsim/host/") + direction +
                           "/" + toString(mode);
        reg.counter(base + "/transfers").add(1);
        reg.counter(base + "/bytes").add(streamBytes);
        reg.real(base + "/modeled_seconds").add(seconds);
    }
    return seconds;
}

double
PimSystem::broadcastToMram(uint32_t mramAddr, const void* src,
                           uint32_t size, TransferMode mode)
{
    obs::TraceSpan span(
        std::string("broadcast ") + toString(mode), "xfer",
        obs::argKv("bytes", static_cast<uint64_t>(size)));
    forEachDpu(
        [&](uint32_t i) { dpus_[i]->hostWriteMram(mramAddr, src, size); },
        size);
    // Parallel broadcast writes the same buffer to each rank
    // overlapped, costing one parallel pass of the table bytes;
    // serialized it streams the buffer once per DPU.
    uint64_t streamBytes =
        mode == TransferMode::Parallel
            ? size
            : static_cast<uint64_t>(size) * numDpus();
    return accountTransfer(transferStats_.broadcast, "broadcast", mode,
                           streamBytes);
}

double
PimSystem::scatterToMram(uint32_t mramAddr, const void* data,
                         uint32_t bytesPerDpu, TransferMode mode)
{
    uint64_t total = static_cast<uint64_t>(bytesPerDpu) * numDpus();
    obs::TraceSpan span(std::string("scatter ") + toString(mode),
                        "xfer", obs::argKv("bytes", total));
    const uint8_t* bytes = static_cast<const uint8_t*>(data);
    forEachDpu(
        [&](uint32_t i) {
            dpus_[i]->hostWriteMram(mramAddr,
                                    bytes + static_cast<uint64_t>(i) *
                                                bytesPerDpu,
                                    bytesPerDpu);
        },
        bytesPerDpu);
    return accountTransfer(transferStats_.scatter, "scatter", mode,
                           total);
}

double
PimSystem::gatherFromMram(uint32_t mramAddr, void* data,
                          uint32_t bytesPerDpu, TransferMode mode)
{
    uint64_t total = static_cast<uint64_t>(bytesPerDpu) * numDpus();
    obs::TraceSpan span(std::string("gather ") + toString(mode),
                        "xfer", obs::argKv("bytes", total));
    uint8_t* bytes = static_cast<uint8_t*>(data);
    forEachDpu(
        [&](uint32_t i) {
            dpus_[i]->hostReadMram(mramAddr,
                                   bytes + static_cast<uint64_t>(i) *
                                               bytesPerDpu,
                                   bytesPerDpu);
        },
        bytesPerDpu);
    return accountTransfer(transferStats_.gather, "gather", mode,
                           total);
}

double
PimSystem::launchAll(uint32_t numTasklets, const Kernel& kernel)
{
    uint32_t n = numDpus();
    obs::TraceSpan span(
        "launchAll", "sim",
        obs::argsObject(
            {obs::argKv("dpus", static_cast<uint64_t>(n)),
             obs::argKv("tasklets",
                        static_cast<uint64_t>(numTasklets))}));
    obs::Tracer& tracer = obs::Tracer::global();
    const bool tracing = tracer.enabled();
    // Per-DPU cycles land in a pre-sized slot each, then reduce
    // sequentially: no cross-thread accumulation, so the result is
    // identical to the serial loop bit for bit.
    std::vector<uint64_t> cycles(n, 0);
    auto runOne = [&](uint32_t i) {
        if (tracing) {
            // The per-DPU slice lands on whichever pool thread ran
            // it, exercising the tracer's per-thread buffers.
            double t0 = tracer.nowUs();
            cycles[i] = dpus_[i]->launch(numTasklets, kernel).cycles;
            tracer.complete(
                "dpu " + std::to_string(i), "dpu", t0,
                tracer.nowUs() - t0,
                obs::argKv("cycles", cycles[i]));
        } else {
            cycles[i] = dpus_[i]->launch(numTasklets, kernel).cycles;
        }
    };
    if (simThreads_ == 1 || n <= 1) {
        for (uint32_t i = 0; i < n; ++i)
            runOne(i);
    } else {
        ThreadPool& pool = pool_ ? *pool_ : ThreadPool::global();
        pool.parallelFor(
            n, [&](uint64_t i) { runOne(static_cast<uint32_t>(i)); });
    }
    uint64_t maxCycles = 0;
    for (uint64_t c : cycles)
        maxCycles = std::max(maxCycles, c);
    lastMaxCycles_ = maxCycles;

    obs::Registry& reg = obs::Registry::global();
    if (reg.enabled()) {
        reg.counter("pimsim/system/launches").add(1);
        reg.counter("pimsim/system/max_cycles").add(maxCycles);
        reg.histogram("pimsim/system/max_cycles_per_launch")
            .observe(maxCycles);
    }

    if (model_.frequencyHz <= 0.0)
        return 0.0;
    double seconds = static_cast<double>(maxCycles) / model_.frequencyHz;
    if (reg.enabled())
        reg.real("pimsim/system/modeled_seconds").add(seconds);
    return seconds;
}

double
PimSystem::projectedSystemSeconds(uint64_t perDpuCycles,
                                  uint64_t simulatedElementsPerDpu,
                                  uint64_t totalElements,
                                  uint32_t systemDpus) const
{
    if (simulatedElementsPerDpu == 0 || systemDpus == 0 ||
        model_.frequencyHz <= 0.0)
        return 0.0;
    double cyclesPerElement = static_cast<double>(perDpuCycles) /
                              static_cast<double>(simulatedElementsPerDpu);
    uint64_t elementsPerDpu =
        (totalElements + systemDpus - 1) / systemDpus;
    return cyclesPerElement * static_cast<double>(elementsPerDpu) /
           model_.frequencyHz;
}

} // namespace sim
} // namespace tpl
