/**
 * @file
 * Multi-DPU system implementation.
 */

#include "pimsim/system.h"

#include <algorithm>
#include <cstring>

namespace tpl {
namespace sim {

PimSystem::PimSystem(uint32_t numDpus, const CostModel& model)
    : model_(model)
{
    dpus_.reserve(numDpus);
    for (uint32_t i = 0; i < numDpus; ++i)
        dpus_.push_back(std::make_unique<DpuCore>(model));
}

double
PimSystem::parallelTransferSeconds(uint64_t totalBytes) const
{
    // Parallel transfers stream at the per-rank bandwidth, overlapped
    // across ranks, capped by host memory bandwidth.
    uint32_t ranks = std::max(1u, numDpus() / model_.dpusPerRank);
    double bw = std::min(model_.hostParallelBandwidth * ranks,
                         model_.hostAggregateBandwidthCap);
    return static_cast<double>(totalBytes) / bw;
}

double
PimSystem::serialTransferSeconds(uint64_t totalBytes) const
{
    return static_cast<double>(totalBytes) / model_.hostSerialBandwidth;
}

double
PimSystem::broadcastToMram(uint32_t mramAddr, const void* src,
                           uint32_t size)
{
    for (auto& dpu : dpus_)
        dpu->hostWriteMram(mramAddr, src, size);
    // Broadcast writes the same buffer to each rank in parallel; the
    // stream itself costs one parallel pass of the table bytes.
    return parallelTransferSeconds(size);
}

double
PimSystem::scatterToMram(uint32_t mramAddr, const void* data,
                         uint32_t bytesPerDpu)
{
    const uint8_t* bytes = static_cast<const uint8_t*>(data);
    for (uint32_t i = 0; i < numDpus(); ++i) {
        dpus_[i]->hostWriteMram(mramAddr,
                                bytes + static_cast<uint64_t>(i) *
                                            bytesPerDpu,
                                bytesPerDpu);
    }
    return parallelTransferSeconds(static_cast<uint64_t>(bytesPerDpu) *
                                   numDpus());
}

double
PimSystem::gatherFromMram(uint32_t mramAddr, void* data,
                          uint32_t bytesPerDpu)
{
    uint8_t* bytes = static_cast<uint8_t*>(data);
    for (uint32_t i = 0; i < numDpus(); ++i) {
        dpus_[i]->hostReadMram(mramAddr,
                               bytes + static_cast<uint64_t>(i) *
                                           bytesPerDpu,
                               bytesPerDpu);
    }
    return parallelTransferSeconds(static_cast<uint64_t>(bytesPerDpu) *
                                   numDpus());
}

double
PimSystem::launchAll(uint32_t numTasklets, const Kernel& kernel)
{
    uint64_t maxCycles = 0;
    for (auto& dpu : dpus_) {
        LaunchStats stats = dpu->launch(numTasklets, kernel);
        maxCycles = std::max(maxCycles, stats.cycles);
    }
    lastMaxCycles_ = maxCycles;
    return static_cast<double>(maxCycles) / model_.frequencyHz;
}

double
PimSystem::projectedSystemSeconds(uint64_t perDpuCycles,
                                  uint64_t simulatedElementsPerDpu,
                                  uint64_t totalElements,
                                  uint32_t systemDpus) const
{
    if (simulatedElementsPerDpu == 0 || systemDpus == 0)
        return 0.0;
    double cyclesPerElement = static_cast<double>(perDpuCycles) /
                              static_cast<double>(simulatedElementsPerDpu);
    uint64_t elementsPerDpu =
        (totalElements + systemDpus - 1) / systemDpus;
    return cyclesPerElement * static_cast<double>(elementsPerDpu) /
           model_.frequencyHz;
}

} // namespace sim
} // namespace tpl
