/**
 * @file
 * Cost-model parameters of the simulated PIM system.
 *
 * Calibration follows the published characterization of the UPMEM PIM
 * architecture (Gómez-Luna et al., "Benchmarking a New Paradigm" / the
 * PrIM suite) and the UPMEM documentation:
 *
 *  - The DPU pipeline is 14 stages; a tasklet may dispatch one
 *    instruction every 11 cycles, so at least 11 ready tasklets are
 *    needed to reach the peak of one retired instruction per cycle.
 *  - MRAM<->WRAM DMA moves ~2 bytes/cycle once streaming, with a fixed
 *    engine setup cost; the latency visible to the issuing tasklet is
 *    higher but overlaps with other tasklets' execution.
 *  - Host transfers reach ~6-7 GB/s per rank when parallel across DPUs
 *    and a few hundred MB/s when serialized.
 *
 * All values are plain data so experiments can sweep them (e.g. the
 * frequency ablation); defaults reproduce the paper's 350 MHz system.
 */

#ifndef TPL_PIMSIM_COST_MODEL_H
#define TPL_PIMSIM_COST_MODEL_H

#include <cstdint>

namespace tpl {
namespace sim {

/** Tunable cost parameters of the simulated PIM system. */
struct CostModel
{
    /** Dispatch interval of a single tasklet, in cycles. */
    uint32_t pipelineInterval = 11;

    /** DPU clock frequency in Hz (paper system: 350 MHz). */
    double frequencyHz = 350e6;

    /** DMA engine occupancy: fixed setup cycles per transfer. */
    uint32_t dmaSetupCycles = 8;

    /** DMA engine occupancy: cycles per byte once streaming (1/2). */
    double dmaCyclesPerByte = 0.5;

    /** Latency the issuing tasklet observes on top of streaming. */
    uint32_t dmaLatencyCycles = 40;

    /** WRAM load/store cost in instructions (fully pipelined). */
    uint32_t wramAccessCost = 1;

    /** Host->PIM / PIM->host bandwidth with parallel transfers (B/s). */
    double hostParallelBandwidth = 6.7e9;

    /** Host->PIM / PIM->host bandwidth with serial transfers (B/s). */
    double hostSerialBandwidth = 0.35e9;

    /** Aggregate cap across many ranks (host memory bandwidth, B/s). */
    double hostAggregateBandwidthCap = 20e9;

    /** DPUs per rank (parallel-transfer granularity). */
    uint32_t dpusPerRank = 64;

    /** WRAM size in bytes (UPMEM: 64 KB). */
    uint32_t wramBytes = 64 * 1024;

    /** MRAM size in bytes (UPMEM: 64 MB). */
    uint32_t mramBytes = 64u * 1024 * 1024;

    /** Maximum number of hardware tasklets per DPU. */
    uint32_t maxTasklets = 24;

    /// @name Energy parameters.
    /// Rough magnitudes from the UPMEM energy characterizations: a DPU
    /// draws on the order of 150-300 mW at 350 MHz (~0.5 nJ/cycle,
    /// attributed here per retired instruction), in-bank DMA costs a
    /// few tens of pJ/byte, and host<->PIM transfers cross the DDR bus
    /// at ~100 pJ/byte. These feed the energy ablation bench; the
    /// paper itself reports no energy numbers.
    /// @{

    /** Energy per retired DPU instruction (picojoules). */
    double instrEnergyPj = 500.0;

    /** MRAM<->WRAM DMA energy per byte (picojoules). */
    double dmaEnergyPerBytePj = 30.0;

    /** Host<->PIM transfer energy per byte (picojoules). */
    double hostTransferEnergyPerBytePj = 100.0;

    /// @}
};

} // namespace sim
} // namespace tpl

#endif // TPL_PIMSIM_COST_MODEL_H
