/**
 * @file
 * Assembler and interpreter for the miniature DPU ISA.
 */

#include "pimsim/isa.h"

#include <cctype>
#include <cstring>
#include <map>
#include <sstream>

#include "common/emu_int.h"
#include "pimsim/analysis/sanitizer.h"
#include "pimsim/fault/fault.h"

namespace tpl {
namespace sim {

namespace {

/**
 * The opcode property table, indexed by Opcode value. Row shape:
 *   { op, mnemonic, operands, condBranch, jump, halts,
 *     readsRa, readsRb, readsRd, writesRd }
 * Everything else (assembler table, CFG block splitting, register
 * read/write masks) derives from these rows.
 */
constexpr OpTraits kOpTraits[kNumOpcodes] = {
    // op              mnem       opnds  cb     jmp    halt   rRa    rRb    rRd    wRd
    {Opcode::Add,     "add",     "dab", false, false, false, true,  true,  false, true},
    {Opcode::Addi,    "addi",    "dai", false, false, false, true,  false, false, true},
    {Opcode::Sub,     "sub",     "dab", false, false, false, true,  true,  false, true},
    {Opcode::Subi,    "subi",    "dai", false, false, false, true,  false, false, true},
    {Opcode::And,     "and",     "dab", false, false, false, true,  true,  false, true},
    {Opcode::Andi,    "andi",    "dai", false, false, false, true,  false, false, true},
    {Opcode::Or,      "or",      "dab", false, false, false, true,  true,  false, true},
    {Opcode::Ori,     "ori",     "dai", false, false, false, true,  false, false, true},
    {Opcode::Xor,     "xor",     "dab", false, false, false, true,  true,  false, true},
    {Opcode::Xori,    "xori",    "dai", false, false, false, true,  false, false, true},
    {Opcode::Sll,     "sll",     "dab", false, false, false, true,  true,  false, true},
    {Opcode::Slli,    "slli",    "dai", false, false, false, true,  false, false, true},
    {Opcode::Srl,     "srl",     "dab", false, false, false, true,  true,  false, true},
    {Opcode::Srli,    "srli",    "dai", false, false, false, true,  false, false, true},
    {Opcode::Sra,     "sra",     "dab", false, false, false, true,  true,  false, true},
    {Opcode::Srai,    "srai",    "dai", false, false, false, true,  false, false, true},
    {Opcode::Mul,     "mul",     "dab", false, false, false, true,  true,  false, true},
    {Opcode::Mulh,    "mulh",    "dab", false, false, false, true,  true,  false, true},
    {Opcode::Movi,    "movi",    "di",  false, false, false, false, false, false, true},
    {Opcode::Tid,     "tid",     "d",   false, false, false, false, false, false, true},
    {Opcode::Ntask,   "ntask",   "d",   false, false, false, false, false, false, true},
    {Opcode::Ldw,     "ldw",     "dai", false, false, false, true,  false, false, true},
    // Stores read both the address base and the stored value.
    {Opcode::Stw,     "stw",     "dai", false, false, false, true,  false, true,  false},
    // DMA: WRAM address (rd), MRAM address (ra) and size (rb) are all
    // inputs; the transfer touches memory, not registers.
    {Opcode::Ldma,    "ldma",    "dab", false, false, false, true,  true,  true,  false},
    {Opcode::Sdma,    "sdma",    "dab", false, false, false, true,  true,  true,  false},
    {Opcode::Beq,     "beq",     "abl", true,  false, false, true,  true,  false, false},
    {Opcode::Bne,     "bne",     "abl", true,  false, false, true,  true,  false, false},
    {Opcode::Blt,     "blt",     "abl", true,  false, false, true,  true,  false, false},
    {Opcode::Bge,     "bge",     "abl", true,  false, false, true,  true,  false, false},
    {Opcode::Bltu,    "bltu",    "abl", true,  false, false, true,  true,  false, false},
    {Opcode::Bgeu,    "bgeu",    "abl", true,  false, false, true,  true,  false, false},
    {Opcode::Jmp,     "jmp",     "l",   false, true,  false, false, false, false, false},
    {Opcode::Barrier, "barrier", "",    false, false, false, false, false, false, false},
    {Opcode::Halt,    "halt",    "",    false, false, true,  false, false, false, false},
};

/** Mnemonic -> traits row, built once from kOpTraits. */
const std::map<std::string, const OpTraits*>&
opTable()
{
    static const std::map<std::string, const OpTraits*> table = [] {
        std::map<std::string, const OpTraits*> t;
        for (const OpTraits& row : kOpTraits)
            t.emplace(row.mnemonic, &row);
        return t;
    }();
    return table;
}

[[noreturn]] void
fail(uint32_t line, const std::string& msg)
{
    throw AsmError("asm line " + std::to_string(line) + ": " + msg);
}

uint8_t
parseReg(const std::string& tok, uint32_t line)
{
    if (tok.size() < 2 || tok[0] != 'r')
        fail(line, "expected register, got '" + tok + "'");
    int n = 0;
    for (size_t i = 1; i < tok.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(tok[i])))
            fail(line, "bad register '" + tok + "'");
        n = n * 10 + (tok[i] - '0');
    }
    if (n < 0 || n >= 24)
        fail(line, "register out of range '" + tok + "'");
    return static_cast<uint8_t>(n);
}

int32_t
parseImm(const std::string& tok, uint32_t line)
{
    try {
        size_t pos = 0;
        long long v = std::stoll(tok, &pos, 0);
        if (pos != tok.size())
            fail(line, "bad immediate '" + tok + "'");
        return static_cast<int32_t>(v);
    } catch (const AsmError&) {
        throw;
    } catch (...) {
        fail(line, "bad immediate '" + tok + "'");
    }
}

std::vector<std::string>
tokenize(const std::string& text)
{
    std::vector<std::string> tokens;
    std::string cur;
    for (char c : text) {
        if (c == ',' || std::isspace(static_cast<unsigned char>(c))) {
            if (!cur.empty()) {
                tokens.push_back(cur);
                cur.clear();
            }
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        tokens.push_back(cur);
    return tokens;
}

} // namespace

const OpTraits&
opTraits(Opcode op)
{
    uint32_t idx = static_cast<uint32_t>(op);
    if (idx >= kNumOpcodes)
        throw std::out_of_range("opTraits: invalid opcode");
    return kOpTraits[idx];
}

Program
assemble(const std::string& source)
{
    // Pass 1: strip comments, record labels, collect raw statements.
    struct Raw
    {
        std::vector<std::string> tokens;
        uint32_t line;
    };
    std::vector<Raw> raws;
    std::map<std::string, int32_t> labels;

    std::istringstream in(source);
    std::string lineText;
    uint32_t lineNo = 0;
    while (std::getline(in, lineText)) {
        ++lineNo;
        size_t hash = lineText.find('#');
        if (hash != std::string::npos)
            lineText.resize(hash);
        auto tokens = tokenize(lineText);
        while (!tokens.empty() && tokens.front().back() == ':') {
            std::string label = tokens.front();
            label.pop_back();
            if (label.empty())
                fail(lineNo, "empty label");
            if (labels.count(label))
                fail(lineNo, "duplicate label '" + label + "'");
            labels[label] = static_cast<int32_t>(raws.size());
            tokens.erase(tokens.begin());
        }
        if (tokens.empty())
            continue;
        raws.push_back({std::move(tokens), lineNo});
    }

    // Pass 2: encode.
    Program prog;
    for (const Raw& raw : raws) {
        auto it = opTable().find(raw.tokens[0]);
        if (it == opTable().end())
            fail(raw.line, "unknown mnemonic '" + raw.tokens[0] + "'");
        const OpTraits& info = *it->second;
        size_t expected = std::strlen(info.operands);
        if (raw.tokens.size() != expected + 1) {
            fail(raw.line, "expected " + std::to_string(expected) +
                               " operands for '" + raw.tokens[0] + "'");
        }
        Instruction ins;
        ins.op = info.op;
        for (size_t i = 0; i < expected; ++i) {
            const std::string& tok = raw.tokens[i + 1];
            switch (info.operands[i]) {
              case 'd':
                ins.rd = parseReg(tok, raw.line);
                break;
              case 'a':
                ins.ra = parseReg(tok, raw.line);
                break;
              case 'b':
                ins.rb = parseReg(tok, raw.line);
                break;
              case 'i':
                ins.imm = parseImm(tok, raw.line);
                break;
              case 'l': {
                auto lit = labels.find(tok);
                if (lit == labels.end())
                    fail(raw.line, "unknown label '" + tok + "'");
                ins.imm = lit->second;
                break;
              }
            }
        }
        prog.code.push_back(ins);
        prog.lines.push_back(raw.line);
    }
    return prog;
}

ExecResult
execute(const Program& program, TaskletContext& ctx,
        uint64_t maxInstructions)
{
    ExecResult res;
    auto& r = res.registers;
    r.fill(0);
    DpuCore& core = ctx.core();
    uint8_t* wram = core.wramData();
    uint32_t wramSize = core.model().wramBytes;
    check::Sanitizer* san = core.sanitizer();
    // Source line of the current instruction, for sanitizer
    // diagnostics (pc already advanced when hooks run).
    auto srcLine = [&](size_t pcNext) -> uint32_t {
        size_t i = pcNext - 1;
        return i < program.lines.size() ? program.lines[i] : 0;
    };

    auto wramCheck = [&](uint32_t addr, uint32_t size) {
        if (static_cast<uint64_t>(addr) + size > wramSize) {
            throw std::runtime_error(
                "isa: WRAM access out of range at address " +
                std::to_string(addr));
        }
    };

    size_t pc = 0;
    while (pc < program.code.size()) {
        if (res.instructionsExecuted >= maxInstructions)
            throw std::runtime_error("isa: instruction budget exceeded");
        const Instruction& ins = program.code[pc];
        ++res.instructionsExecuted;
        ++pc;
        uint32_t ua = static_cast<uint32_t>(r[ins.ra]);
        uint32_t ub = static_cast<uint32_t>(r[ins.rb]);
        switch (ins.op) {
          case Opcode::Add:
            ctx.charge(1);
            r[ins.rd] = static_cast<int32_t>(ua + ub);
            break;
          case Opcode::Addi:
            ctx.charge(1);
            r[ins.rd] = static_cast<int32_t>(
                ua + static_cast<uint32_t>(ins.imm));
            break;
          case Opcode::Sub:
            ctx.charge(1);
            r[ins.rd] = static_cast<int32_t>(ua - ub);
            break;
          case Opcode::Subi:
            ctx.charge(1);
            r[ins.rd] = static_cast<int32_t>(
                ua - static_cast<uint32_t>(ins.imm));
            break;
          case Opcode::And:
            ctx.charge(1);
            r[ins.rd] = static_cast<int32_t>(ua & ub);
            break;
          case Opcode::Andi:
            ctx.charge(1);
            r[ins.rd] = static_cast<int32_t>(
                ua & static_cast<uint32_t>(ins.imm));
            break;
          case Opcode::Or:
            ctx.charge(1);
            r[ins.rd] = static_cast<int32_t>(ua | ub);
            break;
          case Opcode::Ori:
            ctx.charge(1);
            r[ins.rd] = static_cast<int32_t>(
                ua | static_cast<uint32_t>(ins.imm));
            break;
          case Opcode::Xor:
            ctx.charge(1);
            r[ins.rd] = static_cast<int32_t>(ua ^ ub);
            break;
          case Opcode::Xori:
            ctx.charge(1);
            r[ins.rd] = static_cast<int32_t>(
                ua ^ static_cast<uint32_t>(ins.imm));
            break;
          case Opcode::Sll:
            ctx.charge(1);
            r[ins.rd] = static_cast<int32_t>(ua << (ub & 31));
            break;
          case Opcode::Slli:
            ctx.charge(1);
            r[ins.rd] = static_cast<int32_t>(ua << (ins.imm & 31));
            break;
          case Opcode::Srl:
            ctx.charge(1);
            r[ins.rd] = static_cast<int32_t>(ua >> (ub & 31));
            break;
          case Opcode::Srli:
            ctx.charge(1);
            r[ins.rd] = static_cast<int32_t>(ua >> (ins.imm & 31));
            break;
          case Opcode::Sra:
            ctx.charge(1);
            r[ins.rd] = r[ins.ra] >> (ub & 31);
            break;
          case Opcode::Srai:
            ctx.charge(1);
            r[ins.rd] = r[ins.ra] >> (ins.imm & 31);
            break;
          case Opcode::Mul: {
            // Runtime multiply expansion: value now, cost via the
            // same emulated-multiplier model as the high-level tier.
            int64_t prod = emuMulS32(r[ins.ra], r[ins.rb], &ctx);
            r[ins.rd] = static_cast<int32_t>(prod);
            break;
          }
          case Opcode::Mulh: {
            int64_t prod = emuMulS32(r[ins.ra], r[ins.rb], &ctx);
            r[ins.rd] = static_cast<int32_t>(prod >> 32);
            break;
          }
          case Opcode::Movi:
            ctx.charge(1);
            r[ins.rd] = ins.imm;
            break;
          case Opcode::Tid:
            ctx.charge(1);
            r[ins.rd] = static_cast<int32_t>(ctx.taskletId());
            break;
          case Opcode::Ntask:
            ctx.charge(1);
            r[ins.rd] = static_cast<int32_t>(ctx.numTasklets());
            break;
          case Opcode::Ldw: {
            ctx.charge(1);
            uint32_t addr = ua + static_cast<uint32_t>(ins.imm);
            if (san)
                san->onWramLoad(ctx.taskletId(), addr, 4, srcLine(pc));
            wramCheck(addr, 4);
            int32_t v;
            std::memcpy(&v, wram + addr, 4);
            r[ins.rd] = v;
            break;
          }
          case Opcode::Stw: {
            ctx.charge(1);
            uint32_t addr = ua + static_cast<uint32_t>(ins.imm);
            if (san)
                san->onWramStore(ctx.taskletId(), addr, 4, srcLine(pc));
            wramCheck(addr, 4);
            std::memcpy(wram + addr, &r[ins.rd], 4);
            // Stuck-at WRAM cells win over every store, including the
            // interpreter's (DMA faults flow in via mramRead/WriteAt).
            if (fault::DpuFaultState* faults = core.faultState())
                faults->onWramWritten(addr, 4);
            break;
          }
          case Opcode::Ldma: {
            uint32_t wa = static_cast<uint32_t>(r[ins.rd]);
            uint32_t ma = ua;
            uint32_t size = ub;
            wramCheck(wa, size);
            ctx.mramReadAt(ma, wram + wa, size, srcLine(pc));
            break;
          }
          case Opcode::Sdma: {
            uint32_t wa = static_cast<uint32_t>(r[ins.rd]);
            uint32_t ma = ua;
            uint32_t size = ub;
            wramCheck(wa, size);
            ctx.mramWriteAt(ma, wram + wa, size, srcLine(pc));
            break;
          }
          case Opcode::Beq:
            ctx.charge(1);
            if (r[ins.ra] == r[ins.rb])
                pc = static_cast<size_t>(ins.imm);
            break;
          case Opcode::Bne:
            ctx.charge(1);
            if (r[ins.ra] != r[ins.rb])
                pc = static_cast<size_t>(ins.imm);
            break;
          case Opcode::Blt:
            ctx.charge(1);
            if (r[ins.ra] < r[ins.rb])
                pc = static_cast<size_t>(ins.imm);
            break;
          case Opcode::Bge:
            ctx.charge(1);
            if (r[ins.ra] >= r[ins.rb])
                pc = static_cast<size_t>(ins.imm);
            break;
          case Opcode::Bltu:
            ctx.charge(1);
            if (ua < ub)
                pc = static_cast<size_t>(ins.imm);
            break;
          case Opcode::Bgeu:
            ctx.charge(1);
            if (ua >= ub)
                pc = static_cast<size_t>(ins.imm);
            break;
          case Opcode::Jmp:
            ctx.charge(1);
            pc = static_cast<size_t>(ins.imm);
            break;
          case Opcode::Barrier:
            // charge(1) + sanitizer epoch advance happen inside.
            ctx.barrier();
            break;
          case Opcode::Halt:
            ctx.charge(1);
            return res;
        }
    }
    return res;
}

} // namespace sim
} // namespace tpl
