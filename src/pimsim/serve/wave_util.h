/**
 * @file
 * Wave bookkeeping shared by the flat ServePipeline drive loop and
 * the fleet FleetScheduler: pending-wave queuing, per-request share
 * collection, wave splitting, and the cost-aware split predictor.
 * Both drivers issue the same begin (scatter) / compute (launch) /
 * finish (gather) legs; these helpers keep their accounting
 * identical so the flat path and a Topology{1, 1, N} fleet produce
 * the same modeled numbers.
 */

#ifndef TPL_PIMSIM_SERVE_WAVE_UTIL_H
#define TPL_PIMSIM_SERVE_WAVE_UTIL_H

#include <cstdint>
#include <vector>

#include "pimsim/serve/batch_queue.h"
#include "pimsim/serve/cost_book.h"
#include "pimsim/serve/pipeline.h"
#include "pimsim/serve/table_cache.h"
#include "pimsim/system.h"

namespace tpl {
namespace sim {
namespace serve {

/** A wave waiting to execute: fresh from the queue (generation 0) or
 * re-queued after failures. */
struct PendingWave
{
    Wave wave;
    uint32_t generation = 0;
    /** Set when the auto-tuner rerouted this wave to another table;
     * the driver stamps it as a `tune` journal event at scatter
     * start. Empty on the untuned path. */
    std::string tuneNote;
};

/** One request's share of a wave (journal/flow bookkeeping). */
struct WaveReq
{
    uint64_t id = 0;
    uint64_t elements = 0; ///< this request's elements in the wave
    bool last = false;     ///< wave carries the request's tail
    double arrival = 0.0;
};

/** Everything one in-flight wave carries between its begin (scatter)
 * and finish (gather + distribute) steps. */
struct WaveExec
{
    Wave wave;
    uint32_t generation = 0;
    uint32_t parity = 0;
    uint64_t waveIndex = 0; ///< execution-order wave number
    const TableBinding* binding = nullptr;
    std::vector<float> stagingIn;  ///< packed item inputs
    std::vector<ShardTask> slices; ///< one per participating DPU
    std::vector<uint64_t> itemStart; ///< wave-relative item offsets
    std::vector<WaveReq> reqs; ///< unique requests, item order
    WaveStats stats;
    PipelineEvent scatterEv;
    PipelineEvent computeEv;
};

/** Collapse a wave's items into per-request shares, first-appearance
 * item order. */
std::vector<WaveReq> collectWaveReqs(const Wave& w);

/** Move the first @p budget elements of @p w into the returned wave;
 * @p w keeps the remainder. Items crossing the cut are split against
 * the original request memory, and the `last` flag follows the
 * request's tail (it stays on the remainder, never the head). */
Wave takeWaveHead(Wave& w, uint64_t budget);

/**
 * Predicted double-buffered makespan of one popped wave run as @p k
 * equal sub-waves over @p healthy cores of @p cap element slices: a
 * mirror of the reservation sequence the drive loop issues (scatter
 * 0; then compute i, scatter i+1, gather i), against the same serial
 * transfer model and per-slice compute envelope. Only the *ranking*
 * across k matters — common shifts (the table broadcast, lanes still
 * busy from earlier waves) move every candidate equally.
 */
double predictSplitMakespan(uint64_t elems, uint32_t k,
                            uint32_t healthy, uint32_t cap,
                            const WaveCost& cost, PimSystem& sys,
                            double freq);

} // namespace serve
} // namespace sim
} // namespace tpl

#endif // TPL_PIMSIM_SERVE_WAVE_UTIL_H
