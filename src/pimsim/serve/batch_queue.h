/**
 * @file
 * pimserve piece 1: the request queue.
 *
 * A thread-safe multi-producer queue of evaluation requests plus the
 * batching policy that turns them into *waves*: contiguous batches of
 * elements that all use the same table configuration and together fit
 * one scatter across the healthy DPUs. Producers push requests (an
 * input span, an output span, and the TableKey naming the evaluator
 * configuration); the single pipeline consumer pops waves.
 *
 * Coalescing is FIFO-fair: a wave adopts the table *and tenant* of
 * the oldest queued request and then sweeps the queue in order,
 * absorbing every request with the same key and tenant until the
 * element budget is reached (tenants have independent SLAs, so their
 * elements never mix in one wave; the default tenant 0 reproduces
 * the tenant-oblivious batching exactly).
 * Requests larger than one wave are consumed incrementally — the
 * queue advances their spans in place, so a 10-wave request simply
 * yields ten consecutive waves without copying.
 */

#ifndef TPL_PIMSIM_SERVE_BATCH_QUEUE_H
#define TPL_PIMSIM_SERVE_BATCH_QUEUE_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace tpl {

namespace obs {
class Journal;
} // namespace obs

namespace sim {
namespace serve {

/**
 * Identity of one table/evaluator configuration. Two requests batch
 * into the same wave (and share one cached table broadcast) iff their
 * keys hash equal; the hash must therefore cover every knob that
 * changes the generated tables (function, method, precision,
 * placement, entry budget, ...). The label is human-readable context
 * for traces and CLI output only.
 */
struct TableKey
{
    uint64_t hash = 0;
    std::string label;

    bool operator==(const TableKey& o) const { return hash == o.hash; }
};

/**
 * One evaluation request: apply the evaluator named by @p table to
 * @p elements floats at @p input, writing @p elements floats to
 * @p output. Both spans must stay valid until the pipeline run that
 * consumed the request returns.
 */
struct Request
{
    uint64_t id = 0; ///< assigned by BatchQueue::push
    TableKey table;
    /** Owning tenant: requests of different tenants never share a
     * wave (their SLAs — and thus the tuner's table choice — may
     * differ). The default tenant 0 keeps single-tenant workloads
     * byte-identical to the pre-tenant queue. */
    uint64_t tenant = 0;
    const float* input = nullptr;
    float* output = nullptr;
    uint64_t elements = 0;
    /** Modeled arrival time (seconds). The producer stamps it — trace
     * replay uses offered timestamps, synthetic load uses 0 — and the
     * journal's queue-wait accounting measures from it. Never a wall
     * clock, so latency records are bit-identical at any thread
     * count. */
    double arrivalSeconds = 0.0;
};

/** A contiguous piece of one request scheduled into a wave. */
struct WaveItem
{
    uint64_t requestId = 0;
    const float* input = nullptr;
    float* output = nullptr;
    uint64_t elements = 0;
    double arrivalSeconds = 0.0; ///< copied from the parent request
    /** True iff this item carries the *tail* of its request — the
     * queue set it when the sweep fully consumed the request. The
     * pipeline uses it (plus element accounting) to detect request
     * completion without a queue round-trip. */
    bool last = false;
};

/** One batched unit of work: same-table items, at most the element
 * budget the pipeline asked for. */
struct Wave
{
    TableKey table;
    uint64_t tenant = 0; ///< every item's owner (waves are per-tenant)
    std::vector<WaveItem> items;
    /** Requests fully consumed from the queue while building this
     * wave (partials still queued do not count). */
    uint32_t requestsClosed = 0;

    uint64_t
    elements() const
    {
        uint64_t n = 0;
        for (const WaveItem& it : items)
            n += it.elements;
        return n;
    }
};

/**
 * The multi-producer / single-consumer queue. push() never blocks;
 * popWave() blocks until a request is available or the queue has been
 * closed and drained.
 */
class BatchQueue
{
  public:
    /** Enqueue @p request (its id field is overwritten).
     * @return the assigned monotonically increasing request id. */
    uint64_t push(Request request);

    /**
     * Build the next wave with at most @p maxElements elements.
     * Blocks while the queue is empty and open; returns std::nullopt
     * once the queue is closed and fully drained. @p maxElements of 0
     * is treated as 1 (a wave always makes progress).
     */
    std::optional<Wave> popWave(uint64_t maxElements);

    /** Mark the end of input: once drained, popWave returns nullopt
     * and further push() calls are rejected (return 0). */
    void close();

    bool closed() const;

    /** Requests currently queued (partially consumed ones count). */
    size_t depth() const;

    /** Elements currently queued. */
    uint64_t queuedElements() const;

    /** Total requests ever accepted by push(). */
    uint64_t totalPushed() const;

    /**
     * Attach a journal: every push() records an `enqueue` span event
     * stamped at the request's arrivalSeconds. nullptr detaches;
     * off-path costs nothing (one pointer test under the push lock).
     */
    void setJournal(obs::Journal* journal);

  private:
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<Request> queue_;
    bool closed_ = false;
    uint64_t nextId_ = 1;
    uint64_t totalPushed_ = 0;
    obs::Journal* journal_ = nullptr;
};

} // namespace serve
} // namespace sim
} // namespace tpl

#endif // TPL_PIMSIM_SERVE_BATCH_QUEUE_H
