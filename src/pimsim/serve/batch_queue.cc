/**
 * @file
 * BatchQueue implementation.
 */

#include "pimsim/serve/batch_queue.h"

#include "pimsim/obs/journal.h"

#include <algorithm>

namespace tpl {
namespace sim {
namespace serve {

uint64_t
BatchQueue::push(Request request)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_)
        return 0;
    request.id = nextId_++;
    ++totalPushed_;
    uint64_t id = request.id;
    if (journal_) {
        obs::JournalEvent ev;
        ev.kind = "enqueue";
        ev.t = request.arrivalSeconds;
        ev.request = id;
        ev.elements = request.elements;
        ev.tenant = request.tenant;
        ev.table = request.table.label;
        journal_->record(ev);
    }
    queue_.push_back(std::move(request));
    cv_.notify_one();
    return id;
}

void
BatchQueue::setJournal(obs::Journal* journal)
{
    std::lock_guard<std::mutex> lock(mutex_);
    journal_ = journal;
}

void
BatchQueue::close()
{
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    cv_.notify_all();
}

bool
BatchQueue::closed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
}

size_t
BatchQueue::depth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

uint64_t
BatchQueue::queuedElements() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    uint64_t n = 0;
    for (const Request& r : queue_)
        n += r.elements;
    return n;
}

uint64_t
BatchQueue::totalPushed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return totalPushed_;
}

std::optional<Wave>
BatchQueue::popWave(uint64_t maxElements)
{
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return !queue_.empty() || closed_; });
    if (queue_.empty())
        return std::nullopt;

    const uint64_t budget = std::max<uint64_t>(maxElements, 1);
    Wave wave;
    wave.table = queue_.front().table;
    wave.tenant = queue_.front().tenant;

    // FIFO sweep: absorb every request matching the front request's
    // table and tenant until the budget is spent. Zero-element
    // requests are closed for free; a request larger than the
    // remaining budget is consumed partially and its spans advance
    // in place.
    uint64_t taken = 0;
    for (auto it = queue_.begin(); it != queue_.end();) {
        if (!(it->table == wave.table) || it->tenant != wave.tenant) {
            ++it;
            continue;
        }
        if (it->elements == 0) {
            ++wave.requestsClosed;
            it = queue_.erase(it);
            continue;
        }
        if (taken == budget)
            break;
        uint64_t take = std::min(it->elements, budget - taken);
        const bool wholeTail = take == it->elements;
        wave.items.push_back({it->id, it->input, it->output, take,
                              it->arrivalSeconds, wholeTail});
        taken += take;
        if (wholeTail) {
            ++wave.requestsClosed;
            it = queue_.erase(it);
        } else {
            it->input += take;
            it->output += take;
            it->elements -= take;
            ++it;
        }
    }
    return wave;
}

} // namespace serve
} // namespace sim
} // namespace tpl
