/**
 * @file
 * pimserve piece 2: the table/LUT cache.
 *
 * Maps a TableKey to a TableBinding: the per-core kernel factory plus
 * the modeled footprint of the tables the configuration needs on each
 * DPU. The first lookup of a key calls the caller-supplied
 * TableProvider, which generates the tables and stages them onto
 * every core (an evaluator attach); subsequent lookups are hits and
 * let the pipeline skip the modeled MRAM table re-broadcast — the
 * cache is what makes repeated configurations cheap in a mixed
 * request stream.
 *
 * The serve layer is generic over what a "table" is: the provider is
 * the only place that knows about transpim evaluators (see
 * transpim::EvaluatorCatalog for the standard one), which keeps
 * tpl_pimserve dependent on tpl_pimsim alone.
 */

#ifndef TPL_PIMSIM_SERVE_TABLE_CACHE_H
#define TPL_PIMSIM_SERVE_TABLE_CACHE_H

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "pimsim/serve/batch_queue.h"
#include "pimsim/system.h"

namespace tpl {
namespace sim {
namespace serve {

/**
 * Everything the pipeline needs to run waves of one configuration.
 * An invalid binding (valid == false) marks a configuration the
 * provider could not realize (unsupported combination, tables too
 * large); it is cached too, so a stream of infeasible requests fails
 * fast instead of re-generating tables.
 */
struct TableBinding
{
    bool valid = false;

    /** Per-core table footprint in bytes. A cache miss pays one
     * modeled broadcast of this footprint: the whole-system parallel
     * rate on the flat path (lookup), or one single-rank parallel
     * pass per holding rank on the fleet path (lookupOnRank) — a
     * table is broadcast once per rank that hosts it, never once per
     * DPU. */
    uint32_t tableBytes = 0;

    /** Builds the kernel evaluating one wave slice (reuses the
     * ShardTask shape: dpu, in/out MRAM addresses, element count). */
    ShardKernelFactory makeKernel;

    /** Opaque owner of whatever the kernels reference (evaluators,
     * tables); kept alive as long as the cache entry lives. */
    std::shared_ptr<void> state;
};

/**
 * Resolves a key to a binding, staging any tables onto the cores of
 * @p system. Called once per distinct key per TableCache; must return
 * an invalid binding (not throw) for infeasible configurations.
 */
using TableProvider =
    std::function<TableBinding(const TableKey&, PimSystem&)>;

/** The per-pipeline cache. Single-consumer, like the pipeline. */
class TableCache
{
  public:
    TableCache(PimSystem& system, TableProvider provider)
        : system_(system), provider_(std::move(provider))
    {
    }

    /** Result of a lookup: the binding plus whether the provider had
     * to be consulted (a miss pays the table broadcast). */
    struct Lookup
    {
        const TableBinding* binding = nullptr;
        bool miss = false;
    };

    Lookup lookup(const TableKey& key);

    /**
     * Arm per-rank residency tracking for a fleet of @p ranks ranks.
     * Resets any prior residency state; rank 0..ranks-1 become valid
     * arguments to lookupOnRank/residentOnRank/residency.
     */
    void setRankCount(uint32_t ranks);

    /** Result of a fleet-path lookup: the binding, whether the
     * provider had to generate tables (first sighting fleet-wide),
     * and whether this rank still had to receive its broadcast
     * (first sighting on the rank — the caller charges one
     * single-rank broadcast). */
    struct RankLookup
    {
        const TableBinding* binding = nullptr;
        bool providerMiss = false;
        bool rankMiss = false;
    };

    /**
     * Fleet-path lookup: resolve @p key (consulting the provider on
     * first sighting, exactly like lookup) and mark the table
     * resident on @p rank. rankMiss is set — and one rank broadcast
     * counted — when a valid binding was not yet resident there.
     */
    RankLookup lookupOnRank(const TableKey& key, uint32_t rank);

    /** Binding for @p key if cached, else nullptr. No counters move:
     * this is the scheduler's placement peek, not a lookup. */
    const TableBinding* peek(const TableKey& key) const;

    /**
     * Drop @p key from the cache (MRAM-budget arbitration): the next
     * lookup re-consults the provider and pays the table broadcast
     * again, and any per-rank residency is cleared so every holding
     * rank re-broadcasts too. The old binding object stays alive
     * until the cache is destroyed — an in-flight wave still holding
     * its pointer (one-wave decision lag in pipelined mode) keeps a
     * valid table. @return the evicted footprint in bytes (0 when
     * the key was not cached).
     */
    uint32_t evict(const TableKey& key);

    /** Evictions performed so far. */
    uint64_t evictions() const { return evictions_; }

    /** Whether @p key's table is resident on @p rank. */
    bool residentOnRank(const TableKey& key, uint32_t rank) const;

    /** Number of distinct valid tables resident on @p rank. */
    size_t residency(uint32_t rank) const;

    /** Total single-rank broadcasts charged by lookupOnRank. */
    uint64_t rankBroadcasts() const { return rankBroadcasts_; }

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }
    size_t size() const { return entries_.size(); }

  private:
    PimSystem& system_;
    TableProvider provider_;
    // Bindings live behind stable pointers: evict() retires the
    // entry instead of destroying it, so pointers handed out by
    // lookup stay valid for the cache's lifetime.
    std::map<uint64_t, std::unique_ptr<TableBinding>> entries_;
    std::vector<std::unique_ptr<TableBinding>> retired_;
    // Fleet residency: per cached table, which ranks hold it. Sized
    // lazily to rankCount_ on first touch of each entry.
    std::map<uint64_t, std::vector<bool>> resident_;
    uint32_t rankCount_ = 0;
    uint64_t rankBroadcasts_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t evictions_ = 0;
};

} // namespace serve
} // namespace sim
} // namespace tpl

#endif // TPL_PIMSIM_SERVE_TABLE_CACHE_H
