/**
 * @file
 * pimserve piece 4: the fleet scheduler.
 *
 * Drives a BatchQueue across a multi-rank/multi-DIMM Topology
 * (pimsim/topology.h). Each wave executes on exactly one rank: its
 * scatter/gather ride that rank's transfer lane (lanes of ranks on
 * distinct memory channels overlap; the ranks of one DIMM serialize
 * on their shared channel), its compute rides the rank's own DPU
 * lanes, and each rank runs the same two-deep double-buffered
 * software pipeline as the flat ServePipeline — so the fleet
 * makespan is the max over ranks of each rank's timeline.
 *
 * Placement balances hot tables through per-rank TableCache
 * residency: a wave prefers the least-busy rank already holding its
 * table, spreads first sightings onto the least-loaded rank, and
 * replicates a table to a fresh rank when the backlog gap on the
 * holding ranks exceeds the cost of one single-rank broadcast. A
 * table is broadcast once per holding rank — never once per DPU.
 *
 * Degradation composes with pimfault per rank: slices lost to masked
 * DPUs are re-queued as retry waves that the placement step is free
 * to move to any healthy rank, so a fully-masked rank's work
 * re-shards onto the survivors; with every rank dead the remaining
 * elements are dropped and the run reports incomplete, exactly like
 * the flat path.
 *
 * Run a fleet through ServePipeline by setting
 * PipelineOptions::topology — ServePipeline::run dispatches here and
 * the flat path stays bit-identical when the pointer is null. With
 * Topology{1, 1, N} this scheduler reproduces the flat pipeline's
 * modeled numbers exactly (one rank, one channel, same leg order).
 */

#ifndef TPL_PIMSIM_SERVE_FLEET_H
#define TPL_PIMSIM_SERVE_FLEET_H

#include "pimsim/serve/pipeline.h"
#include "pimsim/topology.h"

namespace tpl {
namespace sim {
namespace serve {

/**
 * The fleet wave executor. Normally constructed by
 * ServePipeline::run when PipelineOptions::topology is set; usable
 * directly by tests. @p options.topology must be non-null, valid,
 * and describe exactly @p system.numDpus() DPUs; @p cache is the
 * owning pipeline's table cache (its per-rank residency is re-armed
 * by each run).
 */
class FleetScheduler
{
  public:
    FleetScheduler(PimSystem& system, TableCache& cache,
                   const PipelineOptions& options);

    /** Serve every request in @p queue; blocks the calling thread.
     * Mirrors ServePipeline::run, adding ServeReport::rankStats. */
    ServeReport run(BatchQueue& queue);

  private:
    PimSystem& sys_;
    TableCache& cache_;
    const PipelineOptions& opts_;
    const Topology& topo_;
};

} // namespace serve
} // namespace sim
} // namespace tpl

#endif // TPL_PIMSIM_SERVE_FLEET_H
