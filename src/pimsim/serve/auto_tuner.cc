/**
 * @file
 * TenantSla grammar (parse/print), following the SloSpec idiom: a
 * char-pointer walk over strtod, no allocation on the happy path,
 * malformed input leaves the output untouched.
 */

#include "pimsim/serve/auto_tuner.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace tpl {
namespace sim {
namespace serve {

AutoTuner::~AutoTuner() = default;

bool
TenantSla::parse(const std::string& text, TenantSla& out)
{
    TenantSla sla;
    const char* p = text.c_str();
    if (*p == '\0')
        return false;
    for (;;) {
        // One clause: knob name, optional ':pP' (cycles only), then
        // '<' or ':' and the value.
        double* target = nullptr;
        bool isCycles = false;
        if (std::strncmp(p, "rmse", 4) == 0) {
            target = &sla.maxRmse;
            p += 4;
        } else if (std::strncmp(p, "ulp", 3) == 0) {
            target = &sla.maxUlp;
            p += 3;
        } else if (std::strncmp(p, "cycles", 6) == 0) {
            target = &sla.maxCyclesPerElement;
            isCycles = true;
            p += 6;
        } else {
            return false;
        }
        if (isCycles && p[0] == ':' && (p[1] == 'p' || p[1] == 'P')) {
            const char* q = p + 2;
            char* end = nullptr;
            const double pct = std::strtod(q, &end);
            if (end == q || !(pct > 0.0) || !(pct < 100.0))
                return false;
            sla.cyclesPercentile = pct;
            p = end;
        }
        if (*p != '<' && *p != ':')
            return false;
        ++p;
        char* end = nullptr;
        const double value = std::strtod(p, &end);
        if (end == p || !(value > 0.0))
            return false;
        if (*target > 0.0)
            return false; // duplicate clause
        *target = value;
        p = end;
        if (*p == '\0')
            break;
        if (*p != ';')
            return false;
        ++p;
    }
    if (!sla.constrained())
        return false;
    out = sla;
    return true;
}

std::string
TenantSla::toText() const
{
    std::string out;
    char buf[64];
    auto append = [&]() {
        if (!out.empty())
            out += ';';
        out += buf;
    };
    if (maxRmse > 0.0) {
        std::snprintf(buf, sizeof(buf), "rmse<%g", maxRmse);
        append();
    }
    if (maxUlp > 0.0) {
        std::snprintf(buf, sizeof(buf), "ulp<%g", maxUlp);
        append();
    }
    if (maxCyclesPerElement > 0.0) {
        if (cyclesPercentile > 0.0)
            std::snprintf(buf, sizeof(buf), "cycles:p%g<%g",
                          cyclesPercentile, maxCyclesPerElement);
        else
            std::snprintf(buf, sizeof(buf), "cycles<%g",
                          maxCyclesPerElement);
        append();
    }
    return out;
}

} // namespace serve
} // namespace sim
} // namespace tpl
