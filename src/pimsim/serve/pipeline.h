/**
 * @file
 * pimserve piece 3: the double-buffered execution pipeline.
 *
 * Pops waves off a BatchQueue and drives them through scatter ->
 * launch -> gather on a PimSystem, with every wave's modeled cost
 * reserved on a PipelineTimeline instead of summed sequentially: the
 * host-interface lane streams the scatter of wave N+1 and the gather
 * of wave N-1 while the DPU lanes compute wave N. Per-DPU MRAM
 * buffers are double-buffered (parity = wave index mod 2), so a
 * wave's scatter only waits for the compute two waves back that last
 * read its buffer — the classic ping-pong schedule of the UPMEM
 * async API.
 *
 * Degradation composes with pimfault: a DPU masked mid-pipeline
 * (dead transfer leg, hard launch failure, fenced straggler) fails
 * exactly the slices it owned; those elements are re-queued as a
 * retry wave over the surviving cores, bounded by
 * PipelineOptions::maxRetryWaves — the pipeline degrades or reports
 * incomplete, it never deadlocks.
 *
 * Synchronous mode (pipelined = false) issues the identical legs but
 * chains every reservation on the previous one, reproducing the
 * blocking transfer->launch->gather round trip; the pipelined
 * speedup and overlap fraction in ServeReport compare the two.
 */

#ifndef TPL_PIMSIM_SERVE_PIPELINE_H
#define TPL_PIMSIM_SERVE_PIPELINE_H

#include <cstdint>
#include <vector>

#include "pimsim/serve/batch_queue.h"
#include "pimsim/serve/cost_book.h"
#include "pimsim/serve/table_cache.h"
#include "pimsim/system.h"
#include "pimsim/topology.h"

namespace tpl {
namespace sim {
namespace serve {

class AutoTuner;

/** Pipeline knobs. */
struct PipelineOptions
{
    /** Tasklets per DPU kernel launch. */
    uint32_t numTasklets = 16;

    /**
     * Element capacity of one per-DPU wave slice; a wave batches at
     * most perDpuElements * healthyDpus elements. Each DPU holds two
     * input and two output MRAM buffers of this many floats.
     */
    uint32_t perDpuElements = 512;

    /** Double-buffered overlap (true) or the synchronous baseline
     * schedule (false). Data results are identical; only the modeled
     * timeline differs. */
    bool pipelined = true;

    /** Times one wave's elements may be re-queued after failures
     * before they are dropped and the run reports incomplete. */
    uint32_t maxRetryWaves = 6;

    /**
     * Cost certificates for cost-aware wave sizing (kill switch:
     * nullptr, the default, reproduces the cost-oblivious schedule
     * bit-for-bit). When set and a popped wave's table has a
     * certified WaveCost, the pipeline predicts the double-buffered
     * makespan of running the wave whole versus split into 2/4/8
     * equal sub-waves — using the same transfer model and timeline
     * rules the run itself is charged with — and issues the fastest
     * shape. Splitting changes only the modeled schedule (outputs are
     * computed per element either way); tables without an entry run
     * unsplit. Only consulted in pipelined mode. The caller keeps the
     * book alive for the pipeline's lifetime.
     */
    const CostBook* costBook = nullptr;

    /**
     * Request journal (kill switch: nullptr, the default). When set,
     * the pipeline stamps per-request causal events (coalesce /
     * scatter / compute / gather / done / drop) and a fully-decomposed
     * RequestLatency per request, all in modeled time read off the
     * PipelineTimeline — bit-identical at any thread count and
     * statistics-neutral (the modeled schedule never consults it).
     * The caller keeps the journal alive for the run. Pair with
     * BatchQueue::setJournal to also capture enqueue events.
     */
    obs::Journal* journal = nullptr;

    /**
     * Fleet topology (kill switch: nullptr, the default, keeps
     * today's flat single-system schedule bit-for-bit at any thread
     * count). When set, valid, and describing exactly the system's
     * DPU count, run() dispatches to the FleetScheduler (see
     * serve/fleet.h): waves are placed per rank, transfers ride
     * per-rank lanes that overlap across memory channels, tables are
     * broadcast once per holding rank, and ServeReport::rankStats is
     * filled. A topology whose numDpus() does not match the system
     * falls back to the flat path. The caller keeps the object alive
     * for the pipeline's lifetime.
     */
    const Topology* topology = nullptr;

    /**
     * Online per-tenant auto-tuner (kill switch: nullptr, the
     * default, keeps the untuned path bit-identical — including
     * journal bytes — at any TPL_SIM_THREADS, like costBook and
     * topology before it; locked by test). When set, both serve
     * drivers route every generation-0 wave through
     * AutoTuner::route() — which may rewrite the wave's table to a
     * cheaper configuration meeting the owning tenant's SLA — and
     * feed AutoTuner::observe() each wave's exact gathered outputs
     * and modeled cycles after its gather. Switched waves journal a
     * `tune` event. The caller keeps the tuner alive for the run;
     * the tuner is stateful, so use a fresh instance per replay.
     */
    AutoTuner* autoTuner = nullptr;

    /**
     * Straggler detector threshold: a wave is flagged anomalous when
     * its slowest participating DPU exceeds stragglerFactor × the
     * wave's median per-DPU cycles (upper median; waves with fewer
     * than two slices or a zero median are never flagged). Detection
     * is a pure function of modeled cycles, so it is deterministic
     * and always on; <= 1 effectively flags every uneven wave.
     */
    double stragglerFactor = 4.0;
};

/** Modeled timing of one executed wave. */
struct WaveStats
{
    uint64_t elements = 0;
    uint32_t slices = 0;       ///< DPUs that received a slice
    bool tableMiss = false;    ///< paid a table broadcast
    double broadcastSeconds = 0.0;
    double scatterSeconds = 0.0;
    double computeSeconds = 0.0; ///< slowest healthy core
    double gatherSeconds = 0.0;
    uint64_t maxCycles = 0;    ///< slowest healthy core, cycles
    /** Sum of every participating DPU's cycles (what the tuner
     * charges a configuration with, fleet-wide work not makespan). */
    uint64_t totalCycles = 0;
    uint32_t retriedSlices = 0; ///< slices lost to masked cores
    /** Upper median of the participating DPUs' cycle counts. */
    uint64_t medianCycles = 0;
    /** DPUs whose cycles exceeded stragglerFactor × medianCycles;
     * nonzero iff the wave was flagged anomalous. */
    uint32_t stragglerDpus = 0;
};

/** Per-rank slice of a fleet run (ServeReport::rankStats; filled
 * only on the topology path). */
struct RankStats
{
    uint32_t rank = 0;
    uint64_t waves = 0;    ///< waves executed on this rank
    uint64_t elements = 0; ///< elements those waves carried
    uint64_t computeCycles = 0; ///< sum of per-wave max cycles
    /** Latest completion on the rank's lanes (transfer + DPU);
     * the fleet makespan is the max of these. */
    double makespanSeconds = 0.0;
    uint64_t residentTables = 0; ///< distinct tables held at run end
    uint64_t broadcasts = 0; ///< single-rank table broadcasts paid
};

/** Outcome of one ServePipeline::run. */
struct ServeReport
{
    bool complete = false;   ///< every admitted element produced output
    uint64_t requests = 0;   ///< requests fully consumed
    uint64_t elements = 0;   ///< elements admitted into waves
    uint64_t waves = 0;      ///< executed waves (retries included)
    uint64_t cacheHits = 0;  ///< table-cache hits
    uint64_t cacheMisses = 0;
    uint64_t infeasibleElements = 0; ///< dropped: no valid binding
    uint64_t droppedElements = 0; ///< dropped: retry budget/no cores
    double modeledSeconds = 0.0; ///< pipeline timeline makespan
    double syncSeconds = 0.0; ///< sum of leg durations (no overlap)
    std::vector<uint32_t> failedDpus; ///< cores masked during the run
    uint64_t reshardedElements = 0; ///< elements re-queued off them
    uint64_t computeCycles = 0; ///< sum of per-wave max cycles
    /** Waves flagged by the straggler detector (see
     * PipelineOptions::stragglerFactor). */
    uint64_t anomalousWaves = 0;
    std::vector<WaveStats> waveStats;
    /** Per-rank accounting; empty on the flat (topology == nullptr)
     * path. */
    std::vector<RankStats> rankStats;

    /** Fraction of the synchronous schedule hidden by overlap. */
    double
    overlapFraction() const
    {
        return syncSeconds > 0.0 ? 1.0 - modeledSeconds / syncSeconds
                                 : 0.0;
    }

    /** Synchronous over pipelined modeled time. */
    double
    speedup() const
    {
        return modeledSeconds > 0.0 ? syncSeconds / modeledSeconds
                                    : 0.0;
    }

    /** Sustained modeled throughput of the run. */
    double
    elementsPerSecond() const
    {
        return modeledSeconds > 0.0
                   ? static_cast<double>(elements) / modeledSeconds
                   : 0.0;
    }
};

/**
 * The wave executor. Construct once per PimSystem; run() consumes a
 * queue until it is closed and drained. The queue must eventually be
 * closed (by the producers or the caller), otherwise run() waits for
 * more requests indefinitely — that is the queue contract, not a
 * pipeline stall: every admitted wave always completes or degrades.
 */
class ServePipeline
{
  public:
    ServePipeline(PimSystem& system, TableProvider provider,
                  const PipelineOptions& options = {});

    /** Serve every request in @p queue; blocks the calling thread. */
    ServeReport run(BatchQueue& queue);

    const TableCache& cache() const { return cache_; }
    const PipelineOptions& options() const { return opts_; }

  private:
    PimSystem& sys_;
    TableCache cache_;
    PipelineOptions opts_;
    uint64_t wavesExecuted_ = 0; ///< across runs; parity source
};

} // namespace serve
} // namespace sim
} // namespace tpl

#endif // TPL_PIMSIM_SERVE_PIPELINE_H
