/**
 * @file
 * TableCache implementation.
 */

#include "pimsim/serve/table_cache.h"

#include "pimsim/obs/metrics.h"

namespace tpl {
namespace sim {
namespace serve {

TableCache::Lookup
TableCache::lookup(const TableKey& key)
{
    obs::Registry& reg = obs::Registry::global();
    auto it = entries_.find(key.hash);
    if (it != entries_.end()) {
        ++hits_;
        if (reg.enabled())
            reg.counter("serve/lut_cache/hits").add(1);
        return {&it->second, false};
    }
    ++misses_;
    if (reg.enabled())
        reg.counter("serve/lut_cache/misses").add(1);
    TableBinding binding =
        provider_ ? provider_(key, system_) : TableBinding{};
    auto [pos, inserted] =
        entries_.emplace(key.hash, std::move(binding));
    (void)inserted;
    return {&pos->second, true};
}

void
TableCache::setRankCount(uint32_t ranks)
{
    rankCount_ = ranks;
    resident_.clear();
    rankBroadcasts_ = 0;
}

TableCache::RankLookup
TableCache::lookupOnRank(const TableKey& key, uint32_t rank)
{
    RankLookup out;
    auto it = entries_.find(key.hash);
    if (it == entries_.end()) {
        Lookup first = lookup(key); // provider path + hit/miss counters
        out.binding = first.binding;
        out.providerMiss = true;
    } else {
        ++hits_;
        obs::Registry& reg = obs::Registry::global();
        if (reg.enabled())
            reg.counter("serve/lut_cache/hits").add(1);
        out.binding = &it->second;
    }
    std::vector<bool>& res = resident_[key.hash];
    if (res.size() < rankCount_)
        res.resize(rankCount_, false);
    if (out.binding->valid && rank < res.size() && !res[rank]) {
        res[rank] = true;
        out.rankMiss = true;
        ++rankBroadcasts_;
        obs::Registry& reg = obs::Registry::global();
        if (reg.enabled())
            reg.counter("serve/lut_cache/rank_broadcasts").add(1);
    }
    return out;
}

const TableBinding*
TableCache::peek(const TableKey& key) const
{
    auto it = entries_.find(key.hash);
    return it == entries_.end() ? nullptr : &it->second;
}

bool
TableCache::residentOnRank(const TableKey& key, uint32_t rank) const
{
    auto it = resident_.find(key.hash);
    return it != resident_.end() && rank < it->second.size() &&
           it->second[rank];
}

size_t
TableCache::residency(uint32_t rank) const
{
    size_t n = 0;
    for (const auto& [hash, res] : resident_)
        if (rank < res.size() && res[rank])
            ++n;
    return n;
}

} // namespace serve
} // namespace sim
} // namespace tpl
