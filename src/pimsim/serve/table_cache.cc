/**
 * @file
 * TableCache implementation.
 */

#include "pimsim/serve/table_cache.h"

#include "pimsim/obs/metrics.h"

namespace tpl {
namespace sim {
namespace serve {

TableCache::Lookup
TableCache::lookup(const TableKey& key)
{
    obs::Registry& reg = obs::Registry::global();
    auto it = entries_.find(key.hash);
    if (it != entries_.end()) {
        ++hits_;
        if (reg.enabled())
            reg.counter("serve/lut_cache/hits").add(1);
        return {it->second.get(), false};
    }
    ++misses_;
    if (reg.enabled())
        reg.counter("serve/lut_cache/misses").add(1);
    TableBinding binding =
        provider_ ? provider_(key, system_) : TableBinding{};
    auto [pos, inserted] = entries_.emplace(
        key.hash, std::make_unique<TableBinding>(std::move(binding)));
    (void)inserted;
    return {pos->second.get(), true};
}

void
TableCache::setRankCount(uint32_t ranks)
{
    rankCount_ = ranks;
    resident_.clear();
    rankBroadcasts_ = 0;
}

TableCache::RankLookup
TableCache::lookupOnRank(const TableKey& key, uint32_t rank)
{
    RankLookup out;
    auto it = entries_.find(key.hash);
    if (it == entries_.end()) {
        Lookup first = lookup(key); // provider path + hit/miss counters
        out.binding = first.binding;
        out.providerMiss = true;
    } else {
        ++hits_;
        obs::Registry& reg = obs::Registry::global();
        if (reg.enabled())
            reg.counter("serve/lut_cache/hits").add(1);
        out.binding = it->second.get();
    }
    std::vector<bool>& res = resident_[key.hash];
    if (res.size() < rankCount_)
        res.resize(rankCount_, false);
    if (out.binding->valid && rank < res.size() && !res[rank]) {
        res[rank] = true;
        out.rankMiss = true;
        ++rankBroadcasts_;
        obs::Registry& reg = obs::Registry::global();
        if (reg.enabled())
            reg.counter("serve/lut_cache/rank_broadcasts").add(1);
    }
    return out;
}

const TableBinding*
TableCache::peek(const TableKey& key) const
{
    auto it = entries_.find(key.hash);
    return it == entries_.end() ? nullptr : it->second.get();
}

uint32_t
TableCache::evict(const TableKey& key)
{
    auto it = entries_.find(key.hash);
    if (it == entries_.end())
        return 0;
    const uint32_t bytes = it->second->tableBytes;
    // Retire, don't destroy: in-flight waves may still reference the
    // binding (kernels capture evaluator state by shared_ptr, but
    // the pipeline holds the raw binding pointer).
    retired_.push_back(std::move(it->second));
    entries_.erase(it);
    resident_.erase(key.hash);
    ++evictions_;
    obs::Registry& reg = obs::Registry::global();
    if (reg.enabled())
        reg.counter("serve/lut_cache/evictions").add(1);
    return bytes;
}

bool
TableCache::residentOnRank(const TableKey& key, uint32_t rank) const
{
    auto it = resident_.find(key.hash);
    return it != resident_.end() && rank < it->second.size() &&
           it->second[rank];
}

size_t
TableCache::residency(uint32_t rank) const
{
    size_t n = 0;
    for (const auto& [hash, res] : resident_)
        if (rank < res.size() && res[rank])
            ++n;
    return n;
}

} // namespace serve
} // namespace sim
} // namespace tpl
