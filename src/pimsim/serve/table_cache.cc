/**
 * @file
 * TableCache implementation.
 */

#include "pimsim/serve/table_cache.h"

#include "pimsim/obs/metrics.h"

namespace tpl {
namespace sim {
namespace serve {

TableCache::Lookup
TableCache::lookup(const TableKey& key)
{
    obs::Registry& reg = obs::Registry::global();
    auto it = entries_.find(key.hash);
    if (it != entries_.end()) {
        ++hits_;
        if (reg.enabled())
            reg.counter("serve/lut_cache/hits").add(1);
        return {&it->second, false};
    }
    ++misses_;
    if (reg.enabled())
        reg.counter("serve/lut_cache/misses").add(1);
    TableBinding binding =
        provider_ ? provider_(key, system_) : TableBinding{};
    auto [pos, inserted] =
        entries_.emplace(key.hash, std::move(binding));
    (void)inserted;
    return {&pos->second, true};
}

} // namespace serve
} // namespace sim
} // namespace tpl
