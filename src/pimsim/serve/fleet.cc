/**
 * @file
 * FleetScheduler implementation.
 *
 * The drive loop generalizes ServePipeline's two-deep software
 * pipeline to one in-flight wave per rank: a freshly begun wave on
 * rank r first finishes (gathers) r's previous wave, then launches —
 * which on a single rank flattens to exactly the flat pipeline's leg
 * order (begin 0, compute 0, begin 1, finish 0, compute 1, ...), so
 * a Topology{1, 1, N} fleet reproduces the flat modeled numbers. As
 * in the flat path, the wall-clock simulation is eager and all
 * bookkeeping runs on the consumer thread against modeled times, so
 * results and journal bytes are identical at any TPL_SIM_THREADS.
 */

#include "pimsim/serve/fleet.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <deque>
#include <map>
#include <optional>
#include <string>

#include "pimsim/obs/journal.h"
#include "pimsim/obs/metrics.h"
#include "pimsim/obs/trace.h"
#include "pimsim/serve/auto_tuner.h"
#include "pimsim/serve/wave_util.h"

namespace tpl {
namespace sim {
namespace serve {

FleetScheduler::FleetScheduler(PimSystem& system, TableCache& cache,
                               const PipelineOptions& options)
    : sys_(system), cache_(cache), opts_(options),
      topo_(*options.topology)
{
}

ServeReport
FleetScheduler::run(BatchQueue& queue)
{
    // Auto-tuner (kill switch), exactly as on the flat path.
    if (opts_.autoTuner)
        opts_.autoTuner->bindCache(&cache_);

    ServeReport report;
    const uint32_t n = sys_.numDpus();
    if (n == 0) {
        report.complete = queue.closed() && queue.depth() == 0;
        return report;
    }
    const uint32_t cap = std::max<uint32_t>(opts_.perDpuElements, 1);
    const double freq = sys_.model().frequencyHz;
    const uint32_t ranks = topo_.numRanks();
    cache_.setRankCount(ranks);

    obs::TraceSpan runSpan(
        "fleet run", "serve",
        obs::argsObject(
            {obs::argKv("dpus", static_cast<uint64_t>(n)),
             obs::argKv("ranks", static_cast<uint64_t>(ranks)),
             obs::argKv("per_dpu_elements",
                        static_cast<uint64_t>(cap))}));
    obs::Registry& reg = obs::Registry::global();
    obs::Tracer& tracer = obs::Tracer::global();

    // Double-buffered per-DPU MRAM, allocated in the same order as
    // the flat path so addresses (and thus data movement) match.
    const uint32_t bufBytes =
        cap * static_cast<uint32_t>(sizeof(float));
    std::vector<std::array<uint32_t, 2>> inAddr(n), outAddr(n);
    for (uint32_t d = 0; d < n; ++d)
        for (uint32_t p = 0; p < 2; ++p) {
            inAddr[d][p] = sys_.dpu(d).mramAlloc(bufBytes);
            outAddr[d][p] = sys_.dpu(d).mramAlloc(bufBytes);
        }

    PipelineTimeline timeline(n);
    timeline.configureRanks(ranks, topo_.dpusPerRank,
                            topo_.channelMap());

    // Per-rank buffer-reuse fences (parity = per-rank wave count mod
    // 2): ranks use disjoint DPUs, so the fences are independent.
    std::vector<std::array<double, 2>> computeEndByParity(
        ranks, {0.0, 0.0});
    std::vector<std::array<double, 2>> gatherEndByParity(
        ranks, {0.0, 0.0});
    std::vector<uint64_t> rankWaves(ranks, 0); ///< parity source
    // Synchronous mode chains every leg on the previous one, fleet
    // wide — the baseline has no overlap to measure.
    double chain = 0.0;
    std::deque<PendingWave> retries;
    bool outOfCores = false;
    uint64_t waveSeq = 0; ///< execution-order wave numbering

    report.rankStats.resize(ranks);
    for (uint32_t r = 0; r < ranks; ++r)
        report.rankStats[r].rank = r;

    // ---- Request-span bookkeeping (journal / flow events) ----
    // Identical to the flat path: consumer-thread only, modeled
    // times only, never feeds back into the schedule.
    obs::Journal* const journal = opts_.journal;
    const bool trackReqs = journal != nullptr || tracer.enabled();

    struct ReqAcc
    {
        std::string table;
        double arrival = 0.0;
        double firstScatter = -1.0; ///< <0 = not scattered yet
        double completed = 0.0;
        double transferSeconds = 0.0;
        double computeSeconds = 0.0;
        uint64_t elementsTotal = 0; ///< gen-0 elements issued
        uint64_t elementsDone = 0;  ///< healthy gathered elements
        uint64_t waves = 0;
        bool sawLast = false; ///< a wave carried the request's tail
        bool complete = false;
    };
    std::map<uint64_t, ReqAcc> reqAccs;

    auto accFor = [&](const WaveReq& r,
                      const TableKey& table) -> ReqAcc& {
        auto [it, fresh] = reqAccs.try_emplace(r.id);
        if (fresh) {
            it->second.table = table.label;
            it->second.arrival = r.arrival;
        }
        return it->second;
    };

    auto jev = [&](const char* kind, double t, double dur,
                   uint64_t request, uint64_t wave, uint64_t elements,
                   uint64_t cycles, int32_t rank,
                   const std::string& table,
                   const std::string& note = {}) {
        if (!journal)
            return;
        obs::JournalEvent ev;
        ev.kind = kind;
        ev.t = t;
        ev.dur = dur;
        ev.request = request;
        ev.wave = wave;
        ev.elements = elements;
        ev.cycles = cycles;
        ev.rank = rank;
        ev.table = table;
        ev.note = note;
        journal->record(ev);
    };

    auto noteFailedDpu = [&](uint32_t d) {
        if (std::find(report.failedDpus.begin(),
                      report.failedDpus.end(),
                      d) == report.failedDpus.end())
            report.failedDpus.push_back(d);
    };

    /** Healthy DPUs of one rank, ascending. */
    auto healthyOfRank = [&](uint32_t r) {
        std::vector<uint32_t> out;
        const uint32_t lo = topo_.firstDpuOfRank(r);
        const uint32_t hi = std::min(n, lo + topo_.dpusPerRank);
        for (uint32_t d = lo; d < hi; ++d)
            if (!sys_.isMasked(d))
                out.push_back(d);
        return out;
    };

    /** Largest healthy-DPU count of any rank (wave pop budget). */
    auto maxHealthyPerRank = [&]() {
        uint32_t best = 0;
        for (uint32_t r = 0; r < ranks; ++r)
            best = std::max(
                best,
                static_cast<uint32_t>(healthyOfRank(r).size()));
        return best;
    };

    /** Next wave to execute: pending retries first, then the queue.
     * Waves are sized for one rank — the placement step later picks
     * which. */
    auto nextWave = [&]() -> std::optional<PendingWave> {
        for (;;) {
            if (!retries.empty()) {
                PendingWave pw = std::move(retries.front());
                retries.pop_front();
                return pw;
            }
            uint32_t healthy = maxHealthyPerRank();
            if (healthy == 0) {
                outOfCores = true;
                return std::nullopt;
            }
            auto w = queue.popWave(
                static_cast<uint64_t>(cap) * healthy);
            if (!w)
                return std::nullopt;
            report.requests += w->requestsClosed;
            if (tracer.enabled())
                tracer.counterValue(
                    "serve/queue_depth", "serve",
                    static_cast<double>(queue.depth()));
            if (reg.enabled())
                reg.histogram("serve/queue/depth")
                    .observe(queue.depth());
            if (w->items.empty())
                continue; // zero-element requests only
            report.elements += w->elements();

            // Auto-tuner routing: fresh generation-0 waves only,
            // identical to the flat path.
            std::string tuneNote;
            if (opts_.autoTuner) {
                AutoTuner::Routing tr =
                    opts_.autoTuner->route(w->table, w->tenant);
                // `switched` only marks the first wave after a route
                // change (it drives the `tune` journal event); every
                // wave runs whatever table route() picked.
                if (tr.table.hash != w->table.hash &&
                    reg.enabled())
                    reg.counter("tuner/rerouted_waves").add(1);
                w->table = tr.table;
                if (tr.switched)
                    tuneNote = std::move(tr.note);
            }

            // Cost-aware wave sizing, identical to the flat path
            // (the wave runs on one rank's cores either way).
            if (opts_.costBook && opts_.pipelined) {
                const WaveCost* wc = opts_.costBook->find(w->table);
                uint64_t waveElems = w->elements();
                if (wc && healthy > 0 && waveElems > 1) {
                    uint32_t bestK = 1;
                    double best = predictSplitMakespan(
                        waveElems, 1, healthy, cap, *wc, sys_, freq);
                    for (uint32_t k : {2u, 4u, 8u}) {
                        if (waveElems / k < healthy)
                            break; // sub-slices would degenerate
                        double m = predictSplitMakespan(
                            waveElems, k, healthy, cap, *wc, sys_,
                            freq);
                        if (m < best * (1.0 - 1e-9)) {
                            best = m;
                            bestK = k;
                        }
                    }
                    if (bestK > 1) {
                        uint64_t base = waveElems / bestK;
                        uint64_t rem = waveElems % bestK;
                        Wave rest = std::move(*w);
                        std::vector<Wave> pieces;
                        for (uint32_t i = 0; i + 1 < bestK; ++i)
                            pieces.push_back(takeWaveHead(
                                rest, base + (i < rem ? 1 : 0)));
                        pieces.push_back(std::move(rest));
                        for (auto it = pieces.rbegin();
                             it != pieces.rend(); ++it)
                            retries.push_front(
                                PendingWave{std::move(*it), 0});
                        // Retries was empty here; the tune note
                        // rides on the first split piece.
                        retries.front().tuneNote =
                            std::move(tuneNote);
                        if (reg.enabled())
                            reg.counter("serve/cost/split_waves")
                                .add(1);
                        continue;
                    }
                }
            }
            PendingWave pw{std::move(*w), 0};
            pw.tuneNote = std::move(tuneNote);
            return pw;
        }
    };

    /**
     * Placement: pick the rank a wave of @p key runs on.
     *   1. Only ranks with a healthy DPU are candidates (none ->
     *      nullopt, the fleet is out of cores).
     *   2. A known valid table prefers the least-busy rank already
     *      holding it — unless the least-busy rank overall is ahead
     *      by more than one single-rank broadcast, in which case the
     *      table replicates there (the broadcast pays for itself).
     *   3. A table with no holder (or unknown/infeasible) goes to
     *      the candidate with the fewest resident tables, ties
     *      broken by load then rank id — first sightings spread.
     * Busy-ness is the rank's modeled makespan so far; everything
     * here is a pure function of modeled state (deterministic).
     */
    auto placeRank =
        [&](const TableKey& key) -> std::optional<uint32_t> {
        std::optional<uint32_t> bestAll;
        double bestAllBusy = 0.0;
        std::optional<uint32_t> bestRes;
        double bestResBusy = 0.0;
        std::optional<uint32_t> bestFresh;
        size_t bestFreshRes = 0;
        double bestFreshBusy = 0.0;
        const TableBinding* binding = cache_.peek(key);
        const bool known = binding && binding->valid;
        for (uint32_t r = 0; r < ranks; ++r) {
            if (healthyOfRank(r).empty())
                continue;
            double busy = timeline.rankMakespan(r);
            if (!bestAll || busy < bestAllBusy) {
                bestAll = r;
                bestAllBusy = busy;
            }
            if (known && cache_.residentOnRank(key, r)) {
                if (!bestRes || busy < bestResBusy) {
                    bestRes = r;
                    bestResBusy = busy;
                }
            } else {
                size_t res = cache_.residency(r);
                if (!bestFresh || res < bestFreshRes ||
                    (res == bestFreshRes && busy < bestFreshBusy)) {
                    bestFresh = r;
                    bestFreshRes = res;
                    bestFreshBusy = busy;
                }
            }
        }
        if (!bestAll)
            return std::nullopt;
        if (!known)
            return bestAll;
        if (!bestRes)
            return bestFresh ? bestFresh : bestAll;
        double bcast =
            sys_.rankParallelTransferSeconds(binding->tableBytes);
        if (bestResBusy - bestAllBusy > bcast)
            return bestAll; // replicate: the broadcast pays off
        return bestRes;
    };

    /** Resolve the binding on @p rank and reserve scatter (+ one
     * single-rank table broadcast when the rank does not hold the
     * table yet). Returns false when the wave cannot run at all. */
    auto beginWave = [&](uint32_t rank, PendingWave&& pw,
                         WaveExec& ex) -> bool {
        std::string tuneNote = std::move(pw.tuneNote);
        ex.wave = std::move(pw.wave);
        ex.generation = pw.generation;
        ex.parity = static_cast<uint32_t>(rankWaves[rank] % 2);

        TableCache::RankLookup found =
            cache_.lookupOnRank(ex.wave.table, rank);
        ex.binding = found.binding;
        ex.stats.tableMiss = found.rankMiss;
        uint64_t waveElems = ex.wave.elements();
        if (!ex.binding || !ex.binding->valid) {
            report.infeasibleElements += waveElems;
            if (trackReqs)
                for (const WaveReq& r : collectWaveReqs(ex.wave)) {
                    ReqAcc& acc = accFor(r, ex.wave.table);
                    if (ex.generation == 0) {
                        acc.elementsTotal += r.elements;
                        acc.sawLast = acc.sawLast || r.last;
                    }
                    jev("drop", chain, 0.0, r.id,
                        obs::JournalEvent::kNoWave, r.elements, 0,
                        static_cast<int32_t>(rank),
                        ex.wave.table.label, "no valid table binding");
                }
            return false;
        }
        PipelineEvent bcastEv{};
        if (found.rankMiss && ex.binding->tableBytes > 0) {
            PipelineEvent ev = sys_.broadcastAsync(
                timeline, opts_.pipelined ? 0.0 : chain,
                ex.binding->tableBytes, static_cast<int32_t>(rank));
            ex.stats.broadcastSeconds = ev.seconds();
            bcastEv = ev;
            chain = ev.end;
            ++report.rankStats[rank].broadcasts;
        }

        // Slice across the rank's currently healthy cores. If cores
        // died since the wave was sized, the tail that no longer
        // fits is split off and re-queued ahead of everything else.
        std::vector<uint32_t> healthy = healthyOfRank(rank);
        if (healthy.empty()) {
            retries.push_front(
                PendingWave{std::move(ex.wave), ex.generation});
            if (maxHealthyPerRank() == 0)
                outOfCores = true;
            return false;
        }
        uint64_t budget =
            static_cast<uint64_t>(cap) * healthy.size();
        if (waveElems > budget) {
            Wave head = takeWaveHead(ex.wave, budget);
            retries.push_front(
                PendingWave{std::move(ex.wave), ex.generation});
            ex.wave = std::move(head);
            waveElems = ex.wave.elements();
        }

        // Pack the item inputs into one staging buffer (wave slices
        // cross item boundaries) and record the item offsets.
        ex.stagingIn.resize(waveElems);
        ex.itemStart.resize(ex.wave.items.size());
        uint64_t off = 0;
        for (size_t i = 0; i < ex.wave.items.size(); ++i) {
            const WaveItem& it = ex.wave.items[i];
            ex.itemStart[i] = off;
            std::memcpy(ex.stagingIn.data() + off, it.input,
                        it.elements * sizeof(float));
            off += it.elements;
        }

        const uint64_t per = std::min<uint64_t>(
            cap,
            (waveElems + healthy.size() - 1) / healthy.size());
        std::vector<ScatterSlice> scatter;
        uint64_t first = 0;
        for (uint32_t d : healthy) {
            if (first >= waveElems)
                break;
            uint32_t count = static_cast<uint32_t>(
                std::min<uint64_t>(per, waveElems - first));
            ShardTask t;
            t.dpu = d;
            t.inAddr = inAddr[d][ex.parity];
            t.outAddr = outAddr[d][ex.parity];
            t.firstElement = first;
            t.elements = count;
            ex.slices.push_back(t);
            scatter.push_back(
                {d, t.inAddr, ex.stagingIn.data() + first,
                 count * static_cast<uint32_t>(sizeof(float))});
            first += count;
        }
        ex.stats.elements = waveElems;
        ex.stats.slices = static_cast<uint32_t>(ex.slices.size());

        double readyAt =
            opts_.pipelined ? computeEndByParity[rank][ex.parity]
                            : chain;
        ex.scatterEv = sys_.scatterAsync(timeline, readyAt, scatter,
                                         static_cast<int32_t>(rank));
        chain = ex.scatterEv.end;
        ex.stats.scatterSeconds = ex.scatterEv.seconds();
        ex.waveIndex = waveSeq++;

        // Tuner redirect: stamped at scatter start with the tenant
        // and executing rank, exactly like the flat path.
        if (journal && !tuneNote.empty()) {
            obs::JournalEvent ev;
            ev.kind = "tune";
            ev.t = ex.scatterEv.start;
            ev.wave = ex.waveIndex;
            ev.elements = ex.stats.elements;
            ev.rank = static_cast<int32_t>(rank);
            ev.tenant = ex.wave.tenant;
            ev.table = ex.wave.table.label;
            ev.note = tuneNote;
            journal->record(ev);
        }

        // Per-request span accounting (post-split, so every element
        // is attributed to exactly the wave that carries it).
        if (trackReqs) {
            ex.reqs = collectWaveReqs(ex.wave);
            const double waveXfer =
                ex.stats.broadcastSeconds + ex.stats.scatterSeconds;
            for (const WaveReq& r : ex.reqs) {
                ReqAcc& acc = accFor(r, ex.wave.table);
                ++acc.waves;
                if (acc.firstScatter < 0.0)
                    acc.firstScatter = ex.scatterEv.start;
                acc.transferSeconds += waveXfer;
                if (ex.generation == 0) {
                    acc.elementsTotal += r.elements;
                    acc.sawLast = acc.sawLast || r.last;
                }
                if (tracer.enabled()) {
                    const std::string flowName =
                        "req " + std::to_string(r.id);
                    if (acc.waves == 1)
                        tracer.flowBegin(flowName, "serve", r.id);
                    else
                        tracer.flowStep(flowName, "serve", r.id);
                }
                jev("coalesce", ex.scatterEv.start, 0.0, r.id,
                    ex.waveIndex, r.elements, 0,
                    static_cast<int32_t>(rank), ex.wave.table.label);
                jev("scatter", ex.scatterEv.start,
                    ex.scatterEv.seconds(), r.id, ex.waveIndex,
                    r.elements, 0, static_cast<int32_t>(rank),
                    ex.wave.table.label);
            }
            if (ex.stats.tableMiss && ex.stats.broadcastSeconds > 0.0)
                jev("broadcast", bcastEv.start, bcastEv.seconds(), 0,
                    ex.waveIndex, 0, 0, static_cast<int32_t>(rank),
                    ex.wave.table.label);
        }
        ++rankWaves[rank];
        report.rankStats[rank].waves += 1;
        report.rankStats[rank].elements += waveElems;
        return true;
    };

    /** Launch the wave's kernels (the rank's DPU lanes). */
    auto computeWave = [&](uint32_t rank, WaveExec& ex) {
        std::vector<int> sliceOfDpu(n, -1);
        for (size_t s = 0; s < ex.slices.size(); ++s)
            sliceOfDpu[ex.slices[s].dpu] = static_cast<int>(s);
        double readyAt =
            opts_.pipelined
                ? std::max(ex.scatterEv.end,
                           gatherEndByParity[rank][ex.parity])
                : chain;
        ex.computeEv = sys_.launchAsync(
            timeline, readyAt, opts_.numTasklets,
            [&](uint32_t d) -> Kernel {
                int s = sliceOfDpu[d];
                if (s < 0)
                    return {};
                return ex.binding->makeKernel(ex.slices[s]);
            });
        chain = ex.computeEv.end;
        computeEndByParity[rank][ex.parity] = ex.computeEv.end;
        ex.stats.maxCycles = sys_.lastMaxCycles();
        ex.stats.computeSeconds =
            freq > 0.0
                ? static_cast<double>(ex.stats.maxCycles) / freq
                : 0.0;
        report.computeCycles += ex.stats.maxCycles;
        report.rankStats[rank].computeCycles += ex.stats.maxCycles;

        // Straggler detection: identical to the flat path, scoped to
        // the wave's own (single-rank) slices.
        const std::vector<uint64_t>& perDpu = sys_.lastLaunchCycles();
        std::vector<uint64_t> sliceCycles;
        sliceCycles.reserve(ex.slices.size());
        for (const ShardTask& t : ex.slices)
            if (t.dpu < perDpu.size())
                sliceCycles.push_back(perDpu[t.dpu]);
        for (uint64_t c : sliceCycles)
            ex.stats.totalCycles += c;
        std::sort(sliceCycles.begin(), sliceCycles.end());
        if (!sliceCycles.empty())
            ex.stats.medianCycles =
                sliceCycles[sliceCycles.size() / 2];
        if (sliceCycles.size() >= 2 && ex.stats.medianCycles > 0) {
            const double limit =
                opts_.stragglerFactor *
                static_cast<double>(ex.stats.medianCycles);
            uint32_t stragglers = 0;
            for (uint64_t c : sliceCycles)
                if (static_cast<double>(c) > limit)
                    ++stragglers;
            if (stragglers > 0) {
                ex.stats.stragglerDpus = stragglers;
                ++report.anomalousWaves;
                if (reg.enabled()) {
                    reg.counter("serve/anomaly/straggler_waves")
                        .add(1);
                    reg.counter("serve/anomaly/straggler_dpus")
                        .add(stragglers);
                }
                jev("anomaly", ex.computeEv.start,
                    ex.computeEv.seconds(), 0, ex.waveIndex,
                    ex.stats.elements, sliceCycles.back(),
                    static_cast<int32_t>(rank), ex.wave.table.label,
                    "max " + std::to_string(sliceCycles.back()) +
                        " cycles vs median " +
                        std::to_string(ex.stats.medianCycles) +
                        " across " +
                        std::to_string(sliceCycles.size()) +
                        " slices");
            }
        }

        if (trackReqs)
            for (const WaveReq& r : ex.reqs) {
                ReqAcc& acc = accFor(r, ex.wave.table);
                acc.computeSeconds += ex.computeEv.seconds();
                jev("compute", ex.computeEv.start,
                    ex.computeEv.seconds(), r.id, ex.waveIndex,
                    r.elements, ex.stats.maxCycles,
                    static_cast<int32_t>(rank),
                    ex.wave.table.label);
            }
    };

    /** Gather, distribute outputs, and re-queue failed slices (the
     * retry wave is free to land on any healthy rank). */
    auto finishWave = [&](uint32_t rank, WaveExec& ex) {
        uint64_t waveElems = ex.stats.elements;
        std::vector<float> stagingOut(waveElems);
        std::vector<GatherSlice> gather;
        for (const ShardTask& t : ex.slices)
            gather.push_back(
                {t.dpu, t.outAddr,
                 stagingOut.data() + t.firstElement,
                 t.elements *
                     static_cast<uint32_t>(sizeof(float))});
        double readyAt =
            opts_.pipelined ? ex.computeEv.end : chain;
        PipelineEvent gatherEv = sys_.gatherAsync(
            timeline, readyAt, gather, static_cast<int32_t>(rank));
        chain = gatherEv.end;
        gatherEndByParity[rank][ex.parity] = gatherEv.end;
        ex.stats.gatherSeconds = gatherEv.seconds();

        Wave retry;
        retry.table = ex.wave.table;
        retry.tenant = ex.wave.tenant;
        auto forEachItemRange =
            [&](uint64_t lo, uint64_t hi,
                const std::function<void(const WaveItem&,
                                         uint64_t waveOff,
                                         uint64_t itemOff,
                                         uint64_t count)>& fn) {
                for (size_t i = 0; i < ex.wave.items.size(); ++i) {
                    uint64_t a = ex.itemStart[i];
                    uint64_t b = a + ex.wave.items[i].elements;
                    uint64_t s = std::max(lo, a);
                    uint64_t e = std::min(hi, b);
                    if (s < e)
                        fn(ex.wave.items[i], s, s - a, e - s);
                }
            };
        std::map<uint64_t, uint64_t> gatheredByReq;
        std::vector<WaveOutcome::Span> tuneSpans;
        for (const ShardTask& t : ex.slices) {
            uint64_t lo = t.firstElement;
            uint64_t hi = lo + t.elements;
            if (!sys_.isMasked(t.dpu)) {
                forEachItemRange(
                    lo, hi,
                    [&](const WaveItem& it, uint64_t waveOff,
                        uint64_t itemOff, uint64_t count) {
                        std::memcpy(it.output + itemOff,
                                    stagingOut.data() + waveOff,
                                    count * sizeof(float));
                        if (trackReqs)
                            gatheredByReq[it.requestId] += count;
                        if (opts_.autoTuner)
                            tuneSpans.push_back(
                                {it.input + itemOff,
                                 it.output + itemOff, count});
                    });
            } else {
                ++ex.stats.retriedSlices;
                noteFailedDpu(t.dpu);
                forEachItemRange(
                    lo, hi,
                    [&](const WaveItem& it, uint64_t /*waveOff*/,
                        uint64_t itemOff, uint64_t count) {
                        retry.items.push_back(
                            {it.requestId, it.input + itemOff,
                             it.output + itemOff, count,
                             it.arrivalSeconds,
                             it.last &&
                                 itemOff + count == it.elements});
                    });
            }
        }

        if (trackReqs)
            for (const WaveReq& r : ex.reqs) {
                ReqAcc& acc = accFor(r, ex.wave.table);
                acc.transferSeconds += gatherEv.seconds();
                jev("gather", gatherEv.start, gatherEv.seconds(),
                    r.id, ex.waveIndex, r.elements, 0,
                    static_cast<int32_t>(rank),
                    ex.wave.table.label);
                auto g = gatheredByReq.find(r.id);
                if (g != gatheredByReq.end())
                    acc.elementsDone += g->second;
                if (!acc.complete && acc.sawLast &&
                    acc.elementsTotal > 0 &&
                    acc.elementsDone == acc.elementsTotal) {
                    acc.complete = true;
                    acc.completed = gatherEv.end;
                    jev("done", gatherEv.end, 0.0, r.id,
                        ex.waveIndex, acc.elementsTotal, 0,
                        static_cast<int32_t>(rank),
                        ex.wave.table.label);
                    if (tracer.enabled())
                        tracer.flowEnd("req " + std::to_string(r.id),
                                       "serve", r.id);
                }
            }
        uint64_t retryElems = retry.elements();
        if (retryElems > 0) {
            if (ex.generation + 1 > opts_.maxRetryWaves) {
                report.droppedElements += retryElems;
                if (trackReqs)
                    for (const WaveReq& r : collectWaveReqs(retry))
                        jev("drop", gatherEv.end, 0.0, r.id,
                            ex.waveIndex, r.elements, 0,
                            static_cast<int32_t>(rank),
                            retry.table.label,
                            "retry budget exhausted");
                if (reg.enabled())
                    reg.counter("serve/retry/dropped_elements")
                        .add(retryElems);
            } else {
                report.reshardedElements += retryElems;
                retries.push_back(PendingWave{std::move(retry),
                                              ex.generation + 1});
                if (reg.enabled()) {
                    reg.counter("serve/retry/waves").add(1);
                    reg.counter("serve/retry/elements")
                        .add(retryElems);
                }
            }
        }

        // Close the tuner's loop, exactly as on the flat path.
        if (opts_.autoTuner) {
            WaveOutcome oc;
            oc.table = ex.wave.table;
            oc.tenant = ex.wave.tenant;
            oc.waveIndex = ex.waveIndex;
            oc.elements = ex.stats.elements;
            oc.totalCycles = ex.stats.totalCycles;
            oc.spans = std::move(tuneSpans);
            opts_.autoTuner->observe(oc);
        }

        report.syncSeconds +=
            ex.stats.broadcastSeconds + ex.stats.scatterSeconds +
            ex.stats.computeSeconds + ex.stats.gatherSeconds;
        if (reg.enabled())
            reg.histogram("serve/wave/elements").observe(waveElems);
        report.waveStats.push_back(ex.stats);
    };

    // Drive loop: one in-flight wave per rank. Beginning a second
    // wave on a rank first finishes the rank's previous wave (its
    // gather queues behind the new scatter on the rank lane), which
    // keeps the two-deep per-rank pipeline and flattens to the flat
    // leg order on a single rank.
    std::vector<std::optional<WaveExec>> inflight(ranks);
    for (;;) {
        auto pw = nextWave();
        if (!pw) {
            // Stream exhausted *for now*: finishing the in-flight
            // waves may re-queue retry waves (a failed rank's gather
            // re-shards its lost slices), so drain and re-check
            // before concluding the run is over.
            bool drained = false;
            for (uint32_t r = 0; r < ranks; ++r)
                if (inflight[r]) {
                    finishWave(r, *inflight[r]);
                    inflight[r].reset();
                    drained = true;
                }
            if (drained)
                continue;
            break;
        }
        auto rank = placeRank(pw->wave.table);
        if (!rank) {
            outOfCores = true;
            retries.push_front(std::move(*pw));
            break;
        }
        obs::TraceSpan waveSpan(
            "wave " + std::to_string(waveSeq), "serve",
            obs::argKv("rank", static_cast<uint64_t>(*rank)));
        WaveExec ex;
        if (!beginWave(*rank, std::move(*pw), ex)) {
            if (outOfCores)
                break;
            continue; // infeasible wave: try the next one
        }
        if (opts_.pipelined) {
            if (inflight[*rank]) {
                finishWave(*rank, *inflight[*rank]);
                inflight[*rank].reset();
            }
            computeWave(*rank, ex);
            inflight[*rank] = std::move(ex);
        } else {
            computeWave(*rank, ex);
            finishWave(*rank, ex);
        }
    }
    for (uint32_t r = 0; r < ranks; ++r)
        if (inflight[r]) {
            finishWave(r, *inflight[r]);
            inflight[r].reset();
        }

    // Anything still pending when we ran out of cores is dropped.
    const double drainT = timeline.makespan();
    for (const PendingWave& pw : retries) {
        report.droppedElements += pw.wave.elements();
        if (trackReqs)
            for (const WaveReq& r : collectWaveReqs(pw.wave)) {
                ReqAcc& acc = accFor(r, pw.wave.table);
                if (pw.generation == 0) {
                    acc.elementsTotal += r.elements;
                    acc.sawLast = acc.sawLast || r.last;
                }
                jev("drop", drainT, 0.0, r.id,
                    obs::JournalEvent::kNoWave, r.elements, 0, -1,
                    pw.wave.table.label, "out of cores");
            }
    }
    retries.clear();

    report.waves = report.waveStats.size();
    report.cacheHits = cache_.hits();
    report.cacheMisses = cache_.misses();
    report.modeledSeconds = timeline.makespan();
    for (uint32_t r = 0; r < ranks; ++r) {
        report.rankStats[r].makespanSeconds = timeline.rankMakespan(r);
        report.rankStats[r].residentTables = cache_.residency(r);
    }
    report.complete = !outOfCores && report.droppedElements == 0 &&
                      report.infeasibleElements == 0 &&
                      queue.closed() && queue.depth() == 0;

    // Finalize one RequestLatency per tracked request, exactly as
    // the flat path does (request-id order, modeled times only).
    if (journal) {
        for (const auto& [id, acc] : reqAccs) {
            obs::RequestLatency lat;
            lat.request = id;
            lat.table = acc.table;
            lat.elements = acc.elementsTotal;
            lat.waves = acc.waves;
            lat.complete = acc.complete;
            lat.arrivalSeconds = acc.arrival;
            lat.firstScatterSeconds = acc.firstScatter < 0.0
                                          ? acc.arrival
                                          : acc.firstScatter;
            lat.completedSeconds = acc.completed;
            lat.queueWaitSeconds =
                lat.firstScatterSeconds - acc.arrival;
            lat.transferSeconds = acc.transferSeconds;
            lat.computeSeconds = acc.computeSeconds;
            lat.stallSeconds =
                acc.complete
                    ? (acc.completed - acc.arrival) -
                          lat.queueWaitSeconds - acc.transferSeconds -
                          acc.computeSeconds
                    : 0.0;
            journal->recordLatency(lat);
        }
    }

    if (reg.enabled()) {
        reg.counter("serve/waves").add(report.waves);
        reg.counter("serve/requests").add(report.requests);
        reg.counter("serve/elements").add(report.elements);
        reg.real("serve/modeled_seconds").add(report.modeledSeconds);
        reg.real("serve/sync_seconds").add(report.syncSeconds);
        if (report.droppedElements)
            reg.counter("serve/dropped_elements")
                .add(report.droppedElements);
    }
    if (tracer.enabled())
        tracer.counterValue("serve/queue_depth", "serve", 0.0);
    return report;
}

} // namespace serve
} // namespace sim
} // namespace tpl
