/**
 * @file
 * pimserve piece 4: calibrated compute-cost certificates for wave
 * sizing.
 *
 * The pipeline only learns how long a wave's compute leg takes *after*
 * launching it, so without outside knowledge it must run whatever the
 * queue hands it in one piece. A WaveCost is an upper-envelope model
 * of one DPU slice's modeled cycles — `fixedCycles` of per-launch
 * overhead plus `cyclesPerElement` of streaming work — produced either
 * from a static cycle-bound certificate (pimsim/analysis/bound.h, for
 * mini-ISA kernels) or from a two-point calibration run
 * (transpim/certify.h, for C++ evaluator kernels). A CostBook maps
 * serve TableKeys to those envelopes; handing one to
 * PipelineOptions::costBook lets the pipeline predict each candidate
 * wave's compute leg *before* launching and split transfer-heavy
 * waves into sub-waves that overlap better on the double-buffered
 * timeline.
 *
 * The book is advisory: it changes which waves are issued, never what
 * any element computes, and a null/empty book reproduces the
 * cost-oblivious schedule bit-for-bit.
 */

#ifndef TPL_PIMSIM_SERVE_COST_BOOK_H
#define TPL_PIMSIM_SERVE_COST_BOOK_H

#include <algorithm>
#include <cstdint>
#include <map>

#include "pimsim/serve/batch_queue.h"

namespace tpl {
namespace sim {
namespace serve {

/**
 * Upper-envelope compute cost of one per-DPU wave slice. Sound for
 * slices of at least `minElements` elements (the smaller calibration
 * point); smaller slices are charged as if they had `minElements`,
 * which stays an upper bound because modeled cycles are monotone
 * non-decreasing in the element count.
 */
struct WaveCost
{
    double cyclesPerElement = 0.0; ///< marginal streaming cost
    double fixedCycles = 0.0;      ///< per-launch overhead
    uint64_t minElements = 0;      ///< envelope validity floor

    /** Predicted modeled cycles of a slice of @p elements. */
    uint64_t
    sliceCycles(uint64_t elements) const
    {
        double n = static_cast<double>(
            std::max<uint64_t>(elements, minElements));
        double c = fixedCycles + cyclesPerElement * n;
        return c > 0.0 ? static_cast<uint64_t>(c) + 1 : 0;
    }
};

/**
 * Build an upper-envelope WaveCost from two measured (elements,
 * cycles) calibration points with @p n2 > @p n1: a linear fit whose
 * slope and intercept are inflated by @p margin (e.g. 0.25 = +25%)
 * plus @p slackCycles of absolute headroom on the intercept, valid
 * for slices of >= @p n1 elements.
 */
inline WaveCost
fitWaveCost(uint64_t n1, uint64_t c1, uint64_t n2, uint64_t c2,
            double margin, double slackCycles)
{
    WaveCost w;
    double per = (n2 > n1 && c2 > c1)
                     ? static_cast<double>(c2 - c1) /
                           static_cast<double>(n2 - n1)
                     : 0.0;
    double fixed = static_cast<double>(c1) -
                   per * static_cast<double>(n1);
    fixed = std::max(fixed, 0.0);
    w.cyclesPerElement = per * (1.0 + margin);
    w.fixedCycles = fixed * (1.0 + margin) + slackCycles;
    w.minElements = n1;
    return w;
}

/** TableKey -> WaveCost registry handed to PipelineOptions. */
class CostBook
{
  public:
    /** Register (or replace) the cost envelope of @p key. */
    void
    set(const TableKey& key, const WaveCost& cost)
    {
        entries_[key.hash] = cost;
    }

    /** The envelope of @p key, or nullptr when uncertified. */
    const WaveCost*
    find(const TableKey& key) const
    {
        auto it = entries_.find(key.hash);
        return it == entries_.end() ? nullptr : &it->second;
    }

    size_t size() const { return entries_.size(); }

  private:
    std::map<uint64_t, WaveCost> entries_;
};

} // namespace serve
} // namespace sim
} // namespace tpl

#endif // TPL_PIMSIM_SERVE_COST_BOOK_H
