/**
 * @file
 * pimserve piece 4: the online per-tenant auto-tuner seam.
 *
 * The static tuner (transpim/tuner.h) answers "which configuration
 * would be cheapest for this accuracy target" offline; this interface
 * closes the loop at serve time. The pipeline consults an AutoTuner
 * on every generation-0 wave it pops: route() may rewrite the wave's
 * TableKey to a cheaper configuration that still meets the owning
 * tenant's SLA, and observe() feeds back what actually happened —
 * exact differential error over the gathered outputs plus the
 * modeled cycles the wave cost — so decisions track observed
 * behavior, not just offline predictions.
 *
 * The serve layer stays generic: this header knows nothing about
 * evaluators or methods. The concrete tuner that generates candidate
 * configurations from the transpim catalog lives in
 * transpim/auto_tuner.h, mirroring the TableProvider /
 * EvaluatorCatalog split.
 *
 * Determinism contract: route() and observe() are called from the
 * pipeline's consumer thread only, in wave order, with inputs that
 * are pure functions of the workload (modeled cycles, gathered
 * output bytes). An implementation that derives decisions only from
 * those inputs is bit-identical at any TPL_SIM_THREADS — locked by
 * test, like the rest of the serve layer.
 */

#ifndef TPL_PIMSIM_SERVE_AUTO_TUNER_H
#define TPL_PIMSIM_SERVE_AUTO_TUNER_H

#include <cstdint>
#include <string>
#include <vector>

#include "pimsim/serve/batch_queue.h"

namespace tpl {
namespace sim {
namespace serve {

class TableCache;

/**
 * One tenant's service-level agreement, mirroring the SloSpec grammar
 * (docs/autotuner.md has the EBNF). Clauses are ';'-separated, each
 * `<knob> ('<'|':') <value>`:
 *
 *     rmse<1e-6                 observed RMSE bound
 *     ulp<8                     observed max-ULP bound
 *     cycles<450                mean modeled DPU cycles per element
 *     cycles:p99<600            per-wave cycles/element percentile
 *
 * Unset clauses (value 0) are unconstrained. A tenant with no SLA at
 * all is never re-routed — the tuner passes its requests through.
 */
struct TenantSla
{
    /** Observed-RMSE bound; 0 = unconstrained. The metric (absolute
     * or relative) follows the function, exactly like the static
     * tuner's ErrorMetric::Auto. */
    double maxRmse = 0.0;

    /** Observed max-ULP bound; 0 = unconstrained. */
    double maxUlp = 0.0;

    /** Modeled DPU cycles per element bound; 0 = unconstrained. */
    double maxCyclesPerElement = 0.0;

    /** Percentile (in (0, 100)) the cycles clause applies to over a
     * stream's per-wave cycles/element; 0 = the mean. */
    double cyclesPercentile = 0.0;

    /** Parse the grammar above; false (out untouched) on malformed
     * input or an empty clause list. */
    static bool parse(const std::string& text, TenantSla& out);

    /** Canonical text form (round-trips through parse). */
    std::string toText() const;

    /** True iff any clause is set. */
    bool
    constrained() const
    {
        return maxRmse > 0.0 || maxUlp > 0.0 ||
               maxCyclesPerElement > 0.0;
    }
};

/** One trace-visible tuner decision (also journaled as a `tune`
 * event on the first wave it redirects). */
struct TuneDecision
{
    uint64_t sequence = 0; ///< decision order within the run
    uint64_t tenant = 0;
    std::string stream; ///< requested table label (stream identity)
    std::string fromTable;
    std::string toTable;
    /** Why: "explore" | "commit" | "sla-miss" | "budget" | "evict". */
    std::string reason;
};

/**
 * What one executed wave cost and produced, fed to observe() after
 * the wave's gather. Spans cover only healthy gathered ranges, so
 * differential error is measured on real outputs — retried slices
 * are observed by the retry wave that eventually serves them.
 */
struct WaveOutcome
{
    TableKey table; ///< the configuration that actually ran
    uint64_t tenant = 0;
    uint64_t waveIndex = 0;
    uint64_t elements = 0;    ///< elements the wave carried
    uint64_t totalCycles = 0; ///< summed per-DPU modeled cycles

    /** One healthy gathered range: @p elements inputs at @p input
     * produced @p elements outputs at @p output. */
    struct Span
    {
        const float* input = nullptr;
        const float* output = nullptr;
        uint64_t elements = 0;
    };
    std::vector<Span> spans;
};

/**
 * The routing hook PipelineOptions::autoTuner points at. Both serve
 * drivers (flat ServePipeline and FleetScheduler) call it the same
 * way: bindCache() once per run, route() on every generation-0 wave
 * popped from the queue (retries keep their routed table), and
 * observe() after every wave's gather. In pipelined mode wave N+1 is
 * routed before wave N is observed — a deliberate one-wave decision
 * lag that keeps the two-deep schedule intact (docs/autotuner.md).
 */
class AutoTuner
{
  public:
    virtual ~AutoTuner();

    /** route() result: the table the wave should run with. */
    struct Routing
    {
        TableKey table;
        /** The stream's chosen table changed with this call (first
         * redirect, exploration advance, commit, SLA miss). The
         * pipeline journals a `tune` event on the wave. */
        bool switched = false;
        std::string note; ///< journal note when switched
    };

    /** Pick the configuration a (requested, tenant) wave runs with.
     * Must be pure in the observed stream state (deterministic). */
    virtual Routing route(const TableKey& requested,
                          uint64_t tenant) = 0;

    /** Feed back one executed wave's exact outputs and modeled
     * cost. */
    virtual void observe(const WaveOutcome& outcome) = 0;

    /** Called once at the start of each pipeline run with the run's
     * TableCache, enabling eviction / residency coordination for
     * MRAM-budget arbitration. Default: ignore. */
    virtual void
    bindCache(TableCache* cache)
    {
        (void)cache;
    }

    /** Every decision taken so far, in sequence order. */
    virtual std::vector<TuneDecision> decisions() const = 0;
};

} // namespace serve
} // namespace sim
} // namespace tpl

#endif // TPL_PIMSIM_SERVE_AUTO_TUNER_H
