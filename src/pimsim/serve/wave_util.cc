/**
 * @file
 * Shared wave helpers (see wave_util.h).
 */

#include "pimsim/serve/wave_util.h"

#include <algorithm>
#include <unordered_map>

namespace tpl {
namespace sim {
namespace serve {

std::vector<WaveReq>
collectWaveReqs(const Wave& w)
{
    std::vector<WaveReq> reqs;
    // Index by request id so a wave of many thousands of items stays
    // linear; output order is still first appearance in item order.
    std::unordered_map<uint64_t, size_t> index;
    index.reserve(w.items.size());
    for (const WaveItem& it : w.items) {
        auto [pos, fresh] = index.try_emplace(it.requestId, reqs.size());
        if (fresh)
            reqs.push_back(
                {it.requestId, 0, false, it.arrivalSeconds});
        WaveReq& r = reqs[pos->second];
        r.elements += it.elements;
        r.last = r.last || it.last;
    }
    return reqs;
}

Wave
takeWaveHead(Wave& w, uint64_t budget)
{
    Wave head;
    head.table = w.table;
    head.tenant = w.tenant;
    std::vector<WaveItem> tail;
    uint64_t off = 0;
    for (WaveItem& it : w.items) {
        if (off >= budget) {
            tail.push_back(it);
        } else if (off + it.elements <= budget) {
            head.items.push_back(it);
        } else {
            uint64_t take = budget - off;
            // The `last` flag follows the request's tail: it stays on
            // the remainder, never the split-off head.
            head.items.push_back({it.requestId, it.input, it.output,
                                  take, it.arrivalSeconds, false});
            tail.push_back({it.requestId, it.input + take,
                            it.output + take, it.elements - take,
                            it.arrivalSeconds, it.last});
        }
        off += it.elements;
    }
    w.items = std::move(tail);
    return head;
}

double
predictSplitMakespan(uint64_t elems, uint32_t k, uint32_t healthy,
                     uint32_t cap, const WaveCost& cost,
                     PimSystem& sys, double freq)
{
    std::vector<uint64_t> part(k);
    uint64_t base = elems / k, rem = elems % k;
    for (uint32_t i = 0; i < k; ++i)
        part[i] = base + (i < rem ? 1 : 0);

    auto xferSeconds = [&](uint64_t e) {
        return sys.serialTransferSeconds(e * sizeof(float));
    };
    auto computeSeconds = [&](uint64_t e) {
        uint64_t perSlice =
            std::min<uint64_t>(cap, (e + healthy - 1) / healthy);
        return freq > 0.0 ? static_cast<double>(
                                cost.sliceCycles(perSlice)) /
                                freq
                          : 0.0;
    };

    double host = 0.0, dpuFree = 0.0;
    double computeByParity[2] = {0.0, 0.0};
    double gatherByParity[2] = {0.0, 0.0};
    std::vector<double> scatterEnd(k, 0.0);
    host = std::max(computeByParity[0], host) + xferSeconds(part[0]);
    scatterEnd[0] = host;
    double makespan = host;
    for (uint32_t i = 0; i < k; ++i) {
        uint32_t parity = i % 2;
        double ready =
            std::max(scatterEnd[i], gatherByParity[parity]);
        dpuFree = std::max(ready, dpuFree) + computeSeconds(part[i]);
        computeByParity[parity] = dpuFree;
        if (i + 1 < k) {
            double sStart =
                std::max(computeByParity[(i + 1) % 2], host);
            host = sStart + xferSeconds(part[i + 1]);
            scatterEnd[i + 1] = host;
        }
        host = std::max(dpuFree, host) + xferSeconds(part[i]);
        gatherByParity[parity] = host;
        makespan = std::max(makespan, host);
    }
    return makespan;
}

} // namespace serve
} // namespace sim
} // namespace tpl
