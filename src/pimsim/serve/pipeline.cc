/**
 * @file
 * ServePipeline implementation.
 *
 * The drive loop is a two-deep software pipeline over the modeled
 * timeline: while wave N is "computing" (its cycles reserved on the
 * DPU lanes), the host lane already streams wave N+1's scatter, and
 * wave N's gather queues up behind it. The wall-clock simulation is
 * eager — each leg simulates fully when issued — so issue order only
 * decides how legs queue on the modeled lanes, never what they
 * compute; results are bit-identical between pipelined and
 * synchronous modes (fault-free), and across TPL_SIM_THREADS.
 */

#include "pimsim/serve/pipeline.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <deque>
#include <map>
#include <optional>
#include <string>

#include "pimsim/obs/journal.h"
#include "pimsim/obs/metrics.h"
#include "pimsim/obs/trace.h"
#include "pimsim/serve/auto_tuner.h"
#include "pimsim/serve/fleet.h"
#include "pimsim/serve/wave_util.h"

namespace tpl {
namespace sim {
namespace serve {

ServePipeline::ServePipeline(PimSystem& system, TableProvider provider,
                             const PipelineOptions& options)
    : sys_(system), cache_(system, std::move(provider)), opts_(options)
{
}

ServeReport
ServePipeline::run(BatchQueue& queue)
{
    // Fleet dispatch (kill switch): with a valid topology matching
    // the system's DPU count, the FleetScheduler drives the run over
    // per-rank lanes. A null (or mismatched) topology keeps the flat
    // single-system path below byte-for-byte.
    if (opts_.topology && opts_.topology->valid() &&
        opts_.topology->numDpus() == sys_.numDpus()) {
        FleetScheduler fleet(sys_, cache_, opts_);
        return fleet.run(queue);
    }

    // Auto-tuner (kill switch): give the tuner this run's cache so
    // MRAM-budget arbitration can evict and re-broadcast tables.
    if (opts_.autoTuner)
        opts_.autoTuner->bindCache(&cache_);

    ServeReport report;
    const uint32_t n = sys_.numDpus();
    if (n == 0) {
        report.complete = queue.closed() && queue.depth() == 0;
        return report;
    }
    const uint32_t cap = std::max<uint32_t>(opts_.perDpuElements, 1);
    const double freq = sys_.model().frequencyHz;

    obs::TraceSpan runSpan(
        "serve run", "serve",
        obs::argsObject(
            {obs::argKv("dpus", static_cast<uint64_t>(n)),
             obs::argKv("per_dpu_elements",
                        static_cast<uint64_t>(cap))}));
    obs::Registry& reg = obs::Registry::global();
    obs::Tracer& tracer = obs::Tracer::global();

    // Double-buffered per-DPU MRAM: two input and two output buffers
    // of `cap` floats each (parity = wave index mod 2).
    const uint32_t bufBytes = cap * static_cast<uint32_t>(sizeof(float));
    std::vector<std::array<uint32_t, 2>> inAddr(n), outAddr(n);
    for (uint32_t d = 0; d < n; ++d)
        for (uint32_t p = 0; p < 2; ++p) {
            inAddr[d][p] = sys_.dpu(d).mramAlloc(bufBytes);
            outAddr[d][p] = sys_.dpu(d).mramAlloc(bufBytes);
        }

    PipelineTimeline timeline(n);
    // Buffer-reuse fences: a parity's input buffers are free once the
    // compute that read them ended; its output buffers once the
    // gather that drained them ended.
    double computeEndByParity[2] = {0.0, 0.0};
    double gatherEndByParity[2] = {0.0, 0.0};
    // Synchronous mode chains every leg on the previous one.
    double chain = 0.0;
    std::deque<PendingWave> retries;
    bool outOfCores = false;
    uint64_t waveSeq = 0; ///< execution-order wave numbering

    // ---- Request-span bookkeeping (journal / flow events) ----
    // All of it runs on this (consumer) thread against modeled times
    // read off the timeline, so the journal's content is a pure
    // function of the workload — bit-identical at any thread count —
    // and none of it feeds back into the modeled schedule.
    obs::Journal* const journal = opts_.journal;
    const bool trackReqs = journal != nullptr || tracer.enabled();

    struct ReqAcc
    {
        std::string table;
        double arrival = 0.0;
        double firstScatter = -1.0; ///< <0 = not scattered yet
        double completed = 0.0;
        double transferSeconds = 0.0;
        double computeSeconds = 0.0;
        uint64_t elementsTotal = 0; ///< gen-0 elements issued
        uint64_t elementsDone = 0;  ///< healthy gathered elements
        uint64_t waves = 0;
        bool sawLast = false; ///< a wave carried the request's tail
        bool complete = false;
    };
    std::map<uint64_t, ReqAcc> reqAccs;

    auto accFor = [&](const WaveReq& r,
                      const TableKey& table) -> ReqAcc& {
        auto [it, fresh] = reqAccs.try_emplace(r.id);
        if (fresh) {
            it->second.table = table.label;
            it->second.arrival = r.arrival;
        }
        return it->second;
    };

    auto jev = [&](const char* kind, double t, double dur,
                   uint64_t request, uint64_t wave, uint64_t elements,
                   uint64_t cycles, const std::string& table,
                   const std::string& note = {}) {
        if (!journal)
            return;
        obs::JournalEvent ev;
        ev.kind = kind;
        ev.t = t;
        ev.dur = dur;
        ev.request = request;
        ev.wave = wave;
        ev.elements = elements;
        ev.cycles = cycles;
        ev.table = table;
        ev.note = note;
        journal->record(ev);
    };

    auto noteFailedDpu = [&](uint32_t d) {
        if (std::find(report.failedDpus.begin(),
                      report.failedDpus.end(),
                      d) == report.failedDpus.end())
            report.failedDpus.push_back(d);
    };

    /** Next wave to execute: pending retries first, then the queue. */
    auto nextWave = [&]() -> std::optional<PendingWave> {
        for (;;) {
            if (!retries.empty()) {
                PendingWave pw = std::move(retries.front());
                retries.pop_front();
                return pw;
            }
            uint32_t healthy = sys_.healthyDpus();
            if (healthy == 0) {
                outOfCores = true;
                return std::nullopt;
            }
            auto w = queue.popWave(
                static_cast<uint64_t>(cap) * healthy);
            if (!w)
                return std::nullopt;
            report.requests += w->requestsClosed;
            if (tracer.enabled())
                tracer.counterValue(
                    "serve/queue_depth", "serve",
                    static_cast<double>(queue.depth()));
            if (reg.enabled())
                reg.histogram("serve/queue/depth")
                    .observe(queue.depth());
            if (w->items.empty())
                continue; // zero-element requests only
            report.elements += w->elements();

            // Auto-tuner routing: only fresh generation-0 waves are
            // routed — retries and cost-book split pieces keep the
            // table they were issued with.
            std::string tuneNote;
            if (opts_.autoTuner) {
                AutoTuner::Routing r =
                    opts_.autoTuner->route(w->table, w->tenant);
                // `switched` only marks the first wave after a route
                // change (it drives the `tune` journal event); every
                // wave runs whatever table route() picked.
                if (r.table.hash != w->table.hash &&
                    reg.enabled())
                    reg.counter("tuner/rerouted_waves").add(1);
                w->table = r.table;
                if (r.switched)
                    tuneNote = std::move(r.note);
            }

            // Cost-aware wave sizing: with a certified compute
            // envelope for this table, rank the candidate sub-wave
            // splits on the predicted double-buffered makespan and
            // issue the fastest shape. Splits land at the front of
            // the retry deque (generation 0) so they pop in order.
            if (opts_.costBook && opts_.pipelined) {
                const WaveCost* wc = opts_.costBook->find(w->table);
                uint64_t waveElems = w->elements();
                if (wc && healthy > 0 && waveElems > 1) {
                    uint32_t bestK = 1;
                    double best = predictSplitMakespan(
                        waveElems, 1, healthy, cap, *wc, sys_, freq);
                    for (uint32_t k : {2u, 4u, 8u}) {
                        if (waveElems / k < healthy)
                            break; // sub-slices would degenerate
                        double m = predictSplitMakespan(
                            waveElems, k, healthy, cap, *wc, sys_,
                            freq);
                        if (m < best * (1.0 - 1e-9)) {
                            best = m;
                            bestK = k;
                        }
                    }
                    if (bestK > 1) {
                        uint64_t base = waveElems / bestK;
                        uint64_t rem = waveElems % bestK;
                        Wave rest = std::move(*w);
                        std::vector<Wave> pieces;
                        for (uint32_t i = 0; i + 1 < bestK; ++i)
                            pieces.push_back(takeWaveHead(
                                rest, base + (i < rem ? 1 : 0)));
                        pieces.push_back(std::move(rest));
                        for (auto it = pieces.rbegin();
                             it != pieces.rend(); ++it)
                            retries.push_front(
                                PendingWave{std::move(*it), 0});
                        // Retries was empty (we only reach the queue
                        // pop then), so the first split piece is at
                        // the front; the tune note rides on it.
                        retries.front().tuneNote =
                            std::move(tuneNote);
                        if (reg.enabled())
                            reg.counter("serve/cost/split_waves")
                                .add(1);
                        continue;
                    }
                }
            }
            PendingWave pw{std::move(*w), 0};
            pw.tuneNote = std::move(tuneNote);
            return pw;
        }
    };

    /** Resolve the binding and reserve scatter (+ table broadcast on
     * a miss). Returns false when the wave cannot run at all. */
    auto beginWave = [&](PendingWave&& pw,
                         WaveExec& ex) -> bool {
        std::string tuneNote = std::move(pw.tuneNote);
        ex.wave = std::move(pw.wave);
        ex.generation = pw.generation;
        ex.parity = static_cast<uint32_t>(wavesExecuted_ % 2);

        TableCache::Lookup found = cache_.lookup(ex.wave.table);
        ex.binding = found.binding;
        ex.stats.tableMiss = found.miss;
        uint64_t waveElems = ex.wave.elements();
        if (!ex.binding || !ex.binding->valid) {
            report.infeasibleElements += waveElems;
            if (trackReqs)
                for (const WaveReq& r : collectWaveReqs(ex.wave)) {
                    ReqAcc& acc = accFor(r, ex.wave.table);
                    if (ex.generation == 0) {
                        acc.elementsTotal += r.elements;
                        acc.sawLast = acc.sawLast || r.last;
                    }
                    jev("drop", chain, 0.0, r.id,
                        obs::JournalEvent::kNoWave, r.elements, 0,
                        ex.wave.table.label, "no valid table binding");
                }
            return false;
        }
        PipelineEvent bcastEv{};
        if (found.miss && ex.binding->tableBytes > 0) {
            PipelineEvent ev = sys_.broadcastAsync(
                timeline, opts_.pipelined ? 0.0 : chain,
                ex.binding->tableBytes);
            ex.stats.broadcastSeconds = ev.seconds();
            bcastEv = ev;
            chain = ev.end;
        }

        // Slice across the currently healthy cores. If cores died
        // since the wave was sized, the tail that no longer fits is
        // split off and re-queued ahead of everything else.
        std::vector<uint32_t> healthy;
        for (uint32_t d = 0; d < n; ++d)
            if (!sys_.isMasked(d))
                healthy.push_back(d);
        if (healthy.empty()) {
            outOfCores = true;
            retries.push_front(
                PendingWave{std::move(ex.wave), ex.generation});
            return false;
        }
        uint64_t budget =
            static_cast<uint64_t>(cap) * healthy.size();
        if (waveElems > budget) {
            Wave head = takeWaveHead(ex.wave, budget);
            retries.push_front(
                PendingWave{std::move(ex.wave), ex.generation});
            ex.wave = std::move(head);
            waveElems = ex.wave.elements();
        }

        // Pack the item inputs into one staging buffer (wave slices
        // cross item boundaries) and record the item offsets.
        ex.stagingIn.resize(waveElems);
        ex.itemStart.resize(ex.wave.items.size());
        uint64_t off = 0;
        for (size_t i = 0; i < ex.wave.items.size(); ++i) {
            const WaveItem& it = ex.wave.items[i];
            ex.itemStart[i] = off;
            std::memcpy(ex.stagingIn.data() + off, it.input,
                        it.elements * sizeof(float));
            off += it.elements;
        }

        const uint64_t per = std::min<uint64_t>(
            cap, (waveElems + healthy.size() - 1) / healthy.size());
        std::vector<ScatterSlice> scatter;
        uint64_t first = 0;
        for (uint32_t d : healthy) {
            if (first >= waveElems)
                break;
            uint32_t count = static_cast<uint32_t>(
                std::min<uint64_t>(per, waveElems - first));
            ShardTask t;
            t.dpu = d;
            t.inAddr = inAddr[d][ex.parity];
            t.outAddr = outAddr[d][ex.parity];
            t.firstElement = first;
            t.elements = count;
            ex.slices.push_back(t);
            scatter.push_back(
                {d, t.inAddr, ex.stagingIn.data() + first,
                 count * static_cast<uint32_t>(sizeof(float))});
            first += count;
        }
        ex.stats.elements = waveElems;
        ex.stats.slices = static_cast<uint32_t>(ex.slices.size());

        double readyAt = opts_.pipelined
                             ? computeEndByParity[ex.parity]
                             : chain;
        ex.scatterEv = sys_.scatterAsync(timeline, readyAt, scatter);
        chain = ex.scatterEv.end;
        ex.stats.scatterSeconds = ex.scatterEv.seconds();
        ex.waveIndex = waveSeq++;

        // Tuner redirect: stamp the decision on the wave it first
        // applies to, at scatter start, tagged with the tenant.
        if (journal && !tuneNote.empty()) {
            obs::JournalEvent ev;
            ev.kind = "tune";
            ev.t = ex.scatterEv.start;
            ev.wave = ex.waveIndex;
            ev.elements = ex.stats.elements;
            ev.tenant = ex.wave.tenant;
            ev.table = ex.wave.table.label;
            ev.note = tuneNote;
            journal->record(ev);
        }

        // Per-request span accounting (post-split, so every element
        // is attributed to exactly the wave that carries it).
        if (trackReqs) {
            ex.reqs = collectWaveReqs(ex.wave);
            const double waveXfer =
                ex.stats.broadcastSeconds + ex.stats.scatterSeconds;
            for (const WaveReq& r : ex.reqs) {
                ReqAcc& acc = accFor(r, ex.wave.table);
                ++acc.waves;
                if (acc.firstScatter < 0.0)
                    acc.firstScatter = ex.scatterEv.start;
                acc.transferSeconds += waveXfer;
                if (ex.generation == 0) {
                    acc.elementsTotal += r.elements;
                    acc.sawLast = acc.sawLast || r.last;
                }
                if (tracer.enabled()) {
                    const std::string flowName =
                        "req " + std::to_string(r.id);
                    if (acc.waves == 1)
                        tracer.flowBegin(flowName, "serve", r.id);
                    else
                        tracer.flowStep(flowName, "serve", r.id);
                }
                jev("coalesce", ex.scatterEv.start, 0.0, r.id,
                    ex.waveIndex, r.elements, 0, ex.wave.table.label);
                jev("scatter", ex.scatterEv.start,
                    ex.scatterEv.seconds(), r.id, ex.waveIndex,
                    r.elements, 0, ex.wave.table.label);
            }
            if (ex.stats.tableMiss && ex.stats.broadcastSeconds > 0.0)
                jev("broadcast", bcastEv.start, bcastEv.seconds(), 0,
                    ex.waveIndex, 0, 0, ex.wave.table.label);
        }
        ++wavesExecuted_;
        return true;
    };

    /** Launch the wave's kernels (per-DPU lanes). */
    auto computeWave = [&](WaveExec& ex) {
        std::vector<int> sliceOfDpu(n, -1);
        for (size_t s = 0; s < ex.slices.size(); ++s)
            sliceOfDpu[ex.slices[s].dpu] = static_cast<int>(s);
        double readyAt =
            opts_.pipelined
                ? std::max(ex.scatterEv.end,
                           gatherEndByParity[ex.parity])
                : chain;
        ex.computeEv = sys_.launchAsync(
            timeline, readyAt, opts_.numTasklets,
            [&](uint32_t d) -> Kernel {
                int s = sliceOfDpu[d];
                if (s < 0)
                    return {};
                return ex.binding->makeKernel(ex.slices[s]);
            });
        chain = ex.computeEv.end;
        computeEndByParity[ex.parity] = ex.computeEv.end;
        ex.stats.maxCycles = sys_.lastMaxCycles();
        ex.stats.computeSeconds =
            freq > 0.0
                ? static_cast<double>(ex.stats.maxCycles) / freq
                : 0.0;
        report.computeCycles += ex.stats.maxCycles;

        // Straggler detection: a pure function of the per-DPU cycle
        // counts the sequential failure sweep recorded, so it is
        // deterministic at any thread count and costs nothing on the
        // modeled schedule.
        const std::vector<uint64_t>& perDpu = sys_.lastLaunchCycles();
        std::vector<uint64_t> sliceCycles;
        sliceCycles.reserve(ex.slices.size());
        for (const ShardTask& t : ex.slices)
            if (t.dpu < perDpu.size())
                sliceCycles.push_back(perDpu[t.dpu]);
        for (uint64_t c : sliceCycles)
            ex.stats.totalCycles += c;
        std::sort(sliceCycles.begin(), sliceCycles.end());
        if (!sliceCycles.empty())
            ex.stats.medianCycles =
                sliceCycles[sliceCycles.size() / 2];
        if (sliceCycles.size() >= 2 && ex.stats.medianCycles > 0) {
            const double limit =
                opts_.stragglerFactor *
                static_cast<double>(ex.stats.medianCycles);
            uint32_t stragglers = 0;
            for (uint64_t c : sliceCycles)
                if (static_cast<double>(c) > limit)
                    ++stragglers;
            if (stragglers > 0) {
                ex.stats.stragglerDpus = stragglers;
                ++report.anomalousWaves;
                if (reg.enabled()) {
                    reg.counter("serve/anomaly/straggler_waves")
                        .add(1);
                    reg.counter("serve/anomaly/straggler_dpus")
                        .add(stragglers);
                }
                jev("anomaly", ex.computeEv.start,
                    ex.computeEv.seconds(), 0, ex.waveIndex,
                    ex.stats.elements, sliceCycles.back(),
                    ex.wave.table.label,
                    "max " + std::to_string(sliceCycles.back()) +
                        " cycles vs median " +
                        std::to_string(ex.stats.medianCycles) +
                        " across " +
                        std::to_string(sliceCycles.size()) +
                        " slices");
            }
        }

        if (trackReqs)
            for (const WaveReq& r : ex.reqs) {
                ReqAcc& acc = accFor(r, ex.wave.table);
                acc.computeSeconds += ex.computeEv.seconds();
                jev("compute", ex.computeEv.start,
                    ex.computeEv.seconds(), r.id, ex.waveIndex,
                    r.elements, ex.stats.maxCycles,
                    ex.wave.table.label);
            }
    };

    /** Gather, distribute outputs, and re-queue failed slices. */
    auto finishWave = [&](WaveExec& ex) {
        uint64_t waveElems = ex.stats.elements;
        std::vector<float> stagingOut(waveElems);
        std::vector<GatherSlice> gather;
        for (const ShardTask& t : ex.slices)
            gather.push_back(
                {t.dpu, t.outAddr,
                 stagingOut.data() + t.firstElement,
                 t.elements *
                     static_cast<uint32_t>(sizeof(float))});
        double readyAt =
            opts_.pipelined ? ex.computeEv.end : chain;
        PipelineEvent gatherEv =
            sys_.gatherAsync(timeline, readyAt, gather);
        chain = gatherEv.end;
        gatherEndByParity[ex.parity] = gatherEv.end;
        ex.stats.gatherSeconds = gatherEv.seconds();

        // Distribute healthy slice ranges to the item outputs; turn
        // failed slice ranges into retry items against the original
        // request memory (the staging buffers die with this wave).
        Wave retry;
        retry.table = ex.wave.table;
        retry.tenant = ex.wave.tenant;
        // Visit every (item, overlap) of the wave-relative range
        // [lo, hi): waveOff is the overlap's start in wave space,
        // itemOff the same point relative to the item's own spans.
        auto forEachItemRange =
            [&](uint64_t lo, uint64_t hi,
                const std::function<void(const WaveItem&,
                                         uint64_t waveOff,
                                         uint64_t itemOff,
                                         uint64_t count)>& fn) {
                for (size_t i = 0; i < ex.wave.items.size(); ++i) {
                    uint64_t a = ex.itemStart[i];
                    uint64_t b = a + ex.wave.items[i].elements;
                    uint64_t s = std::max(lo, a);
                    uint64_t e = std::min(hi, b);
                    if (s < e)
                        fn(ex.wave.items[i], s, s - a, e - s);
                }
            };
        std::map<uint64_t, uint64_t> gatheredByReq;
        std::vector<WaveOutcome::Span> tuneSpans;
        for (const ShardTask& t : ex.slices) {
            uint64_t lo = t.firstElement;
            uint64_t hi = lo + t.elements;
            if (!sys_.isMasked(t.dpu)) {
                forEachItemRange(
                    lo, hi,
                    [&](const WaveItem& it, uint64_t waveOff,
                        uint64_t itemOff, uint64_t count) {
                        std::memcpy(it.output + itemOff,
                                    stagingOut.data() + waveOff,
                                    count * sizeof(float));
                        if (trackReqs)
                            gatheredByReq[it.requestId] += count;
                        if (opts_.autoTuner)
                            tuneSpans.push_back(
                                {it.input + itemOff,
                                 it.output + itemOff, count});
                    });
            } else {
                ++ex.stats.retriedSlices;
                noteFailedDpu(t.dpu);
                forEachItemRange(
                    lo, hi,
                    [&](const WaveItem& it, uint64_t /*waveOff*/,
                        uint64_t itemOff, uint64_t count) {
                        // The tail flag survives a retry only if the
                        // retried range still covers the item's tail.
                        retry.items.push_back(
                            {it.requestId, it.input + itemOff,
                             it.output + itemOff, count,
                             it.arrivalSeconds,
                             it.last &&
                                 itemOff + count == it.elements});
                    });
            }
        }

        if (trackReqs)
            for (const WaveReq& r : ex.reqs) {
                ReqAcc& acc = accFor(r, ex.wave.table);
                acc.transferSeconds += gatherEv.seconds();
                jev("gather", gatherEv.start, gatherEv.seconds(),
                    r.id, ex.waveIndex, r.elements, 0,
                    ex.wave.table.label);
                auto g = gatheredByReq.find(r.id);
                if (g != gatheredByReq.end())
                    acc.elementsDone += g->second;
                if (!acc.complete && acc.sawLast &&
                    acc.elementsTotal > 0 &&
                    acc.elementsDone == acc.elementsTotal) {
                    acc.complete = true;
                    acc.completed = gatherEv.end;
                    jev("done", gatherEv.end, 0.0, r.id, ex.waveIndex,
                        acc.elementsTotal, 0, ex.wave.table.label);
                    if (tracer.enabled())
                        tracer.flowEnd("req " + std::to_string(r.id),
                                       "serve", r.id);
                }
            }
        uint64_t retryElems = retry.elements();
        if (retryElems > 0) {
            if (ex.generation + 1 > opts_.maxRetryWaves) {
                report.droppedElements += retryElems;
                if (trackReqs)
                    for (const WaveReq& r : collectWaveReqs(retry))
                        jev("drop", gatherEv.end, 0.0, r.id,
                            ex.waveIndex, r.elements, 0,
                            retry.table.label,
                            "retry budget exhausted");
                if (reg.enabled())
                    reg.counter("serve/retry/dropped_elements")
                        .add(retryElems);
            } else {
                report.reshardedElements += retryElems;
                retries.push_back(PendingWave{std::move(retry),
                                              ex.generation + 1});
                if (reg.enabled()) {
                    reg.counter("serve/retry/waves").add(1);
                    reg.counter("serve/retry/elements")
                        .add(retryElems);
                }
            }
        }

        // Close the tuner's loop with what this wave actually did:
        // exact gathered outputs (healthy ranges only) plus the
        // summed modeled cycles — all consumer-thread, all modeled,
        // so tuned runs stay deterministic at any thread count.
        if (opts_.autoTuner) {
            WaveOutcome oc;
            oc.table = ex.wave.table;
            oc.tenant = ex.wave.tenant;
            oc.waveIndex = ex.waveIndex;
            oc.elements = ex.stats.elements;
            oc.totalCycles = ex.stats.totalCycles;
            oc.spans = std::move(tuneSpans);
            opts_.autoTuner->observe(oc);
        }

        report.syncSeconds +=
            ex.stats.broadcastSeconds + ex.stats.scatterSeconds +
            ex.stats.computeSeconds + ex.stats.gatherSeconds;
        if (reg.enabled())
            reg.histogram("serve/wave/elements").observe(waveElems);
        report.waveStats.push_back(ex.stats);
    };

    // The two-deep software pipeline: scatter of the next wave is
    // issued between the current wave's launch and gather, so the
    // host lane interleaves ... scatter(k+1), gather(k) ... while
    // the DPU lanes run compute(k).
    auto takeRunnable = [&]() -> std::optional<WaveExec> {
        for (;;) {
            auto pw = nextWave();
            if (!pw)
                return std::nullopt;
            WaveExec ex;
            if (beginWave(std::move(*pw), ex))
                return ex;
            // Infeasible or un-sliceable wave: try the next one
            // (outOfCores aborts via nextWave on the next spin).
            if (outOfCores)
                return std::nullopt;
        }
    };

    std::optional<WaveExec> cur = takeRunnable();
    while (cur) {
        obs::TraceSpan waveSpan(
            "wave " + std::to_string(report.waveStats.size()),
            "serve",
            obs::argKv("elements", cur->stats.elements));
        computeWave(*cur);
        std::optional<WaveExec> next;
        if (opts_.pipelined)
            next = takeRunnable();
        finishWave(*cur);
        if (!opts_.pipelined)
            next = takeRunnable();
        cur = std::move(next);
    }

    // Anything still pending when we ran out of cores is dropped.
    const double drainT = timeline.makespan();
    for (const PendingWave& pw : retries) {
        report.droppedElements += pw.wave.elements();
        if (trackReqs)
            for (const WaveReq& r : collectWaveReqs(pw.wave)) {
                ReqAcc& acc = accFor(r, pw.wave.table);
                if (pw.generation == 0) {
                    acc.elementsTotal += r.elements;
                    acc.sawLast = acc.sawLast || r.last;
                }
                jev("drop", drainT, 0.0, r.id,
                    obs::JournalEvent::kNoWave, r.elements, 0,
                    pw.wave.table.label, "out of cores");
            }
    }
    retries.clear();

    report.waves = report.waveStats.size();
    report.cacheHits = cache_.hits();
    report.cacheMisses = cache_.misses();
    report.modeledSeconds = timeline.makespan();
    report.complete = !outOfCores && report.droppedElements == 0 &&
                      report.infeasibleElements == 0 &&
                      queue.closed() && queue.depth() == 0;

    // Finalize one RequestLatency per tracked request. The std::map
    // iterates in request-id order, and every timestamp came off the
    // modeled timeline — the journal serializes byte-identically at
    // any thread count. Decomposition identity (complete requests):
    //   latency = queueWait + transfer + compute + stall
    // holds exactly because stall is defined as the residual; it goes
    // negative when a multi-wave request's legs overlap in the
    // double-buffered schedule (legs then sum past the span).
    if (journal) {
        for (const auto& [id, acc] : reqAccs) {
            obs::RequestLatency lat;
            lat.request = id;
            lat.table = acc.table;
            lat.elements = acc.elementsTotal;
            lat.waves = acc.waves;
            lat.complete = acc.complete;
            lat.arrivalSeconds = acc.arrival;
            lat.firstScatterSeconds = acc.firstScatter < 0.0
                                          ? acc.arrival
                                          : acc.firstScatter;
            lat.completedSeconds = acc.completed;
            lat.queueWaitSeconds =
                lat.firstScatterSeconds - acc.arrival;
            lat.transferSeconds = acc.transferSeconds;
            lat.computeSeconds = acc.computeSeconds;
            lat.stallSeconds =
                acc.complete
                    ? (acc.completed - acc.arrival) -
                          lat.queueWaitSeconds - acc.transferSeconds -
                          acc.computeSeconds
                    : 0.0;
            journal->recordLatency(lat);
        }
    }

    if (reg.enabled()) {
        reg.counter("serve/waves").add(report.waves);
        reg.counter("serve/requests").add(report.requests);
        reg.counter("serve/elements").add(report.elements);
        reg.real("serve/modeled_seconds").add(report.modeledSeconds);
        reg.real("serve/sync_seconds").add(report.syncSeconds);
        if (report.droppedElements)
            reg.counter("serve/dropped_elements")
                .add(report.droppedElements);
    }
    if (tracer.enabled())
        tracer.counterValue("serve/queue_depth", "serve", 0.0);
    return report;
}

} // namespace serve
} // namespace sim
} // namespace tpl
