/**
 * @file
 * Topology parsing and rendering.
 */

#include "pimsim/topology.h"

#include <cstdint>

namespace tpl {
namespace sim {

std::vector<uint32_t>
Topology::channelMap() const
{
    std::vector<uint32_t> map(numRanks());
    for (uint32_t r = 0; r < numRanks(); ++r)
        map[r] = channelOfRank(r);
    return map;
}

std::string
Topology::toText() const
{
    return std::to_string(dimms) + "x" + std::to_string(ranksPerDimm) +
           "x" + std::to_string(dpusPerRank);
}

namespace {

// Parse one decimal field of the DxRxP grammar. Rejects empty
// fields, non-digits, and values above the uint32 range.
bool
parseField(const std::string& text, size_t begin, size_t end,
           uint32_t& out)
{
    if (begin >= end)
        return false;
    uint64_t value = 0;
    for (size_t i = begin; i < end; ++i) {
        char c = text[i];
        if (c < '0' || c > '9')
            return false;
        value = value * 10 + static_cast<uint64_t>(c - '0');
        if (value > UINT32_MAX)
            return false;
    }
    out = static_cast<uint32_t>(value);
    return true;
}

} // namespace

std::optional<Topology>
Topology::parse(const std::string& text)
{
    size_t first = text.find('x');
    if (first == std::string::npos)
        return std::nullopt;
    size_t second = text.find('x', first + 1);
    if (second == std::string::npos)
        return std::nullopt;
    if (text.find('x', second + 1) != std::string::npos)
        return std::nullopt;

    Topology t;
    if (!parseField(text, 0, first, t.dimms) ||
        !parseField(text, first + 1, second, t.ranksPerDimm) ||
        !parseField(text, second + 1, text.size(), t.dpusPerRank))
        return std::nullopt;
    if (!t.valid())
        return std::nullopt;

    // The DPU count must fit uint32: dimms * ranksPerDimm * dpusPerRank.
    uint64_t dpus = static_cast<uint64_t>(t.dimms) * t.ranksPerDimm *
                    t.dpusPerRank;
    if (dpus > UINT32_MAX)
        return std::nullopt;
    return t;
}

bool
operator==(const Topology& a, const Topology& b)
{
    return a.dimms == b.dimms && a.ranksPerDimm == b.ranksPerDimm &&
           a.dpusPerRank == b.dpusPerRank;
}

} // namespace sim
} // namespace tpl
