/**
 * @file
 * Thread-pool implementation.
 */

#include "pimsim/thread_pool.h"

#include <cstdlib>

namespace tpl {
namespace sim {

namespace {

/** Set while a pool worker executes job indices; nested parallelFor
 * calls detect it and run inline instead of re-entering the pool. */
thread_local bool insideWorker = false;

} // namespace

uint32_t
ThreadPool::defaultThreads()
{
    if (const char* env = std::getenv("TPL_SIM_THREADS")) {
        long v = std::strtol(env, nullptr, 10);
        if (v >= 1)
            return static_cast<uint32_t>(v);
        return 1;
    }
    uint32_t hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool&
ThreadPool::global()
{
    // Leaked on purpose: never runs the destructor, so parallelFor
    // stays usable during static destruction and no join races with
    // atexit handlers.
    static ThreadPool* pool = new ThreadPool(0);
    return *pool;
}

ThreadPool::ThreadPool(uint32_t threads)
{
    if (threads == 0)
        threads = defaultThreads();
    workers_.reserve(threads - 1);
    for (uint32_t t = 0; t + 1 < threads; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wakeCv_.notify_all();
    for (auto& w : workers_)
        w.join();
}

void
ThreadPool::workerLoop()
{
    insideWorker = true;
    for (;;) {
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wakeCv_.wait(lock, [this] {
                return stop_ || (job_ && job_->hasWork());
            });
            if (stop_)
                return;
            job = job_;
        }
        runIndices(*job);
    }
}

void
ThreadPool::runIndices(Job& job)
{
    job.active.fetch_add(1, std::memory_order_acq_rel);
    for (;;) {
        uint64_t i = job.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= job.count)
            break;
        try {
            (*job.fn)(i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!job.error)
                job.error = std::current_exception();
            // Cancel remaining indices; claimed ones still drain.
            job.next.store(job.count, std::memory_order_relaxed);
        }
    }
    if (job.active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Last participant out: wake the caller waiting in parallelFor.
        std::lock_guard<std::mutex> lock(mutex_);
        doneCv_.notify_all();
    }
}

void
ThreadPool::parallelFor(uint64_t count,
                        const std::function<void(uint64_t)>& fn)
{
    if (count == 0)
        return;
    if (workers_.empty() || count == 1 || insideWorker) {
        for (uint64_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    auto job = std::make_shared<Job>();
    job->count = count;
    job->fn = &fn;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_ = job;
    }
    wakeCv_.notify_all();

    runIndices(*job); // the caller is a full participant

    {
        std::unique_lock<std::mutex> lock(mutex_);
        doneCv_.wait(lock, [&] {
            return job->active.load(std::memory_order_acquire) == 0;
        });
        if (job_ == job)
            job_.reset();
        if (job->error)
            std::rethrow_exception(job->error);
    }
}

void
parallelFor(uint64_t count, const std::function<void(uint64_t)>& fn)
{
    ThreadPool::global().parallelFor(count, fn);
}

} // namespace sim
} // namespace tpl
